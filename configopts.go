package eole

import "eole/internal/config"

// This file is the composable-configuration surface: functional
// options for building arbitrary machine configurations (NewConfig),
// and first-class sweep grids (Grid/Axis) that cartesian-expand
// design-space axes into validated configs.
//
// A Config is plain data — it round-trips through JSON losslessly —
// and its cache identity is Config.Fingerprint(), a canonical hash
// that ignores the display Name. Anonymous configs (no Name) are
// labeled "custom-<fingerprint prefix>" wherever a name is displayed
// (Config.Label); the batch service and the eoled HTTP API key their
// result caches by fingerprint, so two identical custom configs share
// one cache entry no matter what they are called.

// ConfigOption customizes NewConfig. Options apply in order;
// FromBaseline / FromNamed / FromConfig replace the whole
// configuration and therefore belong first.
type ConfigOption = config.Option

// NewConfig builds a machine configuration from functional options,
// starting from an anonymous copy of the Table 1 baseline:
//
//	cfg, err := eole.NewConfig(
//		eole.FromBaseline(),
//		eole.IssueWidth(4), eole.IQ(64),
//		eole.ValuePrediction(true),
//		eole.EarlyExecution(1), eole.LateExecution(true),
//		eole.LEBranches(true),
//		eole.PRFBanks(4), eole.LEVTPorts(4),
//	)
//
// The result is validated; with Late Execution on and no explicit
// LEWidth, the LE/VT stage defaults to the commit width (the paper's
// Section 5 model). The named paper configurations are sugar over
// this builder (see NamedConfig), so a builder chain reproducing a
// named config is field-identical to it.
func NewConfig(opts ...ConfigOption) (Config, error) { return config.New(opts...) }

// FromBaseline resets to an anonymous copy of the Table 1 baseline.
func FromBaseline() ConfigOption { return config.FromBaseline() }

// FromNamed starts from a named paper configuration.
func FromNamed(name string) ConfigOption { return config.FromNamed(name) }

// FromConfig starts from a copy of an existing configuration.
func FromConfig(c Config) ConfigOption { return config.FromConfig(c) }

// WithName sets the display name — a label only, excluded from
// Config.Fingerprint.
func WithName(name string) ConfigOption { return config.WithName(name) }

// IssueWidth sets the out-of-order issue width.
func IssueWidth(n int) ConfigOption { return config.IssueWidth(n) }

// IQ sets the unified instruction-queue size.
func IQ(n int) ConfigOption { return config.IQ(n) }

// ROB sets the reorder-buffer size.
func ROB(n int) ConfigOption { return config.ROB(n) }

// LQ sets the load-queue size.
func LQ(n int) ConfigOption { return config.LQ(n) }

// SQ sets the store-queue size.
func SQ(n int) ConfigOption { return config.SQ(n) }

// FetchWidth sets the front-end fetch width.
func FetchWidth(n int) ConfigOption { return config.FetchWidth(n) }

// RenameWidth sets the rename width.
func RenameWidth(n int) ConfigOption { return config.RenameWidth(n) }

// CommitWidth sets the retirement width.
func CommitWidth(n int) ConfigOption { return config.CommitWidth(n) }

// FetchQueue sets the fetch-queue depth; it must cover the front-end
// pipe (FetchWidth × FetchToRenameLag).
func FetchQueue(n int) ConfigOption { return config.FetchQueue(n) }

// ValuePrediction toggles the value predictor (the VTAGE-2DStride
// hybrid unless Predictor selected another one).
func ValuePrediction(on bool) ConfigOption { return config.ValuePrediction(on) }

// Predictor enables value prediction with the named predictor from
// internal/vpred (e.g. "VTAGE-2DStride", "VTAGE", "2DStride").
func Predictor(name string) ConfigOption { return config.Predictor(name) }

// EarlyExecution sets the Early Execution ALU depth: 0 disables the
// block, 1 or 2 enable it with that many cascaded stages (Figure 2).
func EarlyExecution(depth int) ConfigOption { return config.EarlyExecution(depth) }

// LateExecution toggles the Late Execution / Validation and Training
// pre-commit stage.
func LateExecution(on bool) ConfigOption { return config.LateExecution(on) }

// LEBranches toggles resolving very-high-confidence branches at LE/VT.
func LEBranches(on bool) ConfigOption { return config.LEBranches(on) }

// LEReturns toggles the §7 extension: very-high-confidence returns and
// indirect jumps resolve at LE/VT.
func LEReturns(on bool) ConfigOption { return config.LEReturns(on) }

// LEWidth caps the ALUs in the LE/VT stage (0 = commit width).
func LEWidth(n int) ConfigOption { return config.LEWidth(n) }

// PRFBanks splits each physical register file into n banks (Figure 10).
func PRFBanks(n int) ConfigOption { return config.PRFBanks(n) }

// LEVTPorts caps the LE/VT read ports per PRF bank (Figure 11;
// 0 = unconstrained).
func LEVTPorts(n int) ConfigOption { return config.LEVTPorts(n) }

// ConfigOptionNames lists the option names a Grid axis (or the HTTP
// axis spec) accepts, sorted.
func ConfigOptionNames() []string { return config.OptionNames() }

// Axis is one dimension of a design-space sweep: a config option name
// (see ConfigOptionNames) and the values it takes. Its JSON form —
// {"option": "PRFBanks", "values": [2, 4, 8]} — is what /v1/sweep
// accepts on the wire.
type Axis = config.Axis

// Grid is a first-class sweep specification: a base configuration
// (named via BaseName, inline via Base, or the Table 1 baseline when
// both are empty) and a set of axes whose cartesian product
// Grid.Configs expands into validated, distinctly-named
// configurations in row-major order (first axis slowest). Grids are
// plain data and round-trip through JSON, so the same value drives
// the Go API, the eoled HTTP API and config files on disk.
type Grid = config.Grid
