package eole_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"eole"
)

// Golden-report regression test: the full JSON eole.Report for the
// baseline and the headline EOLE machine on one small workload is
// pinned as testdata. Any drift in the performance model — not just
// IPC, but squash counts, offload fractions, cache miss rates, the
// raw counter set — fails with a field-by-field diff instead of
// slipping silently into every downstream figure.
//
// To regenerate after an intentional model change:
//
//	EOLE_UPDATE_GOLDEN=1 go test -run TestGoldenReports .
//
// and review the diff like any other golden update.

const (
	goldenWorkload = "gzip"
	goldenWarmup   = 5_000
	goldenMeasure  = 20_000
)

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden_report_"+name+".json")
}

func TestGoldenReports(t *testing.T) {
	for golden, cfgName := range map[string]string{
		"base": "Baseline_6_64",
		"eole": "EOLE_4_64",
	} {
		golden, cfgName := golden, cfgName
		t.Run(golden, func(t *testing.T) {
			cfg, err := eole.NamedConfig(cfgName)
			if err != nil {
				t.Fatal(err)
			}
			w, err := eole.WorkloadByName(goldenWorkload)
			if err != nil {
				t.Fatal(err)
			}
			r, err := eole.Simulate(cfg, w, goldenWarmup, goldenMeasure)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := goldenPath(golden)
			if os.Getenv("EOLE_UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with EOLE_UPDATE_GOLDEN=1 to create): %v", err)
			}
			if string(got) == string(want) {
				return
			}
			// Decode both sides and report which fields moved — a raw
			// byte diff of a 40-field JSON object is unreadable.
			var gm, wm map[string]any
			if err := json.Unmarshal(got, &gm); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(want, &wm); err != nil {
				t.Fatalf("golden file %s is not valid JSON: %v", path, err)
			}
			for _, d := range diffJSON("", wm, gm) {
				t.Error(d)
			}
			t.Errorf("%s on %s drifted from %s — if the model change is intentional, regenerate with EOLE_UPDATE_GOLDEN=1",
				cfgName, goldenWorkload, path)
		})
	}
}

// Cross-config differential equivalence suite: every named
// configuration × every built-in workload, pinned as one golden file
// per config holding the full JSON eole.Report of each workload. The
// matrix is the bit-exactness wall in front of performance work on the
// simulator core: any data-layout refactor, batching change or
// allocation fix in internal/{core,prog,trace,regfile,bpred,vpred}
// must leave all of these reports byte-identical, or this test names
// the config, workload and field that moved.
//
// The region is shorter than TestGoldenReports' (the matrix is 11×19
// simulations) but long enough to exercise squashes, both EOLE blocks,
// banked-PRF stalls and the memory hierarchy on every workload.
//
// To regenerate after an intentional model change:
//
//	EOLE_UPDATE_GOLDEN=1 go test -run TestGoldenMatrix .
const (
	matrixWarmup  = 2_000
	matrixMeasure = 5_000
)

func matrixGoldenPath(cfgName string) string {
	return filepath.Join("testdata", "golden_matrix_"+cfgName+".json")
}

func TestGoldenMatrix(t *testing.T) {
	for _, cfgName := range eole.ConfigNames() {
		t.Run(cfgName, func(t *testing.T) {
			cfg, err := eole.NamedConfig(cfgName)
			if err != nil {
				t.Fatal(err)
			}
			// One JSON object per config: workload short name -> Report,
			// marshalled with sorted keys so regeneration is stable.
			reports := map[string]*eole.Report{}
			for _, w := range eole.Workloads() {
				r, err := eole.Simulate(cfg, w, matrixWarmup, matrixMeasure)
				if err != nil {
					t.Fatalf("%s on %s: %v", cfgName, w.Short, err)
				}
				reports[w.Short] = r
			}
			got, err := json.MarshalIndent(reports, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := matrixGoldenPath(cfgName)
			if os.Getenv("EOLE_UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with EOLE_UPDATE_GOLDEN=1 to create): %v", err)
			}
			if string(got) == string(want) {
				return
			}
			var gm, wm map[string]any
			if err := json.Unmarshal(got, &gm); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(want, &wm); err != nil {
				t.Fatalf("golden file %s is not valid JSON: %v", path, err)
			}
			for _, d := range diffJSON("", wm, gm) {
				t.Error(d)
			}
			t.Errorf("%s matrix drifted from %s — if the model change is intentional, regenerate with EOLE_UPDATE_GOLDEN=1",
				cfgName, path)
		})
	}
}

// diffJSON renders the leaf-level differences between two decoded
// JSON trees as "path: golden <x>, got <y>" lines.
func diffJSON(prefix string, want, got map[string]any) []string {
	var out []string
	keys := map[string]bool{}
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		path := k
		if prefix != "" {
			path = prefix + "." + k
		}
		wv, wok := want[k]
		gv, gok := got[k]
		switch {
		case !wok:
			out = append(out, fmt.Sprintf("%s: not in golden, got %v", path, gv))
		case !gok:
			out = append(out, fmt.Sprintf("%s: golden %v, missing from report", path, wv))
		default:
			wsub, wIsMap := wv.(map[string]any)
			gsub, gIsMap := gv.(map[string]any)
			if wIsMap && gIsMap {
				out = append(out, diffJSON(path, wsub, gsub)...)
			} else if !reflect.DeepEqual(wv, gv) {
				out = append(out, fmt.Sprintf("%s: golden %v, got %v", path, wv, gv))
			}
		}
	}
	return out
}
