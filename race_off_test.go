//go:build !race

package eole_test

// raceEnabled reports whether the race detector is compiled in; the
// heavyweight differential matrix scales itself down under -race
// (sampling is single-goroutine, so the full matrix adds no race
// coverage — the concurrency paths are exercised by the simsvc
// stress tests).
const raceEnabled = false
