package eole_test

import (
	"sync"
	"testing"
	"time"

	"eole"
)

// Sampled-simulation benchmarks: the wall-clock case for the sampler.
//
// BenchmarkSampledSweep runs a 3-config sweep over long-dram — a
// phased, DRAM-bound member of the long-* family — sampled, and
// reports its speedup over the equivalent full-run sweep (same
// configs, same stream extent, every µ-op simulated in detail). The
// full baseline is timed once and amortized across iterations; the
// "speedup_vs_full" metric is the acceptance number (≥5x on this
// schedule: ~90% of the stream is fast-forwarded, and fast-forward
// µ-ops cost 10-40x less than detailed ones on a memory-bound
// kernel).

var sweepBenchConfigs = []string{"Baseline_VP_6_64", "EOLE_4_64", "EOLE_6_64"}

// sweepBenchSpec fast-forwards ~90% of each window: 250K skipped,
// 30K warmed, 20K measured in detail (plus the detail warm-up).
var sweepBenchSpec = eole.SamplingSpec{Windows: 8, Skip: 250_000, Warm: 30_000}

const (
	sweepBenchWarmup  = 50_000
	sweepBenchMeasure = 160_000
)

func sweepBenchExtent(b *testing.B) uint64 {
	plan, err := sweepBenchSpec.Plan(sweepBenchMeasure)
	if err != nil {
		b.Fatal(err)
	}
	return plan.Total()
}

func runFullSweep(b *testing.B, extent uint64) {
	b.Helper()
	w, err := eole.WorkloadByName("long-dram")
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range sweepBenchConfigs {
		cfg, err := eole.NamedConfig(name)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eole.Simulate(cfg, w, sweepBenchWarmup, extent); err != nil {
			b.Fatal(err)
		}
	}
}

func runSampledSweep(b *testing.B) {
	b.Helper()
	w, err := eole.WorkloadByName("long-dram")
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range sweepBenchConfigs {
		cfg, err := eole.NamedConfig(name)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eole.Simulate(cfg, w, sweepBenchWarmup, sweepBenchMeasure, eole.WithSampling(sweepBenchSpec)); err != nil {
			b.Fatal(err)
		}
	}
}

var fullSweepBaseline struct {
	once sync.Once
	dur  time.Duration
}

func BenchmarkSampledSweep(b *testing.B) {
	extent := sweepBenchExtent(b)
	fullSweepBaseline.once.Do(func() {
		start := time.Now()
		runFullSweep(b, extent)
		fullSweepBaseline.dur = time.Since(start)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSampledSweep(b)
	}
	sampled := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(fullSweepBaseline.dur.Seconds()/sampled.Seconds(), "speedup_vs_full")
	b.ReportMetric(float64(extent+sweepBenchWarmup)*float64(len(sweepBenchConfigs))/sampled.Seconds()/1e6, "Mµops_covered/s")
}

// BenchmarkFullSweepLong is the explicit baseline twin of
// BenchmarkSampledSweep, for measuring the two sides independently.
func BenchmarkFullSweepLong(b *testing.B) {
	extent := sweepBenchExtent(b)
	for i := 0; i < b.N; i++ {
		runFullSweep(b, extent)
	}
	b.ReportMetric(float64(extent+sweepBenchWarmup)*float64(len(sweepBenchConfigs))/(b.Elapsed().Seconds()/float64(b.N))/1e6, "Mµops_covered/s")
}
