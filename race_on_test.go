//go:build race

package eole_test

// raceEnabled: see race_off_test.go.
const raceEnabled = true
