package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"eole"
)

// The pinned matrix. Full mode covers every named config on four
// reference workloads spanning the behaviour space: gzip (ILP-bound,
// predictable), mcf (DRAM-bound, pointer-chasing), namd (FP), hmmer
// (branchy integer). Smoke mode keeps one workload pair and the three
// headline configs so CI finishes in seconds.
var (
	fullWorkloads  = []string{"gzip", "mcf", "namd", "hmmer"}
	smokeWorkloads = []string{"gzip", "mcf"}
	smokeConfigs   = []string{"Baseline_6_64", "EOLE_4_64", "EOLE_4_64_4ports_4banks"}

	// sweepConfigs is the 6-config IPC comparison a figure sweep runs
	// per workload (baseline, VP baseline, the EOLE family, and the
	// practical banked design).
	sweepConfigs = []string{
		"Baseline_6_64", "Baseline_VP_6_64", "EOLE_6_64",
		"EOLE_4_64", "EOE_4_64", "EOLE_4_64_4ports_4banks",
	}

	// sampledConfigs matches BenchmarkSampledSweep at the repo root.
	sampledConfigs = []string{"Baseline_VP_6_64", "EOLE_4_64", "EOLE_6_64"}
)

type matrix struct {
	configs   []string
	workloads []string
	warmup    uint64
	measure   uint64

	sweepWarmup  uint64
	sweepMeasure uint64

	sampled eole.SamplingSpec
	// sampledWarmup/sampledMeasure mirror the Simulate arguments of
	// the sampled sweep (measure = total detailed budget).
	sampledWarmup  uint64
	sampledMeasure uint64

	hotLoopUops uint64
}

func fullMatrix() matrix {
	return matrix{
		configs:        eole.ConfigNames(),
		workloads:      fullWorkloads,
		warmup:         20_000,
		measure:        200_000,
		sweepWarmup:    20_000,
		sweepMeasure:   100_000,
		sampled:        eole.SamplingSpec{Windows: 8, Skip: 250_000, Warm: 30_000},
		sampledWarmup:  50_000,
		sampledMeasure: 160_000,
		hotLoopUops:    1_000_000,
	}
}

func smokeMatrix() matrix {
	return matrix{
		configs:        smokeConfigs,
		workloads:      smokeWorkloads,
		warmup:         5_000,
		measure:        20_000,
		sweepWarmup:    5_000,
		sweepMeasure:   10_000,
		sampled:        eole.SamplingSpec{Windows: 4, Skip: 30_000, Warm: 5_000},
		sampledWarmup:  10_000,
		sampledMeasure: 20_000,
		hotLoopUops:    100_000,
	}
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	out := fs.String("out", "BENCH_7.json", "output BENCH file")
	smoke := fs.Bool("smoke", false, "reduced CI matrix (fewer cells, shorter runs)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m := fullMatrix()
	if *smoke {
		m = smokeMatrix()
	}

	b := &Bench{
		Schema:    SchemaVersion,
		Smoke:     *smoke,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	var err error
	if b.Detailed, err = runDetailed(m); err != nil {
		return err
	}
	if b.Sweep, err = runSweep(m); err != nil {
		return err
	}
	if b.Sampled, err = runSampled(m); err != nil {
		return err
	}
	if b.HotLoop, err = runHotLoop(m); err != nil {
		return err
	}

	if errs := b.validate(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "benchrunner: self-check: %s\n", e)
		}
		return fmt.Errorf("generated BENCH file fails its own schema (%d violations)", len(errs))
	}
	if err := writeBench(*out, b); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d detailed cells, smoke=%v)\n", *out, len(b.Detailed), *smoke)
	return nil
}

func runDetailed(m matrix) ([]DetailedCell, error) {
	cells := make([]DetailedCell, 0, len(m.configs)*len(m.workloads))
	for _, cfgName := range m.configs {
		cfg, err := eole.NamedConfig(cfgName)
		if err != nil {
			return nil, err
		}
		for _, wlName := range m.workloads {
			w, err := eole.WorkloadByName(wlName)
			if err != nil {
				return nil, err
			}
			sim, err := eole.NewSimulator(cfg, w)
			if err != nil {
				return nil, err
			}
			sim.Run(m.warmup)
			start := time.Now()
			r := sim.Measure(m.measure)
			wall := time.Since(start).Seconds()
			cells = append(cells, DetailedCell{
				Config:       cfgName,
				Workload:     wlName,
				Warmup:       m.warmup,
				Measure:      m.measure,
				Cycles:       r.Cycles,
				Committed:    r.Committed,
				WallSeconds:  wall,
				CyclesPerSec: float64(r.Cycles) / wall,
				UopsPerSec:   float64(r.Committed) / wall,
			})
			fmt.Fprintf(os.Stderr, "  detailed %-24s %-6s %8.0f kcycles/s %8.0f kµops/s\n",
				cfgName, wlName, float64(r.Cycles)/wall/1e3, float64(r.Committed)/wall/1e3)
		}
	}
	return cells, nil
}

func runSweep(m matrix) (SweepResult, error) {
	const wlName = "crafty"
	w, err := eole.WorkloadByName(wlName)
	if err != nil {
		return SweepResult{}, err
	}
	res := SweepResult{
		Configs:  sweepConfigs,
		Workload: wlName,
		Warmup:   m.sweepWarmup,
		Measure:  m.sweepMeasure,
	}

	// Cold: execute-driven, each config re-interprets the program.
	start := time.Now()
	for _, name := range sweepConfigs {
		cfg, err := eole.NamedConfig(name)
		if err != nil {
			return SweepResult{}, err
		}
		if _, err := eole.Simulate(cfg, w, m.sweepWarmup, m.sweepMeasure); err != nil {
			return SweepResult{}, err
		}
	}
	res.ColdSeconds = time.Since(start).Seconds()

	// Warm: the stream recorded once, every config replaying the
	// shared trace (what a sweep worker's trace cache converges to).
	// Recording is inside the timed region: the first sweep request
	// pays for it too.
	start = time.Now()
	tr := eole.RecordTrace(w, m.sweepWarmup+m.sweepMeasure+eole.TraceSlack)
	for _, name := range sweepConfigs {
		cfg, err := eole.NamedConfig(name)
		if err != nil {
			return SweepResult{}, err
		}
		if _, err := eole.Simulate(cfg, w, m.sweepWarmup, m.sweepMeasure, eole.WithReplay(tr)); err != nil {
			return SweepResult{}, err
		}
	}
	res.WarmSeconds = time.Since(start).Seconds()
	fmt.Fprintf(os.Stderr, "  sweep    %d configs on %s: cold %.2fs, warm %.2fs\n",
		len(sweepConfigs), wlName, res.ColdSeconds, res.WarmSeconds)
	return res, nil
}

func runSampled(m matrix) (SampledResult, error) {
	const wlName = "long-dram"
	w, err := eole.WorkloadByName(wlName)
	if err != nil {
		return SampledResult{}, err
	}
	plan, err := m.sampled.Plan(m.sampledMeasure)
	if err != nil {
		return SampledResult{}, err
	}
	res := SampledResult{
		Configs:  sampledConfigs,
		Workload: wlName,
		Windows:  m.sampled.Windows,
		Skip:     m.sampled.Skip,
		Warm:     m.sampled.Warm,
		Measure:  m.sampledMeasure,
	}
	start := time.Now()
	for _, name := range sampledConfigs {
		cfg, err := eole.NamedConfig(name)
		if err != nil {
			return SampledResult{}, err
		}
		if _, err := eole.Simulate(cfg, w, m.sampledWarmup, m.sampledMeasure, eole.WithSampling(m.sampled)); err != nil {
			return SampledResult{}, err
		}
	}
	res.WallSeconds = time.Since(start).Seconds()
	covered := float64(plan.Total()+m.sampledWarmup) * float64(len(sampledConfigs))
	res.UopsCoveredPerSec = covered / res.WallSeconds
	fmt.Fprintf(os.Stderr, "  sampled  %d configs on %s: %.2fs, %.1f Mµops covered/s\n",
		len(sampledConfigs), wlName, res.WallSeconds, res.UopsCoveredPerSec/1e6)
	return res, nil
}

// runHotLoop measures the detailed cycle loop's heap traffic and
// throughput in steady state: warm first (all one-time growth done),
// then a single long Run bracketed by MemStats reads.
func runHotLoop(m matrix) (HotLoopResult, error) {
	const cfgName, wlName = "EOLE_4_64", "gzip"
	cfg, err := eole.NamedConfig(cfgName)
	if err != nil {
		return HotLoopResult{}, err
	}
	w, err := eole.WorkloadByName(wlName)
	if err != nil {
		return HotLoopResult{}, err
	}
	sim, err := eole.NewSimulator(cfg, w)
	if err != nil {
		return HotLoopResult{}, err
	}
	sim.Run(50_000)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	sim.Run(m.hotLoopUops)
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	kuops := float64(m.hotLoopUops) / 1e3
	res := HotLoopResult{
		Config:        cfgName,
		Workload:      wlName,
		Uops:          m.hotLoopUops,
		UopsPerSec:    float64(m.hotLoopUops) / wall,
		BytesPerKuop:  float64(after.TotalAlloc-before.TotalAlloc) / kuops,
		AllocsPerKuop: float64(after.Mallocs-before.Mallocs) / kuops,
	}
	fmt.Fprintf(os.Stderr, "  hot loop %s/%s: %.0f kµops/s, %.1f B/kµop, %.2f allocs/kµop\n",
		cfgName, wlName, res.UopsPerSec/1e3, res.BytesPerKuop, res.AllocsPerKuop)
	return res, nil
}
