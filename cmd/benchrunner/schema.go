package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// SchemaVersion identifies the BENCH file layout. Bump it when a field
// changes meaning; the comparator refuses to diff files with different
// schemas.
const SchemaVersion = "eole-bench/v1"

// Bench is the root of a BENCH_*.json file.
type Bench struct {
	Schema string `json:"schema"`
	// Smoke marks a reduced CI matrix: shorter runs, fewer cells.
	// Wall-clock numbers from a smoke file are not comparable to a
	// full run's, but per-cell throughput still catches gross
	// regressions.
	Smoke     bool   `json:"smoke,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	Detailed []DetailedCell `json:"detailed"`
	Sweep    SweepResult    `json:"sweep"`
	Sampled  SampledResult  `json:"sampled"`
	HotLoop  HotLoopResult  `json:"hot_loop"`
}

// DetailedCell is one (config, workload) detailed-mode run. CyclesPerSec
// is the headline metric: simulated cycles per wall-clock second.
type DetailedCell struct {
	Config   string `json:"config"`
	Workload string `json:"workload"`
	Warmup   uint64 `json:"warmup"`
	Measure  uint64 `json:"measure"`

	Cycles       uint64  `json:"cycles"`
	Committed    uint64  `json:"committed"`
	WallSeconds  float64 `json:"wall_seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	UopsPerSec   float64 `json:"uops_per_sec"`
}

// SweepResult times one multi-config sweep over a single workload,
// execute-driven ("cold": each simulation re-interprets the program)
// and trace-driven ("warm": the stream is recorded once and replayed
// from the shared in-memory trace, the state a sweep worker's cache
// reaches after the first request).
type SweepResult struct {
	Configs  []string `json:"configs"`
	Workload string   `json:"workload"`
	Warmup   uint64   `json:"warmup"`
	Measure  uint64   `json:"measure"`

	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
}

// SampledResult times the sampled long-dram sweep (the wall-clock case
// for SMARTS-style sampling): per config, most of the stream is
// fast-forwarded and only the measurement windows run in detail.
// UopsCoveredPerSec counts every stream µ-op covered (skipped, warmed
// or measured) across all configs.
type SampledResult struct {
	Configs  []string `json:"configs"`
	Workload string   `json:"workload"`
	Windows  int      `json:"windows"`
	Skip     uint64   `json:"skip"`
	Warm     uint64   `json:"warm"`
	Measure  uint64   `json:"measure"`

	WallSeconds       float64 `json:"wall_seconds"`
	UopsCoveredPerSec float64 `json:"uops_covered_per_sec"`
}

// HotLoopResult measures the detailed cycle loop's steady-state heap
// traffic directly (runtime.MemStats deltas around a long Run), the
// same quantity the allocation-budget tests pin.
type HotLoopResult struct {
	Config   string `json:"config"`
	Workload string `json:"workload"`
	Uops     uint64 `json:"uops"`

	UopsPerSec    float64 `json:"uops_per_sec"`
	BytesPerKuop  float64 `json:"bytes_per_kuop"`
	AllocsPerKuop float64 `json:"allocs_per_kuop"`
}

func readBench(path string) (*Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func writeBench(path string, b *Bench) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// validate checks the structural invariants the comparator and CI rely
// on. It returns every violation rather than stopping at the first.
func (b *Bench) validate() []string {
	var errs []string
	bad := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }

	if b.Schema != SchemaVersion {
		bad("schema %q, want %q", b.Schema, SchemaVersion)
	}
	if b.GoVersion == "" {
		bad("go_version missing")
	}
	if len(b.Detailed) == 0 {
		bad("detailed matrix is empty")
	}
	seen := map[string]bool{}
	for i, c := range b.Detailed {
		id := c.Config + "/" + c.Workload
		switch {
		case c.Config == "" || c.Workload == "":
			bad("detailed[%d]: empty config or workload", i)
		case seen[id]:
			bad("detailed[%d]: duplicate cell %s", i, id)
		}
		seen[id] = true
		if c.CyclesPerSec <= 0 || c.UopsPerSec <= 0 || c.WallSeconds <= 0 {
			bad("detailed[%d] %s: non-positive throughput", i, id)
		}
		if c.Cycles == 0 || c.Committed == 0 {
			bad("detailed[%d] %s: zero cycles or committed", i, id)
		}
	}
	if len(b.Sweep.Configs) == 0 || b.Sweep.ColdSeconds <= 0 || b.Sweep.WarmSeconds <= 0 {
		bad("sweep section incomplete")
	}
	if len(b.Sampled.Configs) == 0 || b.Sampled.WallSeconds <= 0 || b.Sampled.UopsCoveredPerSec <= 0 {
		bad("sampled section incomplete")
	}
	if b.HotLoop.Uops == 0 || b.HotLoop.UopsPerSec <= 0 {
		bad("hot_loop section incomplete")
	}
	if b.HotLoop.BytesPerKuop < 0 || b.HotLoop.AllocsPerKuop < 0 {
		bad("hot_loop: negative heap traffic")
	}
	return errs
}

func cmdValidate(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("validate: want exactly one FILE.json argument")
	}
	b, err := readBench(args[0])
	if err != nil {
		return err
	}
	if errs := b.validate(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "benchrunner: validate %s: %s\n", args[0], e)
		}
		return fmt.Errorf("%s: %d schema violation(s)", args[0], len(errs))
	}
	fmt.Printf("%s: valid (%s, %d detailed cells)\n", args[0], b.Schema, len(b.Detailed))
	return nil
}
