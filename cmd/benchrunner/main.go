// Command benchrunner is the repo's reproducible performance harness.
// It runs a pinned benchmark matrix — detailed-mode simulation speed
// per named config on four reference workloads, a 6-config sweep
// wall-clock with cold and warm trace cache, the sampled long-dram
// sweep wall-clock, and the hot loop's heap traffic — and writes a
// schema-versioned BENCH file. The committed BENCH_<pr>.json files at
// the repo root form the project's performance trajectory: every
// claimed speedup is reproducible by re-running the harness and
// diffing with the compare subcommand.
//
// Usage:
//
//	benchrunner run [-out BENCH_7.json] [-smoke]
//	benchrunner compare OLD.json NEW.json [-threshold 0.20]
//	benchrunner validate FILE.json
//
// compare exits nonzero when any detailed-mode cycles/sec metric in
// NEW regresses by more than the threshold relative to OLD (default
// 20%). validate exits nonzero when FILE does not conform to the
// schema (CI runs it against the committed file and against a freshly
// generated smoke file).
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "benchrunner: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  benchrunner run [-out BENCH_7.json] [-smoke]
      run the pinned benchmark matrix and write the BENCH file
      (-smoke shrinks the matrix for CI: fewer cells, shorter runs)
  benchrunner compare OLD.json NEW.json [-threshold 0.20]
      diff two BENCH files; exit 1 on a cycles/sec regression beyond
      the threshold
  benchrunner validate FILE.json
      check a BENCH file against the schema; exit 1 on violations
`)
}
