package main

import (
	"flag"
	"fmt"
	"os"
)

// cmdCompare diffs two BENCH files. The gate is the headline metric:
// a detailed-mode cycles/sec (or hot-loop µops/sec) drop beyond the
// threshold fails the comparison. Everything else — sweep and sampled
// wall-clock, heap traffic — is reported informationally: wall-clock
// sections time different machines' load conditions too noisily to
// gate on, and allocation budgets are already pinned by tests.
func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.20, "max tolerated fractional cycles/sec regression (0.20 = 20%)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("compare: want OLD.json NEW.json")
	}
	oldB, err := readBench(fs.Arg(0))
	if err != nil {
		return err
	}
	newB, err := readBench(fs.Arg(1))
	if err != nil {
		return err
	}
	if oldB.Schema != newB.Schema {
		return fmt.Errorf("schema mismatch: %q vs %q", oldB.Schema, newB.Schema)
	}
	if oldB.Smoke != newB.Smoke {
		fmt.Fprintf(os.Stderr, "benchrunner: note: comparing smoke=%v against smoke=%v; only overlapping cells are diffed\n",
			oldB.Smoke, newB.Smoke)
	}

	regressions := 0
	delta := func(oldV, newV float64) float64 { return newV/oldV - 1 }
	arrow := func(d float64) string {
		switch {
		case d < -*threshold:
			return "REGRESSION"
		case d < 0:
			return "-"
		default:
			return "+"
		}
	}

	oldCells := map[string]DetailedCell{}
	for _, c := range oldB.Detailed {
		oldCells[c.Config+"/"+c.Workload] = c
	}
	matched := 0
	fmt.Printf("%-24s %-8s %14s %14s %8s\n", "config", "workload", "old cyc/s", "new cyc/s", "delta")
	for _, n := range newB.Detailed {
		id := n.Config + "/" + n.Workload
		o, ok := oldCells[id]
		if !ok {
			fmt.Printf("%-24s %-8s %14s %14.0f %8s\n", n.Config, n.Workload, "(new cell)", n.CyclesPerSec, "")
			continue
		}
		matched++
		d := delta(o.CyclesPerSec, n.CyclesPerSec)
		mark := arrow(d)
		if mark == "REGRESSION" {
			regressions++
		}
		fmt.Printf("%-24s %-8s %14.0f %14.0f %+7.1f%% %s\n",
			n.Config, n.Workload, o.CyclesPerSec, n.CyclesPerSec, 100*d, mark)
	}
	if matched == 0 {
		return fmt.Errorf("no overlapping detailed cells between %s and %s", fs.Arg(0), fs.Arg(1))
	}

	d := delta(oldB.HotLoop.UopsPerSec, newB.HotLoop.UopsPerSec)
	mark := arrow(d)
	if oldB.HotLoop.Config == newB.HotLoop.Config && oldB.HotLoop.Workload == newB.HotLoop.Workload {
		if mark == "REGRESSION" {
			regressions++
		}
		fmt.Printf("\nhot loop (%s/%s): %.0f -> %.0f µops/s (%+.1f%%) %s\n",
			newB.HotLoop.Config, newB.HotLoop.Workload,
			oldB.HotLoop.UopsPerSec, newB.HotLoop.UopsPerSec, 100*d, mark)
		fmt.Printf("  heap: %.1f -> %.1f B/kµop, %.2f -> %.2f allocs/kµop\n",
			oldB.HotLoop.BytesPerKuop, newB.HotLoop.BytesPerKuop,
			oldB.HotLoop.AllocsPerKuop, newB.HotLoop.AllocsPerKuop)
	}

	fmt.Printf("\nsweep cold: %.2fs -> %.2fs (%+.1f%%)   warm: %.2fs -> %.2fs (%+.1f%%)\n",
		oldB.Sweep.ColdSeconds, newB.Sweep.ColdSeconds, 100*delta(oldB.Sweep.ColdSeconds, newB.Sweep.ColdSeconds),
		oldB.Sweep.WarmSeconds, newB.Sweep.WarmSeconds, 100*delta(oldB.Sweep.WarmSeconds, newB.Sweep.WarmSeconds))
	fmt.Printf("sampled sweep: %.2fs -> %.2fs (%+.1f%%)\n",
		oldB.Sampled.WallSeconds, newB.Sampled.WallSeconds, 100*delta(oldB.Sampled.WallSeconds, newB.Sampled.WallSeconds))

	if regressions > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%", regressions, 100**threshold)
	}
	fmt.Printf("\nOK: no cycles/sec regression beyond %.0f%% across %d cells\n", 100**threshold, matched)
	return nil
}
