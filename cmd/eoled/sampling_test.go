package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"eole"
	"eole/internal/simsvc"
)

// sampling spec used across the handler tests: small enough for fast
// httptests, structurally identical to production specs.
func testSpec() *eole.SamplingSpec {
	return &eole.SamplingSpec{Windows: 3, Warm: 2_000, DetailWarmup: 200}
}

// TestSimulateSampled: a sampling object on /v1/simulate produces a
// report carrying the confidence interval fields.
func TestSimulateSampled(t *testing.T) {
	h := newTestHandler(t)
	rec := postJSON(t, h, "/v1/simulate", simulateRequest{
		Config: namedRef("EOLE_4_64"), Workload: "gzip", Sampling: testSpec(),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"ipc_ci"`) {
		t.Error("sampled response body carries no ipc_ci field")
	}
	var r eole.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if !r.Sampled || r.SampleWindows != 3 {
		t.Errorf("report not marked sampled: sampled=%v windows=%d", r.Sampled, r.SampleWindows)
	}
	if r.IPC <= 0 || r.IPCCI < 0 {
		t.Errorf("degenerate sampled estimate: IPC %v ± %v", r.IPC, r.IPCCI)
	}
}

// TestSampledAndFullNeverShareCache: the same (config, workload,
// lengths) asked full and sampled must run two distinct simulations
// with distinct results — the sampling spec is part of the cache key.
func TestSampledAndFullNeverShareCache(t *testing.T) {
	svc, err := simsvc.New(simsvc.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	h := newServer(svc, serverOptions{defaultWarmup: 2_000, defaultMeasure: 5_000, maxUops: 1_000_000})

	full := postJSON(t, h, "/v1/simulate", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "gzip"})
	sampled := postJSON(t, h, "/v1/simulate", simulateRequest{
		Config: namedRef("EOLE_4_64"), Workload: "gzip", Sampling: testSpec(),
	})
	if full.Code != http.StatusOK || sampled.Code != http.StatusOK {
		t.Fatalf("status full %d sampled %d", full.Code, sampled.Code)
	}
	var fr, sr eole.Report
	if err := json.Unmarshal(full.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sampled.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if fr.Sampled || !sr.Sampled {
		t.Errorf("cache crossed modes: full.Sampled=%v sampled.Sampled=%v", fr.Sampled, sr.Sampled)
	}
	st := svc.Stats()
	if st.SimsRun != 2 || st.SimsSampled != 1 {
		t.Errorf("stats: sims_run=%d sims_sampled=%d, want 2 and 1", st.SimsRun, st.SimsSampled)
	}
	if st.CacheHits != 0 {
		t.Errorf("a sampled request hit the full-run cache (%d hits)", st.CacheHits)
	}

	// Re-asking each mode now hits its own entry.
	postJSON(t, h, "/v1/simulate", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "gzip"})
	postJSON(t, h, "/v1/simulate", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "gzip", Sampling: testSpec()})
	st = svc.Stats()
	if st.SimsRun != 2 || st.CacheHits != 2 {
		t.Errorf("repeat stats: sims_run=%d cache_hits=%d, want 2 and 2", st.SimsRun, st.CacheHits)
	}
}

// TestSweepSampled: a sampling object on /v1/sweep applies to every
// cell and every result carries the interval.
func TestSweepSampled(t *testing.T) {
	h := newTestHandler(t)
	rec := postJSON(t, h, "/v1/sweep", sweepRequest{
		Configs:   []configRef{namedRef("Baseline_6_64"), namedRef("EOLE_4_64")},
		Workloads: []string{"gzip"},
		Sampling:  testSpec(),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp sweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("%d results, want 2", len(resp.Results))
	}
	for _, res := range resp.Results {
		if res.Error != "" {
			t.Errorf("%s on %s: %s", res.Config, res.Workload, res.Error)
			continue
		}
		if !res.Report.Sampled || res.Report.SampleWindows != 3 {
			t.Errorf("%s: cell not sampled (%+v)", res.Config, res.Report.Sampled)
		}
	}
}

// TestSamplingValidation: structurally invalid specs and schedules
// beyond the stream budget are 400s, not worker failures.
func TestSamplingValidation(t *testing.T) {
	h := newTestHandler(t) // maxUops 1M
	for name, spec := range map[string]*eole.SamplingSpec{
		"one window":  {Windows: 1, Warm: 100},
		"huge stream": {Windows: 4096, Warm: 1 << 33},
		// An explicit per-window Measure must not smuggle detailed
		// work past the maxUops ceiling (1M on the test handler).
		"detailed over ceiling": {Windows: 15, Measure: 1_000_000},
	} {
		rec := postJSON(t, h, "/v1/simulate", simulateRequest{
			Config: namedRef("EOLE_4_64"), Workload: "gzip", Sampling: spec,
		})
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rec.Code, rec.Body.String())
		}
	}
	// The sweep path validates too.
	rec := postJSON(t, h, "/v1/sweep", sweepRequest{
		Workloads: []string{"gzip"},
		Sampling:  &eole.SamplingSpec{Windows: 1},
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("sweep with invalid spec: status %d", rec.Code)
	}
}

// TestSampledLongWorkload: the long-* family is reachable over the
// wire and sampled runs against it succeed.
func TestSampledLongWorkload(t *testing.T) {
	h := newTestHandler(t)
	rec := postJSON(t, h, "/v1/simulate", simulateRequest{
		Config: namedRef("EOLE_4_64"), Workload: "long-l1", Sampling: testSpec(),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var r eole.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "long-l1" || !r.Sampled {
		t.Errorf("report: %s sampled=%v", r.Benchmark, r.Sampled)
	}
}
