package main

import (
	"encoding/json"
	"encoding/xml"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"eole/internal/jobs"
	"eole/internal/obs"
	"eole/internal/simsvc"
)

// newTracedHandler builds a fully traced stack — service, job registry
// and HTTP layer all sharing one tracer — as -trace-ring would wire in
// production.
func newTracedHandler(t *testing.T) (http.Handler, *obs.Tracer) {
	t.Helper()
	tracer := obs.NewTracer("eoled@test", 16)
	svc, err := simsvc.New(simsvc.Options{Parallelism: 2, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	registry := jobs.New(svc, jobs.Options{Tracer: tracer})
	t.Cleanup(func() {
		registry.Close()
		svc.Close()
	})
	h := newServer(svc, serverOptions{
		defaultWarmup:  2_000,
		defaultMeasure: 5_000,
		maxUops:        1_000_000,
		jobs:           registry,
		tracer:         tracer,
	})
	return h, tracer
}

// spanNames collects the set of span names in a trace.
func spanNames(tr obs.Trace) map[string]bool {
	names := make(map[string]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	return names
}

// TestDebugTracesEndToEnd: one simulate request must yield one
// retained trace — addressable by trace ID (from X-Eole-Trace-Id) and
// by request ID — whose spans cover HTTP handling, the cache probe and
// both simulation phases, with ?format=svg rendering a well-formed
// timeline.
func TestDebugTracesEndToEnd(t *testing.T) {
	h, _ := newTracedHandler(t)
	rec := postJSON(t, h, "/v1/simulate", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "gzip"})
	if rec.Code != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", rec.Code, rec.Body.String())
	}
	traceID := rec.Header().Get(obs.TraceResponseHeader)
	if traceID == "" {
		t.Fatal("response missing " + obs.TraceResponseHeader)
	}
	requestID := rec.Header().Get(obs.RequestIDHeader)

	var list debugTracesResponse
	if rec := getJSON(t, h, "/v1/debug/traces", &list); rec.Code != http.StatusOK {
		t.Fatalf("list: status %d", rec.Code)
	}
	if !list.Enabled || len(list.Traces) == 0 {
		t.Fatalf("listing enabled=%v with %d traces, want enabled with >= 1", list.Enabled, len(list.Traces))
	}
	// The listing endpoint's own trace may have landed first; the
	// simulate trace must be present with its root named.
	var sum *obs.TraceSummary
	for i := range list.Traces {
		if list.Traces[i].TraceID == traceID {
			sum = &list.Traces[i]
		}
	}
	if sum == nil {
		t.Fatalf("trace %s absent from listing", traceID)
	}
	if sum.Root != "http.request" || sum.RequestID != requestID {
		t.Errorf("summary root=%q request=%q, want http.request/%q", sum.Root, sum.RequestID, requestID)
	}

	var tr obs.Trace
	if rec := getJSON(t, h, "/v1/debug/traces/"+traceID, &tr); rec.Code != http.StatusOK {
		t.Fatalf("get by trace ID: status %d", rec.Code)
	}
	names := spanNames(tr)
	for _, want := range []string{"http.request", "cache.probe", "queue.wait", "sim.warm", "sim.detailed"} {
		if !names[want] {
			t.Errorf("trace missing span %q (has %v)", want, names)
		}
	}

	// The same trace must resolve by request ID — the header clients
	// already log.
	var byReq obs.Trace
	if rec := getJSON(t, h, "/v1/debug/traces/"+requestID, &byReq); rec.Code != http.StatusOK {
		t.Fatalf("get by request ID: status %d", rec.Code)
	}
	if byReq.TraceID != traceID {
		t.Errorf("request-ID lookup returned trace %s, want %s", byReq.TraceID, traceID)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/debug/traces/"+traceID+"?format=svg", nil)
	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, req)
	if srec.Code != http.StatusOK {
		t.Fatalf("svg: status %d: %s", srec.Code, srec.Body.String())
	}
	if ct := srec.Header().Get("Content-Type"); ct != svgContentType {
		t.Errorf("svg Content-Type = %q, want %q", ct, svgContentType)
	}
	var node struct{}
	if err := xml.Unmarshal(srec.Body.Bytes(), &node); err != nil {
		t.Fatalf("svg not well-formed XML: %v", err)
	}
	if body := srec.Body.String(); !strings.Contains(body, "sim.detailed") {
		t.Error("svg timeline missing the sim.detailed row")
	}
}

// TestDebugTraceJobSpans: an async job's trace must carry the job.run
// envelope and one job.cell per cell, and the span-derived histograms
// must appear populated on /metrics.
func TestDebugTraceJobSpans(t *testing.T) {
	h, _ := newTracedHandler(t)
	resp := createJob(t, h, simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "namd"})
	waitJobState(t, h, resp.StatusURL, jobs.StateDone)

	// The job ran from the creating request's trace: find it via the
	// create response's request ID is not echoed here, so scan the ring
	// for the job.run span instead.
	var list debugTracesResponse
	getJSON(t, h, "/v1/debug/traces", &list)
	var tr obs.Trace
	found := false
	for _, sum := range list.Traces {
		var cand obs.Trace
		if rec := getJSON(t, h, "/v1/debug/traces/"+sum.TraceID, &cand); rec.Code != http.StatusOK {
			continue
		}
		if names := spanNames(cand); names["job.run"] {
			tr, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("no retained trace carries a job.run span")
	}
	names := spanNames(tr)
	for _, want := range []string{"http.request", "job.run", "job.cell", "sim.warm", "sim.detailed"} {
		if !names[want] {
			t.Errorf("job trace missing span %q (has %v)", want, names)
		}
	}

	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, mreq)
	text := mrec.Body.String()
	if err := obs.Lint(mrec.Body.Bytes()); err != nil {
		t.Fatalf("exposition fails lint: %v", err)
	}
	if !strings.Contains(text, "eole_job_duration_seconds_count 1") {
		t.Errorf("eole_job_duration_seconds not observed once:\n%s", grepMetric(text, "eole_job_duration_seconds"))
	}
	if !strings.Contains(text, "eole_job_queue_wait_seconds_count 1") {
		t.Errorf("eole_job_queue_wait_seconds not observed once:\n%s", grepMetric(text, "eole_job_queue_wait_seconds"))
	}
}

// TestDebugTracesDisabled: without a tracer the listing answers
// enabled=false with an empty array and lookups 404 with a hint,
// rather than the endpoints vanishing from the route table.
func TestDebugTracesDisabled(t *testing.T) {
	h := newTestHandler(t) // no tracer
	var list debugTracesResponse
	if rec := getJSON(t, h, "/v1/debug/traces", &list); rec.Code != http.StatusOK {
		t.Fatalf("list: status %d", rec.Code)
	}
	if list.Enabled || list.Traces == nil || len(list.Traces) != 0 {
		t.Errorf("disabled listing = %+v, want enabled=false with empty traces", list)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/debug/traces/deadbeef", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("lookup on disabled tracer: status %d, want 404", rec.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || !strings.Contains(er.Error, "tracing disabled") {
		t.Errorf("error = %q, want a tracing-disabled hint", er.Error)
	}
}

// TestDebugTraceNotFound: an enabled tracer still 404s unknown IDs.
func TestDebugTraceNotFound(t *testing.T) {
	h, _ := newTracedHandler(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/debug/traces/no-such-trace", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
}
