package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"eole/internal/jobs"
	"eole/internal/simsvc"
)

// newJobsHandler builds a handler with its own service handle exposed
// so tests can watch abandonment counters, plus a short stream
// heartbeat so keep-alive frames are observable in test time.
func newJobsHandler(t *testing.T, par int, heartbeat time.Duration) (http.Handler, *simsvc.Service) {
	t.Helper()
	svc, err := simsvc.New(simsvc.Options{Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	h := newServer(svc, serverOptions{
		defaultWarmup:  2_000,
		defaultMeasure: 5_000,
		maxUops:        50_000_000,
		jobHeartbeat:   heartbeat,
	})
	return h, svc
}

// createJob posts a body to /v1/jobs and decodes the 202.
func createJob(t *testing.T, h http.Handler, body any) jobCreateResponse {
	t.Helper()
	rec := postJSON(t, h, "/v1/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d: %s", rec.Code, rec.Body.String())
	}
	var resp jobCreateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID == "" || resp.StatusURL == "" || resp.EventsURL == "" {
		t.Fatalf("incomplete create response: %+v", resp)
	}
	return resp
}

// waitJobState polls the status URL until the job is terminal.
func waitJobState(t *testing.T, h http.Handler, statusURL string, want jobs.State) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st jobs.Status
		if rec := getJSON(t, h, statusURL, &st); rec.Code != http.StatusOK {
			t.Fatalf("GET %s: %d", statusURL, rec.Code)
		}
		if st.State.Terminal() {
			if st.State != want {
				t.Fatalf("terminal state %q, want %q", st.State, want)
			}
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job never reached %q", want)
	return jobs.Status{}
}

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	id    int
	event string
	data  string
}

// parseSSE splits a server-sent-event body into frames, keeping
// comment frames (": hb") as event "comment".
func parseSSE(t *testing.T, body string) []sseFrame {
	t.Helper()
	var frames []sseFrame
	for _, chunk := range strings.Split(body, "\n\n") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		var f sseFrame
		for _, line := range strings.Split(chunk, "\n") {
			switch {
			case strings.HasPrefix(line, ": "):
				f.event = "comment"
			case strings.HasPrefix(line, "id: "):
				n, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
				if err != nil {
					t.Fatalf("bad SSE id line %q", line)
				}
				f.id = n
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.data = strings.TrimPrefix(line, "data: ")
			default:
				t.Fatalf("unexpected SSE line %q", line)
			}
		}
		frames = append(frames, f)
	}
	return frames
}

// TestJobCreatePollDelete covers the non-streaming lifecycle over
// HTTP: create (both request forms), poll to completion, list, 404s,
// and idempotent cancellation of a terminal job.
func TestJobCreatePollDelete(t *testing.T) {
	h, _ := newJobsHandler(t, 2, 0)

	// Sweep form.
	sweep := createJob(t, h, jobRequest{
		Configs:   []configRef{namedRef("EOLE_4_64"), namedRef("Baseline_6_64")},
		Workloads: []string{"gzip", "art"},
	})
	if sweep.CellsTotal != 4 {
		t.Fatalf("sweep job sized %d, want 4", sweep.CellsTotal)
	}
	st := waitJobState(t, h, sweep.StatusURL, jobs.StateDone)
	if st.CellsCompleted != 4 || st.CellsFailed != 0 || len(st.Cells) != 4 {
		t.Fatalf("terminal status %+v", st)
	}

	// Simulate form, inline config body via the same union endpoint.
	cfg, err := namedRef("EOLE_4_64").resolve()
	if err != nil {
		t.Fatal(err)
	}
	one := createJob(t, h, jobRequest{Config: ptr(inlineRef(cfg)), Workload: "namd"})
	if one.CellsTotal != 1 {
		t.Fatalf("simulate-form job sized %d, want 1", one.CellsTotal)
	}
	waitJobState(t, h, one.StatusURL, jobs.StateDone)

	var list jobListResponse
	if rec := getJSON(t, h, "/v1/jobs", &list); rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/jobs: %d", rec.Code)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("%d jobs listed, want 2", len(list.Jobs))
	}
	if list.Jobs[0].ID != sweep.ID || list.Jobs[1].ID != one.ID {
		t.Errorf("list order %s,%s, want oldest first %s,%s",
			list.Jobs[0].ID, list.Jobs[1].ID, sweep.ID, one.ID)
	}

	// Deleting a terminal job is a no-op that still answers 200.
	req := httptest.NewRequest(http.MethodDelete, sweep.StatusURL, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("DELETE terminal job: %d, want 200", rec.Code)
	}

	// Unknown IDs are 404 on every verb.
	for _, probe := range []*http.Request{
		httptest.NewRequest(http.MethodGet, "/v1/jobs/deadbeefdeadbeef", nil),
		httptest.NewRequest(http.MethodDelete, "/v1/jobs/deadbeefdeadbeef", nil),
		httptest.NewRequest(http.MethodGet, "/v1/jobs/deadbeefdeadbeef/events", nil),
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, probe)
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s %s: %d, want 404", probe.Method, probe.URL.Path, rec.Code)
		}
	}
}

func ptr[T any](v T) *T { return &v }

// TestJobRequestValidation pins the union-body rules: strict decode,
// no form mixing, and the same config/workload validation the
// synchronous endpoints apply.
func TestJobRequestValidation(t *testing.T) {
	h, _ := newJobsHandler(t, 1, 0)
	for name, body := range map[string]any{
		"mixed forms":             jobRequest{Config: ptr(namedRef("EOLE_4_64")), Workload: "gzip", Workloads: []string{"art"}},
		"workload without config": jobRequest{Workload: "gzip"},
		"unknown config":          jobRequest{Config: ptr(namedRef("NoSuch")), Workload: "gzip"},
		"unknown workload":        jobRequest{Config: ptr(namedRef("EOLE_4_64")), Workload: "nope"},
		"unknown field":           map[string]any{"confgs": []string{"EOLE_4_64"}},
	} {
		if rec := postJSON(t, h, "/v1/jobs", body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", name, rec.Code)
		}
	}
	// Bad resume cursors on the events endpoint.
	job := createJob(t, h, jobRequest{Config: ptr(namedRef("EOLE_4_64")), Workload: "gzip"})
	waitJobState(t, h, job.StatusURL, jobs.StateDone)
	for _, q := range []string{"?from=x", "?from=-1"} {
		req := httptest.NewRequest(http.MethodGet, job.EventsURL+q, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("events%s: %d, want 400", q, rec.Code)
		}
	}
}

// TestJobEventsSSE pins the SSE wire format and the replay semantics
// against a terminal job: frame ids mirror event seqs, ordering is
// total with the terminal frame last, ?from and Last-Event-ID resume
// mid-log, and a replayed suffix never re-sends what the client has.
func TestJobEventsSSE(t *testing.T) {
	h, _ := newJobsHandler(t, 2, 0)
	job := createJob(t, h, jobRequest{
		Configs:   []configRef{namedRef("EOLE_4_64")},
		Workloads: []string{"gzip", "art"},
	})
	waitJobState(t, h, job.StatusURL, jobs.StateDone)

	req := httptest.NewRequest(http.MethodGet, job.EventsURL, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("events: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type %q", ct)
	}
	frames := parseSSE(t, rec.Body.String())
	if len(frames) != 3 {
		t.Fatalf("%d frames, want 2 cells + terminal", len(frames))
	}
	for i, f := range frames {
		if f.id != i+1 {
			t.Errorf("frame %d has id %d, want seq-contiguous", i, f.id)
		}
		var ev jobs.Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame %d data: %v", i, err)
		}
		if ev.Seq != f.id {
			t.Errorf("frame %d: id %d != data seq %d", i, f.id, ev.Seq)
		}
		if i < 2 {
			if f.event != jobs.EventCell || ev.Cell == nil || ev.Cell.Report == nil {
				t.Errorf("frame %d is %q with cell %v, want a report-carrying cell", i, f.event, ev.Cell)
			}
		} else if f.event != jobs.EventDone || ev.State != jobs.StateDone {
			t.Errorf("terminal frame %q state %q", f.event, ev.State)
		}
	}

	// ?from resumes after the given seq.
	req = httptest.NewRequest(http.MethodGet, job.EventsURL+"?from=2", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := parseSSE(t, rec.Body.String()); len(got) != 1 || got[0].id != 3 {
		t.Errorf("?from=2 replayed %d frames (first id %d), want just the terminal", len(got), got[0].id)
	}
	// Last-Event-ID (what a reconnecting EventSource sends) does too.
	req = httptest.NewRequest(http.MethodGet, job.EventsURL, nil)
	req.Header.Set("Last-Event-ID", "1")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := parseSSE(t, rec.Body.String()); len(got) != 2 || got[0].id != 2 {
		t.Errorf("Last-Event-ID resume replayed %d frames, want 2 from seq 2", len(got))
	}
}

// TestJobEventsNDJSON: the Accept negotiation and the line protocol —
// every line one event object, same ordering and terminal guarantees
// as SSE.
func TestJobEventsNDJSON(t *testing.T) {
	h, _ := newJobsHandler(t, 2, 0)
	job := createJob(t, h, jobRequest{
		Configs:   []configRef{namedRef("EOLE_4_64")},
		Workloads: []string{"gzip"},
	})
	waitJobState(t, h, job.StatusURL, jobs.StateDone)

	req := httptest.NewRequest(http.MethodGet, job.EventsURL, nil)
	req.Header.Set("Accept", "application/x-ndjson")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("events: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want cell + terminal", len(lines))
	}
	var cell, done jobs.Event
	if err := json.Unmarshal([]byte(lines[0]), &cell); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &done); err != nil {
		t.Fatal(err)
	}
	if cell.Type != jobs.EventCell || cell.Seq != 1 || cell.Cell.Report == nil {
		t.Errorf("first line %+v", cell)
	}
	if done.Type != jobs.EventDone || done.State != jobs.StateDone || done.Completed != 1 {
		t.Errorf("terminal line %+v", done)
	}
}

// TestJobEventsLiveResume drives a real server: attach to a running
// job's stream, drop the connection mid-stream, re-attach with the
// resume cursor, and verify the union of both reads is exactly the
// full event sequence — the reconnect loses nothing and repeats
// nothing.
func TestJobEventsLiveResume(t *testing.T) {
	h, _ := newJobsHandler(t, 1, 0)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	job := createJob(t, h, jobRequest{
		Configs:   []configRef{namedRef("EOLE_4_64"), namedRef("Baseline_6_64")},
		Workloads: []string{"gzip", "art"},
		Measure:   20_000,
	})

	// First attach: NDJSON (easier to read incrementally), read the
	// first cell event, then hang up mid-stream.
	req, err := http.NewRequest(http.MethodGet, srv.URL+job.EventsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attach: %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var first jobs.Event
	if err := json.Unmarshal(line, &first); err != nil {
		t.Fatal(err)
	}
	if first.Type != jobs.EventCell || first.Seq != 1 {
		t.Fatalf("first streamed event %+v", first)
	}
	resp.Body.Close() // mid-stream disconnect

	// Re-attach resuming after what we saw; read to the terminal.
	req, err = http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s%s?from=%d", srv.URL, job.EventsURL, first.Seq), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	seen := map[int]bool{first.Seq: true}
	sc := bufio.NewScanner(resp.Body)
	var last jobs.Event
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == jobs.EventHeartbeat {
			continue
		}
		if seen[ev.Seq] {
			t.Errorf("seq %d delivered twice across reconnect", ev.Seq)
		}
		seen[ev.Seq] = true
		last = ev
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if last.Type != jobs.EventDone || last.State != jobs.StateDone {
		t.Fatalf("stream ended on %+v, want the done terminal", last)
	}
	// 4 cells + terminal, each exactly once across both connections.
	for seq := 1; seq <= 5; seq++ {
		if !seen[seq] {
			t.Errorf("seq %d lost across reconnect", seq)
		}
	}
	if len(seen) != 5 {
		t.Errorf("%d distinct events, want 5", len(seen))
	}
}

// TestJobEventsHeartbeatAndCancel: an idle stream emits keep-alive
// frames, and DELETE terminates it with a canceled terminal event —
// observed end to end as an abandoned simulation in /v1/stats.
func TestJobEventsHeartbeatAndCancel(t *testing.T) {
	h, svc := newJobsHandler(t, 1, 5*time.Millisecond)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	// One long cell so the stream sits idle emitting heartbeats.
	job := createJob(t, h, jobRequest{
		Config:   ptr(namedRef("EOLE_4_64")),
		Workload: "mcf",
		Measure:  5_000_000,
	})
	req, err := http.NewRequest(http.MethodGet, srv.URL+job.EventsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	heartbeats := 0
	canceled := false
	var terminal jobs.Event
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if ev.Type == jobs.EventHeartbeat {
			heartbeats++
			if heartbeats >= 3 && !canceled {
				// Proven alive while idle: now cancel server-side.
				canceled = true
				dreq, err := http.NewRequest(http.MethodDelete, srv.URL+job.StatusURL, nil)
				if err != nil {
					t.Fatal(err)
				}
				dresp, err := http.DefaultClient.Do(dreq)
				if err != nil {
					t.Fatal(err)
				}
				io.Copy(io.Discard, dresp.Body)
				dresp.Body.Close()
				if dresp.StatusCode != http.StatusOK {
					t.Fatalf("DELETE: %d", dresp.StatusCode)
				}
			}
			continue
		}
		terminal = ev
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if heartbeats < 3 {
		t.Errorf("%d heartbeats observed, want >= 3", heartbeats)
	}
	if terminal.Type != jobs.EventDone || terminal.State != jobs.StateCanceled {
		t.Fatalf("stream ended on %+v, want a canceled terminal frame", terminal)
	}

	// The cancel reached the simulator: the running cell is abandoned
	// (watcher poll, so give it a moment), and /v1/stats surfaces it
	// along with the registry accounting.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && svc.Stats().SimsAbandoned == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	var st statsResponse
	if rec := getJSON(t, h, "/v1/stats", &st); rec.Code != http.StatusOK {
		t.Fatalf("/v1/stats: %d", rec.Code)
	}
	if st.SimsAbandoned < 1 {
		t.Errorf("sims_abandoned = %d after DELETE, want >= 1", st.SimsAbandoned)
	}
	if st.Jobs.Created < 1 || st.Jobs.Canceled != 1 {
		t.Errorf("stats jobs block %+v", st.Jobs)
	}
}

// TestJobStreamClientDisconnect: a client that vanishes mid-stream
// must release its server-side streamer (stream gauge back to zero)
// without disturbing the job.
func TestJobStreamClientDisconnect(t *testing.T) {
	h, _ := newJobsHandler(t, 1, 5*time.Millisecond)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	job := createJob(t, h, jobRequest{
		Config:   ptr(namedRef("EOLE_4_64")),
		Workload: "mcf",
		Measure:  2_000_000,
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+job.EventsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one heartbeat so the streamer is provably attached, then
	// drop the connection.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st statsResponse
		getJSON(t, h, "/v1/stats", &st)
		if st.Jobs.Streams == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var st statsResponse
	getJSON(t, h, "/v1/stats", &st)
	if st.Jobs.Streams != 0 {
		t.Errorf("%d streams still attached after client disconnect", st.Jobs.Streams)
	}
	// The job itself is unaffected; clean up by cancel.
	dreq := httptest.NewRequest(http.MethodDelete, job.StatusURL, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, dreq)
	if rec.Code != http.StatusOK {
		t.Fatalf("cleanup DELETE: %d", rec.Code)
	}
	waitJobState(t, h, job.StatusURL, jobs.StateCanceled)
}
