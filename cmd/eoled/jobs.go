package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"eole"
	"eole/internal/jobs"
	"eole/internal/simsvc"
)

// jobRequest is the wire form of POST /v1/jobs: the union of the
// /v1/simulate and /v1/sweep bodies, so any request that works
// synchronously works asynchronously unchanged. The form is inferred:
// "config"/"workload" (singular) is a one-cell simulate job,
// "configs"/"grid"/"workloads" is a sweep job; mixing the two is an
// error rather than a guess.
type jobRequest struct {
	// Simulate form.
	Config   *configRef `json:"config,omitempty"`
	Workload string     `json:"workload,omitempty"`
	// Sweep form.
	Configs   []configRef `json:"configs,omitempty"`
	Grid      *eole.Grid  `json:"grid,omitempty"`
	Workloads []string    `json:"workloads,omitempty"`
	// Shared.
	Warmup   uint64             `json:"warmup,omitempty"`
	Measure  uint64             `json:"measure,omitempty"`
	Sampling *eole.SamplingSpec `json:"sampling,omitempty"`
}

// jobCreateResponse answers POST /v1/jobs with everything a client
// needs to follow up: poll StatusURL, stream EventsURL, DELETE
// StatusURL to cancel.
type jobCreateResponse struct {
	ID         string     `json:"id"`
	State      jobs.State `json:"state"`
	CellsTotal int        `json:"cells_total"`
	StatusURL  string     `json:"status_url"`
	EventsURL  string     `json:"events_url"`
}

type jobListResponse struct {
	Jobs []jobs.Status `json:"jobs"`
}

// resolveJobRequest classifies the union body and expands it to the
// cell list, reusing the exact simulate/sweep resolution paths so the
// async API cannot drift from the synchronous one.
func (s *server) resolveJobRequest(req jobRequest) ([]simsvc.Request, error) {
	simulateForm := req.Config != nil || req.Workload != ""
	sweepForm := len(req.Configs) > 0 || req.Grid != nil || len(req.Workloads) > 0
	if simulateForm && sweepForm {
		return nil, errors.New(`request mixes the simulate form ("config"/"workload") with the sweep form ("configs"/"grid"/"workloads") — use one`)
	}
	if simulateForm {
		if req.Config == nil {
			return nil, errors.New(`"workload" without "config": the simulate form needs both`)
		}
		sreq, err := s.buildRequest(simulateRequest{
			Config:   *req.Config,
			Workload: req.Workload,
			Warmup:   req.Warmup,
			Measure:  req.Measure,
			Sampling: req.Sampling,
		})
		if err != nil {
			return nil, err
		}
		return []simsvc.Request{sreq}, nil
	}
	return s.resolveSweep(sweepRequest{
		Configs:   req.Configs,
		Grid:      req.Grid,
		Workloads: req.Workloads,
		Warmup:    req.Warmup,
		Measure:   req.Measure,
		Sampling:  req.Sampling,
	})
}

func (s *server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := decodeStrict(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	reqs, err := s.resolveJobRequest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Same admission policy as the synchronous endpoints: only cells
	// that would actually occupy a queue slot count against the bound,
	// so warm or duplicate jobs are admitted even under backlog.
	if cold := s.coldCells(reqs); cold > 0 && s.overloadedBy(w, cold) {
		return
	}
	job, err := s.jobs.Create(r.Context(), reqs)
	if err != nil {
		if errors.Is(err, jobs.ErrBusy) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, jobCreateResponse{
		ID:         job.ID(),
		State:      jobs.StateQueued,
		CellsTotal: len(reqs),
		StatusURL:  "/v1/jobs/" + job.ID(),
		EventsURL:  "/v1/jobs/" + job.ID() + "/events",
	})
}

func (s *server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	list := s.jobs.List()
	if list == nil {
		list = []jobs.Status{}
	}
	writeJSON(w, http.StatusOK, jobListResponse{Jobs: list})
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, jobs.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, job.Status(true))
}

// handleJobCancel cancels via the job's own context, which feeds the
// service's abandonment path: queued cells are dropped, and running
// simulations with no other waiters stop at the core's next
// checkpoint (counted as sims_abandoned). The response is the
// post-cancel snapshot; cancellation of a terminal job is a no-op,
// not an error.
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, jobs.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, job.Status(true))
}

// wantsNDJSON reports whether the Accept header prefers NDJSON over
// the SSE default. The check is deliberately simple: any mention of
// the NDJSON media type opts in; everything else (including */*)
// gets SSE, the format browsers' EventSource speaks natively.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// eventsAfter resolves the resume position: an explicit ?from=N query
// wins, else the SSE-standard Last-Event-ID header a reconnecting
// EventSource sends automatically. Both mean "I have seen seq <= N".
func eventsAfter(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("from")
	if raw == "" {
		raw = r.Header.Get("Last-Event-ID")
	}
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad resume position %q: want a non-negative event seq", raw)
	}
	return n, nil
}

// handleJobEvents streams the job's event log: replay everything
// after the resume position, then follow live appends until the
// terminal event, a heartbeat keeping idle connections alive in
// between. SSE by default; NDJSON via Accept. The stream always ends
// with the terminal frame — a late attach to a finished job replays
// the full log and closes immediately, so clients never block on a
// job that is already over.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, jobs.ErrNotFound)
		return
	}
	after, err := eventsAfter(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported by this connection"))
		return
	}
	ndjson := wantsNDJSON(r)
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	s.jobs.StreamAttached()
	defer s.jobs.StreamDetached()
	heartbeat := s.opts.jobHeartbeat
	if heartbeat <= 0 {
		heartbeat = 15 * time.Second
	}
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		evs, changed := job.EventsSince(after)
		for i := range evs {
			if err := writeEvent(w, evs[i], ndjson); err != nil {
				return
			}
			after = evs[i].Seq
			if evs[i].Type == jobs.EventDone {
				flusher.Flush()
				return
			}
		}
		flusher.Flush()
		select {
		case <-changed:
		case <-ticker.C:
			if err := writeHeartbeat(w, ndjson); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent emits one frame. SSE carries the seq as the frame id (so
// EventSource reconnects resume for free via Last-Event-ID) and the
// event type in the event field; the data line is the same JSON the
// NDJSON form sends whole.
func writeEvent(w http.ResponseWriter, ev jobs.Event, ndjson bool) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if ndjson {
		data = append(data, '\n')
		_, err = w.Write(data)
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

// writeHeartbeat keeps an idle stream's connection (and any proxies
// on the way) from timing out. SSE uses a comment frame, which
// EventSource ignores by design; NDJSON sends an explicit typed line
// so line-oriented consumers can skip it without guessing.
func writeHeartbeat(w http.ResponseWriter, ndjson bool) error {
	var err error
	if ndjson {
		_, err = fmt.Fprintf(w, "{\"type\":%q}\n", jobs.EventHeartbeat)
	} else {
		_, err = fmt.Fprint(w, ": hb\n\n")
	}
	return err
}

// coldCells counts the unique cells a backlogged service would
// actually have to queue: cached or in-flight-coalescable cells are
// served for free, and duplicates within the request coalesce into
// one slot, so all are excluded. Shared by /v1/sweep and /v1/jobs
// admission.
func (s *server) coldCells(reqs []simsvc.Request) int {
	cold := 0
	seen := make(map[simsvc.Key]bool, len(reqs))
	for i := range reqs {
		k := simsvc.KeyOf(reqs[i])
		if seen[k] {
			continue
		}
		seen[k] = true
		if !s.svc.FreeToServeKey(k) {
			cold++
		}
	}
	return cold
}
