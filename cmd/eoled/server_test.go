package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"eole"
	"eole/internal/cluster"
	"eole/internal/simsvc"
)

// newTestHandler spins up a service + handler with short default run
// lengths so the suite stays fast.
func newTestHandler(t *testing.T) http.Handler {
	t.Helper()
	svc, err := simsvc.New(simsvc.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return newServer(svc, serverOptions{defaultWarmup: 2_000, defaultMeasure: 5_000, maxUops: 1_000_000})
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func getJSON(t *testing.T, h http.Handler, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
	}
	return rec
}

func TestSimulateRoundTrip(t *testing.T) {
	h := newTestHandler(t)
	rec := postJSON(t, h, "/v1/simulate", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "namd"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var r eole.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Config != "EOLE_4_64" || r.Benchmark != "namd" {
		t.Errorf("report identifies %s on %s", r.Config, r.Benchmark)
	}
	if r.IPC <= 0 || r.Cycles == 0 {
		t.Errorf("degenerate report: IPC %v over %d cycles", r.IPC, r.Cycles)
	}
	if r.Raw().Committed == 0 {
		t.Error("raw counters must survive the wire")
	}
}

func TestSimulateValidation(t *testing.T) {
	h := newTestHandler(t)
	for _, tc := range []struct {
		name string
		req  simulateRequest
	}{
		{"unknown config", simulateRequest{Config: namedRef("NoSuch"), Workload: "namd"}},
		{"unknown workload", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "nope"}},
		{"over limit", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "namd", Measure: 2_000_000}},
		{"uint64 overflow", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "namd", Warmup: math.MaxUint64, Measure: 2}},
	} {
		rec := postJSON(t, h, "/v1/simulate", tc.req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, rec.Code)
		}
		var e errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body missing", tc.name)
		}
	}
	// Malformed JSON body.
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader([]byte("{")))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", rec.Code)
	}
}

// TestConcurrentSweeps is the acceptance check: concurrent /v1/sweep
// requests that share a baseline column all succeed with valid
// reports, and the shared key simulates exactly once service-wide.
func TestConcurrentSweeps(t *testing.T) {
	svc, err := simsvc.New(simsvc.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	h := newServer(svc, serverOptions{defaultWarmup: 2_000, defaultMeasure: 5_000, maxUops: 1_000_000})

	sweeps := []sweepRequest{
		{Configs: []configRef{namedRef("Baseline_6_64"), namedRef("EOLE_4_64")}, Workloads: []string{"gzip", "art"}},
		{Configs: []configRef{namedRef("Baseline_6_64"), namedRef("EOLE_6_64")}, Workloads: []string{"gzip", "art"}},
		{Configs: []configRef{namedRef("Baseline_6_64")}, Workloads: []string{"gzip", "art", "crafty"}},
	}
	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, len(sweeps))
	for i, sw := range sweeps {
		wg.Add(1)
		go func(i int, sw sweepRequest) {
			defer wg.Done()
			recs[i] = postJSON(t, h, "/v1/sweep", sw)
		}(i, sw)
	}
	wg.Wait()

	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("sweep %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		var resp sweepResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
		want := len(sweeps[i].Configs) * len(sweeps[i].Workloads)
		if len(resp.Results) != want {
			t.Fatalf("sweep %d: %d results, want %d", i, len(resp.Results), want)
		}
		for _, res := range resp.Results {
			if res.Error != "" {
				t.Errorf("sweep %d: %s on %s: %s", i, res.Config, res.Workload, res.Error)
				continue
			}
			if res.Report == nil || res.Report.IPC <= 0 {
				t.Errorf("sweep %d: %s on %s: invalid report", i, res.Config, res.Workload)
			}
		}
	}

	// 7 unique (config, workload) pairs across the three sweeps:
	// Baseline×{gzip,art,crafty}, EOLE_4_64×{gzip,art}, EOLE_6_64×{gzip,art}.
	if st := svc.Stats(); st.SimsRun != 7 {
		t.Errorf("SimsRun = %d, want 7 (one per unique key across concurrent sweeps)", st.SimsRun)
	}
}

func TestSweepPerJobErrors(t *testing.T) {
	h := newTestHandler(t)
	// An unknown config in a sweep fails the request up front (the
	// grid cannot be built).
	rec := postJSON(t, h, "/v1/sweep", sweepRequest{
		Configs: []configRef{namedRef("NoSuch")}, Workloads: []string{"gzip"},
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown config: status %d, want 400", rec.Code)
	}
}

func TestSweepResourceLimits(t *testing.T) {
	h := newTestHandler(t)
	// A grid larger than maxSweepCells is rejected before any name
	// resolution or job submission.
	big := make([]configRef, maxSweepCells)
	for i := range big {
		big[i] = namedRef("EOLE_4_64")
	}
	rec := postJSON(t, h, "/v1/sweep", sweepRequest{Configs: big, Workloads: []string{"gzip", "art"}})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversized grid: status %d, want 400", rec.Code)
	}
	// An oversized request body is rejected by MaxBytesReader.
	body := bytes.Repeat([]byte("x"), maxBodyBytes+1)
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader(body))
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", rec2.Code)
	}
}

func TestListingAndStats(t *testing.T) {
	h := newTestHandler(t)

	var cfgs struct {
		Configs []string `json:"configs"`
	}
	if rec := getJSON(t, h, "/v1/configs", &cfgs); rec.Code != http.StatusOK {
		t.Fatalf("/v1/configs: %d", rec.Code)
	}
	if len(cfgs.Configs) == 0 {
		t.Error("no configs listed")
	}

	var wls struct {
		Workloads []workloadInfo `json:"workloads"`
	}
	if rec := getJSON(t, h, "/v1/workloads", &wls); rec.Code != http.StatusOK {
		t.Fatalf("/v1/workloads: %d", rec.Code)
	}
	// The Table 3 suite plus the long-* phased family.
	if want := 19 + len(eole.LongWorkloads()); len(wls.Workloads) != want {
		t.Errorf("%d workloads, want %d", len(wls.Workloads), want)
	}

	// Run one sim, then check the counters moved.
	if rec := postJSON(t, h, "/v1/simulate", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "gzip"}); rec.Code != http.StatusOK {
		t.Fatalf("simulate: %d", rec.Code)
	}
	var st simsvc.Stats
	if rec := getJSON(t, h, "/v1/stats", &st); rec.Code != http.StatusOK {
		t.Fatalf("/v1/stats: %d", rec.Code)
	}
	if st.SimsRun != 1 || st.JobsSubmitted != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestMethodRouting(t *testing.T) {
	h := newTestHandler(t)
	// GET on a POST route and vice versa must 405, not panic.
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/v1/simulate"},
		{http.MethodPost, "/v1/configs"},
	} {
		req := httptest.NewRequest(tc.method, tc.path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, rec.Code)
		}
	}
}

// TestHealthz checks the liveness endpoint: cheap, JSON, and carrying
// the identity fields the cluster prober and load balancers key on.
func TestHealthz(t *testing.T) {
	svc, err := simsvc.New(simsvc.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	h := newServer(svc, serverOptions{defaultWarmup: 1_000, defaultMeasure: 3_000, maxUops: 1_000_000, version: "test-1"})

	var health cluster.Health
	if rec := getJSON(t, h, "/v1/healthz", &health); rec.Code != http.StatusOK {
		t.Fatalf("/v1/healthz: %d", rec.Code)
	}
	if health.Status != "ok" || health.Version != "test-1" {
		t.Errorf("healthz identity: %+v", health)
	}
	if health.Parallelism != 2 || health.Coordinator {
		t.Errorf("healthz shape: %+v", health)
	}
}

// TestEndpointCounters checks that /v1/stats attributes requests and
// errors per endpoint (what merged cluster stats use to attribute load
// per worker) while remaining decodable as plain simsvc.Stats.
func TestEndpointCounters(t *testing.T) {
	h := newTestHandler(t)
	if rec := postJSON(t, h, "/v1/simulate", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "gzip"}); rec.Code != http.StatusOK {
		t.Fatalf("simulate: %d", rec.Code)
	}
	if rec := postJSON(t, h, "/v1/simulate", simulateRequest{Config: namedRef("NoSuch"), Workload: "gzip"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad simulate: %d, want 400", rec.Code)
	}
	var st statsResponse
	if rec := getJSON(t, h, "/v1/stats", &st); rec.Code != http.StatusOK {
		t.Fatalf("/v1/stats: %d", rec.Code)
	}
	sim := st.Endpoints["/v1/simulate"]
	if sim.Requests != 2 || sim.Errors != 1 {
		t.Errorf("/v1/simulate counters = %+v, want 2 requests / 1 error", sim)
	}
	if st.Endpoints["/v1/stats"].Requests != 1 {
		t.Errorf("/v1/stats did not count itself: %+v", st.Endpoints["/v1/stats"])
	}
	// Flattened service counters stay top-level for pre-cluster
	// clients.
	if st.SimsRun != 1 {
		t.Errorf("embedded SimsRun = %d, want 1", st.SimsRun)
	}
}

// TestQueueBackpressure429 fills the one-worker service past its
// queue bound and checks the next request is answered 429 with a
// Retry-After hint instead of queueing unboundedly.
func TestQueueBackpressure429(t *testing.T) {
	svc, err := simsvc.New(simsvc.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	h := newServer(svc, serverOptions{defaultWarmup: 1_000, defaultMeasure: 3_000, maxUops: 10_000_000, maxQueue: 1})

	// Warm one cell before saturating: it must keep being served even
	// at full queue depth.
	if rec := postJSON(t, h, "/v1/simulate", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "gzip"}); rec.Code != http.StatusOK {
		t.Fatalf("warm simulate: %d", rec.Code)
	}

	// Occupy the single worker and park one more unique simulation in
	// the queue, bypassing the handler so nothing here can 429.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := uint64(0); i < 2; i++ {
		cfg, err := eole.NamedConfig("EOLE_4_64")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Submit(ctx, simsvc.Request{
			Config: cfg, Workload: "gzip", Warmup: 10_000 + i, Measure: 2_000_000,
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.QueueLen() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled (len %d)", svc.QueueLen())
		}
		time.Sleep(time.Millisecond)
	}

	rec := postJSON(t, h, "/v1/simulate", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "art"})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without a Retry-After hint")
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Error("429 body must carry the error message")
	}
	// Sweeps see the same backpressure.
	if rec := postJSON(t, h, "/v1/sweep", sweepRequest{
		Configs: []configRef{namedRef("EOLE_4_64")}, Workloads: []string{"art"},
	}); rec.Code != http.StatusTooManyRequests {
		t.Errorf("saturated sweep answered %d, want 429", rec.Code)
	}
	// But cached work is free: the warm cell keeps being served (and a
	// sweep of only warm cells passes) at full queue depth.
	if rec := postJSON(t, h, "/v1/simulate", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "gzip"}); rec.Code != http.StatusOK {
		t.Errorf("cached simulate answered %d under backpressure, want 200", rec.Code)
	}
	if rec := postJSON(t, h, "/v1/sweep", sweepRequest{
		Configs: []configRef{namedRef("EOLE_4_64")}, Workloads: []string{"gzip"},
	}); rec.Code != http.StatusOK {
		t.Errorf("fully-cached sweep answered %d under backpressure, want 200", rec.Code)
	}
}

// TestTracesEndpoint runs a small sweep through a trace-enabled
// service and checks /v1/traces lists the recordings (and that a
// disabled service reports enabled=false).
func TestTracesEndpoint(t *testing.T) {
	svc, err := simsvc.New(simsvc.Options{Parallelism: 2, Traces: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	h := newServer(svc, serverOptions{defaultWarmup: 1_000, defaultMeasure: 4_000, maxUops: 1_000_000})

	var resp tracesResponse
	if rec := getJSON(t, h, "/v1/traces", &resp); rec.Code != http.StatusOK {
		t.Fatalf("/v1/traces: %d", rec.Code)
	}
	if !resp.Enabled || len(resp.Traces) != 0 {
		t.Fatalf("fresh service: %+v", resp)
	}

	if rec := postJSON(t, h, "/v1/sweep", sweepRequest{
		Configs:   []configRef{namedRef("Baseline_6_64"), namedRef("EOLE_4_64")},
		Workloads: []string{"gzip"},
	}); rec.Code != http.StatusOK {
		t.Fatalf("sweep: %d: %s", rec.Code, rec.Body.String())
	}

	if rec := getJSON(t, h, "/v1/traces", &resp); rec.Code != http.StatusOK {
		t.Fatalf("/v1/traces: %d", rec.Code)
	}
	if len(resp.Traces) != 1 || resp.Traces[0].Workload != "gzip" || resp.Traces[0].Uops == 0 {
		t.Fatalf("traces after sweep: %+v", resp)
	}
	var st simsvc.Stats
	if rec := getJSON(t, h, "/v1/stats", &st); rec.Code != http.StatusOK {
		t.Fatalf("/v1/stats: %d", rec.Code)
	}
	if st.TracesRecorded != 1 || st.TraceReplays != 2 {
		t.Errorf("trace stats: recorded=%d replays=%d, want 1/2", st.TracesRecorded, st.TraceReplays)
	}

	// Trace-disabled service.
	plain, err := simsvc.New(simsvc.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(plain.Close)
	hp := newServer(plain, serverOptions{defaultWarmup: 1_000, defaultMeasure: 4_000, maxUops: 1_000_000})
	if rec := getJSON(t, hp, "/v1/traces", &resp); rec.Code != http.StatusOK {
		t.Fatalf("/v1/traces: %d", rec.Code)
	}
	if resp.Enabled || len(resp.Traces) != 0 {
		t.Fatalf("disabled service: %+v", resp)
	}
}
