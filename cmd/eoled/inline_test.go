package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eole"
	"eole/internal/simsvc"
)

// TestInlineConfigEquivalence is the ISSUE acceptance check: a custom
// config posted inline to /v1/simulate that is field-identical to
// EOLE_4_64 returns a byte-identical Report, shares the named
// config's fingerprint-keyed cache entry, and a second identical
// request is a cache hit.
func TestInlineConfigEquivalence(t *testing.T) {
	svc, err := simsvc.New(simsvc.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	h := newServer(svc, serverOptions{defaultWarmup: 2_000, defaultMeasure: 5_000, maxUops: 1_000_000})

	named := postJSON(t, h, "/v1/simulate", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "gzip"})
	if named.Code != http.StatusOK {
		t.Fatalf("named: %d: %s", named.Code, named.Body.String())
	}

	cfg, err := eole.NamedConfig("EOLE_4_64")
	if err != nil {
		t.Fatal(err)
	}
	inline := postJSON(t, h, "/v1/simulate", simulateRequest{Config: inlineRef(cfg), Workload: "gzip"})
	if inline.Code != http.StatusOK {
		t.Fatalf("inline: %d: %s", inline.Code, inline.Body.String())
	}
	if !bytes.Equal(named.Body.Bytes(), inline.Body.Bytes()) {
		t.Errorf("inline field-identical config must return a byte-identical report:\n named  %s\n inline %s",
			named.Body.String(), inline.Body.String())
	}
	st := svc.Stats()
	if st.SimsRun != 1 {
		t.Errorf("SimsRun = %d, want 1 (inline request must share the cache entry)", st.SimsRun)
	}
	if st.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1 (second identical request is a hit)", st.CacheHits)
	}

	// An anonymous inline twin (Name cleared) also hits the same
	// fingerprint-keyed entry; only the label differs.
	anon := cfg
	anon.Name = ""
	rec := postJSON(t, h, "/v1/simulate", simulateRequest{Config: inlineRef(anon), Workload: "gzip"})
	if rec.Code != http.StatusOK {
		t.Fatalf("anonymous inline: %d: %s", rec.Code, rec.Body.String())
	}
	var r eole.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if want := "custom-" + anon.Fingerprint()[:12]; r.Config != want {
		t.Errorf("anonymous report labeled %q, want %q", r.Config, want)
	}
	if st := svc.Stats(); st.SimsRun != 1 {
		t.Errorf("SimsRun = %d after anonymous twin, want still 1", st.SimsRun)
	}
}

func TestInlineConfigValidation(t *testing.T) {
	h := newTestHandler(t)
	cfg, err := eole.NamedConfig("EOLE_4_64")
	if err != nil {
		t.Fatal(err)
	}
	cfg.IQSize = cfg.ROBSize + 1 // structurally impossible
	rec := postJSON(t, h, "/v1/simulate", simulateRequest{Config: inlineRef(cfg), Workload: "gzip"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid inline config: status %d, want 400", rec.Code)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || !strings.Contains(e.Error, "IQ") {
		t.Errorf("error %q must name the offending field", e.Error)
	}

	// Hostile configs that would panic or wedge the core (negative FU
	// counts size a make(); giant ROBs size the in-flight window) must
	// be a 400, never a worker crash.
	for _, mutate := range []func(c *eole.Config){
		func(c *eole.Config) { c.NumMulDiv = -1 },
		func(c *eole.Config) { c.ROBSize = 1 << 30; c.IQSize = 64 },
		func(c *eole.Config) { c.PRF.IntRegs = 0 },
	} {
		hostile, err := eole.NamedConfig("EOLE_4_64")
		if err != nil {
			t.Fatal(err)
		}
		mutate(&hostile)
		rec := postJSON(t, h, "/v1/simulate", simulateRequest{Config: inlineRef(hostile), Workload: "gzip"})
		if rec.Code != http.StatusBadRequest {
			t.Errorf("hostile config: status %d, want 400 (%s)", rec.Code, rec.Body.String())
		}
	}
}

// TestInlineConfigStrictDecoding: the documented workflow is "dump,
// hand-edit, post" — a misspelled field must be a 400, not a silently
// different machine; and an inline config that leaves LEWidth to its
// commit-width default must share the named config's cache entry
// (normalization happens before fingerprinting).
func TestInlineConfigStrictDecoding(t *testing.T) {
	svc, err := simsvc.New(simsvc.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	h := newServer(svc, serverOptions{defaultWarmup: 1_000, defaultMeasure: 3_000, maxUops: 1_000_000})

	cfg, err := eole.NamedConfig("EOLE_4_64")
	if err != nil {
		t.Fatal(err)
	}
	wire, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Typo'd field: "LEReturn" instead of "LEReturns".
	typo := bytes.Replace(wire, []byte(`"LEReturns"`), []byte(`"LEReturn"`), 1)
	body := []byte(`{"config": ` + string(typo) + `, "workload": "gzip"}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("typo'd config field: status %d, want 400: %s", rec.Code, rec.Body.String())
	}
	// Unknown top-level request field likewise.
	req = httptest.NewRequest(http.MethodPost, "/v1/simulate",
		bytes.NewReader([]byte(`{"config": "EOLE_4_64", "workload": "gzip", "wormup": 5}`)))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("typo'd request field: status %d, want 400", rec.Code)
	}

	// LEWidth left to its default: same machine, same cache entry.
	if rec := postJSON(t, h, "/v1/simulate", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "gzip"}); rec.Code != http.StatusOK {
		t.Fatalf("named: %d", rec.Code)
	}
	defaulted := cfg
	defaulted.LEWidth = 0
	if rec := postJSON(t, h, "/v1/simulate", simulateRequest{Config: inlineRef(defaulted), Workload: "gzip"}); rec.Code != http.StatusOK {
		t.Fatalf("defaulted inline: %d: %s", rec.Code, rec.Body.String())
	}
	if st := svc.Stats(); st.SimsRun != 1 || st.CacheHits != 1 {
		t.Errorf("SimsRun=%d CacheHits=%d, want 1/1 (normalized config must share the cache entry)", st.SimsRun, st.CacheHits)
	}
}

// TestSweepGridOverflowRejected: an axis product that overflows int
// must not slip under the cell budget.
func TestSweepGridOverflowRejected(t *testing.T) {
	h := newTestHandler(t)
	axis := `{"option": "IQ", "values": [` + strings.Repeat("1,", 199) + `1]}`
	axes := strings.Repeat(axis+",", 8) + axis // 200^9 > 2^63
	body := []byte(`{"grid": {"axes": [` + axes + `]}, "workloads": ["gzip"]}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("overflowing grid: status %d, want 400: %s", rec.Code, rec.Body.String())
	}
}

// TestSweepWithGridAxes posts a Figure 10 style sweep: a base config
// and a PRFBanks axis, expanded server-side.
func TestSweepWithGridAxes(t *testing.T) {
	h := newTestHandler(t)
	body := []byte(`{
		"grid": {"base_name": "EOLE_4_64", "axes": [{"option": "PRFBanks", "values": [2, 4]}]},
		"workloads": ["gzip"]
	}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("grid sweep: %d: %s", rec.Code, rec.Body.String())
	}
	var resp sweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("%d results, want 2", len(resp.Results))
	}
	wantNames := []string{"EOLE_4_64_PRFBanks2", "EOLE_4_64_PRFBanks4"}
	for i, res := range resp.Results {
		if res.Error != "" {
			t.Errorf("cell %d: %s", i, res.Error)
			continue
		}
		if res.Config != wantNames[i] {
			t.Errorf("cell %d labeled %q, want %q", i, res.Config, wantNames[i])
		}
		if res.Report == nil || res.Report.IPC <= 0 {
			t.Errorf("cell %d: invalid report", i)
		}
	}

	// Bad axis: rejected up front with a useful message.
	bad := []byte(`{"grid": {"axes": [{"option": "WarpDrive", "values": [1]}]}, "workloads": ["gzip"]}`)
	req = httptest.NewRequest(http.MethodPost, "/v1/sweep", bytes.NewReader(bad))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad axis: status %d, want 400", rec.Code)
	}
}

// TestClientDisconnectAbandonsRunningSim: canceling the HTTP request
// context of an in-flight /v1/simulate stops the running simulation
// (not just its queue entry), bounded in wall clock, and frees the
// worker for the next request.
func TestClientDisconnectAbandonsRunningSim(t *testing.T) {
	svc, err := simsvc.New(simsvc.Options{Parallelism: 1, Traces: false})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	h := newServer(svc, serverOptions{defaultWarmup: 0, defaultMeasure: 0, maxUops: 0})

	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	body := []byte(`{"config": "Baseline_6_64", "workload": "namd", "warmup": 1, "measure": 50000000}`)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := srv.Client().Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Wait for the simulation to start, then drop the client.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().CacheMisses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("simulation never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let the worker pick it up
	start := time.Now()
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request must error client-side")
	}

	// The worker must become free long before the 50M-µ-op run could
	// finish: a short follow-up request completes promptly.
	follow := []byte(`{"config": "Baseline_6_64", "workload": "gzip", "warmup": 1000, "measure": 2000}`)
	resp, err := srv.Client().Post(srv.URL+"/v1/simulate", "application/json", bytes.NewReader(follow))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("worker freed after %v", elapsed)
	}
	// The abandonment is observable in the service counters.
	deadline = time.Now().Add(5 * time.Second)
	for svc.Stats().SimsAbandoned == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("SimsAbandoned never moved: %+v", svc.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
