package main

import (
	"encoding/xml"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"eole/internal/cluster"
	"eole/internal/obs"
	"eole/internal/simsvc"
)

// TestMetricsEndpoint: after one simulation, /metrics must serve a
// lint-clean exposition whose counters reflect the work done across
// every layer — service, HTTP and runtime.
func TestMetricsEndpoint(t *testing.T) {
	h := newTestHandler(t)
	rec := postJSON(t, h, "/v1/simulate", simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "gzip"})
	if rec.Code != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", rec.Code, rec.Body.String())
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, req)
	if mrec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", mrec.Code)
	}
	if ct := mrec.Header().Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ExpositionContentType)
	}
	body := mrec.Body.Bytes()
	if err := obs.Lint(body); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, body)
	}

	text := string(body)
	// Service layer: the simulate above was a cache miss, so exactly
	// one simulation ran.
	if !strings.Contains(text, "eole_sims_run_total 1") {
		t.Errorf("eole_sims_run_total not 1:\n%s", grepMetric(text, "eole_sims_run_total"))
	}
	// HTTP layer: the POST was observed under its route pattern.
	if !strings.Contains(text, `eole_http_requests_total{path="/v1/simulate",code="200"} 1`) {
		t.Errorf("missing HTTP request counter:\n%s", grepMetric(text, "eole_http_requests_total"))
	}
	if !strings.Contains(text, `eole_http_request_duration_seconds_count{path="/v1/simulate"} 1`) {
		t.Errorf("missing HTTP latency histogram:\n%s", grepMetric(text, "eole_http_request_duration_seconds_count"))
	}
	// Runtime layer.
	if !strings.Contains(text, "go_goroutines ") {
		t.Error("missing go_goroutines gauge")
	}
	// The scrape itself must not appear in the request accounting.
	if strings.Contains(text, `path="/metrics"`) {
		t.Error("/metrics scrape counted itself")
	}
}

// grepMetric pulls the lines mentioning one metric out of an
// exposition, for readable failure messages.
func grepMetric(text, name string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, name) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestMetricsClusterWorkers: a coordinator's /metrics carries
// per-worker health series labeled by worker URL.
func TestMetricsClusterWorkers(t *testing.T) {
	worker := newWorker(t, serverOptions{defaultWarmup: 2_000, defaultMeasure: 5_000, maxUops: 1_000_000})
	coord, err := cluster.New(cluster.Options{Workers: []string{worker.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	svc, err := simsvc.New(simsvc.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	h := newServer(svc, serverOptions{defaultWarmup: 2_000, defaultMeasure: 5_000, maxUops: 1_000_000, coord: coord})

	rec := postJSON(t, h, "/v1/cluster/sweep", sweepRequest{
		Configs:   []configRef{namedRef("EOLE_4_64")},
		Workloads: []string{"gzip"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("cluster sweep: status %d: %s", rec.Code, rec.Body.String())
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, req)
	body := mrec.Body.Bytes()
	if err := obs.Lint(body); err != nil {
		t.Fatalf("exposition fails lint: %v", err)
	}
	text := string(body)
	label := `worker="` + worker.URL + `"`
	if !strings.Contains(text, "eole_cluster_worker_up{"+label+"} 1") {
		t.Errorf("worker not reported up:\n%s", grepMetric(text, "eole_cluster_worker_up"))
	}
	if !strings.Contains(text, "eole_cluster_dispatched_total{"+label+"} 1") {
		t.Errorf("dispatch not counted:\n%s", grepMetric(text, "eole_cluster_dispatched_total"))
	}
}

// TestRequestIDEcho: every response carries X-Eole-Request-Id — a
// fresh ID normally, the caller's own when it supplies a valid one.
func TestRequestIDEcho(t *testing.T) {
	h := newTestHandler(t)

	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if id := rec.Header().Get(obs.RequestIDHeader); !obs.ValidRequestID(id) {
		t.Errorf("generated request ID %q invalid", id)
	}

	req = httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	req.Header.Set(obs.RequestIDHeader, "trace-0042")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if id := rec.Header().Get(obs.RequestIDHeader); id != "trace-0042" {
		t.Errorf("valid caller ID not adopted: got %q", id)
	}
}

// TestFiguresIndex lists the paper artefacts and the ad-hoc ipc
// figure, but not the text-only ones.
func TestFiguresIndex(t *testing.T) {
	h := newTestHandler(t)
	var idx figuresIndex
	rec := getJSON(t, h, "/v1/figures", &idx)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	has := make(map[string]bool, len(idx.Figures))
	for _, id := range idx.Figures {
		has[id] = true
	}
	for _, want := range []string{"figure6", "table2", "ipc"} {
		if !has[want] {
			t.Errorf("index missing %q: %v", want, idx.Figures)
		}
	}
	for _, textOnly := range []string{"table1", "section6"} {
		if has[textOnly] {
			t.Errorf("index lists text-only artefact %q", textOnly)
		}
	}
}

// fetchFigure GETs one figure URL and returns the SVG bytes.
func fetchFigure(t *testing.T, h http.Handler, url string) []byte {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != svgContentType {
		t.Errorf("GET %s: Content-Type = %q", url, ct)
	}
	return rec.Body.Bytes()
}

// TestFigureSVG: the ipc figure renders well-formed SVG and — the
// service's determinism promise — byte-identical bytes on every fetch.
func TestFigureSVG(t *testing.T) {
	h := newTestHandler(t)
	const url = "/v1/figures/ipc?configs=EOLE_4_64&workloads=gzip,namd&warmup=2000&measure=5000"
	svg := fetchFigure(t, h, url)
	if err := wellFormedXML(svg); err != nil {
		t.Fatalf("malformed SVG: %v\n%s", err, svg)
	}
	if !strings.Contains(string(svg), "gzip") {
		t.Error("figure missing workload label")
	}
	again := fetchFigure(t, h, url)
	if string(svg) != string(again) {
		t.Error("same figure URL returned different bytes")
	}
	heat := fetchFigure(t, h, url+"&kind=heatmap")
	if err := wellFormedXML(heat); err != nil {
		t.Fatalf("malformed heatmap SVG: %v", err)
	}
}

// TestFigurePaper renders one real paper artefact end to end through
// the experiments harness (a single workload keeps it fast).
func TestFigurePaper(t *testing.T) {
	h := newTestHandler(t)
	svg := fetchFigure(t, h, "/v1/figures/figure6?workloads=gzip&warmup=2000&measure=5000")
	if err := wellFormedXML(svg); err != nil {
		t.Fatalf("malformed SVG: %v", err)
	}
	if !strings.Contains(string(svg), `stroke-dasharray`) {
		t.Error("figure6 should draw its speedup-1.0 reference line")
	}
}

func TestFigureErrors(t *testing.T) {
	h := newTestHandler(t)
	for _, tc := range []struct{ name, url string }{
		{"unknown id", "/v1/figures/figure99"},
		{"unknown kind", "/v1/figures/ipc?kind=pie"},
		{"unknown config", "/v1/figures/ipc?configs=NoSuch"},
		{"unknown workload", "/v1/figures/ipc?workloads=nope"},
		{"bad warmup", "/v1/figures/ipc?warmup=xyz"},
		{"text-only artefact", "/v1/figures/table1"},
	} {
		req := httptest.NewRequest(http.MethodGet, tc.url, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, rec.Code, rec.Body.String())
		}
	}
}

// wellFormedXML runs the bytes through a full XML parse.
func wellFormedXML(b []byte) error {
	dec := xml.NewDecoder(strings.NewReader(string(b)))
	for {
		if _, err := dec.Token(); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}
