package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"eole"
	"eole/internal/artifact"
	"eole/internal/simsvc"
	"eole/internal/trace"
	"eole/internal/workload"
)

// The artifact endpoint exposes the node's local artifact store over
// HTTP:
//
//	GET/HEAD /v1/artifacts/{kind}/{key}  serve one artifact payload
//	PUT      /v1/artifacts/{kind}/{key}  store one validated artifact
//
// Peers (artifact.HTTPPeer) speak exactly this protocol, which is how
// the cluster distributes traces: a worker records once, pushes the
// trace here (its -artifact-peer is the coordinator), and every other
// worker fetches it instead of re-interpreting the workload.
//
// GET serves only memory and disk (Store.GetLocal, never the peer
// tier), so a fleet of stores cannot chase a missing key around a
// fetch cycle. Since keys are content addresses, the key doubles as a
// strong ETag and a hit can never be stale: If-None-Match answers 304
// without reading the payload.
//
// PUT validates before storing — a trace must decode, match a known
// workload and hash to exactly the key it is stored under; a result
// must be a well-formed report — so a confused or hostile client
// cannot poison the cache of a node that accepts uploads.

// handleArtifactGet serves GET and HEAD (Go's mux routes HEAD to the
// GET pattern; the handler just suppresses the body).
func (s *server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	store := s.svc.Artifacts()
	if store == nil {
		writeError(w, http.StatusNotFound, errors.New("no artifact store configured"))
		return
	}
	kind, key := artifact.Kind(r.PathValue("kind")), r.PathValue("key")
	if !artifact.ValidKind(kind) || !artifact.ValidKey(key) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed artifact reference %q/%q", r.PathValue("kind"), r.PathValue("key")))
		return
	}
	etag := `"` + key + `"`
	if matchETag(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		s.notModified(r.Pattern)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	b, err := store.GetLocal(kind, key)
	if err != nil {
		if errors.Is(err, artifact.ErrNotFound) {
			writeError(w, http.StatusNotFound, fmt.Errorf("artifact %s/%s not held here", kind, key))
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.Header().Set("ETag", etag)
	if r.Method == http.MethodHead {
		return
	}
	w.Write(b)
}

// handleArtifactPut accepts one artifact upload after validating that
// the payload really is what the key claims.
func (s *server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	store := s.svc.Artifacts()
	if store == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no artifact store configured"))
		return
	}
	kind, key := artifact.Kind(r.PathValue("kind")), r.PathValue("key")
	if !artifact.ValidKind(kind) || !artifact.ValidKey(key) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed artifact reference %q/%q", r.PathValue("kind"), r.PathValue("key")))
		return
	}
	b, err := artifact.ReadAllLimited(http.MaxBytesReader(w, r.Body, artifact.MaxArtifactBytes), artifact.MaxArtifactBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("artifact body: %w", err))
		return
	}
	if err := validateArtifact(kind, key, b); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := store.Put(kind, key, b); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// validateArtifact rejects uploads whose payload does not check out
// against the key: the upload path is how cluster peers share work,
// and an accepted artifact is replayed or returned verbatim later, so
// nothing unverifiable may enter the store.
func validateArtifact(kind artifact.Kind, key string, b []byte) error {
	switch kind {
	case artifact.KindTrace:
		t, err := trace.Read(bytes.NewReader(b))
		if err != nil {
			return fmt.Errorf("trace artifact does not decode: %w", err)
		}
		wl, err := workload.ByName(t.Workload)
		if err != nil {
			return fmt.Errorf("trace artifact names unknown workload %q", t.Workload)
		}
		if want := simsvc.TraceKeyOf(wl); want != key {
			return fmt.Errorf("trace artifact for %q belongs at key %s, not %s", t.Workload, want, key)
		}
		if _, err := t.SourceFor(wl); err != nil {
			return fmt.Errorf("trace artifact does not match this build's %q program: %w", t.Workload, err)
		}
	case artifact.KindResult:
		// Report has a custom unmarshaler (for the raw stats block), so
		// strict field checking is unavailable; insist on the fields any
		// genuine simulation result carries instead.
		var rep eole.Report
		if err := json.Unmarshal(b, &rep); err != nil {
			return fmt.Errorf("result artifact is not a report: %w", err)
		}
		if rep.Config == "" || rep.Benchmark == "" || rep.Cycles == 0 {
			return fmt.Errorf("result artifact is not a simulation report")
		}
	default:
		return fmt.Errorf("unknown artifact kind %q", string(kind))
	}
	return nil
}

// notModified counts one conditional-request short-circuit on the
// route pattern's path.
func (s *server) notModified(pattern string) {
	parts := strings.Fields(pattern)
	s.notModifiedVec.With(parts[len(parts)-1]).Inc()
}

// matchETag implements the If-None-Match comparison: a "*" matches
// anything, otherwise the header is a comma-separated list of entity
// tags compared weakly (a W/ prefix is ignored — the tags here encode
// content identity, so weak and strong comparison coincide).
func matchETag(header, etag string) bool {
	header = strings.TrimSpace(header)
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	etag = strings.TrimPrefix(etag, "W/")
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimPrefix(strings.TrimSpace(cand), "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

// resultETag is the entity tag of one /v1/simulate response: derived
// from the request's content address plus the response label (the
// label is presentation, not part of the simulation key, so two
// configs that simulate identically but display differently must not
// share a tag). The simulator is deterministic, so equal tags imply
// byte-equal reports — a client's cached 200 can be revalidated with
// If-None-Match without simulating anything.
func resultETag(key simsvc.Key, label string) string {
	h := sha256.Sum256([]byte("eole-etag\x00" + key.String() + "\x00" + label))
	return `"r-` + hex.EncodeToString(h[:8]) + `"`
}

// sweepETag is the entity tag of a /v1/sweep response: the digest of
// every cell's (key, label) pair in response order.
func sweepETag(reqs []simsvc.Request) string {
	h := sha256.New()
	io.WriteString(h, "eole-sweep-etag")
	for i := range reqs {
		k := simsvc.KeyOf(reqs[i])
		io.WriteString(h, "\x00"+k.String()+"\x00"+reqs[i].Config.Label())
	}
	return `"s-` + hex.EncodeToString(h.Sum(nil)[:8]) + `"`
}
