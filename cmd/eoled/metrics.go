package main

import (
	"eole/internal/artifact"
	"eole/internal/cluster"
	"eole/internal/jobs"
	"eole/internal/obs"
	"eole/internal/simsvc"
)

// registerServiceMetrics mirrors the simsvc counter snapshot into
// Prometheus instruments. The service already keeps its own atomic
// counters (served as JSON on /v1/stats); rather than double-count at
// every call site, a gather callback copies the snapshot into the
// registry once per scrape.
func registerServiceMetrics(reg *obs.Registry, svc *simsvc.Service) {
	var (
		submitted = reg.Counter("eole_jobs_submitted_total", "Jobs submitted, including cache-answered ones.")
		completed = reg.Counter("eole_jobs_completed_total", "Jobs completed with a report.")
		failed    = reg.Counter("eole_jobs_failed_total", "Jobs that ended in a simulation error.")
		canceled  = reg.Counter("eole_jobs_canceled_total", "Jobs canceled by their submitter or shutdown.")
		simsRun   = reg.Counter("eole_sims_run_total", "Simulations actually executed (cache misses).")
		sampled   = reg.Counter("eole_sims_sampled_total", "Executed simulations that ran sampled.")
		abandoned = reg.Counter("eole_sims_abandoned_total", "Running simulations abandoned because every waiter left.")
		cacheHits = reg.Counter("eole_cache_hits_total", "Jobs answered from the result cache (memory or disk).")
		cacheMiss = reg.Counter("eole_cache_misses_total", "Jobs that required a fresh simulation.")
		diskHits  = reg.Counter("eole_cache_disk_hits_total", "Cache hits served from the disk spill.")
		coalesced = reg.Counter("eole_jobs_coalesced_total", "Jobs coalesced onto an identical in-flight simulation.")
		replays   = reg.Counter("eole_trace_replays_total", "Simulations served by replaying a recorded µ-op trace.")
		fallbacks = reg.Counter("eole_trace_fallbacks_total", "Simulations that fell back to execute-driven despite tracing.")
		simOps    = reg.Counter("eole_simulated_uops_total", "µ-ops advanced through by executed simulations.")
		simSecs   = reg.Counter("eole_sim_seconds_total", "Summed wall time of executed simulations in seconds.")
		cacheSize = reg.Gauge("eole_cache_entries", "Results currently held by the in-memory cache.")
		queueLen  = reg.Gauge("eole_queue_depth", "Unique simulations queued and not yet running.")
		inflight  = reg.Gauge("eole_inflight_sims", "Unique simulations registered (queued or running).")
	)
	reg.OnGather(func() {
		st := svc.Stats()
		submitted.Set(float64(st.JobsSubmitted))
		completed.Set(float64(st.JobsCompleted))
		failed.Set(float64(st.JobsFailed))
		canceled.Set(float64(st.JobsCanceled))
		simsRun.Set(float64(st.SimsRun))
		sampled.Set(float64(st.SimsSampled))
		abandoned.Set(float64(st.SimsAbandoned))
		cacheHits.Set(float64(st.CacheHits))
		cacheMiss.Set(float64(st.CacheMisses))
		diskHits.Set(float64(st.DiskHits))
		coalesced.Set(float64(st.Coalesced))
		replays.Set(float64(st.TraceReplays))
		fallbacks.Set(float64(st.TraceFallbacks))
		simOps.Set(float64(st.SimulatedOps))
		simSecs.Set(st.SimWallTime.Seconds())
		cacheSize.Set(float64(st.CacheSize))
		queueLen.Set(float64(svc.QueueLen()))
		inflight.Set(float64(svc.InFlight()))
	})
}

// registerJobMetrics mirrors the async job registry's accounting into
// Prometheus instruments. The eole_jobs_* names are taken by the
// simsvc per-cell counters above (an async "job" is a batch of those
// cells), so the registry's family is eole_job_registry_* plus the
// stream/event instruments.
func registerJobMetrics(reg *obs.Registry, g *jobs.Registry) {
	var (
		active   = reg.Gauge("eole_job_registry_active", "Async jobs currently queued or running.")
		retained = reg.Gauge("eole_job_registry_retained", "Async jobs retained by the registry (active + terminal awaiting TTL).")
		created  = reg.Counter("eole_job_registry_created_total", "Async jobs created via POST /v1/jobs (and the coordinator's dispatch path).")
		canceled = reg.Counter("eole_job_registry_canceled_total", "Async jobs canceled while still active.")
		evicted  = reg.Counter("eole_job_registry_evicted_total", "Terminal jobs evicted early by the max-jobs bound.")
		expired  = reg.Counter("eole_job_registry_expired_total", "Terminal jobs expired by the retention TTL.")
		events   = reg.Counter("eole_job_events_total", "Per-cell and terminal events appended across all job logs.")
		streams  = reg.Gauge("eole_job_event_streams", "Event-stream consumers currently attached.")
	)
	reg.OnGather(func() {
		st := g.Stats()
		active.Set(float64(st.Active))
		retained.Set(float64(st.Retained))
		created.Set(float64(st.Created))
		canceled.Set(float64(st.Canceled))
		evicted.Set(float64(st.Evicted))
		expired.Set(float64(st.Expired))
		events.Set(float64(st.Events))
		streams.Set(float64(st.Streams))
	})
}

// registerSpanMetrics derives duration histograms from completed
// spans: job.run spans feed eole_job_duration_seconds and queue.wait
// spans feed eole_job_queue_wait_seconds, so the histograms cost
// nothing beyond the spans already being recorded. Simulations run
// from sub-millisecond (cache hits under load) to minutes (long-*
// workloads), hence the wide log-spaced buckets. A nil tracer still
// registers the families — scrapers see stable zero-count histograms
// rather than metrics that appear only when tracing is on.
func registerSpanMetrics(reg *obs.Registry, t *obs.Tracer) {
	jobDur := reg.Histogram("eole_job_duration_seconds",
		"Async job wall time from runner start to terminal state, derived from job.run spans.",
		[]float64{0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 300})
	queueWait := reg.Histogram("eole_job_queue_wait_seconds",
		"Time a simulation waited in the service queue before a worker picked it up, derived from queue.wait spans.",
		[]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60})
	t.OnSpanEnd(func(d obs.SpanData) {
		switch d.Name {
		case "job.run":
			jobDur.Observe(d.Duration().Seconds())
		case "queue.wait":
			queueWait.Observe(d.Duration().Seconds())
		}
	})
}

// registerArtifactMetrics mirrors the artifact store's (tier × kind)
// accounting matrix into Prometheus instruments. Label cardinality is
// bounded: 3 tiers × 2 kinds.
func registerArtifactMetrics(reg *obs.Registry, store *artifact.Store) {
	var (
		hits    = reg.CounterVec("eole_artifact_hits_total", "Artifact lookups answered by the tier.", "tier", "kind")
		misses  = reg.CounterVec("eole_artifact_misses_total", "Artifact lookups the tier could not answer (peer tier includes fetch errors).", "tier", "kind")
		evicted = reg.CounterVec("eole_artifact_evictions_total", "Artifacts evicted from the tier by its byte budget.", "tier", "kind")
		bytes   = reg.GaugeVec("eole_artifact_bytes", "Bytes currently resident in the tier.", "tier", "kind")
		entries = reg.GaugeVec("eole_artifact_entries", "Artifacts currently resident in the tier.", "tier", "kind")
		quar    = reg.CounterVec("eole_artifact_quarantined_total", "Corrupt disk artifacts moved to quarantine.", "kind")
		pushes  = reg.CounterVec("eole_artifact_peer_pushes_total", "Artifacts pushed to the peer.", "kind")
		pushErr = reg.CounterVec("eole_artifact_peer_push_errors_total", "Failed artifact pushes to the peer.", "kind")
	)
	reg.OnGather(func() {
		for _, ts := range store.Stats() {
			hits.With(ts.Tier, ts.Kind).Set(float64(ts.Hits))
			misses.With(ts.Tier, ts.Kind).Set(float64(ts.Misses))
			evicted.With(ts.Tier, ts.Kind).Set(float64(ts.Evictions))
			bytes.With(ts.Tier, ts.Kind).Set(float64(ts.Bytes))
			entries.With(ts.Tier, ts.Kind).Set(float64(ts.Entries))
			switch ts.Tier {
			case "disk":
				quar.With(ts.Kind).Set(float64(ts.Quarantined))
			case "peer":
				pushes.With(ts.Kind).Set(float64(ts.Pushes))
				pushErr.With(ts.Kind).Set(float64(ts.PushErrors))
			}
		}
	})
}

// registerClusterMetrics exposes the coordinator's per-worker health
// and dispatch accounting, labeled by worker URL. The worker set is
// fixed at startup, so the label cardinality is bounded by -peers.
func registerClusterMetrics(reg *obs.Registry, coord *cluster.Coordinator) {
	var (
		up         = reg.GaugeVec("eole_cluster_worker_up", "1 when the worker's circuit is closed (dispatchable), 0 when open.", "worker")
		fails      = reg.GaugeVec("eole_cluster_worker_consecutive_failures", "Consecutive probe/dispatch failures counted toward the circuit.", "worker")
		inflight   = reg.GaugeVec("eole_cluster_worker_inflight", "Cells currently dispatched to the worker.", "worker")
		dispatched = reg.CounterVec("eole_cluster_dispatched_total", "Cells dispatched to the worker, including retries.", "worker")
		completed  = reg.CounterVec("eole_cluster_completed_total", "Cells the worker answered with a report.", "worker")
		failed     = reg.CounterVec("eole_cluster_failed_total", "Cells that failed permanently on the worker.", "worker")
		requeued   = reg.CounterVec("eole_cluster_requeued_total", "Retryable failures handed back to the queue.", "worker")
		throttled  = reg.CounterVec("eole_cluster_throttled_total", "429 backpressure answers from the worker.", "worker")
	)
	reg.OnGather(func() {
		for _, w := range coord.Workers() {
			upv := 1.0
			if w.State == "open" {
				upv = 0
			}
			up.With(w.URL).Set(upv)
			fails.With(w.URL).Set(float64(w.ConsecutiveFailures))
			inflight.With(w.URL).Set(float64(w.InFlight))
			dispatched.With(w.URL).Set(float64(w.Dispatched))
			completed.With(w.URL).Set(float64(w.Completed))
			failed.With(w.URL).Set(float64(w.Failed))
			requeued.With(w.URL).Set(float64(w.Requeued))
			throttled.With(w.URL).Set(float64(w.Throttled))
		}
	})
}
