package main

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"eole"
	"eole/internal/experiments"
	"eole/internal/simsvc"
	"eole/internal/stats"
)

// The figure service renders the paper's figures — and ad-hoc IPC
// charts — as SVG straight from sweep reports. The simulator is
// deterministic and the renderer formats every coordinate with fixed
// precision, so the same figure URL always returns byte-identical
// bytes; figure cells run through the shared simsvc service, so they
// hit the same content-addressed cache as every other request.

// svgContentType is the Content-Type of /v1/figures responses.
const svgContentType = "image/svg+xml; charset=utf-8"

// figuresIndex is GET /v1/figures: the renderable artefacts and the
// URL shapes that fetch them.
type figuresIndex struct {
	Figures []string `json:"figures"`
	Usage   []string `json:"usage"`
}

func (s *server) handleFiguresIndex(w http.ResponseWriter, _ *http.Request) {
	var ids []string
	for _, id := range experiments.IDs() {
		// table1 and section6 are text-only (ErrNoTable); everything
		// else has a tabular form the SVG renderer can draw. Checked by
		// name, not by calling TableByID — building a figure's table
		// runs its sweep.
		if id == "table1" || id == "section6" {
			continue
		}
		ids = append(ids, id)
	}
	ids = append(ids, "ipc")
	writeJSON(w, http.StatusOK, figuresIndex{
		Figures: ids,
		Usage: []string{
			"GET /v1/figures/{id}?kind=bars|heatmap&workloads=a,b&warmup=N&measure=N",
			"GET /v1/figures/ipc?configs=EOLE_4_64,Baseline_6_64&workloads=a,b&windows=8&warm=40000",
		},
	})
}

// handleFigure renders one figure as SVG. Paper figures (figure6,
// figure7, ...) re-run their sweep through the shared service (cached
// cells are free); the special id "ipc" charts a query-driven
// (configs × workloads) sweep with CI whiskers when sampled.
func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var (
		tb  *stats.Table
		ref float64
		err error
	)
	if id == "ipc" {
		tb, err = s.ipcTable(r)
	} else {
		tb, err = s.paperTable(id, r)
		ref = experiments.RefLine(id)
	}
	if err != nil {
		writeError(w, figureStatus(err), err)
		return
	}
	var svg []byte
	switch kind := r.URL.Query().Get("kind"); kind {
	case "", "bars":
		svg, err = tb.RenderSVG(ref)
	case "heatmap":
		svg, err = tb.RenderSVGHeatmap()
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown kind %q (bars or heatmap)", kind))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", svgContentType)
	_, _ = w.Write(svg)
}

// figureStatus maps figure-build failures: unknown ids and bad
// parameters are the client's (400), everything else falls back to
// statusFor.
func figureStatus(err error) int {
	msg := err.Error()
	if errors.Is(err, experiments.ErrNoTable) ||
		strings.Contains(msg, "unknown artefact") ||
		strings.Contains(msg, "unknown workload") ||
		strings.Contains(msg, "unknown benchmark") ||
		strings.Contains(msg, "unknown config") ||
		strings.Contains(msg, "exceeds") ||
		strings.HasPrefix(msg, "bad ") {
		return http.StatusBadRequest
	}
	return statusFor(err)
}

// paperTable builds a paper figure's table via the experiments
// harness, sharing the server's simulation service (and so its cache).
func (s *server) paperTable(id string, r *http.Request) (*stats.Table, error) {
	q := r.URL.Query()
	o := experiments.DefaultOpts()
	o.Service = s.svc
	o.Context = r.Context()
	var err error
	if o.Warmup, o.Measure, err = s.figureRunLengths(r); err != nil {
		return nil, err
	}
	if wls := q.Get("workloads"); wls != "" {
		o.Workloads = strings.Split(wls, ",")
	}
	return experiments.TableByID(id, o)
}

// figureRunLengths parses warmup/measure query overrides, defaulting
// to the experiments-harness defaults (not the server's simulate
// defaults: figures should match what cmd/experiments renders).
func (s *server) figureRunLengths(r *http.Request) (uint64, uint64, error) {
	o := experiments.DefaultOpts()
	warmup, measure := o.Warmup, o.Measure
	q := r.URL.Query()
	if v := q.Get("warmup"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad warmup %q", v)
		}
		warmup = n
	}
	if v := q.Get("measure"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad measure %q", v)
		}
		measure = n
	}
	return s.runLengths(warmup, measure, nil)
}

// ipcTable runs a query-driven (configs × workloads) sweep and builds
// an IPC table: one row per workload, one series per config. Sampled
// sweeps (windows/skip/warm query parameters) carry the 95% CI as
// whiskers.
func (s *server) ipcTable(r *http.Request) (*stats.Table, error) {
	q := r.URL.Query()
	names := []string{"EOLE_4_64"}
	if v := q.Get("configs"); v != "" {
		names = strings.Split(v, ",")
	}
	cfgs := make([]eole.Config, len(names))
	for i, name := range names {
		cfg, err := eole.NamedConfig(name)
		if err != nil {
			return nil, err
		}
		cfgs[i] = cfg
	}
	wls := eole.WorkloadNames()
	if v := q.Get("workloads"); v != "" {
		wls = strings.Split(v, ",")
		for _, wl := range wls {
			if _, err := eole.WorkloadByName(wl); err != nil {
				return nil, err
			}
		}
	}
	warmup, measure, err := s.figureRunLengths(r)
	if err != nil {
		return nil, err
	}
	var sampling *eole.SamplingSpec
	if v := q.Get("windows"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad windows %q", v)
		}
		spec := eole.SamplingSpec{Windows: n}
		if s := q.Get("skip"); s != "" {
			if spec.Skip, err = strconv.ParseUint(s, 10, 64); err != nil {
				return nil, fmt.Errorf("bad skip %q", s)
			}
		}
		spec.Warm = 40_000
		if s := q.Get("warm"); s != "" {
			if spec.Warm, err = strconv.ParseUint(s, 10, 64); err != nil {
				return nil, fmt.Errorf("bad warm %q", s)
			}
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		if _, _, err := s.runLengths(warmup, measure, &spec); err != nil {
			return nil, err
		}
		sampling = &spec
	}
	if cells := len(cfgs) * len(wls); cells > maxSweepCells {
		return nil, fmt.Errorf("figure sweep of %d cells exceeds limit %d", cells, maxSweepCells)
	}
	reqs := simsvc.ApplySampling(simsvc.Cross(cfgs, wls, warmup, measure), sampling)
	sweep, err := s.svc.SubmitSweep(r.Context(), reqs)
	if err != nil {
		return nil, err
	}
	reports, err := sweep.Wait(r.Context())
	if err != nil {
		return nil, err
	}

	cols := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		cols[i] = cfg.Label()
	}
	tb := stats.NewTable("IPC", "workload", cols...)
	if sampling != nil {
		tb.Note = fmt.Sprintf("sampled: %d windows, 95%% CI whiskers", sampling.Windows)
	}
	// Cross is config-major: report index = ci*len(wls) + wi.
	for wi, wl := range wls {
		vals := make([]float64, len(cfgs))
		cis := make([]float64, len(cfgs))
		for ci := range cfgs {
			rep := reports[ci*len(wls)+wi]
			vals[ci] = rep.IPC
			cis[ci] = rep.IPCCI
		}
		if sampling != nil {
			tb.AddRowCI(wl, vals, cis)
		} else {
			tb.AddRow(wl, vals...)
		}
	}
	return tb, nil
}
