package main

import (
	"errors"
	"fmt"
	"net/http"

	"eole/internal/obs"
	"eole/internal/stats"
)

// The /v1/debug/traces endpoints serve the tracer's ring of assembled
// traces: a summary listing, and per-trace detail as JSON or as an SVG
// waterfall timeline (?format=svg). They live under /v1/debug because
// the ring is bounded diagnostic state, not part of the simulation
// API's compatibility surface.

// debugTracesResponse is the GET /v1/debug/traces listing.
type debugTracesResponse struct {
	Enabled bool               `json:"enabled"`
	Traces  []obs.TraceSummary `json:"traces"`
}

func (s *server) handleDebugTraces(w http.ResponseWriter, _ *http.Request) {
	sums := s.opts.tracer.Summaries()
	if sums == nil {
		sums = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, debugTracesResponse{
		Enabled: s.opts.tracer != nil,
		Traces:  sums,
	})
}

// handleDebugTrace serves one assembled trace. The {id} path element is
// resolved first as a trace ID, then as a request ID (the value clients
// already hold from X-Eole-Request-Id), so either header on a past
// response addresses its trace.
func (s *server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	t := s.opts.tracer
	if t == nil {
		writeError(w, http.StatusNotFound,
			errors.New("tracing disabled: restart eoled with -trace-ring > 0"))
		return
	}
	id := r.PathValue("id")
	tr, ok := t.Trace(id)
	if !ok {
		tr, ok = t.TraceByRequestID(id)
	}
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no retained trace with trace or request ID %q", id))
		return
	}
	if r.URL.Query().Get("format") == "svg" {
		svg, err := stats.RenderTimelineSVG("trace "+tr.TraceID, timelineSpans(tr))
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", svgContentType)
		w.Write(svg)
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// timelineSpans converts an assembled trace into timeline rows: tree
// order, starts rebased onto the trace's earliest span so the SVG's
// time axis begins at zero.
func timelineSpans(tr obs.Trace) []stats.TimelineSpan {
	nodes := tr.Ordered()
	var t0 int64
	for i, n := range nodes {
		if i == 0 || n.Span.StartUnixNS < t0 {
			t0 = n.Span.StartUnixNS
		}
	}
	rows := make([]stats.TimelineSpan, len(nodes))
	for i, n := range nodes {
		rows[i] = stats.TimelineSpan{
			Label:   n.Span.Name,
			Service: n.Span.Service,
			Detail:  n.Span.Detail(),
			StartNS: n.Span.StartUnixNS - t0,
			DurNS:   n.Span.EndUnixNS - n.Span.StartUnixNS,
			Depth:   n.Depth,
			Error:   n.Span.Error != "",
		}
	}
	return rows
}
