package main

import (
	"errors"
	"fmt"
	"net/http"

	"eole"
	"eole/internal/cluster"
)

// clusterSweepResult is one cell of a distributed sweep: the standard
// sweep cell plus placement (which worker computed it, in how many
// attempts). Exactly one of Report/Error is set.
type clusterSweepResult struct {
	Config   string       `json:"config"`
	Workload string       `json:"workload"`
	Worker   string       `json:"worker,omitempty"`
	Attempts int          `json:"attempts,omitempty"`
	Report   *eole.Report `json:"report,omitempty"`
	Error    string       `json:"error,omitempty"`
}

type clusterSweepResponse struct {
	Results []clusterSweepResult `json:"results"`
}

// handleClusterSweep shards a sweep across the coordinator's workers.
// The body is the same shape as /v1/sweep (named/inline configs, a
// design-space grid, workloads, run lengths, sampling) and is resolved
// by the same validation path, so a distributed sweep means exactly
// what a local one does. Identical cells are dispatched once
// cluster-wide; results are relabeled per request exactly as /v1/sweep
// relabels, so the reports are byte-identical to a single-node run.
func (s *server) handleClusterSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeStrict(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	reqs, err := s.resolveSweep(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	run, err := s.opts.coord.Start(r.Context(), reqs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	reports, _ := run.Wait(r.Context())
	if reports == nil {
		// Only a dead request context gets here (cell failures still
		// return the slice); report the disconnect/deadline.
		err := r.Context().Err()
		if err == nil {
			err = errors.New("cluster sweep aborted")
		}
		writeError(w, statusFor(err), err)
		return
	}
	meta := run.Meta()
	resp := clusterSweepResponse{Results: make([]clusterSweepResult, len(reqs))}
	for i := range reqs {
		res := clusterSweepResult{
			Config:   reqs[i].Config.Label(),
			Workload: reqs[i].Workload,
			Worker:   meta[i].Worker,
			Attempts: meta[i].Attempts,
			Report:   reports[i],
		}
		if reports[i] == nil {
			// Per-cell failures surface in the cell, mirroring
			// /v1/sweep; the run's joined error repeats them all.
			res.Error = cellError(run, i)
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

// cellError extracts the per-index error message from a finished run.
func cellError(run *cluster.Run, i int) string {
	if err := run.Err(i); err != nil {
		return err.Error()
	}
	return "no result"
}

// handleClusterWorkers reports the coordinator's merged view: each
// worker's circuit state and dispatch counters, its own /v1/stats
// (fetched live, with per-endpoint attribution), and the cluster-wide
// service totals.
func (s *server) handleClusterWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.opts.coord.Stats(r.Context()))
}
