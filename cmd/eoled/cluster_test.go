package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"testing"

	"eole"
	"eole/internal/cluster"
	"eole/internal/simsvc"
)

// newWorker spins up a real eoled worker: its own simulation service
// behind the full HTTP handler, exactly what a remote eoled process
// serves.
func newWorker(t *testing.T, opts serverOptions) *httptest.Server {
	t.Helper()
	svc, err := simsvc.New(simsvc.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	if opts.version == "" {
		opts.version = "test"
	}
	srv := httptest.NewServer(newServer(svc, opts))
	t.Cleanup(srv.Close)
	return srv
}

func workerOpts() serverOptions {
	return serverOptions{defaultWarmup: 1_000, defaultMeasure: 3_000, maxUops: 50_000_000}
}

// testGrid is the acceptance sweep: 6 grid configs × 2 workloads = 12
// cells, all distinct.
func testGrid(t *testing.T) []eole.Config {
	t.Helper()
	g := eole.Grid{
		BaseName: "EOLE_4_64",
		Axes: []eole.Axis{
			{Option: "PRFBanks", Values: []any{2, 4, 8}},
			{Option: "EarlyExecution", Values: []any{1, 2}},
		},
	}
	cfgs, err := g.Configs()
	if err != nil {
		t.Fatal(err)
	}
	return cfgs
}

// singleNode runs the request list through a local service and
// relabels per request — the reference result a distributed sweep must
// reproduce byte for byte.
func singleNode(t *testing.T, reqs []simsvc.Request) []byte {
	t.Helper()
	svc, err := simsvc.New(simsvc.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	sweep, err := svc.SubmitSweep(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := sweep.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range reports {
		reports[i] = cluster.Relabel(reports[i], reqs[i].Config.Label())
	}
	return marshalReports(t, reports)
}

func marshalReports(t *testing.T, reports []*eole.Report) []byte {
	t.Helper()
	b, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestClusterByteIdenticalToSingleNode is the acceptance check: a
// 3-worker distributed sweep over 12 grid cells — full runs and a
// sampled variant — returns reports byte-identical to the same sweep
// run in one process.
func TestClusterByteIdenticalToSingleNode(t *testing.T) {
	workers := []string{
		newWorker(t, workerOpts()).URL,
		newWorker(t, workerOpts()).URL,
		newWorker(t, workerOpts()).URL,
	}
	co, err := cluster.New(cluster.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)

	cfgs := testGrid(t)
	for _, tc := range []struct {
		name     string
		sampling *eole.SamplingSpec
	}{
		{"full", nil},
		{"sampled", &eole.SamplingSpec{Windows: 4, Warm: 2_000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reqs := simsvc.ApplySampling(
				simsvc.Cross(cfgs, []string{"gzip", "art"}, 1_000, 3_000), tc.sampling)
			if len(reqs) < 12 {
				t.Fatalf("acceptance sweep must cover >= 12 cells, got %d", len(reqs))
			}
			reports, err := co.Sweep(context.Background(), reqs)
			if err != nil {
				t.Fatal(err)
			}
			got := marshalReports(t, reports)
			want := singleNode(t, reqs)
			if !bytes.Equal(got, want) {
				t.Errorf("distributed sweep diverged from single-node result\ncluster:\n%.400s\nsingle:\n%.400s", got, want)
			}
		})
	}
}

// TestClusterKillWorkerMidSweep kills one of three workers after the
// first cell completes: its in-flight and queued cells must requeue to
// the survivors, every cell must be accounted for, and the merged
// reports must still match a single-node run.
func TestClusterKillWorkerMidSweep(t *testing.T) {
	victim := newWorker(t, workerOpts())
	workers := []string{
		victim.URL,
		newWorker(t, workerOpts()).URL,
		newWorker(t, workerOpts()).URL,
	}
	co, err := cluster.New(cluster.Options{
		Workers: workers,
		// Open a killed worker's circuit on its first broken dispatch
		// so requeued cells do not revisit it.
		FailureThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)

	// Longer cells so the kill lands mid-sweep, not after it.
	reqs := simsvc.Cross(testGrid(t), []string{"gzip", "art"}, 1_000, 30_000)
	run, err := co.Start(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}

	var cells int
	killed := false
	for res := range run.Results() {
		cells++
		if res.Err != nil {
			t.Errorf("cell %v failed: %v", res.Indexes, res.Err)
		}
		if !killed {
			killed = true
			victim.CloseClientConnections()
			victim.Close()
		}
	}
	reports, err := run.Wait(context.Background())
	if err != nil {
		t.Fatalf("sweep must survive a killed worker: %v", err)
	}
	if cells != len(reqs) { // every cell is unique in this grid
		t.Errorf("%d cells delivered, want %d", cells, len(reqs))
	}
	for i, r := range reports {
		if r == nil {
			t.Fatalf("cell %d lost after worker kill", i)
		}
	}
	if got, want := marshalReports(t, reports), singleNode(t, reqs); !bytes.Equal(got, want) {
		t.Error("post-kill reports diverged from single-node result")
	}
}

// TestClusterSweepEndpoint drives the coordinator's HTTP surface:
// /v1/cluster/sweep shards across workers with per-cell worker
// attribution, /v1/cluster/workers reports merged stats.
func TestClusterSweepEndpoint(t *testing.T) {
	w1, w2 := newWorker(t, workerOpts()), newWorker(t, workerOpts())
	co, err := cluster.New(cluster.Options{Workers: []string{w1.URL, w2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	opts := workerOpts()
	opts.coord = co
	coordSvc, err := simsvc.New(simsvc.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coordSvc.Close)
	h := newServer(coordSvc, opts)

	rec := postJSON(t, h, "/v1/cluster/sweep", sweepRequest{
		Configs:   []configRef{namedRef("EOLE_4_64"), namedRef("Baseline_6_64")},
		Workloads: []string{"gzip", "art"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("cluster sweep: %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Results []clusterSweepResult `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("%d results, want 4", len(resp.Results))
	}
	for _, res := range resp.Results {
		if res.Error != "" || res.Report == nil {
			t.Errorf("%s on %s: error %q", res.Config, res.Workload, res.Error)
			continue
		}
		if res.Worker != w1.URL && res.Worker != w2.URL {
			t.Errorf("cell attributed to unknown worker %q", res.Worker)
		}
		if res.Report.Config != res.Config {
			t.Errorf("report labeled %q in a %q cell", res.Report.Config, res.Config)
		}
	}

	var st cluster.Stats
	if rec := getJSON(t, h, "/v1/cluster/workers", &st); rec.Code != http.StatusOK {
		t.Fatalf("/v1/cluster/workers: %d", rec.Code)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("%d workers, want 2", len(st.Workers))
	}
	if st.Service.SimsRun != 4 {
		t.Errorf("merged SimsRun = %d, want 4", st.Service.SimsRun)
	}
	// The coordinator dispatches each cell as an async job: 4 cells →
	// 4 creates on /v1/jobs, each followed by at least one attach to
	// its event stream.
	var created, streamed uint64
	for _, w := range st.Workers {
		if w.Service == nil {
			t.Fatalf("worker %s service stats missing", w.URL)
		}
		created += w.Service.Endpoints["/v1/jobs"].Requests
		streamed += w.Service.Endpoints["/v1/jobs/{id}/events"].Requests
	}
	if created != 4 {
		t.Errorf("per-worker /v1/jobs attribution sums to %d, want 4", created)
	}
	if streamed < 4 {
		t.Errorf("per-worker event-stream attribution sums to %d, want >= 4", streamed)
	}
	if sims := st.Workers[0].Service.Endpoints["/v1/simulate"].Requests +
		st.Workers[1].Service.Endpoints["/v1/simulate"].Requests; sims != 0 {
		t.Errorf("legacy /v1/simulate served %d dispatches, want 0 (jobs path)", sims)
	}
}

// TestClusterErrorPaths covers the coordinator endpoint's failure
// modes: malformed bodies, invalid sweeps, and a server that is not a
// coordinator at all.
func TestClusterErrorPaths(t *testing.T) {
	w1 := newWorker(t, workerOpts())
	co, err := cluster.New(cluster.Options{Workers: []string{w1.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	opts := workerOpts()
	opts.coord = co
	svc, err := simsvc.New(simsvc.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	h := newServer(svc, opts)

	// Malformed JSON body.
	req := httptest.NewRequest(http.MethodPost, "/v1/cluster/sweep", bytes.NewReader([]byte("{nope")))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", rec.Code)
	}
	// Unknown field (strict decode).
	req = httptest.NewRequest(http.MethodPost, "/v1/cluster/sweep", bytes.NewReader([]byte(`{"confgs":["EOLE_4_64"]}`)))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", rec.Code)
	}
	// Bad sweep content: unknown config and unknown workload.
	if rec := postJSON(t, h, "/v1/cluster/sweep", sweepRequest{Configs: []configRef{namedRef("NoSuch")}}); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown config: %d, want 400", rec.Code)
	}
	if rec := postJSON(t, h, "/v1/cluster/sweep", sweepRequest{
		Configs: []configRef{namedRef("EOLE_4_64")}, Workloads: []string{"nope"},
	}); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown workload: %d, want 400", rec.Code)
	}

	// Unusable peer lists are rejected at construction.
	if _, err := cluster.New(cluster.Options{}); err == nil {
		t.Error("New without workers must fail")
	}
	if _, err := cluster.New(cluster.Options{Workers: []string{"  "}}); err == nil {
		t.Error("blank worker address must fail")
	}

	// A plain eoled (no -peers) routes no cluster endpoints at all.
	plain := newWorker(t, workerOpts())
	resp, err := http.Post(plain.URL+"/v1/cluster/sweep", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("non-coordinator cluster sweep: %d, want 404", resp.StatusCode)
	}
}

// TestClusterWorkerFaults puts real eoled workers behind fault
// injection on the job-create path: one answers 500 for its first
// calls, the other opens with a 429 + Retry-After. The sweep must
// absorb both.
func TestClusterWorkerFaults(t *testing.T) {
	flaky, throttled := newWorker(t, workerOpts()), newWorker(t, workerOpts())
	var flakyCalls, throttleCalls atomic.Int64
	// wrap fronts a real worker with a transparent reverse proxy
	// (headers, query and streaming intact — the event stream flows
	// through it) plus a fault hook on POST /v1/jobs, the dispatch
	// entry point.
	wrap := func(target string, f func(w http.ResponseWriter, r *http.Request) bool) *httptest.Server {
		u, err := url.Parse(target)
		if err != nil {
			t.Fatal(err)
		}
		inner := httputil.NewSingleHostReverseProxy(u)
		inner.FlushInterval = -1
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && f(w, r) {
				return
			}
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		return srv
	}
	flakySrv := wrap(flaky.URL, func(w http.ResponseWriter, _ *http.Request) bool {
		if flakyCalls.Add(1) <= 2 {
			http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
			return true
		}
		return false
	})
	throttledSrv := wrap(throttled.URL, func(w http.ResponseWriter, _ *http.Request) bool {
		if throttleCalls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return true
		}
		return false
	})

	co, err := cluster.New(cluster.Options{
		Workers:     []string{flakySrv.URL, throttledSrv.URL},
		MaxInFlight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)

	reqs := simsvc.Cross(testGrid(t)[:2], []string{"gzip", "art"}, 1_000, 3_000)
	run, err := co.Start(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := run.Wait(context.Background())
	if err != nil {
		t.Fatalf("sweep must absorb 5xx and 429 workers: %v", err)
	}
	for i, r := range reports {
		if r == nil {
			t.Fatalf("cell %d lost", i)
		}
	}
	var throttledN uint64
	for _, ws := range co.Workers() {
		throttledN += ws.Throttled
	}
	if throttledN == 0 {
		t.Error("429 was never observed as backpressure")
	}
}
