package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"eole"
	"eole/internal/artifact"
	"eole/internal/cluster"
	"eole/internal/obs"
	"eole/internal/simsvc"
	"eole/internal/trace"
	"eole/internal/workload"
)

// newStoreHandler builds a service backed by an artifact store rooted
// at dir (memory-only when dir is empty) plus its HTTP handler,
// returning both.
func newStoreHandler(t *testing.T, dir string, peer artifact.Peer) (*simsvc.Service, http.Handler) {
	t.Helper()
	store, err := artifact.Open(artifact.Options{Dir: dir, Peer: peer})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := simsvc.New(simsvc.Options{Parallelism: 2, Artifacts: store, Traces: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, newServer(svc, serverOptions{defaultWarmup: 2_000, defaultMeasure: 5_000, maxUops: 1_000_000, version: "test"})
}

// recordedTrace returns a valid trace artifact payload for the named
// workload plus its content address.
func recordedTrace(t *testing.T, name string) (key string, payload []byte) {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Record(w, 70_000)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return simsvc.TraceKeyOf(w), buf.Bytes()
}

func doReq(h http.Handler, method, path string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, path, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec
}

// TestArtifactEndpointRoundTrip uploads a validated trace and reads it
// back through GET, HEAD and If-None-Match.
func TestArtifactEndpointRoundTrip(t *testing.T) {
	_, h := newStoreHandler(t, t.TempDir(), nil)
	key, payload := recordedTrace(t, "gzip")
	path := "/v1/artifacts/trace/" + key

	if rec := doReq(h, http.MethodPut, path, payload, nil); rec.Code != http.StatusNoContent {
		t.Fatalf("PUT: status %d: %s", rec.Code, rec.Body.String())
	}
	rec := doReq(h, http.MethodGet, path, nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET: status %d: %s", rec.Code, rec.Body.String())
	}
	if !bytes.Equal(rec.Body.Bytes(), payload) {
		t.Error("GET returned different bytes than PUT stored")
	}
	etag := rec.Header().Get("ETag")
	if etag != `"`+key+`"` {
		t.Errorf("ETag = %q, want the quoted content address", etag)
	}
	// HEAD: same headers, no body.
	rec = doReq(h, http.MethodHead, path, nil, nil)
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Errorf("HEAD: status %d, body %d bytes (want 200 and empty)", rec.Code, rec.Body.Len())
	}
	if got := rec.Header().Get("Content-Length"); got != fmt.Sprint(len(payload)) {
		t.Errorf("HEAD Content-Length = %q, want %d", got, len(payload))
	}
	// Conditional GET: the content address can never go stale, so a
	// matching If-None-Match is a free 304.
	rec = doReq(h, http.MethodGet, path, nil, map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Errorf("conditional GET: status %d, body %d bytes (want 304 and empty)", rec.Code, rec.Body.Len())
	}
	// A key the store does not hold is a plain 404.
	miss := strings.Repeat("ab", 32)
	if rec := doReq(h, http.MethodGet, "/v1/artifacts/trace/"+miss, nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("missing artifact: status %d, want 404", rec.Code)
	}
}

// TestArtifactEndpointHostileInputs drives malformed references and
// unverifiable payloads at the endpoint: everything must be rejected
// with a 400 before touching the store.
func TestArtifactEndpointHostileInputs(t *testing.T) {
	svc, h := newStoreHandler(t, t.TempDir(), nil)
	key, payload := recordedTrace(t, "gzip")

	bad := []struct{ name, path string }{
		{"unknown kind", "/v1/artifacts/nope/" + key},
		{"uppercase key", "/v1/artifacts/trace/" + strings.ToUpper(key)},
		{"non-hex key", "/v1/artifacts/trace/zz" + key[2:]},
		{"short key", "/v1/artifacts/trace/a"},
		{"long key", "/v1/artifacts/trace/" + strings.Repeat("ab", 65)},
		{"dotted key", "/v1/artifacts/trace/ab..cd"},
	}
	for _, tc := range bad {
		for _, method := range []string{http.MethodGet, http.MethodPut} {
			if rec := doReq(h, method, tc.path, payload, nil); rec.Code != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400", method, tc.name, rec.Code)
			}
		}
	}

	// A payload that is not a trace at all.
	if rec := doReq(h, http.MethodPut, "/v1/artifacts/trace/"+key, []byte("garbage"), nil); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage trace: status %d, want 400", rec.Code)
	}
	// A real trace stored under the wrong key (cache poisoning).
	otherKey, _ := recordedTrace(t, "crafty")
	if rec := doReq(h, http.MethodPut, "/v1/artifacts/trace/"+otherKey, payload, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("mismatched trace key: status %d, want 400", rec.Code)
	}
	// A result that is not a report.
	if rec := doReq(h, http.MethodPut, "/v1/artifacts/result/"+key, []byte(`{"no_such_field":1}`), nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bogus result: status %d, want 400", rec.Code)
	}
	// Nothing hostile may have landed in the store.
	if _, err := svc.Artifacts().GetLocal(artifact.KindTrace, key); err == nil {
		t.Error("a rejected upload reached the store")
	}
}

// TestSimulateConditionalRequest: a client revalidating a previous
// /v1/simulate 200 with If-None-Match gets a 304 with no body — and
// the short-circuit shows up in the 304 metric.
func TestSimulateConditionalRequest(t *testing.T) {
	_, h := newStoreHandler(t, "", nil)
	body, _ := json.Marshal(simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "gzip"})

	rec := doReq(h, http.MethodPost, "/v1/simulate", body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", rec.Code, rec.Body.String())
	}
	etag := rec.Header().Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"r-`) {
		t.Fatalf("simulate ETag = %q, want a r- tag", etag)
	}
	rec = doReq(h, http.MethodPost, "/v1/simulate", body, map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Fatalf("revalidation: status %d, body %d bytes (want 304 and empty)", rec.Code, rec.Body.Len())
	}
	// A stale (different) tag simulates — here it's a cache hit — and
	// returns the full report with the current tag.
	rec = doReq(h, http.MethodPost, "/v1/simulate", body, map[string]string{"If-None-Match": `"r-0000000000000000"`})
	if rec.Code != http.StatusOK || rec.Header().Get("ETag") != etag {
		t.Errorf("stale-tag request: status %d, ETag %q (want 200 with %q)", rec.Code, rec.Header().Get("ETag"), etag)
	}

	mrec := doReq(h, http.MethodGet, "/metrics", nil, nil)
	if !strings.Contains(mrec.Body.String(), `eole_http_not_modified_total{path="/v1/simulate"} 1`) {
		t.Errorf("missing 304 counter:\n%s", grepMetric(mrec.Body.String(), "eole_http_not_modified_total"))
	}
	// The artifact families (registered only on store-backed servers,
	// so the base obs test never sees them) must lint clean too.
	if !strings.Contains(mrec.Body.String(), "eole_artifact_hits_total{") {
		t.Error("store-backed server exposes no artifact metrics")
	}
	if err := obs.Lint(mrec.Body.Bytes()); err != nil {
		t.Errorf("metrics lint: %v", err)
	}
}

// TestSweepConditionalRequest: sweeps revalidate the same way, with
// the tag covering every cell in order.
func TestSweepConditionalRequest(t *testing.T) {
	_, h := newStoreHandler(t, "", nil)
	body, _ := json.Marshal(sweepRequest{
		Configs:   []configRef{namedRef("EOLE_4_64"), namedRef("Baseline_6_64")},
		Workloads: []string{"gzip"},
	})
	rec := doReq(h, http.MethodPost, "/v1/sweep", body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", rec.Code, rec.Body.String())
	}
	etag := rec.Header().Get("ETag")
	if !strings.HasPrefix(etag, `"s-`) {
		t.Fatalf("sweep ETag = %q, want a s- tag", etag)
	}
	rec = doReq(h, http.MethodPost, "/v1/sweep", body, map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Fatalf("revalidation: status %d, body %d bytes (want 304 and empty)", rec.Code, rec.Body.Len())
	}
	// Reordering the cells changes the response, so it must change the
	// tag too.
	body2, _ := json.Marshal(sweepRequest{
		Configs:   []configRef{namedRef("Baseline_6_64"), namedRef("EOLE_4_64")},
		Workloads: []string{"gzip"},
	})
	rec = doReq(h, http.MethodPost, "/v1/sweep", body2, map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusOK {
		t.Errorf("reordered sweep matched the old tag: status %d, want 200", rec.Code)
	}
}

// TestArtifactPersistenceAcrossServers is the restart acceptance: a
// request simulated by server A is served by a later server B over the
// same artifact directory from disk, without simulating anything.
func TestArtifactPersistenceAcrossServers(t *testing.T) {
	dir := t.TempDir()
	body, _ := json.Marshal(simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "crafty"})

	svcA, hA := newStoreHandler(t, dir, nil)
	recA := doReq(hA, http.MethodPost, "/v1/simulate", body, nil)
	if recA.Code != http.StatusOK {
		t.Fatalf("server A simulate: status %d: %s", recA.Code, recA.Body.String())
	}
	if st := svcA.Stats(); st.SimsRun != 1 {
		t.Fatalf("server A ran %d sims, want 1", st.SimsRun)
	}
	svcA.Close()

	svcB, hB := newStoreHandler(t, dir, nil)
	recB := doReq(hB, http.MethodPost, "/v1/simulate", body, nil)
	if recB.Code != http.StatusOK {
		t.Fatalf("server B simulate: status %d: %s", recB.Code, recB.Body.String())
	}
	st := svcB.Stats()
	if st.SimsRun != 0 || st.DiskHits != 1 {
		t.Errorf("server B simsRun=%d diskHits=%d, want 0/1 (served from the fabric)", st.SimsRun, st.DiskHits)
	}
	if !bytes.Equal(recA.Body.Bytes(), recB.Body.Bytes()) {
		t.Error("fabric-served response differs from the original")
	}
	// The store's own accounting must agree on /v1/stats.
	var stats statsResponse
	if rec := getJSON(t, hB, "/v1/stats", &stats); rec.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rec.Code)
	}
	var diskHits uint64
	for _, ts := range stats.Artifacts {
		if ts.Tier == "disk" && ts.Kind == "result" {
			diskHits = ts.Hits
		}
	}
	if diskHits != 1 {
		t.Errorf("artifact stats report %d result disk hits, want 1", diskHits)
	}
}

// TestPeerFetchAcrossServices is the distribution acceptance at the
// store level: service A (peer → relay) records and pushes; service B
// — a different machine with its own empty directory — replays the
// trace it never recorded and serves the result it never simulated,
// both fetched from the relay over /v1/artifacts.
func TestPeerFetchAcrossServices(t *testing.T) {
	_, relayHandler := newStoreHandler(t, t.TempDir(), nil)
	relay := httptest.NewServer(relayHandler)
	t.Cleanup(relay.Close)
	peer := artifact.NewHTTPPeer(relay.URL)

	req := simulateRequest{Config: namedRef("EOLE_4_64"), Workload: "gzip"}
	body, _ := json.Marshal(req)

	svcA, hA := newStoreHandler(t, t.TempDir(), peer)
	recA := doReq(hA, http.MethodPost, "/v1/simulate", body, nil)
	if recA.Code != http.StatusOK {
		t.Fatalf("service A: status %d: %s", recA.Code, recA.Body.String())
	}
	if st := svcA.Stats(); st.TracesRecorded != 1 || st.SimsRun != 1 {
		t.Fatalf("service A recorded=%d simsRun=%d, want 1/1", st.TracesRecorded, st.SimsRun)
	}

	// A different config, same workload: B must fetch A's trace from
	// the relay instead of re-interpreting the workload.
	other, _ := json.Marshal(simulateRequest{Config: namedRef("Baseline_6_64"), Workload: "gzip"})
	svcB, hB := newStoreHandler(t, t.TempDir(), peer)
	recB := doReq(hB, http.MethodPost, "/v1/simulate", other, nil)
	if recB.Code != http.StatusOK {
		t.Fatalf("service B: status %d: %s", recB.Code, recB.Body.String())
	}
	st := svcB.Stats()
	if st.TracesRecorded != 0 || st.TraceReplays != 1 || st.TraceDiskLoads != 1 {
		t.Errorf("service B recorded=%d replays=%d loads=%d, want 0/1/1 (trace fetched from relay)",
			st.TracesRecorded, st.TraceReplays, st.TraceDiskLoads)
	}
	var peerHits uint64
	for _, ts := range svcB.Artifacts().Stats() {
		if ts.Tier == "peer" && ts.Kind == "trace" {
			peerHits = ts.Hits
		}
	}
	if peerHits != 1 {
		t.Errorf("service B made %d peer trace fetches, want 1", peerHits)
	}

	// And the exact request A answered is served to B's clients from
	// the relayed result, without B simulating it.
	recB2 := doReq(hB, http.MethodPost, "/v1/simulate", body, nil)
	if recB2.Code != http.StatusOK {
		t.Fatalf("service B repeat: status %d", recB2.Code)
	}
	if got := svcB.Stats().SimsRun; got != 1 {
		t.Errorf("service B ran %d sims after the relayed repeat, want 1 (result fetched, not simulated)", got)
	}
	if !bytes.Equal(recA.Body.Bytes(), recB2.Body.Bytes()) {
		t.Error("relayed result differs from the original")
	}
}

// TestClusterTraceDistribution is the cluster acceptance: with
// ShareTraces gating and every worker's artifact peer pointed at the
// coordinator, a (4 configs × 2 workloads) sweep interprets each
// workload exactly once fleet-wide, the coordinator ends up holding
// both traces, and the merged reports are byte-identical to a
// single-node run.
func TestClusterTraceDistribution(t *testing.T) {
	coordSvc, coordHandler := newStoreHandler(t, "", nil) // diskless relay: memory tier only
	coordSrv := httptest.NewServer(coordHandler)
	t.Cleanup(coordSrv.Close)
	peer := artifact.NewHTTPPeer(coordSrv.URL)

	var workerSvcs []*simsvc.Service
	var urls []string
	for i := 0; i < 2; i++ {
		svc, h := newStoreHandler(t, t.TempDir(), peer)
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		workerSvcs = append(workerSvcs, svc)
		urls = append(urls, srv.URL)
	}
	co, err := cluster.New(cluster.Options{Workers: urls, ShareTraces: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)

	cfgs := make([]eole.Config, 0, 4)
	for _, name := range []string{"EOLE_4_64", "EOLE_6_64", "Baseline_6_64", "Baseline_VP_6_64"} {
		cfg, err := eole.NamedConfig(name)
		if err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, cfg)
	}
	reqs := simsvc.Cross(cfgs, []string{"gzip", "crafty"}, 1_000, 3_000)
	reports, err := co.Sweep(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	got := marshalReports(t, reports)
	if want := singleNode(t, reqs); !bytes.Equal(got, want) {
		t.Errorf("shared-trace cluster sweep diverged from single-node result\ncluster:\n%.400s\nsingle:\n%.400s", got, want)
	}

	// The lead gating plus the coordinator relay make recording counts
	// deterministic: exactly one recording per workload fleet-wide —
	// the lead records and pushes before its cell completes, so every
	// later cell (on any worker) finds the trace locally or on the
	// relay.
	var recorded uint64
	for _, svc := range workerSvcs {
		recorded += svc.Stats().TracesRecorded
	}
	if recorded != 2 {
		t.Errorf("fleet recorded %d traces for 2 workloads, want exactly 2", recorded)
	}
	// The relay must hold both traces (pushed by the recording leads).
	for _, wl := range []string{"gzip", "crafty"} {
		w, err := workload.ByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := coordSvc.Artifacts().GetLocal(artifact.KindTrace, simsvc.TraceKeyOf(w)); err != nil {
			t.Errorf("coordinator relay does not hold the %s trace: %v", wl, err)
		}
	}
}
