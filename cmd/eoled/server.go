package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"eole"
	"eole/internal/artifact"
	"eole/internal/cluster"
	"eole/internal/jobs"
	"eole/internal/obs"
	"eole/internal/simsvc"
)

// maxBodyBytes caps request bodies; the largest legitimate sweep body
// (every config and workload named in full) is well under 64KB.
const maxBodyBytes = 1 << 20

// maxSweepCells caps the (configs × workloads) grid of one sweep
// request. The full named grid is 11×19 = 209 cells; the cap leaves
// generous headroom while keeping one request from allocating an
// unbounded response.
const maxSweepCells = 4096

// serverOptions configures the HTTP layer around the simulation
// service.
type serverOptions struct {
	// Defaults applied when a request omits warmup/measure, and the
	// per-request ceiling protecting the worker pool from unbounded
	// simulations.
	defaultWarmup  uint64
	defaultMeasure uint64
	maxUops        uint64
	// maxQueue is the 429 backpressure threshold: once the service's
	// queue of unique pending simulations reaches it, simulate/sweep
	// requests are answered 429 with a Retry-After hint instead of
	// queueing unboundedly (0 = disabled).
	maxQueue int
	// version is reported by /v1/healthz and /v1/stats.
	version string
	// coord, when non-nil, makes this eoled a cluster coordinator: the
	// /v1/cluster/* endpoints are routed and shard sweeps across its
	// workers.
	coord *cluster.Coordinator
	// jobs is the async job registry behind /v1/jobs; when nil the
	// server builds a default-bounded one of its own (tests and
	// embedded uses). The owner is responsible for Close.
	jobs *jobs.Registry
	// jobHeartbeat is the idle keep-alive interval on job event
	// streams (0 = 15s default).
	jobHeartbeat time.Duration
	// logger receives the structured request log (one Info record per
	// request, carrying the request ID). nil discards.
	logger *slog.Logger
	// tracer, when non-nil, records per-phase spans for every request
	// into a bounded ring served on /v1/debug/traces. nil disables
	// tracing; the debug endpoints then answer with an explanatory
	// error instead of vanishing.
	tracer *obs.Tracer
	// slowRequest, when positive, escalates any request whose root span
	// outlives it to a WARN record carrying the trace ID and its
	// slowest child spans.
	slowRequest time.Duration
}

// endpointCounters is one endpoint's request accounting; errors counts
// responses with status >= 400.
type endpointCounters struct {
	requests atomic.Uint64
	errors   atomic.Uint64
}

// server wires the batch simulation service to the HTTP API. All
// handlers speak JSON and rely only on net/http.
type server struct {
	svc   *simsvc.Service
	opts  serverOptions
	start time.Time
	// endpoints maps route path -> counters; built once in newServer,
	// read-only afterwards (the counters themselves are atomic).
	endpoints map[string]*endpointCounters
	// reg is the Prometheus registry behind GET /metrics; httpm holds
	// the per-endpoint request/latency instruments fed by route().
	reg   *obs.Registry
	httpm *obs.HTTPMetrics
	// notModifiedVec counts conditional requests answered 304 without
	// simulating, labeled by route pattern path.
	notModifiedVec *obs.CounterVec
	// jobs is the async job registry behind /v1/jobs (opts.jobs, or a
	// server-owned default).
	jobs *jobs.Registry
	log  *slog.Logger
}

func newServer(svc *simsvc.Service, opts serverOptions) http.Handler {
	logger := opts.logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &server{
		svc:       svc,
		opts:      opts,
		start:     time.Now(),
		endpoints: make(map[string]*endpointCounters),
		reg:       obs.NewRegistry(),
		log:       logger,
	}
	s.jobs = opts.jobs
	if s.jobs == nil {
		s.jobs = jobs.New(svc, jobs.Options{Logger: logger})
	}
	s.httpm = obs.NewHTTPMetrics(s.reg)
	s.notModifiedVec = s.reg.CounterVec("eole_http_not_modified_total",
		"Conditional requests answered 304 Not Modified from the entity tag alone.", "path")
	obs.RegisterRuntimeMetrics(s.reg)
	registerServiceMetrics(s.reg, svc)
	registerJobMetrics(s.reg, s.jobs)
	if store := svc.Artifacts(); store != nil {
		registerArtifactMetrics(s.reg, store)
	}
	if opts.coord != nil {
		registerClusterMetrics(s.reg, opts.coord)
	}
	registerSpanMetrics(s.reg, opts.tracer)
	mux := http.NewServeMux()
	// route registers a handler wrapped with per-endpoint request and
	// error counting (surfaced in /v1/stats under "endpoints", keyed by
	// the pattern's path component) plus the Prometheus request/latency
	// instruments, labeled by route pattern — never the raw URL path,
	// whose unbounded values would explode label cardinality.
	route := func(pattern string, h http.HandlerFunc) {
		parts := strings.Fields(pattern)
		path := parts[len(parts)-1]
		// Methods sharing a path (GET/PUT artifacts, POST/GET jobs)
		// share one counter: stats attribution is per path.
		ep := s.endpoints[path]
		if ep == nil {
			ep = &endpointCounters{}
			s.endpoints[path] = ep
		}
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			ep.requests.Add(1)
			cw := &countingWriter{ResponseWriter: w, status: http.StatusOK}
			t0 := time.Now()
			h(cw, r)
			s.httpm.Observe(path, cw.status, time.Since(t0))
			if cw.status >= 400 {
				ep.errors.Add(1)
			}
		})
	}
	route("POST /v1/simulate", s.handleSimulate)
	route("POST /v1/sweep", s.handleSweep)
	route("POST /v1/jobs", s.handleJobCreate)
	route("GET /v1/jobs", s.handleJobList)
	route("GET /v1/jobs/{id}", s.handleJobGet)
	route("DELETE /v1/jobs/{id}", s.handleJobCancel)
	route("GET /v1/jobs/{id}/events", s.handleJobEvents)
	route("GET /v1/configs", s.handleConfigs)
	route("GET /v1/workloads", s.handleWorkloads)
	route("GET /v1/traces", s.handleTraces)
	route("GET /v1/debug/traces", s.handleDebugTraces)
	route("GET /v1/debug/traces/{id}", s.handleDebugTrace)
	route("GET /v1/stats", s.handleStats)
	route("GET /v1/healthz", s.handleHealthz)
	route("GET /v1/figures", s.handleFiguresIndex)
	route("GET /v1/figures/{id}", s.handleFigure)
	route("GET /v1/artifacts/{kind}/{key}", s.handleArtifactGet)
	route("PUT /v1/artifacts/{kind}/{key}", s.handleArtifactPut)
	if opts.coord != nil {
		route("POST /v1/cluster/sweep", s.handleClusterSweep)
		route("GET /v1/cluster/workers", s.handleClusterWorkers)
	}
	// /metrics bypasses route(): scrapes should not inflate the request
	// accounting they report.
	mux.Handle("GET /metrics", s.reg.Handler())
	// The access-log middleware wraps the whole mux: it assigns (or
	// adopts) the request ID, stores it in the context for handlers and
	// the cluster dispatcher, echoes it on the response, emits one
	// structured record per request, and — with a tracer — opens the
	// root http.request span each downstream span parents under.
	return obs.AccessLogWith(logger, obs.AccessLogOptions{
		Tracer:      opts.tracer,
		SlowRequest: opts.slowRequest,
	}, mux)
}

// countingWriter records the response status for the per-endpoint
// error counters.
type countingWriter struct {
	http.ResponseWriter
	status int
}

func (w *countingWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Flush passes through so streaming handlers (job event streams) can
// push frames promptly from behind the counting wrapper.
func (w *countingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// overloaded applies queue-depth backpressure: when the simulation
// queue is at least maxQueue deep, answer 429 with a Retry-After hint
// instead of queueing unboundedly. The cluster coordinator treats the
// 429 as backpressure (requeue after the hint), not worker failure.
func (s *server) overloaded(w http.ResponseWriter) bool {
	return s.overloadedBy(w, 1)
}

// overloadedBy is the sweep-aware form: admitting n more cells while a
// backlog exists must not push the queue past the bound (a sweep that
// squeaked past the entry check could otherwise park its handler on a
// full service queue — exactly the unbounded queueing 429 exists to
// prevent). An idle queue admits any sweep the cell budget allows:
// many cells are typically cache hits or coalesce and never queue at
// all, so rejecting a big sweep by raw cell count alone would throttle
// warm sweeps that cost nothing.
func (s *server) overloadedBy(w http.ResponseWriter, n int) bool {
	if s.opts.maxQueue <= 0 {
		return false
	}
	depth := s.svc.QueueLen()
	if depth == 0 || depth+n <= s.opts.maxQueue {
		return false
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests, errorResponse{
		Error: fmt.Sprintf("simulation queue is %d deep (limit %d, %d cells asked); retry later", depth, s.opts.maxQueue, n),
	})
	return true
}

// configRef is the wire form of one configuration: either a named
// configuration ("EOLE_4_64") or an inline Config object. Inline
// configs are first-class — they are validated, labeled by
// Config.Label (the Name field if set, else a fingerprint-derived
// "custom-…" label) and cached by fingerprint, so an inline config
// field-identical to a named one shares its cache entry.
type configRef struct {
	name   string
	inline *eole.Config
}

// namedRef references a configuration by name; inlineRef embeds a
// config object.
func namedRef(name string) configRef      { return configRef{name: name} }
func inlineRef(cfg eole.Config) configRef { return configRef{inline: &cfg} }

// MarshalJSON is the inverse of UnmarshalJSON (a name encodes as a
// string, an inline config as an object), so request types containing
// configRef round-trip — clients can build them with this package's
// types in tests.
func (c configRef) MarshalJSON() ([]byte, error) {
	if c.inline != nil {
		return json.Marshal(c.inline)
	}
	return json.Marshal(c.name)
}

func (c *configRef) UnmarshalJSON(b []byte) error {
	b = bytes.TrimSpace(b)
	if len(b) > 0 && b[0] == '"' {
		return json.Unmarshal(b, &c.name)
	}
	// Strict decode: the documented workflow is "dump a config,
	// hand-edit, post" — a misspelled field name must be an error, not
	// a silently different machine.
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var cfg eole.Config
	if err := dec.Decode(&cfg); err != nil {
		return fmt.Errorf("inline config: %w", err)
	}
	c.inline = &cfg
	return nil
}

// resolve returns the referenced configuration, normalized (LE width
// defaulting, so an inline config matches its builder twin) and
// validated.
func (c configRef) resolve() (eole.Config, error) {
	switch {
	case c.inline != nil:
		cfg := c.inline.Normalized()
		if err := cfg.Validate(); err != nil {
			return eole.Config{}, err
		}
		return cfg, nil
	case c.name != "":
		return eole.NamedConfig(c.name)
	}
	return eole.Config{}, errors.New("request names no config (use a config name or an inline config object)")
}

// simulateRequest is the wire form of one simulation ask. Config is a
// named configuration or an inline config object; Warmup/Measure
// default to the server's run lengths when zero. Sampling, when
// present, runs the simulation sampled: warmup becomes functional
// warming, measure the total detailed budget across the spec's
// windows, and the response carries "ipc_ci" (the 95% confidence
// half-width) plus "sampled" and "sample_windows".
type simulateRequest struct {
	Config   configRef          `json:"config"`
	Workload string             `json:"workload"`
	Warmup   uint64             `json:"warmup,omitempty"`
	Measure  uint64             `json:"measure,omitempty"`
	Sampling *eole.SamplingSpec `json:"sampling,omitempty"`
}

// sweepRequest asks for a (configs × workloads) sweep. Configs mixes
// named configurations and inline config objects; Grid additionally
// cartesian-expands design-space axes ({"option": "PRFBanks",
// "values": [2,4,8]}) from a base config. Empty Configs and no Grid
// means "all named configs"; empty Workloads means "all benchmarks".
// Sampling applies to every cell (see simulateRequest); sampled and
// full sweeps never share cache entries.
type sweepRequest struct {
	Configs   []configRef        `json:"configs"`
	Grid      *eole.Grid         `json:"grid,omitempty"`
	Workloads []string           `json:"workloads"`
	Warmup    uint64             `json:"warmup,omitempty"`
	Measure   uint64             `json:"measure,omitempty"`
	Sampling  *eole.SamplingSpec `json:"sampling,omitempty"`
}

// sweepResult is one cell of the grid; exactly one of Report/Error is
// set.
type sweepResult struct {
	Config   string       `json:"config"`
	Workload string       `json:"workload"`
	Cached   bool         `json:"cached"`
	Report   *eole.Report `json:"report,omitempty"`
	Error    string       `json:"error,omitempty"`
}

type sweepResponse struct {
	Results []sweepResult `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// decodeStrict decodes a size-capped request body, rejecting unknown
// fields: a misspelled field in a hand-written request must be an
// error, not a silently different simulation.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if err := decodeStrict(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	sreq, err := s.buildRequest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The simulator is deterministic, so the entity tag depends only on
	// the request's content address: a client revalidating a cached 200
	// with If-None-Match is answered 304 before any simulation work —
	// even before the backpressure gate, since a 304 costs nothing.
	etag := resultETag(simsvc.KeyOf(sreq), sreq.Config.Label())
	if matchETag(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		s.notModified(r.Pattern)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	// Backpressure only gates work that would actually queue: a cached
	// or coalescable request is answered for free regardless of
	// backlog, so warm and duplicate traffic keeps flowing through a
	// saturated worker.
	if !s.svc.FreeToServe(sreq) && s.overloaded(w) {
		return
	}
	job, err := s.svc.Submit(r.Context(), sreq)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	report, err := job.Wait(r.Context())
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	// The tag is attached only to a fully successful response — a
	// failure must never become revalidatable as if it had content.
	w.Header().Set("ETag", etag)
	writeJSON(w, http.StatusOK, cluster.Relabel(report, sreq.Config.Label()))
}

// resolveSweep validates a sweep request and expands it into the
// request list: cell budget, config resolution/grid expansion,
// workload validation and run-length defaults. Shared by the local
// /v1/sweep and the distributed /v1/cluster/sweep so the two cannot
// drift on what a sweep means.
func (s *server) resolveSweep(req sweepRequest) ([]simsvc.Request, error) {
	if len(req.Workloads) == 0 {
		req.Workloads = eole.WorkloadNames()
	}
	// Enforce the cell budget on cheap counts — list lengths and the
	// grid's axis product — before resolving or expanding a single
	// config, so an oversized request is rejected without burning CPU
	// on tens of thousands of name resolutions.
	total := len(req.Configs)
	if req.Grid != nil {
		gsize := req.Grid.Size() // saturates instead of wrapping
		if gsize > maxSweepCells || total > maxSweepCells-gsize {
			return nil, fmt.Errorf("sweep of %d configs plus a %d-cell grid exceeds the %d-config limit", total, gsize, maxSweepCells)
		}
		total += gsize
	}
	if total == 0 {
		total = len(eole.ConfigNames())
	}
	if cells := total * len(req.Workloads); cells > maxSweepCells {
		return nil, fmt.Errorf("sweep grid of %d cells exceeds limit %d", cells, maxSweepCells)
	}
	cfgs, err := s.sweepConfigs(req)
	if err != nil {
		return nil, err
	}
	for _, wl := range req.Workloads {
		if _, err := eole.WorkloadByName(wl); err != nil {
			return nil, err
		}
	}
	warmup, measure, err := s.runLengths(req.Warmup, req.Measure, req.Sampling)
	if err != nil {
		return nil, err
	}
	return simsvc.ApplySampling(simsvc.Cross(cfgs, req.Workloads, warmup, measure), req.Sampling), nil
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeStrict(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	reqs, err := s.resolveSweep(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Like /v1/simulate, a sweep is revalidatable from its cells'
	// content addresses alone (digested in response order, so cell
	// alignment is part of the tag).
	etag := sweepETag(reqs)
	if matchETag(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		s.notModified(r.Pattern)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	// Backpressure counts only the cells a backlogged service would
	// actually have to queue: cached or in-flight-coalescable cells
	// are served for free (a re-run of a completed sweep passes even
	// at full queue depth), and duplicate cells within the sweep
	// coalesce into one queue slot, so all are excluded from the
	// count.
	if cold := s.coldCells(reqs); cold > 0 && s.overloadedBy(w, cold) {
		return
	}
	sweep, err := s.svc.SubmitSweep(r.Context(), reqs)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	resp := sweepResponse{Results: make([]sweepResult, len(sweep.Jobs))}
	complete := true
	for i, job := range sweep.Jobs {
		report, err := job.Wait(r.Context())
		label := reqs[i].Config.Label()
		res := sweepResult{
			Config:   label,
			Workload: reqs[i].Workload,
			Cached:   job.Cached(),
		}
		if err != nil {
			res.Error = err.Error()
			complete = false
		} else {
			res.Report = cluster.Relabel(report, label)
		}
		resp.Results[i] = res
	}
	// Tag only fully successful sweeps: a partial response must not be
	// revalidated into permanence by later If-None-Match requests.
	if complete {
		w.Header().Set("ETag", etag)
	}
	writeJSON(w, http.StatusOK, resp)
}

// sweepConfigs expands a sweep request's config list: named and
// inline refs, plus the cartesian expansion of the grid axes. With
// neither refs nor a grid the sweep covers every named configuration.
func (s *server) sweepConfigs(req sweepRequest) ([]eole.Config, error) {
	var cfgs []eole.Config
	for i, ref := range req.Configs {
		cfg, err := ref.resolve()
		if err != nil {
			return nil, fmt.Errorf("configs[%d]: %w", i, err)
		}
		cfgs = append(cfgs, cfg)
	}
	if req.Grid != nil {
		// Check the cell budget before expanding: Size is O(axes)
		// while Configs allocates every cell.
		if n := req.Grid.Size(); n > maxSweepCells {
			return nil, fmt.Errorf("grid expands to %d configs, exceeding limit %d", n, maxSweepCells)
		}
		gcfgs, err := req.Grid.Configs()
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, gcfgs...)
	}
	if len(cfgs) > 0 {
		return cfgs, nil
	}
	names := eole.ConfigNames()
	cfgs = make([]eole.Config, len(names))
	for i, name := range names {
		cfg, err := eole.NamedConfig(name)
		if err != nil {
			return nil, err
		}
		cfgs[i] = cfg
	}
	return cfgs, nil
}

func (s *server) handleConfigs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"configs": eole.ConfigNames()})
}

type workloadInfo struct {
	Short       string  `json:"short"`
	Name        string  `json:"name"`
	PaperIPC    float64 `json:"paper_ipc"`
	Description string  `json:"description"`
}

func (s *server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	// The Table 3 suite, then the long-* phased family (requestable
	// by name but excluded from empty-Workloads sweep defaults).
	all := append(eole.Workloads(), eole.LongWorkloads()...)
	infos := make([]workloadInfo, len(all))
	for i, wl := range all {
		infos[i] = workloadInfo{
			Short:       wl.Short,
			Name:        wl.Name,
			PaperIPC:    wl.PaperIPC,
			Description: wl.Description,
		}
	}
	writeJSON(w, http.StatusOK, map[string][]workloadInfo{"workloads": infos})
}

// tracesResponse lists the recorded µ-op traces the service replays
// for sweep acceleration.
type tracesResponse struct {
	Enabled bool               `json:"enabled"`
	Traces  []simsvc.TraceInfo `json:"traces"`
}

func (s *server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, tracesResponse{
		Enabled: s.svc.TracesEnabled(),
		Traces:  s.svc.Traces(),
	})
}

// statsResponse is /v1/stats: the embedded service counters (flattened
// into the top level, so pre-cluster clients keep decoding it as plain
// simsvc.Stats) plus server identity and the per-endpoint counters the
// cluster coordinator uses to attribute load per worker.
type statsResponse struct {
	simsvc.Stats
	Version  string `json:"version,omitempty"`
	UptimeNS int64  `json:"uptime_ns"`
	QueueLen int    `json:"queue_len"`
	// Artifacts is the artifact store's (tier × kind) accounting
	// matrix; absent when the service runs without a store.
	Artifacts []artifact.TierStats `json:"artifacts,omitempty"`
	// Jobs is the async job registry's accounting (retained/active
	// jobs, eviction and expiry counters, attached event streams).
	Jobs      jobs.Stats                       `json:"jobs"`
	Endpoints map[string]cluster.EndpointStats `json:"endpoints"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	eps := make(map[string]cluster.EndpointStats, len(s.endpoints))
	for path, ep := range s.endpoints {
		eps[path] = cluster.EndpointStats{
			Requests: ep.requests.Load(),
			Errors:   ep.errors.Load(),
		}
	}
	resp := statsResponse{
		Stats:     s.svc.Stats(),
		Version:   s.opts.version,
		UptimeNS:  int64(time.Since(s.start)),
		QueueLen:  s.svc.QueueLen(),
		Jobs:      s.jobs.Stats(),
		Endpoints: eps,
	}
	if store := s.svc.Artifacts(); store != nil {
		resp.Artifacts = store.Stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is the cheap liveness probe: no simulation state is
// touched, so it answers even when every worker is busy. The cluster
// prober keys its circuit breaker on it; load balancers can too.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, cluster.Health{
		Status:      "ok",
		Version:     s.opts.version,
		UptimeNS:    int64(time.Since(s.start)),
		Parallelism: s.svc.Parallelism(),
		QueueLen:    s.svc.QueueLen(),
		Coordinator: s.opts.coord != nil,
	})
}

// sampledStreamFactor scales the maxUops ceiling for a sampled
// request's total stream consumption (warmup + every window's skip,
// warm and measure phases): fast-forwarded µ-ops cost roughly an
// order of magnitude less than detailed ones, so a sampled request
// may walk a stream this many times longer than a full run's ceiling
// before it threatens the worker pool.
const sampledStreamFactor = 16

// buildRequest resolves the config reference (named or inline),
// applies defaults and enforces the run length ceiling.
func (s *server) buildRequest(req simulateRequest) (simsvc.Request, error) {
	cfg, err := req.Config.resolve()
	if err != nil {
		return simsvc.Request{}, err
	}
	if _, err := eole.WorkloadByName(req.Workload); err != nil {
		return simsvc.Request{}, err
	}
	warmup, measure, err := s.runLengths(req.Warmup, req.Measure, req.Sampling)
	if err != nil {
		return simsvc.Request{}, err
	}
	return simsvc.Request{Config: cfg, Workload: req.Workload, Warmup: warmup, Measure: measure, Sampling: req.Sampling}, nil
}

// runLengths applies the server defaults and the per-request ceiling;
// with a sampling spec it also validates the spec and bounds the
// total stream the schedule would consume.
func (s *server) runLengths(warmup, measure uint64, sampling *eole.SamplingSpec) (uint64, uint64, error) {
	if warmup == 0 {
		warmup = s.opts.defaultWarmup
	}
	if measure == 0 {
		measure = s.opts.defaultMeasure
	}
	// Overflow-safe ceiling check: warmup+measure can wrap uint64.
	if s.opts.maxUops > 0 && (warmup > s.opts.maxUops || measure > s.opts.maxUops-warmup) {
		return 0, 0, fmt.Errorf("run length %d+%d µ-ops exceeds server limit %d", warmup, measure, s.opts.maxUops)
	}
	if sampling != nil {
		// Plan both validates the spec and rejects schedules that do
		// not resolve against this measure budget (e.g. more windows
		// than measured µ-ops) with an error naming the real problem.
		plan, err := sampling.Plan(measure)
		if err != nil {
			return 0, 0, err
		}
		if s.opts.maxUops > 0 {
			// Detailed (cycle-accurate) work is the expensive part,
			// and an explicit per-window spec Measure can exceed the
			// request-level budget checked above — hold the
			// schedule's detailed total to the same maxUops ceiling
			// a full run gets.
			perWindow := plan.Measure + plan.DetailWarmup
			if detailed := perWindow * uint64(plan.Windows); perWindow != 0 && (detailed/perWindow != uint64(plan.Windows) || detailed > s.opts.maxUops) {
				return 0, 0, fmt.Errorf("sampled schedule simulates %d × %d detailed µ-ops, exceeding server limit %d",
					plan.Windows, perWindow, s.opts.maxUops)
			}
			budget := s.opts.maxUops * sampledStreamFactor
			if budget/sampledStreamFactor != s.opts.maxUops { // overflowed
				budget = 1<<64 - 1
			}
			if need := sampling.StreamNeed(warmup, measure); need > budget {
				return 0, 0, fmt.Errorf("sampled schedule consumes %d stream µ-ops, exceeding the server limit %d (%d × %d)",
					need, budget, s.opts.maxUops, sampledStreamFactor)
			}
		}
	}
	return warmup, measure, nil
}

// statusFor maps service errors to HTTP statuses: a closed service is
// shutting down (503), a canceled request is the client's doing (499
// has no stdlib constant; 400 serves), anything else is a simulation
// failure (500).
func statusFor(err error) int {
	switch {
	case errors.Is(err, simsvc.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
