package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"eole"
	"eole/internal/simsvc"
)

// maxBodyBytes caps request bodies; the largest legitimate sweep body
// (every config and workload named in full) is well under 64KB.
const maxBodyBytes = 1 << 20

// maxSweepCells caps the (configs × workloads) grid of one sweep
// request. The full named grid is 11×19 = 209 cells; the cap leaves
// generous headroom while keeping one request from allocating an
// unbounded response.
const maxSweepCells = 4096

// server wires the batch simulation service to the HTTP API. All
// handlers speak JSON and rely only on net/http.
type server struct {
	svc *simsvc.Service

	// Defaults applied when a request omits warmup/measure, and the
	// per-request ceiling protecting the worker pool from unbounded
	// simulations.
	defaultWarmup  uint64
	defaultMeasure uint64
	maxUops        uint64
}

func newServer(svc *simsvc.Service, defaultWarmup, defaultMeasure, maxUops uint64) http.Handler {
	s := &server{
		svc:            svc,
		defaultWarmup:  defaultWarmup,
		defaultMeasure: defaultMeasure,
		maxUops:        maxUops,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/configs", s.handleConfigs)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// configRef is the wire form of one configuration: either a named
// configuration ("EOLE_4_64") or an inline Config object. Inline
// configs are first-class — they are validated, labeled by
// Config.Label (the Name field if set, else a fingerprint-derived
// "custom-…" label) and cached by fingerprint, so an inline config
// field-identical to a named one shares its cache entry.
type configRef struct {
	name   string
	inline *eole.Config
}

// namedRef references a configuration by name; inlineRef embeds a
// config object.
func namedRef(name string) configRef      { return configRef{name: name} }
func inlineRef(cfg eole.Config) configRef { return configRef{inline: &cfg} }

// MarshalJSON is the inverse of UnmarshalJSON (a name encodes as a
// string, an inline config as an object), so request types containing
// configRef round-trip — clients can build them with this package's
// types in tests.
func (c configRef) MarshalJSON() ([]byte, error) {
	if c.inline != nil {
		return json.Marshal(c.inline)
	}
	return json.Marshal(c.name)
}

func (c *configRef) UnmarshalJSON(b []byte) error {
	b = bytes.TrimSpace(b)
	if len(b) > 0 && b[0] == '"' {
		return json.Unmarshal(b, &c.name)
	}
	// Strict decode: the documented workflow is "dump a config,
	// hand-edit, post" — a misspelled field name must be an error, not
	// a silently different machine.
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var cfg eole.Config
	if err := dec.Decode(&cfg); err != nil {
		return fmt.Errorf("inline config: %w", err)
	}
	c.inline = &cfg
	return nil
}

// resolve returns the referenced configuration, normalized (LE width
// defaulting, so an inline config matches its builder twin) and
// validated.
func (c configRef) resolve() (eole.Config, error) {
	switch {
	case c.inline != nil:
		cfg := c.inline.Normalized()
		if err := cfg.Validate(); err != nil {
			return eole.Config{}, err
		}
		return cfg, nil
	case c.name != "":
		return eole.NamedConfig(c.name)
	}
	return eole.Config{}, errors.New("request names no config (use a config name or an inline config object)")
}

// simulateRequest is the wire form of one simulation ask. Config is a
// named configuration or an inline config object; Warmup/Measure
// default to the server's run lengths when zero. Sampling, when
// present, runs the simulation sampled: warmup becomes functional
// warming, measure the total detailed budget across the spec's
// windows, and the response carries "ipc_ci" (the 95% confidence
// half-width) plus "sampled" and "sample_windows".
type simulateRequest struct {
	Config   configRef          `json:"config"`
	Workload string             `json:"workload"`
	Warmup   uint64             `json:"warmup,omitempty"`
	Measure  uint64             `json:"measure,omitempty"`
	Sampling *eole.SamplingSpec `json:"sampling,omitempty"`
}

// sweepRequest asks for a (configs × workloads) sweep. Configs mixes
// named configurations and inline config objects; Grid additionally
// cartesian-expands design-space axes ({"option": "PRFBanks",
// "values": [2,4,8]}) from a base config. Empty Configs and no Grid
// means "all named configs"; empty Workloads means "all benchmarks".
// Sampling applies to every cell (see simulateRequest); sampled and
// full sweeps never share cache entries.
type sweepRequest struct {
	Configs   []configRef        `json:"configs"`
	Grid      *eole.Grid         `json:"grid,omitempty"`
	Workloads []string           `json:"workloads"`
	Warmup    uint64             `json:"warmup,omitempty"`
	Measure   uint64             `json:"measure,omitempty"`
	Sampling  *eole.SamplingSpec `json:"sampling,omitempty"`
}

// sweepResult is one cell of the grid; exactly one of Report/Error is
// set.
type sweepResult struct {
	Config   string       `json:"config"`
	Workload string       `json:"workload"`
	Cached   bool         `json:"cached"`
	Report   *eole.Report `json:"report,omitempty"`
	Error    string       `json:"error,omitempty"`
}

type sweepResponse struct {
	Results []sweepResult `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// decodeStrict decodes a size-capped request body, rejecting unknown
// fields: a misspelled field in a hand-written request must be an
// error, not a silently different simulation.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if err := decodeStrict(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	sreq, err := s.buildRequest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.svc.Submit(r.Context(), sreq)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	report, err := job.Wait(r.Context())
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, relabel(report, sreq.Config.Label()))
}

// relabel returns the report labeled with the requested config's
// label. Content-addressed caching keys on Config.Fingerprint and
// ignores display names, so a request can be satisfied by a
// simulation submitted under an identically-parameterized config with
// a different name (or none).
func relabel(r *eole.Report, label string) *eole.Report {
	if r == nil || r.Config == label {
		return r
	}
	cp := *r
	cp.Config = label
	return &cp
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeStrict(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Workloads) == 0 {
		req.Workloads = eole.WorkloadNames()
	}
	// Enforce the cell budget on cheap counts — list lengths and the
	// grid's axis product — before resolving or expanding a single
	// config, so an oversized request is rejected without burning CPU
	// on tens of thousands of name resolutions.
	total := len(req.Configs)
	if req.Grid != nil {
		gsize := req.Grid.Size() // saturates instead of wrapping
		if gsize > maxSweepCells || total > maxSweepCells-gsize {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("sweep of %d configs plus a %d-cell grid exceeds the %d-config limit", total, gsize, maxSweepCells))
			return
		}
		total += gsize
	}
	if total == 0 {
		total = len(eole.ConfigNames())
	}
	if cells := total * len(req.Workloads); cells > maxSweepCells {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sweep grid of %d cells exceeds limit %d", cells, maxSweepCells))
		return
	}
	cfgs, err := s.sweepConfigs(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	for _, wl := range req.Workloads {
		if _, err := eole.WorkloadByName(wl); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	warmup, measure, err := s.runLengths(req.Warmup, req.Measure, req.Sampling)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	reqs := simsvc.ApplySampling(simsvc.Cross(cfgs, req.Workloads, warmup, measure), req.Sampling)
	sweep, err := s.svc.SubmitSweep(r.Context(), reqs)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	resp := sweepResponse{Results: make([]sweepResult, len(sweep.Jobs))}
	for i, job := range sweep.Jobs {
		report, err := job.Wait(r.Context())
		label := reqs[i].Config.Label()
		res := sweepResult{
			Config:   label,
			Workload: reqs[i].Workload,
			Cached:   job.Cached(),
		}
		if err != nil {
			res.Error = err.Error()
		} else {
			res.Report = relabel(report, label)
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

// sweepConfigs expands a sweep request's config list: named and
// inline refs, plus the cartesian expansion of the grid axes. With
// neither refs nor a grid the sweep covers every named configuration.
func (s *server) sweepConfigs(req sweepRequest) ([]eole.Config, error) {
	var cfgs []eole.Config
	for i, ref := range req.Configs {
		cfg, err := ref.resolve()
		if err != nil {
			return nil, fmt.Errorf("configs[%d]: %w", i, err)
		}
		cfgs = append(cfgs, cfg)
	}
	if req.Grid != nil {
		// Check the cell budget before expanding: Size is O(axes)
		// while Configs allocates every cell.
		if n := req.Grid.Size(); n > maxSweepCells {
			return nil, fmt.Errorf("grid expands to %d configs, exceeding limit %d", n, maxSweepCells)
		}
		gcfgs, err := req.Grid.Configs()
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, gcfgs...)
	}
	if len(cfgs) > 0 {
		return cfgs, nil
	}
	names := eole.ConfigNames()
	cfgs = make([]eole.Config, len(names))
	for i, name := range names {
		cfg, err := eole.NamedConfig(name)
		if err != nil {
			return nil, err
		}
		cfgs[i] = cfg
	}
	return cfgs, nil
}

func (s *server) handleConfigs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"configs": eole.ConfigNames()})
}

type workloadInfo struct {
	Short       string  `json:"short"`
	Name        string  `json:"name"`
	PaperIPC    float64 `json:"paper_ipc"`
	Description string  `json:"description"`
}

func (s *server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	// The Table 3 suite, then the long-* phased family (requestable
	// by name but excluded from empty-Workloads sweep defaults).
	all := append(eole.Workloads(), eole.LongWorkloads()...)
	infos := make([]workloadInfo, len(all))
	for i, wl := range all {
		infos[i] = workloadInfo{
			Short:       wl.Short,
			Name:        wl.Name,
			PaperIPC:    wl.PaperIPC,
			Description: wl.Description,
		}
	}
	writeJSON(w, http.StatusOK, map[string][]workloadInfo{"workloads": infos})
}

// tracesResponse lists the recorded µ-op traces the service replays
// for sweep acceleration.
type tracesResponse struct {
	Enabled bool               `json:"enabled"`
	Traces  []simsvc.TraceInfo `json:"traces"`
}

func (s *server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, tracesResponse{
		Enabled: s.svc.TracesEnabled(),
		Traces:  s.svc.Traces(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Stats())
}

// sampledStreamFactor scales the maxUops ceiling for a sampled
// request's total stream consumption (warmup + every window's skip,
// warm and measure phases): fast-forwarded µ-ops cost roughly an
// order of magnitude less than detailed ones, so a sampled request
// may walk a stream this many times longer than a full run's ceiling
// before it threatens the worker pool.
const sampledStreamFactor = 16

// buildRequest resolves the config reference (named or inline),
// applies defaults and enforces the run length ceiling.
func (s *server) buildRequest(req simulateRequest) (simsvc.Request, error) {
	cfg, err := req.Config.resolve()
	if err != nil {
		return simsvc.Request{}, err
	}
	if _, err := eole.WorkloadByName(req.Workload); err != nil {
		return simsvc.Request{}, err
	}
	warmup, measure, err := s.runLengths(req.Warmup, req.Measure, req.Sampling)
	if err != nil {
		return simsvc.Request{}, err
	}
	return simsvc.Request{Config: cfg, Workload: req.Workload, Warmup: warmup, Measure: measure, Sampling: req.Sampling}, nil
}

// runLengths applies the server defaults and the per-request ceiling;
// with a sampling spec it also validates the spec and bounds the
// total stream the schedule would consume.
func (s *server) runLengths(warmup, measure uint64, sampling *eole.SamplingSpec) (uint64, uint64, error) {
	if warmup == 0 {
		warmup = s.defaultWarmup
	}
	if measure == 0 {
		measure = s.defaultMeasure
	}
	// Overflow-safe ceiling check: warmup+measure can wrap uint64.
	if s.maxUops > 0 && (warmup > s.maxUops || measure > s.maxUops-warmup) {
		return 0, 0, fmt.Errorf("run length %d+%d µ-ops exceeds server limit %d", warmup, measure, s.maxUops)
	}
	if sampling != nil {
		// Plan both validates the spec and rejects schedules that do
		// not resolve against this measure budget (e.g. more windows
		// than measured µ-ops) with an error naming the real problem.
		plan, err := sampling.Plan(measure)
		if err != nil {
			return 0, 0, err
		}
		if s.maxUops > 0 {
			// Detailed (cycle-accurate) work is the expensive part,
			// and an explicit per-window spec Measure can exceed the
			// request-level budget checked above — hold the
			// schedule's detailed total to the same maxUops ceiling
			// a full run gets.
			perWindow := plan.Measure + plan.DetailWarmup
			if detailed := perWindow * uint64(plan.Windows); perWindow != 0 && (detailed/perWindow != uint64(plan.Windows) || detailed > s.maxUops) {
				return 0, 0, fmt.Errorf("sampled schedule simulates %d × %d detailed µ-ops, exceeding server limit %d",
					plan.Windows, perWindow, s.maxUops)
			}
			budget := s.maxUops * sampledStreamFactor
			if budget/sampledStreamFactor != s.maxUops { // overflowed
				budget = 1<<64 - 1
			}
			if need := sampling.StreamNeed(warmup, measure); need > budget {
				return 0, 0, fmt.Errorf("sampled schedule consumes %d stream µ-ops, exceeding the server limit %d (%d × %d)",
					need, budget, s.maxUops, sampledStreamFactor)
			}
		}
	}
	return warmup, measure, nil
}

// statusFor maps service errors to HTTP statuses: a closed service is
// shutting down (503), a canceled request is the client's doing (499
// has no stdlib constant; 400 serves), anything else is a simulation
// failure (500).
func statusFor(err error) int {
	switch {
	case errors.Is(err, simsvc.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
