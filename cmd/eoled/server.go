package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"eole"
	"eole/internal/simsvc"
)

// maxBodyBytes caps request bodies; the largest legitimate sweep body
// (every config and workload named in full) is well under 64KB.
const maxBodyBytes = 1 << 20

// maxSweepCells caps the (configs × workloads) grid of one sweep
// request. The full named grid is 11×19 = 209 cells; the cap leaves
// generous headroom while keeping one request from allocating an
// unbounded response.
const maxSweepCells = 4096

// server wires the batch simulation service to the HTTP API. All
// handlers speak JSON and rely only on net/http.
type server struct {
	svc *simsvc.Service

	// Defaults applied when a request omits warmup/measure, and the
	// per-request ceiling protecting the worker pool from unbounded
	// simulations.
	defaultWarmup  uint64
	defaultMeasure uint64
	maxUops        uint64
}

func newServer(svc *simsvc.Service, defaultWarmup, defaultMeasure, maxUops uint64) http.Handler {
	s := &server{
		svc:            svc,
		defaultWarmup:  defaultWarmup,
		defaultMeasure: defaultMeasure,
		maxUops:        maxUops,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/configs", s.handleConfigs)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// simulateRequest is the wire form of one simulation ask. Config is a
// named configuration; Warmup/Measure default to the server's run
// lengths when zero.
type simulateRequest struct {
	Config   string `json:"config"`
	Workload string `json:"workload"`
	Warmup   uint64 `json:"warmup,omitempty"`
	Measure  uint64 `json:"measure,omitempty"`
}

// sweepRequest asks for the full (configs × workloads) grid. Empty
// Configs or Workloads mean "all named ones".
type sweepRequest struct {
	Configs   []string `json:"configs"`
	Workloads []string `json:"workloads"`
	Warmup    uint64   `json:"warmup,omitempty"`
	Measure   uint64   `json:"measure,omitempty"`
}

// sweepResult is one cell of the grid; exactly one of Report/Error is
// set.
type sweepResult struct {
	Config   string       `json:"config"`
	Workload string       `json:"workload"`
	Cached   bool         `json:"cached"`
	Report   *eole.Report `json:"report,omitempty"`
	Error    string       `json:"error,omitempty"`
}

type sweepResponse struct {
	Results []sweepResult `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	sreq, err := s.buildRequest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.svc.Submit(r.Context(), sreq)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	report, err := job.Wait(r.Context())
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, relabel(report, sreq.Config.Name))
}

// relabel returns the report labeled with the requested config name.
// Content-addressed caching ignores display names, so a request can be
// satisfied by a simulation submitted under an identically-
// parameterized config with a different name.
func relabel(r *eole.Report, cfgName string) *eole.Report {
	if r == nil || r.Config == cfgName {
		return r
	}
	cp := *r
	cp.Config = cfgName
	return &cp
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Configs) == 0 {
		req.Configs = eole.ConfigNames()
	}
	if len(req.Workloads) == 0 {
		req.Workloads = eole.WorkloadNames()
	}
	if cells := len(req.Configs) * len(req.Workloads); cells > maxSweepCells {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sweep grid of %d cells exceeds limit %d", cells, maxSweepCells))
		return
	}
	// Resolve names and run lengths once, then expand the grid.
	cfgs := make([]eole.Config, len(req.Configs))
	for i, name := range req.Configs {
		cfg, err := eole.NamedConfig(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		cfgs[i] = cfg
	}
	for _, wl := range req.Workloads {
		if _, err := eole.WorkloadByName(wl); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	warmup, measure, err := s.runLengths(req.Warmup, req.Measure)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	reqs := simsvc.Cross(cfgs, req.Workloads, warmup, measure)
	sweep, err := s.svc.SubmitSweep(r.Context(), reqs)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	resp := sweepResponse{Results: make([]sweepResult, len(sweep.Jobs))}
	for i, job := range sweep.Jobs {
		report, err := job.Wait(r.Context())
		res := sweepResult{
			Config:   reqs[i].Config.Name,
			Workload: reqs[i].Workload,
			Cached:   job.Cached(),
		}
		if err != nil {
			res.Error = err.Error()
		} else {
			res.Report = relabel(report, reqs[i].Config.Name)
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleConfigs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"configs": eole.ConfigNames()})
}

type workloadInfo struct {
	Short       string  `json:"short"`
	Name        string  `json:"name"`
	PaperIPC    float64 `json:"paper_ipc"`
	Description string  `json:"description"`
}

func (s *server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	all := eole.Workloads()
	infos := make([]workloadInfo, len(all))
	for i, wl := range all {
		infos[i] = workloadInfo{
			Short:       wl.Short,
			Name:        wl.Name,
			PaperIPC:    wl.PaperIPC,
			Description: wl.Description,
		}
	}
	writeJSON(w, http.StatusOK, map[string][]workloadInfo{"workloads": infos})
}

// tracesResponse lists the recorded µ-op traces the service replays
// for sweep acceleration.
type tracesResponse struct {
	Enabled bool               `json:"enabled"`
	Traces  []simsvc.TraceInfo `json:"traces"`
}

func (s *server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, tracesResponse{
		Enabled: s.svc.TracesEnabled(),
		Traces:  s.svc.Traces(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Stats())
}

// buildRequest resolves names, applies defaults and enforces the run
// length ceiling.
func (s *server) buildRequest(req simulateRequest) (simsvc.Request, error) {
	cfg, err := eole.NamedConfig(req.Config)
	if err != nil {
		return simsvc.Request{}, err
	}
	if _, err := eole.WorkloadByName(req.Workload); err != nil {
		return simsvc.Request{}, err
	}
	warmup, measure, err := s.runLengths(req.Warmup, req.Measure)
	if err != nil {
		return simsvc.Request{}, err
	}
	return simsvc.Request{Config: cfg, Workload: req.Workload, Warmup: warmup, Measure: measure}, nil
}

// runLengths applies the server defaults and the per-request ceiling.
func (s *server) runLengths(warmup, measure uint64) (uint64, uint64, error) {
	if warmup == 0 {
		warmup = s.defaultWarmup
	}
	if measure == 0 {
		measure = s.defaultMeasure
	}
	// Overflow-safe ceiling check: warmup+measure can wrap uint64.
	if s.maxUops > 0 && (warmup > s.maxUops || measure > s.maxUops-warmup) {
		return 0, 0, fmt.Errorf("run length %d+%d µ-ops exceeds server limit %d", warmup, measure, s.maxUops)
	}
	return warmup, measure, nil
}

// statusFor maps service errors to HTTP statuses: a closed service is
// shutting down (503), a canceled request is the client's doing (499
// has no stdlib constant; 400 serves), anything else is a simulation
// failure (500).
func statusFor(err error) int {
	switch {
	case errors.Is(err, simsvc.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
