// Command eoled serves the EOLE simulator over HTTP as a batch
// simulation service: requests share one worker pool and one
// content-addressed result cache, so identical (config, workload,
// warmup, measure) asks — from one client or many — simulate once.
//
// By default the service is also trace-driven: the committed µ-op
// stream of each workload is recorded once and replayed for every
// configuration, so a sweep interprets each workload one time instead
// of once per config (replay is byte-identical to execute-driven
// simulation). Disable with -traces=false; persist recordings across
// restarts with -trace-dir.
//
// Endpoints (all JSON):
//
//	POST /v1/simulate        {"config":"EOLE_4_64","workload":"namd","warmup":50000,"measure":200000}
//	POST /v1/sweep           {"configs":[...],"grid":{...},"workloads":[...],"warmup":...,"measure":...}
//	POST /v1/jobs            same bodies as simulate/sweep; answers 202 with a job id immediately
//	GET  /v1/jobs            list retained jobs (active + recently finished)
//	GET  /v1/jobs/{id}       job status: state, cells completed/total, per-cell errors
//	DELETE /v1/jobs/{id}     cancel: queued cells dropped, running sims abandoned
//	GET  /v1/jobs/{id}/events  per-cell completion stream: SSE (default) or NDJSON via Accept;
//	                           replays completed cells on attach, ?from=N / Last-Event-ID resumes
//	GET  /v1/configs         named machine configurations
//	GET  /v1/workloads       the 19 benchmarks
//	GET  /v1/traces          recorded µ-op traces (workload, length, bytes)
//	GET  /v1/artifacts/{kind}/{key}  serve one stored artifact (also HEAD)
//	PUT  /v1/artifacts/{kind}/{key}  store one validated artifact
//	GET  /v1/stats           service counters plus per-endpoint request/error counters
//	GET  /v1/healthz         cheap liveness (status, version, uptime, queue depth)
//	GET  /v1/debug/traces    recent request traces (timed spans), newest first
//	GET  /v1/debug/traces/{id}  one assembled trace by trace or request ID; ?format=svg renders a timeline
//	POST /v1/cluster/sweep   (with -peers) shard a sweep across the worker fleet
//	GET  /v1/cluster/workers (with -peers) per-worker health, counters and merged stats
//
// Persistence: -artifact-dir roots a content-addressed artifact fabric
// holding simulation results and recorded traces (memory LRU → disk →
// optional -artifact-peer HTTP tier). Results and traces survive
// restarts — a restarted server answers previously simulated requests
// from disk without simulating — and /v1/simulate and /v1/sweep emit
// ETags derived from the request's content address, so clients can
// revalidate cached responses with If-None-Match and get 304s without
// any simulation work. Workers started with -artifact-peer pointing at
// the coordinator push freshly recorded traces (and results) there and
// fetch ones their siblings recorded, so a cluster interprets each
// workload once fleet-wide.
//
// Cluster mode: any eoled can coordinate a fleet of others. Start
// workers normally (optionally with -worker to document the role) and
// one coordinator with -peers listing them; POST /v1/cluster/sweep
// then decomposes the sweep into content-addressed cells, dedupes
// identical cells cluster-wide, dispatches them over the workers'
// /v1/simulate with health-checked, bounded-in-flight, work-stealing
// scheduling, and merges the reports — byte-identical to the same
// sweep on one node. A killed worker's cells are requeued to the
// survivors. Backpressure: once -max-queue unique simulations are
// queued, simulate/sweep answer 429 with a Retry-After hint, which the
// coordinator treats as "rest this worker", not failure.
//
// Configurations are first-class values: wherever a request takes a
// config name it also takes an inline Config object, validated and
// cached by its canonical fingerprint — an inline config
// field-identical to a named one shares its cache entry. /v1/sweep
// additionally accepts a design-space grid ({"base_name":"EOLE_4_64",
// "axes":[{"option":"PRFBanks","values":[2,4,8]}]}) that the server
// cartesian-expands into validated configs. Disconnecting a client
// cancels its jobs: queued ones are dropped, and a running simulation
// whose waiters are all gone is abandoned at the core's next
// cancellation checkpoint.
//
// Tracing: every request is traced end to end with per-phase timed
// spans — HTTP handling, cache probe, queue wait, trace load, warm-up,
// detailed run, cluster dispatch attempts, artifact peer fetches —
// retained in a bounded in-memory ring (-trace-ring, 0 disables) and
// served on GET /v1/debug/traces. Responses carry X-Eole-Trace-Id;
// requests may carry a W3C traceparent header to join a caller's
// trace, which is how a coordinator's dispatches thread one trace
// through its workers (it fetches their spans back after the sweep, so
// the assembled trace is one cross-process waterfall). Requests slower
// than -slow-request escalate to a WARN log record naming the trace
// and its slowest spans. Spans are per-phase, never per-µ-op: the
// simulation hot loop is untouched, and with -trace-ring 0 each
// instrumentation point costs one nil check.
//
// Sampled simulation: /v1/simulate and /v1/sweep take an optional
// "sampling" object ({"windows":8,"skip":0,"warm":40000}): the run
// then alternates functional-warming fast-forwards with short
// detailed measurement windows (SMARTS-style), and the report carries
// "ipc" as the window mean plus "ipc_ci" (the 95% confidence
// half-width), "sampled" and "sample_windows". Sampled and full runs
// never share a cache entry. Intended for the long-* workloads, whose
// recommended ~12M-µ-op streams are intractable to simulate in full.
//
// Example:
//
//	eoled -addr :8080 -cache-dir /var/cache/eole -trace-dir /var/cache/eole-traces &
//	curl -s localhost:8080/v1/simulate -d '{"config":"EOLE_4_64","workload":"namd"}'
//	curl -s localhost:8080/v1/simulate -d '{"config":{"IssueWidth":5,...},"workload":"namd"}'
//	curl -s localhost:8080/v1/sweep -d '{"grid":{"base_name":"EOLE_4_64","axes":[{"option":"PRFBanks","values":[2,4,8]}]},"workloads":["namd"]}'
//	curl -s localhost:8080/v1/simulate -d '{"config":"EOLE_4_64","workload":"long-dram","warmup":50000,"measure":160000,"sampling":{"windows":8,"warm":40000}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"eole/internal/artifact"
	"eole/internal/cluster"
	"eole/internal/jobs"
	"eole/internal/obs"
	"eole/internal/simsvc"
)

// version identifies this server build on /v1/healthz and /v1/stats.
// Bump alongside schema-visible changes so cluster operators can spot
// a mixed-version fleet from GET /v1/cluster/workers.
const version = "0.8.0"

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		par          = flag.Int("parallelism", 0, "concurrent simulations (0 = GOMAXPROCS)")
		artifactDir  = flag.String("artifact-dir", "", "persist the artifact fabric (results under <dir>/result, traces under <dir>/trace); implies -traces")
		artifactPeer = flag.String("artifact-peer", "", "base URL of a peer eoled whose /v1/artifacts backs cache misses (workers point this at the coordinator)")
		cacheDir     = flag.String("cache-dir", "", "spill simulation results to this directory (alias for an -artifact-dir result override)")
		cacheN       = flag.Int("cache-entries", 0, "in-memory result cache bound (0 = 16384, negative = unbounded)")
		warmup       = flag.Uint64("default-warmup", 50_000, "warm-up µ-ops when a request omits warmup")
		measure      = flag.Uint64("default-measure", 200_000, "measured µ-ops when a request omits measure")
		maxUops      = flag.Uint64("max-uops", 50_000_000, "per-request ceiling on warmup+measure µ-ops (0 = unlimited)")
		maxQueue     = flag.Int("max-queue", 1024, "queue-depth bound: answer 429 with Retry-After once this many unique simulations are queued (0 disables the 429; requests then block once the internal queue fills)")
		traces       = flag.Bool("traces", true, "record each workload's µ-op stream once and replay it per config")
		traceDir     = flag.String("trace-dir", "", "persist recorded traces to this directory (alias for an -artifact-dir trace override; implies -traces)")
		traceMax     = flag.Uint64("max-trace-uops", 0, "trace length ceiling in µ-ops; longer requests run execute-driven (0 = 1M)")
		peers        = flag.String("peers", "", "comma-separated worker eoled addresses: act as a cluster coordinator (enables /v1/cluster/*)")
		shareTraces  = flag.Bool("cluster-share-traces", true, "gate cluster sweeps so each workload's trace is recorded by one worker and fetched by the rest (workers need -artifact-peer pointing here to benefit)")
		workerOn     = flag.Bool("worker", false, "pure worker mode: serve simulations only, never coordinate (mutually exclusive with -peers)")
		jobTTL       = flag.Duration("job-ttl", 15*time.Minute, "retain finished async jobs this long for late polls and event replays")
		maxJobs      = flag.Int("max-jobs", 512, "bound on retained async jobs; at the bound the oldest finished job is evicted, and all-active answers 429")
		jobHeartbeat = flag.Duration("job-heartbeat", 15*time.Second, "keep-alive interval on idle job event streams")
		traceRing    = flag.Int("trace-ring", obs.DefaultTraceRing, "retain the most recent N request traces for /v1/debug/traces (0 disables tracing)")
		slowReq      = flag.Duration("slow-request", 10*time.Second, "WARN-log any request slower than this with its trace ID and slowest spans (0 disables)")
		logFormat    = flag.String("log-format", "text", "structured log encoding: text or json")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn or error (debug adds per-job and per-dispatch records)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off by default and never on the API listener")
	)
	flag.Parse()

	if *workerOn && *peers != "" {
		fmt.Fprintln(os.Stderr, "eoled: -worker and -peers are mutually exclusive")
		os.Exit(1)
	}

	logger, err := newLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eoled:", err)
		os.Exit(1)
	}

	// The 429 check compares the service's queue depth against
	// -max-queue, so the queue must be deep enough to actually reach
	// the bound: a -max-queue at or past the service default would
	// otherwise never trip and silently revert to blocking.
	queueDepth := 0 // 0 = the service default
	if *maxQueue >= simsvc.DefaultQueueDepth {
		queueDepth = *maxQueue + 1
	}

	// The tracer's service identity carries the listen address so a
	// cross-process waterfall says which eoled ran each span. A nil
	// tracer (-trace-ring 0) disables every instrumentation point.
	var tracer *obs.Tracer
	if *traceRing > 0 {
		tracer = obs.NewTracer("eoled@"+*addr, *traceRing)
	}

	// The artifact store is always created — even with no directories
	// it provides the memory tier behind /v1/artifacts, which is what
	// lets a diskless coordinator relay traces between workers. It is
	// built here (not inside simsvc) so the HTTP layer and the service
	// share one store and one set of tier counters.
	var peer artifact.Peer
	if *artifactPeer != "" {
		peer = artifact.NewHTTPPeer(*artifactPeer)
	}
	store, err := artifact.Open(artifact.Options{
		Dir: *artifactDir,
		KindDirs: map[artifact.Kind]string{
			artifact.KindResult: *cacheDir,
			artifact.KindTrace:  *traceDir,
		},
		Peer:   peer,
		Logger: logger,
		Tracer: tracer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "eoled:", err)
		os.Exit(1)
	}
	if store.Persistent() {
		logger.Info("artifact_fabric", "dir", *artifactDir, "cache_dir", *cacheDir,
			"trace_dir", *traceDir, "peer", *artifactPeer)
	}

	svc, err := simsvc.New(simsvc.Options{
		Parallelism:  *par,
		QueueDepth:   queueDepth,
		Artifacts:    store,
		CacheEntries: *cacheN,
		Traces:       *traces || *traceDir != "" || *artifactDir != "",
		TraceMaxOps:  *traceMax,
		Logger:       logger,
		Tracer:       tracer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "eoled:", err)
		os.Exit(1)
	}

	registry := jobs.New(svc, jobs.Options{
		TTL:     *jobTTL,
		MaxJobs: *maxJobs,
		Logger:  logger,
		Tracer:  tracer,
	})

	var coord *cluster.Coordinator
	if *peers != "" {
		coord, err = cluster.New(cluster.Options{
			Workers:     strings.Split(*peers, ","),
			ShareTraces: *shareTraces,
			Logger:      logger,
			Tracer:      tracer,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "eoled:", err)
			os.Exit(1)
		}
		defer coord.Close()
		logger.Info("cluster_coordinating", "workers", len(coord.Workers()))
	}

	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener, so profiling
		// endpoints are never reachable through the API address.
		go servePprof(logger, *pprofAddr)
	}

	// openConns tracks connections the listener has accepted and not
	// yet closed, so the shutdown log can say how many were still open
	// when the grace period ran out.
	var openConns atomic.Int64
	srv := &http.Server{
		Handler: newServer(svc, serverOptions{
			defaultWarmup:  *warmup,
			defaultMeasure: *measure,
			maxUops:        *maxUops,
			maxQueue:       *maxQueue,
			version:        version,
			coord:          coord,
			jobs:           registry,
			jobHeartbeat:   *jobHeartbeat,
			logger:         logger,
			tracer:         tracer,
			slowRequest:    *slowReq,
		}),
		ReadHeaderTimeout: 10 * time.Second,
		ConnState: func(_ net.Conn, state http.ConnState) {
			switch state {
			case http.StateNew:
				openConns.Add(1)
			case http.StateClosed, http.StateHijacked:
				openConns.Add(-1)
			}
		},
	}

	// Listen explicitly (rather than ListenAndServe) so a bind failure
	// is reported before the serving goroutine starts, and the startup
	// log can carry the resolved address — ":0" style addresses resolve
	// to a real port worth printing.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen_failed", "addr", *addr, "error", err.Error())
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"parallelism", svc.Parallelism(),
		"version", version)

	select {
	case err := <-errc:
		logger.Error("serve_failed", "addr", ln.Addr().String(), "error", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}
	// Restore default signal handling: a second SIGINT/SIGTERM kills
	// the process instead of being swallowed while we drain.
	stop()

	logger.Info("shutting_down", "open_connections", openConns.Load(), "inflight_sims", svc.InFlight())
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("shutdown_grace_expired", "open_connections", openConns.Load())
		} else {
			logger.Error("shutdown_failed", "error", err.Error())
		}
	}
	// Async jobs outlive their creating requests, so the HTTP drain
	// above does not cover them: cancel what is still active and wait
	// for the runners before closing the service they submit into.
	registry.Close()
	// Simulations are not preemptible: Close returns once running ones
	// finish (queued ones are abandoned), which can outlast the HTTP
	// grace period for long requests.
	if n := svc.InFlight(); n > 0 {
		logger.Info("draining_sims", "inflight_sims", n)
	}
	svc.Close()
	logger.Info("stopped")
}

// newLogger builds the process logger from the -log-format and
// -log-level flags.
func newLogger(w *os.File, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (text or json)", format)
}

// servePprof serves net/http/pprof on its own listener and mux. A
// profiler failing to bind is worth a log line, not a dead process.
func servePprof(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Error("pprof_listen_failed", "addr", addr, "error", err.Error())
		return
	}
	logger.Info("pprof_listening", "addr", ln.Addr().String())
	if err := http.Serve(ln, mux); err != nil {
		logger.Error("pprof_serve_failed", "error", err.Error())
	}
}
