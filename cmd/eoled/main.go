// Command eoled serves the EOLE simulator over HTTP as a batch
// simulation service: requests share one worker pool and one
// content-addressed result cache, so identical (config, workload,
// warmup, measure) asks — from one client or many — simulate once.
//
// By default the service is also trace-driven: the committed µ-op
// stream of each workload is recorded once and replayed for every
// configuration, so a sweep interprets each workload one time instead
// of once per config (replay is byte-identical to execute-driven
// simulation). Disable with -traces=false; persist recordings across
// restarts with -trace-dir.
//
// Endpoints (all JSON):
//
//	POST /v1/simulate        {"config":"EOLE_4_64","workload":"namd","warmup":50000,"measure":200000}
//	POST /v1/sweep           {"configs":[...],"grid":{...},"workloads":[...],"warmup":...,"measure":...}
//	GET  /v1/configs         named machine configurations
//	GET  /v1/workloads       the 19 benchmarks
//	GET  /v1/traces          recorded µ-op traces (workload, length, bytes)
//	GET  /v1/stats           service counters plus per-endpoint request/error counters
//	GET  /v1/healthz         cheap liveness (status, version, uptime, queue depth)
//	POST /v1/cluster/sweep   (with -peers) shard a sweep across the worker fleet
//	GET  /v1/cluster/workers (with -peers) per-worker health, counters and merged stats
//
// Cluster mode: any eoled can coordinate a fleet of others. Start
// workers normally (optionally with -worker to document the role) and
// one coordinator with -peers listing them; POST /v1/cluster/sweep
// then decomposes the sweep into content-addressed cells, dedupes
// identical cells cluster-wide, dispatches them over the workers'
// /v1/simulate with health-checked, bounded-in-flight, work-stealing
// scheduling, and merges the reports — byte-identical to the same
// sweep on one node. A killed worker's cells are requeued to the
// survivors. Backpressure: once -max-queue unique simulations are
// queued, simulate/sweep answer 429 with a Retry-After hint, which the
// coordinator treats as "rest this worker", not failure.
//
// Configurations are first-class values: wherever a request takes a
// config name it also takes an inline Config object, validated and
// cached by its canonical fingerprint — an inline config
// field-identical to a named one shares its cache entry. /v1/sweep
// additionally accepts a design-space grid ({"base_name":"EOLE_4_64",
// "axes":[{"option":"PRFBanks","values":[2,4,8]}]}) that the server
// cartesian-expands into validated configs. Disconnecting a client
// cancels its jobs: queued ones are dropped, and a running simulation
// whose waiters are all gone is abandoned at the core's next
// cancellation checkpoint.
//
// Sampled simulation: /v1/simulate and /v1/sweep take an optional
// "sampling" object ({"windows":8,"skip":0,"warm":40000}): the run
// then alternates functional-warming fast-forwards with short
// detailed measurement windows (SMARTS-style), and the report carries
// "ipc" as the window mean plus "ipc_ci" (the 95% confidence
// half-width), "sampled" and "sample_windows". Sampled and full runs
// never share a cache entry. Intended for the long-* workloads, whose
// recommended ~12M-µ-op streams are intractable to simulate in full.
//
// Example:
//
//	eoled -addr :8080 -cache-dir /var/cache/eole -trace-dir /var/cache/eole-traces &
//	curl -s localhost:8080/v1/simulate -d '{"config":"EOLE_4_64","workload":"namd"}'
//	curl -s localhost:8080/v1/simulate -d '{"config":{"IssueWidth":5,...},"workload":"namd"}'
//	curl -s localhost:8080/v1/sweep -d '{"grid":{"base_name":"EOLE_4_64","axes":[{"option":"PRFBanks","values":[2,4,8]}]},"workloads":["namd"]}'
//	curl -s localhost:8080/v1/simulate -d '{"config":"EOLE_4_64","workload":"long-dram","warmup":50000,"measure":160000,"sampling":{"windows":8,"warm":40000}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"eole/internal/cluster"
	"eole/internal/simsvc"
)

// version identifies this server build on /v1/healthz and /v1/stats.
// Bump alongside schema-visible changes so cluster operators can spot
// a mixed-version fleet from GET /v1/cluster/workers.
const version = "0.5.0"

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		par      = flag.Int("parallelism", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "spill simulation results to this directory")
		cacheN   = flag.Int("cache-entries", 0, "in-memory result cache bound (0 = 16384, negative = unbounded)")
		warmup   = flag.Uint64("default-warmup", 50_000, "warm-up µ-ops when a request omits warmup")
		measure  = flag.Uint64("default-measure", 200_000, "measured µ-ops when a request omits measure")
		maxUops  = flag.Uint64("max-uops", 50_000_000, "per-request ceiling on warmup+measure µ-ops (0 = unlimited)")
		maxQueue = flag.Int("max-queue", 1024, "queue-depth bound: answer 429 with Retry-After once this many unique simulations are queued (0 disables the 429; requests then block once the internal queue fills)")
		traces   = flag.Bool("traces", true, "record each workload's µ-op stream once and replay it per config")
		traceDir = flag.String("trace-dir", "", "persist recorded traces to this directory (implies -traces)")
		traceMax = flag.Uint64("max-trace-uops", 0, "trace length ceiling in µ-ops; longer requests run execute-driven (0 = 1M)")
		peers    = flag.String("peers", "", "comma-separated worker eoled addresses: act as a cluster coordinator (enables /v1/cluster/*)")
		workerOn = flag.Bool("worker", false, "pure worker mode: serve simulations only, never coordinate (mutually exclusive with -peers)")
	)
	flag.Parse()

	if *workerOn && *peers != "" {
		fmt.Fprintln(os.Stderr, "eoled: -worker and -peers are mutually exclusive")
		os.Exit(1)
	}

	// The 429 check compares the service's queue depth against
	// -max-queue, so the queue must be deep enough to actually reach
	// the bound: a -max-queue at or past the service default would
	// otherwise never trip and silently revert to blocking.
	queueDepth := 0 // 0 = the service default
	if *maxQueue >= simsvc.DefaultQueueDepth {
		queueDepth = *maxQueue + 1
	}

	svc, err := simsvc.New(simsvc.Options{
		Parallelism:  *par,
		QueueDepth:   queueDepth,
		CacheDir:     *cacheDir,
		CacheEntries: *cacheN,
		Traces:       *traces,
		TraceDir:     *traceDir,
		TraceMaxOps:  *traceMax,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "eoled:", err)
		os.Exit(1)
	}

	var coord *cluster.Coordinator
	if *peers != "" {
		coord, err = cluster.New(cluster.Options{Workers: strings.Split(*peers, ",")})
		if err != nil {
			fmt.Fprintln(os.Stderr, "eoled:", err)
			os.Exit(1)
		}
		defer coord.Close()
		log.Printf("eoled: coordinating %d workers", len(coord.Workers()))
	}

	srv := &http.Server{
		Addr: *addr,
		Handler: newServer(svc, serverOptions{
			defaultWarmup:  *warmup,
			defaultMeasure: *measure,
			maxUops:        *maxUops,
			maxQueue:       *maxQueue,
			version:        version,
			coord:          coord,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("eoled: listening on %s (parallelism %d)", *addr, svc.Parallelism())

	select {
	case err := <-errc:
		log.Fatalf("eoled: %v", err)
	case <-ctx.Done():
	}
	// Restore default signal handling: a second SIGINT/SIGTERM kills
	// the process instead of being swallowed while we drain.
	stop()

	log.Printf("eoled: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("eoled: shutdown grace period expired; abandoning open connections")
		} else {
			log.Printf("eoled: shutdown: %v", err)
		}
	}
	// Simulations are not preemptible: Close returns once running ones
	// finish (queued ones are abandoned), which can outlast the HTTP
	// grace period for long requests.
	log.Printf("eoled: waiting for running simulations")
	svc.Close()
}
