// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                    # everything (Tables 1-3, Figures 2-13)
//	experiments figure7 figure12   # selected artefacts
//	experiments -measure 300000 -warmup 100000 figure6
//	experiments -workloads namd,mcf figure7
//	experiments -sample-windows 8 -sample-warm 40000 figure7   # sampled sweeps
//	experiments -cluster host1:8080,host2:8080 figure10        # shard sweeps across eoled workers
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"eole"
	"eole/internal/cluster"
	"eole/internal/experiments"
	"eole/internal/simsvc"
)

func main() {
	var (
		warmup   = flag.Uint64("warmup", 0, "warm-up µ-ops (default: harness default)")
		measure  = flag.Uint64("measure", 0, "measured µ-ops (default: harness default)")
		wls      = flag.String("workloads", "", "comma-separated benchmark subset")
		chart    = flag.Bool("chart", false, "render figures as ASCII bar charts")
		figdir   = flag.String("figdir", "", "additionally write each tabular artefact as <id>.svg into this directory")
		par      = flag.Int("parallelism", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "spill simulation results to this directory (reused across runs)")
		stats    = flag.Bool("stats", false, "print simulation-service statistics at exit")
		traces   = flag.Bool("traces", true, "interpret each workload once and replay its µ-op trace per config")
		traceDir = flag.String("trace-dir", "", "persist recorded µ-op traces to this directory (implies -traces)")

		sampleWin  = flag.Int("sample-windows", 0, "run every sweep sampled with this many measurement windows (0 = full runs)")
		sampleSkip = flag.Uint64("sample-skip", 0, "per-window fast-forward µ-ops with no state updates")
		sampleWarm = flag.Uint64("sample-warm", 40_000, "per-window functional-warming µ-ops")

		clusterCSV = flag.String("cluster", "", "shard every sweep across these comma-separated eoled worker addresses (figures are identical to local runs — the simulator is deterministic)")
	)
	flag.Parse()

	opts := experiments.DefaultOpts()
	var svc *simsvc.Service
	var co *cluster.Coordinator
	if *clusterCSV != "" {
		// The cluster replaces the local service entirely: the workers
		// run (and cache) every simulation, so the local-service flags
		// are inert and no worker pool is spun up here.
		for _, f := range []struct {
			set  bool
			name string
		}{{*par != 0, "-parallelism"}, {*cacheDir != "", "-cache-dir"}, {!*traces, "-traces"}, {*traceDir != "", "-trace-dir"}} {
			if f.set {
				fmt.Fprintf(os.Stderr, "experiments: %s has no effect with -cluster (the workers own caching and tracing)\n", f.name)
			}
		}
		var err error
		co, err = cluster.New(cluster.Options{Workers: strings.Split(*clusterCSV, ",")})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer co.Close()
		opts.Runner = co
	} else {
		// One shared service across every artefact: the baseline columns
		// that figures re-run are simulated once and served from cache,
		// and (with -traces) each workload is interpreted once per run
		// instead of once per (figure, config).
		var err error
		svc, err = simsvc.New(simsvc.Options{
			Parallelism: *par,
			CacheDir:    *cacheDir,
			Traces:      *traces,
			TraceDir:    *traceDir,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer svc.Close()
		opts.Service = svc
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *measure > 0 {
		opts.Measure = *measure
	}
	if *wls != "" {
		opts.Workloads = strings.Split(*wls, ",")
	}
	if *sampleWin > 0 {
		spec := eole.SamplingSpec{Windows: *sampleWin, Skip: *sampleSkip, Warm: *sampleWarm}
		if err := spec.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		opts.Sampling = &spec
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	if *figdir != "" {
		if err := os.MkdirAll(*figdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		if *figdir != "" {
			tb, err := experiments.TableByID(id, opts)
			switch {
			case err == nil:
				// Speedup figures draw the 1.0 reference line; IPC and
				// accuracy tables draw none.
				svg, err := tb.RenderSVG(experiments.RefLine(id))
				if err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
				path := filepath.Join(*figdir, id+".svg")
				if err := os.WriteFile(path, svg, 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", path)
			case errors.Is(err, experiments.ErrNoTable):
				// Text-only artefacts have no figure; skip silently.
			default:
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		if *chart {
			tb, err := experiments.TableByID(id, opts)
			switch {
			case err == nil:
				for _, col := range tb.Columns {
					out, err := tb.RenderChart(col, 1.0, 60)
					if err != nil {
						fmt.Fprintln(os.Stderr, "experiments:", err)
						os.Exit(1)
					}
					fmt.Println(out)
				}
				continue
			case errors.Is(err, experiments.ErrNoTable):
				// Fall through to text for text-only artefacts.
			default:
				// A real failure (bad workload, failed simulation):
				// report it instead of re-running the sweep as text.
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		a, err := experiments.ByID(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(a.Text)
	}
	if *stats {
		if co != nil {
			cs := co.Stats(context.Background())
			for _, w := range cs.Workers {
				fmt.Fprintf(os.Stderr, "cluster: %s %s, %d dispatched, %d completed, %d requeued, %d throttled\n",
					w.URL, w.State, w.Dispatched, w.Completed, w.Requeued, w.Throttled)
			}
			st := cs.Service
			fmt.Fprintf(os.Stderr, "cluster: merged %d sims run (%d sampled), %d cache hits, %.0f µ-ops/s/worker over %s\n",
				st.SimsRun, st.SimsSampled, st.CacheHits, st.UopsPerSec, st.SimWallTime.Round(1e6))
			return
		}
		st := svc.Stats()
		fmt.Fprintf(os.Stderr, "simsvc: %d sims run (%d sampled), %d cache hits (%d from disk), %d coalesced, %.0f µ-ops/s/worker over %s\n",
			st.SimsRun, st.SimsSampled, st.CacheHits, st.DiskHits, st.Coalesced, st.UopsPerSec, st.SimWallTime.Round(1e6))
		if svc.TracesEnabled() {
			fmt.Fprintf(os.Stderr, "traces: %d recorded in %s, %d replays, %d fallbacks\n",
				st.TracesRecorded, st.TraceRecordTime.Round(1e6), st.TraceReplays, st.TraceFallbacks)
		}
	}
}
