// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                    # everything (Tables 1-3, Figures 2-13)
//	experiments figure7 figure12   # selected artefacts
//	experiments -measure 300000 -warmup 100000 figure6
//	experiments -workloads namd,mcf figure7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eole/internal/experiments"
)

func main() {
	var (
		warmup  = flag.Uint64("warmup", 0, "warm-up µ-ops (default: harness default)")
		measure = flag.Uint64("measure", 0, "measured µ-ops (default: harness default)")
		wls     = flag.String("workloads", "", "comma-separated benchmark subset")
		chart   = flag.Bool("chart", false, "render figures as ASCII bar charts")
	)
	flag.Parse()

	opts := experiments.DefaultOpts()
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *measure > 0 {
		opts.Measure = *measure
	}
	if *wls != "" {
		opts.Workloads = strings.Split(*wls, ",")
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		if *chart {
			if tb, err := experiments.TableByID(id, opts); err == nil {
				for _, col := range tb.Columns {
					out, err := tb.RenderChart(col, 1.0, 60)
					if err != nil {
						fmt.Fprintln(os.Stderr, "experiments:", err)
						os.Exit(1)
					}
					fmt.Println(out)
				}
				continue
			}
			// Fall through to text for text-only artefacts.
		}
		a, err := experiments.ByID(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(a.Text)
	}
}
