package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"eole"
	"eole/internal/cluster"
	"eole/internal/simsvc"
	"eole/internal/stats"
)

// samplingSpec builds and validates the optional sampling schedule
// from the -sample-* flags (nil when -sample-windows is 0). Plan
// additionally catches schedules that don't resolve against the
// measure budget (e.g. more windows than measured µ-ops) before any
// work happens.
func samplingSpec(windows int, skip, warm, measure, detail, budget uint64) (*eole.SamplingSpec, error) {
	if windows <= 0 {
		return nil, nil
	}
	spec := &eole.SamplingSpec{
		Windows:      windows,
		Skip:         skip,
		Warm:         warm,
		Measure:      measure,
		DetailWarmup: detail,
	}
	if _, err := spec.Plan(budget); err != nil {
		return nil, err
	}
	return spec, nil
}

// sweepArgs carries the flag values of one sweep-mode invocation.
type sweepArgs struct {
	grid      string // -grid: JSON file path or inline object ("" = single -config)
	config    string // -config: used when no grid is given
	workloads string // -workloads CSV ("" = single -workload)
	workload  string // -workload fallback
	cluster   string // -cluster CSV of eoled addresses ("" = in-process)
	warmup    uint64
	measure   uint64
	sampling  *eole.SamplingSpec
	asJSON    bool
	svg       string // -svg: render the IPC table to this path ("-" = stdout)
}

// runSweep executes a (configs × workloads) sweep — locally through an
// in-process simulation service, or sharded across eoled workers with
// -cluster. Both paths produce reports in the same cell order with the
// same labels, so -json output is byte-identical either way.
func runSweep(a sweepArgs) error {
	if a.cluster != "" && (a.warmup == 0 || a.measure == 0) {
		// A zero run length is resolved by each worker's own defaults,
		// which breaks local/distributed equivalence (and can differ
		// across a mixed-default fleet) — refuse rather than diverge
		// silently.
		return fmt.Errorf("-cluster requires explicit nonzero -warmup and -n (a zero would be replaced by each worker's own defaults)")
	}
	cfgs, err := sweepConfigs(a)
	if err != nil {
		return err
	}
	wls := []string{a.workload}
	if a.workloads != "" {
		wls = strings.Split(a.workloads, ",")
	}
	for i, wl := range wls {
		wls[i] = strings.TrimSpace(wl)
		if _, err := eole.WorkloadByName(wls[i]); err != nil {
			return err
		}
	}
	reqs := simsvc.ApplySampling(simsvc.Cross(cfgs, wls, a.warmup, a.measure), a.sampling)

	var reports []*eole.Report
	if a.cluster != "" {
		reports, err = clusterSweep(a.cluster, reqs)
	} else {
		reports, err = localSweep(reqs)
	}
	if err != nil {
		return err
	}

	if a.svg != "" {
		if err := writeSweepSVG(a.svg, cfgs, wls, reports, a.sampling != nil); err != nil {
			return err
		}
	}
	if a.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	if a.svg == "-" {
		return nil // SVG already owns stdout
	}
	for _, r := range reports {
		if r.Sampled {
			fmt.Printf("%-36s %-10s IPC %.4f ± %.4f\n", r.Config, r.Benchmark, r.IPC, r.IPCCI)
		} else {
			fmt.Printf("%-36s %-10s IPC %.4f\n", r.Config, r.Benchmark, r.IPC)
		}
	}
	return nil
}

// writeSweepSVG renders the sweep as an IPC bar chart (one row per
// workload, one series per config; CI whiskers when sampled) — the
// same table shape eoled serves on /v1/figures/ipc.
func writeSweepSVG(path string, cfgs []eole.Config, wls []string, reports []*eole.Report, sampled bool) error {
	cols := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		cols[i] = cfg.Label()
	}
	tb := stats.NewTable("IPC", "workload", cols...)
	if sampled {
		tb.Note = "sampled run: 95% CI whiskers"
	}
	// Cross is config-major: report index = ci*len(wls) + wi.
	for wi, wl := range wls {
		vals := make([]float64, len(cfgs))
		cis := make([]float64, len(cfgs))
		for ci := range cfgs {
			r := reports[ci*len(wls)+wi]
			vals[ci] = r.IPC
			cis[ci] = r.IPCCI
		}
		if sampled {
			tb.AddRowCI(wl, vals, cis)
		} else {
			tb.AddRow(wl, vals...)
		}
	}
	svg, err := tb.RenderSVG(0)
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(svg)
		return err
	}
	return os.WriteFile(path, svg, 0o644)
}

// sweepConfigs expands -grid (file or inline JSON, decoded strictly so
// a typo'd axis field errors instead of sweeping a different space),
// falling back to the single -config.
func sweepConfigs(a sweepArgs) ([]eole.Config, error) {
	if a.grid == "" {
		cfg, err := resolveConfig(a.config)
		if err != nil {
			return nil, err
		}
		return []eole.Config{cfg}, nil
	}
	raw := []byte(a.grid)
	if !strings.HasPrefix(strings.TrimSpace(a.grid), "{") {
		b, err := os.ReadFile(a.grid)
		if err != nil {
			return nil, err
		}
		raw = b
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var g eole.Grid
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("-grid: %w", err)
	}
	cfgs, err := g.Configs()
	if err != nil {
		return nil, fmt.Errorf("-grid: %w", err)
	}
	return cfgs, nil
}

// localSweep runs the cells through an in-process service, relabeling
// each report to its requested config exactly as eoled (and the
// cluster coordinator) relabel — the single-node half of the
// byte-identical guarantee. The service is trace-driven like eoled's
// default: each workload is interpreted once and replayed per config
// (replay is byte-identical to execute-driven, so output is
// unaffected).
func localSweep(reqs []simsvc.Request) ([]*eole.Report, error) {
	svc, err := simsvc.New(simsvc.Options{Traces: true})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	sweep, err := svc.SubmitSweep(context.Background(), reqs)
	if err != nil {
		return nil, err
	}
	reports, err := sweep.Wait(context.Background())
	if err != nil {
		return nil, err
	}
	for i := range reports {
		reports[i] = cluster.Relabel(reports[i], reqs[i].Config.Label())
	}
	return reports, nil
}

// clusterSweep shards the cells across remote eoled workers.
func clusterSweep(addrs string, reqs []simsvc.Request) ([]*eole.Report, error) {
	co, err := cluster.New(cluster.Options{Workers: strings.Split(addrs, ",")})
	if err != nil {
		return nil, err
	}
	defer co.Close()
	return co.Sweep(context.Background(), reqs)
}
