// Command eolesim runs one benchmark on one machine configuration and
// prints the report.
//
// Usage:
//
//	eolesim -config EOLE_4_64 -workload namd -warmup 50000 -n 200000
//	eolesim -config EOLE_4_64 -workload namd -json
//	eolesim -config EOLE_4_64 -workload long-dram -sample-windows 8 -sample-warm 40000
//	eolesim -config my_machine.json -workload namd           # custom config from JSON
//	eolesim -config EOLE_4_64 -dump-config > my_machine.json # export a config to edit
//	eolesim -workload namd -record -tracedir traces          # record µ-op trace
//	eolesim -config EOLE_4_64 -workload namd -replay -tracedir traces
//	eolesim -list
//	eolesim -disasm mcf
//	eolesim -config EOLE_4_64 -workload mcf -pipetrace 40
//	eolesim -grid grid.json -workloads gzip,art -json            # local sweep
//	eolesim -cluster host1:8080,host2:8080 -grid grid.json -workloads gzip,art -json
//
// Sweeps: -grid (a JSON file or inline object of the /v1/sweep grid
// form, {"base_name":...,"axes":[...]}) and/or -workloads (comma
// separated) switch eolesim into sweep mode: every (config, workload)
// cell is simulated — through an in-process service by default, or
// sharded across remote eoled workers with -cluster. Distributed
// results are byte-identical to the local run (-json emits the report
// array in cell order either way, so the two can be diffed directly).
// With -cluster, explicit nonzero -warmup and -n are required: a zero
// would be resolved by each worker's own defaults, breaking the
// local/distributed equivalence.
//
// Custom configurations: -config accepts either a named paper
// configuration or a path to a JSON file holding a Config object
// (the format -dump-config emits). Edit any field — issue width, IQ
// size, PRF banking, EOLE features — and the file is validated before
// the run; reports label an unnamed custom config as
// "custom-<fingerprint prefix>".
//
// Record/replay: -record interprets the workload once and writes its
// committed µ-op stream to <tracedir>/<workload>.trace; -replay runs
// the simulation from that file instead of re-interpreting, producing
// a byte-identical report. A missing, corrupt or version-mismatched
// trace file makes -replay fall back to execute-driven simulation
// with a warning on stderr.
//
// Sampled simulation: -sample-windows N (with -sample-skip,
// -sample-warm, -sample-measure, -sample-detail) runs SMARTS-style
// sampling instead of one contiguous region: -warmup µ-ops of
// functional warming, then N windows that skip, functionally warm,
// and measure in detail, reporting IPC with a 95% confidence interval
// ("IPC 1.234 ± 0.017"). -n remains the total detailed budget,
// divided evenly across windows unless -sample-measure fixes a
// per-window length. Intended for the long-* phased workloads, whose
// ~12M-µ-op streams are intractable to simulate in full.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"eole"
	"eole/internal/core"
	"eole/internal/prog"
	"eole/internal/sample"
	"eole/internal/trace"
	"eole/internal/workload"
)

func main() {
	var (
		cfgName  = flag.String("config", "EOLE_4_64", "machine configuration: a name or a JSON config file path")
		dumpCfg  = flag.Bool("dump-config", false, "print the resolved configuration as JSON and exit")
		wlName   = flag.String("workload", "namd", "benchmark name (short or full)")
		warmup   = flag.Uint64("warmup", 50_000, "warm-up µ-ops before measurement")
		n        = flag.Uint64("n", 200_000, "measured µ-ops")
		list     = flag.Bool("list", false, "list configurations and workloads")
		asJSON   = flag.Bool("json", false, "emit the report as JSON (machine readable)")
		disasm   = flag.String("disasm", "", "print the program of a workload and exit")
		pipeN    = flag.Uint64("pipetrace", 0, "render a pipeline trace of N µ-ops after warm-up and exit")
		record   = flag.Bool("record", false, "record the workload's µ-op stream to <tracedir>/<workload>.trace and exit (unless -replay)")
		replay   = flag.Bool("replay", false, "replay the recorded µ-op stream instead of re-interpreting the workload")
		tracedir = flag.String("tracedir", "traces", "directory for recorded µ-op traces")

		sampleWin     = flag.Int("sample-windows", 0, "run sampled simulation with this many measurement windows (0 = full run)")
		sampleSkip    = flag.Uint64("sample-skip", 0, "per-window fast-forward µ-ops with no state updates")
		sampleWarm    = flag.Uint64("sample-warm", 40_000, "per-window functional-warming µ-ops (predictors + caches, no cycles)")
		sampleMeasure = flag.Uint64("sample-measure", 0, "per-window measured µ-ops (0 = divide -n across windows)")
		sampleDetail  = flag.Uint64("sample-detail", 0, "detailed pre-measure µ-ops per window, discarded from stats (0 = default)")

		gridSpec   = flag.String("grid", "", "sweep mode: design-space grid as a JSON file path or inline object")
		wlsCSV     = flag.String("workloads", "", "sweep mode: comma-separated workloads (default: the single -workload)")
		clusterCSV = flag.String("cluster", "", "shard the sweep across these comma-separated eoled worker addresses")
		svgPath    = flag.String("svg", "", "sweep mode: additionally render the IPC table as SVG to this file (\"-\" = stdout)")
	)
	flag.Parse()

	if *dumpCfg {
		cfg, err := resolveConfig(*cfgName)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cfg); err != nil {
			fail(err)
		}
		return
	}

	if *pipeN > 0 {
		cfg, err := resolveConfig(*cfgName)
		if err != nil {
			fail(err)
		}
		w, err := workload.ByName(*wlName)
		if err != nil {
			fail(err)
		}
		c := core.New(cfg, prog.MachineSource{M: w.NewMachine()})
		c.Run(*warmup)
		from := c.Stats().Fetched
		pt := core.NewPipeTrace(from, from+*pipeN-1)
		c.SetTracer(pt)
		// Run well past the traced window so every traced µ-op drains
		// through commit.
		c.Run(*pipeN + 2048)
		pt.Render(os.Stdout)
		return
	}

	if *list {
		fmt.Println("Configurations:")
		for _, n := range eole.ConfigNames() {
			fmt.Printf("  %s\n", n)
		}
		fmt.Println("Workloads:")
		for _, w := range eole.Workloads() {
			fmt.Printf("  %-12s (%s)  paper IPC %.3f  %s\n", w.Short, w.Name, w.PaperIPC, w.Description)
		}
		fmt.Println("Long phased workloads (intended for -sample-windows):")
		for _, w := range eole.LongWorkloads() {
			fmt.Printf("  %-12s %s\n", w.Short, w.Description)
		}
		return
	}
	if *disasm != "" {
		w, err := eole.WorkloadByName(*disasm)
		if err != nil {
			fail(err)
		}
		fmt.Print(w.Program.Disasm())
		return
	}

	spec, err := samplingSpec(*sampleWin, *sampleSkip, *sampleWarm, *sampleMeasure, *sampleDetail, *n)
	if err != nil {
		fail(err)
	}

	if *svgPath != "" && *gridSpec == "" && *wlsCSV == "" && *clusterCSV == "" {
		// -svg renders a sweep table; promote a bare single run into a
		// one-cell sweep rather than silently ignoring the flag.
		*wlsCSV = *wlName
	}

	if *gridSpec != "" || *wlsCSV != "" || *clusterCSV != "" {
		// Single-run flags have no meaning across a sweep; say so
		// instead of silently ignoring them.
		if *record || *replay || *pipeN > 0 {
			fmt.Fprintln(os.Stderr, "eolesim: -record/-replay/-pipetrace have no effect in sweep mode (sweeps replay in-process traces automatically)")
		}
		if err := runSweep(sweepArgs{
			grid:      *gridSpec,
			config:    *cfgName,
			workloads: *wlsCSV,
			workload:  *wlName,
			cluster:   *clusterCSV,
			warmup:    *warmup,
			measure:   *n,
			sampling:  spec,
			asJSON:    *asJSON,
			svg:       *svgPath,
		}); err != nil {
			fail(err)
		}
		return
	}

	w, err := eole.WorkloadByName(*wlName)
	if err != nil {
		fail(err)
	}
	cfg, err := resolveConfig(*cfgName)
	if err != nil {
		fail(err)
	}
	// A sampled run consumes its whole window schedule from the
	// source, so traces must cover the full stream, not just
	// warmup+measure (saturating: StreamNeed caps at MaxUint64). A
	// custom machine that fetches further ahead than the sampler's
	// per-window flush budget discards more µ-ops at each window
	// boundary, so that shortfall scales with the window count.
	need := satAdd(*warmup, *n)
	if spec != nil {
		need = spec.StreamNeed(*warmup, *n)
		if slack := eole.TraceSlackFor(cfg); slack > sample.FlushAllowance {
			need = satAdd(need, (slack-sample.FlushAllowance)*uint64(spec.Windows))
		}
	}
	need = satAdd(need, eole.TraceSlackFor(cfg))

	if *record {
		if err := recordTrace(w, need, *tracedir); err != nil {
			fail(err)
		}
		if !*replay {
			return
		}
	}

	var opts []eole.SimOption
	if spec != nil {
		opts = append(opts, eole.WithSampling(*spec))
	}
	if *replay {
		if t := loadTrace(w, need, *tracedir); t != nil {
			opts = append(opts, eole.WithReplay(t))
		}
	}
	r, err := eole.Simulate(cfg, w, *warmup, *n, opts...)
	if err != nil {
		fail(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fail(err)
		}
		return
	}
	fmt.Println(r)
}

// resolveConfig turns the -config argument into a configuration: a
// path to an existing file is decoded as a JSON Config object (the
// format -dump-config emits; unknown fields are rejected so a typo'd
// field name cannot silently run a different machine), normalized and
// validated; anything else resolves as a named paper configuration.
func resolveConfig(arg string) (eole.Config, error) {
	if st, err := os.Stat(arg); err == nil && !st.IsDir() {
		b, err := os.ReadFile(arg)
		if err != nil {
			return eole.Config{}, err
		}
		dec := json.NewDecoder(bytes.NewReader(b))
		dec.DisallowUnknownFields()
		var cfg eole.Config
		if err := dec.Decode(&cfg); err != nil {
			return eole.Config{}, fmt.Errorf("%s: not a JSON config: %w", arg, err)
		}
		cfg = cfg.Normalized()
		if err := cfg.Validate(); err != nil {
			return eole.Config{}, fmt.Errorf("%s: %w", arg, err)
		}
		return cfg, nil
	}
	return eole.NamedConfig(arg)
}

// recordTrace interprets the workload once and writes the trace file.
func recordTrace(w eole.Workload, uops uint64, dir string) error {
	t := eole.RecordTrace(w, uops)
	path := trace.Path(dir, w.Short)
	if err := trace.WriteFile(path, t); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "eolesim: recorded %d µ-ops of %s to %s (%d bytes)\n",
		t.Count, w.Short, path, t.SizeBytes())
	return nil
}

// loadTrace reads the workload's trace for replay, returning nil (and
// warning) when the simulation must fall back to execute-driven: file
// missing, corrupt, written by another format version, recorded from
// an older program build, or too short for this run.
func loadTrace(w eole.Workload, need uint64, dir string) *eole.Trace {
	path := trace.Path(dir, w.Short)
	warn := func(format string, args ...any) *eole.Trace {
		fmt.Fprintf(os.Stderr, "eolesim: %s: %s; falling back to execute-driven simulation\n",
			path, fmt.Sprintf(format, args...))
		return nil
	}
	t, err := trace.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return warn("%v (run with -record first)", err)
		}
		return warn("%v", err)
	}
	if !t.CanServe(need) {
		return warn("trace holds %d µ-ops, run needs %d", t.Count, need)
	}
	if _, err := t.SourceFor(w); err != nil {
		return warn("%v", err)
	}
	return t
}

// satAdd adds saturating at MaxUint64 (trace-need arithmetic must
// never wrap to a tiny recording).
func satAdd(a, b uint64) uint64 {
	if a > ^uint64(0)-b {
		return ^uint64(0)
	}
	return a + b
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "eolesim:", err)
	os.Exit(1)
}
