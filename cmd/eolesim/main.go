// Command eolesim runs one benchmark on one machine configuration and
// prints the report.
//
// Usage:
//
//	eolesim -config EOLE_4_64 -workload namd -warmup 50000 -n 200000
//	eolesim -config EOLE_4_64 -workload namd -json
//	eolesim -list
//	eolesim -disasm mcf
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"eole"
	"eole/internal/config"
	"eole/internal/core"
	"eole/internal/prog"
	"eole/internal/workload"
)

func main() {
	var (
		cfgName = flag.String("config", "EOLE_4_64", "machine configuration name")
		wlName  = flag.String("workload", "namd", "benchmark name (short or full)")
		warmup  = flag.Uint64("warmup", 50_000, "warm-up µ-ops before measurement")
		n       = flag.Uint64("n", 200_000, "measured µ-ops")
		list    = flag.Bool("list", false, "list configurations and workloads")
		asJSON  = flag.Bool("json", false, "emit the report as JSON (machine readable)")
		disasm  = flag.String("disasm", "", "print the program of a workload and exit")
		traceN  = flag.Uint64("trace", 0, "render a pipeline trace of N µ-ops after warm-up and exit")
	)
	flag.Parse()

	if *traceN > 0 {
		cfg, err := config.Named(*cfgName)
		if err != nil {
			fail(err)
		}
		w, err := workload.ByName(*wlName)
		if err != nil {
			fail(err)
		}
		c := core.New(cfg, prog.MachineSource{M: w.NewMachine()})
		c.Run(*warmup)
		from := c.Stats().Fetched
		pt := core.NewPipeTrace(from, from+*traceN-1)
		c.SetTracer(pt)
		// Run well past the traced window so every traced µ-op drains
		// through commit.
		c.Run(*traceN + 2048)
		pt.Render(os.Stdout)
		return
	}

	if *list {
		fmt.Println("Configurations:")
		for _, n := range eole.ConfigNames() {
			fmt.Printf("  %s\n", n)
		}
		fmt.Println("Workloads:")
		for _, w := range eole.Workloads() {
			fmt.Printf("  %-12s (%s)  paper IPC %.3f  %s\n", w.Short, w.Name, w.PaperIPC, w.Description)
		}
		return
	}
	if *disasm != "" {
		w, err := eole.WorkloadByName(*disasm)
		if err != nil {
			fail(err)
		}
		fmt.Print(w.Program.Disasm())
		return
	}

	cfg, err := eole.NamedConfig(*cfgName)
	if err != nil {
		fail(err)
	}
	w, err := eole.WorkloadByName(*wlName)
	if err != nil {
		fail(err)
	}
	r, err := eole.Simulate(cfg, w, *warmup, *n)
	if err != nil {
		fail(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fail(err)
		}
		return
	}
	fmt.Println(r)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "eolesim:", err)
	os.Exit(1)
}
