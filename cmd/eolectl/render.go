package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"eole"
	"eole/internal/jobs"
)

// printRawJSON re-indents the server's own body for -o json output:
// lossless (every field the server sent) and stable (the server
// marshals with a fixed field order).
func printRawJSON(w io.Writer, raw []byte) error {
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err := w.Write(buf.Bytes())
	return err
}

func printJSON(w io.Writer, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// newTable returns a tabwriter configured the same way for every
// command, so all eolectl tables line up identically.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// fmtUnixMS renders a server timestamp deterministically (UTC,
// RFC 3339): profile-independent output that goldens can pin.
func fmtUnixMS(ms int64) string {
	if ms == 0 {
		return "-"
	}
	return time.UnixMilli(ms).UTC().Format(time.RFC3339)
}

func renderProfiles(w io.Writer, output string, cfg ctlConfig) error {
	if output == "json" {
		return printJSON(w, cfg)
	}
	if len(cfg.Profiles) == 0 {
		fmt.Fprintln(w, "no profiles configured (run `eolectl configure -server URL`)")
		return nil
	}
	names := make([]string, 0, len(cfg.Profiles))
	for n := range cfg.Profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	tw := newTable(w)
	fmt.Fprintln(tw, "CURRENT\tPROFILE\tSERVER")
	for _, n := range names {
		cur := ""
		if n == cfg.Current {
			cur = "*"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", cur, n, cfg.Profiles[n].Server)
	}
	return tw.Flush()
}

func renderStats(w io.Writer, st serverStats) error {
	tw := newTable(w)
	fmt.Fprintf(tw, "version\t%s\n", st.Version)
	fmt.Fprintf(tw, "uptime\t%s\n", time.Duration(st.UptimeNS).Round(time.Second))
	fmt.Fprintf(tw, "queue length\t%d\n", st.QueueLen)
	fmt.Fprintf(tw, "cells submitted\t%d\n", st.JobsSubmitted)
	fmt.Fprintf(tw, "cells completed\t%d\n", st.JobsCompleted)
	fmt.Fprintf(tw, "sims run\t%d\n", st.SimsRun)
	fmt.Fprintf(tw, "sims abandoned\t%d\n", st.SimsAbandoned)
	fmt.Fprintf(tw, "cache hits\t%d\n", st.CacheHits)
	fmt.Fprintf(tw, "coalesced\t%d\n", st.Coalesced)
	fmt.Fprintf(tw, "jobs active\t%d\n", st.Jobs.Active)
	fmt.Fprintf(tw, "jobs retained\t%d\n", st.Jobs.Retained)
	fmt.Fprintf(tw, "jobs created\t%d\n", st.Jobs.Created)
	fmt.Fprintf(tw, "jobs canceled\t%d\n", st.Jobs.Canceled)
	fmt.Fprintf(tw, "job events\t%d\n", st.Jobs.Events)
	fmt.Fprintf(tw, "event streams\t%d\n", st.Jobs.Streams)
	return tw.Flush()
}

func renderJobList(w io.Writer, list []jobs.Status) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "ID\tSTATE\tCELLS\tFAILED\tCREATED")
	for _, st := range list {
		fmt.Fprintf(tw, "%s\t%s\t%d/%d\t%d\t%s\n",
			st.ID, st.State, st.CellsCompleted, st.CellsTotal, st.CellsFailed, fmtUnixMS(st.CreatedAtUnixMS))
	}
	return tw.Flush()
}

func renderJobStatus(w io.Writer, st jobs.Status) error {
	tw := newTable(w)
	fmt.Fprintf(tw, "id\t%s\n", st.ID)
	fmt.Fprintf(tw, "state\t%s\n", st.State)
	fmt.Fprintf(tw, "cells\t%d/%d\n", st.CellsCompleted, st.CellsTotal)
	fmt.Fprintf(tw, "failed\t%d\n", st.CellsFailed)
	fmt.Fprintf(tw, "created\t%s\n", fmtUnixMS(st.CreatedAtUnixMS))
	fmt.Fprintf(tw, "finished\t%s\n", fmtUnixMS(st.FinishedAtUnixMS))
	return tw.Flush()
}

// cellOutcome is one finished sweep cell, keyed for the final table.
type cellOutcome struct {
	Config   string       `json:"config"`
	Workload string       `json:"workload"`
	Cached   bool         `json:"cached,omitempty"`
	Report   *eole.Report `json:"report,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// renderSweepTable prints the final per-cell report table in cell
// (index) order — the same deterministic order /v1/sweep returns, so
// distributed and local runs print identically.
func renderSweepTable(w io.Writer, cells []cellOutcome) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "CONFIG\tWORKLOAD\tIPC\tCYCLES\tUOPS\tCACHED\tERROR")
	for _, c := range cells {
		ipc, cycles, uops := "-", "-", "-"
		if r := c.Report; r != nil {
			if r.Sampled {
				ipc = fmt.Sprintf("%.3f±%.3f", r.IPC, r.IPCCI)
			} else {
				ipc = fmt.Sprintf("%.3f", r.IPC)
			}
			cycles = fmt.Sprintf("%d", r.Cycles)
			uops = fmt.Sprintf("%d", r.Committed)
		}
		cached := ""
		if c.Cached {
			cached = "yes"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			c.Config, c.Workload, ipc, cycles, uops, cached, c.Error)
	}
	return tw.Flush()
}
