package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"eole/internal/jobs"
	"eole/internal/obs"
)

// client is a thin wrapper over the eoled HTTP API. It shares the
// server's own wire types (the jobs package) so the CLI cannot drift
// from what eoled actually serves.
type client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
}

func newClient(server string, timeout time.Duration) *client {
	return &client{base: server, hc: &http.Client{}, timeout: timeout}
}

// errorBody is eoled's uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// apiError decorates a non-2xx response with the server's message.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var eb errorBody
	if json.Unmarshal(b, &eb) == nil && eb.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", eb.Error, resp.StatusCode)
	}
	return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
}

// getRaw fetches path and returns the raw body, so -o json can emit
// exactly what the server said (no lossy re-marshal through client
// structs).
func (c *client) getRaw(ctx context.Context, path string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 1<<26))
}

func (c *client) getJSON(ctx context.Context, path string, out any) ([]byte, error) {
	b, err := c.getRaw(ctx, path)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(b, out); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	return b, nil
}

// jobCreated mirrors eoled's POST /v1/jobs response.
type jobCreated struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	CellsTotal int    `json:"cells_total"`
	StatusURL  string `json:"status_url"`
	EventsURL  string `json:"events_url"`
}

func (c *client) createJob(ctx context.Context, body any) (jobCreated, error) {
	var created jobCreated
	payload, err := json.Marshal(body)
	if err != nil {
		return created, err
	}
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return created, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return created, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return created, apiError(resp)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&created); err != nil {
		return created, fmt.Errorf("decode job creation: %w", err)
	}
	return created, nil
}

func (c *client) jobStatus(ctx context.Context, id string) (jobs.Status, []byte, error) {
	var st jobs.Status
	b, err := c.getJSON(ctx, "/v1/jobs/"+id, &st)
	return st, b, err
}

type jobList struct {
	Jobs []jobs.Status `json:"jobs"`
}

func (c *client) listJobs(ctx context.Context) ([]jobs.Status, []byte, error) {
	var list jobList
	b, err := c.getJSON(ctx, "/v1/jobs", &list)
	return list.Jobs, b, err
}

func (c *client) cancelJob(ctx context.Context, id string) (jobs.Status, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return jobs.Status{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return jobs.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobs.Status{}, apiError(resp)
	}
	var st jobs.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return jobs.Status{}, fmt.Errorf("decode cancel response: %w", err)
	}
	return st, nil
}

// followReconnects bounds how many times a dropped event stream is
// re-attached (resuming from the last seen seq) before the CLI gives
// up and reports the connection error.
const followReconnects = 3

// followJob streams the job's NDJSON events, invoking fn for every
// non-heartbeat frame, until the terminal "done" event. A dropped
// connection resumes from the last seen seq, so every event is
// delivered exactly once across reconnects. The stream request runs
// under ctx alone — a sweep legitimately outlives any per-request
// timeout; the server's heartbeats keep the connection identifiable
// as live.
func (c *client) followJob(ctx context.Context, id string, fn func(jobs.Event) error) error {
	seen := 0
	var lastErr error
	for attempt := 0; attempt <= followReconnects; attempt++ {
		final, err := c.streamEvents(ctx, id, &seen, fn)
		if final || ctx.Err() != nil {
			return err
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("event stream for job %s ended %d times without a terminal event", id, followReconnects+1)
	}
	return lastErr
}

// streamEvents runs one stream attempt from *seen, advancing the
// cursor as frames arrive. final reports whether the terminal event
// was seen (or fn aborted) — i.e. whether retrying is pointless.
func (c *client) streamEvents(ctx context.Context, id string, seen *int, fn func(jobs.Event) error) (final bool, err error) {
	url := fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", c.base, id, *seen)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return true, err
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return true, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<22)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev jobs.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return false, fmt.Errorf("bad event frame: %w", err)
		}
		if ev.Type == jobs.EventHeartbeat {
			continue
		}
		if ev.Seq <= *seen {
			continue // replay overlap after a reconnect
		}
		*seen = ev.Seq
		if err := fn(ev); err != nil {
			return true, err
		}
		if ev.Type == jobs.EventDone {
			return true, nil
		}
	}
	return false, sc.Err()
}

// serverStats is the slice of eoled's /v1/stats the status table
// shows; -o json bypasses it and prints the raw body.
type serverStats struct {
	Version       string     `json:"version"`
	UptimeNS      int64      `json:"uptime_ns"`
	QueueLen      int        `json:"queue_len"`
	JobsSubmitted uint64     `json:"jobs_submitted"`
	JobsCompleted uint64     `json:"jobs_completed"`
	SimsRun       uint64     `json:"sims_run"`
	SimsAbandoned uint64     `json:"sims_abandoned"`
	CacheHits     uint64     `json:"cache_hits"`
	Coalesced     uint64     `json:"coalesced"`
	Jobs          jobs.Stats `json:"jobs"`
}

func (c *client) stats(ctx context.Context) (serverStats, []byte, error) {
	var st serverStats
	b, err := c.getJSON(ctx, "/v1/stats", &st)
	return st, b, err
}

// debugTraceList mirrors eoled's GET /v1/debug/traces listing.
type debugTraceList struct {
	Enabled bool               `json:"enabled"`
	Traces  []obs.TraceSummary `json:"traces"`
}

func (c *client) debugTraces(ctx context.Context) (debugTraceList, []byte, error) {
	var list debugTraceList
	b, err := c.getJSON(ctx, "/v1/debug/traces", &list)
	return list, b, err
}

// debugTrace fetches one assembled trace by trace or request ID.
func (c *client) debugTrace(ctx context.Context, id string) (obs.Trace, []byte, error) {
	var tr obs.Trace
	b, err := c.getJSON(ctx, "/v1/debug/traces/"+id, &tr)
	return tr, b, err
}
