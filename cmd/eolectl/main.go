// Command eolectl is the operator CLI for an eoled server: submit
// sweeps as async jobs and watch per-cell progress live, inspect and
// cancel running jobs, and read server stats — against named server
// profiles kept in a small config file, so day-to-day use is
// "eolectl sweep ..." with no address flags.
//
// Usage:
//
//	eolectl configure -server http://sim-host:8080            # save the default profile
//	eolectl configure -server http://lab:8080 -profile lab    # a second profile
//	eolectl configure -use lab                                # switch profiles
//	eolectl configure -list                                   # show profiles
//	eolectl status                                            # server + job-registry stats
//	eolectl sweep -configs EOLE_4_64,Baseline_6_64 -workloads gzip,hmmer -warmup 2000 -measure 5000
//	eolectl sweep -grid grid.json -workloads gzip -detach     # submit, print job id, exit
//	eolectl jobs list
//	eolectl jobs cancel 7f3a9c12d4e6
//	eolectl trace -last                                       # newest request's span waterfall
//	eolectl trace 4bf92f3577b34da6a3ce929d0e0e4736            # one trace by trace/request ID
//
// Every command takes the global flags before the subcommand name:
//
//	-server URL   override the profile's server for this invocation
//	-profile P    use profile P instead of the current one
//	-o FORMAT     "table" (default) or "json"
//	-timeout D    per-request timeout (default 30s; sweeps stream
//	              without a deadline and are bounded by the server)
//
// The profile file lives at $EOLECTL_CONFIG if set, else
// ~/.config/eolectl/config.json.
//
// sweep submits via POST /v1/jobs and follows the job's NDJSON event
// stream: one progress line per finished cell on stderr as it lands,
// then the final report table (or JSON array) on stdout — the same
// cells in the same deterministic order the synchronous /v1/sweep
// endpoint would return. Ctrl-C cancels the job on the server before
// exiting, so abandoned sweeps do not keep burning worker time.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// globalOpts is everything the subcommands share: where the server
// is, how to render, how long to wait.
type globalOpts struct {
	configPath string
	profile    string
	server     string
	output     string
	timeout    time.Duration
}

// resolveServer picks the server URL: explicit -server flag, else the
// selected (or current) profile from the config file.
func (g *globalOpts) resolveServer() (string, error) {
	if g.server != "" {
		return g.server, nil
	}
	cfg, err := loadConfig(g.configPath)
	if err != nil {
		return "", err
	}
	name := g.profile
	if name == "" {
		name = cfg.Current
	}
	if name == "" {
		return "", fmt.Errorf("no server configured: run `eolectl configure -server URL` or pass -server")
	}
	p, ok := cfg.Profiles[name]
	if !ok {
		return "", fmt.Errorf("unknown profile %q (have: %s)", name, profileNames(cfg))
	}
	return p.Server, nil
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	g := globalOpts{
		configPath: defaultConfigPath(),
		output:     "table",
		timeout:    30 * time.Second,
	}
	fs := flag.NewFlagSet("eolectl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&g.configPath, "config", g.configPath, "profile config file")
	fs.StringVar(&g.profile, "profile", "", "server profile to use (default: the current one)")
	fs.StringVar(&g.server, "server", "", "server URL, overriding the profile")
	fs.StringVar(&g.output, "o", g.output, `output format: "table" or "json"`)
	fs.DurationVar(&g.timeout, "timeout", g.timeout, "per-request timeout")
	fs.Usage = func() { usage(stderr, fs) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if g.output != "table" && g.output != "json" {
		fmt.Fprintf(stderr, "eolectl: bad -o %q: want \"table\" or \"json\"\n", g.output)
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		usage(stderr, fs)
		return 2
	}
	cmd, rest := rest[0], rest[1:]

	var err error
	switch cmd {
	case "configure":
		err = cmdConfigure(&g, rest, stdout, stderr)
	case "status":
		err = cmdStatus(ctx, &g, rest, stdout, stderr)
	case "sweep":
		err = cmdSweep(ctx, &g, rest, stdout, stderr)
	case "jobs":
		err = cmdJobs(ctx, &g, rest, stdout, stderr)
	case "trace":
		err = cmdTrace(ctx, &g, rest, stdout, stderr)
	case "help", "-h", "--help":
		usage(stdout, fs)
		return 0
	default:
		fmt.Fprintf(stderr, "eolectl: unknown command %q\n", cmd)
		usage(stderr, fs)
		return 2
	}
	if err != nil {
		var ue usageError
		if errorsAs(err, &ue) {
			fmt.Fprintf(stderr, "eolectl: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "eolectl: %v\n", err)
		return 1
	}
	return 0
}

// usageError marks errors caused by bad invocation (exit 2) rather
// than a failed operation (exit 1).
type usageError struct{ msg string }

func (e usageError) Error() string         { return e.msg }
func usagef(format string, a ...any) error { return usageError{fmt.Sprintf(format, a...)} }
func errorsAs(err error, ue *usageError) bool {
	u, ok := err.(usageError)
	if ok {
		*ue = u
	}
	return ok
}

func usage(w io.Writer, fs *flag.FlagSet) {
	fmt.Fprint(w, `usage: eolectl [global flags] <command> [args]

commands:
  configure   save or switch server profiles
  status      show server and job-registry stats
  sweep       submit a sweep job and stream per-cell progress
  jobs list   list jobs on the server
  jobs cancel cancel a job by id
  trace       show one request's span tree (by trace/request ID, or -last)

global flags:
`)
	fs.PrintDefaults()
}
