package main

import (
	"context"
	"flag"
	"fmt"
	"io"
)

// cmdStatus shows the server's /v1/stats: identity, queue, simulation
// counters and the job-registry accounting.
func cmdStatus(ctx context.Context, g *globalOpts, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return usagef("status: %v", err)
	}
	if fs.NArg() > 0 {
		return usagef("status: unexpected argument %q", fs.Arg(0))
	}
	server, err := g.resolveServer()
	if err != nil {
		return err
	}
	st, raw, err := newClient(server, g.timeout).stats(ctx)
	if err != nil {
		return err
	}
	if g.output == "json" {
		return printRawJSON(stdout, raw)
	}
	return renderStats(stdout, st)
}

// cmdJobs dispatches the job-resource verbs:
//
//	eolectl jobs list
//	eolectl jobs get <id>
//	eolectl jobs cancel <id>
func cmdJobs(ctx context.Context, g *globalOpts, args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return usagef("jobs: need a verb: list, get, or cancel")
	}
	verb, rest := args[0], args[1:]
	server, err := g.resolveServer()
	if err != nil {
		return err
	}
	c := newClient(server, g.timeout)
	switch verb {
	case "list":
		if len(rest) > 0 {
			return usagef("jobs list: unexpected argument %q", rest[0])
		}
		list, raw, err := c.listJobs(ctx)
		if err != nil {
			return err
		}
		if g.output == "json" {
			return printRawJSON(stdout, raw)
		}
		return renderJobList(stdout, list)
	case "get":
		if len(rest) != 1 {
			return usagef("jobs get: need exactly one job id")
		}
		st, raw, err := c.jobStatus(ctx, rest[0])
		if err != nil {
			return err
		}
		if g.output == "json" {
			return printRawJSON(stdout, raw)
		}
		return renderJobStatus(stdout, st)
	case "cancel":
		if len(rest) != 1 {
			return usagef("jobs cancel: need exactly one job id")
		}
		st, err := c.cancelJob(ctx, rest[0])
		if err != nil {
			return err
		}
		if g.output == "json" {
			return printJSON(stdout, st)
		}
		fmt.Fprintf(stdout, "job %s: %s (%d/%d cells)\n", st.ID, st.State, st.CellsCompleted, st.CellsTotal)
		return nil
	default:
		return usagef("jobs: unknown verb %q (want list, get, or cancel)", verb)
	}
}
