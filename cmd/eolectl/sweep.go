package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"eole/internal/jobs"
)

// cmdSweep submits a sweep as an async job and follows its event
// stream: one progress line per cell on stderr as each finishes, the
// final per-cell report table (or, with -o json, the cell array) on
// stdout in deterministic cell order. -detach prints the job id and
// returns immediately; `eolectl jobs cancel` takes it from there.
func cmdSweep(ctx context.Context, g *globalOpts, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	configs := fs.String("configs", "", "comma-separated configuration names")
	gridPath := fs.String("grid", "", `JSON grid file ({"base_name":...,"axes":[...]})`)
	workloads := fs.String("workloads", "", "comma-separated workload names")
	warmup := fs.Uint64("warmup", 0, "warm-up µ-ops per cell (0: server default)")
	measure := fs.Uint64("measure", 0, "measured µ-ops per cell (0: server default)")
	detach := fs.Bool("detach", false, "submit the job and print its id without following")
	if err := fs.Parse(args); err != nil {
		return usagef("sweep: %v", err)
	}
	if fs.NArg() > 0 {
		return usagef("sweep: unexpected argument %q", fs.Arg(0))
	}
	if *configs == "" && *gridPath == "" {
		return usagef("sweep: need -configs and/or -grid")
	}
	if *workloads == "" {
		return usagef("sweep: need -workloads")
	}

	// The body is the /v1/jobs sweep form; the grid file is passed
	// through raw so the server's strict decoder is the one validator.
	body := map[string]any{
		"workloads": splitComma(*workloads),
	}
	if *configs != "" {
		body["configs"] = splitComma(*configs)
	}
	if *gridPath != "" {
		b, err := os.ReadFile(*gridPath)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		body["grid"] = json.RawMessage(b)
	}
	if *warmup > 0 {
		body["warmup"] = *warmup
	}
	if *measure > 0 {
		body["measure"] = *measure
	}

	server, err := g.resolveServer()
	if err != nil {
		return err
	}
	c := newClient(server, g.timeout)
	created, err := c.createJob(ctx, body)
	if err != nil {
		return err
	}
	if *detach {
		fmt.Fprintln(stdout, created.ID)
		return nil
	}
	fmt.Fprintf(stderr, "job %s: %d cells\n", created.ID, created.CellsTotal)

	cells := make([]cellOutcome, created.CellsTotal)
	seenCells := 0
	var terminal jobs.Event
	err = c.followJob(ctx, created.ID, func(ev jobs.Event) error {
		switch ev.Type {
		case jobs.EventCell:
			cell := ev.Cell
			if cell == nil || cell.Index < 0 || cell.Index >= len(cells) {
				return fmt.Errorf("cell event out of range: %+v", ev)
			}
			cells[cell.Index] = cellOutcome{
				Config:   cell.Config,
				Workload: cell.Workload,
				Cached:   cell.Cached,
				Report:   cell.Report,
				Error:    cell.Error,
			}
			seenCells++
			line := fmt.Sprintf("[%d/%d] %s/%s", seenCells, len(cells), cell.Config, cell.Workload)
			switch {
			case cell.Error != "":
				line += " error: " + cell.Error
			case cell.Report != nil:
				line += fmt.Sprintf(" ipc=%.3f", cell.Report.IPC)
			}
			if cell.Cached {
				line += " (cached)"
			}
			fmt.Fprintln(stderr, line)
		case jobs.EventDone:
			terminal = ev
		}
		return nil
	})
	if ctx.Err() != nil {
		// Interrupted: cancel server-side so the workers stop burning
		// time on a sweep nobody is waiting for.
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, cerr := c.cancelJob(cctx, created.ID); cerr == nil {
			fmt.Fprintf(stderr, "interrupted: canceled job %s\n", created.ID)
		}
		return fmt.Errorf("interrupted (job %s canceled)", created.ID)
	}
	if err != nil {
		return err
	}

	if g.output == "json" {
		if err := printJSON(stdout, cells); err != nil {
			return err
		}
	} else if err := renderSweepTable(stdout, cells); err != nil {
		return err
	}
	switch terminal.State {
	case jobs.StateDone:
		return nil
	case jobs.StateFailed:
		return fmt.Errorf("job %s failed: %d of %d cells errored", created.ID, terminal.Failed, terminal.Total)
	case jobs.StateCanceled:
		return fmt.Errorf("job %s was canceled after %d of %d cells", created.ID, terminal.Completed, terminal.Total)
	default:
		return fmt.Errorf("job %s ended in unexpected state %q", created.ID, terminal.State)
	}
}

func splitComma(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
