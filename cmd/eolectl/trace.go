package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"eole/internal/obs"
)

// cmdTrace fetches one assembled request trace from the server's
// /v1/debug/traces ring and renders it as an indented span tree:
//
//	eolectl trace 4bf92f3577b34da6a3ce929d0e0e4736   # by trace ID
//	eolectl trace req-7f3a9c12                       # by request ID
//	eolectl trace -last                              # newest retained trace
//
// The ID is whatever a response carried in X-Eole-Trace-Id or
// X-Eole-Request-Id. -o json prints the server's raw trace body; the
// SVG waterfall is served by the server itself (?format=svg).
func cmdTrace(ctx context.Context, g *globalOpts, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	last := fs.Bool("last", false, "show the newest retained trace instead of naming one")
	if err := fs.Parse(args); err != nil {
		return usagef("trace: %v", err)
	}
	if *last && fs.NArg() > 0 {
		return usagef("trace: -last takes no ID argument")
	}
	if !*last && fs.NArg() != 1 {
		return usagef("trace: need exactly one trace or request ID (or -last)")
	}
	server, err := g.resolveServer()
	if err != nil {
		return err
	}
	c := newClient(server, g.timeout)
	id := fs.Arg(0)
	if *last {
		list, _, err := c.debugTraces(ctx)
		if err != nil {
			return err
		}
		if !list.Enabled {
			return fmt.Errorf("tracing is disabled on %s (restart eoled with -trace-ring > 0)", server)
		}
		if len(list.Traces) == 0 {
			return fmt.Errorf("no traces retained on %s yet", server)
		}
		id = list.Traces[0].TraceID
	}
	tr, raw, err := c.debugTrace(ctx, id)
	if err != nil {
		return err
	}
	if g.output == "json" {
		return printRawJSON(stdout, raw)
	}
	return renderTrace(stdout, tr)
}

// renderTrace prints the trace as a depth-indented tree in the same
// order the server's SVG timeline draws it: start offsets rebased onto
// the trace's earliest span.
func renderTrace(w io.Writer, tr obs.Trace) error {
	nodes := tr.Ordered()
	var t0, tEnd int64
	for i, n := range nodes {
		if i == 0 || n.Span.StartUnixNS < t0 {
			t0 = n.Span.StartUnixNS
		}
		if n.Span.EndUnixNS > tEnd {
			tEnd = n.Span.EndUnixNS
		}
	}
	fmt.Fprintf(w, "trace %s", tr.TraceID)
	if tr.RequestID != "" {
		fmt.Fprintf(w, "  request %s", tr.RequestID)
	}
	fmt.Fprintf(w, "  spans %d  duration %s\n", len(tr.Spans), fmtSpanDur(tEnd-t0))
	if tr.Dropped > 0 {
		fmt.Fprintf(w, "(%d spans dropped at the per-trace bound)\n", tr.Dropped)
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "SPAN\tSERVICE\tSTART\tDURATION\tNOTE")
	for _, n := range nodes {
		indent := ""
		for i := 0; i < n.Depth; i++ {
			indent += "  "
		}
		fmt.Fprintf(tw, "%s%s\t%s\t+%s\t%s\t%s\n",
			indent, n.Span.Name, n.Span.Service,
			fmtSpanDur(n.Span.StartUnixNS-t0),
			fmtSpanDur(n.Span.EndUnixNS-n.Span.StartUnixNS), n.Span.Detail())
	}
	return tw.Flush()
}

// fmtSpanDur renders a span duration compactly and deterministically:
// seconds past 1s, milliseconds past 1ms, microseconds past 1µs.
func fmtSpanDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
