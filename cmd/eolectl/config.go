package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ctlConfig is the profile file: named server profiles plus which one
// is current. Kept deliberately tiny — a profile is just a server URL
// today, but it is a struct so later fields (auth tokens, default
// output) extend the file instead of replacing it.
type ctlConfig struct {
	Current  string             `json:"current,omitempty"`
	Profiles map[string]profile `json:"profiles,omitempty"`
}

type profile struct {
	Server string `json:"server"`
}

// defaultConfigPath honors $EOLECTL_CONFIG (which tests and scripted
// use set), else the XDG-ish ~/.config/eolectl/config.json.
func defaultConfigPath() string {
	if p := os.Getenv("EOLECTL_CONFIG"); p != "" {
		return p
	}
	home, err := os.UserHomeDir()
	if err != nil {
		return "eolectl.json"
	}
	return filepath.Join(home, ".config", "eolectl", "config.json")
}

// loadConfig reads the profile file; a missing file is an empty
// config, not an error, so first-run UX is "configure" rather than
// "create this file by hand".
func loadConfig(path string) (ctlConfig, error) {
	var cfg ctlConfig
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return cfg, nil
	}
	if err != nil {
		return cfg, fmt.Errorf("read config: %w", err)
	}
	if err := json.Unmarshal(b, &cfg); err != nil {
		return cfg, fmt.Errorf("parse config %s: %w", path, err)
	}
	return cfg, nil
}

func saveConfig(path string, cfg ctlConfig) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("save config: %w", err)
	}
	b, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	// Write-then-rename so a crash mid-write cannot truncate the
	// existing profile file.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o600); err != nil {
		return fmt.Errorf("save config: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("save config: %w", err)
	}
	return nil
}

func profileNames(cfg ctlConfig) string {
	if len(cfg.Profiles) == 0 {
		return "none"
	}
	names := make([]string, 0, len(cfg.Profiles))
	for n := range cfg.Profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// cmdConfigure saves, switches, or lists server profiles.
//
//	eolectl configure -server URL [-profile NAME]   save + make current
//	eolectl configure -use NAME                     switch current
//	eolectl configure -list                         print the table
func cmdConfigure(g *globalOpts, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("configure", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "", "server URL to save")
	name := fs.String("profile", "default", "profile name to save under")
	use := fs.String("use", "", "switch the current profile")
	list := fs.Bool("list", false, "list profiles")
	if err := fs.Parse(args); err != nil {
		return usagef("configure: %v", err)
	}
	if fs.NArg() > 0 {
		return usagef("configure: unexpected argument %q", fs.Arg(0))
	}
	cfg, err := loadConfig(g.configPath)
	if err != nil {
		return err
	}
	switch {
	case *list:
		return renderProfiles(stdout, g.output, cfg)
	case *use != "":
		if _, ok := cfg.Profiles[*use]; !ok {
			return fmt.Errorf("unknown profile %q (have: %s)", *use, profileNames(cfg))
		}
		cfg.Current = *use
		if err := saveConfig(g.configPath, cfg); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "current profile: %s (%s)\n", *use, cfg.Profiles[*use].Server)
		return nil
	case *server != "":
		if !strings.HasPrefix(*server, "http://") && !strings.HasPrefix(*server, "https://") {
			return usagef("configure: -server %q: want an http:// or https:// URL", *server)
		}
		if cfg.Profiles == nil {
			cfg.Profiles = map[string]profile{}
		}
		cfg.Profiles[*name] = profile{Server: strings.TrimRight(*server, "/")}
		cfg.Current = *name
		if err := saveConfig(g.configPath, cfg); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "saved profile %s -> %s (now current)\n", *name, cfg.Profiles[*name].Server)
		return nil
	default:
		return usagef("configure: need -server, -use, or -list")
	}
}
