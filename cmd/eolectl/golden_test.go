package main

// The eolectl surface is pinned by golden files: every table and JSON
// rendering is byte-compared against testdata/. To regenerate after
// an intentional output change:
//
//	EOLE_UPDATE_GOLDEN=1 go test ./cmd/eolectl
//
// and review the diff like any other golden update. The fixture
// server speaks the same wire shapes eoled serves (fixed timestamps,
// so output is deterministic); the CI jobs-smoke job exercises the
// real binary against a real eoled.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("EOLE_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with EOLE_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// runCtl invokes the CLI exactly as main would, capturing both
// streams and the exit code.
func runCtl(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(context.Background(), args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// fixtureServer is a scripted eoled stand-in with fixed timestamps
// and reports, so CLI output is byte-stable across runs.
func fixtureServer(t *testing.T) *httptest.Server {
	t.Helper()
	const statsBody = `{
		"jobs_submitted": 24, "jobs_completed": 20, "jobs_failed": 1, "jobs_canceled": 3,
		"sims_run": 12, "sims_abandoned": 2, "cache_hits": 6, "coalesced": 2,
		"version": "0.7.0", "uptime_ns": 754000000000, "queue_len": 3,
		"jobs": {"active": 1, "retained": 4, "created": 9, "canceled": 2,
			"evicted": 1, "expired": 2, "events_emitted": 41, "streams_attached": 1},
		"endpoints": {"/v1/jobs": {"requests": 9, "errors": 0}}
	}`
	const listBody = `{"jobs": [
		{"id": "a1b2c3d4e5f6", "state": "running", "request_id": "rid-1",
		 "created_at_unix_ms": 1754650000000, "cells_total": 4, "cells_completed": 2,
		 "cells_failed": 0, "last_seq": 2},
		{"id": "0f9e8d7c6b5a", "state": "done", "request_id": "rid-0",
		 "created_at_unix_ms": 1754649000000, "finished_at_unix_ms": 1754649030000,
		 "cells_total": 2, "cells_completed": 2, "cells_failed": 0, "last_seq": 3}
	]}`
	const getBody = `{"id": "a1b2c3d4e5f6", "state": "running", "request_id": "rid-1",
		"created_at_unix_ms": 1754650000000, "cells_total": 4, "cells_completed": 2,
		"cells_failed": 0, "last_seq": 2,
		"cells": [
			{"config": "EOLE_4_64", "workload": "gzip", "done": true},
			{"config": "EOLE_4_64", "workload": "hmmer", "done": true, "cached": true},
			{"config": "Baseline_6_64", "workload": "gzip", "done": false},
			{"config": "Baseline_6_64", "workload": "hmmer", "done": false}
		]}`
	const cancelBody = `{"id": "a1b2c3d4e5f6", "state": "canceled", "request_id": "rid-1",
		"created_at_unix_ms": 1754650000000, "finished_at_unix_ms": 1754650040000,
		"cells_total": 4, "cells_completed": 2, "cells_failed": 0, "last_seq": 3}`

	// One assembled cluster-sweep trace with fixed timestamps: a
	// coordinator root, a dispatch hop, and the worker's spans spliced
	// in (note the worker-side http.request parented on the dispatch).
	const traceBody = `{
		"trace_id": "4bf92f3577b34da6a3ce929d0e0e4736", "request_id": "rid-1",
		"spans": [
			{"trace_id": "4bf92f3577b34da6a3ce929d0e0e4736", "span_id": "00f067aa0ba90200",
			 "name": "http.request", "service": "eoled@:8180",
			 "start_unix_ns": 1754650000000000000, "end_unix_ns": 1754650001500000000,
			 "attrs": {"method": "POST", "path": "/v1/cluster/sweep", "status": "200"}},
			{"trace_id": "4bf92f3577b34da6a3ce929d0e0e4736", "span_id": "00f067aa0ba90201",
			 "parent_id": "00f067aa0ba90200", "name": "dispatch", "service": "eoled@:8180",
			 "start_unix_ns": 1754650000002000000, "end_unix_ns": 1754650001400000000,
			 "attrs": {"attempt": "1", "config": "EOLE_4_64", "worker": "http://w1:8181", "workload": "gzip"}},
			{"trace_id": "4bf92f3577b34da6a3ce929d0e0e4736", "span_id": "00f067aa0ba90301",
			 "parent_id": "00f067aa0ba90201", "name": "http.request", "service": "eoled@:8181",
			 "start_unix_ns": 1754650000003000000, "end_unix_ns": 1754650001390000000,
			 "attrs": {"method": "POST", "path": "/v1/simulate", "status": "200"}},
			{"trace_id": "4bf92f3577b34da6a3ce929d0e0e4736", "span_id": "00f067aa0ba90302",
			 "parent_id": "00f067aa0ba90301", "name": "queue.wait", "service": "eoled@:8181",
			 "start_unix_ns": 1754650000003500000, "end_unix_ns": 1754650000004100000},
			{"trace_id": "4bf92f3577b34da6a3ce929d0e0e4736", "span_id": "00f067aa0ba90303",
			 "parent_id": "00f067aa0ba90301", "name": "sim.warm", "service": "eoled@:8181",
			 "start_unix_ns": 1754650000004200000, "end_unix_ns": 1754650000300000000},
			{"trace_id": "4bf92f3577b34da6a3ce929d0e0e4736", "span_id": "00f067aa0ba90304",
			 "parent_id": "00f067aa0ba90301", "name": "sim.detailed", "service": "eoled@:8181",
			 "start_unix_ns": 1754650000300100000, "end_unix_ns": 1754650001380000000}
		]}`
	const traceListBody = `{"enabled": true, "traces": [
		{"trace_id": "4bf92f3577b34da6a3ce929d0e0e4736", "request_id": "rid-1",
		 "root": "http.request", "start_unix_ns": 1754650000000000000,
		 "duration_ns": 1500000000, "spans": 6}
	]}`

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, traceListBody)
	})
	mux.HandleFunc("GET /v1/debug/traces/4bf92f3577b34da6a3ce929d0e0e4736", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, traceBody)
	})
	mux.HandleFunc("GET /v1/debug/traces/rid-1", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, traceBody)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, statsBody)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, listBody)
	})
	mux.HandleFunc("GET /v1/jobs/a1b2c3d4e5f6", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, getBody)
	})
	mux.HandleFunc("DELETE /v1/jobs/a1b2c3d4e5f6", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, cancelBody)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error": "jobs: job not found"}`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestGoldenStatus(t *testing.T) {
	srv := fixtureServer(t)
	code, stdout, stderr := runCtl(t, "-server", srv.URL, "status")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, "status_table.golden", []byte(stdout))

	code, stdout, _ = runCtl(t, "-server", srv.URL, "-o", "json", "status")
	if code != 0 {
		t.Fatalf("json exit %d", code)
	}
	checkGolden(t, "status_json.golden", []byte(stdout))
}

func TestGoldenJobsList(t *testing.T) {
	srv := fixtureServer(t)
	code, stdout, stderr := runCtl(t, "-server", srv.URL, "jobs", "list")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, "jobs_list_table.golden", []byte(stdout))

	code, stdout, _ = runCtl(t, "-server", srv.URL, "-o", "json", "jobs", "list")
	if code != 0 {
		t.Fatalf("json exit %d", code)
	}
	checkGolden(t, "jobs_list_json.golden", []byte(stdout))
}

func TestGoldenJobsGet(t *testing.T) {
	srv := fixtureServer(t)
	code, stdout, stderr := runCtl(t, "-server", srv.URL, "jobs", "get", "a1b2c3d4e5f6")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, "jobs_get_table.golden", []byte(stdout))
}

func TestGoldenJobsCancel(t *testing.T) {
	srv := fixtureServer(t)
	code, stdout, stderr := runCtl(t, "-server", srv.URL, "jobs", "cancel", "a1b2c3d4e5f6")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, "jobs_cancel.golden", []byte(stdout))
}

// TestGoldenTrace pins `eolectl trace` output: the span tree by trace
// ID, the same trace by request ID and via -last, and the raw -o json
// passthrough.
func TestGoldenTrace(t *testing.T) {
	srv := fixtureServer(t)
	code, stdout, stderr := runCtl(t, "-server", srv.URL, "trace", "4bf92f3577b34da6a3ce929d0e0e4736")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	checkGolden(t, "trace_table.golden", []byte(stdout))

	// The same trace by request ID and by -last must render identically.
	code, byReq, _ := runCtl(t, "-server", srv.URL, "trace", "rid-1")
	if code != 0 || byReq != stdout {
		t.Errorf("trace by request ID: exit %d, output drifted from trace-ID output", code)
	}
	code, byLast, _ := runCtl(t, "-server", srv.URL, "trace", "-last")
	if code != 0 || byLast != stdout {
		t.Errorf("trace -last: exit %d, output drifted from trace-ID output", code)
	}

	code, stdout, _ = runCtl(t, "-server", srv.URL, "-o", "json", "trace", "4bf92f3577b34da6a3ce929d0e0e4736")
	if code != 0 {
		t.Fatalf("json exit %d", code)
	}
	checkGolden(t, "trace_json.golden", []byte(stdout))
}

func TestTraceUsageErrors(t *testing.T) {
	code, _, stderr := runCtl(t, "-server", "http://unused", "trace")
	if code != 2 || !strings.Contains(stderr, "trace or request ID") {
		t.Errorf("bare trace: exit %d, stderr %q", code, stderr)
	}
	code, _, stderr = runCtl(t, "-server", "http://unused", "trace", "-last", "extra")
	if code != 2 || !strings.Contains(stderr, "-last takes no ID") {
		t.Errorf("trace -last extra: exit %d, stderr %q", code, stderr)
	}
}

func TestTraceNotFound(t *testing.T) {
	srv := fixtureServer(t)
	code, _, stderr := runCtl(t, "-server", srv.URL, "trace", "deadbeef")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "HTTP 404") {
		t.Errorf("stderr %q does not surface the 404", stderr)
	}
}

func TestJobsNotFound(t *testing.T) {
	srv := fixtureServer(t)
	code, _, stderr := runCtl(t, "-server", srv.URL, "jobs", "get", "nope")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "job not found") {
		t.Errorf("stderr %q does not surface the server error", stderr)
	}
}

func TestGoldenConfigure(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "config.json")
	var out bytes.Buffer

	code, stdout, stderr := runCtl(t, "-config", cfgPath, "configure", "-server", "http://sim-host:8080")
	if code != 0 {
		t.Fatalf("configure: exit %d, stderr: %s", code, stderr)
	}
	out.WriteString(stdout)
	code, stdout, _ = runCtl(t, "-config", cfgPath, "configure", "-server", "http://lab:8080", "-profile", "lab")
	if code != 0 {
		t.Fatalf("configure lab: exit %d", code)
	}
	out.WriteString(stdout)
	code, stdout, _ = runCtl(t, "-config", cfgPath, "configure", "-use", "default")
	if code != 0 {
		t.Fatalf("configure -use: exit %d", code)
	}
	out.WriteString(stdout)
	code, stdout, _ = runCtl(t, "-config", cfgPath, "configure", "-list")
	if code != 0 {
		t.Fatalf("configure -list: exit %d", code)
	}
	out.WriteString(stdout)
	checkGolden(t, "configure.golden", out.Bytes())

	// The file itself is part of the contract: hand-editable JSON.
	b, err := os.ReadFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "configure_file.golden", b)
}

func TestConfigureErrors(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "config.json")
	if code, _, stderr := runCtl(t, "-config", cfgPath, "configure", "-use", "ghost"); code != 1 ||
		!strings.Contains(stderr, "unknown profile") {
		t.Errorf("use ghost: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCtl(t, "-config", cfgPath, "configure", "-server", "sim-host:8080"); code != 2 ||
		!strings.Contains(stderr, "http://") {
		t.Errorf("schemeless server: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCtl(t, "-config", cfgPath, "status"); code != 1 ||
		!strings.Contains(stderr, "no server configured") {
		t.Errorf("unconfigured status: exit %d, stderr %q", code, stderr)
	}
}

func TestGoldenUsage(t *testing.T) {
	code, stdout, _ := runCtl(t, "help")
	if code != 0 {
		t.Fatalf("help: exit %d", code)
	}
	checkGolden(t, "usage.golden", []byte(stdout))

	if code, _, _ := runCtl(t); code != 2 {
		t.Errorf("bare invocation: exit %d, want 2", code)
	}
	if code, _, stderr := runCtl(t, "frobnicate"); code != 2 || !strings.Contains(stderr, "unknown command") {
		t.Errorf("unknown command: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCtl(t, "-o", "yaml", "status"); code != 2 || !strings.Contains(stderr, "bad -o") {
		t.Errorf("bad -o: exit %d, stderr %q", code, stderr)
	}
}
