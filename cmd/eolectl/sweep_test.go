package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// sweepFixture scripts the async-job dance: POST /v1/jobs answers
// with a fixed id, the event stream serves NDJSON frames (heartbeat
// included, which the CLI must skip). cut > 0 drops the connection
// after that many event frames on the first attempt, forcing the CLI
// to resume via ?from — the second attempt must only be asked for
// what it has not seen.
func sweepFixture(t *testing.T, cut int) (*httptest.Server, *atomic.Int64, *[]string) {
	t.Helper()
	frames := []string{
		`{"seq":1,"type":"cell","job":"job0001","cell":{"index":0,"config":"EOLE_4_64","workload":"gzip","report":{"config":"EOLE_4_64","benchmark":"gzip","cycles":4000,"committed":5000,"ipc":1.25}}}`,
		`{"type":"heartbeat"}`,
		`{"seq":2,"type":"cell","job":"job0001","cell":{"index":2,"config":"Baseline_6_64","workload":"gzip","cached":true,"report":{"config":"Baseline_6_64","benchmark":"gzip","cycles":5000,"committed":5000,"ipc":1.0}}}`,
		`{"seq":3,"type":"cell","job":"job0001","cell":{"index":1,"config":"EOLE_4_64","workload":"hmmer","report":{"config":"EOLE_4_64","benchmark":"hmmer","cycles":4200,"committed":5000,"ipc":1.19,"sampled":true,"ipc_ci":0.021,"sample_windows":4}}}`,
		`{"seq":4,"type":"cell","job":"job0001","cell":{"index":3,"config":"Baseline_6_64","workload":"hmmer","error":"workload stream ended early"}}`,
		`{"seq":5,"type":"done","job":"job0001","state":"failed","completed":3,"failed":1,"total":4}`,
	}
	var attempts atomic.Int64
	var froms []string
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var body map[string]any
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			t.Errorf("bad job body: %v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"job0001","state":"queued","cells_total":4,"status_url":"/v1/jobs/job0001","events_url":"/v1/jobs/job0001/events"}`)
	})
	mux.HandleFunc("GET /v1/jobs/job0001/events", func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		froms = append(froms, r.URL.Query().Get("from"))
		if !strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
			t.Errorf("stream request did not ask for NDJSON (Accept %q)", r.Header.Get("Accept"))
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		from := 0
		fmt.Sscanf(r.URL.Query().Get("from"), "%d", &from)
		sent := 0
		for _, fr := range frames {
			var ev struct {
				Seq int `json:"seq"`
			}
			json.Unmarshal([]byte(fr), &ev)
			if ev.Seq != 0 && ev.Seq <= from {
				continue
			}
			fmt.Fprintln(w, fr)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			if ev.Seq != 0 {
				sent++
				if n == 1 && cut > 0 && sent == cut {
					return // drop the connection mid-stream
				}
			}
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &attempts, &froms
}

func TestGoldenSweep(t *testing.T) {
	srv, _, _ := sweepFixture(t, 0)
	code, stdout, stderr := runCtl(t, "-server", srv.URL, "sweep",
		"-configs", "EOLE_4_64,Baseline_6_64", "-workloads", "gzip,hmmer",
		"-warmup", "2000", "-measure", "5000")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (one cell failed); stderr: %s", code, stderr)
	}
	// Progress lines land on stderr in completion order; the table on
	// stdout is in deterministic cell order regardless.
	for _, want := range []string{
		"job job0001: 4 cells",
		"[1/4] EOLE_4_64/gzip ipc=1.250",
		"[2/4] Baseline_6_64/gzip ipc=1.000 (cached)",
		"[4/4] Baseline_6_64/hmmer error: workload stream ended early",
		"1 of 4 cells errored",
	} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
	checkGolden(t, "sweep_table.golden", []byte(stdout))

	code, stdout, _ = runCtl(t, "-server", srv.URL, "-o", "json", "sweep",
		"-configs", "EOLE_4_64,Baseline_6_64", "-workloads", "gzip,hmmer")
	if code != 1 {
		t.Fatalf("json exit %d, want 1", code)
	}
	checkGolden(t, "sweep_json.golden", []byte(stdout))
}

// TestSweepResume cuts the first stream after two events; the CLI
// must reconnect with ?from=2 and still deliver every cell exactly
// once.
func TestSweepResume(t *testing.T) {
	srv, attempts, froms := sweepFixture(t, 2)
	code, stdout, stderr := runCtl(t, "-server", srv.URL, "sweep",
		"-configs", "EOLE_4_64,Baseline_6_64", "-workloads", "gzip,hmmer")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("stream attempts = %d, want 2", got)
	}
	if len(*froms) != 2 || (*froms)[0] != "0" || (*froms)[1] != "2" {
		t.Errorf("resume cursors = %v, want [0 2]", *froms)
	}
	if n := strings.Count(stderr, "EOLE_4_64/gzip"); n != 1 {
		t.Errorf("cell EOLE_4_64/gzip reported %d times across reconnect, want once", n)
	}
	checkGolden(t, "sweep_table.golden", []byte(stdout))
}

func TestSweepDetach(t *testing.T) {
	srv, attempts, _ := sweepFixture(t, 0)
	code, stdout, _ := runCtl(t, "-server", srv.URL, "sweep",
		"-configs", "EOLE_4_64", "-workloads", "gzip", "-detach")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if stdout != "job0001\n" {
		t.Errorf("detach stdout %q, want the bare job id", stdout)
	}
	if got := attempts.Load(); got != 0 {
		t.Errorf("detach attached %d event streams, want 0", got)
	}
}

func TestSweepGridFile(t *testing.T) {
	srv, _, _ := sweepFixture(t, 0)
	grid := filepath.Join(t.TempDir(), "grid.json")
	if err := os.WriteFile(grid, []byte(`{"base_name":"EOLE_4_64","axes":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runCtl(t, "-server", srv.URL, "sweep",
		"-grid", grid, "-workloads", "gzip", "-detach")
	if code != 0 || stdout != "job0001\n" {
		t.Fatalf("grid sweep: exit %d stdout %q", code, stdout)
	}
}

func TestSweepUsageErrors(t *testing.T) {
	for _, tc := range [][]string{
		{"sweep", "-workloads", "gzip"},                        // no configs or grid
		{"sweep", "-configs", "EOLE_4_64"},                     // no workloads
		{"sweep", "-configs", "A", "-workloads", "x", "stray"}, // positional arg
	} {
		if code, _, _ := runCtl(t, append([]string{"-server", "http://unused"}, tc...)...); code != 2 {
			t.Errorf("%v: exit %d, want 2", tc, code)
		}
	}
}
