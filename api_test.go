package eole_test

import (
	"strings"
	"testing"

	"eole"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	if len(eole.ConfigNames()) < 10 {
		t.Fatal("expected the full named-configuration set")
	}
	if len(eole.Workloads()) != 19 {
		t.Fatal("expected 19 workloads")
	}
	cfg, err := eole.NamedConfig("EOLE_4_64")
	if err != nil {
		t.Fatal(err)
	}
	w, err := eole.WorkloadByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eole.NewSimulator(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(5_000)
	r := sim.Measure(20_000)
	if r.IPC <= 0 {
		t.Fatalf("IPC = %v", r.IPC)
	}
	if r.Config != "EOLE_4_64" || r.Benchmark != "crafty" {
		t.Fatalf("report identity wrong: %s/%s", r.Config, r.Benchmark)
	}
	if r.Committed < 20_000 {
		t.Fatalf("measured %d µ-ops", r.Committed)
	}
	out := r.String()
	for _, want := range []string{"EOLE_4_64", "crafty", "offload", "VP", "MPKI"} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q:\n%s", want, out)
		}
	}
}

func TestSimulateConvenience(t *testing.T) {
	w, err := eole.WorkloadByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	r, err := eole.Simulate(eole.BaselineConfig(), w, 2_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.VPCoverage != 0 {
		t.Fatal("baseline must have no VP coverage")
	}
	if r.OffloadFraction != 0 {
		t.Fatal("baseline must have no offload")
	}
}

func TestInvalidConfigReturnsError(t *testing.T) {
	cfg := eole.BaselineConfig()
	cfg.IssueWidth = 0
	w, _ := eole.WorkloadByName("gzip")
	if _, err := eole.NewSimulator(cfg, w); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}

func TestPracticalConfigRuns(t *testing.T) {
	w, err := eole.WorkloadByName("art")
	if err != nil {
		t.Fatal(err)
	}
	r, err := eole.Simulate(eole.PracticalEOLEConfig(), w, 10_000, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.OffloadFraction < 0.4 {
		t.Errorf("art offload on practical EOLE = %.2f, want >= 0.4", r.OffloadFraction)
	}
}

func TestEOLEConfigConstructor(t *testing.T) {
	c := eole.EOLEConfig(4, 48)
	if c.IssueWidth != 4 || c.IQSize != 48 || !c.EarlyExecution || !c.LateExecution {
		t.Fatalf("EOLEConfig wrong: %+v", c)
	}
}
