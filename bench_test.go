// Benchmarks regenerating every table and figure of the paper
// (DESIGN.md §6 maps each bench to its artefact) plus ablation benches
// for the design choices DESIGN.md calls out. Reported metrics are the
// figure's headline numbers (geomeans, fractions); wall-clock time is
// the cost of regenerating the artefact.
//
// Run all:  go test -bench=. -benchmem
// One:      go test -bench=BenchmarkFigure7 -benchtime=1x
package eole_test

import (
	"testing"

	"eole"
	"eole/internal/experiments"
	"eole/internal/prog"
	"eole/internal/stats"
	"eole/internal/vpred"
)

// benchOpts keeps artefact regeneration fast enough for -bench=. while
// staying beyond predictor training horizons.
func benchOpts() experiments.Opts {
	return experiments.Opts{Warmup: 20_000, Measure: 50_000}
}

func reportGeomeans(b *testing.B, t *stats.Table) {
	b.Helper()
	for i, col := range t.Columns {
		b.ReportMetric(stats.Geomean(t.Column(i)), col+"_gm")
	}
}

func BenchmarkTable3_BaselineIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		ipc, _ := t.ColumnByName("IPC")
		b.ReportMetric(stats.Geomean(ipc), "ipc_gm")
	}
}

func BenchmarkFigure2_EarlyExecutable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		one, _ := t.ColumnByName("1_ALU_stage")
		two, _ := t.ColumnByName("2_ALU_stages")
		b.ReportMetric(mean(one), "ee1_mean")
		b.ReportMetric(mean(two), "ee2_mean")
	}
}

func BenchmarkFigure4_LateExecutable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		tot, _ := t.ColumnByName("total")
		b.ReportMetric(mean(tot), "le_mean")
		b.ReportMetric(stats.Max(tot), "le_max")
	}
}

func BenchmarkFigure6_ValuePredictionSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportGeomeans(b, t)
	}
}

func BenchmarkFigure7_IssueWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportGeomeans(b, t)
	}
}

func BenchmarkFigure8_IQSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportGeomeans(b, t)
	}
}

func BenchmarkFigure10_PRFBanks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportGeomeans(b, t)
	}
}

func BenchmarkFigure11_LEVTPorts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportGeomeans(b, t)
	}
}

func BenchmarkFigure12_Headline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportGeomeans(b, t)
	}
}

func BenchmarkFigure13_OLE_EOE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure13(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportGeomeans(b, t)
	}
}

// BenchmarkAblationPredictors compares the whole value-predictor
// family (coverage and squash rate) on a mixed benchmark subset — the
// design space the paper's related-work section spans.
func BenchmarkAblationPredictors(b *testing.B) {
	wls := []string{"art", "applu", "hmmer", "gzip", "vortex"}
	for _, name := range vpred.FamilyNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var cov, wrongPKI float64
				for _, wl := range wls {
					w, err := eole.WorkloadByName(wl)
					if err != nil {
						b.Fatal(err)
					}
					p, _ := vpred.NewByName(name)
					meter := &vpred.Meter{P: p}
					m := w.NewMachine()
					m.Run(100_000, func(u *prog.MicroOp) bool {
						if u.IsBranch() {
							p.PushBranch(!u.Op.Class().IsCondBranch() || u.Taken)
						} else if u.VPEligible() {
							meter.Observe(u.PC, u.Value)
						}
						return true
					})
					cov += meter.Coverage()
					wrongPKI += meter.MispredictPerKilo()
				}
				b.ReportMetric(cov/float64(len(wls)), "coverage")
				b.ReportMetric(wrongPKI/float64(len(wls)), "wrongPK")
			}
		})
	}
}

// BenchmarkAblationFPC sweeps the FPC probability vector: the paper's
// vector against an always-increment (plain 3-bit) counter and a
// stricter 1/128 tail, showing the coverage/accuracy trade-off that
// makes commit-time validation viable.
func BenchmarkAblationFPC(b *testing.B) {
	vectors := map[string]vpred.FPCVector{
		"plain3bit":  {1, 1, 1, 1, 1, 1, 1},
		"paper":      vpred.DefaultFPCVector(),
		"strict_128": {1, 32, 32, 32, 32, 128, 128},
	}
	for _, name := range []string{"plain3bit", "paper", "strict_128"} {
		vec := vectors[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := eole.WorkloadByName("gzip")
				if err != nil {
					b.Fatal(err)
				}
				p := vpred.NewTwoDeltaStride(13, vec)
				meter := &vpred.Meter{P: p}
				m := w.NewMachine()
				m.Run(150_000, func(u *prog.MicroOp) bool {
					if u.VPEligible() {
						meter.Observe(u.PC, u.Value)
					}
					return true
				})
				b.ReportMetric(meter.Coverage(), "coverage")
				b.ReportMetric(meter.MispredictPerKilo(), "wrongPK")
			}
		})
	}
}

// BenchmarkAblationEEDepth quantifies the paper's Figure 2 design
// choice on IPC: a second EE ALU stage adds hardware but almost no
// performance.
func BenchmarkAblationEEDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Workloads = []string{"namd", "crafty", "art", "gzip", "sjeng"}
		t, err := experiments.Figure2(o)
		if err != nil {
			b.Fatal(err)
		}
		one, _ := t.ColumnByName("1_ALU_stage")
		two, _ := t.ColumnByName("2_ALU_stages")
		b.ReportMetric(mean(two)-mean(one), "ee_gain_frac")
	}
}

// BenchmarkAblationLEBranches measures the contribution of resolving
// very-high-confidence branches in the LE/VT stage (§3.3) versus
// late-executing only predicted ALU µ-ops.
func BenchmarkAblationLEBranches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		withBr, err := eole.NamedConfig("EOLE_4_64")
		if err != nil {
			b.Fatal(err)
		}
		without := withBr
		without.Name = "EOLE_4_64_noLEbr"
		without.LEBranches = false
		var gmWith, gmWithout []float64
		for _, wl := range []string{"crafty", "art", "milc", "gzip", "sjeng"} {
			w, err := eole.WorkloadByName(wl)
			if err != nil {
				b.Fatal(err)
			}
			r1, err := eole.Simulate(withBr, w, 20_000, 50_000)
			if err != nil {
				b.Fatal(err)
			}
			r2, err := eole.Simulate(without, w, 20_000, 50_000)
			if err != nil {
				b.Fatal(err)
			}
			gmWith = append(gmWith, r1.OffloadFraction)
			gmWithout = append(gmWithout, r2.OffloadFraction)
		}
		b.ReportMetric(mean(gmWith), "offload_with")
		b.ReportMetric(mean(gmWithout), "offload_without")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (committed µ-ops per second) of the full EOLE machine.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg, err := eole.NamedConfig("EOLE_4_64")
	if err != nil {
		b.Fatal(err)
	}
	w, err := eole.WorkloadByName("crafty")
	if err != nil {
		b.Fatal(err)
	}
	sim, err := eole.NewSimulator(cfg, w)
	if err != nil {
		b.Fatal(err)
	}
	sim.Run(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(10_000)
	}
	b.SetBytes(0)
	b.ReportMetric(float64(10_000*b.N)/b.Elapsed().Seconds(), "µops/s")
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
