package eole_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"eole"
)

// TestTraceReplayByteIdenticalReports is the correctness bar of the
// trace subsystem: for every named configuration, a trace-driven run
// must produce a byte-identical Report (including the raw counter
// set) to the execute-driven run of the same (config, workload,
// warmup, measure). The core pulls µ-ops from its source strictly in
// program order, so equality of the source stream implies equality of
// the whole simulation.
func TestTraceReplayByteIdenticalReports(t *testing.T) {
	const (
		warmup  = 3_000
		measure = 12_000
	)
	workloads := []string{"gzip", "mcf", "namd", "hmmer"}
	for _, wlName := range workloads {
		w, err := eole.WorkloadByName(wlName)
		if err != nil {
			t.Fatal(err)
		}
		tr := eole.RecordTrace(w, warmup+measure+eole.TraceSlack)
		for _, cfgName := range eole.ConfigNames() {
			t.Run(wlName+"/"+cfgName, func(t *testing.T) {
				cfg, err := eole.NamedConfig(cfgName)
				if err != nil {
					t.Fatal(err)
				}
				exec, err := eole.Simulate(cfg, w, warmup, measure)
				if err != nil {
					t.Fatal(err)
				}
				replay, err := eole.Simulate(cfg, w, warmup, measure, eole.WithReplay(tr))
				if err != nil {
					t.Fatal(err)
				}
				be, err := json.Marshal(exec)
				if err != nil {
					t.Fatal(err)
				}
				br, err := json.Marshal(replay)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(be, br) {
					t.Errorf("trace-driven report differs from execute-driven:\nexec:   %s\nreplay: %s", be, br)
				}
			})
		}
	}
}

// TestWithReplayRejectsWrongWorkload checks that NewSimulator refuses
// a trace recorded from a different workload instead of silently
// simulating the wrong stream.
func TestWithReplayRejectsWrongWorkload(t *testing.T) {
	wa, err := eole.WorkloadByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	wb, err := eole.WorkloadByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	tr := eole.RecordTrace(wa, 1_000)
	cfg, err := eole.NamedConfig("EOLE_4_64")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eole.NewSimulator(cfg, wb, eole.WithReplay(tr)); err == nil {
		t.Fatal("NewSimulator accepted a trace from another workload")
	}
}

// TestTraceDriven checks the source-selection reporting.
func TestTraceDriven(t *testing.T) {
	w, err := eole.WorkloadByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := eole.NamedConfig("Baseline_6_64")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := eole.NewSimulator(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if sim.TraceDriven() {
		t.Fatal("default simulator reports trace-driven")
	}
	sim, err = eole.NewSimulator(cfg, w, eole.WithReplay(eole.RecordTrace(w, 1_000)))
	if err != nil {
		t.Fatal(err)
	}
	if !sim.TraceDriven() {
		t.Fatal("replay simulator reports execute-driven")
	}
}
