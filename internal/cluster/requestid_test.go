package cluster

import (
	"bytes"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"eole/internal/obs"
	"eole/internal/simsvc"
)

// TestRequestIDPropagation: a sweep started under a context carrying a
// request ID must stamp X-Eole-Request-Id on every dispatch, and the
// coordinator's own dispatch log must carry the same ID — the
// cross-process half of end-to-end tracing.
func TestRequestIDPropagation(t *testing.T) {
	sw := newStubWorker(t)
	var mu sync.Mutex
	var headerIDs []string
	sw.hook(func(http.ResponseWriter, int64) bool { return false })
	// Wrap the stub with a header recorder.
	base := sw.srv.Config.Handler
	sw.srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/simulate" {
			mu.Lock()
			headerIDs = append(headerIDs, r.Header.Get(obs.RequestIDHeader))
			mu.Unlock()
		}
		base.ServeHTTP(w, r)
	})

	var logBuf bytes.Buffer
	var logMu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&logMu, &logBuf}, &slog.HandlerOptions{Level: slog.LevelDebug}))
	c := testCoordinator(t, Options{Workers: []string{sw.srv.URL}, Logger: logger})

	cfg := namedConfig(t, "EOLE_4_64")
	ctx := obs.WithRequestID(t.Context(), "sweep-abc123")
	if _, err := c.Sweep(ctx, []simsvc.Request{req(cfg, "gzip"), req(cfg, "namd")}); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(headerIDs) != 2 {
		t.Fatalf("expected 2 dispatches, saw %d", len(headerIDs))
	}
	for _, id := range headerIDs {
		if id != "sweep-abc123" {
			t.Errorf("dispatch header ID = %q, want sweep-abc123", id)
		}
	}
	logMu.Lock()
	logs := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logs, `"msg":"cell_dispatch"`) || !strings.Contains(logs, `"request_id":"sweep-abc123"`) {
		t.Errorf("coordinator dispatch log missing request ID:\n%s", logs)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	b  *bytes.Buffer
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}
