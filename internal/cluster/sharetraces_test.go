package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"eole"
	"eole/internal/simsvc"
)

// gatedWorker is a stub eoled that checks the ShareTraces scheduling
// invariant from the worker's side: no sibling cell of a workload may
// arrive before the first cell of that workload has completed.
type gatedWorker struct {
	srv *httptest.Server

	mu         sync.Mutex
	started    map[string]int
	completed  map[string]int
	violations []string
}

func newGatedWorker(t *testing.T, simDelay time.Duration, failFirst bool) *gatedWorker {
	t.Helper()
	gw := &gatedWorker{started: make(map[string]int), completed: make(map[string]int)}
	var calls int
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(Health{Status: "ok", Version: "stub"})
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		var req simulateWire
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		gw.mu.Lock()
		calls++
		call := calls
		if gw.started[req.Workload] > 0 && gw.completed[req.Workload] == 0 {
			gw.violations = append(gw.violations,
				"sibling of "+req.Workload+" dispatched before its lead completed")
		}
		gw.started[req.Workload]++
		gw.mu.Unlock()

		if failFirst && call == 1 {
			// The elected lead dies; the coordinator must re-elect
			// instead of parking the workload's siblings forever. The
			// aborted attempt never ran, so it does not count as a
			// start for the invariant (its retry is a fresh election).
			gw.mu.Lock()
			gw.started[req.Workload]--
			gw.mu.Unlock()
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		time.Sleep(simDelay) // window in which a mis-scheduled sibling would land

		gw.mu.Lock()
		gw.completed[req.Workload]++
		gw.mu.Unlock()
		json.NewEncoder(w).Encode(&eole.Report{
			Config:    req.Config.Label(),
			Benchmark: req.Workload,
			Cycles:    req.Measure,
			Committed: req.Measure,
			IPC:       1.0,
		})
	})
	gw.srv = httptest.NewServer(mux)
	t.Cleanup(gw.srv.Close)
	return gw
}

// TestShareTracesSerializesWorkloadLeads: with ShareTraces on, the
// first cell of each workload runs alone; siblings only dispatch after
// it completes, then fan out freely.
func TestShareTracesSerializesWorkloadLeads(t *testing.T) {
	gw := newGatedWorker(t, 30*time.Millisecond, false)
	c := testCoordinator(t, Options{
		Workers:     []string{gw.srv.URL},
		ShareTraces: true,
		MaxInFlight: 8,
	})

	cfgA := namedConfig(t, "EOLE_4_64")
	cfgB := namedConfig(t, "Baseline_6_64")
	cfgC := namedConfig(t, "Baseline_VP_6_64")
	reqs := []simsvc.Request{
		req(cfgA, "gzip"), req(cfgB, "gzip"), req(cfgC, "gzip"),
		req(cfgA, "crafty"), req(cfgB, "crafty"), req(cfgC, "crafty"),
	}
	reports, err := c.Sweep(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(reqs) {
		t.Fatalf("got %d reports, want %d", len(reports), len(reqs))
	}
	gw.mu.Lock()
	defer gw.mu.Unlock()
	for _, v := range gw.violations {
		t.Error(v)
	}
	for _, wl := range []string{"gzip", "crafty"} {
		if gw.completed[wl] != 3 {
			t.Errorf("%s: %d cells completed, want 3", wl, gw.completed[wl])
		}
	}
}

// TestShareTracesLeadFailureReelects: the lead's dispatch failing must
// release the workload for re-election — the sweep still completes and
// the gating invariant holds across the retry.
func TestShareTracesLeadFailureReelects(t *testing.T) {
	gw := newGatedWorker(t, 10*time.Millisecond, true)
	c := testCoordinator(t, Options{
		Workers:     []string{gw.srv.URL},
		ShareTraces: true,
		MaxInFlight: 8,
	})

	cfgA := namedConfig(t, "EOLE_4_64")
	cfgB := namedConfig(t, "Baseline_6_64")
	reports, err := c.Sweep(context.Background(), []simsvc.Request{
		req(cfgA, "gzip"), req(cfgB, "gzip"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0] == nil || reports[1] == nil {
		t.Fatalf("sweep did not complete after lead failure: %v", reports)
	}
	gw.mu.Lock()
	defer gw.mu.Unlock()
	// The failed lead attempt counts as started-but-never-completed;
	// its retry is a fresh election, not a violation.
	for _, v := range gw.violations {
		t.Error(v)
	}
}
