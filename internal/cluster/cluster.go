// Package cluster distributes simulation sweeps across a set of
// remote eoled workers. A Coordinator decomposes a sweep — a list of
// simsvc.Requests, typically built from named configs or a design-space
// grid crossed with workloads — into cells keyed by the existing simsvc
// content address, dedupes identical cells cluster-wide, and dispatches
// them over eoled's HTTP API. Each dispatch is an async job (POST
// /v1/jobs with an inline config) whose per-cell completion events the
// coordinator consumes as an NDJSON stream — a dropped stream
// reconnects and resumes from the last seen event without re-running
// anything, and abandoning a dispatch cancels the job on the worker so
// its simulation actually stops. Workers whose eoled predates the job
// API are detected once (404 on the first create) and served by the
// legacy blocking POST /v1/simulate instead.
//
// The dispatcher is pull-based: every worker draws cells from one
// shared queue, bounded by a per-worker in-flight cap, so a fast or
// idle worker naturally steals work a loaded one has not taken yet.
// Workers are health-checked with periodic GET /v1/healthz probes
// (exponential backoff while failing); after FailureThreshold
// consecutive failures — probe or connection-level dispatch failures —
// a worker's circuit opens and it stops receiving cells until a probe
// succeeds again. A cell whose dispatch fails is requeued and retried
// on whatever worker next has capacity, so killing a worker mid-sweep
// loses no cells; a worker answering 429 is backpressure, not failure:
// the cell is requeued without consuming a retry attempt and the worker
// rests for the Retry-After hint.
//
// The simulator is deterministic and results are relabeled exactly as
// eoled relabels them, so a distributed sweep returns reports
// byte-identical to the same sweep run in one process.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eole/internal/obs"
)

// ErrNoWorkers is the per-cell error when every worker's circuit is
// open and nothing is in flight: the cluster is unreachable, so queued
// cells fail instead of waiting forever (bound the wait with a context
// deadline to ride out a full outage instead).
var ErrNoWorkers = errors.New("cluster: no live workers")

// ErrClosed is returned for work submitted after Close.
var ErrClosed = errors.New("cluster: coordinator closed")

// Health is the wire form of eoled's GET /v1/healthz: cheap liveness
// plus enough identity for a load balancer or the cluster prober.
type Health struct {
	Status      string `json:"status"` // "ok"
	Version     string `json:"version"`
	UptimeNS    int64  `json:"uptime_ns"`
	Parallelism int    `json:"parallelism"`
	QueueLen    int    `json:"queue_len"`
	Coordinator bool   `json:"coordinator"`
}

// EndpointStats is the wire form of one endpoint's request counters in
// eoled's /v1/stats ("endpoints" object): merged cluster stats use it
// to attribute load per worker and per endpoint.
type EndpointStats struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
}

// Options configures a Coordinator. Workers is required; everything
// else has serviceable defaults.
type Options struct {
	// Workers lists the eoled base URLs ("http://host:8080"; a bare
	// host:port gets the http scheme).
	Workers []string
	// Client issues every probe and dispatch (default: a plain
	// http.Client with no global timeout — simulations can be long, and
	// per-request contexts bound them instead).
	Client *http.Client
	// ProbeInterval is the healthy-state probe period (default 1s).
	// While a worker fails, the interval doubles per failure up to
	// 16× as backoff.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 2s).
	ProbeTimeout time.Duration
	// FailureThreshold is how many consecutive failures (probes or
	// connection-level dispatch errors) open a worker's circuit
	// (default 3).
	FailureThreshold int
	// MaxInFlight bounds concurrent dispatches per worker (default 4).
	MaxInFlight int
	// MaxAttempts caps how many times one cell is dispatched before it
	// fails for good (default max(3, len(Workers)+2)). 429 backpressure
	// does not consume an attempt.
	MaxAttempts int
	// DispatchTimeout bounds one cell's round trip (0 = unbounded, the
	// default: simulations can legitimately run for minutes). Set it
	// when a wedged-but-connectable worker — one that accepts the POST
	// but never answers, while its /v1/healthz keeps the circuit
	// closed — must not pin a cell forever: the timeout fails the
	// dispatch into the ordinary retry-with-requeue path.
	DispatchTimeout time.Duration
	// ShareTraces gates sweep dispatch so each workload's µ-op trace is
	// recorded once cluster-wide: the first cell of a workload is
	// elected its recording lead and dispatched alone; sibling cells of
	// the same workload hold until the lead completes, then fan out —
	// by which point the lead's worker has pushed the trace to its
	// artifact peer (the coordinator) and the siblings' workers fetch
	// it instead of re-interpreting the workload. Off, every worker
	// that receives a cell of a fresh workload records its own trace in
	// parallel. Pure scheduling: results are byte-identical either way.
	ShareTraces bool
	// Logger receives cluster events (nil = discard): circuit
	// open/close transitions at Info, per-cell dispatches at Debug.
	// Dispatch events carry the sweep's request ID so a coordinator's
	// logs line up with the worker-side access logs.
	Logger *slog.Logger
	// Tracer, when set, records one dispatch span per cell attempt
	// (worker, attempt number, outcome — requeues and throttles
	// included), stamps the W3C traceparent header on every worker
	// request so worker-side spans join the sweep's trace, and — once
	// a run's cells are all terminal — fetches each participating
	// worker's spans for the trace and splices them into the local
	// ring: one cross-process waterfall per sweep.
	Tracer *obs.Tracer
}

// worker is the coordinator's view of one eoled. Mutable state is
// guarded by Coordinator.mu; the counters are atomic so Stats can read
// them without the lock.
type worker struct {
	url string

	// Guarded by Coordinator.mu.
	open           bool // circuit open: excluded from dispatch
	consecFails    int
	lastErr        string
	throttledUntil time.Time
	inflight       int
	health         Health // last successful probe payload

	dispatched atomic.Uint64
	completed  atomic.Uint64
	failed     atomic.Uint64 // cells that failed permanently on this worker
	requeued   atomic.Uint64 // retryable failures handed back to the queue
	throttled  atomic.Uint64 // 429 backpressure responses

	// jobsUnsupported latches once the worker answers POST /v1/jobs
	// with 404/405 (an eoled predating the async job API): dispatch
	// then goes straight to the legacy blocking /v1/simulate, so a
	// mixed-version fleet works without probing every cell twice.
	jobsUnsupported atomic.Bool
}

// Coordinator shards sweeps across a fixed set of eoled workers. Create
// with New, release with Close.
type Coordinator struct {
	opts    Options
	client  *http.Client
	workers []*worker
	log     *slog.Logger

	ctx    context.Context // canceled by Close: probers exit, runs drain
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu   sync.Mutex
	cond *sync.Cond // broadcast on any dispatchability change
}

// New builds a coordinator over the given workers and starts their
// health probers. Workers start optimistically healthy, so dispatch
// can begin before the first probe completes.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = 3
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 4
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = max(3, len(opts.Workers)+2)
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{opts: opts, client: opts.Client, log: opts.Logger, ctx: ctx, cancel: cancel}
	c.cond = sync.NewCond(&c.mu)
	seen := make(map[string]bool, len(opts.Workers))
	for _, u := range opts.Workers {
		u = normalizeURL(u)
		if u == "" {
			cancel()
			return nil, fmt.Errorf("cluster: empty worker address")
		}
		if seen[u] {
			continue // one prober and one slot set per distinct worker
		}
		seen[u] = true
		c.workers = append(c.workers, &worker{url: u})
	}
	// Close and run-context cancellations must wake dispatch loops
	// blocked on the condition variable.
	context.AfterFunc(ctx, c.wake)
	for _, w := range c.workers {
		c.wg.Add(1)
		go c.probeLoop(w)
	}
	return c, nil
}

// normalizeURL defaults the scheme to http and strips a trailing slash
// so path joins are uniform.
func normalizeURL(u string) string {
	u = strings.TrimSpace(u)
	if u == "" {
		return ""
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return strings.TrimRight(u, "/")
}

// Close stops the health probers and wakes any blocked runs; in-flight
// dispatches finish on their own contexts. Close is idempotent.
func (c *Coordinator) Close() {
	c.cancel()
	c.wg.Wait()
}

// wake broadcasts under the coordinator lock. Asynchronous wakers
// (throttle-expiry timers, context cancellations) must not call
// Broadcast bare: it could land in the window between a dispatch
// loop's predicate check and its cond.Wait — both under mu — and wake
// nobody, parking the run forever.
func (c *Coordinator) wake() {
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// noteDispatchFailureLocked folds a connection-level dispatch failure
// into the same consecutive-failure count the prober maintains, so a
// killed worker's circuit opens after FailureThreshold broken
// dispatches instead of waiting out a probe cycle. Requires c.mu.
func (c *Coordinator) noteDispatchFailureLocked(w *worker, err error) {
	w.consecFails++
	w.lastErr = err.Error()
	if w.consecFails >= c.opts.FailureThreshold && !w.open {
		w.open = true
		c.log.Info("circuit_open", "worker", w.url, "consecutive_failures", w.consecFails, "error", w.lastErr)
	}
}

// pickWorkerLocked returns the dispatchable worker with the fewest
// in-flight cells (nil when none is dispatchable: circuits open, slots
// full, or throttled). Workers the cell has not yet been dispatched to
// are preferred: a retried cell must actually go *elsewhere*, not hand
// its whole attempt budget to one fast-failing worker that keeps
// having the freest slot. Requires c.mu.
func (c *Coordinator) pickWorkerLocked(tried map[*worker]bool, now time.Time) *worker {
	var best, bestUntried *worker
	for _, w := range c.workers {
		if w.open || w.inflight >= c.opts.MaxInFlight || now.Before(w.throttledUntil) {
			continue
		}
		if best == nil || w.inflight < best.inflight {
			best = w
		}
		if !tried[w] && (bestUntried == nil || w.inflight < bestUntried.inflight) {
			bestUntried = w
		}
	}
	if bestUntried != nil {
		return bestUntried
	}
	return best
}

// allOpenLocked reports whether every worker's circuit is open.
// Requires c.mu.
func (c *Coordinator) allOpenLocked() bool {
	for _, w := range c.workers {
		if !w.open {
			return false
		}
	}
	return true
}

// WorkerStatus is one worker's health and dispatch accounting, as
// served by eoled's GET /v1/cluster/workers.
type WorkerStatus struct {
	URL string `json:"url"`
	// State is "healthy", "degraded" (recent failures, circuit still
	// closed) or "open" (circuit broken, excluded from dispatch).
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
	Version             string `json:"version,omitempty"`
	InFlight            int    `json:"in_flight"`
	Dispatched          uint64 `json:"dispatched"`
	Completed           uint64 `json:"completed"`
	Failed              uint64 `json:"failed"`
	Requeued            uint64 `json:"requeued"`
	Throttled           uint64 `json:"throttled"`
}

// Workers snapshots every worker's status.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStatus, len(c.workers))
	for i, w := range c.workers {
		st := WorkerStatus{
			URL:                 w.url,
			State:               "healthy",
			ConsecutiveFailures: w.consecFails,
			LastError:           w.lastErr,
			Version:             w.health.Version,
			InFlight:            w.inflight,
			Dispatched:          w.dispatched.Load(),
			Completed:           w.completed.Load(),
			Failed:              w.failed.Load(),
			Requeued:            w.requeued.Load(),
			Throttled:           w.throttled.Load(),
		}
		switch {
		case w.open:
			st.State = "open"
		case w.consecFails > 0:
			st.State = "degraded"
		}
		out[i] = st
	}
	return out
}
