package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"

	"eole/internal/simsvc"
)

// ServiceStats is the wire form of a worker's GET /v1/stats: the
// embedded simsvc counters plus eoled's per-endpoint request/error
// counters, which let merged cluster stats attribute load per worker.
type ServiceStats struct {
	simsvc.Stats
	Endpoints map[string]EndpointStats `json:"endpoints,omitempty"`
}

// WorkerStats pairs a worker's coordinator-side status with its own
// service counters (nil when the worker could not be reached).
type WorkerStats struct {
	WorkerStatus
	Service *ServiceStats `json:"service,omitempty"`
}

// Stats is the merged cluster view: per-worker status and counters,
// plus the sum of every reachable worker's service stats.
type Stats struct {
	Workers []WorkerStats `json:"workers"`
	// Service sums the reachable workers' simsvc counters. UopsPerSec
	// is recomputed from the summed ops and wall time, so it remains
	// per-worker simulation speed, not aggregate cluster throughput.
	Service simsvc.Stats `json:"service"`
}

// Stats fetches /v1/stats from every worker whose circuit is closed
// (concurrently, bounded by the probe timeout) and merges the results.
func (c *Coordinator) Stats(ctx context.Context) Stats {
	statuses := c.Workers()
	out := Stats{Workers: make([]WorkerStats, len(statuses))}
	var wg sync.WaitGroup
	for i, st := range statuses {
		out.Workers[i] = WorkerStats{WorkerStatus: st}
		if st.State == "open" {
			continue
		}
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			if s := c.fetchStats(ctx, url); s != nil {
				out.Workers[i].Service = s
			}
		}(i, st.URL)
	}
	wg.Wait()
	for _, w := range out.Workers {
		if w.Service != nil {
			out.Service = addStats(out.Service, w.Service.Stats)
		}
	}
	if secs := out.Service.SimWallTime.Seconds(); secs > 0 {
		out.Service.UopsPerSec = float64(out.Service.SimulatedOps) / secs
	}
	return out
}

// fetchStats performs one GET /v1/stats round trip, returning nil on
// any failure (an unreachable worker simply has no service column).
func (c *Coordinator) fetchStats(ctx context.Context, url string) *ServiceStats {
	ctx, cancel := context.WithTimeout(ctx, c.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/stats", nil)
	if err != nil {
		return nil
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil
	}
	var s ServiceStats
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&s); err != nil {
		return nil
	}
	return &s
}

// addStats sums two service snapshots field by field. UopsPerSec is
// left for the caller to recompute from the summed totals.
func addStats(a, b simsvc.Stats) simsvc.Stats {
	return simsvc.Stats{
		JobsSubmitted: a.JobsSubmitted + b.JobsSubmitted,
		JobsCompleted: a.JobsCompleted + b.JobsCompleted,
		JobsFailed:    a.JobsFailed + b.JobsFailed,
		JobsCanceled:  a.JobsCanceled + b.JobsCanceled,
		SimsRun:       a.SimsRun + b.SimsRun,
		SimsSampled:   a.SimsSampled + b.SimsSampled,
		SimsAbandoned: a.SimsAbandoned + b.SimsAbandoned,
		CacheHits:     a.CacheHits + b.CacheHits,
		DiskHits:      a.DiskHits + b.DiskHits,
		CacheMisses:   a.CacheMisses + b.CacheMisses,
		Coalesced:     a.Coalesced + b.Coalesced,
		CacheSize:     a.CacheSize + b.CacheSize,
		SimWallTime:   a.SimWallTime + b.SimWallTime,
		SimulatedOps:  a.SimulatedOps + b.SimulatedOps,

		TracesRecorded:  a.TracesRecorded + b.TracesRecorded,
		TraceReplays:    a.TraceReplays + b.TraceReplays,
		TraceFallbacks:  a.TraceFallbacks + b.TraceFallbacks,
		TraceDiskLoads:  a.TraceDiskLoads + b.TraceDiskLoads,
		TraceLoadErrors: a.TraceLoadErrors + b.TraceLoadErrors,
		TraceRecordTime: a.TraceRecordTime + b.TraceRecordTime,
	}
}
