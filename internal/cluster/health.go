package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// probeBackoffCap bounds the failing-state probe interval at this
// multiple of ProbeInterval (doubling per consecutive failure): a dead
// worker is still probed often enough to rejoin within seconds of
// coming back.
const probeBackoffCap = 16

// probeLoop periodically probes one worker's /v1/healthz. A success
// resets the failure count and closes the circuit (waking blocked
// dispatch loops); failures back off exponentially and open the
// circuit at FailureThreshold. The first probe fires immediately, but
// workers start optimistically healthy so dispatch never waits on it.
func (c *Coordinator) probeLoop(w *worker) {
	defer c.wg.Done()
	interval := c.opts.ProbeInterval
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-timer.C:
		}
		h, err := c.probeOnce(w)
		c.mu.Lock()
		if err == nil {
			recovered := w.open || w.consecFails > 0
			if w.open {
				c.log.Info("circuit_close", "worker", w.url, "version", h.Version)
			}
			w.open = false
			w.consecFails = 0
			w.lastErr = ""
			w.health = h
			interval = c.opts.ProbeInterval
			if recovered {
				c.cond.Broadcast()
			}
		} else {
			w.consecFails++
			w.lastErr = err.Error()
			if w.consecFails >= c.opts.FailureThreshold && !w.open {
				w.open = true
				c.log.Info("circuit_open", "worker", w.url, "consecutive_failures", w.consecFails, "error", w.lastErr)
			}
			if interval < c.opts.ProbeInterval*probeBackoffCap {
				interval *= 2
			}
		}
		c.mu.Unlock()
		timer.Reset(interval)
	}
}

// probeOnce performs one GET /v1/healthz round trip.
func (c *Coordinator) probeOnce(w *worker) (Health, error) {
	ctx, cancel := context.WithTimeout(c.ctx, c.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/v1/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return Health{}, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("healthz: bad body: %w", err)
	}
	if h.Status != "ok" {
		return Health{}, fmt.Errorf("healthz: status %q", h.Status)
	}
	return h, nil
}
