package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"eole"
	"eole/internal/obs"
	"eole/internal/simsvc"
)

// cell is one unique simulation of a run: a representative request
// plus every sweep index that deduped onto its content address.
type cell struct {
	key      simsvc.Key
	req      simsvc.Request
	indexes  []int
	attempts int
	// tried records workers this cell has been dispatched to, so a
	// retry prefers a worker it has not visited yet (guarded by
	// Coordinator.mu).
	tried map[*worker]bool
	// lead marks the cell currently elected to record its workload's
	// trace (ShareTraces gating; guarded by Coordinator.mu).
	lead bool
}

// Workload-lead states for ShareTraces gating (Run.leads values).
const (
	leadNone     = iota // no cell of the workload dispatched yet
	leadInFlight        // the elected lead is on the wire; siblings hold
	leadDone            // a cell completed: the trace exists fleet-wide
)

// CellMeta records where one sweep cell was computed.
type CellMeta struct {
	// Worker is the URL of the worker that produced the result (empty
	// when the cell failed before any worker answered).
	Worker string `json:"worker,omitempty"`
	// Attempts counts dispatches, including the successful one;
	// requeues after 429 backpressure are not counted.
	Attempts int `json:"attempts,omitempty"`
}

// CellResult is one completed unique cell, delivered on Run.Results in
// completion order. Indexes lists every sweep position the cell covers
// (identical cells are dispatched once cluster-wide); Report carries
// the worker's label for the representative request — per-index
// relabeled reports are what Run.Wait returns.
type CellResult struct {
	Indexes  []int
	Config   string
	Workload string
	Meta     CellMeta
	Report   *eole.Report
	Err      error
}

// Run is one in-flight distributed sweep.
type Run struct {
	c    *Coordinator
	ctx  context.Context
	reqs []simsvc.Request

	results chan CellResult
	done    chan struct{}

	// Guarded by c.mu until done is closed, then immutable.
	queue    []*cell
	pending  int // cells not yet terminal
	inflight int // this run's dispatches currently on the wire
	// leads tracks per-workload trace-recording state (ShareTraces
	// gating): while a workload's first cell is on the wire, its
	// siblings wait so the recorded trace is shared instead of being
	// re-interpreted on every worker at once. nil when gating is off.
	leads   map[string]int
	reports []*eole.Report
	errs    []error
	meta    []CellMeta
	err     error
	// used records every worker URL this run dispatched to, for the
	// post-run trace splice (guarded by c.mu).
	used map[string]bool
}

// Start decomposes the sweep into deduplicated cells and begins
// dispatching them. Results stream on Results; Wait collects them
// aligned with reqs.
func (c *Coordinator) Start(ctx context.Context, reqs []simsvc.Request) (*Run, error) {
	if len(reqs) == 0 {
		return nil, errors.New("cluster: empty sweep")
	}
	if c.ctx.Err() != nil {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r := &Run{
		c:       c,
		ctx:     ctx,
		reqs:    reqs,
		reports: make([]*eole.Report, len(reqs)),
		errs:    make([]error, len(reqs)),
		meta:    make([]CellMeta, len(reqs)),
		done:    make(chan struct{}),
		used:    make(map[string]bool),
	}
	byKey := make(map[simsvc.Key]*cell, len(reqs))
	for i, req := range reqs {
		k := simsvc.KeyOf(req)
		if cl, ok := byKey[k]; ok {
			cl.indexes = append(cl.indexes, i)
			continue
		}
		cl := &cell{key: k, req: req, indexes: []int{i}}
		byKey[k] = cl
		r.queue = append(r.queue, cl)
	}
	r.pending = len(r.queue)
	r.results = make(chan CellResult, len(r.queue))
	if c.opts.ShareTraces {
		r.leads = make(map[string]int)
	}
	// A canceled sweep context must wake the dispatch loop so it can
	// fail the still-queued cells (wake, not a bare Broadcast: see
	// Coordinator.wake).
	stop := context.AfterFunc(ctx, c.wake)
	go func() {
		defer stop()
		r.loop()
	}()
	return r, nil
}

// Results delivers every unique cell as it completes and is closed
// when the run is done. The channel is buffered to the cell count, so
// a consumer may also just Wait.
func (r *Run) Results() <-chan CellResult { return r.results }

// Done is closed when every cell is terminal.
func (r *Run) Done() <-chan struct{} { return r.done }

// Meta returns per-sweep-index placement (worker, attempts), valid
// after Done.
func (r *Run) Meta() []CellMeta {
	<-r.done
	return r.meta
}

// Err returns sweep index i's terminal error (nil when it has a
// report), blocking until the run is done.
func (r *Run) Err(i int) error {
	<-r.done
	return r.errs[i]
}

// Wait blocks until the run completes (or ctx fires) and returns the
// reports aligned with the submitted requests. Failed cells leave nil
// slots and contribute to the joined error — mirroring
// simsvc.Sweep.Wait so callers can swap backends.
func (r *Run) Wait(ctx context.Context) ([]*eole.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-r.done:
		return r.reports, r.err
	default:
	}
	select {
	case <-r.done:
		return r.reports, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Sweep is the one-call form: shard reqs across the cluster and block
// for the merged reports.
func (c *Coordinator) Sweep(ctx context.Context, reqs []simsvc.Request) ([]*eole.Report, error) {
	r, err := c.Start(ctx, reqs)
	if err != nil {
		return nil, err
	}
	return r.Wait(ctx)
}

// loop is the run's dispatcher: it pairs queued cells with the least
// loaded dispatchable worker and blocks on the coordinator's condition
// variable whenever neither work nor capacity is available. It exits
// when every cell is terminal.
func (r *Run) loop() {
	c := r.c
	c.mu.Lock()
	for r.pending > 0 {
		if err := r.deadErr(); err != nil {
			// Fail everything still queued; in-flight dispatches resolve
			// through their own (now canceled) request contexts.
			r.failQueuedLocked(err)
			if r.pending == 0 {
				break
			}
			c.cond.Wait()
			continue
		}
		// Head-of-line with a trace-gating skip: the first cell whose
		// workload is not currently being lead-recorded is dispatchable.
		idx := -1
		for i, cand := range r.queue {
			if r.leads == nil || r.leads[cand.req.Workload] != leadInFlight {
				idx = i
				break
			}
		}
		if idx < 0 {
			// Every queued cell is holding for a lead recording; a
			// dispatch completion (or the run dying) wakes us.
			c.cond.Wait()
			continue
		}
		cl := r.queue[idx]
		w := c.pickWorkerLocked(cl.tried, time.Now())
		if w == nil {
			if c.allOpenLocked() && r.inflight == 0 {
				// Every circuit is open and nothing of ours is on the
				// wire: the cluster is gone, so fail fast rather than
				// park the sweep until a worker resurrects.
				r.failQueuedLocked(ErrNoWorkers)
				continue
			}
			c.cond.Wait()
			continue
		}
		r.queue = append(r.queue[:idx], r.queue[idx+1:]...)
		if r.leads != nil && r.leads[cl.req.Workload] == leadNone {
			// First dispatch of this workload: elect the cell as its
			// trace-recording lead. Siblings queue behind it until the
			// lead resolves, then fan out against the shared trace.
			cl.lead = true
			r.leads[cl.req.Workload] = leadInFlight
		}
		cl.attempts++
		if cl.tried == nil {
			cl.tried = make(map[*worker]bool, len(c.workers))
		}
		cl.tried[w] = true
		r.used[w.url] = true
		w.inflight++
		r.inflight++
		w.dispatched.Add(1)
		go r.dispatch(cl, w)
	}
	// Every cell is terminal (all dispatch round trips resolved), so
	// the participating workers' spans are complete: splice them into
	// the coordinator's trace before sealing the run, outside the lock
	// — the fetches are network I/O. Wait then returns an already
	// assembled cross-process trace.
	used := make([]string, 0, len(r.used))
	for url := range r.used {
		used = append(used, url)
	}
	c.mu.Unlock()
	r.spliceWorkerTraces(used)
	c.mu.Lock()
	r.finishLocked()
	c.mu.Unlock()
}

// spliceWorkerTraces fetches each participating worker's view of the
// sweep's trace (GET /v1/debug/traces/{id}) and ingests the spans into
// the coordinator's tracer, span-ID-deduplicated — one waterfall for
// the whole fleet. Best-effort on a short detached context: a worker
// that died or predates the endpoint just contributes no spans.
func (r *Run) spliceWorkerTraces(used []string) {
	tracer := r.c.opts.Tracer
	sp := obs.SpanFrom(r.ctx)
	if tracer == nil || sp == nil || len(used) == 0 {
		return
	}
	traceID := sp.Context().TraceID
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	for _, url := range used {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/debug/traces/"+traceID, nil)
		if err != nil {
			continue
		}
		resp, err := r.c.client.Do(hreq)
		if err != nil {
			r.c.log.Debug("trace_splice_failed", "worker", url, "trace_id", traceID, "error", err.Error())
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			continue
		}
		var tr obs.Trace
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<24)).Decode(&tr)
		resp.Body.Close()
		if err != nil || tr.TraceID != traceID {
			r.c.log.Debug("trace_splice_failed", "worker", url, "trace_id", traceID, "error", "bad trace body")
			continue
		}
		tracer.Ingest(tr.Spans, tr.RequestID)
		r.c.log.Debug("trace_spliced", "worker", url, "trace_id", traceID, "spans", len(tr.Spans))
	}
}

// deadErr reports why the run can no longer make progress (sweep
// context canceled or coordinator closed), or nil.
func (r *Run) deadErr() error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	if r.c.ctx.Err() != nil {
		return ErrClosed
	}
	return nil
}

// failQueuedLocked fails every not-yet-dispatched cell. Requires c.mu.
func (r *Run) failQueuedLocked(err error) {
	for _, cl := range r.queue {
		r.finishCellLocked(cl, nil, err, "")
	}
	r.queue = nil
}

// finishCellLocked records a cell's terminal result for every sweep
// index it covers and emits it on the results channel (buffered to the
// cell count, so the send cannot block). Requires c.mu.
func (r *Run) finishCellLocked(cl *cell, rep *eole.Report, err error, workerURL string) {
	meta := CellMeta{Worker: workerURL, Attempts: cl.attempts}
	for _, i := range cl.indexes {
		r.meta[i] = meta
		if err != nil {
			r.errs[i] = err
			continue
		}
		// Per-index relabel: deduped cells may carry different display
		// names over the same fingerprint, and single-node eoled labels
		// each request individually.
		r.reports[i] = Relabel(rep, r.reqs[i].Config.Label())
	}
	r.pending--
	r.results <- CellResult{
		Indexes:  cl.indexes,
		Config:   cl.req.Config.Label(),
		Workload: cl.req.Workload,
		Meta:     meta,
		Report:   rep,
		Err:      err,
	}
}

// finishLocked seals the run: joins per-cell errors and closes the
// channels. Requires c.mu.
func (r *Run) finishLocked() {
	var errs []error
	for i, err := range r.errs {
		if err != nil {
			errs = append(errs, fmt.Errorf("%s on %s: %w",
				r.reqs[i].Config.Label(), r.reqs[i].Workload, err))
		}
	}
	r.err = errors.Join(errs...)
	close(r.results)
	close(r.done)
}

// releaseLeadLocked resolves a workload's trace-recording election
// when its lead cell comes off the wire. A successful lead proves the
// worker holds (and, with an artifact peer, has shared) the workload's
// trace, so siblings fan out; any other outcome re-opens the election
// — the next cell of the workload to dispatch becomes the new lead.
// Requires c.mu. The caller's Broadcast wakes the holding siblings.
func (r *Run) releaseLeadLocked(cl *cell, recorded bool) {
	if !cl.lead {
		return
	}
	cl.lead = false
	if recorded {
		r.leads[cl.req.Workload] = leadDone
	} else {
		r.leads[cl.req.Workload] = leadNone
	}
}

// dispatchOutcome classifies one dispatch round trip.
type dispatchOutcome int

const (
	outcomeOK dispatchOutcome = iota
	// outcomePermanent: the request cannot be built at all (local
	// encode failure); no dispatch anywhere could succeed.
	outcomePermanent
	// outcomeRetry: transient or worker-local failure; requeue unless
	// the attempt budget is spent.
	outcomeRetry
	// outcomeThrottle: 429 backpressure; requeue without consuming an
	// attempt and rest the worker for the Retry-After hint.
	outcomeThrottle
)

// outcomeName labels a dispatch outcome for span attributes.
func outcomeName(o dispatchOutcome) string {
	switch o {
	case outcomeOK:
		return "ok"
	case outcomePermanent:
		return "permanent"
	case outcomeRetry:
		return "retry"
	case outcomeThrottle:
		return "throttle"
	}
	return "unknown"
}

// dispatch posts one cell to one worker and resolves the outcome under
// the coordinator lock.
func (r *Run) dispatch(cl *cell, w *worker) {
	r.c.log.Debug("cell_dispatch", "worker", w.url, "key", cl.key.String(),
		"config", cl.req.Config.Label(), "workload", cl.req.Workload,
		"attempt", cl.attempts, "request_id", obs.RequestID(r.ctx))
	// One span per attempt: a cell that is requeued (throttle, retry)
	// shows up as several dispatch spans with increasing attempt
	// numbers, so circuit waits and requeues are visible in the
	// waterfall. The span context rides the worker requests as a
	// traceparent header, parenting the worker-side spans here.
	dctx, dsp := r.c.opts.Tracer.StartSpan(r.ctx, "dispatch")
	dsp.SetAttr("worker", w.url)
	dsp.SetAttr("config", cl.req.Config.Label())
	dsp.SetAttr("workload", cl.req.Workload)
	dsp.SetAttr("attempt", strconv.Itoa(cl.attempts))
	rep, delay, outcome, workerFault, err := r.post(dctx, cl.req, w)
	dsp.SetAttr("outcome", outcomeName(outcome))
	if outcome != outcomeOK {
		dsp.SetError(err)
	}
	dsp.End()

	c := r.c
	c.mu.Lock()
	w.inflight--
	r.inflight--
	r.releaseLeadLocked(cl, outcome == outcomeOK)
	switch outcome {
	case outcomeOK:
		w.completed.Add(1)
		r.finishCellLocked(cl, rep, nil, w.url)
	case outcomePermanent:
		w.failed.Add(1)
		r.finishCellLocked(cl, nil, err, w.url)
	case outcomeThrottle:
		w.throttled.Add(1)
		cl.attempts-- // backpressure is not a failed attempt
		w.throttledUntil = time.Now().Add(delay)
		r.queue = append(r.queue, cl)
		// The throttle expiry must wake the dispatch loop even if no
		// other event does (wake, not a bare Broadcast: the lock-free
		// form could slip between a loop's predicate check and its
		// Wait and be lost).
		time.AfterFunc(delay, c.wake)
	case outcomeRetry:
		if workerFault && r.deadErr() == nil {
			// Connection-level failures count toward the circuit like
			// failed probes; a live worker's clean 5xx answer does not —
			// and neither does our own dying run context, whose canceled
			// dispatches say nothing about worker health.
			c.noteDispatchFailureLocked(w, err)
		}
		switch {
		case r.deadErr() != nil:
			r.finishCellLocked(cl, nil, r.deadErr(), w.url)
		case cl.attempts >= c.opts.MaxAttempts:
			w.failed.Add(1)
			r.finishCellLocked(cl, nil,
				fmt.Errorf("cluster: cell failed after %d attempts: %w", cl.attempts, err), w.url)
		default:
			w.requeued.Add(1)
			r.queue = append(r.queue, cl)
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// post performs the round trip for one cell. The preferred path is
// the async job API: create a job on the worker and consume its
// per-cell completion events as an NDJSON stream — a dropped stream
// reconnects and resumes from the last seen event (the worker replays
// on attach, so nothing re-simulates), and leaving early cancels the
// job so the worker's simulation actually stops instead of burning a
// core for a result nobody wants. Workers that answer 404/405 to the
// create (an eoled predating /v1/jobs) are latched unsupported and
// served by the legacy blocking POST /v1/simulate.
func (r *Run) post(ctx context.Context, req simsvc.Request, w *worker) (rep *eole.Report, delay time.Duration, outcome dispatchOutcome, workerFault bool, err error) {
	body, err := json.Marshal(struct {
		Config   eole.Config        `json:"config"`
		Workload string             `json:"workload"`
		Warmup   uint64             `json:"warmup"`
		Measure  uint64             `json:"measure"`
		Sampling *eole.SamplingSpec `json:"sampling,omitempty"`
	}{req.Config, req.Workload, req.Warmup, req.Measure, req.Sampling})
	if err != nil {
		return nil, 0, outcomePermanent, false, fmt.Errorf("cluster: encode request: %w", err)
	}
	if d := r.c.opts.DispatchTimeout; d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	if !w.jobsUnsupported.Load() {
		rep, delay, outcome, workerFault, supported, err := r.postJob(ctx, body, w)
		if supported {
			return rep, delay, outcome, workerFault, err
		}
		w.jobsUnsupported.Store(true)
		r.c.log.Info("worker_legacy_dispatch", "worker", w.url,
			"reason", "no /v1/jobs endpoint; falling back to blocking /v1/simulate")
	}
	return r.postSimulate(ctx, body, w)
}

// newWorkerRequest builds one dispatch request, stamping the sweep's
// request ID so the worker's access log (and its simsvc lifecycle
// events) carry the same ID as the coordinator's — one sweep, one
// trace — and the dispatch span's traceparent so the worker's spans
// join the sweep's distributed trace.
func (r *Run) newWorkerRequest(ctx context.Context, method, url string, body []byte) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	if id := obs.RequestID(r.ctx); id != "" {
		hreq.Header.Set(obs.RequestIDHeader, id)
	}
	obs.InjectTraceContext(ctx, hreq.Header.Set)
	return hreq, nil
}

// jobEvent is the coordinator's view of one worker event frame: just
// the fields dispatch needs, tolerant of additions.
type jobEvent struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`
	Cell *struct {
		Report *eole.Report `json:"report"`
		Error  string       `json:"error"`
	} `json:"cell"`
	State string `json:"state"`
}

// streamReconnects bounds how many times one dispatch re-attaches to
// its job's event stream after a mid-stream disconnect before giving
// the cell back to the retry path.
const streamReconnects = 3

// postJob is the async-job dispatch: POST /v1/jobs, then follow the
// event stream to the cell's completion. supported=false means the
// worker has no job API (404/405 on the create) and the caller should
// fall back — every other outcome is final for this round trip.
func (r *Run) postJob(ctx context.Context, body []byte, w *worker) (rep *eole.Report, delay time.Duration, outcome dispatchOutcome, workerFault bool, supported bool, err error) {
	hreq, err := r.newWorkerRequest(ctx, http.MethodPost, w.url+"/v1/jobs", body)
	if err != nil {
		return nil, 0, outcomePermanent, false, true, err
	}
	resp, err := r.c.client.Do(hreq)
	if err != nil {
		return nil, 0, outcomeRetry, true, true, fmt.Errorf("cluster: %s: %w", w.url, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		// fall through to the stream below
	case http.StatusNotFound, http.StatusMethodNotAllowed:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, 0, 0, false, false, nil
	case http.StatusTooManyRequests:
		delay := retryAfter(resp)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, delay, outcomeThrottle, false, true, nil
	default:
		// Same policy as the legacy path: any well-formed answer —
		// 400, 5xx, unexpected — is retryable elsewhere and proves the
		// worker alive (no circuit penalty).
		return nil, 0, outcomeRetry, false, true,
			fmt.Errorf("cluster: %s: status %d: %s", w.url, resp.StatusCode, errorBody(resp))
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&created); err != nil || created.ID == "" {
		return nil, 0, outcomeRetry, true, true, fmt.Errorf("cluster: %s: bad job-create body: %v", w.url, err)
	}
	rep, outcome, workerFault, err = r.followJob(ctx, w, created.ID)
	if outcome != outcomeOK {
		// Leaving without the result (run canceled, dispatch timeout,
		// stream gave up): cancel the job so the worker abandons the
		// simulation instead of finishing it for nobody. Best-effort
		// on a short detached context — ctx may already be dead — and
		// a no-op when the job is already terminal (cell failed there).
		r.cancelJob(w, created.ID)
	}
	return rep, 0, outcome, workerFault, true, err
}

// followJob consumes the job's NDJSON event stream until the cell
// resolves, re-attaching after mid-stream disconnects with the resume
// cursor so replayed events are never double-counted.
func (r *Run) followJob(ctx context.Context, w *worker, id string) (*eole.Report, dispatchOutcome, bool, error) {
	seen := 0
	var lastErr error
	for attempt := 0; attempt <= streamReconnects; attempt++ {
		if ctx.Err() != nil {
			return nil, outcomeRetry, true, fmt.Errorf("cluster: %s: %w", w.url, ctx.Err())
		}
		rep, outcome, fault, final, err := r.streamEvents(ctx, w, id, &seen)
		if final {
			return rep, outcome, fault, err
		}
		lastErr = err
	}
	return nil, outcomeRetry, true,
		fmt.Errorf("cluster: %s: job %s stream died %d times: %w", w.url, id, streamReconnects+1, lastErr)
}

// streamEvents attaches to the job's event stream once. final=false
// means the stream dropped before a terminal event and the caller may
// re-attach from *seen; final=true carries the dispatch resolution.
func (r *Run) streamEvents(ctx context.Context, w *worker, id string, seen *int) (rep *eole.Report, outcome dispatchOutcome, workerFault bool, final bool, err error) {
	url := fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", w.url, id, *seen)
	hreq, err := r.newWorkerRequest(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, outcomePermanent, false, true, err
	}
	hreq.Header.Set("Accept", "application/x-ndjson")
	resp, err := r.c.client.Do(hreq)
	if err != nil {
		return nil, 0, true, false, fmt.Errorf("cluster: %s: %w", w.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A 404 here means the job expired or the worker restarted
		// between create and attach — nothing to resume, retry the
		// whole cell; other statuses likewise.
		return nil, outcomeRetry, false, true,
			fmt.Errorf("cluster: %s: job %s events: status %d: %s", w.url, id, resp.StatusCode, errorBody(resp))
	}
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 1<<24))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	var cellReport *eole.Report
	var cellErr string
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev jobEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, 0, true, false, fmt.Errorf("cluster: %s: bad event frame: %w", w.url, err)
		}
		if ev.Seq > *seen {
			*seen = ev.Seq
		}
		switch ev.Type {
		case "heartbeat":
			continue
		case "cell":
			if ev.Cell != nil {
				cellReport, cellErr = ev.Cell.Report, ev.Cell.Error
			}
		case "done":
			switch {
			case ev.State == "done" && cellReport != nil:
				return cellReport, outcomeOK, false, true, nil
			case cellErr != "":
				// The worker ran the cell and it failed there: same
				// retry-elsewhere policy as a legacy 5xx, no circuit
				// penalty — the worker answered well-formedly.
				return nil, outcomeRetry, false, true,
					fmt.Errorf("cluster: %s: %s", w.url, cellErr)
			default:
				// Canceled on the worker side, or a terminal frame
				// with no cell result: retry elsewhere.
				return nil, outcomeRetry, false, true,
					fmt.Errorf("cluster: %s: job %s ended %q without a result", w.url, id, ev.State)
			}
		}
	}
	// Stream ended without a terminal event: connection dropped (or
	// scanner error). Not final — the caller re-attaches from *seen.
	err = sc.Err()
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return nil, 0, true, false, fmt.Errorf("cluster: %s: job %s stream: %w", w.url, id, err)
}

// cancelJob best-effort-cancels a job this dispatch is abandoning, on
// a short detached context (the dispatch context is already dead).
// The worker drops the job's queued cells and abandons its running
// simulation at the next cancellation checkpoint.
func (r *Run) cancelJob(w *worker, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	hreq, err := r.newWorkerRequest(ctx, http.MethodDelete, w.url+"/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	resp, err := r.c.client.Do(hreq)
	if err != nil {
		r.c.log.Debug("job_cancel_failed", "worker", w.url, "job", id, "error", err.Error())
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
}

// postSimulate is the legacy blocking dispatch: POST /v1/simulate and
// hold the request open for the report.
func (r *Run) postSimulate(ctx context.Context, body []byte, w *worker) (rep *eole.Report, delay time.Duration, outcome dispatchOutcome, workerFault bool, err error) {
	hreq, err := r.newWorkerRequest(ctx, http.MethodPost, w.url+"/v1/simulate", body)
	if err != nil {
		return nil, 0, outcomePermanent, false, err
	}
	resp, err := r.c.client.Do(hreq)
	if err != nil {
		// Connection refused/reset, DNS failure, or our own context: a
		// worker fault unless the run itself is dying (classified by
		// the caller via deadErr).
		return nil, 0, outcomeRetry, true, fmt.Errorf("cluster: %s: %w", w.url, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var report eole.Report
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<24)).Decode(&report); err != nil {
			// A 200 with a broken body is a connection killed mid-reply
			// (e.g. the worker died): retry elsewhere.
			return nil, 0, outcomeRetry, true, fmt.Errorf("cluster: %s: bad report body: %w", w.url, err)
		}
		return &report, 0, outcomeOK, false, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		delay := retryAfter(resp)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, delay, outcomeThrottle, false, nil
	default:
		// Everything else — 400, 5xx, unexpected statuses — is
		// retryable: a 400 may be one worker's local policy (a stricter
		// -max-uops than its peers), so the cell deserves a try
		// elsewhere before failing with the worker's message. No
		// circuit penalty either way: a well-formed HTTP answer proves
		// the worker alive, and a cell-specific failure must not break
		// every worker it visits.
		return nil, 0, outcomeRetry, false,
			fmt.Errorf("cluster: %s: status %d: %s", w.url, resp.StatusCode, errorBody(resp))
	}
}

// maxRetryAfter caps the worker-supplied Retry-After hint: the header
// is remote input, and honoring an absurd value would park the sweep
// on a throttled-but-closed circuit with no cell ever failing.
const maxRetryAfter = 30 * time.Second

// retryAfter parses the Retry-After seconds hint (default 500ms —
// short enough that a briefly saturated worker is retried promptly),
// clamped to maxRetryAfter. The clamp happens on the integer before
// the Duration multiply: a huge header value would otherwise overflow
// int64 into a negative delay and defeat the cap.
func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return min(time.Duration(min(secs, int(maxRetryAfter/time.Second)))*time.Second, maxRetryAfter)
		}
	}
	return 500 * time.Millisecond
}

// errorBody extracts eoled's {"error": "..."} message, falling back to
// a body snippet.
func errorBody(resp *http.Response) string {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(b))
}

// Relabel returns the report labeled with the requested config's
// label. Content-addressed caching and cluster dedup key on
// Config.Fingerprint and ignore display names, so a cell can be
// answered by a simulation run under an identically-parameterized
// config with a different name; single-node eoled relabels the same
// way, which is what keeps distributed results byte-identical.
func Relabel(r *eole.Report, label string) *eole.Report {
	if r == nil || r.Config == label {
		return r
	}
	cp := *r
	cp.Config = label
	return &cp
}
