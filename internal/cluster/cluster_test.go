package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"eole"
	"eole/internal/simsvc"
)

// stubWorker is a fake eoled: healthy by default, answering
// /v1/simulate with a deterministic fabricated report. Behavior is
// swappable per test via the handler hooks.
type stubWorker struct {
	srv *httptest.Server

	simCalls atomic.Int64
	// onSimulate, when non-nil, intercepts a /v1/simulate call (the
	// call counter has already been bumped). Return true when the hook
	// wrote the response itself.
	onSimulate atomic.Pointer[func(w http.ResponseWriter, call int64) bool]
	healthy    atomic.Bool
}

// simulateWire mirrors the fields cluster dispatch posts.
type simulateWire struct {
	Config   eole.Config        `json:"config"`
	Workload string             `json:"workload"`
	Warmup   uint64             `json:"warmup"`
	Measure  uint64             `json:"measure"`
	Sampling *eole.SamplingSpec `json:"sampling,omitempty"`
}

func newStubWorker(t *testing.T) *stubWorker {
	t.Helper()
	sw := &stubWorker{}
	sw.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if !sw.healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(Health{Status: "ok", Version: "stub"})
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		call := sw.simCalls.Add(1)
		if hook := sw.onSimulate.Load(); hook != nil && (*hook)(w, call) {
			return
		}
		var req simulateWire
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// A deterministic fake: enough shape for Relabel and equality
		// checks without running the simulator.
		json.NewEncoder(w).Encode(&eole.Report{
			Config:    req.Config.Label(),
			Benchmark: req.Workload,
			Cycles:    req.Measure,
			Committed: req.Measure,
			IPC:       1.0,
		})
	})
	sw.srv = httptest.NewServer(mux)
	t.Cleanup(sw.srv.Close)
	return sw
}

func (sw *stubWorker) hook(f func(w http.ResponseWriter, call int64) bool) {
	sw.onSimulate.Store(&f)
}

func testCoordinator(t *testing.T, opts Options) *Coordinator {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func namedConfig(t *testing.T, name string) eole.Config {
	t.Helper()
	cfg, err := eole.NamedConfig(name)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func req(cfg eole.Config, wl string) simsvc.Request {
	return simsvc.Request{Config: cfg, Workload: wl, Warmup: 1_000, Measure: 3_000}
}

// TestDedupAndRelabel: two sweep cells whose configs share a
// fingerprint under different display names must dispatch once
// cluster-wide, and each slot must come back under its own label —
// exactly how single-node eoled relabels.
func TestDedupAndRelabel(t *testing.T) {
	sw := newStubWorker(t)
	c := testCoordinator(t, Options{Workers: []string{sw.srv.URL}})

	base := namedConfig(t, "EOLE_4_64")
	alias := base
	alias.Name = "MyAlias"
	reports, err := c.Sweep(context.Background(), []simsvc.Request{
		req(base, "gzip"), req(alias, "gzip"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := sw.simCalls.Load(); n != 1 {
		t.Errorf("identical cells dispatched %d times, want 1", n)
	}
	if reports[0].Config != "EOLE_4_64" || reports[1].Config != "MyAlias" {
		t.Errorf("labels %q/%q, want EOLE_4_64/MyAlias", reports[0].Config, reports[1].Config)
	}
	if reports[0].IPC != reports[1].IPC {
		t.Errorf("deduped cells disagree: %v vs %v", reports[0].IPC, reports[1].IPC)
	}
}

// TestRetryOn5xx: a worker answering 500 is retried on the other
// worker without tripping the failing worker's circuit (a clean HTTP
// answer proves it alive).
func TestRetryOn5xx(t *testing.T) {
	flaky, good := newStubWorker(t), newStubWorker(t)
	flaky.hook(func(w http.ResponseWriter, call int64) bool {
		if call <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return true
		}
		return false
	})
	c := testCoordinator(t, Options{
		Workers:     []string{flaky.srv.URL, good.srv.URL},
		MaxInFlight: 1,
	})
	cfg := namedConfig(t, "EOLE_4_64")
	reports, err := c.Sweep(context.Background(), []simsvc.Request{
		req(cfg, "gzip"), req(cfg, "art"), req(cfg, "mcf"),
	})
	if err != nil {
		t.Fatalf("sweep should survive transient 5xx: %v", err)
	}
	for i, r := range reports {
		if r == nil {
			t.Fatalf("cell %d lost", i)
		}
	}
	var requeued uint64
	for _, ws := range c.Workers() {
		requeued += ws.Requeued
		if ws.URL == flaky.srv.URL && ws.State == "open" {
			t.Errorf("5xx answers must not open the circuit")
		}
	}
	if requeued == 0 {
		t.Errorf("expected at least one requeue after 5xx")
	}
}

// Test429Backpressure: a 429 rests the worker for the Retry-After hint
// and requeues the cell without consuming a retry attempt.
func Test429Backpressure(t *testing.T) {
	sw := newStubWorker(t)
	sw.hook(func(w http.ResponseWriter, call int64) bool {
		if call == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return true
		}
		return false
	})
	c := testCoordinator(t, Options{Workers: []string{sw.srv.URL}, MaxAttempts: 1})
	run, err := c.Start(context.Background(), []simsvc.Request{req(namedConfig(t, "EOLE_4_64"), "gzip")})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := run.Wait(context.Background())
	if err != nil {
		t.Fatalf("429 must be backpressure, not failure (MaxAttempts=1): %v", err)
	}
	if reports[0] == nil {
		t.Fatal("cell lost")
	}
	if got := run.Meta()[0].Attempts; got != 1 {
		t.Errorf("attempts = %d, want 1 (throttle does not consume the budget)", got)
	}
	if ws := c.Workers()[0]; ws.Throttled != 1 {
		t.Errorf("throttled counter = %d, want 1", ws.Throttled)
	}
}

// TestRejected400: a 400 may be one worker's local policy (stricter
// -max-uops), so the cell is retried elsewhere — here the second
// worker accepts what the first rejects; the strict worker's circuit
// stays closed.
func TestRejected400(t *testing.T) {
	strict, lax := newStubWorker(t), newStubWorker(t)
	strict.hook(func(w http.ResponseWriter, _ int64) bool {
		http.Error(w, `{"error":"run length exceeds server limit"}`, http.StatusBadRequest)
		return true
	})
	c := testCoordinator(t, Options{
		Workers:     []string{strict.srv.URL, lax.srv.URL},
		MaxInFlight: 1,
	})
	cfg := namedConfig(t, "EOLE_4_64")
	reports, err := c.Sweep(context.Background(), []simsvc.Request{
		req(cfg, "gzip"), req(cfg, "art"), req(cfg, "mcf"),
	})
	if err != nil {
		t.Fatalf("a per-worker 400 must not sink the sweep: %v", err)
	}
	for i, r := range reports {
		if r == nil {
			t.Fatalf("cell %d lost", i)
		}
	}
	if ws := c.Workers()[0]; ws.State == "open" {
		t.Error("clean 400 answers must not open the circuit")
	}

	// When every worker rejects it, the cell fails with the worker's
	// message after the attempt budget.
	lone := newStubWorker(t)
	lone.hook(func(w http.ResponseWriter, _ int64) bool {
		http.Error(w, `{"error":"bad config"}`, http.StatusBadRequest)
		return true
	})
	c2 := testCoordinator(t, Options{Workers: []string{lone.srv.URL}, MaxAttempts: 2})
	reports, err = c2.Sweep(context.Background(), []simsvc.Request{req(cfg, "gzip")})
	if err == nil || reports[0] != nil {
		t.Fatalf("unanimous 400 must fail the cell: err=%v", err)
	}
	if n := lone.simCalls.Load(); n != 2 {
		t.Errorf("400 dispatched %d times, want MaxAttempts=2", n)
	}
}

// TestDeadPeerSurvived: a peer that was never reachable (unknown host,
// wrong port) must not sink the sweep — its cells requeue to the live
// worker and its circuit opens.
func TestDeadPeerSurvived(t *testing.T) {
	good := newStubWorker(t)
	c := testCoordinator(t, Options{
		Workers:          []string{"127.0.0.1:1", good.srv.URL},
		FailureThreshold: 1,
		MaxInFlight:      1,
	})
	cfg := namedConfig(t, "EOLE_4_64")
	reports, err := c.Sweep(context.Background(), []simsvc.Request{
		req(cfg, "gzip"), req(cfg, "art"), req(cfg, "mcf"), req(cfg, "namd"),
	})
	if err != nil {
		t.Fatalf("sweep must survive one dead peer: %v", err)
	}
	for i, r := range reports {
		if r == nil {
			t.Fatalf("cell %d lost", i)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ws := c.Workers()[0]; ws.State == "open" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead peer's circuit never opened")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAllWorkersDead: with every circuit open and nothing in flight
// the run fails fast with ErrNoWorkers instead of parking forever.
func TestAllWorkersDead(t *testing.T) {
	c := testCoordinator(t, Options{
		Workers:          []string{"127.0.0.1:1"},
		FailureThreshold: 1,
		MaxAttempts:      2,
	})
	_, err := c.Sweep(context.Background(), []simsvc.Request{
		req(namedConfig(t, "EOLE_4_64"), "gzip"),
		req(namedConfig(t, "EOLE_6_64"), "gzip"),
	})
	if err == nil {
		t.Fatal("want failure with no live workers")
	}
	if !errors.Is(err, ErrNoWorkers) && !errors.Is(err, context.DeadlineExceeded) {
		// The first cell burns the attempt budget; the rest fail with
		// ErrNoWorkers once the circuit is open.
		t.Logf("joined error: %v", err)
	}
}

// TestProbeRecovery: the prober opens the circuit while /v1/healthz
// fails and closes it again on the first success.
func TestProbeRecovery(t *testing.T) {
	sw := newStubWorker(t)
	sw.healthy.Store(false)
	c := testCoordinator(t, Options{
		Workers:          []string{sw.srv.URL},
		ProbeInterval:    10 * time.Millisecond,
		FailureThreshold: 2,
	})
	waitState := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if ws := c.Workers()[0]; ws.State == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker never became %q (now %q)", want, c.Workers()[0].State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitState("open")
	sw.healthy.Store(true)
	waitState("healthy")
	if v := c.Workers()[0].Version; v != "stub" {
		t.Errorf("probe did not record the worker version: %q", v)
	}
}

// TestCanceledSweep: canceling the sweep context fails queued cells
// with the context error and the run still terminates cleanly.
func TestCanceledSweep(t *testing.T) {
	sw := newStubWorker(t)
	release := make(chan struct{})
	sw.hook(func(http.ResponseWriter, int64) bool {
		<-release // park the dispatch so cancellation races nothing
		return false
	})
	c := testCoordinator(t, Options{Workers: []string{sw.srv.URL}, MaxInFlight: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cfg := namedConfig(t, "EOLE_4_64")
	run, err := c.Start(ctx, []simsvc.Request{req(cfg, "gzip"), req(cfg, "art")})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(release)
	_, err = run.Wait(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in the joined error, got %v", err)
	}
	select {
	case <-run.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("run never terminated after cancel")
	}
	// Our own canceled dispatches say nothing about worker health: the
	// circuit must stay closed so concurrent runs keep dispatching.
	if ws := c.Workers()[0]; ws.State == "open" {
		t.Errorf("run cancellation opened a healthy worker's circuit: %+v", ws)
	}
}

// TestDispatchTimeout: a wedged-but-connectable worker (accepts the
// POST, never answers, healthz fine) must not pin a cell forever when
// DispatchTimeout is set — the timeout feeds the ordinary requeue path
// and the healthy worker completes the sweep.
func TestDispatchTimeout(t *testing.T) {
	wedged, good := newStubWorker(t), newStubWorker(t)
	parked := make(chan struct{})
	wedged.hook(func(http.ResponseWriter, int64) bool {
		<-parked // hold every simulate forever; healthz stays green
		return true
	})
	t.Cleanup(func() { close(parked) })
	c := testCoordinator(t, Options{
		Workers:         []string{wedged.srv.URL, good.srv.URL},
		MaxInFlight:     1,
		DispatchTimeout: 50 * time.Millisecond,
	})
	cfg := namedConfig(t, "EOLE_4_64")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reports, err := c.Sweep(ctx, []simsvc.Request{req(cfg, "gzip"), req(cfg, "art")})
	if err != nil {
		t.Fatalf("sweep must route around a wedged worker: %v", err)
	}
	for i, r := range reports {
		if r == nil {
			t.Fatalf("cell %d lost to the wedged worker", i)
		}
	}
}

// TestRetryAfterOverflow: an absurd Retry-After value must clamp, not
// overflow into a negative delay that defeats the throttle cap.
func TestRetryAfterOverflow(t *testing.T) {
	resp := &http.Response{Header: http.Header{"Retry-After": []string{"10000000000"}}}
	if d := retryAfter(resp); d != maxRetryAfter {
		t.Errorf("retryAfter = %v, want the %v clamp", d, maxRetryAfter)
	}
	resp.Header.Set("Retry-After", "1")
	if d := retryAfter(resp); d != time.Second {
		t.Errorf("retryAfter = %v, want 1s", d)
	}
}

// TestAddStatsCoversAllFields walks simsvc.Stats by reflection and
// fails if addStats drops a numeric field: a counter added to the
// service in a future PR must not silently merge to zero in
// /v1/cluster/workers.
func TestAddStatsCoversAllFields(t *testing.T) {
	var a simsvc.Stats
	v := reflect.ValueOf(&a).Elem()
	for i := 0; i < v.NumField(); i++ {
		switch f := v.Field(i); f.Kind() {
		case reflect.Uint64:
			f.SetUint(1)
		case reflect.Int, reflect.Int64:
			f.SetInt(1)
		case reflect.Float64:
			f.SetFloat(1)
		}
	}
	sum := reflect.ValueOf(addStats(a, a))
	for i := 0; i < sum.NumField(); i++ {
		name := sum.Type().Field(i).Name
		if name == "UopsPerSec" {
			continue // recomputed from the summed totals by the caller
		}
		var got float64
		switch f := sum.Field(i); f.Kind() {
		case reflect.Uint64:
			got = float64(f.Uint())
		case reflect.Int, reflect.Int64:
			got = float64(f.Int())
		case reflect.Float64:
			got = f.Float()
		default:
			t.Fatalf("simsvc.Stats.%s has kind %v: teach addStats (and this test) about it", name, f.Kind())
		}
		if got != 2 {
			t.Errorf("addStats drops simsvc.Stats.%s (sum = %v, want 2)", name, got)
		}
	}
}

// TestStatsMerge: Coordinator.Stats sums reachable workers' service
// counters and attaches per-endpoint attribution.
func TestStatsMerge(t *testing.T) {
	a, b := newStubWorker(t), newStubWorker(t)
	statsFor := func(sims uint64) func(w http.ResponseWriter, r *http.Request) {
		return func(w http.ResponseWriter, _ *http.Request) {
			json.NewEncoder(w).Encode(ServiceStats{
				Stats: simsvc.Stats{SimsRun: sims, SimulatedOps: sims * 1000,
					SimWallTime: time.Duration(sims) * time.Millisecond},
				Endpoints: map[string]EndpointStats{"/v1/simulate": {Requests: sims}},
			})
		}
	}
	// The stub mux has no /v1/stats; bolt one on per worker.
	amux, bmux := http.NewServeMux(), http.NewServeMux()
	amux.HandleFunc("GET /v1/stats", statsFor(3))
	amux.Handle("/", a.srv.Config.Handler)
	bmux.HandleFunc("GET /v1/stats", statsFor(5))
	bmux.Handle("/", b.srv.Config.Handler)
	asrv, bsrv := httptest.NewServer(amux), httptest.NewServer(bmux)
	t.Cleanup(asrv.Close)
	t.Cleanup(bsrv.Close)

	c := testCoordinator(t, Options{Workers: []string{asrv.URL, bsrv.URL}})
	st := c.Stats(context.Background())
	if len(st.Workers) != 2 {
		t.Fatalf("%d workers, want 2", len(st.Workers))
	}
	if st.Service.SimsRun != 8 {
		t.Errorf("merged SimsRun = %d, want 8", st.Service.SimsRun)
	}
	if st.Service.UopsPerSec == 0 {
		t.Error("merged UopsPerSec not recomputed")
	}
	for i, w := range st.Workers {
		if w.Service == nil {
			t.Fatalf("worker %d service stats missing", i)
		}
		if w.Service.Endpoints["/v1/simulate"].Requests == 0 {
			t.Errorf("worker %d endpoint attribution missing", i)
		}
	}
}
