package bpred

import (
	"testing"

	"eole/internal/isa"
)

// The branch unit sits on the per-µ-op fetch path; any allocation in
// OnBranch would dominate the simulator's heap profile. Pin it at zero.
func TestOnBranchZeroAlloc(t *testing.T) {
	u := NewUnit()
	// Warm so TAGE allocation decisions and BTB fills are exercised
	// before measuring.
	lcg := uint64(12345)
	step := func() {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		pc := 0x400000 + (lcg>>33)%4096*4
		taken := lcg>>62&1 == 0
		u.OnBranch(isa.ClassBranch, pc, pc+64, pc+4, taken)
		u.OnBranch(isa.ClassCall, pc+8, pc+512, pc+12, true)
		u.OnBranch(isa.ClassReturn, pc+512, pc+12, pc+516, true)
		u.OnBranch(isa.ClassJumpReg, pc+16, pc+(lcg>>40)%64*4, pc+20, true)
	}
	for i := 0; i < 20_000; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Fatalf("OnBranch allocated %.2f times per 4-branch step, want 0", avg)
	}
}
