// Package bpred implements the front-end branch prediction stack of
// the paper's baseline (Table 1): a TAGE conditional predictor with
// 1 base + 12 tagged components and storage-free confidence estimation
// (Seznec, HPCA 2011), a 2-way set-associative BTB, and a return
// address stack.
//
// The confidence estimator matters beyond branch prediction: EOLE
// late-executes "very high confidence" branches (predictions whose
// confidence counter is saturated), so the classification produced
// here decides the Late Execution branch offload of Figures 4 and 13
// (§3.3 of the paper). The out-of-order core consults the unit once
// per fetched branch; see core.firstFetchPredict for the single
// training point per dynamic branch.
package bpred
