package bpred

import "eole/internal/isa"

// Result describes the front-end's handling of one dynamic branch.
type Result struct {
	// PredTaken is the predicted direction (conditional branches).
	PredTaken bool
	// Mispredicted is true when direction or target was wrong and the
	// fetch stream must be redirected when the branch resolves.
	Mispredicted bool
	// VeryHighConf marks conditional branches whose TAGE provider
	// counter is saturated: EOLE may resolve them in the Late
	// Execution stage (§3.3).
	VeryHighConf bool
	// Conf is the raw confidence class of the direction prediction.
	Conf Confidence
}

// Unit bundles TAGE + BTB + RAS behind the single entry point the
// pipeline uses. It is trace-driven: prediction and training happen
// together, in program order, which idealizes update delay exactly as
// typical trace-driven simulators do.
//
// Beyond the paper's evaluated design, the unit also estimates
// confidence for returns and register-indirect jumps (per-PC
// probabilistic counters over RAS/BTB correctness), enabling the §7
// future-work extension of late-executing those branch kinds too.
type Unit struct {
	Tage *TAGE
	Btb  *BTB
	Ras  *RAS

	// indirConf holds per-PC probabilistic confidence counters for
	// returns and indirect jumps (shared table; PCs rarely collide).
	indirConf [1024]uint8
	rand      uint64

	// Statistics.
	CondBranches   uint64
	CondMispredict uint64
	HighConfCond   uint64
	HighConfWrong  uint64
	IndirectSeen   uint64
	IndirectWrong  uint64
	ReturnsSeen    uint64
	ReturnsWrong   uint64
}

// NewUnit builds the Table 1 front-end predictor stack.
func NewUnit() *Unit {
	return &Unit{
		Tage: NewTAGE(DefaultTageConfig()),
		Btb:  NewBTB(4096, 2),
		Ras:  NewRAS(32),
		rand: 0x6C62272E07BB0142,
	}
}

func (u *Unit) indirSlot(pc uint64) *uint8 {
	return &u.indirConf[(pc>>2)%uint64(len(u.indirConf))]
}

// trainIndirConf applies the probabilistic confidence policy (as for
// conditional branches: slow promotion, reset on a miss).
func (u *Unit) trainIndirConf(pc uint64, correct bool) {
	slot := u.indirSlot(pc)
	if !correct {
		*slot = 0
		return
	}
	if *slot < confSaturated {
		u.rand ^= u.rand << 13
		u.rand ^= u.rand >> 7
		u.rand ^= u.rand << 17
		if u.rand&15 == 0 {
			*slot++
		}
	}
}

// OnBranch processes one dynamic branch: it predicts, compares against
// the actual outcome, trains, and maintains history/BTB/RAS.
//
//   - pc: branch address
//   - class: branch class (conditional, jump, call, return, indirect)
//   - taken: actual direction (true for unconditional)
//   - target: actual next PC when taken
//   - fallthrough_: PC of the next sequential instruction
func (u *Unit) OnBranch(class isa.Class, pc, target, fallthrough_ uint64, taken bool) Result {
	var res Result
	switch class {
	case isa.ClassBranch:
		u.CondBranches++
		p := u.Tage.Predict(pc)
		res.PredTaken = p.Taken
		res.Conf = p.Conf
		res.VeryHighConf = p.Conf == ConfHigh
		if res.VeryHighConf {
			u.HighConfCond++
		}
		if p.Taken != taken {
			res.Mispredicted = true
			u.CondMispredict++
			if res.VeryHighConf {
				u.HighConfWrong++
			}
		}
		// Direction right but target unknown: the BTB must supply it
		// for taken branches fetched this cycle.
		if !res.Mispredicted && taken {
			if t, hit := u.Btb.Lookup(pc); !hit || t != target {
				res.Mispredicted = true
			}
		}
		u.Tage.Update(pc, taken, p)
		u.Tage.PushHistory(taken)
		if taken {
			u.Btb.Insert(pc, target)
		}

	case isa.ClassJump:
		// Direct unconditional: target known after first encounter.
		res.PredTaken = true
		if t, hit := u.Btb.Lookup(pc); !hit || t != target {
			res.Mispredicted = true
		}
		u.Btb.Insert(pc, target)
		u.Tage.PushHistory(true)

	case isa.ClassCall:
		res.PredTaken = true
		if t, hit := u.Btb.Lookup(pc); !hit || t != target {
			res.Mispredicted = true
		}
		u.Btb.Insert(pc, target)
		u.Ras.Push(fallthrough_)
		u.Tage.PushHistory(true)

	case isa.ClassReturn:
		u.ReturnsSeen++
		res.PredTaken = true
		res.VeryHighConf = *u.indirSlot(pc) >= confSaturated
		res.Conf = confidenceClass(*u.indirSlot(pc))
		if t, ok := u.Ras.Pop(); !ok || t != target {
			res.Mispredicted = true
			u.ReturnsWrong++
		}
		u.trainIndirConf(pc, !res.Mispredicted)
		u.Tage.PushHistory(true)

	case isa.ClassJumpReg:
		u.IndirectSeen++
		res.PredTaken = true
		res.VeryHighConf = *u.indirSlot(pc) >= confSaturated
		res.Conf = confidenceClass(*u.indirSlot(pc))
		// Last-target indirect prediction through the BTB.
		if t, hit := u.Btb.Lookup(pc); !hit || t != target {
			res.Mispredicted = true
			u.IndirectWrong++
		}
		u.trainIndirConf(pc, !res.Mispredicted)
		u.Btb.Insert(pc, target)
		u.Tage.PushHistory(true)
	}
	return res
}

// CondMispredictRate returns mispredictions per conditional branch.
func (u *Unit) CondMispredictRate() float64 {
	if u.CondBranches == 0 {
		return 0
	}
	return float64(u.CondMispredict) / float64(u.CondBranches)
}

// HighConfMispredictRate returns the misprediction rate within the
// very-high-confidence class; the paper relies on this being below
// ~0.5% to make LE branch resolution safe.
func (u *Unit) HighConfMispredictRate() float64 {
	if u.HighConfCond == 0 {
		return 0
	}
	return float64(u.HighConfWrong) / float64(u.HighConfCond)
}

// HighConfFraction returns the fraction of conditional branches
// classified very-high-confidence (the LE branch offload pool).
func (u *Unit) HighConfFraction() float64 {
	if u.CondBranches == 0 {
		return 0
	}
	return float64(u.HighConfCond) / float64(u.CondBranches)
}
