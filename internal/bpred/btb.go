package bpred

// BTB is a set-associative branch target buffer with true-LRU
// replacement inside each set. Table 1: "2-way 4K-entry BTB".
type BTB struct {
	ways    int
	setMask uint64
	sets    [][]btbEntry
	lookups uint64
	misses  uint64
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64 // last-use stamp
}

// NewBTB builds a BTB with the given total entries and associativity.
func NewBTB(entries, ways int) *BTB {
	numSets := entries / ways
	if numSets < 1 {
		numSets = 1
	}
	// Round down to a power of two for masking.
	n := 1
	for n*2 <= numSets {
		n *= 2
	}
	sets := make([][]btbEntry, n)
	for i := range sets {
		sets[i] = make([]btbEntry, ways)
	}
	return &BTB{ways: ways, setMask: uint64(n - 1), sets: sets}
}

func (b *BTB) set(pc uint64) []btbEntry { return b.sets[(pc>>2)&b.setMask] }

// Lookup returns the predicted target for pc, if any.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	b.lookups++
	s := b.set(pc)
	for i := range s {
		if s[i].valid && s[i].tag == pc {
			s[i].lru = b.lookups
			return s[i].target, true
		}
	}
	b.misses = b.misses + 1
	return 0, false
}

// Insert records the target of a taken branch, replacing the LRU way.
func (b *BTB) Insert(pc, target uint64) {
	s := b.set(pc)
	victim := 0
	for i := range s {
		if s[i].valid && s[i].tag == pc {
			s[i].target = target
			s[i].lru = b.lookups
			return
		}
		if !s[i].valid {
			victim = i
			break
		}
		if s[i].lru < s[victim].lru {
			victim = i
		}
	}
	s[victim] = btbEntry{valid: true, tag: pc, target: target, lru: b.lookups}
}

// MissRate reports the fraction of lookups that missed.
func (b *BTB) MissRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.misses) / float64(b.lookups)
}

// RAS is a fixed-depth return address stack with wrap-around, matching
// Table 1's "32-entry RAS". Overflow silently wraps (oldest entries are
// lost), as in hardware.
type RAS struct {
	stack []uint64
	top   int
	depth int // valid entries, capped at len(stack)
}

// NewRAS returns a RAS with n entries.
func NewRAS(n int) *RAS {
	return &RAS{stack: make([]uint64, n)}
}

// Push records a return address at a call.
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = addr
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the target of a return. ok is false when the stack has
// underflowed (prediction must then come from the BTB).
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	addr = r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return addr, true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }
