package bpred

// TageConfig sizes the TAGE predictor. The defaults reproduce the
// paper's Table 1 predictor: "TAGE 1+12 components, 15K-entry total,
// 20 cycles min. mis. penalty".
type TageConfig struct {
	// BaseBits is log2 of the base bimodal table entries.
	BaseBits int
	// NumTagged is the number of tagged components (12 in the paper).
	NumTagged int
	// TaggedBits is log2 of the entries per tagged component.
	TaggedBits int
	// TagWidth is the partial tag width in bits.
	TagWidth int
	// MinHist and MaxHist bound the geometric history lengths.
	MinHist, MaxHist int
	// UseAltBits sizes the USE_ALT_ON_NA counter.
	UseAltBits int
	// ResetPeriod is the number of updates between useful-bit halvings.
	ResetPeriod int
}

// DefaultTageConfig returns the Table 1 configuration: a 4K-entry base
// plus 12 × 1K-entry tagged components ≈ 16K entries (the paper says
// "15K-entry total").
func DefaultTageConfig() TageConfig {
	return TageConfig{
		BaseBits:    12,
		NumTagged:   12,
		TaggedBits:  10,
		TagWidth:    12,
		MinHist:     4,
		MaxHist:     640,
		UseAltBits:  4,
		ResetPeriod: 1 << 18,
	}
}

// Confidence classifies a prediction per Seznec's storage-free
// confidence estimation (HPCA 2011): the provider counter value alone
// separates low/medium/high confidence streams.
type Confidence uint8

const (
	// ConfLow: weak provider counter; mispredicts often.
	ConfLow Confidence = iota
	// ConfMed: intermediate counter values.
	ConfMed
	// ConfHigh: saturated provider counter. The paper offloads exactly
	// these ("predictions whose confidence counter is saturated") to
	// Late Execution; their misprediction rate is generally < 0.5%.
	ConfHigh
)

func (c Confidence) String() string {
	switch c {
	case ConfLow:
		return "low"
	case ConfMed:
		return "med"
	default:
		return "high"
	}
}

type tageEntry struct {
	ctr  int8 // 3-bit signed counter: -4..3
	tag  uint16
	u    uint8 // 2-bit useful counter
	conf uint8 // 3-bit probabilistic confidence counter
}

// confSaturated is the confidence counter ceiling; reaching it
// classifies the entry's predictions as very high confidence.
const confSaturated = 7

// TagePrediction carries everything Update needs to finish training,
// so Predict/Update pairs are stateless for the caller.
type TagePrediction struct {
	Taken      bool
	Conf       Confidence
	provider   int // component index; -1 = base
	altTaken   bool
	providerIx uint32
	tags       []uint32
	indices    []uint32
	baseIx     uint32
	usedAlt    bool
	newAlloc   bool
}

// componentFolds keeps a tagged component's three folded-history
// registers adjacent in memory: every prediction and history push
// touches all three together, so one flat slice of these is a cache
// line per component instead of three scattered heap objects.
type componentFolds struct {
	idx FoldedHistory
	tag FoldedHistory
	tg2 FoldedHistory
}

// TAGE is the conditional branch direction predictor.
type TAGE struct {
	cfg      TageConfig
	base     []uint8 // 2-bit bimodal counters
	baseConf []uint8 // 3-bit probabilistic confidence for base entries
	rand     uint64  // deterministic PRNG for probabilistic updates
	comp     [][]tageEntry
	hist     *GlobalHistory
	folds    []componentFolds // per-component index/tag folds
	lens     []int

	useAltOnNA int
	updates    uint64

	// scratch buffers reused across predictions to avoid allocation.
	scratchIdx []uint32
	scratchTag []uint32
}

// NewTAGE builds a TAGE predictor from cfg.
func NewTAGE(cfg TageConfig) *TAGE {
	t := &TAGE{
		cfg:      cfg,
		base:     make([]uint8, 1<<cfg.BaseBits),
		baseConf: make([]uint8, 1<<cfg.BaseBits),
		rand:     0x2545F4914F6CDD1D,
		hist:     NewGlobalHistory(cfg.MaxHist + 64),
		lens:     GeometricLengths(cfg.MinHist, cfg.MaxHist, cfg.NumTagged),
	}
	t.folds = make([]componentFolds, cfg.NumTagged)
	for i := 0; i < cfg.NumTagged; i++ {
		t.comp = append(t.comp, make([]tageEntry, 1<<cfg.TaggedBits))
		t.folds[i] = componentFolds{
			idx: *NewFoldedHistory(t.lens[i], cfg.TaggedBits),
			tag: *NewFoldedHistory(t.lens[i], cfg.TagWidth),
			tg2: *NewFoldedHistory(t.lens[i], cfg.TagWidth-1),
		}
	}
	t.scratchIdx = make([]uint32, cfg.NumTagged)
	t.scratchTag = make([]uint32, cfg.NumTagged)
	// Weakly-taken initial bimodal state.
	for i := range t.base {
		t.base[i] = 2
	}
	return t
}

// HistoryLengths returns the geometric history lengths in use.
func (t *TAGE) HistoryLengths() []int {
	out := make([]int, len(t.lens))
	copy(out, t.lens)
	return out
}

// StorageBits returns the approximate predictor storage budget in bits
// (for Table 2-style reporting).
func (t *TAGE) StorageBits() int {
	bits := len(t.base) * (2 + 3)
	per := 3 + t.cfg.TagWidth + 2 + 3
	for range t.comp {
		bits += (1 << t.cfg.TaggedBits) * per
	}
	return bits
}

func (t *TAGE) index(pc uint64, comp int) uint32 {
	mask := uint32(1<<t.cfg.TaggedBits) - 1
	h := uint32(pc) ^ uint32(pc>>t.cfg.TaggedBits) ^ t.folds[comp].idx.Value() ^ uint32(comp)<<1
	return h & mask
}

func (t *TAGE) tag(pc uint64, comp int) uint32 {
	mask := uint32(1<<t.cfg.TagWidth) - 1
	f := &t.folds[comp]
	return (uint32(pc) ^ f.tag.Value() ^ (f.tg2.Value() << 1)) & mask
}

func (t *TAGE) baseIndex(pc uint64) uint32 {
	return uint32(pc>>2) & (uint32(1<<t.cfg.BaseBits) - 1)
}

// Predict returns the direction prediction and confidence for pc.
func (t *TAGE) Predict(pc uint64) TagePrediction {
	p := TagePrediction{provider: -1, indices: t.scratchIdx, tags: t.scratchTag}
	p.baseIx = t.baseIndex(pc)
	baseTaken := t.base[p.baseIx] >= 2

	alt := -1
	// Same hashes as index()/tag(), with the pc-only terms hoisted out
	// of the per-component loop.
	idxMask := uint32(1<<t.cfg.TaggedBits) - 1
	tagMask := uint32(1<<t.cfg.TagWidth) - 1
	pcIdx := uint32(pc) ^ uint32(pc>>t.cfg.TaggedBits)
	for i := t.cfg.NumTagged - 1; i >= 0; i-- {
		f := &t.folds[i]
		p.indices[i] = (pcIdx ^ f.idx.Value() ^ uint32(i)<<1) & idxMask
		p.tags[i] = (uint32(pc) ^ f.tag.Value() ^ (f.tg2.Value() << 1)) & tagMask
	}
	for i := t.cfg.NumTagged - 1; i >= 0; i-- {
		if t.comp[i][p.indices[i]].tag == uint16(p.tags[i]) {
			if p.provider < 0 {
				p.provider = i
				p.providerIx = p.indices[i]
			} else {
				alt = i
				break
			}
		}
	}

	if p.provider < 0 {
		p.Taken = baseTaken
		p.altTaken = baseTaken
		p.Conf = confidenceClass(t.baseConf[p.baseIx])
		return p
	}

	e := &t.comp[p.provider][p.providerIx]
	provTaken := e.ctr >= 0
	if alt >= 0 {
		p.altTaken = t.comp[alt][p.indices[alt]].ctr >= 0
	} else {
		p.altTaken = baseTaken
	}
	// "Newly allocated" entries (weak counter, never useful) may be
	// overridden by the alternate prediction (USE_ALT_ON_NA).
	p.newAlloc = (e.ctr == 0 || e.ctr == -1) && e.u == 0
	if p.newAlloc && t.useAltOnNA >= 8 {
		p.Taken = p.altTaken
		p.usedAlt = true
	} else {
		p.Taken = provTaken
	}
	p.Conf = confidenceClass(e.conf)
	if p.usedAlt {
		p.Conf = ConfLow
	}
	return p
}

// confidenceClass maps a probabilistic confidence counter to a class.
// The counter is incremented on a correct prediction only with
// probability 1/16 and reset on a misprediction, so reaching
// saturation requires on the order of a hundred consecutive correct
// predictions — which is what keeps the very-high-confidence
// misprediction rate below the ~0.5% the paper's Late Execution of
// branches relies on (Seznec, HPCA 2011).
func confidenceClass(conf uint8) Confidence {
	switch {
	case conf >= confSaturated:
		return ConfHigh
	case conf >= 4:
		return ConfMed
	default:
		return ConfLow
	}
}

// nextRand steps the deterministic xorshift PRNG used for
// probabilistic confidence updates.
func (t *TAGE) nextRand() uint64 {
	t.rand ^= t.rand << 13
	t.rand ^= t.rand >> 7
	t.rand ^= t.rand << 17
	return t.rand
}

// trainConf applies the probabilistic confidence update.
func (t *TAGE) trainConf(conf *uint8, correct bool) {
	if !correct {
		*conf = 0
		return
	}
	if *conf < confSaturated && t.nextRand()&15 == 0 {
		*conf++
	}
}

// Update trains the predictor with the actual outcome. It must be
// called exactly once per Predict, in prediction order, and before
// PushHistory for the same branch.
func (t *TAGE) Update(pc uint64, taken bool, p TagePrediction) {
	t.updates++
	if t.updates%uint64(t.cfg.ResetPeriod) == 0 {
		t.halveUseful()
	}

	correct := p.Taken == taken

	// USE_ALT_ON_NA training.
	if p.provider >= 0 && p.newAlloc {
		e := &t.comp[p.provider][p.providerIx]
		provTaken := e.ctr >= 0
		if provTaken != p.altTaken {
			if p.altTaken == taken {
				if t.useAltOnNA < 15 {
					t.useAltOnNA++
				}
			} else if t.useAltOnNA > 0 {
				t.useAltOnNA--
			}
		}
	}

	if p.provider >= 0 {
		e := &t.comp[p.provider][p.providerIx]
		provTaken := e.ctr >= 0
		t.trainConf(&e.conf, provTaken == taken)
		// Useful bit: provider correct where alternate was wrong.
		if provTaken != p.altTaken {
			if provTaken == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		e.ctr = updateCtr(e.ctr, taken, -4, 3)
		// Also train base when the provider entry is still weak, which
		// accelerates convergence (standard TAGE optimization).
		if p.newAlloc {
			t.base[p.baseIx] = updateBimodal(t.base[p.baseIx], taken)
		}
	} else {
		baseTaken := t.base[p.baseIx] >= 2
		t.trainConf(&t.baseConf[p.baseIx], baseTaken == taken)
		t.base[p.baseIx] = updateBimodal(t.base[p.baseIx], taken)
	}

	// Allocate on misprediction in a longer-history component.
	if !correct && p.provider < t.cfg.NumTagged-1 {
		t.allocate(pc, taken, p)
	}
}

// allocate claims up to one entry with u==0 in a component longer than
// the provider, decaying useful bits when none is free.
func (t *TAGE) allocate(pc uint64, taken bool, p TagePrediction) {
	start := p.provider + 1
	for i := start; i < t.cfg.NumTagged; i++ {
		e := &t.comp[i][p.indices[i]]
		if e.u == 0 {
			e.tag = uint16(p.tags[i])
			e.conf = 0
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			return
		}
	}
	for i := start; i < t.cfg.NumTagged; i++ {
		e := &t.comp[i][p.indices[i]]
		if e.u > 0 {
			e.u--
		}
	}
}

func (t *TAGE) halveUseful() {
	for _, c := range t.comp {
		for i := range c {
			c[i].u >>= 1
		}
	}
}

// PushHistory appends the resolved outcome to the global history and
// advances all folded registers. Unconditional control flow also
// pushes a taken bit (path information), as common TAGE setups do.
func (t *TAGE) PushHistory(taken bool) {
	t.hist.Push(taken)
	in := uint32(t.hist.Bit(0))
	for i := range t.folds {
		f := &t.folds[i]
		out := uint32(t.hist.Bit(t.lens[i])) // shared window length
		f.idx.UpdateBits(in, out)
		f.tag.UpdateBits(in, out)
		f.tg2.UpdateBits(in, out)
	}
}

func updateCtr(ctr int8, taken bool, min, max int8) int8 {
	if taken {
		if ctr < max {
			return ctr + 1
		}
	} else if ctr > min {
		return ctr - 1
	}
	return ctr
}

func updateBimodal(ctr uint8, taken bool) uint8 {
	if taken {
		if ctr < 3 {
			return ctr + 1
		}
	} else if ctr > 0 {
		return ctr - 1
	}
	return ctr
}
