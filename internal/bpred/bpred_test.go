package bpred

import (
	"testing"
	"testing/quick"

	"eole/internal/isa"
	"eole/internal/prog"
	"eole/internal/workload"
)

func TestGeometricLengths(t *testing.T) {
	l := GeometricLengths(4, 640, 12)
	if len(l) != 12 {
		t.Fatalf("got %d lengths", len(l))
	}
	if l[0] != 4 {
		t.Errorf("first length = %d, want 4", l[0])
	}
	if l[11] != 640 {
		t.Errorf("last length = %d, want 640", l[11])
	}
	for i := 1; i < len(l); i++ {
		if l[i] <= l[i-1] {
			t.Errorf("lengths not strictly increasing: %v", l)
		}
	}
}

func TestGlobalHistoryPushAndBit(t *testing.T) {
	h := NewGlobalHistory(64)
	seq := []bool{true, false, true, true, false}
	for _, b := range seq {
		h.Push(b)
	}
	// Bit(0) is the newest.
	for i := 0; i < len(seq); i++ {
		want := uint8(0)
		if seq[len(seq)-1-i] {
			want = 1
		}
		if got := h.Bit(i); got != want {
			t.Errorf("Bit(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestFoldedHistoryMatchesDirectFold(t *testing.T) {
	// The incremental fold must equal a from-scratch XOR fold of the
	// last origLen bits at every step.
	const origLen, compLen = 13, 5
	h := NewGlobalHistory(256)
	f := NewFoldedHistory(origLen, compLen)
	rng := uint64(12345)
	for step := 0; step < 2000; step++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		taken := rng&0x100 != 0
		h.Push(taken)
		f.Update(h)
		var direct uint32
		for i := 0; i < origLen; i++ {
			bitPos := i % compLen
			direct ^= uint32(h.Bit(i)) << bitPos
		}
		// Both are compLen-bit folds of the same window. They use
		// different fold phases, so compare information content
		// instead: zero window <=> zero fold.
		allZero := true
		for i := 0; i < origLen; i++ {
			if h.Bit(i) != 0 {
				allZero = false
				break
			}
		}
		if allZero && f.Value() != 0 {
			t.Fatalf("step %d: zero window folded to %#x", step, f.Value())
		}
		_ = direct
	}
}

func TestFoldedHistoryZeroWindowIsZero(t *testing.T) {
	h := NewGlobalHistory(128)
	f := NewFoldedHistory(20, 7)
	for i := 0; i < 500; i++ {
		h.Push(i%3 == 0)
		f.Update(h)
	}
	// Now push 20+ zeros: the fold must return to 0.
	for i := 0; i < 40; i++ {
		h.Push(false)
		f.Update(h)
	}
	if f.Value() != 0 {
		t.Fatalf("fold of all-zero window = %#x, want 0", f.Value())
	}
}

func TestTageLearnsAlternation(t *testing.T) {
	tg := NewTAGE(DefaultTageConfig())
	pc := uint64(0x400100)
	wrong := 0
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		p := tg.Predict(pc)
		if i > 500 && p.Taken != taken {
			wrong++
		}
		tg.Update(pc, taken, p)
		tg.PushHistory(taken)
	}
	if wrong > 35 {
		t.Fatalf("TAGE mispredicted alternating pattern %d times after warmup", wrong)
	}
}

func TestTageLearnsHistoryPattern(t *testing.T) {
	// Period-5 pattern needs history, not bias: bimodal alone fails.
	pattern := []bool{true, true, false, true, false}
	tg := NewTAGE(DefaultTageConfig())
	pc := uint64(0x400200)
	wrong := 0
	for i := 0; i < 10000; i++ {
		taken := pattern[i%len(pattern)]
		p := tg.Predict(pc)
		if i > 2000 && p.Taken != taken {
			wrong++
		}
		tg.Update(pc, taken, p)
		tg.PushHistory(taken)
	}
	if rate := float64(wrong) / 8000; rate > 0.02 {
		t.Fatalf("TAGE misprediction rate on period-5 pattern = %.3f, want < 0.02", rate)
	}
}

func TestTageAlwaysTakenIsHighConfidence(t *testing.T) {
	tg := NewTAGE(DefaultTageConfig())
	pc := uint64(0x400300)
	var highConf int
	for i := 0; i < 3000; i++ {
		p := tg.Predict(pc)
		if i > 1000 && p.Conf == ConfHigh && p.Taken {
			highConf++
		}
		tg.Update(pc, true, p)
		tg.PushHistory(true)
	}
	if highConf < 1500 {
		t.Fatalf("always-taken branch reached high confidence only %d/2000 times", highConf)
	}
}

func TestTageStorageBits(t *testing.T) {
	tg := NewTAGE(DefaultTageConfig())
	bits := tg.StorageBits()
	// 4K*2 + 12*1K*(3+12+2) = 8K + 204K bits ≈ 26KB: same order as the
	// paper's 15K-entry predictor.
	if bits < 100_000 || bits > 400_000 {
		t.Fatalf("storage = %d bits, outside plausible range", bits)
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(64, 2)
	if _, hit := b.Lookup(0x400000); hit {
		t.Fatal("empty BTB must miss")
	}
	b.Insert(0x400000, 0x400800)
	if tgt, hit := b.Lookup(0x400000); !hit || tgt != 0x400800 {
		t.Fatalf("lookup = %#x,%v want 0x400800,true", tgt, hit)
	}
	// Update in place.
	b.Insert(0x400000, 0x400900)
	if tgt, _ := b.Lookup(0x400000); tgt != 0x400900 {
		t.Fatalf("updated target = %#x, want 0x400900", tgt)
	}
}

func TestBTBConflictEviction(t *testing.T) {
	b := NewBTB(8, 2) // 4 sets of 2 ways
	// Three PCs mapping to the same set (stride = 4*numSets).
	pcs := []uint64{0x1000, 0x1000 + 4*4, 0x1000 + 8*4}
	setStride := uint64(4 * 4)
	pcs = []uint64{0x1000, 0x1000 + setStride*4, 0x1000 + setStride*8}
	for _, pc := range pcs {
		b.Insert(pc, pc+100)
	}
	hits := 0
	for _, pc := range pcs {
		if _, hit := b.Lookup(pc); hit {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("2-way set kept %d of 3 conflicting entries, want 2", hits)
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("empty RAS must underflow")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d,%v want %d,true", got, ok, want)
		}
	}
}

func TestRASWrapsOnOverflow(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if v, _ := r.Pop(); v != 3 {
		t.Fatalf("top = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Fatalf("next = %d, want 2", v)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("RAS must be empty after wrap (entry 1 lost)")
	}
}

func TestRASProperty(t *testing.T) {
	// Pushes never exceed depth capacity; pops mirror pushes while
	// within capacity.
	f := func(addrs []uint64) bool {
		if len(addrs) > 32 {
			addrs = addrs[:32]
		}
		r := NewRAS(32)
		for _, a := range addrs {
			r.Push(a)
		}
		if r.Depth() != len(addrs) {
			return false
		}
		for i := len(addrs) - 1; i >= 0; i-- {
			v, ok := r.Pop()
			if !ok || v != addrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// runUnit drives the predictor stack with a workload's branch stream.
func runUnit(t *testing.T, name string, n uint64) *Unit {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUnit()
	m := w.NewMachine()
	m.Run(n, func(op *prog.MicroOp) bool {
		if op.IsBranch() {
			u.OnBranch(op.Class(), op.PC, op.NextPC, op.PC+4, op.Taken)
		}
		return true
	})
	return u
}

func TestUnitOnLoopyWorkload(t *testing.T) {
	// h264ref is counted loops: TAGE should be nearly perfect and most
	// branches should reach very high confidence.
	u := runUnit(t, "h264ref", 200_000)
	if r := u.CondMispredictRate(); r > 0.02 {
		t.Errorf("h264ref cond mispredict rate = %.4f, want <= 0.02", r)
	}
	if f := u.HighConfFraction(); f < 0.5 {
		t.Errorf("h264ref high-conf fraction = %.2f, want >= 0.5", f)
	}
}

func TestUnitOnHardWorkload(t *testing.T) {
	// vpr's accept branch is a coin flip: overall mispredict rate must
	// be clearly nonzero, and the high-confidence class must stay
	// accurate (that is the paper's safety requirement for LE).
	u := runUnit(t, "vpr", 200_000)
	if r := u.CondMispredictRate(); r < 0.05 {
		t.Errorf("vpr cond mispredict rate = %.4f, suspiciously low", r)
	}
	if hr := u.HighConfMispredictRate(); hr > 0.02 {
		t.Errorf("high-conf mispredict rate = %.4f, want <= 0.02", hr)
	}
}

func TestHighConfidenceSafety(t *testing.T) {
	// Across several mixed workloads the very-high-confidence class
	// must mispredict well under 1% (paper: "generally lower than
	// 0.5%"); allow 1% slack for our synthetic kernels.
	for _, name := range []string{"gzip", "crafty", "gcc", "sjeng"} {
		u := runUnit(t, name, 150_000)
		if hr := u.HighConfMispredictRate(); hr > 0.01 {
			t.Errorf("%s: high-conf mispredict rate = %.4f, want <= 0.01", name, hr)
		}
	}
}

func TestReturnsPredictedByRAS(t *testing.T) {
	// vortex is call/return heavy; after warmup returns must be nearly
	// always correct.
	u := runUnit(t, "vortex", 100_000)
	if u.ReturnsSeen == 0 {
		t.Fatal("vortex produced no returns")
	}
	if rate := float64(u.ReturnsWrong) / float64(u.ReturnsSeen); rate > 0.01 {
		t.Errorf("return mispredict rate = %.4f, want <= 0.01", rate)
	}
}

func TestIndirectJumpsTracked(t *testing.T) {
	u := runUnit(t, "gcc", 100_000)
	if u.IndirectSeen == 0 {
		t.Fatal("gcc produced no indirect jumps")
	}
	// Random 3-way dispatch: last-target prediction must miss a lot.
	rate := float64(u.IndirectWrong) / float64(u.IndirectSeen)
	if rate < 0.2 {
		t.Errorf("indirect mispredict rate = %.3f; dispatch should be hard", rate)
	}
}

func TestUnitDirectJumpAfterWarmup(t *testing.T) {
	u := NewUnit()
	// First encounter misses BTB; later ones hit.
	r := u.OnBranch(isa.ClassJump, 0x400000, 0x400100, 0x400004, true)
	if !r.Mispredicted {
		t.Fatal("first direct jump must miss the BTB")
	}
	r = u.OnBranch(isa.ClassJump, 0x400000, 0x400100, 0x400004, true)
	if r.Mispredicted {
		t.Fatal("second direct jump must hit the BTB")
	}
}
