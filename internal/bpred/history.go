package bpred

import "math"

// GlobalHistory is a long circular branch-direction history. TAGE
// components index it through FoldedHistory registers, which maintain
// an O(1) folded hash of the most recent L bits.
type GlobalHistory struct {
	bits []uint8
	head int // position of the most recent bit
}

// NewGlobalHistory returns a history holding capacity bits (rounded up
// to a power of two).
func NewGlobalHistory(capacity int) *GlobalHistory {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &GlobalHistory{bits: make([]uint8, n)}
}

// Len returns the history capacity in bits.
func (h *GlobalHistory) Len() int { return len(h.bits) }

// Push records a branch outcome as the newest history bit.
func (h *GlobalHistory) Push(taken bool) {
	h.head = (h.head + 1) & (len(h.bits) - 1)
	if taken {
		h.bits[h.head] = 1
	} else {
		h.bits[h.head] = 0
	}
}

// Bit returns the i'th most recent outcome (i = 0 is the newest).
func (h *GlobalHistory) Bit(i int) uint8 {
	return h.bits[(h.head-i)&(len(h.bits)-1)]
}

// FoldedHistory incrementally maintains a compLen-bit fold (XOR) of the
// most recent origLen history bits, the classic TAGE circular-shift
// register construction.
type FoldedHistory struct {
	value   uint32
	origLen int
	compLen int
	outPos  int // position of the evicted bit within the fold
}

// NewFoldedHistory folds origLen history bits into compLen bits.
func NewFoldedHistory(origLen, compLen int) *FoldedHistory {
	if compLen <= 0 {
		compLen = 1
	}
	return &FoldedHistory{
		origLen: origLen,
		compLen: compLen,
		outPos:  origLen % compLen,
	}
}

// Value returns the current folded hash. value is kept masked to
// compLen bits by UpdateBits (and starts at zero), so this is a plain
// load on the TAGE/VTAGE lookup paths.
func (f *FoldedHistory) Value() uint32 { return f.value }

// Update shifts in the newest history bit; h must already contain it
// (call after GlobalHistory.Push).
func (f *FoldedHistory) Update(h *GlobalHistory) {
	f.UpdateBits(uint32(h.Bit(0)), uint32(h.Bit(f.origLen)))
}

// UpdateBits is Update with the in/out bits already read from the
// history: in is the newest bit, out the bit falling out of the
// origLen window. Callers that keep several folds over the same window
// (TAGE's index and tag folds share a component's history length) read
// the two bits once and fan them out.
func (f *FoldedHistory) UpdateBits(in, out uint32) {
	f.value = (f.value << 1) | in
	f.value ^= out << f.outPos
	f.value ^= f.value >> f.compLen
	f.value &= (1 << f.compLen) - 1
}

// GeometricLengths returns n history lengths forming a geometric
// series from min to max (inclusive), as used by TAGE and VTAGE.
func GeometricLengths(min, max, n int) []int {
	if n == 1 {
		return []int{min}
	}
	out := make([]int, n)
	ratio := float64(max) / float64(min)
	for i := 0; i < n; i++ {
		exp := float64(i) / float64(n-1)
		l := int(0.5 + float64(min)*math.Pow(ratio, exp))
		if i > 0 && l <= out[i-1] {
			l = out[i-1] + 1
		}
		out[i] = l
	}
	return out
}
