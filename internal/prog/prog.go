// Package prog provides a small assembler-style program builder and a
// functional interpreter for the µ-op IR of internal/isa.
//
// The EOLE reproduction is trace-driven: a workload is a Program that
// the Machine executes functionally, producing the dynamic µ-op stream
// (register values, effective addresses, branch outcomes, flag
// results). The timing model in internal/pipeline consumes that stream
// and never re-executes anything, mirroring how trace-driven simulators
// substitute for gem5's execute-in-execute model.
package prog

import (
	"fmt"
	"sort"

	"eole/internal/isa"
)

// CodeBase is the virtual address of instruction 0. Instruction i has
// PC = CodeBase + 4*i, so PCs look like x86_64 text addresses and
// predictor index hashing behaves realistically.
const CodeBase uint64 = 0x400000

// Program is an executable list of static instructions.
type Program struct {
	Name   string
	Code   []isa.Inst
	labels map[string]int
}

// PC returns the virtual program counter of static instruction i.
func (p *Program) PC(i int) uint64 { return CodeBase + uint64(i)*4 }

// IndexOf returns the static instruction index of the given PC.
func (p *Program) IndexOf(pc uint64) int { return int((pc - CodeBase) / 4) }

// LabelAddr returns the static index of a label defined during building.
func (p *Program) LabelAddr(name string) (int, bool) {
	i, ok := p.labels[name]
	return i, ok
}

// Disasm renders the program as readable assembly with labels.
func (p *Program) Disasm() string {
	byIndex := map[int][]string{}
	for name, idx := range p.labels {
		byIndex[idx] = append(byIndex[idx], name)
	}
	out := ""
	for i, in := range p.Code {
		names := byIndex[i]
		sort.Strings(names)
		for _, n := range names {
			out += n + ":\n"
		}
		out += fmt.Sprintf("  %4d: %s\n", i, in)
	}
	return out
}

// Builder assembles a Program with forward label references.
type Builder struct {
	name   string
	code   []isa.Inst
	labels map[string]int
	fixups []fixup
	errs   []error
}

type fixup struct {
	index int
	label string
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: map[string]int{}}
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("prog: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.code)
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) { b.code = append(b.code, in) }

func (b *Builder) emitBranch(op isa.Opcode, s1, s2 isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{len(b.code), label})
	b.code = append(b.code, isa.Inst{Op: op, Dst: isa.RegNone, Src1: s1, Src2: s2})
}

// Three-operand integer ALU ops.
func (b *Builder) Add(d, s1, s2 isa.Reg) { b.Emit(isa.Inst{Op: isa.OpAdd, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Sub(d, s1, s2 isa.Reg) { b.Emit(isa.Inst{Op: isa.OpSub, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) And(d, s1, s2 isa.Reg) { b.Emit(isa.Inst{Op: isa.OpAnd, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Or(d, s1, s2 isa.Reg)  { b.Emit(isa.Inst{Op: isa.OpOr, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Xor(d, s1, s2 isa.Reg) { b.Emit(isa.Inst{Op: isa.OpXor, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Shl(d, s1, s2 isa.Reg) { b.Emit(isa.Inst{Op: isa.OpShl, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Shr(d, s1, s2 isa.Reg) { b.Emit(isa.Inst{Op: isa.OpShr, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Sar(d, s1, s2 isa.Reg) { b.Emit(isa.Inst{Op: isa.OpSar, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Sltu(d, s1, s2 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpSltu, Dst: d, Src1: s1, Src2: s2})
}
func (b *Builder) Slt(d, s1, s2 isa.Reg) { b.Emit(isa.Inst{Op: isa.OpSlt, Dst: d, Src1: s1, Src2: s2}) }

// Immediate-form ALU ops.
func (b *Builder) Addi(d, s isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpAddi, Dst: d, Src1: s, Src2: isa.RegNone, Imm: imm})
}
func (b *Builder) Andi(d, s isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpAndi, Dst: d, Src1: s, Src2: isa.RegNone, Imm: imm})
}
func (b *Builder) Ori(d, s isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpOri, Dst: d, Src1: s, Src2: isa.RegNone, Imm: imm})
}
func (b *Builder) Xori(d, s isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpXori, Dst: d, Src1: s, Src2: isa.RegNone, Imm: imm})
}
func (b *Builder) Shli(d, s isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpShli, Dst: d, Src1: s, Src2: isa.RegNone, Imm: imm})
}
func (b *Builder) Shri(d, s isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpShri, Dst: d, Src1: s, Src2: isa.RegNone, Imm: imm})
}
func (b *Builder) Movi(d isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpMovi, Dst: d, Src1: isa.RegNone, Src2: isa.RegNone, Imm: imm})
}
func (b *Builder) Mov(d, s isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpMov, Dst: d, Src1: s, Src2: isa.RegNone})
}

// Multi-cycle integer ops.
func (b *Builder) Mul(d, s1, s2 isa.Reg) { b.Emit(isa.Inst{Op: isa.OpMul, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Div(d, s1, s2 isa.Reg) { b.Emit(isa.Inst{Op: isa.OpDiv, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Rem(d, s1, s2 isa.Reg) { b.Emit(isa.Inst{Op: isa.OpRem, Dst: d, Src1: s1, Src2: s2}) }

// Floating-point ops (registers hold float64 bit patterns).
func (b *Builder) FAdd(d, s1, s2 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpFAdd, Dst: d, Src1: s1, Src2: s2})
}
func (b *Builder) FSub(d, s1, s2 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpFSub, Dst: d, Src1: s1, Src2: s2})
}
func (b *Builder) FMul(d, s1, s2 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpFMul, Dst: d, Src1: s1, Src2: s2})
}
func (b *Builder) FDiv(d, s1, s2 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpFDiv, Dst: d, Src1: s1, Src2: s2})
}
func (b *Builder) FSqrt(d, s isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpFSqrt, Dst: d, Src1: s, Src2: isa.RegNone})
}
func (b *Builder) FCmp(d, s1, s2 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpFCmp, Dst: d, Src1: s1, Src2: s2})
}
func (b *Builder) FCvt(d, s isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpFCvt, Dst: d, Src1: s, Src2: isa.RegNone})
}

// Memory ops. Effective address = base + disp.
func (b *Builder) Ld(d, base isa.Reg, disp int64) {
	b.Emit(isa.Inst{Op: isa.OpLd, Dst: d, Src1: base, Src2: isa.RegNone, Imm: disp})
}
func (b *Builder) St(val, base isa.Reg, disp int64) {
	b.Emit(isa.Inst{Op: isa.OpSt, Dst: isa.RegNone, Src1: base, Src2: val, Imm: disp})
}

// Control flow.
func (b *Builder) Beq(s1, s2 isa.Reg, label string)  { b.emitBranch(isa.OpBeq, s1, s2, label) }
func (b *Builder) Bne(s1, s2 isa.Reg, label string)  { b.emitBranch(isa.OpBne, s1, s2, label) }
func (b *Builder) Blt(s1, s2 isa.Reg, label string)  { b.emitBranch(isa.OpBlt, s1, s2, label) }
func (b *Builder) Bge(s1, s2 isa.Reg, label string)  { b.emitBranch(isa.OpBge, s1, s2, label) }
func (b *Builder) Bltu(s1, s2 isa.Reg, label string) { b.emitBranch(isa.OpBltu, s1, s2, label) }
func (b *Builder) Beqz(s isa.Reg, label string)      { b.emitBranch(isa.OpBeqz, s, isa.RegNone, label) }
func (b *Builder) Bnez(s isa.Reg, label string)      { b.emitBranch(isa.OpBnez, s, isa.RegNone, label) }

func (b *Builder) Jmp(label string) {
	b.fixups = append(b.fixups, fixup{len(b.code), label})
	b.code = append(b.code, isa.Inst{Op: isa.OpJmp, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
}

// Call emits a direct call that writes the return address to LinkReg.
func (b *Builder) Call(label string) {
	b.fixups = append(b.fixups, fixup{len(b.code), label})
	b.code = append(b.code, isa.Inst{Op: isa.OpCall, Dst: isa.LinkReg, Src1: isa.RegNone, Src2: isa.RegNone})
}

// Ret emits an indirect jump through LinkReg.
func (b *Builder) Ret() {
	b.Emit(isa.Inst{Op: isa.OpRet, Dst: isa.RegNone, Src1: isa.LinkReg, Src2: isa.RegNone})
}

// Jr emits an indirect jump through the given register.
func (b *Builder) Jr(s isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpJr, Dst: isa.RegNone, Src1: s, Src2: isa.RegNone})
}

// Halt stops the interpreter.
func (b *Builder) Halt() {
	b.Emit(isa.Inst{Op: isa.OpHalt, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
}

// Xorshift emits a 3-op xorshift64 PRNG step on reg, using tmp as
// scratch. This lets kernels generate data-dependent randomness inside
// the IR, the way real benchmarks compute hashes and RNGs.
func (b *Builder) Xorshift(reg, tmp isa.Reg) {
	b.Shli(tmp, reg, 13)
	b.Xor(reg, reg, tmp)
	b.Shri(tmp, reg, 7)
	b.Xor(reg, reg, tmp)
	b.Shli(tmp, reg, 17)
	b.Xor(reg, reg, tmp)
}

// Build resolves labels and returns the program.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("prog: undefined label %q", f.label))
			continue
		}
		b.code[f.index].Target = idx
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for i, in := range b.code {
		if in.Class().IsBranch() && !in.Class().IsIndirect() && in.Op != isa.OpHalt {
			if in.Target < 0 || in.Target >= len(b.code) {
				return nil, fmt.Errorf("prog: instruction %d (%v) branches out of range", i, in)
			}
		}
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	return &Program{Name: b.name, Code: b.code, labels: labels}, nil
}

// MustBuild is Build that panics on error, for static kernels.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
