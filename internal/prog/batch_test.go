package prog_test

import (
	"testing"

	"eole/internal/isa"
	"eole/internal/prog"
	"eole/internal/workload"
)

// The detailed core drains its source exclusively through NextBatch
// into a reusable buffer. This property test pins the batched path to
// the one-at-a-time path: for any batch size, the concatenation of
// NextBatch fills must be µ-op-for-µ-op identical to repeated Next
// calls on an identical machine, including the final short fill and
// the end-of-stream transition.
func TestMachineSourceBatchEqualsStep(t *testing.T) {
	const total = 50_000
	for _, w := range workload.All() {
		for _, batch := range []int{1, 3, 7, 256} {
			ref := prog.MachineSource{M: w.NewMachine()}
			got := prog.MachineSource{M: w.NewMachine()}

			buf := make([]prog.MicroOp, batch)
			var refU prog.MicroOp
			seen := 0
			for seen < total {
				n := got.NextBatch(buf)
				for i := 0; i < n; i++ {
					if !ref.Next(&refU) {
						t.Fatalf("%s batch=%d: Next dry at µ-op %d but NextBatch produced one", w.Name, batch, seen+i)
					}
					if buf[i] != refU {
						t.Fatalf("%s batch=%d: µ-op %d mismatch\n batch: %+v\n  step: %+v", w.Name, batch, seen+i, buf[i], refU)
					}
				}
				seen += n
				if n < batch {
					if ref.Next(&refU) {
						t.Fatalf("%s batch=%d: NextBatch dry at µ-op %d but Next produced one", w.Name, batch, seen)
					}
					break
				}
			}
		}
	}
}

// A short fill must leave the tail of the destination untouched
// (callers track the returned count; stale entries must not masquerade
// as fresh µ-ops). Workload programs loop indefinitely, so this uses a
// small finite program that halts mid-batch.
func TestNextBatchShortFillLeavesTail(t *testing.T) {
	b := prog.NewBuilder("finite")
	b.Movi(isa.Reg(1), 100)
	b.Label("loop")
	b.Addi(isa.Reg(1), isa.Reg(1), -1)
	b.Bnez(isa.Reg(1), "loop")
	b.Halt()
	s := prog.MachineSource{M: prog.NewMachine(b.MustBuild())}

	buf := make([]prog.MicroOp, 64)
	sentinel := prog.MicroOp{Seq: ^uint64(0), PC: 0xDEAD}
	sawShort := false
	for {
		for i := range buf {
			buf[i] = sentinel
		}
		n := s.NextBatch(buf)
		for i := n; i < len(buf); i++ {
			if buf[i] != sentinel {
				t.Fatalf("NextBatch(n=%d) wrote past its return count at index %d", n, i)
			}
		}
		if n == 0 {
			break
		}
		if n < len(buf) {
			sawShort = true
		}
	}
	if !sawShort {
		t.Fatal("program never produced a short (0 < n < len) fill; test is vacuous")
	}
}
