package prog

import (
	"fmt"
	"math"

	"eole/internal/isa"
)

// MicroOp is one dynamic instruction as produced by the functional
// interpreter: the static µ-op plus everything the timing model and
// the predictors need to know about this execution of it.
type MicroOp struct {
	Seq   uint64 // dynamic sequence number, starting at 0
	Index int    // static instruction index
	PC    uint64 // virtual PC

	Op   isa.Opcode
	Dst  isa.Reg
	Src1 isa.Reg
	Src2 isa.Reg

	Value uint64    // result written to Dst (if Dst is valid)
	Flags isa.Flags // architectural flags produced (if Op.WritesFlags)

	Addr      uint64 // effective address for loads/stores
	StoreData uint64 // value written by stores

	Taken  bool   // branch direction (branches only)
	NextPC uint64 // PC of the next dynamic instruction
}

// Class returns the execution class of the µ-op.
func (u *MicroOp) Class() isa.Class { return u.Op.Class() }

// IsBranch reports whether the µ-op redirects control flow.
func (u *MicroOp) IsBranch() bool { return u.Op.Class().IsBranch() }

// VPEligible reports value-prediction eligibility (see isa.Inst).
func (u *MicroOp) VPEligible() bool {
	return u.Dst.Valid() && !u.Op.Class().IsBranch()
}

// pageBits/pageWords define the sparse memory page geometry: 4KB pages
// of 512 8-byte words.
const (
	pageBits  = 9
	pageWords = 1 << pageBits
	pageMask  = pageWords - 1
)

// Memory is a sparse 64-bit word-addressable memory. Addresses are byte
// addresses; accesses are 8-byte (the IR has a single access size,
// which keeps the cache model focused on locality rather than
// sub-word handling).
type Memory struct {
	pages map[uint64]*[pageWords]uint64

	// One-entry page cache: workload kernels access runs of the same
	// page (streams, stack frames), so most Read/Write calls skip the
	// map probe entirely. lastKey is ^0 when empty (no page has that
	// key: addresses shift right by 12).
	lastKey  uint64
	lastPage *[pageWords]uint64
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: map[uint64]*[pageWords]uint64{}, lastKey: ^uint64(0)}
}

func (m *Memory) page(addr uint64, alloc bool) *[pageWords]uint64 {
	key := addr >> (pageBits + 3)
	if key == m.lastKey {
		return m.lastPage
	}
	p := m.pages[key]
	if p == nil && alloc {
		p = new([pageWords]uint64)
		m.pages[key] = p
	}
	if p != nil {
		m.lastKey, m.lastPage = key, p
	}
	return p
}

// Read returns the word at addr (byte address, rounded down to 8).
func (m *Memory) Read(addr uint64) uint64 {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[(addr>>3)&pageMask]
}

// Write stores the word at addr.
func (m *Memory) Write(addr, val uint64) {
	m.page(addr, true)[(addr>>3)&pageMask] = val
}

// Footprint returns the number of distinct pages touched.
func (m *Memory) Footprint() int { return len(m.pages) }

// Machine executes a Program functionally, one µ-op per Step.
type Machine struct {
	Prog *Program
	Regs [isa.NumArchRegs]uint64
	Mem  *Memory

	pc     int // static instruction index
	seq    uint64
	halted bool
}

// NewMachine returns a Machine at the entry of p with zeroed state.
func NewMachine(p *Program) *Machine {
	return &Machine{Prog: p, Mem: NewMemory()}
}

// Halted reports whether the program has executed OpHalt.
func (m *Machine) Halted() bool { return m.halted }

// Seq returns the number of µ-ops executed so far.
func (m *Machine) Seq() uint64 { return m.seq }

// SetReg initializes an architectural register (for workload setup).
func (m *Machine) SetReg(r isa.Reg, v uint64) { m.Regs[r] = v }

// SetFReg initializes an FP register from a float64.
func (m *Machine) SetFReg(r isa.Reg, v float64) { m.Regs[r] = math.Float64bits(v) }

func (m *Machine) reg(r isa.Reg) uint64 {
	if !r.Valid() {
		return 0
	}
	return m.Regs[r]
}

func f64(v uint64) float64    { return math.Float64frombits(v) }
func bitsOf(f float64) uint64 { return math.Float64bits(f) }

// Step executes one µ-op and returns its dynamic record. ok is false
// once the machine has halted.
func (m *Machine) Step() (MicroOp, bool) {
	var u MicroOp
	ok := m.StepInto(&u)
	return u, ok
}

// StepInto executes one µ-op directly into *u, sparing the caller a
// copy of the record (the batch source fills its buffer this way). *u
// is untouched when the machine has halted.
func (m *Machine) StepInto(u *MicroOp) bool {
	if m.halted {
		return false
	}
	if m.pc < 0 || m.pc >= len(m.Prog.Code) {
		panic(fmt.Sprintf("prog: %s: pc %d out of range", m.Prog.Name, m.pc))
	}
	in := &m.Prog.Code[m.pc]
	*u = MicroOp{
		Seq:   m.seq,
		Index: m.pc,
		PC:    m.Prog.PC(m.pc),
		Op:    in.Op,
		Dst:   in.Dst,
		Src1:  in.Src1,
		Src2:  in.Src2,
	}
	m.seq++

	a, bv := m.reg(in.Src1), m.reg(in.Src2)
	next := m.pc + 1

	switch in.Op {
	case isa.OpAdd:
		u.Value = a + bv
	case isa.OpSub:
		u.Value = a - bv
	case isa.OpAddi:
		u.Value = a + uint64(in.Imm)
	case isa.OpAnd:
		u.Value = a & bv
	case isa.OpAndi:
		u.Value = a & uint64(in.Imm)
	case isa.OpOr:
		u.Value = a | bv
	case isa.OpOri:
		u.Value = a | uint64(in.Imm)
	case isa.OpXor:
		u.Value = a ^ bv
	case isa.OpXori:
		u.Value = a ^ uint64(in.Imm)
	case isa.OpShl:
		u.Value = a << (bv & 63)
	case isa.OpShli:
		u.Value = a << (uint64(in.Imm) & 63)
	case isa.OpShr:
		u.Value = a >> (bv & 63)
	case isa.OpShri:
		u.Value = a >> (uint64(in.Imm) & 63)
	case isa.OpSar:
		u.Value = uint64(int64(a) >> (bv & 63))
	case isa.OpMovi:
		u.Value = uint64(in.Imm)
	case isa.OpMov:
		u.Value = a
	case isa.OpSltu:
		if a < bv {
			u.Value = 1
		}
	case isa.OpSlt:
		if int64(a) < int64(bv) {
			u.Value = 1
		}
	case isa.OpMul:
		u.Value = a * bv
	case isa.OpDiv:
		if bv == 0 {
			u.Value = ^uint64(0)
		} else {
			u.Value = a / bv
		}
	case isa.OpRem:
		if bv == 0 {
			u.Value = a
		} else {
			u.Value = a % bv
		}
	case isa.OpFAdd:
		u.Value = bitsOf(f64(a) + f64(bv))
	case isa.OpFSub:
		u.Value = bitsOf(f64(a) - f64(bv))
	case isa.OpFMul:
		u.Value = bitsOf(f64(a) * f64(bv))
	case isa.OpFDiv:
		u.Value = bitsOf(f64(a) / f64(bv))
	case isa.OpFSqrt:
		u.Value = bitsOf(math.Sqrt(f64(a)))
	case isa.OpFCmp:
		if f64(a) < f64(bv) {
			u.Value = 1
		}
	case isa.OpFCvt:
		u.Value = bitsOf(float64(int64(a)))
	case isa.OpLd:
		u.Addr = a + uint64(in.Imm)
		u.Value = m.Mem.Read(u.Addr)
	case isa.OpSt:
		u.Addr = a + uint64(in.Imm)
		u.StoreData = bv
		m.Mem.Write(u.Addr, bv)
	case isa.OpBeq:
		u.Taken = a == bv
	case isa.OpBne:
		u.Taken = a != bv
	case isa.OpBlt:
		u.Taken = int64(a) < int64(bv)
	case isa.OpBge:
		u.Taken = int64(a) >= int64(bv)
	case isa.OpBltu:
		u.Taken = a < bv
	case isa.OpBeqz:
		u.Taken = a == 0
	case isa.OpBnez:
		u.Taken = a != 0
	case isa.OpJmp:
		u.Taken = true
		next = in.Target
	case isa.OpCall:
		u.Taken = true
		u.Value = m.Prog.PC(m.pc + 1)
		next = in.Target
	case isa.OpRet, isa.OpJr:
		u.Taken = true
		next = m.Prog.IndexOf(a)
	case isa.OpHalt:
		m.halted = true
		u.NextPC = u.PC
		return true
	default:
		panic(fmt.Sprintf("prog: unimplemented opcode %v", in.Op))
	}

	if in.Op.Class() == isa.ClassBranch && u.Taken {
		next = in.Target
	}
	if in.Dst.Valid() {
		m.Regs[in.Dst] = u.Value
	}
	if in.Op.WritesFlags() {
		imm := uint64(in.Imm)
		if !in.Op.HasImm() {
			imm = bv
		}
		u.Flags = isa.TrueFlags(in.Op, a, imm, u.Value)
	}

	m.pc = next
	u.NextPC = m.Prog.PC(next)
	return true
}

// Run executes up to n µ-ops, invoking f for each. It stops early if
// the machine halts or f returns false. It returns the number of µ-ops
// executed.
func (m *Machine) Run(n uint64, f func(*MicroOp) bool) uint64 {
	var done uint64
	for done < n {
		u, ok := m.Step()
		if !ok {
			break
		}
		done++
		if f != nil && !f(&u) {
			break
		}
	}
	return done
}

// Source adapts a Machine to a pull-based µ-op stream.
type Source interface {
	// Next fills *u with the next dynamic µ-op and reports whether one
	// was available.
	Next(u *MicroOp) bool
}

// BatchSource is the bulk fast path of Source. Per-µ-op Next calls
// through an interface cost a dynamic dispatch each and force the
// callee-provided *MicroOp to escape; a consumer that drains the
// stream (the cycle-level core fetches every µ-op of the run) can
// instead refill a reusable buffer hundreds of µ-ops at a time and
// amortize the dispatch to nothing. NextBatch must behave exactly like
// len(dst) consecutive Next calls: it fills dst from the front and
// returns how many entries are valid, < len(dst) only when the stream
// is exhausted.
type BatchSource interface {
	Source
	NextBatch(dst []MicroOp) int
}

// MachineSource wraps a Machine as a Source.
type MachineSource struct{ M *Machine }

// Next implements Source.
func (s MachineSource) Next(u *MicroOp) bool {
	return s.M.StepInto(u)
}

// NextBatch implements BatchSource: it steps the interpreter directly
// into dst, skipping the per-µ-op interface hop and record copy.
func (s MachineSource) NextBatch(dst []MicroOp) int {
	n := 0
	for n < len(dst) && s.M.StepInto(&dst[n]) {
		n++
	}
	return n
}
