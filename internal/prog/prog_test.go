package prog

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"eole/internal/isa"
)

// buildLoop returns a program that sums 0..n-1 into r2 then halts.
func buildLoop(n int64) *Program {
	b := NewBuilder("sumloop")
	r1, r2, r3 := isa.IntReg(1), isa.IntReg(2), isa.IntReg(3)
	b.Movi(r1, 0) // i = 0
	b.Movi(r2, 0) // sum = 0
	b.Movi(r3, n) // limit
	b.Label("loop")
	b.Add(r2, r2, r1) // sum += i
	b.Addi(r1, r1, 1) // i++
	b.Blt(r1, r3, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestBuilderLabelsResolve(t *testing.T) {
	p := buildLoop(10)
	idx, ok := p.LabelAddr("loop")
	if !ok || idx != 3 {
		t.Fatalf("LabelAddr(loop) = %d,%v; want 3,true", idx, ok)
	}
	// The branch must point at the label.
	br := p.Code[5]
	if br.Op != isa.OpBlt || br.Target != 3 {
		t.Fatalf("branch = %+v, want blt to 3", br)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for undefined label")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x")
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for duplicate label")
	}
}

func TestInterpreterSumLoop(t *testing.T) {
	m := NewMachine(buildLoop(100))
	n := m.Run(1_000_000, nil)
	if !m.Halted() {
		t.Fatal("machine did not halt")
	}
	// 3 setup ops + 100 iterations * 3 ops + 1 halt.
	if want := uint64(3 + 300 + 1); n != want {
		t.Fatalf("executed %d µ-ops, want %d", n, want)
	}
	if got := m.Regs[isa.IntReg(2)]; got != 4950 {
		t.Fatalf("sum = %d, want 4950", got)
	}
}

func TestBranchOutcomesRecorded(t *testing.T) {
	m := NewMachine(buildLoop(3))
	var takens []bool
	m.Run(1_000_000, func(u *MicroOp) bool {
		if u.Op == isa.OpBlt {
			takens = append(takens, u.Taken)
		}
		return true
	})
	want := []bool{true, true, false}
	if len(takens) != len(want) {
		t.Fatalf("saw %d branches, want %d", len(takens), len(want))
	}
	for i := range want {
		if takens[i] != want[i] {
			t.Fatalf("branch %d taken=%v, want %v", i, takens[i], want[i])
		}
	}
}

func TestMemoryReadWrite(t *testing.T) {
	mem := NewMemory()
	if got := mem.Read(0x1000); got != 0 {
		t.Fatalf("unwritten memory = %d, want 0", got)
	}
	mem.Write(0x1000, 42)
	if got := mem.Read(0x1000); got != 42 {
		t.Fatalf("read-after-write = %d, want 42", got)
	}
	// Distinct pages stay distinct.
	mem.Write(0x100000, 7)
	if got := mem.Read(0x1000); got != 42 {
		t.Fatalf("cross-page interference: got %d", got)
	}
	if mem.Footprint() != 2 {
		t.Fatalf("footprint = %d, want 2", mem.Footprint())
	}
}

func TestMemoryProperty(t *testing.T) {
	mem := NewMemory()
	shadow := map[uint64]uint64{}
	f := func(addr, val uint64) bool {
		addr &= 0xFFFFFF8 // keep footprint bounded, 8-aligned
		mem.Write(addr, val)
		shadow[addr&^uint64(7)] = val
		for a, v := range shadow {
			if mem.Read(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	b := NewBuilder("memtest")
	r1, r2, r3 := isa.IntReg(1), isa.IntReg(2), isa.IntReg(3)
	b.Movi(r1, 0x10000)
	b.Movi(r2, 1234)
	b.St(r2, r1, 8)
	b.Ld(r3, r1, 8)
	b.Halt()
	m := NewMachine(b.MustBuild())
	var stAddr, ldAddr, ldVal uint64
	m.Run(100, func(u *MicroOp) bool {
		switch u.Op {
		case isa.OpSt:
			stAddr = u.Addr
		case isa.OpLd:
			ldAddr, ldVal = u.Addr, u.Value
		}
		return true
	})
	if stAddr != 0x10008 || ldAddr != 0x10008 {
		t.Fatalf("addresses st=%#x ld=%#x, want 0x10008", stAddr, ldAddr)
	}
	if ldVal != 1234 || m.Regs[r3] != 1234 {
		t.Fatalf("loaded %d, want 1234", ldVal)
	}
}

func TestCallRet(t *testing.T) {
	b := NewBuilder("callret")
	r1 := isa.IntReg(1)
	b.Movi(r1, 0)
	b.Call("fn")
	b.Addi(r1, r1, 100) // executed after return
	b.Halt()
	b.Label("fn")
	b.Addi(r1, r1, 1)
	b.Ret()
	m := NewMachine(b.MustBuild())
	var callVal uint64
	var retNext uint64
	m.Run(100, func(u *MicroOp) bool {
		if u.Op == isa.OpCall {
			callVal = u.Value
		}
		if u.Op == isa.OpRet {
			retNext = u.NextPC
		}
		return true
	})
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if got := m.Regs[r1]; got != 101 {
		t.Fatalf("r1 = %d, want 101 (call then fallthrough)", got)
	}
	p := m.Prog
	if callVal != p.PC(2) {
		t.Fatalf("link value = %#x, want %#x", callVal, p.PC(2))
	}
	if retNext != p.PC(2) {
		t.Fatalf("ret NextPC = %#x, want %#x", retNext, p.PC(2))
	}
}

func TestIndirectJr(t *testing.T) {
	b := NewBuilder("jr")
	r1 := isa.IntReg(1)
	b.Movi(r1, int64(CodeBase)+3*4) // address of the halt
	b.Jr(r1)
	b.Addi(r1, r1, 1) // skipped
	b.Halt()
	m := NewMachine(b.MustBuild())
	m.Run(100, nil)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if got := m.Regs[r1]; got != CodeBase+12 {
		t.Fatalf("r1 = %#x, want unchanged %#x", got, CodeBase+12)
	}
}

func TestFPArithmetic(t *testing.T) {
	b := NewBuilder("fp")
	f0, f1, f2 := isa.FPReg(0), isa.FPReg(1), isa.FPReg(2)
	b.FAdd(f2, f0, f1)
	b.FMul(f2, f2, f2)
	b.FSqrt(f2, f2)
	b.Halt()
	m := NewMachine(b.MustBuild())
	m.SetFReg(f0, 1.5)
	m.SetFReg(f1, 2.5)
	m.Run(100, nil)
	got := math.Float64frombits(m.Regs[f2])
	if math.Abs(got-4.0) > 1e-12 {
		t.Fatalf("sqrt((1.5+2.5)^2) = %v, want 4", got)
	}
}

func TestDivByZeroDefined(t *testing.T) {
	b := NewBuilder("div0")
	r1, r2, r3 := isa.IntReg(1), isa.IntReg(2), isa.IntReg(3)
	b.Movi(r1, 10)
	b.Movi(r2, 0)
	b.Div(r3, r1, r2)
	b.Rem(r1, r1, r2)
	b.Halt()
	m := NewMachine(b.MustBuild())
	m.Run(100, nil)
	if m.Regs[r3] != ^uint64(0) {
		t.Fatalf("div/0 = %#x, want all-ones", m.Regs[r3])
	}
	if m.Regs[r1] != 10 {
		t.Fatalf("rem/0 = %d, want dividend", m.Regs[r1])
	}
}

func TestFlagsInStream(t *testing.T) {
	b := NewBuilder("flags")
	r1, r2 := isa.IntReg(1), isa.IntReg(2)
	b.Movi(r1, -1)
	b.Movi(r2, 1)
	b.Add(r2, r1, r2) // (-1)+1 = 0: ZF + CF
	b.Halt()
	m := NewMachine(b.MustBuild())
	var flags isa.Flags
	m.Run(100, func(u *MicroOp) bool {
		if u.Op == isa.OpAdd {
			flags = u.Flags
		}
		return true
	})
	if flags&isa.FlagZF == 0 || flags&isa.FlagCF == 0 {
		t.Fatalf("flags = %08b, want ZF|CF", flags)
	}
}

func TestXorshiftDeterministicAndNontrivial(t *testing.T) {
	b := NewBuilder("xs")
	r1, r2 := isa.IntReg(1), isa.IntReg(2)
	b.Movi(r1, 0x9E3779B97F4A7C15>>1)
	for i := 0; i < 4; i++ {
		b.Xorshift(r1, r2)
	}
	b.Halt()
	run := func() uint64 {
		m := NewMachine(b.MustBuild())
		m.Run(1000, nil)
		return m.Regs[r1]
	}
	v1, v2 := run(), run()
	if v1 != v2 {
		t.Fatal("xorshift must be deterministic")
	}
	if v1 == 0x9E3779B97F4A7C15>>1 || v1 == 0 {
		t.Fatalf("xorshift produced trivial value %#x", v1)
	}
}

func TestSeqAndNextPCChain(t *testing.T) {
	m := NewMachine(buildLoop(5))
	var prev *MicroOp
	m.Run(1_000_000, func(u *MicroOp) bool {
		if prev != nil && prev.Op != isa.OpHalt {
			if prev.NextPC != u.PC {
				t.Fatalf("seq %d: NextPC %#x != next op PC %#x", prev.Seq, prev.NextPC, u.PC)
			}
			if u.Seq != prev.Seq+1 {
				t.Fatalf("sequence numbers not contiguous")
			}
		}
		c := *u
		prev = &c
		return true
	})
}

func TestRunStopsOnCallbackFalse(t *testing.T) {
	m := NewMachine(buildLoop(1000))
	n := m.Run(1_000_000, func(u *MicroOp) bool { return u.Seq < 9 })
	if n != 10 {
		t.Fatalf("Run executed %d, want 10", n)
	}
	if m.Halted() {
		t.Fatal("must not be halted")
	}
}

func TestMachineSource(t *testing.T) {
	m := NewMachine(buildLoop(2))
	src := MachineSource{M: m}
	var u MicroOp
	count := 0
	for src.Next(&u) {
		count++
		if count > 1000 {
			t.Fatal("source did not terminate")
		}
	}
	if !m.Halted() {
		t.Fatal("machine should be halted at stream end")
	}
}

func TestDisasmContainsLabels(t *testing.T) {
	p := buildLoop(2)
	d := p.Disasm()
	if !strings.Contains(d, "loop:") {
		t.Fatalf("disasm missing label:\n%s", d)
	}
	if !strings.Contains(d, "blt") {
		t.Fatalf("disasm missing branch:\n%s", d)
	}
}

func TestPCIndexRoundTrip(t *testing.T) {
	p := buildLoop(2)
	f := func(i uint16) bool {
		idx := int(i) % len(p.Code)
		return p.IndexOf(p.PC(idx)) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
