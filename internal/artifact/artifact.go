// Package artifact is the persistent content-addressed artifact
// fabric: a multi-tier store (memory LRU → local disk → HTTP peer)
// holding the byte payloads the simulation service wants to survive a
// process — encoded simulation reports and recorded µ-op traces —
// behind one typed Get/Put/Stat API.
//
// Keys are content addresses (lowercase hex, produced by
// simsvc.KeyOf for results and simsvc.TraceKeyOf for traces), so an
// artifact is immutable once written: equal keys imply equal bytes,
// and every tier may cache freely without invalidation.
//
// On disk an artifact lives at <kindDir>/<shard>/<key>.art, where
// shard is the key's first two hex characters — a flat directory
// would degrade badly at fleet scale (millions of cached cells in one
// readdir). Each file carries a fixed-size integrity footer
// (CRC-32 + length + magic) so a torn write, truncation or bit rot is
// detected on read; a corrupt entry is moved to <kindDir>/quarantine/
// for post-mortem rather than deleted, and the read reports a miss so
// the caller re-simulates. Writes are temp-file + rename, so a crash
// mid-write never leaves a partial artifact visible under its key.
//
// The disk tier is size-budgeted per kind: when a Put pushes a kind
// over Options.DiskBytes, the oldest artifacts (by mtime) are evicted
// until the kind fits again. Artifacts are re-creatable by
// construction, so eviction only costs warmth, never correctness.
package artifact

import (
	"container/list"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eole/internal/obs"
)

// Kind partitions the key space: artifacts of different kinds never
// collide, each kind has its own directory tree and disk budget.
type Kind string

const (
	// KindResult holds JSON-encoded simulation reports keyed by the
	// simsvc content address.
	KindResult Kind = "result"
	// KindTrace holds encoded µ-op traces (the trace wire format,
	// self-validating via its own CRC and program hash) keyed by the
	// trace workload hash.
	KindTrace Kind = "trace"
)

// Kinds lists every valid kind, in stable order.
var Kinds = []Kind{KindResult, KindTrace}

// ValidKind reports whether k names a known artifact kind.
func ValidKind(k Kind) bool {
	return k == KindResult || k == KindTrace
}

// keyPattern is the only shape a key may have: 2–128 lowercase hex
// characters. Keys become path components, so the validation is the
// traversal defense for the disk tier and the HTTP endpoint alike —
// no separators, no dots, no uppercase aliasing on case-insensitive
// filesystems.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{2,128}$`)

// ValidKey reports whether key is a well-formed content address.
func ValidKey(key string) bool { return keyPattern.MatchString(key) }

// ErrNotFound is returned by Get and Stat when no tier holds the key.
var ErrNotFound = errors.New("artifact: not found")

// MaxArtifactBytes bounds a single artifact payload (Put, peer fetch
// and the HTTP endpoint all enforce it): far above any legitimate
// report or trace, low enough that a hostile upload cannot balloon a
// store.
const MaxArtifactBytes = 256 << 20

// footer layout: payload || crc32(payload) LE || uint64 payload
// length LE || magic. Fixed-size so a reader can validate from the
// file tail without parsing the payload.
const footerSize = 4 + 8 + 4

var footerMagic = [4]byte{'E', 'O', 'A', 'F'}

// Options configures a Store. The zero value is a memory-only store
// with the default budget.
type Options struct {
	// Dir is the fabric root: kind k lives under <Dir>/<k>/. Empty
	// disables the disk tier for kinds without a KindDirs override.
	Dir string
	// KindDirs overrides the directory per kind (the -cache-dir and
	// -trace-dir legacy flags map here). A kind with neither Dir nor
	// an override has no disk tier.
	KindDirs map[Kind]string
	// MemBytes budgets the in-memory byte tier across all kinds
	// (0 = 64MB, negative disables the memory tier).
	MemBytes int64
	// DiskBytes budgets the disk tier per kind (0 = unbounded). When
	// a Put pushes a kind over budget, oldest-mtime artifacts are
	// evicted until it fits.
	DiskBytes int64
	// Peer, when non-nil, is the third lookup tier: a Get that misses
	// memory and disk fetches from the peer and persists the artifact
	// locally. Share pushes freshly created artifacts to it.
	Peer Peer
	// Logger receives tier events at Debug and quarantines at Warn
	// (nil = discard).
	Logger *slog.Logger
	// Tracer, when set, records an artifact.fetch span around every
	// peer fetch (the only tier slow enough to matter in a request
	// waterfall: memory and disk lookups are microseconds; a peer
	// fetch is a cross-process HTTP round trip).
	Tracer *obs.Tracer
}

// memEntry is one resident artifact in the LRU list.
type memEntry struct {
	kind Kind
	key  string
	data []byte
}

// tierCounters is one (tier, kind) cell of the stats matrix.
type tierCounters struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	bytes     atomic.Int64
	entries   atomic.Int64
}

// kindState is the store's per-kind bookkeeping.
type kindState struct {
	dir         string // "" = no disk tier for this kind
	mem         tierCounters
	disk        tierCounters
	peer        tierCounters
	quarantined atomic.Uint64
	pushes      atomic.Uint64
	pushErrors  atomic.Uint64
}

// Store is the multi-tier artifact fabric. Create with Open; safe for
// concurrent use.
type Store struct {
	opts Options
	log  *slog.Logger
	kind map[Kind]*kindState

	// Memory tier: an LRU over raw payloads, budgeted in bytes.
	mu       sync.Mutex
	lru      *list.List // front = most recently used
	index    map[Kind]map[string]*list.Element
	memBytes int64

	// diskMu serializes eviction scans so concurrent Puts do not race
	// each other deleting files.
	diskMu sync.Mutex
}

// Open builds a store, creates the kind directories (plus their
// quarantine subdirectories), sweeps temp files orphaned by crashed
// writers, and takes the initial disk-usage inventory.
func Open(opts Options) (*Store, error) {
	if opts.MemBytes == 0 {
		opts.MemBytes = 64 << 20
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Store{
		opts:  opts,
		log:   log,
		kind:  make(map[Kind]*kindState, len(Kinds)),
		lru:   list.New(),
		index: make(map[Kind]map[string]*list.Element, len(Kinds)),
	}
	for _, k := range Kinds {
		dir := opts.KindDirs[k]
		if dir == "" && opts.Dir != "" {
			dir = filepath.Join(opts.Dir, string(k))
		}
		ks := &kindState{dir: dir}
		s.kind[k] = ks
		s.index[k] = make(map[string]*list.Element)
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(filepath.Join(dir, "quarantine"), 0o755); err != nil {
			return nil, fmt.Errorf("artifact: %s dir: %w", k, err)
		}
		sweepOrphans(dir)
		bytes, entries := diskInventory(dir)
		ks.disk.bytes.Store(bytes)
		ks.disk.entries.Store(entries)
	}
	return s, nil
}

// Persistent reports whether at least one kind has a disk tier —
// i.e. whether artifacts survive this process.
func (s *Store) Persistent() bool {
	for _, ks := range s.kind {
		if ks.dir != "" {
			return true
		}
	}
	return false
}

// HasPeer reports whether the store has a peer fetch tier.
func (s *Store) HasPeer() bool { return s.opts.Peer != nil }

// sweepOrphans removes temp files a crashed writer left behind. The
// age gate keeps the sweep from deleting a temp file a live process
// is about to rename — writes take milliseconds, not an hour.
func sweepOrphans(dir string) {
	matches, _ := filepath.Glob(filepath.Join(dir, "tmp-*"))
	for _, f := range matches {
		if fi, err := os.Stat(f); err == nil && time.Since(fi.ModTime()) > time.Hour {
			os.Remove(f)
		}
	}
}

// diskInventory sums the artifact files under a kind directory
// (quarantine and temp files excluded).
func diskInventory(dir string) (bytes, entries int64) {
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if d.Name() == "quarantine" && path != dir {
				return fs.SkipDir
			}
			return nil
		}
		if filepath.Ext(path) != ".art" {
			return nil
		}
		if fi, err := d.Info(); err == nil {
			bytes += fi.Size()
			entries++
		}
		return nil
	})
	return bytes, entries
}

// path returns an artifact's disk location:
// <kindDir>/<shard>/<key>.art with the key's first two hex characters
// as the shard.
func (ks *kindState) path(key string) string {
	return filepath.Join(ks.dir, key[:2], key+".art")
}

// Get returns the artifact's payload, consulting memory, then disk,
// then the peer (when configured). Artifacts found in lower tiers are
// promoted. ctx bounds only the peer fetch.
func (s *Store) Get(ctx context.Context, kind Kind, key string) ([]byte, error) {
	return s.get(ctx, kind, key, true)
}

// GetLocal is Get without the peer tier: memory and disk only. The
// HTTP artifact endpoint serves through it so a fleet of stores can
// never chase a missing key in a fetch cycle.
func (s *Store) GetLocal(kind Kind, key string) ([]byte, error) {
	return s.get(context.Background(), kind, key, false)
}

func (s *Store) get(ctx context.Context, kind Kind, key string, usePeer bool) ([]byte, error) {
	ks, err := s.state(kind, key)
	if err != nil {
		return nil, err
	}
	if b := s.memGet(kind, key); b != nil {
		ks.mem.hits.Add(1)
		return b, nil
	}
	ks.mem.misses.Add(1)
	if ks.dir != "" {
		if b := s.diskGet(ks, kind, key); b != nil {
			ks.disk.hits.Add(1)
			s.memPut(kind, key, b)
			return b, nil
		}
		ks.disk.misses.Add(1)
	}
	if usePeer && s.opts.Peer != nil {
		fctx, fsp := s.opts.Tracer.StartSpan(ctx, "artifact.fetch")
		fsp.SetAttr("kind", string(kind))
		b, err := s.opts.Peer.Fetch(fctx, kind, key)
		if err == nil && len(b) > 0 {
			fsp.SetAttr("hit", "true")
		} else {
			fsp.SetAttr("hit", "false")
			if err != nil && !errors.Is(err, ErrNotFound) {
				fsp.SetError(err)
			}
		}
		fsp.End()
		switch {
		case err == nil && len(b) > 0:
			ks.peer.hits.Add(1)
			s.log.Debug("artifact_peer_hit", "kind", string(kind), "key", key, "bytes", len(b))
			// Persist the fetched artifact so the next process (and
			// the local HTTP endpoint) can serve it without the peer.
			s.memPut(kind, key, b)
			if ks.dir != "" {
				s.diskPut(ks, kind, key, b)
			}
			return b, nil
		case err != nil && !errors.Is(err, ErrNotFound):
			ks.peer.misses.Add(1)
			s.log.Debug("artifact_peer_error", "kind", string(kind), "key", key, "error", err.Error())
		default:
			ks.peer.misses.Add(1)
		}
	}
	return nil, ErrNotFound
}

// Put stores an artifact in the memory tier and, when the kind has a
// directory, durably on disk. The returned error reports only disk
// failures — the memory tier cannot fail — so most callers treat Put
// as best-effort.
func (s *Store) Put(kind Kind, key string, data []byte) error {
	ks, err := s.state(kind, key)
	if err != nil {
		return err
	}
	if int64(len(data)) > MaxArtifactBytes {
		return fmt.Errorf("artifact: %d-byte payload exceeds the %d-byte bound", len(data), int64(MaxArtifactBytes))
	}
	s.memPut(kind, key, data)
	if ks.dir == "" {
		return nil
	}
	return s.diskPut(ks, kind, key, data)
}

// Share pushes an artifact to the peer tier, best-effort: a fleet
// where the coordinator is briefly unreachable keeps simulating.
// No-op without a peer.
func (s *Store) Share(ctx context.Context, kind Kind, key string, data []byte) {
	ks, err := s.state(kind, key)
	if err != nil || s.opts.Peer == nil {
		return
	}
	if err := s.opts.Peer.Push(ctx, kind, key, data); err != nil {
		ks.pushErrors.Add(1)
		s.log.Debug("artifact_push_failed", "kind", string(kind), "key", key, "error", err.Error())
		return
	}
	ks.pushes.Add(1)
	s.log.Debug("artifact_pushed", "kind", string(kind), "key", key, "bytes", len(data))
}

// Info describes where an artifact was found and how large it is.
type Info struct {
	// Size is the payload length in bytes.
	Size int64 `json:"size"`
	// Tier is "memory" or "disk" (Stat never consults the peer).
	Tier string `json:"tier"`
}

// Stat reports whether the store holds the key locally, without
// reading (or validating) the payload. A disk entry too small to even
// carry a footer reports as absent.
func (s *Store) Stat(kind Kind, key string) (Info, error) {
	ks, err := s.state(kind, key)
	if err != nil {
		return Info{}, err
	}
	s.mu.Lock()
	el, ok := s.index[kind][key]
	if ok {
		size := int64(len(el.Value.(*memEntry).data))
		s.mu.Unlock()
		return Info{Size: size, Tier: "memory"}, nil
	}
	s.mu.Unlock()
	if ks.dir != "" {
		if fi, err := os.Stat(ks.path(key)); err == nil && fi.Size() >= footerSize {
			return Info{Size: fi.Size() - footerSize, Tier: "disk"}, nil
		}
	}
	return Info{}, ErrNotFound
}

// state validates (kind, key) and resolves the kind's bookkeeping.
func (s *Store) state(kind Kind, key string) (*kindState, error) {
	if !ValidKind(kind) {
		return nil, fmt.Errorf("artifact: unknown kind %q", string(kind))
	}
	if !ValidKey(key) {
		return nil, fmt.Errorf("artifact: malformed key %q", key)
	}
	return s.kind[kind], nil
}

// ------------------------------------------------------------ memory

func (s *Store) memGet(kind Kind, key string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[kind][key]
	if !ok {
		return nil
	}
	s.lru.MoveToFront(el)
	return el.Value.(*memEntry).data
}

func (s *Store) memPut(kind Kind, key string, data []byte) {
	budget := s.opts.MemBytes
	if budget < 0 || int64(len(data)) > budget {
		return
	}
	ks := s.kind[kind]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[kind][key]; ok {
		// Same key, same content (content-addressed): just refresh.
		s.lru.MoveToFront(el)
		return
	}
	el := s.lru.PushFront(&memEntry{kind: kind, key: key, data: data})
	s.index[kind][key] = el
	s.memBytes += int64(len(data))
	ks.mem.bytes.Add(int64(len(data)))
	ks.mem.entries.Add(1)
	for s.memBytes > budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*memEntry)
		s.lru.Remove(back)
		delete(s.index[victim.kind], victim.key)
		s.memBytes -= int64(len(victim.data))
		vks := s.kind[victim.kind]
		vks.mem.bytes.Add(-int64(len(victim.data)))
		vks.mem.entries.Add(-1)
		vks.mem.evictions.Add(1)
	}
}

// -------------------------------------------------------------- disk

// diskGet reads and validates an artifact file. A corrupt file —
// truncated, bad magic, length mismatch, CRC mismatch — is moved to
// quarantine and reported as a miss.
func (s *Store) diskGet(ks *kindState, kind Kind, key string) []byte {
	path := ks.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	payload, err := checkFooter(raw)
	if err != nil {
		s.quarantine(ks, kind, key, path, err)
		return nil
	}
	return payload
}

// checkFooter validates a raw artifact file and returns its payload.
func checkFooter(raw []byte) ([]byte, error) {
	if len(raw) < footerSize {
		return nil, fmt.Errorf("artifact: %d-byte file shorter than the footer", len(raw))
	}
	foot := raw[len(raw)-footerSize:]
	if [4]byte(foot[12:16]) != footerMagic {
		return nil, errors.New("artifact: bad footer magic")
	}
	payload := raw[:len(raw)-footerSize]
	if n := binary.LittleEndian.Uint64(foot[4:12]); n != uint64(len(payload)) {
		return nil, fmt.Errorf("artifact: footer length %d, payload %d", n, len(payload))
	}
	if c := binary.LittleEndian.Uint32(foot[0:4]); c != crc32.ChecksumIEEE(payload) {
		return nil, errors.New("artifact: payload CRC mismatch")
	}
	return payload, nil
}

// appendFooter returns data with its integrity footer appended.
func appendFooter(data []byte) []byte {
	out := make([]byte, len(data)+footerSize)
	copy(out, data)
	foot := out[len(data):]
	binary.LittleEndian.PutUint32(foot[0:4], crc32.ChecksumIEEE(data))
	binary.LittleEndian.PutUint64(foot[4:12], uint64(len(data)))
	copy(foot[12:16], footerMagic[:])
	return out
}

// quarantine moves a corrupt artifact aside (never deletes it — the
// bytes are evidence) so the slot can be rewritten by a fresh
// simulation. Failure to move still unlinks the bad file: a corrupt
// entry must not wedge its key forever.
func (s *Store) quarantine(ks *kindState, kind Kind, key string, path string, cause error) {
	ks.quarantined.Add(1)
	dst := filepath.Join(ks.dir, "quarantine",
		fmt.Sprintf("%s.%d.corrupt", filepath.Base(path), time.Now().UnixNano()))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
		dst = "(removed)"
	}
	if fi, err := os.Stat(dst); err == nil {
		ks.disk.bytes.Add(-fi.Size())
		ks.disk.entries.Add(-1)
	}
	s.log.Warn("artifact_quarantined", "kind", string(kind), "key", key,
		"moved_to", dst, "cause", cause.Error())
}

// diskPut writes payload+footer under a temp name in the kind
// directory and renames it into place — readers never observe a
// partial artifact, and a crash mid-write leaves only a tmp-* file
// the next Open sweeps.
func (s *Store) diskPut(ks *kindState, kind Kind, key string, data []byte) error {
	path := ks.path(key)
	var oldSize int64
	if fi, err := os.Stat(path); err == nil {
		oldSize = fi.Size()
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("artifact: shard dir: %w", err)
	}
	tmp, err := os.CreateTemp(ks.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: temp file: %w", err)
	}
	name := tmp.Name()
	framed := appendFooter(data)
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("artifact: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("artifact: close: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("artifact: rename: %w", err)
	}
	ks.disk.bytes.Add(int64(len(framed)) - oldSize)
	if oldSize == 0 {
		ks.disk.entries.Add(1)
	}
	s.log.Debug("artifact_stored", "kind", string(kind), "key", key, "bytes", len(data))
	if b := s.opts.DiskBytes; b > 0 && ks.disk.bytes.Load() > b {
		s.evict(ks, kind, path)
	}
	return nil
}

// evict walks the kind directory and removes oldest-mtime artifacts
// until the kind fits its budget again. keep is the just-written file,
// exempt so a single oversized-but-legal artifact is not deleted the
// moment it lands. The walk doubles as a usage resync, so accounting
// drift (files deleted behind our back) self-heals on every eviction
// pass.
func (s *Store) evict(ks *kindState, kind Kind, keep string) {
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []entry
	var total int64
	filepath.WalkDir(ks.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			if d.Name() == "quarantine" && path != ks.dir {
				return fs.SkipDir
			}
			return nil
		}
		if filepath.Ext(path) != ".art" {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return nil
		}
		files = append(files, entry{path: path, size: fi.Size(), mtime: fi.ModTime()})
		total += fi.Size()
		return nil
	})
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	entries := int64(len(files))
	for _, f := range files {
		if total <= s.opts.DiskBytes {
			break
		}
		if f.path == keep {
			continue
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			entries--
			ks.disk.evictions.Add(1)
			s.log.Debug("artifact_evicted", "kind", string(kind), "path", f.path, "bytes", f.size)
		}
	}
	ks.disk.bytes.Store(total)
	ks.disk.entries.Store(entries)
}

// ------------------------------------------------------------- stats

// TierStats is one (tier, kind) cell of the stats matrix — the wire
// and metrics form of the store's accounting.
type TierStats struct {
	Tier string `json:"tier"` // "memory", "disk" or "peer"
	Kind string `json:"kind"`
	Hits uint64 `json:"hits"`
	// Misses counts lookups the tier could not answer. For the peer
	// tier this includes fetch errors.
	Misses uint64 `json:"misses"`
	// Evictions counts entries removed by the byte budget (memory and
	// disk tiers).
	Evictions uint64 `json:"evictions,omitempty"`
	// Quarantined counts corrupt disk entries moved aside (disk tier
	// only).
	Quarantined uint64 `json:"quarantined,omitempty"`
	// Pushes / PushErrors count Share calls (peer tier only).
	Pushes     uint64 `json:"pushes,omitempty"`
	PushErrors uint64 `json:"push_errors,omitempty"`
	// Bytes and Entries are the tier's current residency (zero for
	// the peer tier, whose contents are remote).
	Bytes   int64 `json:"bytes"`
	Entries int64 `json:"entries"`
}

// Stats snapshots the full (tier × kind) accounting matrix in stable
// order. Tiers a kind does not have (no disk dir, no peer) are
// omitted.
func (s *Store) Stats() []TierStats {
	var out []TierStats
	for _, k := range Kinds {
		ks := s.kind[k]
		out = append(out, TierStats{
			Tier: "memory", Kind: string(k),
			Hits: ks.mem.hits.Load(), Misses: ks.mem.misses.Load(),
			Evictions: ks.mem.evictions.Load(),
			Bytes:     ks.mem.bytes.Load(), Entries: ks.mem.entries.Load(),
		})
		if ks.dir != "" {
			out = append(out, TierStats{
				Tier: "disk", Kind: string(k),
				Hits: ks.disk.hits.Load(), Misses: ks.disk.misses.Load(),
				Evictions:   ks.disk.evictions.Load(),
				Quarantined: ks.quarantined.Load(),
				Bytes:       ks.disk.bytes.Load(), Entries: ks.disk.entries.Load(),
			})
		}
		if s.opts.Peer != nil {
			out = append(out, TierStats{
				Tier: "peer", Kind: string(k),
				Hits: ks.peer.hits.Load(), Misses: ks.peer.misses.Load(),
				Pushes: ks.pushes.Load(), PushErrors: ks.pushErrors.Load(),
			})
		}
	}
	return out
}

// ReadAllLimited reads from r up to limit bytes, failing when the
// stream exceeds it — shared by the peer client and the HTTP upload
// handler so both enforce the same payload bound.
func ReadAllLimited(r io.Reader, limit int64) ([]byte, error) {
	b, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(b)) > limit {
		return nil, fmt.Errorf("artifact: payload exceeds the %d-byte bound", limit)
	}
	return b, nil
}
