package artifact

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Peer is the remote tier of the fabric: typically another eoled's
// /v1/artifacts endpoint (the cluster coordinator, for workers).
// Fetch returns ErrNotFound (possibly wrapped) when the peer does not
// hold the key.
type Peer interface {
	Fetch(ctx context.Context, kind Kind, key string) ([]byte, error)
	Push(ctx context.Context, kind Kind, key string, data []byte) error
}

// HTTPPeer fetches and pushes artifacts over eoled's
// GET/PUT /v1/artifacts/{kind}/{key}.
type HTTPPeer struct {
	// BaseURL is the peer's base ("http://coordinator:8080"); a bare
	// host:port gets the http scheme.
	BaseURL string
	// Client issues the requests (nil = http.DefaultClient).
	Client *http.Client
}

// NewHTTPPeer normalizes the base URL into a peer client.
func NewHTTPPeer(baseURL string) *HTTPPeer {
	baseURL = strings.TrimSpace(baseURL)
	if baseURL != "" && !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	return &HTTPPeer{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (p *HTTPPeer) client() *http.Client {
	if p.Client != nil {
		return p.Client
	}
	return http.DefaultClient
}

func (p *HTTPPeer) url(kind Kind, key string) string {
	return fmt.Sprintf("%s/v1/artifacts/%s/%s", p.BaseURL, string(kind), key)
}

// Fetch GETs one artifact; a 404 is ErrNotFound, anything but a 200
// is an error carrying the peer's message.
func (p *HTTPPeer) Fetch(ctx context.Context, kind Kind, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url(kind, key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("artifact: peer %s: %w", p.BaseURL, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		b, err := ReadAllLimited(resp.Body, MaxArtifactBytes)
		if err != nil {
			return nil, fmt.Errorf("artifact: peer %s: %w", p.BaseURL, err)
		}
		return b, nil
	case http.StatusNotFound:
		return nil, fmt.Errorf("artifact: peer %s: %w", p.BaseURL, ErrNotFound)
	default:
		return nil, fmt.Errorf("artifact: peer %s: status %d: %s",
			p.BaseURL, resp.StatusCode, peerErrorBody(resp.Body))
	}
}

// Push PUTs one artifact; 2xx statuses succeed.
func (p *HTTPPeer) Push(ctx context.Context, kind Kind, key string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, p.url(kind, key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.client().Do(req)
	if err != nil {
		return fmt.Errorf("artifact: peer %s: %w", p.BaseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("artifact: peer %s: status %d: %s",
			p.BaseURL, resp.StatusCode, peerErrorBody(resp.Body))
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return nil
}

// peerErrorBody extracts eoled's {"error": "..."} message, falling
// back to a body snippet.
func peerErrorBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(b))
}
