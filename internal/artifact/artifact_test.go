package artifact

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// key returns a distinct well-formed content address per seed.
func key(seed int) string {
	return fmt.Sprintf("%064x", seed+1)
}

func TestRoundTripAndRestartSurvival(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Options{Dir: dir})
	k := key(1)
	payload := []byte(`{"ipc": 1.5}`)
	if err := s.Put(KindResult, k, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(context.Background(), KindResult, k)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the payload back", got, err)
	}
	if info, err := s.Stat(KindResult, k); err != nil || info.Tier != "memory" {
		t.Fatalf("Stat = %+v, %v; want a memory hit", info, err)
	}

	// A second store over the same directory — a restarted process —
	// must serve the artifact from disk.
	s2 := open(t, Options{Dir: dir})
	got, err = s2.Get(context.Background(), KindResult, k)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("restart Get = %q, %v; want a disk hit", got, err)
	}
	var diskHits uint64
	for _, ts := range s2.Stats() {
		if ts.Tier == "disk" && ts.Kind == string(KindResult) {
			diskHits = ts.Hits
		}
	}
	if diskHits != 1 {
		t.Errorf("disk hits = %d, want 1", diskHits)
	}
	// The inventory taken at Open must have seen the file.
	if !s2.Persistent() {
		t.Error("store with a Dir must report Persistent")
	}
}

func TestKindsDoNotCollide(t *testing.T) {
	s := open(t, Options{Dir: t.TempDir()})
	k := key(2)
	if err := s.Put(KindResult, k, []byte("result")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindTrace, k, []byte("trace")); err != nil {
		t.Fatal(err)
	}
	r, _ := s.Get(context.Background(), KindResult, k)
	tr, _ := s.Get(context.Background(), KindTrace, k)
	if string(r) != "result" || string(tr) != "trace" {
		t.Fatalf("kinds collided: result=%q trace=%q", r, tr)
	}
}

func TestHostileKeysRejected(t *testing.T) {
	s := open(t, Options{Dir: t.TempDir()})
	hostile := []string{
		"",
		"x",                      // too short
		"../../../../etc/passwd", // traversal
		"ABCDEF",                 // uppercase aliases on case-insensitive filesystems
		"0123456789abcdefg",      // non-hex
		strings.Repeat("a", 129), // oversized
		"..",                     // dot segment
		"aa/bb",                  // separator
		"aa\x00bb",               // NUL
		"0123456789abcdef ",      // trailing space
	}
	for _, k := range hostile {
		if _, err := s.Get(context.Background(), KindResult, k); err == nil || errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%q) = %v, want a validation error", k, err)
		}
		if err := s.Put(KindResult, k, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a hostile key", k)
		}
	}
	if _, err := s.Get(context.Background(), Kind("notakind"), key(1)); err == nil || errors.Is(err, ErrNotFound) {
		t.Errorf("unknown kind must be a validation error, got %v", err)
	}
}

func TestCorruptArtifactQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Options{Dir: dir})
	k := key(3)
	if err := s.Put(KindResult, k, []byte("precious bytes")); err != nil {
		t.Fatal(err)
	}
	path := s.kind[KindResult].path(k)
	for name, corrupt := range map[string]func([]byte) []byte{
		"flipped payload bit": func(b []byte) []byte { b[0] ^= 0x40; return b },
		"truncated":           func(b []byte) []byte { return b[:len(b)-5] },
		"bad magic":           func(b []byte) []byte { b[len(b)-1] = 'X'; return b },
		"shorter than footer": func([]byte) []byte { return []byte{1, 2, 3} },
	} {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		// A fresh store (no memory copy) must detect the damage,
		// quarantine the file and report a miss.
		s2 := open(t, Options{Dir: dir})
		if _, err := s2.Get(context.Background(), KindResult, k); !errors.Is(err, ErrNotFound) {
			t.Errorf("%s: Get = %v, want ErrNotFound", name, err)
		}
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s: corrupt file still visible under its key", name)
		}
		q, _ := filepath.Glob(filepath.Join(dir, string(KindResult), "quarantine", "*.corrupt"))
		if len(q) == 0 {
			t.Errorf("%s: nothing quarantined", name)
		}
		var quarantined uint64
		for _, ts := range s2.Stats() {
			if ts.Tier == "disk" && ts.Kind == string(KindResult) {
				quarantined = ts.Quarantined
			}
		}
		if quarantined != 1 {
			t.Errorf("%s: quarantined counter = %d, want 1", name, quarantined)
		}
		// Rewrite for the next subcase.
		if err := s.Put(KindResult, k, []byte("precious bytes")); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashMidWriteInvisible: a writer that dies before the rename
// leaves only a tmp file — the key must read as absent, and a later
// Open must sweep the orphan once it is stale.
func TestCrashMidWriteInvisible(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Options{Dir: dir})
	kindDir := filepath.Join(dir, string(KindResult))
	tmp := filepath.Join(kindDir, "tmp-crashed")
	if err := os.WriteFile(tmp, []byte("partial art"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(context.Background(), KindResult, key(4)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("partial write visible: %v", err)
	}
	// Fresh orphans survive Open (a live writer may be mid-rename)…
	open(t, Options{Dir: dir})
	if _, err := os.Stat(tmp); err != nil {
		t.Fatal("fresh temp file swept too eagerly")
	}
	// …stale ones are swept.
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}
	open(t, Options{Dir: dir})
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale temp orphan not swept at Open")
	}
}

func TestDiskEviction(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 1024)
	s := open(t, Options{Dir: dir, DiskBytes: 4 * 1100})
	for i := 0; i < 8; i++ {
		if err := s.Put(KindResult, key(10+i), payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes make the LRU-by-mtime order deterministic.
		path := s.kind[KindResult].path(key(10 + i))
		mt := time.Now().Add(time.Duration(i-8) * time.Minute)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// One more Put triggers the eviction pass.
	if err := s.Put(KindResult, key(30), payload); err != nil {
		t.Fatal(err)
	}
	var st TierStats
	for _, ts := range s.Stats() {
		if ts.Tier == "disk" && ts.Kind == string(KindResult) {
			st = ts
		}
	}
	if st.Bytes > 4*1100 {
		t.Errorf("disk tier at %d bytes, budget %d", st.Bytes, 4*1100)
	}
	if st.Evictions == 0 {
		t.Error("no evictions counted")
	}
	// The newest artifact must have survived.
	if _, err := os.Stat(s.kind[KindResult].path(key(30))); err != nil {
		t.Error("just-written artifact evicted")
	}
	// The oldest must be gone.
	if _, err := os.Stat(s.kind[KindResult].path(key(10))); !errors.Is(err, os.ErrNotExist) {
		t.Error("oldest artifact not evicted")
	}
}

func TestMemoryLRU(t *testing.T) {
	// Memory-only store with room for two 1KB artifacts.
	s := open(t, Options{MemBytes: 2048})
	payload := bytes.Repeat([]byte("m"), 1000)
	for i := 0; i < 3; i++ {
		if err := s.Put(KindResult, key(40+i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// The first artifact was evicted; the last two are resident.
	if _, err := s.Get(context.Background(), KindResult, key(40)); !errors.Is(err, ErrNotFound) {
		t.Errorf("oldest entry still resident: %v", err)
	}
	if _, err := s.Get(context.Background(), KindResult, key(42)); err != nil {
		t.Errorf("newest entry missing: %v", err)
	}
	var st TierStats
	for _, ts := range s.Stats() {
		if ts.Tier == "memory" && ts.Kind == string(KindResult) {
			st = ts
		}
	}
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("memory stats = %+v, want 1 eviction and 2 residents", st)
	}
	if st.Bytes != 2000 {
		t.Errorf("memory bytes = %d, want 2000", st.Bytes)
	}
}

// TestPeerTier: a store misses locally, fetches from an HTTP peer,
// persists the artifact, and Share pushes through the same protocol.
func TestPeerTier(t *testing.T) {
	remote := map[string][]byte{key(50): []byte("from the peer")}
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/v1/artifacts/"), "/")
		if len(parts) != 2 {
			http.Error(w, "bad path", http.StatusBadRequest)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		switch r.Method {
		case http.MethodGet:
			b, ok := remote[parts[1]]
			if !ok {
				http.Error(w, `{"error":"no such artifact"}`, http.StatusNotFound)
				return
			}
			w.Write(b)
		case http.MethodPut:
			b, err := ReadAllLimited(r.Body, MaxArtifactBytes)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			remote[parts[1]] = b
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	defer srv.Close()

	dir := t.TempDir()
	s := open(t, Options{Dir: dir, Peer: NewHTTPPeer(srv.URL)})
	got, err := s.Get(context.Background(), KindTrace, key(50))
	if err != nil || string(got) != "from the peer" {
		t.Fatalf("peer Get = %q, %v", got, err)
	}
	// The fetch persisted locally: a fresh store over the same dir
	// serves it without the peer.
	s2 := open(t, Options{Dir: dir})
	if got, err := s2.Get(context.Background(), KindTrace, key(50)); err != nil || string(got) != "from the peer" {
		t.Fatalf("fetched artifact not persisted: %q, %v", got, err)
	}
	// A key nobody holds is a miss, counted on the peer tier.
	if _, err := s.Get(context.Background(), KindTrace, key(51)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key = %v, want ErrNotFound", err)
	}
	// Share pushes.
	s.Share(context.Background(), KindTrace, key(52), []byte("pushed"))
	mu.Lock()
	pushed := string(remote[key(52)])
	mu.Unlock()
	if pushed != "pushed" {
		t.Fatalf("Share did not reach the peer: %q", pushed)
	}
	var peer TierStats
	for _, ts := range s.Stats() {
		if ts.Tier == "peer" && ts.Kind == string(KindTrace) {
			peer = ts
		}
	}
	if peer.Hits != 1 || peer.Misses != 1 || peer.Pushes != 1 {
		t.Errorf("peer stats = %+v, want 1 hit, 1 miss, 1 push", peer)
	}
}

// TestConcurrentStress hammers Get/Put/Stat from many goroutines;
// run under -race this is the fabric's thread-safety proof.
func TestConcurrentStress(t *testing.T) {
	s := open(t, Options{Dir: t.TempDir(), MemBytes: 8 << 10, DiskBytes: 64 << 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(100 + (g+i)%16)
				kind := KindResult
				if i%2 == 0 {
					kind = KindTrace
				}
				switch i % 3 {
				case 0:
					if err := s.Put(kind, k, bytes.Repeat([]byte{byte(i)}, 512)); err != nil {
						t.Error(err)
					}
				case 1:
					s.Get(context.Background(), kind, k)
				case 2:
					s.Stat(kind, k)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPutRejectsOversized(t *testing.T) {
	s := open(t, Options{})
	huge := make([]byte, 0)
	_ = huge
	// Do not allocate 256MB in a unit test: validate the bound check
	// via a fake length using ReadAllLimited instead.
	if _, err := ReadAllLimited(bytes.NewReader(bytes.Repeat([]byte("x"), 100)), 64); err == nil {
		t.Error("ReadAllLimited accepted an oversized stream")
	}
	if b, err := ReadAllLimited(bytes.NewReader([]byte("ok")), 64); err != nil || string(b) != "ok" {
		t.Errorf("ReadAllLimited = %q, %v", b, err)
	}
	if err := s.Put(KindResult, key(1), []byte("fine")); err != nil {
		t.Errorf("small Put failed: %v", err)
	}
}
