package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	"eole"
	"eole/internal/obs"
	"eole/internal/simsvc"
)

func testService(t *testing.T, par int) *simsvc.Service {
	t.Helper()
	svc, err := simsvc.New(simsvc.Options{Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func testRegistry(t *testing.T, svc *simsvc.Service, opts Options) *Registry {
	t.Helper()
	g := New(svc, opts)
	t.Cleanup(g.Close)
	return g
}

func req(t *testing.T, cfgName, wl string, measure uint64) simsvc.Request {
	t.Helper()
	cfg, err := eole.NamedConfig(cfgName)
	if err != nil {
		t.Fatal(err)
	}
	return simsvc.Request{Config: cfg, Workload: wl, Warmup: 1_000, Measure: measure}
}

// smallSweep is a fast 2×2 grid of distinct cells.
func smallSweep(t *testing.T, measure uint64) []simsvc.Request {
	t.Helper()
	var reqs []simsvc.Request
	for _, c := range []string{"EOLE_4_64", "Baseline_6_64"} {
		for _, w := range []string{"gzip", "art"} {
			reqs = append(reqs, req(t, c, w, measure))
		}
	}
	return reqs
}

func waitState(t *testing.T, j *Job, want State) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job stuck in %q waiting for %q", j.Status(false).State, want)
	}
	st := j.Status(true)
	if st.State != want {
		t.Fatalf("terminal state %q, want %q", st.State, want)
	}
	return st
}

// TestJobLifecycle: a sweep job runs every cell, the event log holds
// one cell event per cell plus a terminal frame with contiguous seqs,
// and the status snapshot agrees with the log.
func TestJobLifecycle(t *testing.T) {
	g := testRegistry(t, testService(t, 2), Options{})
	reqs := smallSweep(t, 3_000)
	j, err := g.Create(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() == "" {
		t.Fatal("job has no ID")
	}
	st := waitState(t, j, StateDone)
	if st.CellsTotal != 4 || st.CellsCompleted != 4 || st.CellsFailed != 0 {
		t.Fatalf("cells %d/%d done, %d failed, want 4/4 and 0", st.CellsCompleted, st.CellsTotal, st.CellsFailed)
	}
	if st.FinishedAtUnixMS == 0 || st.FinishedAtUnixMS < st.CreatedAtUnixMS {
		t.Errorf("finished stamp %d inconsistent with created %d", st.FinishedAtUnixMS, st.CreatedAtUnixMS)
	}
	for i, c := range st.Cells {
		if !c.Done || c.Error != "" {
			t.Errorf("cell %d (%s/%s) not done: %+v", i, c.Config, c.Workload, c)
		}
	}

	evs, _ := j.EventsSince(0)
	if len(evs) != 5 {
		t.Fatalf("%d events, want 4 cells + 1 terminal", len(evs))
	}
	seenIdx := make(map[int]bool)
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Errorf("event %d has seq %d, want contiguous 1-based", i, ev.Seq)
		}
		if ev.Job != j.ID() {
			t.Errorf("event %d stamped job %q, want %q", i, ev.Job, j.ID())
		}
		if i < 4 {
			if ev.Type != EventCell || ev.Cell == nil || ev.Cell.Report == nil {
				t.Fatalf("event %d: %+v, want a cell event with a report", i, ev)
			}
			seenIdx[ev.Cell.Index] = true
		}
	}
	last := evs[len(evs)-1]
	if last.Type != EventDone || last.State != StateDone || last.Completed != 4 || last.Total != 4 {
		t.Errorf("terminal frame %+v, want done 4/4", last)
	}
	if len(seenIdx) != 4 {
		t.Errorf("cell events cover %d distinct indexes, want 4", len(seenIdx))
	}

	// Late attach on a terminal job replays the full log; a positive
	// cursor replays only the suffix.
	evs2, _ := j.EventsSince(0)
	if len(evs2) != 5 {
		t.Errorf("late attach replayed %d events, want 5", len(evs2))
	}
	tail, _ := j.EventsSince(3)
	if len(tail) != 2 || tail[0].Seq != 4 {
		t.Errorf("EventsSince(3) = %d events starting at %d, want 2 from seq 4", len(tail), tail[0].Seq)
	}
	// A cursor past the end returns nothing rather than panicking.
	if none, _ := j.EventsSince(99); len(none) != 0 {
		t.Errorf("EventsSince past the end returned %d events", len(none))
	}
}

// TestJobCached: a job over already-simulated cells completes from
// cache and says so in its events.
func TestJobCached(t *testing.T) {
	svc := testService(t, 2)
	g := testRegistry(t, svc, Options{})
	r := req(t, "EOLE_4_64", "gzip", 3_000)
	j1, err := g.Create(context.Background(), []simsvc.Request{r})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateDone)
	j2, err := g.Create(context.Background(), []simsvc.Request{r})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j2, StateDone)
	evs, _ := j2.EventsSince(0)
	if len(evs) != 2 || !evs[0].Cell.Cached {
		t.Errorf("re-run cell not marked cached: %+v", evs[0])
	}
}

// TestJobFailedCell: an unresolvable workload keys fine but fails at
// run time — the job ends failed, the cell event carries the error,
// and the terminal frame counts it.
func TestJobFailedCell(t *testing.T) {
	g := testRegistry(t, testService(t, 2), Options{})
	reqs := []simsvc.Request{
		req(t, "EOLE_4_64", "gzip", 3_000),
		req(t, "EOLE_4_64", "no-such-workload", 3_000),
	}
	j, err := g.Create(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j, StateFailed)
	if st.CellsCompleted != 1 || st.CellsFailed != 1 {
		t.Fatalf("cells %d done / %d failed, want 1/1", st.CellsCompleted, st.CellsFailed)
	}
	if st.Cells[1].Error == "" || st.Cells[1].Done {
		t.Errorf("failed cell status: %+v", st.Cells[1])
	}
	evs, _ := j.EventsSince(0)
	var sawErr bool
	for _, ev := range evs {
		if ev.Type == EventCell && ev.Cell.Error != "" {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("no cell event carried the failure")
	}
	if last := evs[len(evs)-1]; last.State != StateFailed || last.Failed != 1 {
		t.Errorf("terminal frame %+v, want failed with 1 failed cell", last)
	}
}

// TestJobCancel: canceling a running job reaches a canceled terminal
// state, the terminal event says so, and the underlying simulation is
// actually abandoned (sims_abandoned ticks) instead of running to
// completion for nobody.
func TestJobCancel(t *testing.T) {
	svc := testService(t, 1)
	g := testRegistry(t, svc, Options{})
	// One long cell: parallelism 1 guarantees it is the running one.
	j, err := g.Create(context.Background(), []simsvc.Request{req(t, "EOLE_4_64", "mcf", 3_000_000)})
	if err != nil {
		t.Fatal(err)
	}
	// Let the runner actually start the cell before canceling.
	deadline := time.Now().Add(10 * time.Second)
	for svc.InFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, ok := g.Cancel(j.ID()); !ok {
		t.Fatal("Cancel says the job does not exist")
	}
	st := waitState(t, j, StateCanceled)
	if st.CellsCompleted != 0 {
		t.Errorf("%d cells completed on a canceled job", st.CellsCompleted)
	}
	evs, _ := j.EventsSince(0)
	if len(evs) != 1 || evs[0].Type != EventDone || evs[0].State != StateCanceled {
		t.Fatalf("canceled job log %+v, want a single canceled terminal frame", evs)
	}
	// The abandonment is observed by the service watcher (a short
	// poll), so allow it a moment.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if svc.Stats().SimsAbandoned >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ab := svc.Stats().SimsAbandoned; ab < 1 {
		t.Errorf("sims_abandoned = %d after cancel, want >= 1", ab)
	}
	if got := g.Stats().Canceled; got != 1 {
		t.Errorf("registry canceled counter = %d, want 1", got)
	}
	// Cancel is idempotent and a no-op on terminal jobs.
	if _, ok := g.Cancel(j.ID()); !ok {
		t.Error("second cancel must still find the job")
	}
	if got := g.Stats().Canceled; got != 1 {
		t.Errorf("terminal cancel counted: %d, want still 1", got)
	}
}

// TestEventsSinceWakes: a consumer blocked on the change channel is
// woken by the next append rather than having to poll.
func TestEventsSinceWakes(t *testing.T) {
	g := testRegistry(t, testService(t, 2), Options{})
	j, err := g.Create(context.Background(), []simsvc.Request{req(t, "EOLE_4_64", "gzip", 3_000)})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	deadline := time.After(30 * time.Second)
	for {
		evs, changed := j.EventsSince(seen)
		for _, ev := range evs {
			seen = ev.Seq
			if ev.Type == EventDone {
				if seen != 2 {
					t.Errorf("terminal at seq %d, want 2", seen)
				}
				return
			}
		}
		select {
		case <-changed:
		case <-deadline:
			t.Fatal("change channel never woke the consumer")
		}
	}
}

// TestRegistryTTL: terminal jobs expire lazily after the TTL; active
// jobs never do.
func TestRegistryTTL(t *testing.T) {
	g := testRegistry(t, testService(t, 2), Options{TTL: 50 * time.Millisecond})
	j, err := g.Create(context.Background(), []simsvc.Request{req(t, "EOLE_4_64", "gzip", 3_000)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	if _, ok := g.Get(j.ID()); !ok {
		t.Fatal("terminal job gone before its TTL")
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := g.Get(j.ID()); !ok {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := g.Get(j.ID()); ok {
		t.Fatal("terminal job survived its TTL")
	}
	if st := g.Stats(); st.Expired != 1 || st.Retained != 0 {
		t.Errorf("stats after expiry: %+v", st)
	}
}

// TestRegistryEviction: at MaxJobs the oldest terminal job is evicted
// to admit a new one; with only active jobs retained, Create sheds
// load with ErrBusy.
func TestRegistryEviction(t *testing.T) {
	svc := testService(t, 1)
	g := testRegistry(t, svc, Options{MaxJobs: 2})
	fast := []simsvc.Request{req(t, "EOLE_4_64", "gzip", 3_000)}
	j1, err := g.Create(context.Background(), fast)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateDone)
	j2, err := g.Create(context.Background(), []simsvc.Request{req(t, "Baseline_6_64", "gzip", 3_000)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j2, StateDone)
	// Full of terminal jobs: the third evicts the oldest (j1).
	j3, err := g.Create(context.Background(), []simsvc.Request{req(t, "EOLE_4_64", "art", 3_000)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Get(j1.ID()); ok {
		t.Error("oldest terminal job not evicted at the bound")
	}
	if _, ok := g.Get(j2.ID()); !ok {
		t.Error("newer terminal job evicted out of order")
	}
	if g.Stats().Evicted != 1 {
		t.Errorf("evicted counter = %d, want 1", g.Stats().Evicted)
	}
	waitState(t, j3, StateDone)

	// Fill with active (long) jobs, then overflow: ErrBusy.
	long := func(wl string) []simsvc.Request {
		return []simsvc.Request{req(t, "EOLE_4_64", wl, 3_000_000)}
	}
	a, err := g.Create(context.Background(), long("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Create(context.Background(), long("equake"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Create(context.Background(), long("swim")); !errors.Is(err, ErrBusy) {
		t.Fatalf("overflow with all-active registry: %v, want ErrBusy", err)
	}
	a.Cancel()
	b.Cancel()
	waitState(t, a, StateCanceled)
	waitState(t, b, StateCanceled)
}

// TestRegistryClose: Close cancels active jobs, waits for their
// runners, and refuses new work.
func TestRegistryClose(t *testing.T) {
	svc := testService(t, 1)
	g := New(svc, Options{})
	j, err := g.Create(context.Background(), []simsvc.Request{req(t, "EOLE_4_64", "mcf", 3_000_000)})
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	select {
	case <-j.Done():
	default:
		t.Fatal("Close returned with a job still running")
	}
	if st := j.Status(false); st.State != StateCanceled {
		t.Errorf("job state after Close: %q, want canceled", st.State)
	}
	if _, err := g.Create(context.Background(), []simsvc.Request{req(t, "EOLE_4_64", "gzip", 3_000)}); !errors.Is(err, ErrClosed) {
		t.Errorf("Create after Close: %v, want ErrClosed", err)
	}
}

// TestRequestIDPropagation: the creating request's ID is carried into
// the job, its status, and every event — one trace across the async
// boundary.
func TestRequestIDPropagation(t *testing.T) {
	g := testRegistry(t, testService(t, 2), Options{})
	ctx := obs.WithRequestID(context.Background(), "test-rid-42")
	j, err := g.Create(ctx, []simsvc.Request{req(t, "EOLE_4_64", "gzip", 3_000)})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j, StateDone)
	if st.RequestID != "test-rid-42" {
		t.Errorf("status request_id %q", st.RequestID)
	}
	evs, _ := j.EventsSince(0)
	for _, ev := range evs {
		if ev.RequestID != "test-rid-42" {
			t.Errorf("event %d request_id %q", ev.Seq, ev.RequestID)
		}
	}
}

// TestListOrder: List returns oldest-first with stable ties and
// reflects live state.
func TestListOrder(t *testing.T) {
	g := testRegistry(t, testService(t, 2), Options{})
	var ids []string
	for _, wl := range []string{"gzip", "art", "hmmer"} {
		j, err := g.Create(context.Background(), []simsvc.Request{req(t, "EOLE_4_64", wl, 3_000)})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateDone)
		ids = append(ids, j.ID())
	}
	list := g.List()
	if len(list) != 3 {
		t.Fatalf("%d jobs listed, want 3", len(list))
	}
	for i, st := range list {
		if i > 0 && st.CreatedAtUnixMS < list[i-1].CreatedAtUnixMS {
			t.Errorf("list out of order at %d", i)
		}
		if st.Cells != nil {
			t.Errorf("list snapshot %d carries per-cell detail", i)
		}
		_ = ids
	}
	if st := g.Stats(); st.Created != 3 || st.Retained != 3 || st.Active != 0 {
		t.Errorf("stats %+v, want 3 created/retained, 0 active", st)
	}
}

// TestCreateEmpty rejects an empty cell list up front.
func TestCreateEmpty(t *testing.T) {
	g := testRegistry(t, testService(t, 1), Options{})
	if _, err := g.Create(context.Background(), nil); err == nil {
		t.Fatal("empty create must fail")
	}
}
