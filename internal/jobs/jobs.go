// Package jobs is the asynchronous job layer over the batch
// simulation service: a registry of long-running sweep/simulate jobs
// that a client creates with one short HTTP request and then observes
// — by polling a status snapshot, or by attaching to an append-only
// per-cell event log that replays everything already completed and
// streams the rest live.
//
// The design goal is that no HTTP request ever has to stay open for
// the lifetime of a simulation. A Job owns its own context, detached
// from whatever request created it; cancellation is an explicit
// operation (Job.Cancel, eoled's DELETE /v1/jobs/{id}) that feeds the
// existing simsvc context-cancellation path, so a canceled job's
// queued cells are dropped and its running simulations are abandoned
// at the core's next checkpoint (surfaced as sims_abandoned).
//
// Events are totally ordered per job: cell completions are appended
// in completion order with contiguous 1-based sequence numbers and
// the terminal event is always last. A consumer that reconnects asks
// for "everything after seq N" and misses nothing — EventsSince
// returns a snapshot plus a change signal, so the serving layer needs
// no per-subscriber buffers and a slow reader can never stall the
// job.
//
// The registry is bounded two ways: terminal jobs expire after a TTL
// (swept lazily on registry operations — no background goroutine),
// and a MaxJobs cap evicts the oldest terminal job on creation once
// the map is full. Active jobs are never evicted; when the cap is
// reached and every retained job is still active, Create fails with
// ErrBusy, which serving layers map to backpressure.
package jobs

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"eole"
	"eole/internal/obs"
	"eole/internal/simsvc"
)

// ErrNotFound is returned for operations on an unknown (or already
// expired/evicted) job ID.
var ErrNotFound = errors.New("jobs: no such job")

// ErrBusy is returned by Create when the registry is at MaxJobs and
// every retained job is still active: there is nothing to evict, so
// the caller should shed load (eoled answers 429).
var ErrBusy = errors.New("jobs: registry full of active jobs")

// ErrClosed is returned by Create after Close has begun.
var ErrClosed = errors.New("jobs: registry closed")

// State is a job's lifecycle state on the wire.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final: no further events will
// be appended and the job is eligible for TTL expiry.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event types. Heartbeats are synthesized by streaming transports
// (they keep idle connections alive) and are never stored in the
// log, so they carry no sequence number and replay never sees them.
const (
	EventCell      = "cell"
	EventDone      = "done"
	EventHeartbeat = "heartbeat"
)

// CellEvent is the payload of one completed cell: its sweep position,
// identity, and exactly one of Report/Error.
type CellEvent struct {
	Index    int          `json:"index"`
	Config   string       `json:"config"`
	Workload string       `json:"workload"`
	Cached   bool         `json:"cached,omitempty"`
	Report   *eole.Report `json:"report,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// Event is one frame of a job's progress stream. Seq numbers are
// contiguous and 1-based per job; the terminal EventDone frame is
// always the last one appended and carries the final summary.
type Event struct {
	Seq       int        `json:"seq,omitempty"`
	Type      string     `json:"type"`
	Job       string     `json:"job,omitempty"`
	RequestID string     `json:"request_id,omitempty"`
	Cell      *CellEvent `json:"cell,omitempty"`

	// Terminal summary (EventDone only).
	State     State `json:"state,omitempty"`
	Completed int   `json:"completed,omitempty"`
	Failed    int   `json:"failed,omitempty"`
	Total     int   `json:"total,omitempty"`
}

// CellStatus is one cell's place in a job status snapshot.
type CellStatus struct {
	Config   string `json:"config"`
	Workload string `json:"workload"`
	Done     bool   `json:"done"`
	Cached   bool   `json:"cached,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Status is a point-in-time snapshot of one job, as served by
// GET /v1/jobs/{id} (with Cells) and the /v1/jobs list (without).
type Status struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	RequestID string `json:"request_id,omitempty"`
	// CreatedAtUnixMS/FinishedAtUnixMS are wall-clock milliseconds:
	// integral on the wire so list output is stable to render.
	CreatedAtUnixMS  int64        `json:"created_at_unix_ms"`
	FinishedAtUnixMS int64        `json:"finished_at_unix_ms,omitempty"`
	CellsTotal       int          `json:"cells_total"`
	CellsCompleted   int          `json:"cells_completed"`
	CellsFailed      int          `json:"cells_failed"`
	LastSeq          int          `json:"last_seq"`
	Cells            []CellStatus `json:"cells,omitempty"`
}

// Options configures a Registry. The zero value is usable.
type Options struct {
	// TTL is how long a terminal job is retained for late polls and
	// event replays before lazy expiry (default 15m).
	TTL time.Duration
	// MaxJobs bounds the number of retained jobs, active plus
	// terminal (default 512). At the bound, Create evicts the oldest
	// terminal job; with only active jobs retained it fails ErrBusy.
	MaxJobs int
	// Logger receives job lifecycle events (nil = discard).
	Logger *slog.Logger
	// Tracer, when set, records one job.run span per job (creation →
	// terminal state) and one job.cell span per cell (submit → result),
	// parented under the creating request's span so an async job's
	// whole execution lands in the trace of the POST that started it.
	Tracer *obs.Tracer
}

// Stats is the registry's accounting snapshot, served inside
// /v1/stats and mirrored into /metrics.
type Stats struct {
	Active   int    `json:"active"`
	Retained int    `json:"retained"`
	Created  uint64 `json:"created"`
	Canceled uint64 `json:"canceled"`
	Evicted  uint64 `json:"evicted"`
	Expired  uint64 `json:"expired"`
	Events   uint64 `json:"events_emitted"`
	Streams  int64  `json:"streams_attached"`
}

// Registry tracks every job on one service. Create with New; Close
// cancels active jobs and waits for their runners.
type Registry struct {
	svc  *simsvc.Service
	opts Options
	log  *slog.Logger

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool
	wg     sync.WaitGroup // one hold per running job runner

	created  atomic.Uint64
	canceled atomic.Uint64
	evicted  atomic.Uint64
	expired  atomic.Uint64
	events   atomic.Uint64
	streams  atomic.Int64
}

// New builds a registry over the service.
func New(svc *simsvc.Service, opts Options) *Registry {
	if opts.TTL <= 0 {
		opts.TTL = 15 * time.Minute
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 512
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Registry{svc: svc, opts: opts, log: opts.Logger, jobs: make(map[string]*Job)}
}

// Job is one asynchronous sweep (a single simulation is a one-cell
// sweep). All mutable state is guarded by mu; events is append-only
// and seq numbers are its 1-based indexes.
type Job struct {
	id        string
	reqs      []simsvc.Request
	requestID string
	createdAt time.Time
	cancel    context.CancelFunc

	mu        sync.Mutex
	state     State
	canceled  bool
	cells     []CellStatus
	completed int
	failed    int
	events    []Event
	changed   chan struct{} // closed and replaced on every append
	finished  time.Time
	done      chan struct{}
}

// ID returns the job's registry key.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel cancels the job's context: queued cells are dropped and
// running simulations whose only waiters belong to this job are
// abandoned. Idempotent; a no-op on terminal jobs.
func (j *Job) Cancel() {
	j.mu.Lock()
	already := j.canceled || j.state.Terminal()
	j.canceled = true
	j.mu.Unlock()
	if !already {
		j.cancel()
	}
}

// Status snapshots the job; withCells includes the per-cell detail.
func (j *Job) Status(withCells bool) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:              j.id,
		State:           j.state,
		RequestID:       j.requestID,
		CreatedAtUnixMS: j.createdAt.UnixMilli(),
		CellsTotal:      len(j.cells),
		CellsCompleted:  j.completed,
		CellsFailed:     j.failed,
		LastSeq:         len(j.events),
	}
	if !j.finished.IsZero() {
		st.FinishedAtUnixMS = j.finished.UnixMilli()
	}
	if withCells {
		st.Cells = append([]CellStatus(nil), j.cells...)
	}
	return st
}

// EventsSince returns the events with seq > after (a snapshot safe to
// read without locks — the log is append-only) plus a channel that is
// closed the next time an event is appended. The idiom for a streamer:
//
//	for {
//		evs, changed := job.EventsSince(seen)
//		...emit evs, stop after the EventDone frame...
//		select { case <-changed: case <-ctx.Done(): return }
//	}
//
// A terminal job's log ends with EventDone, so a late attach replays
// everything and terminates without ever blocking.
func (j *Job) EventsSince(after int) ([]Event, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if after < 0 {
		after = 0
	}
	if after > len(j.events) {
		after = len(j.events)
	}
	return j.events[after:len(j.events):len(j.events)], j.changed
}

// appendLocked appends one event (stamping seq/job/request ID) and
// wakes every EventsSince waiter. Requires j.mu.
func (j *Job) appendLocked(g *Registry, ev Event) {
	ev.Seq = len(j.events) + 1
	ev.Job = j.id
	ev.RequestID = j.requestID
	j.events = append(j.events, ev)
	g.events.Add(1)
	close(j.changed)
	j.changed = make(chan struct{})
}

// Create registers a new job over the request list and starts its
// runner. The job's lifetime is detached from ctx — only the request
// ID is carried over, so the job's simulations trace back to the
// request that created it. Cancellation is explicit via Job.Cancel.
func (g *Registry) Create(ctx context.Context, reqs []simsvc.Request) (*Job, error) {
	if len(reqs) == 0 {
		return nil, errors.New("jobs: empty request list")
	}
	now := time.Now()
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, ErrClosed
	}
	g.expireLocked(now)
	if len(g.jobs) >= g.opts.MaxJobs {
		if !g.evictOldestTerminalLocked() {
			g.mu.Unlock()
			return nil, ErrBusy
		}
	}
	id := obs.NewRequestID()
	for g.jobs[id] != nil { // collision: redraw
		id = obs.NewRequestID()
	}
	jctx, cancel := context.WithCancel(context.Background())
	rid := obs.RequestID(ctx)
	if rid != "" {
		jctx = obs.WithRequestID(jctx, rid)
	}
	// Like the request ID, the creating request's span is carried into
	// the detached job context — the job's spans join that trace, while
	// its lifetime stays independent of the creating request.
	if sp := obs.SpanFrom(ctx); sp != nil {
		jctx = obs.ContextWithSpan(jctx, sp)
	}
	j := &Job{
		id:        id,
		reqs:      reqs,
		requestID: rid,
		createdAt: now,
		cancel:    cancel,
		state:     StateQueued,
		cells:     make([]CellStatus, len(reqs)),
		changed:   make(chan struct{}),
		done:      make(chan struct{}),
	}
	for i, req := range reqs {
		j.cells[i] = CellStatus{Config: req.Config.Label(), Workload: req.Workload}
	}
	g.jobs[id] = j
	g.wg.Add(1)
	g.mu.Unlock()
	g.created.Add(1)
	g.log.Info("job_created", "job", id, "cells", len(reqs), "request_id", rid)
	go g.run(jctx, j)
	return j, nil
}

// Get returns a job by ID (false for unknown, expired or evicted).
func (g *Registry) Get(id string) (*Job, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.expireLocked(time.Now())
	j, ok := g.jobs[id]
	return j, ok
}

// Cancel cancels the job with the given ID, reporting whether it
// exists.
func (g *Registry) Cancel(id string) (*Job, bool) {
	j, ok := g.Get(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	effective := !j.canceled && !j.state.Terminal()
	j.mu.Unlock()
	if effective {
		g.canceled.Add(1)
		g.log.Info("job_canceled", "job", id, "request_id", j.requestID)
	}
	j.Cancel()
	return j, true
}

// List snapshots every retained job, oldest first (ties broken by ID
// so the order is stable).
func (g *Registry) List() []Status {
	g.mu.Lock()
	g.expireLocked(time.Now())
	jobs := make([]*Job, 0, len(g.jobs))
	for _, j := range g.jobs {
		jobs = append(jobs, j)
	}
	g.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status(false)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].CreatedAtUnixMS != out[b].CreatedAtUnixMS {
			return out[a].CreatedAtUnixMS < out[b].CreatedAtUnixMS
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Stats snapshots the registry counters.
func (g *Registry) Stats() Stats {
	g.mu.Lock()
	retained := len(g.jobs)
	active := 0
	for _, j := range g.jobs {
		if !j.Status(false).State.Terminal() {
			active++
		}
	}
	g.mu.Unlock()
	return Stats{
		Active:   active,
		Retained: retained,
		Created:  g.created.Load(),
		Canceled: g.canceled.Load(),
		Evicted:  g.evicted.Load(),
		Expired:  g.expired.Load(),
		Events:   g.events.Load(),
		Streams:  g.streams.Load(),
	}
}

// StreamAttached/StreamDetached account one live event-stream
// subscriber; serving layers call them around a streaming response so
// operators can see attached consumers in /metrics.
func (g *Registry) StreamAttached() { g.streams.Add(1) }
func (g *Registry) StreamDetached() { g.streams.Add(-1) }

// Close stops the registry: no new jobs, every active job is canceled,
// and Close blocks until their runners have resolved. Idempotent.
func (g *Registry) Close() {
	g.mu.Lock()
	g.closed = true
	jobs := make([]*Job, 0, len(g.jobs))
	for _, j := range g.jobs {
		jobs = append(jobs, j)
	}
	g.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	g.wg.Wait()
}

// expireLocked removes terminal jobs past their TTL. Requires g.mu.
func (g *Registry) expireLocked(now time.Time) {
	for id, j := range g.jobs {
		j.mu.Lock()
		gone := j.state.Terminal() && now.Sub(j.finished) > g.opts.TTL
		j.mu.Unlock()
		if gone {
			delete(g.jobs, id)
			g.expired.Add(1)
		}
	}
}

// evictOldestTerminalLocked removes the oldest-finished terminal job
// to make room, reporting whether one existed. Requires g.mu.
func (g *Registry) evictOldestTerminalLocked() bool {
	var victim string
	var oldest time.Time
	for id, j := range g.jobs {
		j.mu.Lock()
		terminal, fin := j.state.Terminal(), j.finished
		j.mu.Unlock()
		if terminal && (victim == "" || fin.Before(oldest)) {
			victim, oldest = id, fin
		}
	}
	if victim == "" {
		return false
	}
	delete(g.jobs, victim)
	g.evicted.Add(1)
	return true
}

// run is the job's runner: submit every cell, collect completions in
// completion order, seal the job with a terminal event. The runner is
// the only writer of job state after creation, so event ordering is
// total: cells first (as they finish), EventDone last.
func (g *Registry) run(ctx context.Context, j *Job) {
	defer g.wg.Done()
	ctx, jsp := g.opts.Tracer.StartSpan(ctx, "job.run")
	jsp.SetAttr("job", j.id)
	jsp.SetAttr("cells", strconv.Itoa(len(j.reqs)))
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
	g.log.Info("job_started", "job", j.id, "cells", len(j.reqs), "request_id", j.requestID)

	var wg sync.WaitGroup
	for i := range j.reqs {
		if ctx.Err() != nil {
			// Canceled mid-submission: remaining cells never enter the
			// service; they stay !Done and the terminal event reports
			// the cancel.
			break
		}
		cctx, csp := g.opts.Tracer.StartSpan(ctx, "job.cell")
		csp.SetAttr("config", j.reqs[i].Config.Label())
		csp.SetAttr("workload", j.reqs[i].Workload)
		sj, err := g.svc.Submit(cctx, j.reqs[i])
		if err != nil {
			csp.SetError(err)
			csp.End()
			g.finishCell(j, i, nil, false, err)
			continue
		}
		wg.Add(1)
		go func(i int, sj *simsvc.Job, csp *obs.Span) {
			defer wg.Done()
			rep, err := sj.Wait(ctx)
			csp.SetAttr("cached", strconv.FormatBool(sj.Cached()))
			csp.SetError(err)
			csp.End()
			g.finishCell(j, i, rep, sj.Cached(), err)
		}(i, sj, csp)
	}
	wg.Wait()

	j.mu.Lock()
	switch {
	case j.canceled || ctx.Err() != nil:
		j.state = StateCanceled
	case j.failed > 0:
		j.state = StateFailed
	default:
		j.state = StateDone
	}
	j.finished = time.Now()
	j.appendLocked(g, Event{
		Type:      EventDone,
		State:     j.state,
		Completed: j.completed,
		Failed:    j.failed,
		Total:     len(j.cells),
	})
	state, completed, failed := j.state, j.completed, j.failed
	j.mu.Unlock()
	jsp.SetAttr("state", string(state))
	jsp.End()
	close(j.done)
	g.log.Info("job_finished", "job", j.id, "state", string(state),
		"completed", completed, "failed", failed, "total", len(j.reqs),
		"request_id", j.requestID)
}

// finishCell records one cell outcome and appends its event. A
// cancellation-shaped error on a canceled job is the cancel itself,
// not a cell failure: the cell keeps its error for status polls but
// emits no event (the terminal frame covers it) and does not count
// toward CellsFailed.
func (g *Registry) finishCell(j *Job, i int, rep *eole.Report, cached bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	cell := &j.cells[i]
	cell.Done = err == nil
	cell.Cached = cached
	if err == nil {
		j.completed++
		j.appendLocked(g, Event{Type: EventCell, Cell: &CellEvent{
			Index:    i,
			Config:   cell.Config,
			Workload: cell.Workload,
			Cached:   cached,
			Report:   rep,
		}})
		return
	}
	cell.Error = err.Error()
	if j.canceled && isCancellation(err) {
		return
	}
	j.failed++
	j.appendLocked(g, Event{Type: EventCell, Cell: &CellEvent{
		Index:    i,
		Config:   cell.Config,
		Workload: cell.Workload,
		Error:    err.Error(),
	}})
}

// isCancellation classifies the error shapes the simsvc cancellation
// path produces for a dead job context.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, simsvc.ErrClosed)
}
