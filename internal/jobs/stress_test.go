package jobs

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"eole/internal/simsvc"
)

// TestJobConcurrencyStress is the race-enabled lifecycle mix
// (extending the PR 4 simsvc stress pattern to the job layer):
// concurrent creators, status pollers, event-stream attachers —
// including late attachers and mid-stream abandoners standing in for
// disconnected HTTP clients — and cancelers, all against one registry
// on a small worker pool. Ends with the standard goroutine-leak
// check: Close must drain every runner and waker.
func TestJobConcurrencyStress(t *testing.T) {
	before := runtime.NumGoroutine()
	svc, err := simsvc.New(simsvc.Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := New(svc, Options{TTL: 50 * time.Millisecond, MaxJobs: 64})

	cfgs := []string{"EOLE_4_64", "Baseline_6_64"}
	wls := []string{"gzip", "hmmer"}
	const workers = 8
	const rounds = 5

	var wg sync.WaitGroup
	for worker := 0; worker < workers; worker++ {
		worker := worker
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)))
			for round := 0; round < rounds; round++ {
				var reqs []simsvc.Request
				for _, c := range cfgs {
					for _, w := range wls {
						reqs = append(reqs, req(t, c, w, 3_000))
					}
				}
				j, err := g.Create(context.Background(), reqs)
				if errors.Is(err, ErrBusy) {
					continue // registry full of active jobs: valid shedding
				}
				if err != nil {
					t.Errorf("worker %d: create: %v", worker, err)
					return
				}

				switch worker % 4 {
				case 0:
					// Event consumer: follow the stream to the terminal
					// frame, checking seq contiguity across wakeups.
					seen := 0
					for {
						evs, changed := j.EventsSince(seen)
						terminal := false
						for _, ev := range evs {
							if ev.Seq != seen+1 {
								t.Errorf("worker %d: seq jump %d -> %d", worker, seen, ev.Seq)
							}
							seen = ev.Seq
							if ev.Type == EventDone {
								terminal = true
							}
						}
						if terminal {
							break
						}
						select {
						case <-changed:
						case <-time.After(30 * time.Second):
							t.Errorf("worker %d: stream stalled at seq %d", worker, seen)
							return
						}
					}
					if seen != len(reqs)+1 {
						t.Errorf("worker %d: stream ended at seq %d, want %d", worker, seen, len(reqs)+1)
					}
				case 1:
					// Status poller: hammer snapshots until terminal,
					// asserting monotonic completion counts.
					last := -1
					for {
						st := j.Status(rng.Intn(2) == 0)
						if st.CellsCompleted < last {
							t.Errorf("worker %d: completed went backwards %d -> %d", worker, last, st.CellsCompleted)
						}
						last = st.CellsCompleted
						if st.State.Terminal() {
							break
						}
						time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
					}
				case 2:
					// Canceler: cancel mid-flight (or after — both legal),
					// then verify a canceled or done terminal, never a
					// wedged job.
					time.Sleep(time.Duration(rng.Intn(2_000)) * time.Microsecond)
					g.Cancel(j.ID())
					select {
					case <-j.Done():
					case <-time.After(30 * time.Second):
						t.Errorf("worker %d: canceled job never terminal", worker)
						return
					}
					if st := j.Status(false); st.State != StateCanceled && st.State != StateDone && st.State != StateFailed {
						t.Errorf("worker %d: post-cancel state %q", worker, st.State)
					}
				case 3:
					// Mid-stream disconnect: read a little, abandon the
					// subscription (no unsubscribe call exists — gone is
					// gone, like a dropped HTTP client), then late-attach
					// fresh and demand the full replay.
					evs, changed := j.EventsSince(0)
					if len(evs) == 0 {
						select {
						case <-changed:
						case <-j.Done():
						}
					}
					<-j.Done()
					replay, _ := j.EventsSince(0)
					if len(replay) == 0 || replay[len(replay)-1].Type != EventDone {
						t.Errorf("worker %d: late attach replayed %d events without a terminal", worker, len(replay))
					}
					for i, ev := range replay {
						if ev.Seq != i+1 {
							t.Errorf("worker %d: replay seq %d at position %d", worker, ev.Seq, i)
						}
					}
				}

				// Everyone exercises the read surface a bit more.
				g.List()
				g.Get(j.ID())
				g.Stats()
			}
		}()
	}
	wg.Wait()

	st := g.Stats()
	if st.Created == 0 {
		t.Error("stress created no jobs")
	}
	g.Close()
	if a := g.Stats().Active; a != 0 {
		t.Errorf("%d jobs still active after Close", a)
	}
	svc.Close()

	// Runners, cell waiters and the service's own workers must all be
	// gone once both layers are closed.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutine leak after Close: %d before stress, %d after", before, runtime.NumGoroutine())
}
