package regfile

import (
	"testing"
	"testing/quick"
)

func TestConfigValidation(t *testing.T) {
	bad := Config{IntRegs: 256, FPRegs: 256, Banks: 3}
	if err := bad.Validate(); err == nil {
		t.Fatal("256 registers across 3 banks must be rejected")
	}
	good := Config{IntRegs: 256, FPRegs: 256, Banks: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (Config{IntRegs: 256, FPRegs: 256, Banks: 0}).Validate(); err == nil {
		t.Fatal("zero banks must be rejected")
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	p := New(Config{IntRegs: 8, FPRegs: 8, Banks: 2})
	for i := 0; i < 4; i++ {
		if !p.TryAlloc(false, 0) {
			t.Fatalf("alloc %d failed with registers free", i)
		}
	}
	if p.TryAlloc(false, 0) {
		t.Fatal("bank 0 must be exhausted")
	}
	if p.AllocFails != 1 {
		t.Fatalf("AllocFails = %d, want 1", p.AllocFails)
	}
	// Other bank unaffected.
	if !p.TryAlloc(false, 1) {
		t.Fatal("bank 1 must still have registers")
	}
	p.Free(false, 0)
	if !p.TryAlloc(false, 0) {
		t.Fatal("freed register must be allocatable")
	}
}

func TestIntFPFilesIndependent(t *testing.T) {
	p := New(Config{IntRegs: 4, FPRegs: 4, Banks: 1})
	for i := 0; i < 4; i++ {
		p.TryAlloc(false, 0)
	}
	if p.TryAlloc(false, 0) {
		t.Fatal("INT file exhausted")
	}
	if !p.TryAlloc(true, 0) {
		t.Fatal("FP file must be independent")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := New(Config{IntRegs: 4, FPRegs: 4, Banks: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double free")
		}
	}()
	p.Free(false, 0)
}

func TestBankForRoundRobin(t *testing.T) {
	p := New(Config{IntRegs: 256, FPRegs: 256, Banks: 4})
	counts := map[int]int{}
	for slot := 0; slot < 8; slot++ {
		counts[p.BankFor(slot)]++
	}
	// 8-wide group over 4 banks: exactly 2 per bank (Figure 9).
	for b := 0; b < 4; b++ {
		if counts[b] != 2 {
			t.Fatalf("bank %d receives %d allocations per 8-wide group, want 2", b, counts[b])
		}
	}
}

func TestAllocationConservation(t *testing.T) {
	f := func(ops []bool) bool {
		p := New(Config{IntRegs: 16, FPRegs: 16, Banks: 4})
		allocated := make([]int, 4)
		for i, alloc := range ops {
			b := i % 4
			if alloc {
				if p.TryAlloc(false, b) {
					allocated[b]++
				}
			} else if allocated[b] > 0 {
				p.Free(false, b)
				allocated[b]--
			}
		}
		for b := 0; b < 4; b++ {
			if p.FreeCount(false, b)+allocated[b] != 4 {
				return false
			}
		}
		return p.TotalFree(false) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLEVTArbiterUnconstrained(t *testing.T) {
	a := NewLEVTArbiter(Config{IntRegs: 256, FPRegs: 256, Banks: 4, LEVTReadPortsPerBank: 0})
	for i := 0; i < 100; i++ {
		if !a.TryReserve(0, 0, 0) {
			t.Fatal("unconstrained arbiter must always grant")
		}
	}
}

func TestLEVTArbiterEnforcesBudget(t *testing.T) {
	a := NewLEVTArbiter(Config{IntRegs: 256, FPRegs: 256, Banks: 4, LEVTReadPortsPerBank: 2})
	if !a.TryReserve(0) || !a.TryReserve(0) {
		t.Fatal("two single reads must fit in bank 0")
	}
	if a.TryReserve(0) {
		t.Fatal("third read in bank 0 must be rejected")
	}
	// Other banks unaffected.
	if !a.TryReserve(1, 2) {
		t.Fatal("banks 1,2 must grant")
	}
	a.Reset()
	if !a.TryReserve(0) {
		t.Fatal("budget must refresh after Reset")
	}
}

func TestLEVTArbiterAtomicity(t *testing.T) {
	a := NewLEVTArbiter(Config{IntRegs: 256, FPRegs: 256, Banks: 2, LEVTReadPortsPerBank: 2})
	a.TryReserve(0) // bank0: 1 used
	// Request needing 2 ports in bank 0 and 1 in bank 1 must fail
	// without consuming bank 1's port.
	if a.TryReserve(0, 0, 1) {
		t.Fatal("over-budget composite request must fail")
	}
	if !a.TryReserve(1) || !a.TryReserve(1) {
		t.Fatal("bank 1 ports leaked by failed composite request")
	}
}

func TestLEVTArbiterDuplicateBankCounting(t *testing.T) {
	a := NewLEVTArbiter(Config{IntRegs: 256, FPRegs: 256, Banks: 1, LEVTReadPortsPerBank: 3})
	// One µ-op reading two operands from bank 0 plus validation read.
	if !a.TryReserve(0, 0, 0) {
		t.Fatal("3 reads must fit a 3-port bank")
	}
	if a.TryReserve(0) {
		t.Fatal("bank must now be exhausted")
	}
}

func TestPortCostFormula(t *testing.T) {
	// Section 6: baseline 6-issue PRF = 12R/6W; EOLE_4_64 unbanked =
	// 24R/12W is ~4x the area.
	base := PortCost(12, 6)
	eoleNaive := PortCost(24, 12)
	if ratio := float64(eoleNaive) / float64(base); ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("EOLE naive PRF area ratio = %.2f, paper says ~4x", ratio)
	}
}
