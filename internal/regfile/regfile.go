// Package regfile models the physical register file (PRF) of the
// paper's Section 6: 256 INT + 256 FP physical registers, optionally
// split into 2/4/8 banks (Figure 10), with per-bank port arbitration
// for the Late Execution / Validation and Training stage (Figure 11).
//
// Banking interacts with Rename: physical registers for consecutive
// µ-ops of one rename group are forced to different banks ("out of a
// group of 8 consecutive µ-ops, 2 could be allocated to each bank"),
// and Rename stalls when the designated bank has no free register —
// the load-unbalancing cost Figure 10 quantifies.
package regfile

import "fmt"

// Config sizes the PRF.
type Config struct {
	// IntRegs and FPRegs are the physical register counts (256/256 in
	// Table 1).
	IntRegs int
	FPRegs  int
	// Banks divides each file into equal banks (1 = monolithic).
	Banks int
	// LEVTReadPortsPerBank caps reads by the LE/VT stage per bank per
	// cycle (0 = unconstrained). The OoO engine's own ports are
	// provisioned for full issue width and are not modelled as a
	// constraint.
	LEVTReadPortsPerBank int
}

// DefaultConfig returns the Table 1 monolithic PRF.
func DefaultConfig() Config {
	return Config{IntRegs: 256, FPRegs: 256, Banks: 1}
}

// Validate checks structural feasibility.
func (c Config) Validate() error {
	if c.IntRegs < 1 || c.FPRegs < 1 {
		return fmt.Errorf("regfile: register counts must be positive, got %d INT / %d FP", c.IntRegs, c.FPRegs)
	}
	if c.Banks < 1 {
		return fmt.Errorf("regfile: banks must be >= 1, got %d", c.Banks)
	}
	if c.IntRegs%c.Banks != 0 || c.FPRegs%c.Banks != 0 {
		return fmt.Errorf("regfile: %d INT / %d FP registers not divisible by %d banks",
			c.IntRegs, c.FPRegs, c.Banks)
	}
	if c.LEVTReadPortsPerBank < 0 {
		return fmt.Errorf("regfile: LE/VT read ports per bank must be >= 0, got %d", c.LEVTReadPortsPerBank)
	}
	return nil
}

// PRF tracks free physical registers per bank for both files.
type PRF struct {
	cfg     Config
	freeInt []int
	freeFP  []int

	// Stats.
	AllocFails  uint64 // rename stalls due to an empty bank
	Allocations uint64
}

// New builds a PRF; it panics on invalid configuration (construction
// is static in the simulator).
func New(cfg Config) *PRF {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &PRF{cfg: cfg}
	p.freeInt = make([]int, cfg.Banks)
	p.freeFP = make([]int, cfg.Banks)
	for b := 0; b < cfg.Banks; b++ {
		p.freeInt[b] = cfg.IntRegs / cfg.Banks
		p.freeFP[b] = cfg.FPRegs / cfg.Banks
	}
	return p
}

// Banks returns the bank count.
func (p *PRF) Banks() int { return p.cfg.Banks }

// Reset returns every register to its bank's free list, keeping the
// allocation statistics. The core's pipeline flush (sampled
// simulation's window boundary) resets the PRF in place rather than
// allocating a fresh one per window.
func (p *PRF) Reset() {
	for b := 0; b < p.cfg.Banks; b++ {
		p.freeInt[b] = p.cfg.IntRegs / p.cfg.Banks
		p.freeFP[b] = p.cfg.FPRegs / p.cfg.Banks
	}
}

// BankFor returns the bank a µ-op at the given position of its rename
// group must allocate from (round-robin across the group).
func (p *PRF) BankFor(groupSlot int) int { return groupSlot % p.cfg.Banks }

// TryAlloc claims one register of the given file from bank b. It
// reports false (and counts a rename stall) when the bank is empty.
func (p *PRF) TryAlloc(fp bool, b int) bool {
	free := p.freeInt
	if fp {
		free = p.freeFP
	}
	if free[b] == 0 {
		p.AllocFails++
		return false
	}
	free[b]--
	p.Allocations++
	return true
}

// Free returns one register of the given file to bank b.
func (p *PRF) Free(fp bool, b int) {
	free := p.freeInt
	if fp {
		free = p.freeFP
	}
	max := p.cfg.IntRegs / p.cfg.Banks
	if fp {
		max = p.cfg.FPRegs / p.cfg.Banks
	}
	if free[b] >= max {
		panic(fmt.Sprintf("regfile: double free in bank %d (fp=%v)", b, fp))
	}
	free[b]++
}

// FreeCount reports the free registers in bank b of a file.
func (p *PRF) FreeCount(fp bool, b int) int {
	if fp {
		return p.freeFP[b]
	}
	return p.freeInt[b]
}

// TotalFree reports all free registers of a file.
func (p *PRF) TotalFree(fp bool) int {
	sum := 0
	for b := 0; b < p.cfg.Banks; b++ {
		sum += p.FreeCount(fp, b)
	}
	return sum
}

// LEVTArbiter rations the per-bank read ports available to the Late
// Execution / Validation and Training stage in one cycle (Figure 11).
// The commit logic reserves ports in program order and stops the
// commit group at the first µ-op whose reads do not fit.
type LEVTArbiter struct {
	perBank int
	used    []int
}

// NewLEVTArbiter builds an arbiter with the per-bank port budget of
// cfg (0 = unconstrained).
func NewLEVTArbiter(cfg Config) *LEVTArbiter {
	return &LEVTArbiter{perBank: cfg.LEVTReadPortsPerBank, used: make([]int, cfg.Banks)}
}

// Reset starts a new cycle.
func (a *LEVTArbiter) Reset() {
	for i := range a.used {
		a.used[i] = 0
	}
}

// TryReserve atomically claims one read port in each listed bank
// (duplicates claim multiple ports in that bank). It reports false —
// reserving nothing — if any bank would exceed its budget.
func (a *LEVTArbiter) TryReserve(banks ...int) bool {
	if a.perBank <= 0 {
		return true
	}
	for i, b := range banks {
		need := 1
		for _, prev := range banks[:i] {
			if prev == b {
				need++
			}
		}
		if a.used[b]+need > a.perBank {
			return false
		}
	}
	for _, b := range banks {
		a.used[b]++
	}
	return true
}

// PortCost estimates the PRF area factor (R+W)*(R+2W) from Zyuban &
// Kogge, which Section 6 uses to argue EOLE's PRF is ~4x cheaper than
// a naive VP PRF. R and W are per-bank port counts.
func PortCost(reads, writes int) int { return (reads + writes) * (reads + 2*writes) }
