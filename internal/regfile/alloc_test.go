package regfile

import "testing"

// TryAlloc/Free run up to rename-width times per cycle; the free lists
// are fixed rings built in New, so the steady state must be
// allocation-free.
func TestAllocFreeZeroAlloc(t *testing.T) {
	f := New(DefaultConfig())
	banks := f.Banks()
	avg := testing.AllocsPerRun(100, func() {
		for b := 0; b < banks; b++ {
			if !f.TryAlloc(false, b) {
				t.Fatal("int bank unexpectedly exhausted")
			}
			if !f.TryAlloc(true, b) {
				t.Fatal("fp bank unexpectedly exhausted")
			}
		}
		for b := 0; b < banks; b++ {
			f.Free(false, b)
			f.Free(true, b)
		}
	})
	if avg != 0 {
		t.Fatalf("TryAlloc/Free allocated %.2f times per round, want 0", avg)
	}
}
