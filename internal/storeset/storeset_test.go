package storeset

import "testing"

func TestColdPredictorPredictsIndependence(t *testing.T) {
	s := New(DefaultConfig())
	if _, dep := s.OnLoadDispatch(0x400000); dep {
		t.Fatal("cold predictor must predict independence")
	}
}

func TestViolationCreatesDependence(t *testing.T) {
	s := New(DefaultConfig())
	loadPC, storePC := uint64(0x400010), uint64(0x400020)
	s.OnViolation(loadPC, storePC)
	// The store dispatches, then the load must be told to wait for it.
	if _, live := s.OnStoreDispatch(storePC, 100); live {
		t.Fatal("first store of a set has no predecessor")
	}
	waitFor, dep := s.OnLoadDispatch(loadPC)
	if !dep || waitFor != 100 {
		t.Fatalf("load dependence = %d,%v want 100,true", waitFor, dep)
	}
}

func TestStoreCompleteClearsLFST(t *testing.T) {
	s := New(DefaultConfig())
	loadPC, storePC := uint64(0x400010), uint64(0x400020)
	s.OnViolation(loadPC, storePC)
	s.OnStoreDispatch(storePC, 100)
	s.OnStoreComplete(storePC, 100)
	if _, dep := s.OnLoadDispatch(loadPC); dep {
		t.Fatal("completed store must not block the load")
	}
}

func TestStoreCompleteIgnoresStaleSeq(t *testing.T) {
	s := New(DefaultConfig())
	loadPC, storePC := uint64(0x400010), uint64(0x400020)
	s.OnViolation(loadPC, storePC)
	s.OnStoreDispatch(storePC, 100)
	s.OnStoreDispatch(storePC, 200) // younger instance of same store
	s.OnStoreComplete(storePC, 100) // stale completion
	waitFor, dep := s.OnLoadDispatch(loadPC)
	if !dep || waitFor != 200 {
		t.Fatalf("load must wait for the younger store: %d,%v", waitFor, dep)
	}
}

func TestStoresInOneSetSerialize(t *testing.T) {
	s := New(DefaultConfig())
	s.OnViolation(0x400010, 0x400020)
	s.OnViolation(0x400010, 0x400030) // second store joins the set
	s.OnStoreDispatch(0x400020, 100)
	prev, live := s.OnStoreDispatch(0x400030, 200)
	if !live || prev != 100 {
		t.Fatalf("second store of the set must order after the first: %d,%v", prev, live)
	}
}

func TestMergeRules(t *testing.T) {
	s := New(DefaultConfig())
	// Build two distinct sets.
	s.OnViolation(0x1000, 0x2000)
	s.OnViolation(0x3000, 0x4000)
	idA := s.ssit[s.index(0x1000)]
	idB := s.ssit[s.index(0x3000)]
	if idA == idB {
		t.Skip("hash collision made the sets identical; merge untestable")
	}
	// A violation across sets merges both to the smaller id.
	s.OnViolation(0x1000, 0x4000)
	want := idA
	if idB < want {
		want = idB
	}
	if got := s.ssit[s.index(0x1000)]; got != want {
		t.Fatalf("load id after merge = %d, want %d", got, want)
	}
	if got := s.ssit[s.index(0x4000)]; got != want {
		t.Fatalf("store id after merge = %d, want %d", got, want)
	}
}

func TestCyclicClearing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClearEvery = 10
	s := New(cfg)
	s.OnViolation(0x400010, 0x400020)
	s.OnStoreDispatch(0x400020, 5)
	// Burn accesses to trigger the clear.
	for i := 0; i < 12; i++ {
		s.OnLoadDispatch(0x500000)
	}
	if _, dep := s.OnLoadDispatch(0x400010); dep {
		t.Fatal("dependence must decay after cyclic clearing")
	}
}

func TestDependenceRate(t *testing.T) {
	s := New(DefaultConfig())
	s.OnViolation(0x400010, 0x400020)
	s.OnStoreDispatch(0x400020, 1)
	s.OnLoadDispatch(0x400010) // dependent
	s.OnLoadDispatch(0x999999) // independent
	if r := s.DependenceRate(); r <= 0 || r >= 1 {
		t.Fatalf("dependence rate = %v, want in (0,1)", r)
	}
}
