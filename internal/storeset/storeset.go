// Package storeset implements the Store Sets memory dependence
// predictor of Chrysos & Emer (ISCA 1998), configured as in Table 1 of
// the paper: 1K-entry SSIT (Store Set ID Table) and LFST (Last Fetched
// Store Table). The out-of-order core consults it to decide whether a
// load may issue before older stores with unresolved addresses;
// violations train the predictor by merging the load and store into
// one store set.
package storeset

// Invalid marks "no store set" / "no inflight store".
const Invalid = ^uint32(0)

// Config sizes the predictor.
type Config struct {
	// SSITBits is log2 of the SSIT entries (10 -> 1K, Table 1).
	SSITBits int
	// LFSTSize is the number of store sets tracked (1K, Table 1).
	LFSTSize int
	// ClearEvery resets the tables after this many accesses, the
	// standard cyclic-clearing policy that lets false dependencies
	// decay. Zero disables clearing.
	ClearEvery uint64
}

// DefaultConfig returns the Table 1 configuration.
func DefaultConfig() Config {
	return Config{SSITBits: 10, LFSTSize: 1024, ClearEvery: 1 << 20}
}

// StoreSets is the predictor.
type StoreSets struct {
	cfg      Config
	ssit     []uint32 // PC hash -> store set id (Invalid = none)
	lfst     []uint64 // store set id -> sequence number of last fetched store
	lfstSeq  []bool   // whether lfst entry is live
	accesses uint64

	// Stats.
	Merges     uint64
	LoadsAsked uint64
	LoadsDep   uint64
}

// New builds a Store Sets predictor.
func New(cfg Config) *StoreSets {
	s := &StoreSets{
		cfg:     cfg,
		ssit:    make([]uint32, 1<<cfg.SSITBits),
		lfst:    make([]uint64, cfg.LFSTSize),
		lfstSeq: make([]bool, cfg.LFSTSize),
	}
	for i := range s.ssit {
		s.ssit[i] = Invalid
	}
	return s
}

func (s *StoreSets) index(pc uint64) uint32 {
	h := (pc >> 2) ^ (pc >> (2 + uint(s.cfg.SSITBits)))
	return uint32(h) & ((1 << s.cfg.SSITBits) - 1)
}

func (s *StoreSets) tick() {
	s.accesses++
	if s.cfg.ClearEvery != 0 && s.accesses%s.cfg.ClearEvery == 0 {
		for i := range s.ssit {
			s.ssit[i] = Invalid
		}
		for i := range s.lfstSeq {
			s.lfstSeq[i] = false
		}
	}
}

// OnStoreDispatch records that the store at pc (dynamic sequence seq)
// is now the youngest fetched store of its set, and returns the
// sequence of the previous store in the same set (stores in one set
// execute in order), or Invalid semantics via ok=false.
func (s *StoreSets) OnStoreDispatch(pc uint64, seq uint64) (prevStore uint64, ok bool) {
	s.tick()
	id := s.ssit[s.index(pc)]
	if id == Invalid {
		return 0, false
	}
	slot := id % uint32(s.cfg.LFSTSize)
	prev, live := s.lfst[slot], s.lfstSeq[slot]
	s.lfst[slot] = seq
	s.lfstSeq[slot] = true
	return prev, live
}

// OnStoreComplete removes the store from the LFST if it is still the
// youngest of its set.
func (s *StoreSets) OnStoreComplete(pc uint64, seq uint64) {
	id := s.ssit[s.index(pc)]
	if id == Invalid {
		return
	}
	slot := id % uint32(s.cfg.LFSTSize)
	if s.lfstSeq[slot] && s.lfst[slot] == seq {
		s.lfstSeq[slot] = false
	}
}

// OnLoadDispatch asks whether the load at pc must wait for an inflight
// store; it returns that store's sequence number when a dependence is
// predicted.
func (s *StoreSets) OnLoadDispatch(pc uint64) (waitFor uint64, dep bool) {
	s.tick()
	s.LoadsAsked++
	id := s.ssit[s.index(pc)]
	if id == Invalid {
		return 0, false
	}
	slot := id % uint32(s.cfg.LFSTSize)
	if !s.lfstSeq[slot] {
		return 0, false
	}
	s.LoadsDep++
	return s.lfst[slot], true
}

// OnViolation trains the predictor after a memory-order violation
// between a load and an older store, using the Chrysos-Emer merge
// rules: if neither has a set, create one; if one has a set, the other
// joins it; if both have sets, both are assigned the smaller id.
func (s *StoreSets) OnViolation(loadPC, storePC uint64) {
	s.Merges++
	li, si := s.index(loadPC), s.index(storePC)
	lid, sid := s.ssit[li], s.ssit[si]
	switch {
	case lid == Invalid && sid == Invalid:
		id := uint32(s.index(loadPC)) // deterministic new id
		s.ssit[li] = id
		s.ssit[si] = id
	case lid == Invalid:
		s.ssit[li] = sid
	case sid == Invalid:
		s.ssit[si] = lid
	default:
		id := lid
		if sid < id {
			id = sid
		}
		s.ssit[li] = id
		s.ssit[si] = id
	}
}

// DependenceRate reports the fraction of loads predicted dependent.
func (s *StoreSets) DependenceRate() float64 {
	if s.LoadsAsked == 0 {
		return 0
	}
	return float64(s.LoadsDep) / float64(s.LoadsAsked)
}
