// Package simsvc is the shared batch simulation service: a job queue
// with a bounded worker pool in front of a content-addressed result
// cache. Every consumer of the simulator — the experiments harness,
// the eoled HTTP server, ad-hoc tools — submits (config, workload,
// warmup, measure) requests and gets back *eole.Report values.
//
// Because the simulator is deterministic, results are content
// addressed: a request is hashed (see KeyOf) and repeated submissions
// of the same request are answered from cache, including across
// processes — and, with a peer configured, across a cluster — when an
// artifact store (internal/artifact) backs the service. Identical
// requests that are in flight at the same time are coalesced into a
// single simulation (single-flight), so a sweep that includes the
// same baseline column ten times still simulates it once.
package simsvc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eole"
	"eole/internal/artifact"
	"eole/internal/obs"
)

// ErrClosed is returned by Submit and Wait after Close has begun.
var ErrClosed = errors.New("simsvc: service closed")

// DefaultQueueDepth is the queue bound applied when
// Options.QueueDepth is zero. Exported so serving layers sizing their
// backpressure thresholds against the queue (eoled's -max-queue) stay
// in sync with it.
const DefaultQueueDepth = 4096

// Status is a job's lifecycle state.
type Status int32

const (
	StatusQueued Status = iota
	StatusRunning
	StatusDone
	StatusFailed
	StatusCanceled
)

func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	case StatusCanceled:
		return "canceled"
	}
	return fmt.Sprintf("Status(%d)", int32(s))
}

// Options configures a Service. The zero value is usable: GOMAXPROCS
// workers, a 4096-deep queue, memory-only cache.
type Options struct {
	// Parallelism is the worker count (0 = GOMAXPROCS).
	Parallelism int
	// QueueDepth bounds the number of queued unique simulations
	// (0 = DefaultQueueDepth). Submit blocks when the queue is full.
	QueueDepth int
	// CacheEntries bounds the in-memory result cache (0 = 16384,
	// negative = unbounded). The oldest entry is evicted when full;
	// evicted results reload from the artifact store if one backs the
	// service.
	CacheEntries int
	// CacheDir, when set, spills results to disk under that directory
	// and reloads them in later processes. It is a legacy alias for an
	// ArtifactDir result-kind override: the files use the artifact
	// fabric's sharded layout, and pre-fabric flat <key>.json files are
	// ignored. Ignored when Artifacts is injected.
	CacheDir string

	// ArtifactDir, when set, roots a persistent artifact fabric
	// (internal/artifact) holding both result and trace spills:
	// results under <dir>/result, traces under <dir>/trace. Implies
	// Traces. Ignored when Artifacts is injected.
	ArtifactDir string
	// Artifacts, when non-nil, is the artifact store backing the
	// result and trace spills — injected by serving layers (eoled)
	// that share one store between the service and their HTTP
	// /v1/artifacts endpoint. Overrides ArtifactDir, CacheDir and
	// TraceDir.
	Artifacts *artifact.Store

	// Traces enables trace-driven simulation: the committed µ-op
	// stream of each workload is recorded once (on the first cache
	// miss that needs it) and replayed for every configuration, so a
	// sweep interprets each workload one time instead of once per
	// config. Replay is byte-identical to execute-driven simulation,
	// so cached results are unaffected. Recording is single-flight
	// per workload across concurrent jobs.
	Traces bool
	// TraceDir, when set, spills recordings to disk under that
	// directory and reloads them in later processes (implies Traces).
	// Like CacheDir it is a legacy alias for an ArtifactDir trace-kind
	// override; invalid or version-mismatched artifacts fall back to
	// execute-driven recording. Ignored when Artifacts is injected.
	TraceDir string
	// TraceMaxOps bounds the recorded trace length in µ-ops
	// (0 = 1M). Requests needing longer traces run execute-driven.
	// The bound is also the store's memory lever: every stored trace
	// pins its decoded stream (~90 bytes/µ-op) for the process
	// lifetime, so the worst case is TraceMaxOps × ~90B × the number
	// of distinct workloads (all 19 at the 1M default ≈ 1.7GB; the
	// default server run lengths stay under 512K µ-ops ≈ 45MB per
	// workload).
	TraceMaxOps uint64

	// Logger receives job lifecycle events (nil = discard). Cache
	// hits, coalesces and enqueues log at Debug; simulation start,
	// completion, failure and abandonment at Info. Events carry the
	// submit context's request ID (obs.RequestID) so one sweep is
	// traceable through the service's logs.
	Logger *slog.Logger

	// Tracer, when set, records per-phase spans for every simulation:
	// cache.probe (fabric lookup), queue.wait (enqueue → worker
	// pickup), trace.resolve (µ-op trace load/record), and sim.warm +
	// sim.detailed (or sim.sampled), parented under the submitting
	// request's span. Spans are per-phase only — the simulation hot
	// loop is never instrumented — and a nil tracer costs one pointer
	// test per phase.
	Tracer *obs.Tracer
}

// Job is the handle for one submitted request. Wait blocks for the
// result; Status, Report and Err observe it without blocking.
type Job struct {
	req Request
	key Key
	ctx context.Context // submit-time context: cancels a not-yet-started job

	status atomic.Int32
	done   chan struct{}
	once   sync.Once
	report *eole.Report
	err    error
	cached bool
}

// Request returns the submitted request.
func (j *Job) Request() Request { return j.req }

// Key returns the request's content address.
func (j *Job) Key() Key { return j.key }

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status { return Status(j.status.Load()) }

// Done is closed when the job has a result (or error).
func (j *Job) Done() <-chan struct{} { return j.done }

// Cached reports whether the result was served from cache rather than
// a fresh simulation. Valid after Done.
func (j *Job) Cached() bool {
	select {
	case <-j.done:
		return j.cached
	default:
		return false
	}
}

// Result returns the report and error without blocking; before Done
// it returns (nil, nil).
func (j *Job) Result() (*eole.Report, error) {
	select {
	case <-j.done:
		return j.report, j.err
	default:
		return nil, nil
	}
}

// Wait blocks until the job completes or ctx is canceled. A job that
// is already done always returns its result, even if ctx is also
// canceled — the select would otherwise pick nondeterministically.
func (j *Job) Wait(ctx context.Context) (*eole.Report, error) {
	select {
	case <-j.done:
		return j.report, j.err
	default:
	}
	select {
	case <-j.done:
		return j.report, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (j *Job) complete(r *eole.Report, err error, cached bool) {
	j.once.Do(func() {
		j.report, j.err, j.cached = r, err, cached
		switch {
		case err == nil:
			j.status.Store(int32(StatusDone))
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrClosed):
			j.status.Store(int32(StatusCanceled))
		default:
			j.status.Store(int32(StatusFailed))
		}
		close(j.done)
	})
}

// task is one unique queued simulation; jobs holds every Job coalesced
// onto it and running marks that a worker has started it (both guarded
// by Service.mu). qspan times the queue wait: started before the
// enqueue (so time blocked on a full queue counts), ended at worker
// pickup. The channel handoff orders the write before the read.
type task struct {
	key     Key
	req     Request
	jobs    []*Job
	running bool
	qspan   *obs.Span
}

// Service runs simulations through a bounded worker pool with
// content-addressed caching. Create with New, release with Close.
type Service struct {
	opts   Options
	store  *artifact.Store // nil when the service is memory-only
	cache  *resultCache
	traces *traceStore // nil when trace-driven simulation is disabled
	m      metrics
	log    *slog.Logger

	ctx    context.Context // canceled on Close: workers abandon queued work
	cancel context.CancelFunc
	queue  chan *task
	wg     sync.WaitGroup

	mu       sync.Mutex
	inflight map[Key]*task
	senders  sync.WaitGroup // Submits blocked on the queue; Close waits before closing it
	closed   bool
}

// New starts a service with opts.Parallelism workers. The caller must
// Close it to release the workers.
func New(opts Options) (*Service, error) {
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 16384
	}
	if opts.TraceMaxOps == 0 {
		opts.TraceMaxOps = 1 << 20
	}
	if opts.TraceDir != "" || opts.ArtifactDir != "" {
		opts.Traces = true
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	store := opts.Artifacts
	if store == nil && (opts.ArtifactDir != "" || opts.CacheDir != "" || opts.TraceDir != "") {
		var err error
		store, err = artifact.Open(artifact.Options{
			Dir: opts.ArtifactDir,
			KindDirs: map[artifact.Kind]string{
				artifact.KindResult: opts.CacheDir,
				artifact.KindTrace:  opts.TraceDir,
			},
			Logger: opts.Logger,
		})
		if err != nil {
			return nil, fmt.Errorf("simsvc: artifact store: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		opts:     opts,
		store:    store,
		cache:    newResultCache(store, opts.CacheEntries),
		log:      opts.Logger,
		ctx:      ctx,
		cancel:   cancel,
		queue:    make(chan *task, opts.QueueDepth),
		inflight: make(map[Key]*task),
	}
	if opts.Traces {
		s.traces = newTraceStore(store, opts.TraceMaxOps, &s.m)
	}
	for i := 0; i < opts.Parallelism; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Submit enqueues one request and returns its job handle. A request
// whose result is already cached completes immediately; a request
// identical to one already queued or running joins it instead of
// simulating twice. ctx bounds the enqueue, cancels the job while it
// is still queued, and — once every job coalesced onto the same
// simulation has a dead context — aborts the simulation itself at the
// core's next cancellation checkpoint (a running simulation with at
// least one live waiter is never preempted).
func (s *Service) Submit(ctx context.Context, req Request) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	key := KeyOf(req)
	j := &Job{req: req, key: key, ctx: ctx, done: make(chan struct{})}
	s.m.submitted.Add(1)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if r := s.cache.getMem(key); r != nil {
		s.mu.Unlock()
		s.m.cacheHits.Add(1)
		s.m.completed.Add(1)
		j.complete(r, nil, true)
		s.log.Debug("job_cache_hit", "key", key.String(), "request_id", obs.RequestID(ctx))
		return j, nil
	}
	if t, ok := s.inflight[key]; ok {
		t.jobs = append(t.jobs, j)
		if t.running {
			j.status.Store(int32(StatusRunning))
		}
		s.mu.Unlock()
		s.m.coalesced.Add(1)
		s.log.Debug("job_coalesced", "key", key.String(), "request_id", obs.RequestID(ctx))
		return j, nil
	}
	t := &task{key: key, req: req, jobs: []*Job{j}}
	s.inflight[key] = t
	s.senders.Add(1) // under mu: Close cannot have passed its closed check yet
	s.mu.Unlock()
	defer s.senders.Done()

	// Probe the artifact fabric outside the lock — disk and peer I/O
	// must not stall other Submits or job completions. The task is
	// already registered, so concurrent identical Submits coalesce onto
	// it and are resolved by the detach below.
	pctx, psp := s.opts.Tracer.StartSpan(ctx, "cache.probe")
	if r := s.cache.getStore(pctx, key); r != nil {
		psp.SetAttr("hit", "true")
		psp.End()
		s.m.cacheHits.Add(1)
		s.m.diskHits.Add(1)
		for _, jb := range s.detach(t) {
			s.m.completed.Add(1)
			jb.complete(r, nil, true)
		}
		s.log.Debug("job_disk_hit", "key", key.String(), "request_id", obs.RequestID(ctx))
		return j, nil
	}
	psp.SetAttr("hit", "false")
	psp.End()
	s.m.cacheMisses.Add(1)

	// The queue-wait span belongs to the first submitter's request; it
	// ends when a worker picks the task up (see run). An enqueue that
	// fails below simply drops the span — only ended spans publish.
	_, t.qspan = s.opts.Tracer.StartSpan(ctx, "queue.wait")
	t.qspan.SetAttr("config", req.label())
	t.qspan.SetAttr("workload", req.Workload)

	select {
	case s.queue <- t:
		s.log.Debug("job_queued", "key", key.String(), "request_id", obs.RequestID(ctx),
			"config", req.label(), "workload", req.Workload)
		return j, nil
	case <-ctx.Done():
		// Fail only this job: other callers may have coalesced onto
		// the task while we were blocked, and their contexts are not
		// canceled. If any remain, hand the enqueue off to a goroutine
		// so they still get their simulation.
		s.mu.Lock()
		rest := t.jobs[:0]
		for _, jb := range t.jobs {
			if jb != j {
				rest = append(rest, jb)
			}
		}
		t.jobs = rest
		if len(rest) == 0 {
			delete(s.inflight, t.key)
		} else {
			// Safe while our own senders hold is still open (Done is
			// deferred), so the counter cannot reach zero in between.
			s.senders.Add(1)
			go func() {
				defer s.senders.Done()
				select {
				case s.queue <- t:
				case <-s.ctx.Done():
					s.abandon(t, ErrClosed)
				}
			}()
		}
		s.mu.Unlock()
		s.m.canceled.Add(1)
		j.complete(nil, ctx.Err(), false)
		return nil, ctx.Err()
	case <-s.ctx.Done():
		s.abandon(t, ErrClosed)
		return nil, ErrClosed
	}
}

// Sweep is the handle for a batch of jobs, in submission order.
type Sweep struct {
	Jobs []*Job
}

// SubmitSweep enqueues a batch of requests. Jobs[i] corresponds to
// reqs[i]; duplicate requests within the sweep share one simulation.
func (s *Service) SubmitSweep(ctx context.Context, reqs []Request) (*Sweep, error) {
	sw := &Sweep{Jobs: make([]*Job, 0, len(reqs))}
	for _, req := range reqs {
		j, err := s.Submit(ctx, req)
		if err != nil {
			return sw, err
		}
		sw.Jobs = append(sw.Jobs, j)
	}
	return sw, nil
}

// Wait blocks until every job in the sweep completes or ctx is
// canceled. Reports are aligned with the submitted requests; a job
// that failed leaves a nil slot and contributes to the joined error.
func (sw *Sweep) Wait(ctx context.Context) ([]*eole.Report, error) {
	reports := make([]*eole.Report, len(sw.Jobs))
	var errs []error
	for i, j := range sw.Jobs {
		r, err := j.Wait(ctx)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s on %s: %w", j.req.label(), j.req.Workload, err))
			continue
		}
		reports[i] = r
	}
	return reports, errors.Join(errs...)
}

// Cross builds the (config × workload) request grid every figure-style
// sweep uses, in row-major (config-major) order. For sweeps over
// design-space axes, build the config list with an eole.Grid (or use
// FromGrid) instead of enumerating configs by hand.
func Cross(cfgs []eole.Config, workloads []string, warmup, measure uint64) []Request {
	reqs := make([]Request, 0, len(cfgs)*len(workloads))
	for _, c := range cfgs {
		for _, w := range workloads {
			reqs = append(reqs, Request{Config: c, Workload: w, Warmup: warmup, Measure: measure})
		}
	}
	return reqs
}

// ApplySampling stamps one sampling spec onto every request of a
// sweep (nil leaves the sweep full-run) and returns the slice for
// chaining — the single place sweep builders attach a schedule, so
// the eoled and experiments entry points cannot drift apart.
func ApplySampling(reqs []Request, spec *eole.SamplingSpec) []Request {
	if spec != nil {
		for i := range reqs {
			reqs[i].Sampling = spec
		}
	}
	return reqs
}

// FromGrid cartesian-expands a design-space grid and crosses the
// resulting configurations with the workloads: the request list for
// one figure-style sweep, ready for SubmitSweep.
func FromGrid(g eole.Grid, workloads []string, warmup, measure uint64) ([]Request, error) {
	cfgs, err := g.Configs()
	if err != nil {
		return nil, err
	}
	return Cross(cfgs, workloads, warmup, measure), nil
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats { return s.m.snapshot(s.cache.len()) }

// QueueLen reports how many unique simulations are queued and not yet
// picked up by a worker (running ones excluded). Serving layers use it
// for backpressure: eoled answers 429 instead of queueing once the
// depth crosses its bound.
func (s *Service) QueueLen() int { return len(s.queue) }

// InFlight reports how many unique simulations are registered with the
// service — queued or running — right now. Shutdown logging uses it to
// report what a graceful stop is waiting on.
func (s *Service) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}

// FreeToServe reports whether Submit would answer the request without
// consuming a queue slot: its result is already in the in-memory
// cache, or an identical simulation is queued/running and the job
// would coalesce onto it. Backpressure layers use it so warm and
// duplicate traffic keeps flowing through a backlog; the disk spill
// is deliberately not probed (this must stay cheap enough for a
// request fast path).
func (s *Service) FreeToServe(req Request) bool { return s.FreeToServeKey(KeyOf(req)) }

// FreeToServeKey is FreeToServe for a precomputed content address
// (callers that already hashed the request to dedupe need not hash it
// twice).
func (s *Service) FreeToServeKey(key Key) bool {
	if s.cache.getMem(key) != nil {
		return true
	}
	s.mu.Lock()
	_, ok := s.inflight[key]
	s.mu.Unlock()
	return ok
}

// Parallelism returns the resolved worker count.
func (s *Service) Parallelism() int { return s.opts.Parallelism }

// Artifacts returns the artifact store backing the service's result
// and trace spills, or nil when the service is memory-only. Serving
// layers use it to expose the store over HTTP and in metrics.
func (s *Service) Artifacts() *artifact.Store { return s.store }

// Close gracefully shuts the service down: no new submissions are
// accepted, queued-but-unstarted jobs complete with ErrClosed, running
// simulations finish, and the workers exit. Close is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// Cancel first so Submits blocked on a full queue bail out, wait
	// for them, and only then close the queue — no Submit can start a
	// send after closed is set, so the close cannot race a send.
	s.cancel()
	s.senders.Wait()
	close(s.queue)
	s.wg.Wait()
}

// abandon fails every job attached to t and removes it from the
// inflight set (used when the task never reached the queue, or was
// drained after Close).
func (s *Service) abandon(t *task, err error) {
	jobs := s.detach(t)
	for _, j := range jobs {
		s.m.canceled.Add(1)
		j.complete(nil, err, false)
	}
}

// detach removes t from the inflight set and returns its final job
// list; later identical submissions will hit the cache or start fresh.
func (s *Service) detach(t *task) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, t.key)
	jobs := t.jobs
	t.jobs = nil
	return jobs
}

func (s *Service) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		s.run(t)
	}
}

// run executes one unique simulation and resolves every coalesced job.
func (s *Service) run(t *task) {
	// Queue wait ends at pickup. End is idempotent, so a task that was
	// requeued after an abandoned run records only its first wait.
	t.qspan.End()
	if s.ctx.Err() != nil {
		s.abandon(t, ErrClosed)
		return
	}
	// Drop jobs whose submit context was canceled while queued; if
	// nobody still wants the result, skip the simulation entirely.
	// The empty check and the inflight removal happen in one critical
	// section, so no Submit can coalesce onto a task that is about to
	// be dropped (it would hang forever).
	s.mu.Lock()
	live := t.jobs[:0]
	var dead []*Job
	for _, j := range t.jobs {
		if j.ctx.Err() != nil {
			dead = append(dead, j)
		} else {
			live = append(live, j)
		}
	}
	t.jobs = live
	if len(live) == 0 {
		delete(s.inflight, t.key)
	} else {
		t.running = true // late coalescers are marked running by Submit
		for _, j := range live {
			j.status.Store(int32(StatusRunning))
		}
	}
	s.mu.Unlock()
	for _, j := range dead {
		s.m.canceled.Add(1)
		j.complete(nil, j.ctx.Err(), false)
	}
	if len(live) == 0 {
		return
	}

	// Simulate under a context a watcher cancels once every attached
	// job's submit context has died: a running simulation whose waiters
	// are all gone (HTTP clients disconnected, sweep contexts expired)
	// is abandoned at the core's next cancellation checkpoint instead
	// of burning a worker to completion.
	// Request IDs of the waiters, for the lifecycle log lines: one
	// simulation can serve many coalesced requests.
	ids := make([]string, 0, len(live))
	for _, j := range live {
		if id := obs.RequestID(j.ctx); id != "" {
			ids = append(ids, id)
		}
	}
	s.log.Info("sim_start", "key", t.key.String(), "config", t.req.label(),
		"workload", t.req.Workload, "waiters", len(live), "request_ids", ids)

	// The run context is detached from the waiters (they come and go;
	// cancellation is the watcher's job) but carries the first live
	// waiter's span, so the simulation-phase spans land in the trace of
	// the request that triggered the run.
	base := context.Background()
	if sp := obs.SpanFrom(live[0].ctx); sp != nil {
		base = obs.ContextWithSpan(base, sp)
	}
	runCtx, cancelRun := context.WithCancel(base)
	stopWatch := make(chan struct{})
	go s.watchWaiters(t, cancelRun, stopWatch)
	start := time.Now()
	r, err := s.simulate(runCtx, t.req)
	elapsed := time.Since(start)
	close(stopWatch)
	// Read the abandonment verdict before releasing the context: after
	// cancelRun, runCtx.Err() is non-nil for ordinary failures too.
	abandoned := runCtx.Err() != nil
	cancelRun()
	if err != nil {
		if abandoned {
			s.m.abandonedRuns.Add(1)
			s.log.Info("sim_abandoned", "key", t.key.String(), "workload", t.req.Workload,
				"duration_ms", elapsed.Milliseconds(), "request_ids", ids)
			s.finishAbandoned(t)
			return
		}
		s.log.Info("sim_failed", "key", t.key.String(), "workload", t.req.Workload,
			"error", err.Error(), "request_ids", ids)
		for _, j := range s.detach(t) {
			s.m.failed.Add(1)
			j.complete(nil, err, false)
		}
		return
	}
	s.log.Info("sim_done", "key", t.key.String(), "config", t.req.label(),
		"workload", t.req.Workload, "duration_ms", elapsed.Milliseconds(),
		"ipc", r.IPC, "request_ids", ids)
	// Publish to the memory cache before detaching: a concurrent
	// Submit holds s.mu while it checks the cache and then the
	// inflight set, so it observes at least one of the two. The fabric
	// spill happens after waiters are released — file and peer I/O
	// must not delay them. The spill gets its own bounded context: the
	// waiters' contexts may already be dead, and a wedged peer must
	// not pin the worker.
	s.cache.putMem(t.key, r)
	for i, j := range s.detach(t) {
		s.m.completed.Add(1)
		// The first attached job triggered the simulation; the rest
		// were coalesced onto it and count as cache-equivalent hits.
		j.complete(r, nil, i > 0)
	}
	spillCtx, cancelSpill := context.WithTimeout(context.Background(), 30*time.Second)
	s.cache.spill(spillCtx, t.key, r)
	cancelSpill()
}

// waiterPollInterval is how often a running task re-checks that
// somebody still wants its result. It bounds the detection latency of
// "all waiters gone"; the simulation itself then stops at the core's
// next cancellation checkpoint.
const waiterPollInterval = 25 * time.Millisecond

// watchWaiters cancels a running task's context once every job
// attached to it has a dead submit context. Jobs that coalesce onto
// the task mid-run extend its life — they are visible here because
// t.jobs is read under the service lock. The watcher exits when the
// simulation finishes (stop) or when it pulls the trigger.
func (s *Service) watchWaiters(t *task, cancel context.CancelFunc, stop <-chan struct{}) {
	ticker := time.NewTicker(waiterPollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			s.mu.Lock()
			live := false
			for _, j := range t.jobs {
				if j.ctx.Err() == nil {
					live = true
					break
				}
			}
			s.mu.Unlock()
			if !live {
				cancel()
				return
			}
		}
	}
}

// finishAbandoned resolves a task whose simulation was canceled
// mid-run. Jobs whose submit context died complete with that error; a
// job that coalesced onto the task after the watcher pulled the
// trigger (a narrow race the inflight map allows) is re-enqueued so
// it still gets its simulation.
func (s *Service) finishAbandoned(t *task) {
	s.mu.Lock()
	var dead, live []*Job
	for _, j := range t.jobs {
		if j.ctx.Err() != nil {
			dead = append(dead, j)
		} else {
			live = append(live, j)
		}
	}
	requeue := false
	if len(live) == 0 {
		delete(s.inflight, t.key)
		t.jobs = nil
	} else if s.closed {
		// The queue may already be closed; fail the stragglers.
		delete(s.inflight, t.key)
		t.jobs = nil
	} else {
		t.jobs = live
		t.running = false
		s.senders.Add(1) // under mu: Close cannot have passed its closed check yet
		requeue = true
	}
	s.mu.Unlock()
	for _, j := range dead {
		s.m.canceled.Add(1)
		j.complete(nil, j.ctx.Err(), false)
	}
	switch {
	case requeue:
		go func() {
			defer s.senders.Done()
			select {
			case s.queue <- t:
			case <-s.ctx.Done():
				s.abandon(t, ErrClosed)
			}
		}()
	default:
		for _, j := range live {
			s.m.canceled.Add(1)
			j.complete(nil, ErrClosed, false)
		}
	}
}

func (s *Service) simulate(ctx context.Context, req Request) (r *eole.Report, err error) {
	// Validate rejects every configuration known to break the core,
	// but configs arrive from untrusted sources (inline HTTP objects):
	// a residual pathological case must fail its own job, not take the
	// whole service down with a worker panic.
	defer func() {
		if p := recover(); p != nil {
			r, err = nil, fmt.Errorf("%s on %s: simulator panic: %v", req.label(), req.Workload, p)
		}
	}()
	w, err := eole.WorkloadByName(req.Workload)
	if err != nil {
		return nil, err
	}
	// Resolve the trace before starting the simulation clock: recording
	// (or waiting on another job's single-flight recording) is
	// accounted separately in TraceRecordTime, not in SimWallTime.
	rctx, rsp := s.opts.Tracer.StartSpan(ctx, "trace.resolve")
	t := s.traceSource(rctx, w, req)
	if t != nil {
		rsp.SetAttr("trace", "ready")
	} else {
		rsp.SetAttr("trace", "none")
	}
	rsp.End()
	// Sampled requests run the sampler instead of a full detailed
	// region (eole.WithSampling); the option composes with replay.
	var extra []eole.SimOption
	if req.Sampling != nil {
		extra = append(extra, eole.WithSampling(*req.Sampling))
	}
	start := time.Now()
	if t != nil {
		// Trace-driven: replay the recorded stream. Byte-identical to
		// execute-driven by construction; a trace that fails to attach
		// (e.g. recorded against an older program build) falls back —
		// but a canceled run is cancellation, not a trace problem.
		opts := append([]eole.SimOption{eole.WithReplay(t)}, extra...)
		r, err = s.runPhases(ctx, req, w, opts)
		switch {
		case err == nil:
			s.m.traceReplays.Add(1)
		case ctx.Err() != nil:
			return nil, ctx.Err()
		default:
			s.m.traceFallbacks.Add(1)
			r = nil
		}
	}
	if r == nil {
		r, err = s.runPhases(ctx, req, w, extra)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("%s on %s: %w", req.label(), req.Workload, err)
		}
	}
	s.m.simsRun.Add(1)
	s.m.simNanos.Add(int64(time.Since(start)))
	if req.Sampling != nil {
		s.m.sampledRuns.Add(1)
		// A sampled run advances its whole window schedule, not just
		// warmup+measure; account the stream actually drawn (the
		// exact jitter sequence is deterministic) so UopsPerSec stays
		// meaningful. Skip the saturated error sentinel — that
		// request failed above anyway.
		if used := req.Sampling.StreamConsumed(req.Warmup, req.Measure); used < 1<<62 {
			s.m.simOps.Add(used)
		}
	} else {
		s.m.simOps.Add(req.Warmup + req.Measure)
	}
	return r, nil
}

// runPhases is eole.SimulateContext unrolled so each phase gets a
// span: sim.sampled for sampled requests, otherwise sim.warm (the
// functional warming run) then sim.detailed (the measured region).
// Semantics — error propagation, sampled dispatch — are identical to
// SimulateContext; with a nil tracer the unrolling is free.
func (s *Service) runPhases(ctx context.Context, req Request, w eole.Workload, opts []eole.SimOption) (*eole.Report, error) {
	sim, err := eole.NewSimulator(req.Config, w, opts...)
	if err != nil {
		return nil, err
	}
	if req.Sampling != nil {
		_, sp := s.opts.Tracer.StartSpan(ctx, "sim.sampled")
		r, err := sim.SampleContext(ctx, req.Warmup, req.Measure)
		sp.SetError(err)
		sp.End()
		return r, err
	}
	_, wsp := s.opts.Tracer.StartSpan(ctx, "sim.warm")
	if _, err := sim.RunContext(ctx, req.Warmup); err != nil {
		wsp.SetError(err)
		wsp.End()
		return nil, err
	}
	wsp.End()
	_, dsp := s.opts.Tracer.StartSpan(ctx, "sim.detailed")
	r, err := sim.MeasureContext(ctx, req.Measure)
	dsp.SetError(err)
	dsp.End()
	return r, err
}
