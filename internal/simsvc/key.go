package simsvc

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"eole"
)

// Request describes one simulation: a machine configuration, a
// workload (short or full name), and the run lengths. Two Requests
// with equal content always hash to the same Key, so results are
// shareable across callers.
type Request struct {
	Config   eole.Config `json:"config"`
	Workload string      `json:"workload"`
	Warmup   uint64      `json:"warmup"`
	Measure  uint64      `json:"measure"`
}

// schemaVersion is folded into every Key. Bump it whenever the
// simulator's observable behavior or the Report schema changes, so a
// reused spill directory (Options.CacheDir) from an older build is
// invalidated instead of silently serving stale results.
const schemaVersion = 1

// Key is the content address of a Request: a SHA-256 over its
// canonical JSON encoding plus schemaVersion. The simulator is
// deterministic, so equal keys imply identical Reports.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (used as the on-disk cache
// filename).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyOf computes the content address of a request. The workload name
// is canonicalized (short name) so "mcf" and "429.mcf" share a key,
// and the config's display Name is excluded — it is a label, not
// machine semantics, so identically-parameterized configs under
// different names share one simulation. Unresolvable workload names
// still produce a stable key and fail later at run time with a useful
// error.
func KeyOf(req Request) Key {
	canonical := struct {
		Version int `json:"version"`
		Request
	}{schemaVersion, req}
	canonical.Config.Name = ""
	if w, err := eole.WorkloadByName(req.Workload); err == nil {
		canonical.Workload = w.Short
	}
	// encoding/json writes struct fields in declaration order and
	// Config is plain data (no maps, no pointers), so the encoding is
	// deterministic.
	b, err := json.Marshal(canonical)
	if err != nil {
		// Config and Request contain only marshalable scalar fields;
		// reaching this is a programming error, not an input error.
		panic(fmt.Sprintf("simsvc: cannot marshal request: %v", err))
	}
	return sha256.Sum256(b)
}
