package simsvc

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"eole"
)

// Request describes one simulation: a machine configuration, a
// workload (short or full name), the run lengths, and optionally a
// sampling spec. Two Requests with equal content always hash to the
// same Key, so results are shareable across callers.
type Request struct {
	Config   eole.Config `json:"config"`
	Workload string      `json:"workload"`
	Warmup   uint64      `json:"warmup"`
	Measure  uint64      `json:"measure"`
	// Sampling, when non-nil, runs the simulation sampled (see
	// eole.WithSampling): warmup becomes functional warming, measure
	// the total detailed budget across the spec's windows, and the
	// report carries a confidence interval. The spec is part of the
	// cache identity — a sampled result never answers a full-run
	// request or vice versa, and two different specs never share an
	// entry.
	Sampling *eole.SamplingSpec `json:"sampling,omitempty"`
}

// label names the request's configuration for error messages and
// logs: the display name, or the fingerprint-derived synthetic label
// for anonymous custom configs (never "").
func (r Request) label() string { return r.Config.Label() }

// schemaVersion is folded into every Key. Bump it whenever the
// simulator's observable behavior or the Report schema changes, so a
// reused spill directory (Options.CacheDir) from an older build is
// invalidated instead of silently serving stale results.
//
// Version history: 1 hashed the full config JSON; 2 keys on
// Config.Fingerprint(); 3 adds the sampling spec to the canonical
// form (and the Report schema gains the sampled fields).
const schemaVersion = 3

// Key is the content address of a Request: a SHA-256 over the
// config's canonical Fingerprint, the workload, and the run lengths,
// plus schemaVersion. The simulator is deterministic, so equal keys
// imply identical Reports.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (used as the on-disk cache
// filename).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyOf computes the content address of a request. The config enters
// via Config.Fingerprint() — a canonical hash that excludes the
// display Name — so identically-parameterized configs under different
// names (or no name at all) share one cache entry and one in-flight
// simulation. The workload name is canonicalized (short name) so
// "mcf" and "429.mcf" share a key; unresolvable workload names still
// produce a stable key and fail later at run time with a useful
// error.
func KeyOf(req Request) Key {
	canonical := struct {
		Version     int    `json:"version"`
		Fingerprint string `json:"fingerprint"`
		Workload    string `json:"workload"`
		Warmup      uint64 `json:"warmup"`
		Measure     uint64 `json:"measure"`
		Sampling    any    `json:"sampling"`
	}{schemaVersion, req.Config.Fingerprint(), req.Workload, req.Warmup, req.Measure, nil}
	if req.Sampling != nil {
		// Hash the resolved schedule, not the raw spec: a spec that
		// spells out a default (per-window measure, detail warm-up)
		// simulates identically to one that leaves it zero, so the
		// two must share a cache entry — mirroring how configs are
		// Normalized before fingerprinting. The resolved plan also
		// captures everything Measure contributes to a sampled run,
		// so the raw budget is dropped from the canonical form.
		// Unresolvable specs hash raw; they fail at run time with a
		// real error, under a stable key.
		if p, err := req.Sampling.Plan(req.Measure); err == nil {
			canonical.Measure = 0
			canonical.Sampling = p
		} else {
			canonical.Sampling = req.Sampling
		}
	}
	if w, err := eole.WorkloadByName(req.Workload); err == nil {
		canonical.Workload = w.Short
	}
	b, err := json.Marshal(canonical)
	if err != nil {
		// The canonical struct contains only marshalable scalar fields;
		// reaching this is a programming error, not an input error.
		panic(fmt.Sprintf("simsvc: cannot marshal request: %v", err))
	}
	return sha256.Sum256(b)
}
