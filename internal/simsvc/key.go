package simsvc

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"eole"
)

// Request describes one simulation: a machine configuration, a
// workload (short or full name), and the run lengths. Two Requests
// with equal content always hash to the same Key, so results are
// shareable across callers.
type Request struct {
	Config   eole.Config `json:"config"`
	Workload string      `json:"workload"`
	Warmup   uint64      `json:"warmup"`
	Measure  uint64      `json:"measure"`
}

// label names the request's configuration for error messages and
// logs: the display name, or the fingerprint-derived synthetic label
// for anonymous custom configs (never "").
func (r Request) label() string { return r.Config.Label() }

// schemaVersion is folded into every Key. Bump it whenever the
// simulator's observable behavior or the Report schema changes, so a
// reused spill directory (Options.CacheDir) from an older build is
// invalidated instead of silently serving stale results.
//
// Version history: 1 hashed the full config JSON; 2 keys on
// Config.Fingerprint().
const schemaVersion = 2

// Key is the content address of a Request: a SHA-256 over the
// config's canonical Fingerprint, the workload, and the run lengths,
// plus schemaVersion. The simulator is deterministic, so equal keys
// imply identical Reports.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (used as the on-disk cache
// filename).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyOf computes the content address of a request. The config enters
// via Config.Fingerprint() — a canonical hash that excludes the
// display Name — so identically-parameterized configs under different
// names (or no name at all) share one cache entry and one in-flight
// simulation. The workload name is canonicalized (short name) so
// "mcf" and "429.mcf" share a key; unresolvable workload names still
// produce a stable key and fail later at run time with a useful
// error.
func KeyOf(req Request) Key {
	canonical := struct {
		Version     int    `json:"version"`
		Fingerprint string `json:"fingerprint"`
		Workload    string `json:"workload"`
		Warmup      uint64 `json:"warmup"`
		Measure     uint64 `json:"measure"`
	}{schemaVersion, req.Config.Fingerprint(), req.Workload, req.Warmup, req.Measure}
	if w, err := eole.WorkloadByName(req.Workload); err == nil {
		canonical.Workload = w.Short
	}
	b, err := json.Marshal(canonical)
	if err != nil {
		// The canonical struct contains only marshalable scalar fields;
		// reaching this is a programming error, not an input error.
		panic(fmt.Sprintf("simsvc: cannot marshal request: %v", err))
	}
	return sha256.Sum256(b)
}
