package simsvc

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"eole"
	"eole/internal/obs"
)

// syncBuffer serializes writes: the service logs from worker
// goroutines concurrently with the submitting test goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestJobLifecycleLogging(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s, err := New(Options{Parallelism: 1, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cfg, err := eole.NamedConfig("EOLE_4_64")
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Config: cfg, Workload: "gzip", Warmup: 500, Measure: 2000}
	ctx := obs.WithRequestID(t.Context(), "trace-me-42")

	j, err := s.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// Second submission: must log a cache hit with the same request ID.
	if _, err := s.Submit(ctx, req); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	var sawStart, sawDone, sawHit bool
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		switch ev["msg"] {
		case "sim_start", "sim_done":
			ids, _ := ev["request_ids"].([]any)
			found := false
			for _, id := range ids {
				if id == "trace-me-42" {
					found = true
				}
			}
			if !found {
				t.Errorf("%s missing request ID: %s", ev["msg"], line)
			}
			if ev["workload"] != "gzip" {
				t.Errorf("%s wrong workload: %s", ev["msg"], line)
			}
			if ev["msg"] == "sim_start" {
				sawStart = true
			} else {
				sawDone = true
			}
		case "job_cache_hit":
			if ev["request_id"] != "trace-me-42" {
				t.Errorf("cache hit missing request ID: %s", line)
			}
			sawHit = true
		}
	}
	if !sawStart || !sawDone || !sawHit {
		t.Errorf("missing lifecycle events (start=%v done=%v hit=%v):\n%s", sawStart, sawDone, sawHit, out)
	}
}

func TestInFlight(t *testing.T) {
	s, err := New(Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.InFlight(); got != 0 {
		t.Errorf("idle InFlight = %d", got)
	}
	s.Close()
}
