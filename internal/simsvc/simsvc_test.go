package simsvc

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"eole"
)

// testReq is a tiny but real simulation: long enough to exercise the
// pipeline, short enough to keep the suite fast.
func testReq(t *testing.T, cfgName, wl string) Request {
	t.Helper()
	cfg, err := eole.NamedConfig(cfgName)
	if err != nil {
		t.Fatal(err)
	}
	return Request{Config: cfg, Workload: wl, Warmup: 2_000, Measure: 5_000}
}

func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestKeyDeterminism(t *testing.T) {
	a := testReq(t, "EOLE_4_64", "mcf")
	b := testReq(t, "EOLE_4_64", "mcf")
	if KeyOf(a) != KeyOf(b) {
		t.Fatal("identical requests must share a key")
	}
	// Short and full workload names are the same content.
	full := a
	full.Workload = "429.mcf"
	if KeyOf(full) != KeyOf(a) {
		t.Error("workload aliases must share a key")
	}
	// Any semantic difference must change the key.
	diff := a
	diff.Measure++
	if KeyOf(diff) == KeyOf(a) {
		t.Error("different measure must change the key")
	}
	other := testReq(t, "Baseline_6_64", "mcf")
	if KeyOf(other) == KeyOf(a) {
		t.Error("different config must change the key")
	}
	// The display name is a label, not machine semantics: renamed but
	// identically-parameterized configs must share one simulation
	// (Figure 11's "_4banks_4ports" vs Figure 12's "_4ports_4banks").
	renamed := a
	renamed.Config.Name = "EOLE_4_64_alias"
	if KeyOf(renamed) != KeyOf(a) {
		t.Error("config name must not change the key")
	}
}

// TestCacheHitDeterminism is the headline acceptance check: the same
// key simulates exactly once and repeated submissions get the
// identical report.
func TestCacheHitDeterminism(t *testing.T) {
	s := newTestService(t, Options{Parallelism: 2})
	ctx := context.Background()
	req := testReq(t, "EOLE_4_64", "crafty")

	j1, err := s.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := j1.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := j2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("cache hit must return the shared report")
	}
	if !j2.Cached() {
		t.Error("second submission must be marked cached")
	}
	if j1.Status() != StatusDone || j2.Status() != StatusDone {
		t.Errorf("statuses: %v, %v", j1.Status(), j2.Status())
	}
	st := s.Stats()
	if st.SimsRun != 1 {
		t.Errorf("SimsRun = %d, want exactly 1", st.SimsRun)
	}
	if st.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", st.CacheHits)
	}
	if st.UopsPerSec <= 0 {
		t.Errorf("UopsPerSec = %v, want > 0", st.UopsPerSec)
	}
}

// TestSweepFanOut runs the same sweep — with a duplicated baseline
// column — across worker-pool widths and checks both the results and
// the one-sim-per-unique-key invariant.
func TestSweepFanOut(t *testing.T) {
	base := testReq(t, "Baseline_6_64", "gzip")
	reqs := []Request{
		base, // baseline
		testReq(t, "EOLE_4_64", "gzip"),
		testReq(t, "EOLE_6_64", "gzip"),
		base, // repeated baseline: must not re-simulate
		testReq(t, "Baseline_VP_6_64", "gzip"),
	}
	const unique = 4
	var want []*eole.Report
	for _, par := range []int{1, 2, 4} {
		s := newTestService(t, Options{Parallelism: par})
		sweep, err := s.SubmitSweep(context.Background(), reqs)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		reports, err := sweep.Wait(context.Background())
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(reports) != len(reqs) {
			t.Fatalf("par=%d: %d reports, want %d", par, len(reports), len(reqs))
		}
		if reports[0] != reports[3] {
			t.Errorf("par=%d: duplicated request must share one report", par)
		}
		st := s.Stats()
		if st.SimsRun != unique {
			t.Errorf("par=%d: SimsRun = %d, want %d (one per unique key)", par, st.SimsRun, unique)
		}
		// The simulator is deterministic: every pool width must
		// produce identical numbers.
		if want == nil {
			want = reports
		} else {
			for i := range reports {
				if reports[i].IPC != want[i].IPC || reports[i].Cycles != want[i].Cycles {
					t.Errorf("par=%d: report %d differs across pool widths", par, i)
				}
			}
		}
	}
}

func TestCancellationMidSweep(t *testing.T) {
	// One worker and a deliberately long head job: everything behind
	// it is still queued when we cancel.
	s := newTestService(t, Options{Parallelism: 1})
	ctx, cancel := context.WithCancel(context.Background())
	head := testReq(t, "Baseline_6_64", "namd")
	head.Measure = 200_000
	reqs := []Request{head}
	for _, wl := range []string{"art", "milc", "hmmer", "sjeng", "vortex"} {
		reqs = append(reqs, testReq(t, "Baseline_6_64", wl))
	}
	sweep, err := s.SubmitSweep(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	reports, err := sweep.Wait(context.Background())
	if err == nil {
		t.Fatal("canceled sweep must report an error")
	}
	canceled := 0
	for i, j := range sweep.Jobs {
		<-j.Done()
		if _, jerr := j.Result(); errors.Is(jerr, context.Canceled) {
			canceled++
			if reports[i] != nil {
				t.Errorf("job %d: canceled but has a report", i)
			}
			if j.Status() != StatusCanceled {
				t.Errorf("job %d: status %v, want canceled", i, j.Status())
			}
		}
	}
	if canceled == 0 {
		t.Error("no job observed the cancellation")
	}
	if st := s.Stats(); st.JobsCanceled == 0 {
		t.Error("JobsCanceled counter did not move")
	}
}

func TestSingleFlightCoalescing(t *testing.T) {
	// With one worker and a slow head job, identical submissions queue
	// behind it and must coalesce onto one task.
	s := newTestService(t, Options{Parallelism: 1})
	ctx := context.Background()
	blocker := testReq(t, "Baseline_6_64", "namd")
	blocker.Measure = 100_000
	if _, err := s.Submit(ctx, blocker); err != nil {
		t.Fatal(err)
	}
	req := testReq(t, "EOLE_4_64", "art")
	var jobs []*Job
	for i := 0; i < 5; i++ {
		j, err := s.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	var first *eole.Report
	for i, j := range jobs {
		r, err := j.Wait(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if first == nil {
			first = r
		} else if r != first {
			t.Errorf("job %d: coalesced jobs must share one report", i)
		}
	}
	st := s.Stats()
	if got := st.SimsRun; got != 2 { // blocker + one for the 5 coalesced
		t.Errorf("SimsRun = %d, want 2", got)
	}
	if st.Coalesced != 4 {
		t.Errorf("Coalesced = %d, want 4", st.Coalesced)
	}
}

// TestCanceledOriginatorKeepsCoalescers: when the Submit that created
// a task is canceled while blocked on a full queue, jobs coalesced
// onto that task by other callers must still run.
func TestCanceledOriginatorKeepsCoalescers(t *testing.T) {
	s := newTestService(t, Options{Parallelism: 1, QueueDepth: 1})
	ctx := context.Background()
	// The blocker must keep the single worker busy for the whole test
	// so the queue slot stays occupied by the filler.
	blocker := testReq(t, "Baseline_6_64", "namd")
	blocker.Measure = 2_000_000
	if _, err := s.Submit(ctx, blocker); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // worker dequeues the blocker
	filler := testReq(t, "Baseline_6_64", "art")
	if _, err := s.Submit(ctx, filler); err != nil { // fills the 1-deep queue
		t.Fatal(err)
	}
	target := testReq(t, "EOLE_4_64", "gzip")
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	errc := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctxA, target)
		errc <- err
	}()
	// Wait until the originator has registered the target task (its
	// cache-miss counter moves before it parks on the queue send).
	for i := 0; s.Stats().CacheMisses < 3 && i < 500; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	jB, err := s.Submit(ctx, target) // coalesces onto the blocked task
	if err != nil {
		t.Fatal(err)
	}
	cancelA()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("originator Submit = %v, want context.Canceled", err)
	}
	r, err := jB.Wait(ctx)
	if err != nil {
		t.Fatalf("coalesced job must survive the originator's cancel: %v", err)
	}
	if r == nil || r.IPC <= 0 {
		t.Error("coalesced job returned an invalid report")
	}
}

func TestDiskSpill(t *testing.T) {
	dir := t.TempDir()
	req := testReq(t, "EOLE_4_64", "gzip")
	ctx := context.Background()

	s1 := newTestService(t, Options{Parallelism: 1, CacheDir: dir})
	j, err := s1.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// A second service over the same directory must not re-simulate.
	s2 := newTestService(t, Options{Parallelism: 1, CacheDir: dir})
	j2, err := s2.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := j2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.SimsRun != 0 {
		t.Errorf("SimsRun = %d, want 0 (served from disk)", st.SimsRun)
	}
	if st.DiskHits != 1 {
		t.Errorf("DiskHits = %d, want 1", st.DiskHits)
	}
	if r2.IPC != r1.IPC || r2.Cycles != r1.Cycles || r2.Raw() != r1.Raw() {
		t.Error("disk round-trip must preserve the report, including raw counters")
	}
	// And the JSON itself must round-trip the whole report.
	b, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	var back eole.Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Raw() != r1.Raw() {
		t.Error("Report JSON must carry the raw counter set")
	}
}

// TestCacheEviction: the in-memory cache is bounded FIFO; evicted
// entries fall back to disk when a spill directory is configured.
func TestCacheEviction(t *testing.T) {
	dir := t.TempDir()
	s := newTestService(t, Options{Parallelism: 1, CacheEntries: 2, CacheDir: dir})
	ctx := context.Background()
	reqs := []Request{
		testReq(t, "Baseline_6_64", "gzip"),
		testReq(t, "EOLE_4_64", "gzip"),
		testReq(t, "EOLE_6_64", "gzip"),
	}
	for _, req := range reqs {
		j, err := s.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if size := s.Stats().CacheSize; size != 2 {
		t.Errorf("cache size = %d, want 2 (bounded)", size)
	}
	// The first request was evicted from memory but spilled to disk.
	j, err := s.Submit(ctx, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SimsRun != 3 {
		t.Errorf("SimsRun = %d, want 3 (evicted entry served from disk, not re-simulated)", st.SimsRun)
	}
	if st.DiskHits != 1 {
		t.Errorf("DiskHits = %d, want 1", st.DiskHits)
	}
}

func TestSubmitErrors(t *testing.T) {
	s := newTestService(t, Options{Parallelism: 1})
	ctx := context.Background()
	// Invalid workload fails the job, not the process.
	bad := testReq(t, "EOLE_4_64", "crafty")
	bad.Workload = "no-such-benchmark"
	j, err := s.Submit(ctx, bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(ctx); err == nil {
		t.Fatal("unknown workload must fail the job")
	}
	if j.Status() != StatusFailed {
		t.Errorf("status %v, want failed", j.Status())
	}
	// Invalid config likewise.
	badCfg := testReq(t, "EOLE_4_64", "crafty")
	badCfg.Config.IssueWidth = -1
	j2, err := s.Submit(ctx, badCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(ctx); err == nil {
		t.Fatal("invalid config must fail the job")
	}
	if st := s.Stats(); st.JobsFailed != 2 {
		t.Errorf("JobsFailed = %d, want 2", st.JobsFailed)
	}
}

func TestCloseRejectsAndDrains(t *testing.T) {
	s, err := New(Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	j, err := s.Submit(ctx, testReq(t, "Baseline_6_64", "gzip"))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// The in-flight job either finished or was abandoned with ErrClosed
	// — but it must be resolved, not leaked.
	select {
	case <-j.Done():
	default:
		t.Fatal("Close must resolve every job")
	}
	if _, err := s.Submit(ctx, testReq(t, "Baseline_6_64", "art")); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestWaitRespectsContext(t *testing.T) {
	s := newTestService(t, Options{Parallelism: 1})
	req := testReq(t, "Baseline_6_64", "namd")
	req.Measure = 500_000
	j, err := s.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := j.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Wait = %v, want deadline exceeded", err)
	}
}
