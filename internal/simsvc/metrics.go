package simsvc

import (
	"sync/atomic"
	"time"
)

// metrics is the service's internal atomic counter set.
type metrics struct {
	submitted     atomic.Uint64
	completed     atomic.Uint64
	failed        atomic.Uint64
	canceled      atomic.Uint64
	simsRun       atomic.Uint64
	sampledRuns   atomic.Uint64
	abandonedRuns atomic.Uint64
	cacheHits     atomic.Uint64
	diskHits      atomic.Uint64
	cacheMisses   atomic.Uint64
	coalesced     atomic.Uint64
	simNanos      atomic.Int64
	simOps        atomic.Uint64

	// Trace-driven simulation (zero when Options.Traces is off).
	tracesRecorded   atomic.Uint64
	traceReplays     atomic.Uint64
	traceFallbacks   atomic.Uint64
	traceDiskLoads   atomic.Uint64
	traceLoadErrors  atomic.Uint64
	traceRecordNanos atomic.Int64
}

// Stats is a point-in-time snapshot of the service counters. All
// fields are cumulative since service creation.
type Stats struct {
	// Job accounting. Submitted counts every Submit/SubmitSweep job,
	// including ones answered from the cache without simulating.
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCanceled  uint64 `json:"jobs_canceled"`

	// Cache accounting. SimsRun counts simulations actually executed;
	// CacheHits counts jobs answered from memory or disk; Coalesced
	// counts jobs that joined an identical in-flight simulation
	// (single-flight), so SimsRun + CacheHits + Coalesced ==
	// JobsCompleted when nothing failed.
	SimsRun uint64 `json:"sims_run"`
	// SimsSampled counts executed simulations that ran sampled (a
	// subset of SimsRun).
	SimsSampled uint64 `json:"sims_sampled"`
	// SimsAbandoned counts running simulations canceled mid-flight
	// because every waiter's context died (client disconnects, expired
	// sweep deadlines).
	SimsAbandoned uint64 `json:"sims_abandoned"`
	CacheHits     uint64 `json:"cache_hits"`
	DiskHits      uint64 `json:"disk_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	Coalesced     uint64 `json:"coalesced"`
	CacheSize     int    `json:"cache_size"`

	// Throughput. SimWallTime is the summed wall time of executed
	// simulations (overlapping across workers); SimulatedOps counts
	// the µ-ops each executed simulation advanced through — warmup +
	// measure for full runs, the whole sampled stream (skipped,
	// warmed and measured µ-ops) for sampled ones.
	SimWallTime  time.Duration `json:"sim_wall_time_ns"`
	SimulatedOps uint64        `json:"simulated_uops"`

	// UopsPerSec is SimulatedOps over summed wall time — per-worker
	// simulation speed, not aggregate throughput.
	UopsPerSec float64 `json:"uops_per_sec"`

	// Trace-driven simulation. TracesRecorded counts workload streams
	// interpreted and encoded; TraceReplays counts simulations served
	// by replaying one; TraceFallbacks counts simulations that ran
	// execute-driven although tracing is enabled (request over the
	// length ceiling, or a stale/unattachable trace); TraceDiskLoads
	// and TraceLoadErrors account for the spill directory.
	TracesRecorded  uint64 `json:"traces_recorded"`
	TraceReplays    uint64 `json:"trace_replays"`
	TraceFallbacks  uint64 `json:"trace_fallbacks"`
	TraceDiskLoads  uint64 `json:"trace_disk_loads"`
	TraceLoadErrors uint64 `json:"trace_load_errors"`
	// TraceRecordTime is the summed wall time spent recording.
	TraceRecordTime time.Duration `json:"trace_record_time_ns"`
}

func (m *metrics) snapshot(cacheSize int) Stats {
	s := Stats{
		JobsSubmitted: m.submitted.Load(),
		JobsCompleted: m.completed.Load(),
		JobsFailed:    m.failed.Load(),
		JobsCanceled:  m.canceled.Load(),
		SimsRun:       m.simsRun.Load(),
		SimsSampled:   m.sampledRuns.Load(),
		SimsAbandoned: m.abandonedRuns.Load(),
		CacheHits:     m.cacheHits.Load(),
		DiskHits:      m.diskHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
		Coalesced:     m.coalesced.Load(),
		CacheSize:     cacheSize,
		SimWallTime:   time.Duration(m.simNanos.Load()),
		SimulatedOps:  m.simOps.Load(),

		TracesRecorded:  m.tracesRecorded.Load(),
		TraceReplays:    m.traceReplays.Load(),
		TraceFallbacks:  m.traceFallbacks.Load(),
		TraceDiskLoads:  m.traceDiskLoads.Load(),
		TraceLoadErrors: m.traceLoadErrors.Load(),
		TraceRecordTime: time.Duration(m.traceRecordNanos.Load()),
	}
	if secs := s.SimWallTime.Seconds(); secs > 0 {
		s.UopsPerSec = float64(s.SimulatedOps) / secs
	}
	return s
}
