package simsvc

import (
	"sync/atomic"
	"time"
)

// metrics is the service's internal atomic counter set.
type metrics struct {
	submitted   atomic.Uint64
	completed   atomic.Uint64
	failed      atomic.Uint64
	canceled    atomic.Uint64
	simsRun     atomic.Uint64
	cacheHits   atomic.Uint64
	diskHits    atomic.Uint64
	cacheMisses atomic.Uint64
	coalesced   atomic.Uint64
	simNanos    atomic.Int64
	simOps      atomic.Uint64
}

// Stats is a point-in-time snapshot of the service counters. All
// fields are cumulative since service creation.
type Stats struct {
	// Job accounting. Submitted counts every Submit/SubmitSweep job,
	// including ones answered from the cache without simulating.
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCanceled  uint64 `json:"jobs_canceled"`

	// Cache accounting. SimsRun counts simulations actually executed;
	// CacheHits counts jobs answered from memory or disk; Coalesced
	// counts jobs that joined an identical in-flight simulation
	// (single-flight), so SimsRun + CacheHits + Coalesced ==
	// JobsCompleted when nothing failed.
	SimsRun     uint64 `json:"sims_run"`
	CacheHits   uint64 `json:"cache_hits"`
	DiskHits    uint64 `json:"disk_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Coalesced   uint64 `json:"coalesced"`
	CacheSize   int    `json:"cache_size"`

	// Throughput. SimWallTime is the summed wall time of executed
	// simulations (overlapping across workers); SimulatedOps counts
	// committed µ-ops (warmup + measure) across executed simulations.
	SimWallTime  time.Duration `json:"sim_wall_time_ns"`
	SimulatedOps uint64        `json:"simulated_uops"`

	// UopsPerSec is SimulatedOps over summed wall time — per-worker
	// simulation speed, not aggregate throughput.
	UopsPerSec float64 `json:"uops_per_sec"`
}

func (m *metrics) snapshot(cacheSize int) Stats {
	s := Stats{
		JobsSubmitted: m.submitted.Load(),
		JobsCompleted: m.completed.Load(),
		JobsFailed:    m.failed.Load(),
		JobsCanceled:  m.canceled.Load(),
		SimsRun:       m.simsRun.Load(),
		CacheHits:     m.cacheHits.Load(),
		DiskHits:      m.diskHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
		Coalesced:     m.coalesced.Load(),
		CacheSize:     cacheSize,
		SimWallTime:   time.Duration(m.simNanos.Load()),
		SimulatedOps:  m.simOps.Load(),
	}
	if secs := s.SimWallTime.Seconds(); secs > 0 {
		s.UopsPerSec = float64(s.SimulatedOps) / secs
	}
	return s
}
