package simsvc

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"eole"
)

// TestRunningJobAbandonedWhenWaitersGone is the interruptible-
// simulation acceptance check at the service layer: canceling the
// submit context of the only job attached to a *running* simulation
// stops the simulation promptly (bounded wall clock), frees the
// worker, and counts in SimsAbandoned.
func TestRunningJobAbandonedWhenWaitersGone(t *testing.T) {
	s := newTestService(t, Options{Parallelism: 1, Traces: false})
	long := testReq(t, "Baseline_6_64", "namd")
	long.Measure = 50_000_000 // minutes of simulation if never canceled

	ctx, cancel := context.WithCancel(context.Background())
	j, err := s.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has started the simulation.
	deadline := time.Now().Add(5 * time.Second)
	for j.Status() != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	start := time.Now()
	cancel()
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned job not resolved within 5s of cancel")
	}
	elapsed := time.Since(start)
	if _, jerr := j.Result(); !errors.Is(jerr, context.Canceled) {
		t.Fatalf("job error = %v, want context.Canceled", jerr)
	}
	if j.Status() != StatusCanceled {
		t.Errorf("status = %v, want canceled", j.Status())
	}
	// Generous bound: watcher poll (25ms) + core checkpoint (~µs) +
	// scheduling noise must stay far under the full run time.
	if elapsed > 3*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	if st := s.Stats(); st.SimsAbandoned != 1 {
		t.Errorf("SimsAbandoned = %d, want 1", st.SimsAbandoned)
	}

	// The worker must be free again: a fresh job completes.
	j2, err := s.Submit(context.Background(), testReq(t, "Baseline_6_64", "gzip"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatalf("worker not released after abandonment: %v", err)
	}
}

// TestAnonymousConfigLabels: an anonymous builder config (no Name)
// must surface as its synthesized fingerprint label — not "" — in
// sweep error strings, and two distinct anonymous configs must not
// collide on an empty name anywhere (keys are fingerprint-based).
func TestAnonymousConfigLabels(t *testing.T) {
	s := newTestService(t, Options{Parallelism: 1})
	anon, err := eole.NewConfig(eole.IssueWidth(4))
	if err != nil {
		t.Fatal(err)
	}
	if anon.Name != "" {
		t.Fatalf("builder config unexpectedly named %q", anon.Name)
	}
	req := Request{Config: anon, Workload: "no-such-benchmark", Warmup: 100, Measure: 100}
	sweep, err := s.SubmitSweep(context.Background(), []Request{req})
	if err != nil {
		t.Fatal(err)
	}
	_, werr := sweep.Wait(context.Background())
	if werr == nil {
		t.Fatal("unknown workload must fail")
	}
	if !strings.Contains(werr.Error(), "custom-"+anon.Fingerprint()[:12]) {
		t.Errorf("sweep error %q does not carry the synthesized label", werr)
	}
	if strings.Contains(werr.Error(), " on no-such-benchmark: ") && strings.HasPrefix(werr.Error(), " on ") {
		t.Errorf("sweep error %q lost the config label", werr)
	}

	// Two distinct anonymous configs: distinct keys.
	other, err := eole.NewConfig(eole.IssueWidth(5))
	if err != nil {
		t.Fatal(err)
	}
	a := Request{Config: anon, Workload: "gzip", Warmup: 100, Measure: 100}
	b := Request{Config: other, Workload: "gzip", Warmup: 100, Measure: 100}
	if KeyOf(a) == KeyOf(b) {
		t.Error("distinct anonymous configs must not share a cache key")
	}
}

// TestFingerprintSharedCache: a nameless custom config field-identical
// to a named one shares its cache entry — the second submission is a
// cache hit, not a second simulation.
func TestFingerprintSharedCache(t *testing.T) {
	s := newTestService(t, Options{Parallelism: 1})
	ctx := context.Background()

	named := testReq(t, "EOLE_4_64", "gzip")
	j1, err := s.Submit(ctx, named)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := j1.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}

	anon := named
	anon.Config.Name = "" // identical machine, no label
	j2, err := s.Submit(ctx, anon)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := j2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Cached() {
		t.Error("anonymous twin must hit the named config's cache entry")
	}
	if r2 != r1 {
		t.Error("cache hit must return the shared report")
	}
	if st := s.Stats(); st.SimsRun != 1 {
		t.Errorf("SimsRun = %d, want 1", st.SimsRun)
	}
}
