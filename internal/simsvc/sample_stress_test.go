package simsvc

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"eole"
)

// sampleReq is testReq with a sampling spec attached: same config
// fingerprint and workload as its full twin, so the two contend for
// the same cache neighborhood and must stay isolated.
func sampleReq(t *testing.T, cfgName, wl string) Request {
	r := testReq(t, cfgName, wl)
	r.Sampling = &eole.SamplingSpec{Windows: 2, Warm: 1_000, DetailWarmup: 100}
	return r
}

// TestSampledRequestRuns: end-to-end through the service, a sampled
// request yields a sampled report and its own metrics line.
func TestSampledRequestRuns(t *testing.T) {
	s := newTestService(t, Options{Parallelism: 1})
	j, err := s.Submit(context.Background(), sampleReq(t, "EOLE_4_64", "gzip"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sampled || r.IPCCI < 0 {
		t.Errorf("report not sampled: %+v", r)
	}
	st := s.Stats()
	if st.SimsRun != 1 || st.SimsSampled != 1 {
		t.Errorf("stats: sims_run=%d sims_sampled=%d", st.SimsRun, st.SimsSampled)
	}
}

// TestSampledFullKeyIsolation: a sampled request and its full twin
// (identical fingerprint, workload, lengths) must have distinct keys,
// and distinct sampling specs must not collide either.
func TestSampledFullKeyIsolation(t *testing.T) {
	full := testReq(t, "EOLE_4_64", "gzip")
	sampled := sampleReq(t, "EOLE_4_64", "gzip")
	if KeyOf(full) == KeyOf(sampled) {
		t.Error("sampled and full requests share a key")
	}
	other := sampleReq(t, "EOLE_4_64", "gzip")
	other.Sampling = &eole.SamplingSpec{Windows: 3, Warm: 1_000, DetailWarmup: 100}
	if KeyOf(sampled) == KeyOf(other) {
		t.Error("different sampling specs share a key")
	}
	// Equal specs behind distinct pointers must share one.
	twin := sampleReq(t, "EOLE_4_64", "gzip")
	if KeyOf(sampled) != KeyOf(twin) {
		t.Error("identical sampled requests do not share a key")
	}
	// A spec that spells out the defaults resolves to the same plan
	// and must share the entry (keys hash the resolved schedule,
	// like configs are normalized before fingerprinting).
	spelled := sampleReq(t, "EOLE_4_64", "gzip")
	plan, err := spelled.Sampling.Plan(spelled.Measure)
	if err != nil {
		t.Fatal(err)
	}
	spelled.Sampling = &eole.SamplingSpec{
		Windows: plan.Windows, Skip: plan.Skip, Warm: plan.Warm,
		Measure: plan.Measure, DetailWarmup: plan.DetailWarmup,
	}
	if KeyOf(sampled) != KeyOf(spelled) {
		t.Error("default-equivalent sampling specs do not share a key")
	}
}

// TestSampledFullConcurrencyStress is the race-enabled stress mix:
// sampled sweeps, full sweeps, and mid-run cancellations hammering
// the same fingerprints through a small worker pool. Asserts that
// every completed job carries a report of its own mode (cache-entry
// isolation under contention) and that the service drains without
// leaking workers or watchers.
func TestSampledFullConcurrencyStress(t *testing.T) {
	before := runtime.NumGoroutine()
	s := newTestService(t, Options{Parallelism: 3})

	cfgs := []string{"EOLE_4_64", "Baseline_6_64"}
	wls := []string{"gzip", "hmmer"}
	const rounds = 6

	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		worker := worker
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)))
			for round := 0; round < rounds; round++ {
				var reqs []Request
				sampled := worker%2 == 0
				for _, c := range cfgs {
					for _, w := range wls {
						if sampled {
							reqs = append(reqs, sampleReq(t, c, w))
						} else {
							reqs = append(reqs, testReq(t, c, w))
						}
					}
				}
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if worker%4 == 3 {
					// This worker cancels mid-run, sometimes before the
					// sweep can finish.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3_000))*time.Microsecond)
				}
				sweep, err := s.SubmitSweep(ctx, reqs)
				if err != nil && err != context.DeadlineExceeded && ctx.Err() == nil {
					t.Errorf("worker %d: submit: %v", worker, err)
				}
				for i, j := range sweep.Jobs {
					r, err := j.Wait(context.Background())
					if err != nil {
						continue // canceled: allowed for the canceling workers
					}
					if r.Sampled != sampled {
						t.Errorf("worker %d: mode crossover — asked sampled=%v, got sampled=%v for %s/%s",
							worker, sampled, r.Sampled, reqs[i].Config.Name, reqs[i].Workload)
					}
				}
				cancel()
			}
		}()
	}
	wg.Wait()

	st := s.Stats()
	if st.SimsSampled == 0 || st.SimsSampled == st.SimsRun {
		t.Errorf("stress did not exercise both modes: sims_run=%d sims_sampled=%d", st.SimsRun, st.SimsSampled)
	}
	s.Close()

	// Workers, watchers and requeue goroutines must all be gone.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutine leak after Close: %d before stress, %d after", before, runtime.NumGoroutine())
}
