package simsvc

import (
	"fmt"
	"math/bits"
	"os"
	"sort"
	"sync"
	"time"

	"eole/internal/sample"
	"eole/internal/trace"
	"eole/internal/workload"
)

// traceStore holds one recorded µ-op trace per workload and hands out
// replay-ready traces to the simulation workers: record-on-miss,
// replay-on-hit, with single-flight recording so concurrent sweep jobs
// over the same workload share one interpretation.
//
// Traces are keyed by workload only — the stream is configuration-
// independent, which is the whole point: a (configs × workloads) sweep
// interprets each workload once instead of once per cell. A stored
// trace serves any request it is long enough for (Trace.CanServe);
// a longer request triggers a longer re-recording that replaces the
// shorter one.
//
// With a directory configured, recordings spill to <dir>/<short>.trace
// and are reloaded by later processes. Corrupted, truncated or
// version-mismatched files are ignored (counted in the service
// metrics) and overwritten by a fresh recording — the caller falls
// back to execute-driven recording, never to a wrong stream.
type traceStore struct {
	dir    string // "" = memory only
	maxOps uint64 // requests needing more µ-ops fall back to execute-driven
	m      *metrics

	mu  sync.Mutex
	mem map[string]*trace.Trace // workload short name -> longest trace
	rec map[string]*recording   // in-flight recordings (single-flight)
}

// recording is one in-flight trace recording; waiters block on done.
type recording struct {
	done chan struct{}
	t    *trace.Trace
	err  error
}

func newTraceStore(dir string, maxOps uint64, m *metrics) *traceStore {
	return &traceStore{
		dir:    dir,
		maxOps: maxOps,
		m:      m,
		mem:    make(map[string]*trace.Trace),
		rec:    make(map[string]*recording),
	}
}

// roundUpOps pads a needed trace length to the next power of two (at
// least 64K µ-ops), so a server receiving a spread of run lengths
// records O(log n) trace generations per workload instead of one per
// distinct (warmup, measure) pair.
func roundUpOps(need uint64) uint64 {
	const floor = 1 << 16
	if need <= floor {
		return floor
	}
	return 1 << bits.Len64(need-1)
}

// traceFor returns a trace able to serve a run that fetches up to
// need µ-ops of w, recording one if necessary. It returns an error
// when need exceeds the store's ceiling (the caller simulates
// execute-driven) — never a too-short trace.
func (ts *traceStore) traceFor(w workload.Workload, need uint64) (*trace.Trace, error) {
	if ts.maxOps > 0 && need > ts.maxOps {
		return nil, fmt.Errorf("simsvc: trace of %d µ-ops exceeds ceiling %d", need, ts.maxOps)
	}
	for {
		ts.mu.Lock()
		if t := ts.mem[w.Short]; t != nil && t.CanServe(need) {
			ts.mu.Unlock()
			return t, nil
		}
		if r := ts.rec[w.Short]; r != nil {
			ts.mu.Unlock()
			<-r.done
			if r.err != nil {
				return nil, r.err
			}
			// The finished recording may still be shorter than this
			// request needs; loop to re-check and possibly re-record.
			continue
		}
		r := &recording{done: make(chan struct{})}
		ts.rec[w.Short] = r
		ts.mu.Unlock()

		r.t, r.err = ts.record(w, need)
		ts.mu.Lock()
		if r.err == nil {
			if old := ts.mem[w.Short]; old == nil || r.t.CanServe(old.Count) {
				ts.mem[w.Short] = r.t
			}
		}
		delete(ts.rec, w.Short)
		ts.mu.Unlock()
		close(r.done)
		if r.err != nil {
			return nil, r.err
		}
		if r.t.CanServe(need) {
			return r.t, nil
		}
	}
}

// record loads a long-enough trace from the spill directory or records
// a fresh one (and spills it). Called outside the store lock — both
// paths are expensive.
func (ts *traceStore) record(w workload.Workload, need uint64) (*trace.Trace, error) {
	if t := ts.loadDisk(w, need); t != nil {
		return t, nil
	}
	n := roundUpOps(need)
	if ts.maxOps > 0 && n > ts.maxOps {
		n = ts.maxOps
	}
	start := time.Now()
	t := trace.Record(w, n)
	ts.m.tracesRecorded.Add(1)
	ts.m.traceRecordNanos.Add(int64(time.Since(start)))
	ts.spillDisk(t)
	return t, nil
}

// loadDisk returns the spilled trace for w if it exists, validates,
// matches the workload's current program and is long enough; any
// failure is a miss (the fresh recording overwrites the file).
func (ts *traceStore) loadDisk(w workload.Workload, need uint64) *trace.Trace {
	if ts.dir == "" {
		return nil
	}
	path := trace.Path(ts.dir, w.Short)
	if _, err := os.Stat(path); err != nil {
		return nil // never spilled; not a load error
	}
	t, err := trace.ReadFile(path)
	if err != nil {
		// Corrupt, truncated or version-mismatched spill: fall back to
		// execute-driven recording.
		ts.m.traceLoadErrors.Add(1)
		return nil
	}
	if !t.CanServe(need) {
		return nil
	}
	if _, err := t.SourceFor(w); err != nil {
		// Program changed since the trace was recorded.
		ts.m.traceLoadErrors.Add(1)
		return nil
	}
	ts.m.traceDiskLoads.Add(1)
	return t
}

// spillDisk persists a recording, best-effort (a read-only or full
// directory degrades the store to memory-only).
func (ts *traceStore) spillDisk(t *trace.Trace) {
	if ts.dir == "" {
		return
	}
	_ = trace.WriteFile(trace.Path(ts.dir, t.Workload), t)
}

// TraceInfo describes one stored trace (the /v1/traces wire form).
type TraceInfo struct {
	Workload string `json:"workload"`
	Uops     uint64 `json:"uops"`
	Bytes    int    `json:"bytes"`
	Complete bool   `json:"complete"`
}

// infos snapshots the in-memory store, sorted by workload.
func (ts *traceStore) infos() []TraceInfo {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceInfo, 0, len(ts.mem))
	for _, t := range ts.mem {
		out = append(out, TraceInfo{
			Workload: t.Workload,
			Uops:     t.Count,
			Bytes:    t.SizeBytes(),
			Complete: t.Complete,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Workload < out[j].Workload })
	return out
}

// Traces lists the traces currently held in memory, sorted by
// workload. Empty when trace-driven simulation is disabled.
func (s *Service) Traces() []TraceInfo {
	if s.traces == nil {
		return []TraceInfo{}
	}
	return s.traces.infos()
}

// TracesEnabled reports whether the service replays recorded traces.
func (s *Service) TracesEnabled() bool { return s.traces != nil }

// replayNeed is the trace length required to guarantee byte-identical
// replay of one request. The fetch-ahead margin is sized from the
// request's own configuration (a custom machine with a huge ROB
// fetches further ahead of commit than the Table 1 machines), so an
// undersized trace can never be replayed silently. A sampled request
// consumes its whole window schedule from the source, so its need is
// the spec's stream length, not warmup+measure. Overflow-safe:
// returns 0 on overflow, which makes the caller fall back to
// execute-driven simulation.
func replayNeed(req Request) uint64 {
	slack := trace.SlackFor(req.Config.ROBSize, req.Config.FetchQueueSize)
	total := req.Warmup + req.Measure
	if req.Sampling != nil {
		total = req.Sampling.StreamNeed(req.Warmup, req.Measure)
		// StreamNeed budgets sample.FlushAllowance per window for the
		// in-flight µ-ops each window boundary discards; a custom
		// machine that fetches further ahead than that discards more,
		// per window, so the shortfall scales with the window count.
		if slack > sample.FlushAllowance {
			extra := (slack - sample.FlushAllowance) * uint64(req.Sampling.Windows)
			if extra/uint64(req.Sampling.Windows) != slack-sample.FlushAllowance || total+extra < total {
				return 0
			}
			total += extra
		}
	}
	if total < req.Warmup || total+slack < total {
		return 0
	}
	return total + slack
}

// traceSource resolves a replay trace for req, or nil to simulate
// execute-driven (trace disabled, request over the ceiling, or a
// recording problem — all counted as fallbacks except plain disabled).
func (s *Service) traceSource(w workload.Workload, req Request) *trace.Trace {
	if s.traces == nil {
		return nil
	}
	need := replayNeed(req)
	if need == 0 {
		s.m.traceFallbacks.Add(1)
		return nil
	}
	t, err := s.traces.traceFor(w, need)
	if err != nil {
		s.m.traceFallbacks.Add(1)
		return nil
	}
	return t
}
