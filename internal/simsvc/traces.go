package simsvc

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"

	"eole/internal/artifact"
	"eole/internal/sample"
	"eole/internal/trace"
	"eole/internal/workload"
)

// traceStore holds one recorded µ-op trace per workload and hands out
// replay-ready traces to the simulation workers: record-on-miss,
// replay-on-hit, with single-flight recording so concurrent sweep jobs
// over the same workload share one interpretation.
//
// Traces are keyed by workload only — the stream is configuration-
// independent, which is the whole point: a (configs × workloads) sweep
// interprets each workload once instead of once per cell. A stored
// trace serves any request it is long enough for (Trace.CanServe);
// a longer request triggers a longer re-recording that replaces the
// shorter one.
//
// With an artifact store configured, recordings persist under the
// TraceKeyOf content address, reloadable by later processes — and,
// when the store has a peer, fetchable by the whole cluster, so a
// workload is interpreted once fleet-wide. Corrupted, truncated or
// version-mismatched artifacts are ignored (counted in the service
// metrics; footer-level corruption is quarantined by the fabric
// itself) and overwritten by a fresh recording — the caller falls
// back to execute-driven recording, never to a wrong stream.
type traceStore struct {
	store  *artifact.Store // nil = memory only
	maxOps uint64          // requests needing more µ-ops fall back to execute-driven
	m      *metrics

	mu  sync.Mutex
	mem map[string]*trace.Trace // workload short name -> longest trace
	rec map[string]*recording   // in-flight recordings (single-flight)
}

// recording is one in-flight trace recording; waiters block on done.
type recording struct {
	done chan struct{}
	t    *trace.Trace
	err  error
}

func newTraceStore(store *artifact.Store, maxOps uint64, m *metrics) *traceStore {
	return &traceStore{
		store:  store,
		maxOps: maxOps,
		m:      m,
		mem:    make(map[string]*trace.Trace),
		rec:    make(map[string]*recording),
	}
}

// TraceKeyOf is the artifact-fabric content address of workload w's
// recorded trace: a SHA-256 over the trace format version, the
// workload's short name and its program hash. Folding the format
// version and program hash into the key means a store shared by
// mixed builds can never hand a worker a trace its decoder or its
// program disagrees with — each build addresses its own artifact.
// (The trace payload additionally self-validates both on load.)
func TraceKeyOf(w workload.Workload) string {
	h := sha256.Sum256(fmt.Appendf(nil, "eole-trace\x00v%d\x00%s\x00%016x",
		trace.Version, w.Short, trace.ProgramHash(w.Program)))
	return hex.EncodeToString(h[:])
}

// roundUpOps pads a needed trace length to the next power of two (at
// least 64K µ-ops), so a server receiving a spread of run lengths
// records O(log n) trace generations per workload instead of one per
// distinct (warmup, measure) pair.
func roundUpOps(need uint64) uint64 {
	const floor = 1 << 16
	if need <= floor {
		return floor
	}
	return 1 << bits.Len64(need-1)
}

// traceFor returns a trace able to serve a run that fetches up to
// need µ-ops of w, recording one if necessary. It returns an error
// when need exceeds the store's ceiling (the caller simulates
// execute-driven) — never a too-short trace. ctx bounds the artifact
// peer fetch, not the recording itself.
func (ts *traceStore) traceFor(ctx context.Context, w workload.Workload, need uint64) (*trace.Trace, error) {
	if ts.maxOps > 0 && need > ts.maxOps {
		return nil, fmt.Errorf("simsvc: trace of %d µ-ops exceeds ceiling %d", need, ts.maxOps)
	}
	for {
		ts.mu.Lock()
		if t := ts.mem[w.Short]; t != nil && t.CanServe(need) {
			ts.mu.Unlock()
			return t, nil
		}
		if r := ts.rec[w.Short]; r != nil {
			ts.mu.Unlock()
			<-r.done
			if r.err != nil {
				return nil, r.err
			}
			// The finished recording may still be shorter than this
			// request needs; loop to re-check and possibly re-record.
			continue
		}
		r := &recording{done: make(chan struct{})}
		ts.rec[w.Short] = r
		ts.mu.Unlock()

		r.t, r.err = ts.record(ctx, w, need)
		ts.mu.Lock()
		if r.err == nil {
			if old := ts.mem[w.Short]; old == nil || r.t.CanServe(old.Count) {
				ts.mem[w.Short] = r.t
			}
		}
		delete(ts.rec, w.Short)
		ts.mu.Unlock()
		close(r.done)
		if r.err != nil {
			return nil, r.err
		}
		if r.t.CanServe(need) {
			return r.t, nil
		}
	}
}

// record loads a long-enough trace from the artifact fabric or
// records a fresh one (and persists it). Called outside the store
// lock — both paths are expensive.
func (ts *traceStore) record(ctx context.Context, w workload.Workload, need uint64) (*trace.Trace, error) {
	if t := ts.load(ctx, w, need); t != nil {
		return t, nil
	}
	n := roundUpOps(need)
	if ts.maxOps > 0 && n > ts.maxOps {
		n = ts.maxOps
	}
	start := time.Now()
	t := trace.Record(w, n)
	ts.m.tracesRecorded.Add(1)
	ts.m.traceRecordNanos.Add(int64(time.Since(start)))
	ts.spill(t, w)
	return t, nil
}

// load returns the persisted trace for w if the fabric holds one that
// validates, matches the workload's current program and is long
// enough; any failure is a miss (the fresh recording overwrites the
// artifact).
func (ts *traceStore) load(ctx context.Context, w workload.Workload, need uint64) *trace.Trace {
	if ts.store == nil {
		return nil
	}
	b, err := ts.store.Get(ctx, artifact.KindTrace, TraceKeyOf(w))
	if err != nil {
		return nil // never stored (or quarantined by the fabric); not a load error
	}
	t, err := trace.Read(bytes.NewReader(b))
	if err != nil {
		// Corrupt, truncated or version-mismatched payload that still
		// passed the fabric's footer CRC: fall back to execute-driven
		// recording.
		ts.m.traceLoadErrors.Add(1)
		return nil
	}
	if !t.CanServe(need) {
		return nil
	}
	if _, err := t.SourceFor(w); err != nil {
		// Program changed since the trace was recorded.
		ts.m.traceLoadErrors.Add(1)
		return nil
	}
	ts.m.traceDiskLoads.Add(1)
	return t
}

// spill persists a recording to the fabric and shares it with the
// peer (the cluster coordinator, for workers) so the rest of the
// fleet replays instead of re-recording. Best-effort: a read-only or
// full store degrades to memory-only.
func (ts *traceStore) spill(t *trace.Trace, w workload.Workload) {
	if ts.store == nil {
		return
	}
	var buf bytes.Buffer
	if err := t.Write(&buf); err != nil {
		return
	}
	key := TraceKeyOf(w)
	_ = ts.store.Put(artifact.KindTrace, key, buf.Bytes())
	// The push is bounded on its own context: the recording job must
	// not hang on a wedged coordinator.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ts.store.Share(ctx, artifact.KindTrace, key, buf.Bytes())
}

// TraceInfo describes one stored trace (the /v1/traces wire form).
type TraceInfo struct {
	Workload string `json:"workload"`
	Uops     uint64 `json:"uops"`
	Bytes    int    `json:"bytes"`
	Complete bool   `json:"complete"`
}

// infos snapshots the in-memory store, sorted by workload.
func (ts *traceStore) infos() []TraceInfo {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceInfo, 0, len(ts.mem))
	for _, t := range ts.mem {
		out = append(out, TraceInfo{
			Workload: t.Workload,
			Uops:     t.Count,
			Bytes:    t.SizeBytes(),
			Complete: t.Complete,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Workload < out[j].Workload })
	return out
}

// Traces lists the traces currently held in memory, sorted by
// workload. Empty when trace-driven simulation is disabled.
func (s *Service) Traces() []TraceInfo {
	if s.traces == nil {
		return []TraceInfo{}
	}
	return s.traces.infos()
}

// TracesEnabled reports whether the service replays recorded traces.
func (s *Service) TracesEnabled() bool { return s.traces != nil }

// replayNeed is the trace length required to guarantee byte-identical
// replay of one request. The fetch-ahead margin is sized from the
// request's own configuration (a custom machine with a huge ROB
// fetches further ahead of commit than the Table 1 machines), so an
// undersized trace can never be replayed silently. A sampled request
// consumes its whole window schedule from the source, so its need is
// the spec's stream length, not warmup+measure. Overflow-safe:
// returns 0 on overflow, which makes the caller fall back to
// execute-driven simulation.
func replayNeed(req Request) uint64 {
	slack := trace.SlackFor(req.Config.ROBSize, req.Config.FetchQueueSize)
	total := req.Warmup + req.Measure
	if req.Sampling != nil {
		total = req.Sampling.StreamNeed(req.Warmup, req.Measure)
		// StreamNeed budgets sample.FlushAllowance per window for the
		// in-flight µ-ops each window boundary discards; a custom
		// machine that fetches further ahead than that discards more,
		// per window, so the shortfall scales with the window count.
		if slack > sample.FlushAllowance {
			extra := (slack - sample.FlushAllowance) * uint64(req.Sampling.Windows)
			if extra/uint64(req.Sampling.Windows) != slack-sample.FlushAllowance || total+extra < total {
				return 0
			}
			total += extra
		}
	}
	if total < req.Warmup || total+slack < total {
		return 0
	}
	return total + slack
}

// traceSource resolves a replay trace for req, or nil to simulate
// execute-driven (trace disabled, request over the ceiling, or a
// recording problem — all counted as fallbacks except plain
// disabled). ctx bounds the artifact peer fetch.
func (s *Service) traceSource(ctx context.Context, w workload.Workload, req Request) *trace.Trace {
	if s.traces == nil {
		return nil
	}
	need := replayNeed(req)
	if need == 0 {
		s.m.traceFallbacks.Add(1)
		return nil
	}
	t, err := s.traces.traceFor(ctx, w, need)
	if err != nil {
		s.m.traceFallbacks.Add(1)
		return nil
	}
	return t
}
