package simsvc

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"eole"
	"eole/internal/artifact"
	"eole/internal/trace"
	"eole/internal/workload"
)

// fixCRC rewrites the trailing CRC-32 of a raw trace payload so that
// a deliberate header mutation is not (also) rejected as corruption.
func fixCRC(raw []byte) {
	body := raw[:len(raw)-4]
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], crc32.ChecksumIEEE(body))
}

// traceArtifactPath is where the fabric stores the trace of the named
// workload under dir: <dir>/<shard>/<key>.art.
func traceArtifactPath(t *testing.T, dir, name string) string {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	key := TraceKeyOf(w)
	return filepath.Join(dir, key[:2], key+".art")
}

// corruptPayload flips one payload byte of an artifact file while
// keeping the fabric footer valid — i.e. payload-level corruption the
// fabric's CRC cannot catch, only the trace decoder can.
func corruptPayload(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const footer = 16 // crc32 LE(4) + length LE(8) + magic(4)
	payload := raw[:len(raw)-footer]
	payload[len(payload)/2] ^= 0xFF
	binary.LittleEndian.PutUint32(raw[len(raw)-footer:], crc32.ChecksumIEEE(payload))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func newTraceService(t *testing.T, opts Options) *Service {
	t.Helper()
	opts.Traces = true
	svc, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func submitWait(t *testing.T, svc *Service, req Request) *eole.Report {
	t.Helper()
	j, err := svc.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustConfig(t *testing.T, name string) eole.Config {
	t.Helper()
	cfg, err := eole.NamedConfig(name)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestTraceSweepRecordsOncePerWorkload runs a (4 configs × 2
// workloads) sweep and checks the core promise: one recording per
// workload, every simulation a replay, and results identical to an
// execute-driven service.
func TestTraceSweepRecordsOncePerWorkload(t *testing.T) {
	svc := newTraceService(t, Options{Parallelism: 4})
	plain, err := New(Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	cfgs := []eole.Config{
		mustConfig(t, "Baseline_6_64"),
		mustConfig(t, "Baseline_VP_6_64"),
		mustConfig(t, "EOLE_6_64"),
		mustConfig(t, "EOLE_4_64"),
	}
	reqs := Cross(cfgs, []string{"gzip", "crafty"}, 2_000, 8_000)

	sweep, err := svc.SubmitSweep(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sweep.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.TracesRecorded != 2 {
		t.Errorf("recorded %d traces, want 2 (one per workload)", st.TracesRecorded)
	}
	if st.TraceReplays != uint64(len(reqs)) {
		t.Errorf("replays %d, want %d (every simulation trace-driven)", st.TraceReplays, len(reqs))
	}
	if st.TraceFallbacks != 0 {
		t.Errorf("unexpected fallbacks: %d", st.TraceFallbacks)
	}

	// Byte-identical to an execute-driven service.
	for i, req := range reqs {
		want := submitWait(t, plain, req)
		bw, _ := json.Marshal(want)
		bg, _ := json.Marshal(got[i])
		if !bytes.Equal(bw, bg) {
			t.Errorf("%s on %s: trace-driven report differs from execute-driven",
				req.Config.Name, req.Workload)
		}
	}

	infos := svc.Traces()
	if len(infos) != 2 || infos[0].Workload != "crafty" || infos[1].Workload != "gzip" {
		t.Errorf("trace listing wrong: %+v", infos)
	}
	for _, in := range infos {
		if in.Uops < 2_000+8_000+trace.ReplaySlack {
			t.Errorf("%s: trace of %d µ-ops too short for the request", in.Workload, in.Uops)
		}
	}
}

// TestTraceRecordingSingleFlight launches many concurrent jobs that
// all need the same workload trace and checks only one recording
// happens.
func TestTraceRecordingSingleFlight(t *testing.T) {
	svc := newTraceService(t, Options{Parallelism: 8})
	cfgNames := []string{
		"Baseline_6_64", "Baseline_VP_6_64", "Baseline_VP_4_64", "Baseline_VP_6_48",
		"EOLE_6_64", "EOLE_4_64", "OLE_4_64", "EOE_4_64",
	}
	var wg sync.WaitGroup
	for _, name := range cfgNames {
		cfg := mustConfig(t, name)
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, err := svc.Submit(context.Background(), Request{Config: cfg, Workload: "vortex", Warmup: 1_000, Measure: 5_000})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := j.Wait(context.Background()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := svc.Stats()
	if st.TracesRecorded != 1 {
		t.Errorf("recorded %d traces for one workload, want 1 (single-flight)", st.TracesRecorded)
	}
	if st.TraceReplays == 0 {
		t.Error("no replays recorded")
	}
}

// TestTraceGrowsForLongerRequest checks that a request longer than the
// stored trace triggers a longer re-recording rather than a wrong
// (short) replay.
func TestTraceGrowsForLongerRequest(t *testing.T) {
	svc := newTraceService(t, Options{Parallelism: 2})
	cfg := mustConfig(t, "EOLE_4_64")
	submitWait(t, svc, Request{Config: cfg, Workload: "gzip", Warmup: 1_000, Measure: 4_000})
	first := svc.Traces()[0].Uops
	// 80k+80k exceeds the 2^17 rounding bucket of the first request.
	r := submitWait(t, svc, Request{Config: cfg, Workload: "gzip", Warmup: 80_000, Measure: 80_000})
	if r.Committed < 80_000 {
		t.Fatalf("long request committed %d", r.Committed)
	}
	st := svc.Stats()
	if st.TracesRecorded != 2 {
		t.Errorf("recorded %d traces, want 2 (short then long)", st.TracesRecorded)
	}
	second := svc.Traces()[0].Uops
	if second <= first {
		t.Errorf("trace did not grow: %d -> %d", first, second)
	}
	if st.TraceFallbacks != 0 {
		t.Errorf("unexpected fallbacks: %d", st.TraceFallbacks)
	}
}

// TestTraceOverCeilingFallsBack checks that requests longer than
// TraceMaxOps run execute-driven instead of failing.
func TestTraceOverCeilingFallsBack(t *testing.T) {
	svc := newTraceService(t, Options{Parallelism: 2, TraceMaxOps: 10_000})
	cfg := mustConfig(t, "Baseline_6_64")
	r := submitWait(t, svc, Request{Config: cfg, Workload: "gzip", Warmup: 5_000, Measure: 20_000})
	if r.Committed < 20_000 {
		t.Fatalf("committed %d", r.Committed)
	}
	st := svc.Stats()
	if st.TraceFallbacks != 1 || st.TraceReplays != 0 || st.TracesRecorded != 0 {
		t.Errorf("fallbacks=%d replays=%d recorded=%d, want 1/0/0",
			st.TraceFallbacks, st.TraceReplays, st.TracesRecorded)
	}
}

// TestTraceDirPersistsAcrossServices records through one service and
// checks a second service replays from the spilled artifact without
// re-recording.
func TestTraceDirPersistsAcrossServices(t *testing.T) {
	dir := t.TempDir()
	req := Request{Config: mustConfig(t, "EOLE_4_64"), Workload: "crafty", Warmup: 1_000, Measure: 4_000}

	a := newTraceService(t, Options{Parallelism: 2, TraceDir: dir})
	want := submitWait(t, a, req)
	if st := a.Stats(); st.TracesRecorded != 1 {
		t.Fatalf("first service recorded %d traces", st.TracesRecorded)
	}
	if _, err := os.Stat(traceArtifactPath(t, dir, "crafty")); err != nil {
		t.Fatalf("spill artifact missing: %v", err)
	}

	b := newTraceService(t, Options{Parallelism: 2, TraceDir: dir})
	got := submitWait(t, b, req)
	st := b.Stats()
	if st.TracesRecorded != 0 || st.TraceDiskLoads != 1 || st.TraceReplays != 1 {
		t.Errorf("second service recorded=%d diskLoads=%d replays=%d, want 0/1/1",
			st.TracesRecorded, st.TraceDiskLoads, st.TraceReplays)
	}
	bw, _ := json.Marshal(want)
	bg, _ := json.Marshal(got)
	if !bytes.Equal(bw, bg) {
		t.Error("disk-replayed report differs")
	}
}

// TestArtifactDirPersistsBothKinds runs one service rooted at a
// single -artifact-dir and checks both spill kinds land under it —
// and that a second service over the same root serves the result from
// disk without simulating at all.
func TestArtifactDirPersistsBothKinds(t *testing.T) {
	dir := t.TempDir()
	req := Request{Config: mustConfig(t, "EOLE_6_64"), Workload: "gzip", Warmup: 1_000, Measure: 4_000}

	a := newTraceService(t, Options{Parallelism: 2, ArtifactDir: dir})
	want := submitWait(t, a, req)
	if _, err := os.Stat(traceArtifactPath(t, filepath.Join(dir, "trace"), "gzip")); err != nil {
		t.Fatalf("trace artifact missing: %v", err)
	}
	key := KeyOf(req).String()
	if _, err := os.Stat(filepath.Join(dir, "result", key[:2], key+".art")); err != nil {
		t.Fatalf("result artifact missing: %v", err)
	}

	b := newTraceService(t, Options{Parallelism: 2, ArtifactDir: dir})
	got := submitWait(t, b, req)
	st := b.Stats()
	if st.SimsRun != 0 || st.DiskHits != 1 {
		t.Errorf("second service simsRun=%d diskHits=%d, want 0/1 (result served from fabric)",
			st.SimsRun, st.DiskHits)
	}
	bw, _ := json.Marshal(want)
	bg, _ := json.Marshal(got)
	if !bytes.Equal(bw, bg) {
		t.Error("fabric-served report differs")
	}
}

// TestCorruptTraceFileFallsBack corrupts the spilled trace at the
// payload level — the fabric footer still validates, only the trace
// decoder can tell — and checks the next service counts a load error,
// re-records, and still returns correct results.
func TestCorruptTraceFileFallsBack(t *testing.T) {
	dir := t.TempDir()
	req := Request{Config: mustConfig(t, "Baseline_6_64"), Workload: "gzip", Warmup: 1_000, Measure: 4_000}

	a := newTraceService(t, Options{Parallelism: 1, TraceDir: dir})
	want := submitWait(t, a, req)

	path := traceArtifactPath(t, dir, "gzip")
	corruptPayload(t, path)

	c := newTraceService(t, Options{Parallelism: 1, TraceDir: dir})
	got := submitWait(t, c, req)
	st := c.Stats()
	if st.TraceLoadErrors != 1 {
		t.Errorf("load errors %d, want 1", st.TraceLoadErrors)
	}
	if st.TracesRecorded != 1 || st.TraceReplays != 1 {
		t.Errorf("recorded=%d replays=%d, want 1/1 (re-record after corrupt load)",
			st.TracesRecorded, st.TraceReplays)
	}
	bw, _ := json.Marshal(want)
	bg, _ := json.Marshal(got)
	if !bytes.Equal(bw, bg) {
		t.Error("report differs after corrupt-trace recovery")
	}
	// The re-recording must have replaced the corrupt artifact: a
	// fresh service replays from it without recording.
	d := newTraceService(t, Options{Parallelism: 1, TraceDir: dir})
	submitWait(t, d, req)
	if st := d.Stats(); st.TraceDiskLoads != 1 || st.TracesRecorded != 0 || st.TraceLoadErrors != 0 {
		t.Errorf("after repair: diskLoads=%d recorded=%d loadErrors=%d, want 1/0/0", st.TraceDiskLoads, st.TracesRecorded, st.TraceLoadErrors)
	}
}

// TestQuarantinedTraceReRecorded corrupts the spilled trace at the
// fabric level — the footer CRC no longer matches — and checks the
// fabric quarantines the file (a plain miss, not a trace load error)
// and the service re-records.
func TestQuarantinedTraceReRecorded(t *testing.T) {
	dir := t.TempDir()
	req := Request{Config: mustConfig(t, "Baseline_6_64"), Workload: "gzip", Warmup: 1_000, Measure: 4_000}

	a := newTraceService(t, Options{Parallelism: 1, TraceDir: dir})
	want := submitWait(t, a, req)

	path := traceArtifactPath(t, dir, "gzip")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF // footer CRC now fails: fabric-level corruption
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c := newTraceService(t, Options{Parallelism: 1, TraceDir: dir})
	got := submitWait(t, c, req)
	st := c.Stats()
	if st.TraceLoadErrors != 0 {
		t.Errorf("load errors %d, want 0 (fabric-level corruption is a plain miss)", st.TraceLoadErrors)
	}
	if st.TracesRecorded != 1 || st.TraceReplays != 1 {
		t.Errorf("recorded=%d replays=%d, want 1/1", st.TracesRecorded, st.TraceReplays)
	}
	bw, _ := json.Marshal(want)
	bg, _ := json.Marshal(got)
	if !bytes.Equal(bw, bg) {
		t.Error("report differs after quarantine recovery")
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*.corrupt"))
	if len(quarantined) == 0 {
		t.Error("corrupt artifact was not quarantined")
	}
}

// TestVersionMismatchedTraceFallsBack writes a trace with a bumped
// format version and checks the service treats it as a miss.
func TestVersionMismatchedTraceFallsBack(t *testing.T) {
	dir := t.TempDir()
	w, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Record(w, 64_000+uint64(trace.ReplaySlack))
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4]++ // version uvarint sits after the 4-byte magic
	// Fix the checksum so ONLY the version differs.
	fixCRC(raw)
	// Store it under the CURRENT version's content address, with a
	// valid fabric footer — the scenario where a buggy or hostile
	// writer planted a payload the decoder rejects.
	store, err := artifact.Open(artifact.Options{KindDirs: map[artifact.Kind]string{artifact.KindTrace: dir}})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(artifact.KindTrace, TraceKeyOf(w), raw); err != nil {
		t.Fatal(err)
	}

	svc := newTraceService(t, Options{Parallelism: 1, TraceDir: dir})
	r := submitWait(t, svc, Request{Config: mustConfig(t, "Baseline_6_64"), Workload: "gzip", Warmup: 1_000, Measure: 4_000})
	if r.Committed < 4_000 {
		t.Fatalf("committed %d", r.Committed)
	}
	st := svc.Stats()
	if st.TraceLoadErrors != 1 || st.TracesRecorded != 1 {
		t.Errorf("loadErrors=%d recorded=%d, want 1/1 (version mismatch is a miss)",
			st.TraceLoadErrors, st.TracesRecorded)
	}
}

// TestRoundUpOps pins the trace length bucketing.
func TestRoundUpOps(t *testing.T) {
	cases := []struct{ need, want uint64 }{
		{1, 1 << 16},
		{1 << 16, 1 << 16},
		{1<<16 + 1, 1 << 17},
		{200_000, 1 << 18},
		{1 << 20, 1 << 20},
	}
	for _, c := range cases {
		if got := roundUpOps(c.need); got != c.want {
			t.Errorf("roundUpOps(%d) = %d, want %d", c.need, got, c.want)
		}
	}
}
