package simsvc

import (
	"context"
	"encoding/json"
	"sync"

	"eole"
	"eole/internal/artifact"
)

// resultCache is the content-addressed report store: a bounded typed
// in-memory map always, plus an optional artifact-fabric store that
// persists results across processes (and, with a peer configured,
// across the cluster). Reports are immutable once published, so they
// are shared by pointer without copying.
//
// The memory side is capped at max entries with FIFO eviction —
// results are content-addressed and re-creatable (from the fabric or
// by re-simulating), so eviction never loses correctness, only
// warmth. This keeps a long-running server bounded even when clients
// submit unboundedly many distinct (warmup, measure) tuples.
type resultCache struct {
	mu    sync.RWMutex
	mem   map[Key]*eole.Report
	order []Key // insertion order, for FIFO eviction
	max   int
	store *artifact.Store // nil = memory only
}

func newResultCache(store *artifact.Store, max int) *resultCache {
	return &resultCache{mem: make(map[Key]*eole.Report), max: max, store: store}
}

// getMem returns the in-memory report for key, if any. It takes only
// the cache's own lock and never touches the fabric, so it is safe to
// call under the service mutex.
func (c *resultCache) getMem(key Key) *eole.Report {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.mem[key]
}

// getStore loads key from the artifact fabric (its memory tier, the
// disk, or a peer) and promotes it to the typed map. It can perform
// file and network I/O — callers must not hold the service mutex. A
// fabric payload that fails to decode is a miss: the only way JSON
// that passed the fabric's CRC can be undecodable is a schema change,
// and schemaVersion in the key already isolates those.
func (c *resultCache) getStore(ctx context.Context, key Key) *eole.Report {
	if c.store == nil {
		return nil
	}
	b, err := c.store.Get(ctx, artifact.KindResult, key.String())
	if err != nil {
		return nil
	}
	var rep eole.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil
	}
	c.putMem(key, &rep)
	return &rep
}

// putMem inserts into the bounded in-memory map, evicting the oldest
// entry when full.
func (c *resultCache) putMem(key Key, r *eole.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.mem[key]; !exists {
		c.order = append(c.order, key)
	}
	c.mem[key] = r
	for c.max > 0 && len(c.mem) > c.max {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.mem, victim)
	}
}

// spill writes a report to the artifact fabric and shares it with the
// peer when one is configured, so a fresh result warms the whole
// fleet. Best-effort: a full or read-only disk degrades the cache to
// memory-only rather than failing the simulation that produced the
// report. Callers run it after completing waiters — I/O must not
// delay them.
func (c *resultCache) spill(ctx context.Context, key Key, r *eole.Report) {
	if c.store == nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	_ = c.store.Put(artifact.KindResult, key.String(), b)
	c.store.Share(ctx, artifact.KindResult, key.String(), b)
}

// len returns the number of in-memory entries.
func (c *resultCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.mem)
}
