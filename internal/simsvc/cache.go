package simsvc

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"time"

	"eole"
)

// resultCache is the content-addressed report store: a bounded
// in-memory map always, plus an optional JSON spill directory that
// persists results across processes. Reports are immutable once
// published, so they are shared by pointer without copying.
//
// The memory side is capped at max entries with FIFO eviction —
// results are content-addressed and re-creatable (from disk or by
// re-simulating), so eviction never loses correctness, only warmth.
// This keeps a long-running server bounded even when clients submit
// unboundedly many distinct (warmup, measure) tuples.
type resultCache struct {
	mu    sync.RWMutex
	mem   map[Key]*eole.Report
	order []Key // insertion order, for FIFO eviction
	max   int
	dir   string // "" = memory only
}

func newResultCache(dir string, max int) *resultCache {
	return &resultCache{mem: make(map[Key]*eole.Report), max: max, dir: dir}
}

// ensureDir creates the spill directory if it does not exist and
// sweeps tmp files orphaned by interrupted spills in earlier runs. The
// age gate keeps the sweep from deleting a temp file another live
// process is about to rename — spills take milliseconds, not hours.
func ensureDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	orphans, _ := filepath.Glob(filepath.Join(dir, "tmp-*.json"))
	for _, f := range orphans {
		if fi, err := os.Stat(f); err == nil && time.Since(fi.ModTime()) > time.Hour {
			os.Remove(f)
		}
	}
	return nil
}

// getMem returns the in-memory report for key, if any. It takes only
// the cache's own lock and never touches the disk, so it is safe to
// call under the service mutex.
func (c *resultCache) getMem(key Key) *eole.Report {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.mem[key]
}

// getDisk loads key from the spill directory and promotes it to
// memory. It performs file I/O — callers must not hold the service
// mutex.
func (c *resultCache) getDisk(key Key) *eole.Report {
	if c.dir == "" {
		return nil
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil
	}
	var rep eole.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		// A corrupt spill file is treated as a miss; the slot is
		// rewritten after the re-simulation.
		return nil
	}
	c.putMem(key, &rep)
	return &rep
}

// putMem inserts into the bounded in-memory map, evicting the oldest
// entry when full.
func (c *resultCache) putMem(key Key, r *eole.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.mem[key]; !exists {
		c.order = append(c.order, key)
	}
	c.mem[key] = r
	for c.max > 0 && len(c.mem) > c.max {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.mem, victim)
	}
}

// spillDisk writes a report to the spill directory. Best-effort: a
// full or read-only directory degrades the cache to memory-only rather
// than failing the simulation that produced the report. Callers run it
// after completing waiters — file I/O must not delay them.
func (c *resultCache) spillDisk(key Key, r *eole.Report) {
	if c.dir == "" {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	// Write-then-rename keeps concurrent readers from observing a
	// partial file.
	tmp, err := os.CreateTemp(c.dir, "tmp-*.json")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(key)); err != nil {
		os.Remove(name)
	}
}

// len returns the number of in-memory entries.
func (c *resultCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.mem)
}

func (c *resultCache) path(key Key) string {
	return filepath.Join(c.dir, key.String()+".json")
}
