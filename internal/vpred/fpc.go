package vpred

// FPCVector is the vector of inverse forward-transition probabilities
// for a Forward Probabilistic Counter. Element i is the denominator of
// the probability of moving from confidence level i to i+1 on a
// correct prediction (1 = always). The paper uses
// v = {1, 1/32, 1/32, 1/32, 1/32, 1/64, 1/64} for 3-bit counters with
// VTAGE-2DStride (§4.2).
type FPCVector []uint32

// DefaultFPCVector returns the paper's probability vector.
func DefaultFPCVector() FPCVector {
	return FPCVector{1, 32, 32, 32, 32, 64, 64}
}

// Saturation is the confidence ceiling of a 3-bit FPC counter; a
// prediction is used only when its counter has reached this value.
const Saturation = 7

// FPC draws probabilistic forward transitions from a deterministic
// xorshift PRNG, so simulations are reproducible.
type FPC struct {
	vec  FPCVector
	rand uint64
}

// NewFPC builds an FPC transition engine with the given vector.
func NewFPC(vec FPCVector) *FPC {
	if len(vec) != Saturation {
		panic("vpred: FPC vector must have 7 elements (3-bit counter)")
	}
	return &FPC{vec: vec, rand: 0x9E3779B97F4A7C15}
}

func (f *FPC) next() uint64 {
	f.rand ^= f.rand << 13
	f.rand ^= f.rand >> 7
	f.rand ^= f.rand << 17
	return f.rand
}

// Bump applies one training event to the counter: probabilistic
// increment on a correct prediction, reset to zero on a misprediction.
// The reset-on-wrong policy is what makes saturated counters imply
// very high accuracy: a counter can only be saturated after a long
// unbroken run of correct predictions.
func (f *FPC) Bump(conf *uint8, correct bool) {
	if !correct {
		*conf = 0
		return
	}
	if *conf >= Saturation {
		return
	}
	inv := f.vec[*conf]
	if inv <= 1 || f.next()%uint64(inv) == 0 {
		*conf++
	}
}

// Confident reports whether the counter authorizes using a prediction.
func Confident(conf uint8) bool { return conf >= Saturation }
