package vpred

import "eole/internal/bpred"

// VTAGEConfig sizes the VTAGE predictor. Defaults reproduce Table 2:
// an 8192-entry tagless base plus 6 × 1024-entry tagged components
// with 12+rank tags, indexed with geometric global branch history
// lengths.
type VTAGEConfig struct {
	BaseBits    int // log2 base entries
	NumTagged   int
	TaggedBits  int // log2 entries per tagged component
	TagWidth    int // base tag width; component r uses TagWidth+r bits
	MinHist     int
	MaxHist     int
	UResetEvery uint64
	FPC         FPCVector
}

// DefaultVTAGEConfig returns the Table 2 layout (64.1KB in the paper's
// accounting).
func DefaultVTAGEConfig() VTAGEConfig {
	return VTAGEConfig{
		BaseBits:    13,
		NumTagged:   6,
		TaggedBits:  10,
		TagWidth:    12,
		MinHist:     2,
		MaxHist:     64,
		UResetEvery: 1 << 19,
		FPC:         DefaultFPCVector(),
	}
}

type vtageBaseEntry struct {
	value uint64
	conf  uint8
}

type vtageEntry struct {
	tag   uint32
	value uint64
	conf  uint8
	u     uint8 // 1-bit useful
}

// VTAGE is the context-based value predictor of Perais & Seznec
// (HPCA 2014). Like the ITTAGE indirect branch predictor it selects
// predictions with the global branch history, so — unlike stride
// predictors — it does not need the previous value of the instruction
// to predict the current one and needs no in-flight speculative state.
// vtageFolds keeps a tagged component's three folded-history registers
// adjacent: each lookup and history push touches all three together.
type vtageFolds struct {
	idx bpred.FoldedHistory
	tag bpred.FoldedHistory
	tg2 bpred.FoldedHistory
}

type VTAGE struct {
	cfg  VTAGEConfig
	base []vtageBaseEntry
	comp [][]vtageEntry
	fpc  *FPC

	hist    *bpred.GlobalHistory
	folds   []vtageFolds
	lens    []int
	tagMask []uint32 // per-component "12 + rank" tag masks (Table 2)

	trains uint64
}

// NewVTAGE builds a VTAGE predictor from cfg.
func NewVTAGE(cfg VTAGEConfig) *VTAGE {
	v := &VTAGE{
		cfg:  cfg,
		base: make([]vtageBaseEntry, 1<<cfg.BaseBits),
		fpc:  NewFPC(cfg.FPC),
		hist: bpred.NewGlobalHistory(cfg.MaxHist + 16),
		lens: bpred.GeometricLengths(cfg.MinHist, cfg.MaxHist, cfg.NumTagged),
	}
	v.folds = make([]vtageFolds, cfg.NumTagged)
	v.tagMask = make([]uint32, cfg.NumTagged)
	for i := 0; i < cfg.NumTagged; i++ {
		v.comp = append(v.comp, make([]vtageEntry, 1<<cfg.TaggedBits))
		v.folds[i] = vtageFolds{
			idx: *bpred.NewFoldedHistory(v.lens[i], cfg.TaggedBits),
			tag: *bpred.NewFoldedHistory(v.lens[i], cfg.TagWidth),
			tg2: *bpred.NewFoldedHistory(v.lens[i], cfg.TagWidth-1),
		}
		width := cfg.TagWidth + i + 1 // "12 + rank" per Table 2
		if width > 30 {
			width = 30
		}
		v.tagMask[i] = uint32(1<<width) - 1
	}
	return v
}

// Name implements Predictor.
func (v *VTAGE) Name() string { return "VTAGE" }

// StorageBits implements Predictor, following Table 2's accounting
// (base entries carry value+conf; tagged entries add 12+rank tags and
// a useful bit).
func (v *VTAGE) StorageBits() int {
	bits := len(v.base) * (64 + 3)
	for r := range v.comp {
		bits += len(v.comp[r]) * (64 + 3 + 1 + v.cfg.TagWidth + (r + 1))
	}
	return bits
}

// PushBranch implements Predictor: VTAGE consumes the global
// conditional-branch direction history.
func (v *VTAGE) PushBranch(taken bool) {
	v.hist.Push(taken)
	in := uint32(v.hist.Bit(0))
	for i := range v.folds {
		f := &v.folds[i]
		out := uint32(v.hist.Bit(v.lens[i])) // shared window length
		f.idx.UpdateBits(in, out)
		f.tag.UpdateBits(in, out)
		f.tg2.UpdateBits(in, out)
	}
}

func (v *VTAGE) index(pc uint64, comp int) uint32 {
	mask := uint32(1<<v.cfg.TaggedBits) - 1
	h := uint32(pc>>2) ^ uint32(pc>>(2+uint(v.cfg.TaggedBits))) ^ v.folds[comp].idx.Value() ^ uint32(comp*0x1F)
	return h & mask
}

func (v *VTAGE) tag(pc uint64, comp int) uint32 {
	f := &v.folds[comp]
	return (uint32(pc>>2) ^ f.tag.Value() ^ (f.tg2.Value() << 1) ^ uint32(pc>>17)) & v.tagMask[comp]
}

// Lookup implements Predictor.
func (v *VTAGE) Lookup(pc uint64) Prediction {
	var p Prediction
	v.lookupInto(pc, &p)
	return p
}

// lookupInto is Lookup writing into caller-owned storage; the hybrid
// looks up both halves per µ-op and the Prediction struct (provider
// metadata included) is large enough that the by-value returns showed
// up as pure memmove time.
func (v *VTAGE) lookupInto(pc uint64, p *Prediction) {
	*p = Prediction{meta: predMeta{comp: -1}}
	// Same hashes as index()/tag(), with the pc-only terms hoisted out
	// of the per-component loop.
	idxMask := uint32(1<<v.cfg.TaggedBits) - 1
	pcIdx := uint32(pc>>2) ^ uint32(pc>>(2+uint(v.cfg.TaggedBits)))
	pcTag := uint32(pc>>2) ^ uint32(pc>>17)
	for i := 0; i < v.cfg.NumTagged; i++ {
		f := &v.folds[i]
		p.meta.indices[i] = (pcIdx ^ f.idx.Value() ^ uint32(i*0x1F)) & idxMask
		p.meta.tags[i] = (pcTag ^ f.tag.Value() ^ (f.tg2.Value() << 1)) & v.tagMask[i]
	}
	for i := v.cfg.NumTagged - 1; i >= 0; i-- {
		e := &v.comp[i][p.meta.indices[i]]
		if e.tag == p.meta.tags[i] {
			p.meta.comp = i
			p.meta.index = p.meta.indices[i]
			p.Hit = true
			p.Value = e.value
			p.Use = Confident(e.conf)
			return
		}
	}
	// Base component: tagless last-value table.
	bIx := tableIndex(pc, v.cfg.BaseBits)
	p.meta.index = bIx
	e := &v.base[bIx]
	p.Hit = true
	p.Value = e.value
	p.Use = Confident(e.conf)
}

// Train implements Predictor.
func (v *VTAGE) Train(pc uint64, p Prediction, actual uint64) {
	v.trainP(pc, &p, actual)
}

// trainP is Train without the by-value Prediction argument copy.
func (v *VTAGE) trainP(pc uint64, p *Prediction, actual uint64) {
	v.trains++
	if v.cfg.UResetEvery > 0 && v.trains%v.cfg.UResetEvery == 0 {
		v.clearUseful()
	}

	correct := p.Value == actual
	if p.meta.comp >= 0 {
		e := &v.comp[p.meta.comp][p.meta.index]
		if correct {
			v.fpc.Bump(&e.conf, true)
			e.u = 1
		} else {
			if e.conf == 0 {
				// Unconfident and wrong: replace the value in place.
				e.value = actual
				e.u = 0
			}
			e.conf = 0
		}
	} else {
		e := &v.base[p.meta.index]
		if correct {
			v.fpc.Bump(&e.conf, true)
		} else {
			if e.conf == 0 {
				e.value = actual
			}
			e.conf = 0
		}
	}

	// Allocate a longer-history entry on a misprediction, as in
	// (I)TAGE: claim one not-useful victim, otherwise decay.
	if !correct {
		v.allocate(p, actual)
	}
}

func (v *VTAGE) allocate(p *Prediction, actual uint64) {
	start := p.meta.comp + 1
	for i := start; i < v.cfg.NumTagged; i++ {
		e := &v.comp[i][p.meta.indices[i]]
		if e.u == 0 {
			*e = vtageEntry{tag: p.meta.tags[i], value: actual}
			return
		}
	}
	for i := start; i < v.cfg.NumTagged; i++ {
		v.comp[i][p.meta.indices[i]].u = 0
	}
}

func (v *VTAGE) clearUseful() {
	for _, c := range v.comp {
		for i := range c {
			c[i].u = 0
		}
	}
}

// HistoryLengths returns the geometric branch-history lengths in use.
func (v *VTAGE) HistoryLengths() []int {
	out := make([]int, len(v.lens))
	copy(out, v.lens)
	return out
}
