package vpred

// Hybrid is the VTAGE-2DStride hybrid the paper evaluates everywhere
// (Table 2): VTAGE covers context-predictable values, the 2-delta
// stride predictor covers computational sequences VTAGE cannot learn
// (long arithmetic progressions). Arbitration: when a tagged VTAGE
// component provides a confident prediction it wins (context evidence
// is specific); otherwise a confident stride prediction is used; a
// confident VTAGE *base* prediction is the last resort. Both halves
// train on every eligible µ-op.
//
// Lookup/Train calls must be strictly paired per µ-op (the pipeline
// and Meter guarantee this); the hybrid stashes its children's
// predictions between the two calls.
type Hybrid struct {
	vtage  *VTAGE
	stride *TwoDeltaStride

	pendingV Prediction
	pendingS Prediction

	// ChoseVTAGE / ChoseStride count arbitration outcomes among used
	// predictions, for reporting.
	ChoseVTAGE  uint64
	ChoseStride uint64
}

// NewHybrid builds the Table 2 hybrid: a default VTAGE plus an
// 8192-entry 2-delta stride predictor sharing the FPC vector.
func NewHybrid() *Hybrid {
	return &Hybrid{
		vtage:  NewVTAGE(DefaultVTAGEConfig()),
		stride: NewTwoDeltaStride(13, DefaultFPCVector()),
	}
}

// NewHybridFrom assembles a hybrid from explicit components (used by
// ablation benches with alternative sizings).
func NewHybridFrom(v *VTAGE, s *TwoDeltaStride) *Hybrid {
	return &Hybrid{vtage: v, stride: s}
}

// Name implements Predictor.
func (h *Hybrid) Name() string { return "VTAGE-2DStride" }

// StorageBits implements Predictor.
func (h *Hybrid) StorageBits() int { return h.vtage.StorageBits() + h.stride.StorageBits() }

// PushBranch implements Predictor.
func (h *Hybrid) PushBranch(taken bool) { h.vtage.PushBranch(taken) }

// Lookup implements Predictor. Both halves write their predictions
// straight into the pending slots — the hybrid runs on every
// VP-eligible µ-op, and round-tripping the wide Prediction struct
// through by-value returns cost measurable memmove time.
func (h *Hybrid) Lookup(pc uint64) Prediction {
	h.vtage.lookupInto(pc, &h.pendingV)
	h.stride.lookupInto(pc, &h.pendingS)
	pv, ps := &h.pendingV, &h.pendingS

	out := Prediction{Hit: pv.Hit || ps.Hit}
	switch {
	case pv.Use && pv.meta.comp >= 0:
		out.Value, out.Use = pv.Value, true
		h.ChoseVTAGE++
	case ps.Use:
		out.Value, out.Use = ps.Value, true
		h.ChoseStride++
	case pv.Use:
		out.Value, out.Use = pv.Value, true
		h.ChoseVTAGE++
	case ps.Hit:
		out.Value = ps.Value
	default:
		out.Value = pv.Value
	}
	return out
}

// Train implements Predictor.
func (h *Hybrid) Train(pc uint64, _ Prediction, actual uint64) {
	h.vtage.trainP(pc, &h.pendingV, actual)
	h.stride.trainP(pc, &h.pendingS, actual)
}

// VTAGEPart exposes the context half (for reporting).
func (h *Hybrid) VTAGEPart() *VTAGE { return h.vtage }

// StridePart exposes the computational half (for reporting).
func (h *Hybrid) StridePart() *TwoDeltaStride { return h.stride }

// NewByName constructs any predictor in the family by its report name.
// Recognized: "LastValue", "Stride", "2D-Stride", "FCM", "VTAGE",
// "VTAGE-2DStride". Used by the ablation benches and cmd/experiments.
func NewByName(name string) (Predictor, bool) {
	switch name {
	case "LastValue":
		return NewLastValue(13, DefaultFPCVector()), true
	case "Stride":
		return NewStride(13, DefaultFPCVector()), true
	case "2D-Stride":
		return NewTwoDeltaStride(13, DefaultFPCVector()), true
	case "FCM":
		return NewFCM(4, 13, 14, DefaultFPCVector()), true
	case "VTAGE":
		return NewVTAGE(DefaultVTAGEConfig()), true
	case "D-VTAGE":
		return NewDVTAGE(DefaultVTAGEConfig(), 16), true
	case "VTAGE-2DStride":
		return NewHybrid(), true
	}
	return nil, false
}

// FamilyNames lists the constructible predictor names in report order.
func FamilyNames() []string {
	return []string{"LastValue", "Stride", "2D-Stride", "FCM", "VTAGE", "D-VTAGE", "VTAGE-2DStride"}
}
