package vpred

import "eole/internal/bpred"

// DVTAGE is a storage-effective variant of VTAGE in the direction the
// paper's §7 points ("future research includes the need to look for
// more storage-effective value prediction schemes"), anticipating the
// authors' later differential design: tagged components store small
// signed *differences* against the base component's last value instead
// of full 64-bit values. A tagged entry needs StrideBits instead of 64
// bits; predictions whose difference does not fit simply cannot be
// learned by the tagged components (the base still covers them).
//
// Unlike pure VTAGE, the base is a last-value table that trains on
// every outcome, and tagged components predict base.last + delta
// selected by the global branch history.
type DVTAGE struct {
	cfg        VTAGEConfig
	strideBits int
	base       []dvBaseEntry
	comp       [][]dvEntry
	fpc        *FPC

	hist *histState

	trains uint64
}

type dvBaseEntry struct {
	last uint64
	conf uint8
}

type dvEntry struct {
	tag   uint32
	delta int32 // sign-extended StrideBits-wide difference
	conf  uint8
	u     uint8
}

// histState bundles the global-branch-history index/tag plumbing
// (same construction as VTAGE's).
type histState struct {
	hist *bpred.GlobalHistory
	fIdx []*bpred.FoldedHistory
	fTag []*bpred.FoldedHistory
	fTg2 []*bpred.FoldedHistory
}

func newHistState(cfg VTAGEConfig) *histState {
	h := &histState{hist: bpred.NewGlobalHistory(cfg.MaxHist + 16)}
	lens := bpred.GeometricLengths(cfg.MinHist, cfg.MaxHist, cfg.NumTagged)
	for i := 0; i < cfg.NumTagged; i++ {
		h.fIdx = append(h.fIdx, bpred.NewFoldedHistory(lens[i], cfg.TaggedBits))
		h.fTag = append(h.fTag, bpred.NewFoldedHistory(lens[i], cfg.TagWidth))
		h.fTg2 = append(h.fTg2, bpred.NewFoldedHistory(lens[i], cfg.TagWidth-1))
	}
	return h
}

func (h *histState) push(taken bool) {
	h.hist.Push(taken)
	for i := range h.fIdx {
		h.fIdx[i].Update(h.hist)
		h.fTag[i].Update(h.hist)
		h.fTg2[i].Update(h.hist)
	}
}

func (h *histState) index(pc uint64, comp int, cfg VTAGEConfig) uint32 {
	mask := uint32(1<<cfg.TaggedBits) - 1
	v := uint32(pc>>2) ^ uint32(pc>>(2+uint(cfg.TaggedBits))) ^ h.fIdx[comp].Value() ^ uint32(comp*0x1F)
	return v & mask
}

func (h *histState) tag(pc uint64, comp int, cfg VTAGEConfig) uint32 {
	width := cfg.TagWidth + comp + 1
	if width > 30 {
		width = 30
	}
	mask := uint32(1<<width) - 1
	return (uint32(pc>>2) ^ h.fTag[comp].Value() ^ (h.fTg2[comp].Value() << 1) ^ uint32(pc>>17)) & mask
}

// NewDVTAGE builds a differential VTAGE with the given layout and
// per-delta budget of strideBits (≤ 32).
func NewDVTAGE(cfg VTAGEConfig, strideBits int) *DVTAGE {
	if strideBits < 4 {
		strideBits = 4
	}
	if strideBits > 32 {
		strideBits = 32
	}
	d := &DVTAGE{
		cfg:        cfg,
		strideBits: strideBits,
		base:       make([]dvBaseEntry, 1<<cfg.BaseBits),
		fpc:        NewFPC(cfg.FPC),
	}
	d.hist = newHistState(cfg)
	for i := 0; i < cfg.NumTagged; i++ {
		d.comp = append(d.comp, make([]dvEntry, 1<<cfg.TaggedBits))
	}
	return d
}

// Name implements Predictor.
func (d *DVTAGE) Name() string { return "D-VTAGE" }

// StorageBits implements Predictor: the point of the design — tagged
// entries carry StrideBits-wide deltas instead of 64-bit values.
func (d *DVTAGE) StorageBits() int {
	bits := len(d.base) * (64 + 3)
	for r := range d.comp {
		bits += len(d.comp[r]) * (d.strideBits + 3 + 1 + d.cfg.TagWidth + (r + 1))
	}
	return bits
}

// PushBranch implements Predictor.
func (d *DVTAGE) PushBranch(taken bool) { d.hist.push(taken) }

// Lookup implements Predictor.
func (d *DVTAGE) Lookup(pc uint64) Prediction {
	p := Prediction{meta: predMeta{comp: -1}}
	for i := 0; i < d.cfg.NumTagged; i++ {
		p.meta.indices[i] = d.hist.index(pc, i, d.cfg)
		p.meta.tags[i] = d.hist.tag(pc, i, d.cfg)
	}
	bIx := tableIndex(pc, d.cfg.BaseBits)
	base := &d.base[bIx]
	p.meta.last = base.last // snapshot for Train

	for i := d.cfg.NumTagged - 1; i >= 0; i-- {
		e := &d.comp[i][p.meta.indices[i]]
		if e.tag == p.meta.tags[i] {
			p.meta.comp = i
			p.meta.index = p.meta.indices[i]
			p.Hit = true
			p.Value = base.last + uint64(int64(e.delta))
			p.Use = Confident(e.conf)
			return p
		}
	}
	p.meta.index = bIx
	p.Hit = true
	p.Value = base.last
	p.Use = Confident(base.conf)
	return p
}

// deltaFits reports whether diff is representable in strideBits.
func (d *DVTAGE) deltaFits(diff int64) bool {
	limit := int64(1) << (d.strideBits - 1)
	return diff >= -limit && diff < limit
}

// Train implements Predictor.
func (d *DVTAGE) Train(pc uint64, p Prediction, actual uint64) {
	d.trains++
	if d.cfg.UResetEvery > 0 && d.trains%d.cfg.UResetEvery == 0 {
		for _, c := range d.comp {
			for i := range c {
				c[i].u = 0
			}
		}
	}

	correct := p.Value == actual
	bIx := tableIndex(pc, d.cfg.BaseBits)
	base := &d.base[bIx]

	if p.meta.comp >= 0 {
		e := &d.comp[p.meta.comp][p.meta.index]
		if correct {
			d.fpc.Bump(&e.conf, true)
			e.u = 1
		} else {
			if e.conf == 0 {
				// Re-learn the delta against the base snapshot the
				// prediction used.
				if diff := int64(actual - p.meta.last); d.deltaFits(diff) {
					e.delta = int32(diff)
				}
				e.u = 0
			}
			e.conf = 0
		}
	} else {
		if correct {
			d.fpc.Bump(&base.conf, true)
		} else {
			base.conf = 0
		}
	}

	if !correct {
		d.allocate(p, actual)
	}
	// The base is a plain last-value table: always tracks the outcome.
	base.last = actual
}

func (d *DVTAGE) allocate(p Prediction, actual uint64) {
	diff := int64(actual - p.meta.last)
	if !d.deltaFits(diff) {
		return // not representable: leave it to the base component
	}
	start := p.meta.comp + 1
	for i := start; i < d.cfg.NumTagged; i++ {
		e := &d.comp[i][p.meta.indices[i]]
		if e.u == 0 {
			*e = dvEntry{tag: p.meta.tags[i], delta: int32(diff)}
			return
		}
	}
	for i := start; i < d.cfg.NumTagged; i++ {
		d.comp[i][p.meta.indices[i]].u = 0
	}
}
