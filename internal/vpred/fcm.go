package vpred

// FCM is an order-k Finite Context Method predictor (Sazeides &
// Smith): a first-level table records, per static µ-op, a hash of the
// last k produced values; a second-level value table maps that hash to
// the value that followed it last time. Included as the classic
// context-based comparison point for VTAGE in the ablation benches
// (the paper's related-work discussion contrasts the two families).
type FCM struct {
	order   int
	vhtBits int
	vptBits int
	vht     []fcmHistEntry // level 1: per-PC value history hash
	vpt     []fcmValEntry  // level 2: context -> next value
	fpc     *FPC
}

// fcmMaxOrder bounds the per-entry value history window.
const fcmMaxOrder = 8

type fcmHistEntry struct {
	tag  uint32
	vals [fcmMaxOrder]uint64 // circular window of the last k values
	head uint8
}

type fcmValEntry struct {
	tag   uint32
	value uint64
	conf  uint8
}

// NewFCM builds an order-k FCM with 2^vhtBits history entries and
// 2^vptBits value entries. order is capped at 8.
func NewFCM(order, vhtBits, vptBits int, fpc FPCVector) *FCM {
	if order < 1 {
		order = 1
	}
	if order > fcmMaxOrder {
		order = fcmMaxOrder
	}
	return &FCM{
		order:   order,
		vhtBits: vhtBits,
		vptBits: vptBits,
		vht:     make([]fcmHistEntry, 1<<vhtBits),
		vpt:     make([]fcmValEntry, 1<<vptBits),
		fpc:     NewFPC(fpc),
	}
}

// Name implements Predictor.
func (f *FCM) Name() string { return "FCM" }

// StorageBits implements Predictor.
func (f *FCM) StorageBits() int {
	return len(f.vht)*(32+64) + len(f.vpt)*(32+64+3)
}

// PushBranch implements Predictor.
func (f *FCM) PushBranch(bool) {}

// contextHash folds exactly the last `order` values of the entry (plus
// the µ-op PC) into a level-2 hash. Only the true order-k window
// participates, so periodic value sequences map to a finite, repeating
// set of contexts — the property that lets FCM learn them.
func (f *FCM) contextHash(pc uint64, he *fcmHistEntry) uint64 {
	h := pc >> 2
	for i := 0; i < f.order; i++ {
		v := he.vals[(int(he.head)-i+fcmMaxOrder)%fcmMaxOrder]
		h = (h<<7 | h>>57) ^ v
		h *= 0x9E3779B97F4A7C15
	}
	return h
}

func (f *FCM) vptIndex(hash uint64) uint32 {
	return uint32(hash^(hash>>uint(f.vptBits))) & ((1 << f.vptBits) - 1)
}

func (f *FCM) push(he *fcmHistEntry, v uint64) {
	he.head = uint8((int(he.head) + 1) % fcmMaxOrder)
	he.vals[he.head] = v
}

// Lookup implements Predictor.
func (f *FCM) Lookup(pc uint64) Prediction {
	hIx := tableIndex(pc, f.vhtBits)
	he := &f.vht[hIx]
	p := Prediction{meta: predMeta{index: hIx, comp: -1}}
	if he.tag != fullTag(pc) {
		return p
	}
	hash := f.contextHash(pc, he)
	vIx := f.vptIndex(hash)
	p.meta.comp = int(vIx) // stash level-2 row
	p.meta.tag = uint32(hash>>40) & 0xFFFF
	ve := &f.vpt[vIx]
	if ve.tag == p.meta.tag {
		p.Hit = true
		p.Value = ve.value
		p.Use = Confident(ve.conf)
	}
	return p
}

// Train implements Predictor.
func (f *FCM) Train(pc uint64, p Prediction, actual uint64) {
	he := &f.vht[p.meta.index]
	if he.tag != fullTag(pc) {
		*he = fcmHistEntry{tag: fullTag(pc)}
		f.push(he, actual)
		return
	}
	if p.meta.comp >= 0 {
		ve := &f.vpt[p.meta.comp]
		if ve.tag == p.meta.tag {
			f.fpc.Bump(&ve.conf, ve.value == actual)
			if ve.value != actual && ve.conf == 0 {
				ve.value = actual
			}
		} else {
			*ve = fcmValEntry{tag: p.meta.tag, value: actual}
		}
	}
	f.push(he, actual)
}
