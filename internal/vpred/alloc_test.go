package vpred

import "testing"

// The hybrid value predictor is consulted and trained once per
// VP-eligible µ-op; Lookup/Train/PushBranch must stay allocation-free
// (all tables are sized at construction, and predictions flow through
// the pending slots rather than escaping).
func TestHybridZeroAlloc(t *testing.T) {
	h := NewHybrid()
	lcg := uint64(98765)
	step := func() {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		pc := 0x400000 + (lcg>>33)%8192*4
		p := h.Lookup(pc)
		_ = p
		h.Train(pc, p, lcg>>17)
		h.PushBranch(lcg>>62&1 == 0)
	}
	for i := 0; i < 50_000; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Fatalf("Lookup/Train/PushBranch allocated %.2f times per µ-op, want 0", avg)
	}
}
