// Package vpred implements the value prediction stack of the paper:
// the computational predictors (last value, stride, 2-delta stride),
// the context-based predictors (order-k FCM and VTAGE), the
// VTAGE-2DStride hybrid used throughout the evaluation (Table 2), and
// Forward Probabilistic Counters (FPC) for confidence estimation
// (§4.2).
//
// FPC is the enabling mechanism for the whole paper: it pushes value
// misprediction rates low enough that validation can move to commit
// time and recovery can be a full pipeline squash, which in turn is
// what allows Early and Late Execution to bypass the OoO engine.
//
// Predictors implement the Predictor interface (Lookup / Train /
// PushBranch); NewByName resolves the names used by
// config.Config.PredictorName, and the experiments harness sweeps
// them for the Figure 5/6 predictor comparison.
package vpred
