package vpred

import "testing"

func TestDVTAGEStorageSavings(t *testing.T) {
	// The point of the differential design: tagged entries shrink from
	// 64-bit values to 16-bit deltas.
	v := NewVTAGE(DefaultVTAGEConfig())
	d := NewDVTAGE(DefaultVTAGEConfig(), 16)
	if d.StorageBits() >= v.StorageBits() {
		t.Fatalf("D-VTAGE (%d bits) must be smaller than VTAGE (%d bits)",
			d.StorageBits(), v.StorageBits())
	}
	// Savings should be substantial (tagged arrays dominate VTAGE).
	if ratio := float64(d.StorageBits()) / float64(v.StorageBits()); ratio > 0.85 {
		t.Errorf("savings ratio %.2f, want < 0.85", ratio)
	}
}

func TestDVTAGELearnsConstant(t *testing.T) {
	d := NewDVTAGE(DefaultVTAGEConfig(), 16)
	used, correct := trainLoop(d, 0x400000, 3000, 1500, func(i int) uint64 { return 0xDEAD })
	if used < 1300 || correct != used {
		t.Fatalf("constant: used=%d correct=%d of 1500", used, correct)
	}
}

func TestDVTAGELearnsBranchCorrelatedDeltas(t *testing.T) {
	// Value = base ± small delta depending on the preceding branch:
	// the last-value base plus history-selected deltas covers this.
	d := NewDVTAGE(DefaultVTAGEConfig(), 16)
	pc := uint64(0x400100)
	rng := uint64(77)
	var used, correct int
	const n, tail = 30000, 6000
	base := uint64(1000)
	prev := base
	for i := 0; i < n; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		taken := rng&0x10000 != 0
		d.PushBranch(taken)
		// The next value is the previous value plus a branch-dependent
		// delta: exactly the D-VTAGE pattern (base tracks last value).
		val := prev + 3
		if taken {
			val = prev + 11
		}
		p := d.Lookup(pc)
		if i >= n-tail && p.Use {
			used++
			if p.Value == val {
				correct++
			}
		}
		d.Train(pc, p, val)
		prev = val
	}
	if used < tail/3 {
		t.Fatalf("D-VTAGE used only %d/%d on branch-correlated deltas", used, tail)
	}
	if correct != used {
		t.Fatalf("D-VTAGE used wrong predictions: %d/%d", correct, used)
	}
}

func TestDVTAGEHugeDeltasFallToBase(t *testing.T) {
	// Deltas outside the 16-bit budget cannot be learned by tagged
	// components; used-prediction accuracy must still hold (the FPC
	// gate keeps wrong entries unconfident).
	d := NewDVTAGE(DefaultVTAGEConfig(), 8)
	rng := uint64(5)
	var usedWrong int
	for i := 0; i < 20000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		d.PushBranch(rng&4 != 0)
		val := rng // huge random jumps
		p := d.Lookup(0x400200)
		if p.Use && p.Value != val {
			usedWrong++
		}
		d.Train(0x400200, p, val)
	}
	if usedWrong > 40 {
		t.Fatalf("D-VTAGE used %d wrong predictions on random values", usedWrong)
	}
}

func TestDVTAGEInFamily(t *testing.T) {
	p, ok := NewByName("D-VTAGE")
	if !ok || p.Name() != "D-VTAGE" {
		t.Fatal("D-VTAGE missing from the family registry")
	}
}
