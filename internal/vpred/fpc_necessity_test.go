package vpred

import (
	"testing"

	"eole/internal/prog"
	"eole/internal/workload"
)

// meterWith runs a 2-delta stride predictor with the given FPC vector
// over a workload's value stream.
func meterWith(t *testing.T, vec FPCVector, wl string, n uint64) *Meter {
	t.Helper()
	w, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	meter := &Meter{P: NewTwoDeltaStride(13, vec)}
	m := w.NewMachine()
	m.Run(n, func(u *prog.MicroOp) bool {
		if u.VPEligible() {
			meter.Observe(u.PC, u.Value)
		}
		return true
	})
	return meter
}

// TestFPCIsLoadBearing is the enabling claim of the whole paper
// lineage: with plain 3-bit counters (every forward transition taken),
// the squash-driving used-but-wrong rate is far higher than with the
// paper's probability vector; FPC buys the accuracy that makes
// commit-time validation + squash viable.
func TestFPCIsLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	plain := FPCVector{1, 1, 1, 1, 1, 1, 1}
	paper := DefaultFPCVector()
	for _, wl := range []string{"gzip", "bzip2", "vpr"} {
		mPlain := meterWith(t, plain, wl, 120_000)
		mPaper := meterWith(t, paper, wl, 120_000)
		if mPlain.UsedWrong == 0 {
			continue // nothing to compare on this stream
		}
		if mPaper.MispredictPerKilo() >= mPlain.MispredictPerKilo() {
			t.Errorf("%s: paper FPC wrong/kilo %.3f not below plain %.3f",
				wl, mPaper.MispredictPerKilo(), mPlain.MispredictPerKilo())
		}
		// And the improvement must be large (the paper's point).
		if mPlain.MispredictPerKilo() < 3*mPaper.MispredictPerKilo()+0.01 {
			t.Errorf("%s: FPC advantage too small: %.3f vs %.3f",
				wl, mPaper.MispredictPerKilo(), mPlain.MispredictPerKilo())
		}
	}
}

// TestFPCCoverageTradeoff verifies the flip side: plain counters give
// strictly more coverage (they saturate faster). FPC trades coverage
// for accuracy.
func TestFPCCoverageTradeoff(t *testing.T) {
	plain := FPCVector{1, 1, 1, 1, 1, 1, 1}
	paper := DefaultFPCVector()
	mPlain := meterWith(t, plain, "gzip", 80_000)
	mPaper := meterWith(t, paper, "gzip", 80_000)
	if mPlain.Coverage() <= mPaper.Coverage() {
		t.Errorf("plain counters must cover more: %.3f vs %.3f",
			mPlain.Coverage(), mPaper.Coverage())
	}
}
