package vpred

// LastValue is the classic LVP table (Lipasti et al.): predicts that a
// static µ-op produces the same value as its previous dynamic
// instance. Included as the simplest computational baseline and as the
// building block VTAGE uses for its base component.
type LastValue struct {
	bits    int
	entries []lvEntry
	fpc     *FPC
}

type lvEntry struct {
	tag  uint32
	last uint64
	conf uint8
}

// NewLastValue builds an LVP with 2^bits entries.
func NewLastValue(bits int, fpc FPCVector) *LastValue {
	return &LastValue{bits: bits, entries: make([]lvEntry, 1<<bits), fpc: NewFPC(fpc)}
}

// Name implements Predictor.
func (l *LastValue) Name() string { return "LastValue" }

// StorageBits implements Predictor: tag(32) + value(64) + conf(3).
func (l *LastValue) StorageBits() int { return len(l.entries) * (32 + 64 + 3) }

// PushBranch implements Predictor (no history used).
func (l *LastValue) PushBranch(bool) {}

// Lookup implements Predictor.
func (l *LastValue) Lookup(pc uint64) Prediction {
	ix := tableIndex(pc, l.bits)
	e := &l.entries[ix]
	p := Prediction{meta: predMeta{index: ix}}
	if e.tag == fullTag(pc) {
		p.Hit = true
		p.Value = e.last
		p.Use = Confident(e.conf)
	}
	return p
}

// Train implements Predictor.
func (l *LastValue) Train(pc uint64, p Prediction, actual uint64) {
	e := &l.entries[p.meta.index]
	if e.tag != fullTag(pc) {
		// Cold or aliased: claim the entry.
		*e = lvEntry{tag: fullTag(pc), last: actual}
		return
	}
	l.fpc.Bump(&e.conf, e.last == actual)
	e.last = actual
}

// Stride is the single-stride predictor (Mendelson & Gabbay): predicts
// last + stride where stride is the most recent observed delta.
type Stride struct {
	bits    int
	entries []strideEntry
	fpc     *FPC
}

type strideEntry struct {
	tag    uint32
	last   uint64
	stride int64
	conf   uint8
}

// NewStride builds a stride predictor with 2^bits entries.
func NewStride(bits int, fpc FPCVector) *Stride {
	return &Stride{bits: bits, entries: make([]strideEntry, 1<<bits), fpc: NewFPC(fpc)}
}

// Name implements Predictor.
func (s *Stride) Name() string { return "Stride" }

// StorageBits implements Predictor: tag(32)+last(64)+stride(64)+conf(3).
func (s *Stride) StorageBits() int { return len(s.entries) * (32 + 64 + 64 + 3) }

// PushBranch implements Predictor.
func (s *Stride) PushBranch(bool) {}

// Lookup implements Predictor.
func (s *Stride) Lookup(pc uint64) Prediction {
	ix := tableIndex(pc, s.bits)
	e := &s.entries[ix]
	p := Prediction{meta: predMeta{index: ix}}
	if e.tag == fullTag(pc) {
		p.Hit = true
		p.Value = e.last + uint64(e.stride)
		p.Use = Confident(e.conf)
	}
	return p
}

// Train implements Predictor.
func (s *Stride) Train(pc uint64, p Prediction, actual uint64) {
	e := &s.entries[p.meta.index]
	if e.tag != fullTag(pc) {
		*e = strideEntry{tag: fullTag(pc), last: actual}
		return
	}
	predicted := e.last + uint64(e.stride)
	s.fpc.Bump(&e.conf, predicted == actual)
	e.stride = int64(actual - e.last)
	e.last = actual
}

// TwoDeltaStride is the 2-Delta Stride predictor (Eickemeyer &
// Vassiliadis), the computational half of the paper's hybrid (Table
// 2: 8192 entries, full tags, 251.9KB). It keeps two strides: s1 is
// the most recent delta, s2 — the predicting stride — is updated only
// when the same delta is observed twice in a row, filtering the
// one-off breaks that defeat the plain stride predictor.
type TwoDeltaStride struct {
	bits    int
	entries []twoDeltaEntry
	fpc     *FPC
}

type twoDeltaEntry struct {
	tag  uint32
	last uint64
	s1   int64
	s2   int64
	conf uint8
}

// NewTwoDeltaStride builds the Table 2 predictor with 2^bits entries.
func NewTwoDeltaStride(bits int, fpc FPCVector) *TwoDeltaStride {
	return &TwoDeltaStride{bits: bits, entries: make([]twoDeltaEntry, 1<<bits), fpc: NewFPC(fpc)}
}

// Name implements Predictor.
func (s *TwoDeltaStride) Name() string { return "2D-Stride" }

// StorageBits implements Predictor. Matching Table 2's accounting
// (full 51-bit tag + last + two strides + confidence).
func (s *TwoDeltaStride) StorageBits() int { return len(s.entries) * (51 + 64 + 64 + 64 + 3) }

// PushBranch implements Predictor.
func (s *TwoDeltaStride) PushBranch(bool) {}

// Lookup implements Predictor.
func (s *TwoDeltaStride) Lookup(pc uint64) Prediction {
	var p Prediction
	s.lookupInto(pc, &p)
	return p
}

// lookupInto is Lookup writing into caller-owned storage (see
// VTAGE.lookupInto).
func (s *TwoDeltaStride) lookupInto(pc uint64, p *Prediction) {
	ix := tableIndex(pc, s.bits)
	e := &s.entries[ix]
	*p = Prediction{meta: predMeta{index: ix}}
	if e.tag == fullTag(pc) {
		p.Hit = true
		p.Value = e.last + uint64(e.s2)
		p.Use = Confident(e.conf)
	}
}

// Train implements Predictor.
func (s *TwoDeltaStride) Train(pc uint64, p Prediction, actual uint64) {
	s.trainP(pc, &p, actual)
}

// trainP is Train without the by-value Prediction argument copy.
func (s *TwoDeltaStride) trainP(pc uint64, p *Prediction, actual uint64) {
	e := &s.entries[p.meta.index]
	if e.tag != fullTag(pc) {
		*e = twoDeltaEntry{tag: fullTag(pc), last: actual}
		return
	}
	predicted := e.last + uint64(e.s2)
	s.fpc.Bump(&e.conf, predicted == actual)
	delta := int64(actual - e.last)
	if delta == e.s1 {
		e.s2 = delta
	}
	e.s1 = delta
	e.last = actual
}
