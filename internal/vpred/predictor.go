package vpred

// Prediction is the outcome of one value predictor lookup.
type Prediction struct {
	// Value is the predicted 64-bit result.
	Value uint64
	// Use reports whether the confidence counter is saturated: only
	// then does the pipeline write the prediction to the PRF and allow
	// consumers (and Early/Late Execution) to rely on it.
	Use bool
	// Hit reports whether any table entry matched at all (coverage
	// diagnostics; a prediction can hit without being confident).
	Hit bool

	// meta carries provider bookkeeping from Lookup to Train.
	meta predMeta
}

type predMeta struct {
	comp  int    // provider component (-1 = base/table)
	index uint32 // provider row
	tag   uint32
	// stride predictors stash their lookup snapshot here.
	last    uint64
	stride1 int64
	stride2 int64
	// vtage allocation info.
	indices [8]uint32
	tags    [8]uint32
}

// Predictor is a value predictor operating in program order: the
// pipeline calls Lookup at fetch and Train at commit with the
// architectural result. Trace-driven simulation collapses the two into
// immediate succession per µ-op; predictors that need in-flight state
// (stride families) therefore see idealized update timing, while VTAGE
// does not need the previous value at all — the property the paper
// highlights as its key implementability advantage.
type Predictor interface {
	// Lookup predicts the result of the VP-eligible µ-op at pc.
	Lookup(pc uint64) Prediction
	// Train observes the architectural result for the same µ-op; p
	// must be the Prediction Lookup returned for it.
	Train(pc uint64, p Prediction, actual uint64)
	// PushBranch feeds global branch history (VTAGE); others ignore it.
	PushBranch(taken bool)
	// Name identifies the predictor in reports.
	Name() string
	// StorageBits estimates the table budget in bits (Table 2).
	StorageBits() int
}

// Meter wraps a Predictor with coverage/accuracy accounting.
type Meter struct {
	P Predictor

	Eligible  uint64 // VP-eligible µ-ops seen
	Used      uint64 // predictions used (confident)
	UsedRight uint64 // used and value correct
	UsedWrong uint64 // used and value incorrect (would squash)
	HitRight  uint64 // table hit predicted correctly (coverage bound)
}

// Observe performs Lookup+Train for one µ-op and returns the
// prediction together with use/correctness accounting.
func (m *Meter) Observe(pc uint64, actual uint64) (Prediction, bool) {
	p := m.P.Lookup(pc)
	m.Eligible++
	correct := p.Value == actual
	if p.Hit && correct {
		m.HitRight++
	}
	if p.Use {
		m.Used++
		if correct {
			m.UsedRight++
		} else {
			m.UsedWrong++
		}
	}
	m.P.Train(pc, p, actual)
	return p, correct
}

// Coverage is the fraction of eligible µ-ops with a used prediction.
func (m *Meter) Coverage() float64 {
	if m.Eligible == 0 {
		return 0
	}
	return float64(m.Used) / float64(m.Eligible)
}

// Accuracy is the fraction of used predictions that were correct.
func (m *Meter) Accuracy() float64 {
	if m.Used == 0 {
		return 1
	}
	return float64(m.UsedRight) / float64(m.Used)
}

// MispredictPerKilo returns used-but-wrong predictions per 1000
// eligible µ-ops — the squash-rate driver.
func (m *Meter) MispredictPerKilo() float64 {
	if m.Eligible == 0 {
		return 0
	}
	return 1000 * float64(m.UsedWrong) / float64(m.Eligible)
}

// tableIndex hashes a µ-op PC into a 2^bits table. The paper indexes
// with the instruction PC shifted left by two XORed with the µ-op
// number inside the instruction; our IR has one µ-op per instruction,
// so the µ-op number is zero and we fold the upper PC bits instead.
func tableIndex(pc uint64, bits int) uint32 {
	h := (pc >> 2) ^ (pc >> (2 + uint(bits)))
	return uint32(h) & ((1 << bits) - 1)
}

// fullTag derives the "full tag" the 2D-stride predictor of Table 2
// stores (51 bits in the paper; we keep 32 which never aliases in our
// address space).
func fullTag(pc uint64) uint32 { return uint32(pc>>2) ^ uint32(pc>>34) }
