package vpred

import (
	"testing"
	"testing/quick"

	"eole/internal/prog"
	"eole/internal/workload"
)

func TestFPCVectorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short FPC vector")
		}
	}()
	NewFPC(FPCVector{1, 2})
}

func TestFPCResetOnWrong(t *testing.T) {
	f := NewFPC(DefaultFPCVector())
	var conf uint8
	for i := 0; i < 100000 && conf < Saturation; i++ {
		f.Bump(&conf, true)
	}
	if conf != Saturation {
		t.Fatal("counter never saturated under all-correct stream")
	}
	f.Bump(&conf, false)
	if conf != 0 {
		t.Fatalf("conf after wrong = %d, want 0", conf)
	}
}

func TestFPCSaturationIsSlow(t *testing.T) {
	// Expected transitions: 1 + 4*32 + 2*64 = 257. A counter must
	// essentially never saturate within 40 correct predictions: run
	// many independent trials and require a tiny saturation rate.
	f := NewFPC(DefaultFPCVector())
	sat := 0
	const trials = 2000
	for tr := 0; tr < trials; tr++ {
		var conf uint8
		for i := 0; i < 40; i++ {
			f.Bump(&conf, true)
		}
		if conf >= Saturation {
			sat++
		}
	}
	if rate := float64(sat) / trials; rate > 0.02 {
		t.Fatalf("saturation rate within 40 correct = %.3f, want <= 0.02", rate)
	}
}

func TestFPCFirstTransitionImmediate(t *testing.T) {
	f := NewFPC(DefaultFPCVector())
	var conf uint8
	f.Bump(&conf, true)
	if conf != 1 {
		t.Fatalf("first transition has probability 1, conf = %d", conf)
	}
}

// trainLoop runs n Lookup/Train pairs feeding values from gen and
// returns how many of the last tail predictions were used and correct.
func trainLoop(p Predictor, pc uint64, n, tail int, gen func(i int) uint64) (used, usedCorrect int) {
	for i := 0; i < n; i++ {
		v := gen(i)
		pred := p.Lookup(pc)
		if i >= n-tail && pred.Use {
			used++
			if pred.Value == v {
				usedCorrect++
			}
		}
		p.Train(pc, pred, v)
	}
	return used, usedCorrect
}

func TestLastValueLearnsConstant(t *testing.T) {
	p := NewLastValue(10, DefaultFPCVector())
	used, correct := trainLoop(p, 0x400000, 2000, 1000, func(i int) uint64 { return 42 })
	if used < 900 || correct != used {
		t.Fatalf("constant: used=%d correct=%d of 1000, want nearly all", used, correct)
	}
}

func TestLastValueRejectsChangingValues(t *testing.T) {
	p := NewLastValue(10, DefaultFPCVector())
	used, _ := trainLoop(p, 0x400000, 4000, 2000, func(i int) uint64 { return uint64(i) })
	if used != 0 {
		t.Fatalf("LVP used %d predictions on a pure stride stream, want 0", used)
	}
}

func TestStrideLearnsProgression(t *testing.T) {
	p := NewStride(10, DefaultFPCVector())
	used, correct := trainLoop(p, 0x400000, 2000, 1000, func(i int) uint64 { return uint64(i * 7) })
	if used < 900 || correct != used {
		t.Fatalf("stride-7: used=%d correct=%d of 1000", used, correct)
	}
}

func TestTwoDeltaAbsorbsOneOffBreak(t *testing.T) {
	// A progression with a single discontinuity: plain stride updates
	// its stride immediately (two mispredicts), 2-delta keeps s2 and
	// mispredicts once. Verify 2-delta recovers confidence faster.
	gen := func(i int) uint64 {
		if i < 1000 {
			return uint64(i * 4)
		}
		return uint64(1_000_000 + i*4) // same stride, one jump
	}
	p2 := NewTwoDeltaStride(10, DefaultFPCVector())
	used2, correct2 := trainLoop(p2, 0x400000, 2000, 900, gen)
	if used2 < 800 || correct2 != used2 {
		t.Fatalf("2-delta after break: used=%d correct=%d of 900", used2, correct2)
	}
}

func TestTwoDeltaIgnoresAlternatingNoise(t *testing.T) {
	// Deltas alternate +8, +8, +8, -100, ... every 4th: s2 stays at 8
	// only if the -100 delta never repeats twice; accuracy of *used*
	// predictions must stay perfect even though coverage drops.
	gen := func(i int) uint64 {
		base := uint64(i * 8)
		if i%4 == 3 {
			return base - 100
		}
		return base
	}
	p := NewTwoDeltaStride(10, DefaultFPCVector())
	used, correct := trainLoop(p, 0x400000, 4000, 2000, gen)
	if used != correct {
		t.Fatalf("2-delta used wrong predictions: used=%d correct=%d", used, correct)
	}
}

func TestFCMLearnsRepeatingSequence(t *testing.T) {
	seq := []uint64{11, 5, 29, 3}
	p := NewFCM(4, 10, 12, DefaultFPCVector())
	used, correct := trainLoop(p, 0x400000, 6000, 2000, func(i int) uint64 { return seq[i%len(seq)] })
	if used < 1800 || correct != used {
		t.Fatalf("FCM period-4: used=%d correct=%d of 2000", used, correct)
	}
}

func TestVTAGELearnsConstantViaBase(t *testing.T) {
	p := NewVTAGE(DefaultVTAGEConfig())
	used, correct := trainLoop(p, 0x400000, 2000, 1000, func(i int) uint64 { return 123456 })
	if used < 900 || correct != used {
		t.Fatalf("VTAGE constant: used=%d correct=%d of 1000", used, correct)
	}
}

func TestVTAGELearnsBranchCorrelatedValues(t *testing.T) {
	// Value depends on the direction of the preceding branch: a
	// context-based predictor learns this; stride predictors cannot.
	v := NewVTAGE(DefaultVTAGEConfig())
	s := NewTwoDeltaStride(10, DefaultFPCVector())
	pc := uint64(0x400100)
	rng := uint64(99)
	var vUsed, vCorrect, sUsed int
	const n, tail = 20000, 5000
	for i := 0; i < n; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		taken := rng&0x8000 != 0
		v.PushBranch(taken)
		s.PushBranch(taken)
		var val uint64 = 777
		if taken {
			val = 111
		}
		pv := v.Lookup(pc)
		ps := s.Lookup(pc)
		if i >= n-tail {
			if pv.Use {
				vUsed++
				if pv.Value == val {
					vCorrect++
				}
			}
			if ps.Use {
				sUsed++
			}
		}
		v.Train(pc, pv, val)
		s.Train(pc, ps, val)
	}
	if vUsed < tail/2 {
		t.Fatalf("VTAGE used only %d/%d on branch-correlated values", vUsed, tail)
	}
	if vCorrect != vUsed {
		t.Fatalf("VTAGE used wrong predictions: %d/%d", vCorrect, vUsed)
	}
	if sUsed > tail/20 {
		t.Fatalf("stride should not cover branch-correlated values, used %d", sUsed)
	}
}

func TestHybridCoversBothFamilies(t *testing.T) {
	h := NewHybrid()
	// Stream A at pcA: arithmetic progression (stride family).
	// Stream B at pcB: branch-correlated constants (context family).
	pcA, pcB := uint64(0x400000), uint64(0x400200)
	rng := uint64(7)
	const n, tail = 20000, 4000
	var aUsed, aCorrect, bUsed, bCorrect int
	for i := 0; i < n; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		taken := rng&0x4000 != 0
		h.PushBranch(taken)
		valA := uint64(i * 16)
		valB := uint64(500)
		if taken {
			valB = 900
		}
		pa := h.Lookup(pcA)
		if i >= n-tail && pa.Use {
			aUsed++
			if pa.Value == valA {
				aCorrect++
			}
		}
		h.Train(pcA, pa, valA)
		pb := h.Lookup(pcB)
		if i >= n-tail && pb.Use {
			bUsed++
			if pb.Value == valB {
				bCorrect++
			}
		}
		h.Train(pcB, pb, valB)
	}
	if aUsed < tail*8/10 || aCorrect != aUsed {
		t.Fatalf("hybrid stride stream: used=%d correct=%d of %d", aUsed, aCorrect, tail)
	}
	if bUsed < tail/2 || bCorrect != bUsed {
		t.Fatalf("hybrid context stream: used=%d correct=%d of %d", bUsed, bCorrect, tail)
	}
	if h.ChoseVTAGE == 0 || h.ChoseStride == 0 {
		t.Fatalf("arbitration never exercised both sides: vtage=%d stride=%d",
			h.ChoseVTAGE, h.ChoseStride)
	}
}

func TestStorageBudgetsMatchTable2Scale(t *testing.T) {
	// Table 2: 2D-Stride 251.9KB, VTAGE 64.1KB (+68.6KB base). Our
	// accounting stores full 64-bit values everywhere, so VTAGE lands
	// around 130KB; require the same order of magnitude and the same
	// ordering as the paper.
	s := NewTwoDeltaStride(13, DefaultFPCVector())
	v := NewVTAGE(DefaultVTAGEConfig())
	sKB := float64(s.StorageBits()) / 8192
	vKB := float64(v.StorageBits()) / 8192
	if sKB < 150 || sKB > 350 {
		t.Errorf("2D-stride storage = %.1fKB, want ~250KB", sKB)
	}
	if vKB < 60 || vKB > 180 {
		t.Errorf("VTAGE storage = %.1fKB, want ~130KB", vKB)
	}
	if vKB >= sKB {
		t.Errorf("VTAGE (%.1fKB) must be smaller than 2D-stride (%.1fKB)", vKB, sKB)
	}
}

func TestNewByNameCoversFamily(t *testing.T) {
	for _, name := range FamilyNames() {
		p, ok := NewByName(name)
		if !ok {
			t.Fatalf("NewByName(%q) failed", name)
		}
		if p.Name() != name {
			t.Fatalf("NewByName(%q).Name() = %q", name, p.Name())
		}
		if p.StorageBits() <= 0 {
			t.Fatalf("%s: no storage accounting", name)
		}
	}
	if _, ok := NewByName("bogus"); ok {
		t.Fatal("NewByName must reject unknown names")
	}
}

// runHybridOnWorkload measures hybrid coverage/accuracy on a workload.
func runHybridOnWorkload(t *testing.T, name string, n uint64) *Meter {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m := w.NewMachine()
	meter := &Meter{P: NewHybrid()}
	m.Run(n, func(u *prog.MicroOp) bool {
		if u.IsBranch() {
			if u.Op.Class().IsCondBranch() {
				meter.P.PushBranch(u.Taken)
			} else {
				meter.P.PushBranch(true)
			}
			return true
		}
		if u.VPEligible() {
			meter.Observe(u.PC, u.Value)
		}
		return true
	})
	return meter
}

func TestHybridAccuracyIsVeryHighEverywhere(t *testing.T) {
	// The paper's central enabling claim: with FPC, every predictor
	// reaches very high accuracy (≥ ~99.5%) on used predictions, at
	// some cost in coverage. Verify on a spread of workloads.
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"art", "applu", "vortex", "hmmer", "mcf", "gzip", "namd"} {
		meter := runHybridOnWorkload(t, name, 150_000)
		if acc := meter.Accuracy(); acc < 0.995 {
			t.Errorf("%s: used-prediction accuracy = %.4f, want >= 0.995", name, acc)
		}
	}
}

func TestHybridCoverageOrdering(t *testing.T) {
	// Stride-friendly FP codes must show much higher coverage than the
	// data-dependent DP of hmmer (the paper: hmmer "exhibits a
	// relatively low coverage").
	if testing.Short() {
		t.Skip("short mode")
	}
	covArt := runHybridOnWorkload(t, "art", 150_000).Coverage()
	covNamd := runHybridOnWorkload(t, "namd", 150_000).Coverage()
	covHmmer := runHybridOnWorkload(t, "hmmer", 150_000).Coverage()
	if covArt < 0.3 {
		t.Errorf("art coverage = %.3f, want >= 0.3", covArt)
	}
	if covNamd < 0.4 {
		t.Errorf("namd coverage = %.3f, want >= 0.4", covNamd)
	}
	if covHmmer > covNamd/2 {
		t.Errorf("hmmer coverage (%.3f) should be well below namd (%.3f)", covHmmer, covNamd)
	}
}

func TestMeterAccountingInvariants(t *testing.T) {
	f := func(vals []uint16) bool {
		meter := &Meter{P: NewLastValue(8, DefaultFPCVector())}
		for _, v := range vals {
			meter.Observe(0x400000, uint64(v%4)) // small alphabet: some hits
		}
		return meter.Used == meter.UsedRight+meter.UsedWrong &&
			meter.Used <= meter.Eligible &&
			meter.Eligible == uint64(len(vals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
