package stats

import (
	"encoding/xml"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden SVG figure tests: the rendered bar chart and heatmap for a
// fixed table are pinned as testdata, diffed line-by-line on failure.
// To regenerate after an intentional renderer change:
//
//	EOLE_UPDATE_GOLDEN=1 go test -run TestGoldenSVG ./internal/stats
//
// and review the diff like any other golden update.

func goldenTable() *Table {
	tb := NewTable("Figure 7: speedup over baseline", "benchmark", "EOLE_4_64", "Baseline_6_64")
	tb.Note = "warmup 5k / measure 20k"
	tb.WithGeomean = true
	tb.AddRow("gzip", 1.12, 1.00)
	tb.AddRowCI("namd & friends", []float64{1.25, 1.01}, []float64{0.04, 0.02})
	tb.AddRow("hmmer", 0.97, 1.00)
	return tb
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("EOLE_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with EOLE_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if string(got) == string(want) {
		return
	}
	// Line-level diff: SVG is one element per line, so this names the
	// drifted marks directly.
	gl, wl := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
	n := len(gl)
	if len(wl) > n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Errorf("line %d:\n  golden %s\n  got    %s", i+1, w, g)
		}
	}
	t.Errorf("%s drifted — if the renderer change is intentional, regenerate with EOLE_UPDATE_GOLDEN=1", path)
}

func wellFormed(t *testing.T, svg []byte) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(string(svg)))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v", err)
		}
	}
}

func TestGoldenSVGBars(t *testing.T) {
	got, err := goldenTable().RenderSVG(1.0)
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, got)
	checkGolden(t, "golden_figure_bars.svg", got)
}

func TestGoldenSVGHeatmap(t *testing.T) {
	tb := NewTable("IPC grid", "workload", "VP off", "VP 4-wide", "VP 8-wide")
	tb.AddRow("gzip", 1.01, 1.13, 1.15)
	tb.AddRow("namd", 1.40, 1.72, 1.74)
	got, err := tb.RenderSVGHeatmap()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, got)
	checkGolden(t, "golden_figure_heatmap.svg", got)
}

func TestRenderSVGDeterministic(t *testing.T) {
	a, err := goldenTable().RenderSVG(1.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := goldenTable().RenderSVG(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two renders of the same table differ")
	}
}

func TestRenderSVGContent(t *testing.T) {
	svg, err := goldenTable().RenderSVG(1.0)
	if err != nil {
		t.Fatal(err)
	}
	out := string(svg)
	for _, want := range []string{
		"Figure 7: speedup over baseline",
		"namd &amp; friends", // XML escaping of user text
		"geomean",            // WithGeomean summary group
		"stroke-dasharray",   // dashed reference line
		"<title>",            // hover tooltips
		"EOLE_4_64",          // legend (≥2 series)
		"±0.040",             // CI in the tooltip
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// CI whiskers: the ±0.04 row draws three extra ink-colored lines.
	if strings.Count(out, `stroke="`+svgInk2+`"`) < 6 {
		t.Errorf("expected whisker lines for CI rows:\n%s", out)
	}
}

func TestRenderSVGSingleSeriesNoLegend(t *testing.T) {
	tb := NewTable("IPC", "benchmark", "ipc")
	tb.AddRow("gzip", 1.1)
	svg, err := tb.RenderSVG(0)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(svg), `<rect x="52.00" y`) && strings.Contains(string(svg), "legend") {
		t.Error("single series must not render a legend")
	}
	if strings.Contains(string(svg), "stroke-dasharray") {
		t.Error("ref<=0 must not draw a reference line")
	}
}

func TestRenderSVGEmpty(t *testing.T) {
	tb := NewTable("empty", "r", "a")
	if _, err := tb.RenderSVG(1); err == nil {
		t.Error("empty table must error")
	}
	if _, err := tb.RenderSVGHeatmap(); err == nil {
		t.Error("empty heatmap must error")
	}
}

func TestNiceStep(t *testing.T) {
	for _, tc := range []struct {
		max, want float64
	}{{1, 0.2}, {5, 1}, {2.2, 0.5}, {9, 2}, {0, 1}, {100, 20}} {
		if got := niceStep(tc.max); got != tc.want {
			t.Errorf("niceStep(%v) = %v, want %v", tc.max, got, tc.want)
		}
	}
}

func TestAddRowCIPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb := NewTable("T", "r", "a", "b")
	tb.AddRowCI("x", []float64{1, 2}, []float64{0.1})
}

func TestRowNames(t *testing.T) {
	tb := NewTable("T", "r", "a")
	tb.AddRow("x", 1)
	tb.AddRow("y", 2)
	if got := fmt.Sprint(tb.RowNames()); got != "[x y]" {
		t.Errorf("RowNames = %s", got)
	}
}
