package stats

import (
	"fmt"
	"strings"
	"testing"
)

// goldenTimeline is a fixed cross-process waterfall shaped like a real
// cluster sweep: coordinator root + dispatch, worker http/queue/warm/
// detailed spans, one failed retry.
func goldenTimeline() []TimelineSpan {
	return []TimelineSpan{
		{Label: "http.request", Service: "eoled@:8180", Detail: "method=POST path=/v1/cluster/sweep", StartNS: 0, DurNS: 48_000_000, Depth: 0},
		{Label: "dispatch", Service: "eoled@:8180", Detail: "worker=http://w1 attempt=1", StartNS: 1_200_000, DurNS: 900_000, Depth: 1, Error: true},
		{Label: "dispatch", Service: "eoled@:8180", Detail: "worker=http://w2 attempt=2", StartNS: 2_400_000, DurNS: 44_000_000, Depth: 1},
		{Label: "http.request", Service: "eoled@:8181", Detail: "method=POST path=/v1/jobs", StartNS: 2_900_000, DurNS: 43_000_000, Depth: 2},
		{Label: "queue.wait", Service: "eoled@:8181", StartNS: 3_100_000, DurNS: 5_000_000, Depth: 3},
		{Label: "cache.probe", Service: "eoled@:8181", Detail: "hit=false", StartNS: 3_000_000, DurNS: 90_000, Depth: 3},
		{Label: "sim.warm", Service: "eoled@:8181", StartNS: 8_200_000, DurNS: 9_000_000, Depth: 3},
		{Label: "sim.detailed", Service: "eoled@:8181", StartNS: 17_300_000, DurNS: 28_000_000, Depth: 3},
		{Label: "artifact.fetch", Service: "eoled@:8181", Detail: "kind=trace tier=peer", StartNS: 3_400_000, DurNS: 700, Depth: 4},
	}
}

func TestGoldenSVGTimeline(t *testing.T) {
	got, err := RenderTimelineSVG("trace 4bf92f3577b34da6 · request ci-sweep-1", goldenTimeline())
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, got)
	checkGolden(t, "golden_trace_timeline.svg", got)
}

func TestRenderTimelineDeterministic(t *testing.T) {
	a, err := RenderTimelineSVG("T", goldenTimeline())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RenderTimelineSVG("T", goldenTimeline())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two renders of the same timeline differ")
	}
}

func TestRenderTimelineContent(t *testing.T) {
	svg, err := RenderTimelineSVG("trace <x>", goldenTimeline())
	if err != nil {
		t.Fatal(err)
	}
	out := string(svg)
	for _, want := range []string{
		"trace &lt;x&gt;",           // title escaping
		"sim.detailed",              // row labels
		"eoled@:8181",               // legend (two services)
		`stroke="` + tlErrInk + `"`, // failed span outline
		"<title>",                   // hover tooltips
		"28ms",                      // duration annotation
		"700ns",                     // sub-µs duration unit
		"ms</text>",                 // time axis ticks
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline SVG missing %q", want)
		}
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	if _, err := RenderTimelineSVG("empty", nil); err == nil {
		t.Error("empty timeline must error")
	}
}

func TestRenderTimelineTruncates(t *testing.T) {
	spans := make([]TimelineSpan, tlMaxRows+7)
	for i := range spans {
		spans[i] = TimelineSpan{Label: fmt.Sprintf("s%d", i), Service: "svc", StartNS: int64(i), DurNS: 10}
	}
	svg, err := RenderTimelineSVG("big", spans)
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	if !strings.Contains(string(svg), "7 more spans not shown") {
		t.Error("truncation note missing")
	}
	if strings.Contains(string(svg), fmt.Sprintf(">s%d<", tlMaxRows)) {
		t.Error("truncated span rendered")
	}
}

func TestFmtDurNS(t *testing.T) {
	for _, tc := range []struct {
		ns   int64
		want string
	}{
		{999, "999ns"},
		{1_000, "1µs"},
		{1_234, "1.234µs"},
		{12_340_000, "12.34ms"},
		{123_400_000, "123.4ms"},
		{48_000_000_000, "48s"},
		{1_500_000_000, "1.5s"},
	} {
		if got := fmtDurNS(tc.ns); got != tc.want {
			t.Errorf("fmtDurNS(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}
