// Package stats provides the small numeric and formatting helpers the
// experiment harness uses: geometric means, speedup series, and
// fixed-width table rendering of the paper's figures as text.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of xs (1.0 for empty input).
// Non-positive entries are skipped: they indicate a failed run and
// must not poison the mean.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return math.Exp(sum / float64(n))
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Table is a rendered experiment artefact: one row per benchmark, one
// column per configuration/series, matching a figure of the paper.
type Table struct {
	Title   string
	Note    string
	RowName string // header of the first column, e.g. "benchmark"
	Columns []string
	rows    []row
	// Summary rows (geomean etc.) are appended at render time.
	WithGeomean bool
}

type row struct {
	name string
	vals []float64
	// cis holds the half-width of a confidence interval per value
	// (nil when the row carries exact results). Sampled simulation
	// reports an IPC ± CI pair; figures render the CI as whiskers.
	cis []float64
}

// NewTable creates a table with the given value columns.
func NewTable(title, rowName string, columns ...string) *Table {
	return &Table{Title: title, RowName: rowName, Columns: columns}
}

// AddRow appends a benchmark row; vals must match Columns.
func (t *Table) AddRow(name string, vals ...float64) {
	if len(vals) != len(t.Columns) {
		panic(fmt.Sprintf("stats: row %s has %d values, table has %d columns",
			name, len(vals), len(t.Columns)))
	}
	t.rows = append(t.rows, row{name: name, vals: vals})
}

// AddRowCI appends a benchmark row with per-value confidence-interval
// half-widths (from sampled simulation); vals and cis must both match
// Columns. A zero CI renders without a whisker.
func (t *Table) AddRowCI(name string, vals, cis []float64) {
	if len(vals) != len(t.Columns) || len(cis) != len(t.Columns) {
		panic(fmt.Sprintf("stats: row %s has %d values / %d CIs, table has %d columns",
			name, len(vals), len(cis), len(t.Columns)))
	}
	t.rows = append(t.rows, row{name: name, vals: vals, cis: cis})
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// RowNames returns the benchmark names in insertion order.
func (t *Table) RowNames() []string {
	out := make([]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.name
	}
	return out
}

// Column returns the values of column i in row order.
func (t *Table) Column(i int) []float64 {
	out := make([]float64, len(t.rows))
	for r, rw := range t.rows {
		out[r] = rw.vals[i]
	}
	return out
}

// ColumnByName returns the values of the named column.
func (t *Table) ColumnByName(name string) ([]float64, bool) {
	for i, c := range t.Columns {
		if c == name {
			return t.Column(i), true
		}
	}
	return nil, false
}

// Value returns the cell for (benchmark, column).
func (t *Table) Value(rowName, col string) (float64, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, r := range t.rows {
		if r.name == rowName {
			return r.vals[ci], true
		}
	}
	return 0, false
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	nameW := len(t.RowName)
	for _, r := range t.rows {
		if len(r.name) > nameW {
			nameW = len(r.name)
		}
	}
	colW := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colW[i] = len(c)
		if colW[i] < 8 {
			colW[i] = 8
		}
	}
	fmt.Fprintf(&b, "%-*s", nameW+2, t.RowName)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", colW[i]+2, c)
	}
	b.WriteByte('\n')
	writeRow := func(name string, vals []float64) {
		fmt.Fprintf(&b, "%-*s", nameW+2, name)
		for i, v := range vals {
			fmt.Fprintf(&b, "%*.3f", colW[i]+2, v)
		}
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r.name, r.vals)
	}
	if t.WithGeomean && len(t.rows) > 0 {
		gm := make([]float64, len(t.Columns))
		for i := range t.Columns {
			gm[i] = Geomean(t.Column(i))
		}
		writeRow("geomean", gm)
	}
	return b.String()
}
