package stats

import (
	"strings"
	"testing"
)

func TestRenderChart(t *testing.T) {
	tb := NewTable("Figure 7", "benchmark", "speedup")
	tb.AddRow("namd", 1.25)
	tb.AddRow("hmmer", 0.79)
	tb.AddRow("crafty", 1.00)
	out, err := tb.RenderChart("speedup", 1.0, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"namd", "hmmer", "1.250", "0.790", "#", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// namd's bar must be the longest.
	lines := strings.Split(out, "\n")
	count := func(prefix string) int {
		for _, l := range lines {
			if strings.HasPrefix(l, prefix) {
				return strings.Count(l, "#")
			}
		}
		return -1
	}
	if count("namd") <= count("hmmer") {
		t.Fatalf("bar lengths wrong:\n%s", out)
	}
}

func TestRenderChartUnknownColumn(t *testing.T) {
	tb := NewTable("T", "r", "a")
	if _, err := tb.RenderChart("zzz", 1, 40); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestRenderChartClampsWidth(t *testing.T) {
	tb := NewTable("T", "r", "a")
	tb.AddRow("x", 5.0)
	out, err := tb.RenderChart("a", 0, 5) // width below minimum
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars:\n%s", out)
	}
}
