package stats

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// SVG rendering of the paper's figures: grouped bar charts (IPC,
// speedup) with optional confidence-interval whiskers and a dashed
// reference line, and grid heatmaps for two-dimensional sweeps.
//
// Output is deterministic byte-for-byte: fixed palette, fixed float
// formatting, insertion-ordered rows and columns, no timestamps — the
// same sweep report always renders the identical document, so figures
// are cacheable and golden-testable.
//
// Colors follow a validated categorical palette in fixed slot order
// (identity is also carried by legend order and within-group
// position). Three slots sit below 3:1 contrast on the light surface;
// the mitigation is that every figure has a text table twin
// (Table.Render) and per-bar <title> hover text.

// Fixed categorical palette (light mode), assigned to series in slot
// order, never re-ordered.
var svgPalette = []string{
	"#2a78d6", // blue
	"#eb6834", // orange
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#e87ba4", // magenta
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
}

// Sequential blue ramp, light→dark, for heatmap cells.
var svgRamp = []string{
	"#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
	"#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281", "#0d366b",
}

// Chart chrome (light mode).
const (
	svgSurface   = "#fcfcfb"
	svgInk       = "#0b0b0b"
	svgInk2      = "#52514e"
	svgMuted     = "#898781"
	svgGrid      = "#e1e0d9"
	svgBaseline  = "#c3c2b7"
	svgFontStack = `system-ui,-apple-system,'Segoe UI',sans-serif`
)

// fmtCoord renders an SVG coordinate with fixed precision so output
// is byte-stable across platforms.
func fmtCoord(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// fmtVal renders a data value the same way the text table does.
func fmtVal(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// xmlEscape escapes text nodes and attribute values.
func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}

// niceStep picks a 1/2/5×10^k tick step covering max in ~5 ticks.
func niceStep(max float64) float64 {
	if max <= 0 {
		return 1
	}
	raw := max / 5
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch {
	case raw/mag <= 1:
		return mag
	case raw/mag <= 2:
		return 2 * mag
	case raw/mag <= 5:
		return 5 * mag
	}
	return 10 * mag
}

// svgRow is one rendered bar group.
type svgRow struct {
	name string
	vals []float64
	cis  []float64 // nil = no whiskers
}

// RenderSVG draws the table as a grouped vertical bar chart: one
// group per row (benchmark), one bar per column (configuration).
// Rows added with AddRowCI get confidence-interval whiskers. A
// reference line at ref (e.g. 1.0 for speedup figures) is drawn
// dashed when ref > 0. When WithGeomean is set a summary group is
// appended, mirroring Render.
func (t *Table) RenderSVG(ref float64) ([]byte, error) {
	if len(t.rows) == 0 {
		return nil, fmt.Errorf("stats: table %q has no rows", t.Title)
	}
	rows := make([]svgRow, 0, len(t.rows)+1)
	for _, r := range t.rows {
		rows = append(rows, svgRow{name: r.name, vals: r.vals, cis: r.cis})
	}
	if t.WithGeomean {
		gm := make([]float64, len(t.Columns))
		for i := range t.Columns {
			gm[i] = Geomean(t.Column(i))
		}
		rows = append(rows, svgRow{name: "geomean", vals: gm})
	}

	// Vertical scale covers every bar top (plus whisker) and the
	// reference line, with 5% headroom.
	maxV := ref
	for _, r := range rows {
		for i, v := range r.vals {
			top := v
			if r.cis != nil {
				top += r.cis[i]
			}
			if top > maxV {
				maxV = top
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	step := niceStep(maxV)
	yMax := step * math.Ceil(maxV*1.05/step)

	// Layout. Bars are thin (12px) with 2px gaps inside a group.
	const (
		barW     = 12.0
		barGap   = 2.0
		groupGap = 18.0
		padL     = 52.0
		padT     = 40.0
		plotH    = 220.0
	)
	nSeries := len(t.Columns)
	groupW := float64(nSeries)*barW + float64(nSeries-1)*barGap
	plotW := float64(len(rows))*(groupW+groupGap) + groupGap
	legendH := 0.0
	if nSeries >= 2 {
		legendH = 22
	}
	padB := 58.0 + legendH
	padR := 16.0
	if ref > 0 {
		padR = 46 // room for the "ref N" label right of the plot
	}
	width := padL + plotW + padR
	// The title (14px) and the legend row must not overflow the
	// document; widen to fit the longest of the three.
	if w := padL + 8.5*float64(len(t.Title)) + 8; w > width {
		width = w
	}
	legendW := 0.0
	for _, c := range t.Columns {
		legendW += 14 + 7*float64(len(c)) + 16
	}
	if nSeries >= 2 && padL+legendW > width {
		width = padL + legendW
	}
	height := padT + plotH + padB
	y := func(v float64) float64 { return padT + plotH - v/yMax*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%s" height="%s" viewBox="0 0 %s %s" font-family="%s">`,
		fmtCoord(width), fmtCoord(height), fmtCoord(width), fmtCoord(height), svgFontStack)
	b.WriteByte('\n')
	fmt.Fprintf(&b, `<rect width="%s" height="%s" fill="%s"/>`, fmtCoord(width), fmtCoord(height), svgSurface)
	b.WriteByte('\n')
	fmt.Fprintf(&b, `<text x="%s" y="22" font-size="14" font-weight="600" fill="%s">%s</text>`,
		fmtCoord(padL), svgInk, xmlEscape(t.Title))
	b.WriteByte('\n')

	// Recessive gridlines and tick labels.
	for v := 0.0; v <= yMax+step/2; v += step {
		yy := y(v)
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="1"/>`,
			fmtCoord(padL), fmtCoord(yy), fmtCoord(padL+plotW), fmtCoord(yy), svgGrid)
		b.WriteByte('\n')
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="10" fill="%s" text-anchor="end">%s</text>`,
			fmtCoord(padL-6), fmtCoord(yy+3.5), svgMuted, trimZeros(v))
		b.WriteByte('\n')
	}

	// Bars, whiskers, group labels.
	for gi, r := range rows {
		gx := padL + groupGap + float64(gi)*(groupW+groupGap)
		for si, v := range r.vals {
			x := gx + float64(si)*(barW+barGap)
			color := svgPalette[si%len(svgPalette)]
			top, base := y(v), y(0)
			h := base - top
			if h < 0 {
				h = 0
			}
			rx := 2.0 // rounded data-end (top only: path arcs at the top corners)
			if h < rx {
				rx = h
			}
			fmt.Fprintf(&b, `<path d="M%s %sL%s %sQ%s %s %s %sL%s %sQ%s %s %s %sL%s %sZ" fill="%s">`,
				fmtCoord(x), fmtCoord(base),
				fmtCoord(x), fmtCoord(top+rx),
				fmtCoord(x), fmtCoord(top), fmtCoord(x+rx), fmtCoord(top),
				fmtCoord(x+barW-rx), fmtCoord(top),
				fmtCoord(x+barW), fmtCoord(top), fmtCoord(x+barW), fmtCoord(top+rx),
				fmtCoord(x+barW), fmtCoord(base), color)
			ci := 0.0
			if r.cis != nil {
				ci = r.cis[si]
			}
			title := fmt.Sprintf("%s / %s: %s", r.name, t.Columns[si], fmtVal(v))
			if ci > 0 {
				title += " ±" + fmtVal(ci)
			}
			fmt.Fprintf(&b, `<title>%s</title></path>`, xmlEscape(title))
			b.WriteByte('\n')
			if ci > 0 {
				cx := x + barW/2
				lo, hi := y(v-ci), y(v+ci)
				fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="1"/>`,
					fmtCoord(cx), fmtCoord(lo), fmtCoord(cx), fmtCoord(hi), svgInk2)
				b.WriteByte('\n')
				for _, wy := range []float64{lo, hi} {
					fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="1"/>`,
						fmtCoord(cx-3), fmtCoord(wy), fmtCoord(cx+3), fmtCoord(wy), svgInk2)
					b.WriteByte('\n')
				}
			}
		}
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="10" fill="%s" text-anchor="end" transform="rotate(-40 %s %s)">%s</text>`,
			fmtCoord(gx+groupW/2), fmtCoord(padT+plotH+14), svgInk2,
			fmtCoord(gx+groupW/2), fmtCoord(padT+plotH+14), xmlEscape(r.name))
		b.WriteByte('\n')
	}

	// Baseline axis on top of the bars' feet.
	fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="1"/>`,
		fmtCoord(padL), fmtCoord(y(0)), fmtCoord(padL+plotW), fmtCoord(y(0)), svgBaseline)
	b.WriteByte('\n')

	// Dashed reference line (e.g. baseline speedup 1.0).
	if ref > 0 {
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="1" stroke-dasharray="4 3"/>`,
			fmtCoord(padL), fmtCoord(y(ref)), fmtCoord(padL+plotW), fmtCoord(y(ref)), svgInk2)
		b.WriteByte('\n')
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="9" fill="%s">ref %s</text>`,
			fmtCoord(padL+plotW+2), fmtCoord(y(ref)+3), svgMuted, trimZeros(ref))
		b.WriteByte('\n')
	}

	// Legend: always present for ≥2 series, never for one (the title
	// names a single series).
	if nSeries >= 2 {
		lx := padL
		ly := height - 12
		for si, c := range t.Columns {
			color := svgPalette[si%len(svgPalette)]
			fmt.Fprintf(&b, `<rect x="%s" y="%s" width="10" height="10" rx="2" fill="%s"/>`,
				fmtCoord(lx), fmtCoord(ly-9), color)
			b.WriteByte('\n')
			fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="10" fill="%s">%s</text>`,
				fmtCoord(lx+14), fmtCoord(ly), svgInk2, xmlEscape(c))
			b.WriteByte('\n')
			lx += 14 + 7*float64(len(c)) + 16
		}
	}
	if t.Note != "" {
		fmt.Fprintf(&b, `<text x="%s" y="34" font-size="10" fill="%s">%s</text>`,
			fmtCoord(padL), svgMuted, xmlEscape(t.Note))
		b.WriteByte('\n')
	}
	b.WriteString("</svg>\n")
	return []byte(b.String()), nil
}

// trimZeros renders a tick/reference value without trailing zeros.
func trimZeros(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// RenderSVGHeatmap draws the table as a grid heatmap — rows on the
// vertical axis, columns on the horizontal — with cell color from the
// sequential blue ramp scaled to the table's min..max and the value
// printed in each cell.
func (t *Table) RenderSVGHeatmap() ([]byte, error) {
	if len(t.rows) == 0 {
		return nil, fmt.Errorf("stats: table %q has no rows", t.Title)
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, r := range t.rows {
		for _, v := range r.vals {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}

	const (
		cellW = 62.0
		cellH = 26.0
		gap   = 2.0
		padT  = 64.0
		padR  = 16.0
		padB  = 16.0
	)
	padL := 16.0
	for _, r := range t.rows {
		if w := 16 + 7*float64(len(r.name)); w > padL {
			padL = w
		}
	}
	width := padL + float64(len(t.Columns))*(cellW+gap) + padR
	height := padT + float64(len(t.rows))*(cellH+gap) + padB

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%s" height="%s" viewBox="0 0 %s %s" font-family="%s">`,
		fmtCoord(width), fmtCoord(height), fmtCoord(width), fmtCoord(height), svgFontStack)
	b.WriteByte('\n')
	fmt.Fprintf(&b, `<rect width="%s" height="%s" fill="%s"/>`, fmtCoord(width), fmtCoord(height), svgSurface)
	b.WriteByte('\n')
	fmt.Fprintf(&b, `<text x="16" y="22" font-size="14" font-weight="600" fill="%s">%s</text>`,
		svgInk, xmlEscape(t.Title))
	b.WriteByte('\n')
	for ci, c := range t.Columns {
		x := padL + float64(ci)*(cellW+gap) + cellW/2
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="10" fill="%s" text-anchor="middle">%s</text>`,
			fmtCoord(x), fmtCoord(padT-8), svgInk2, xmlEscape(c))
		b.WriteByte('\n')
	}
	for ri, r := range t.rows {
		yy := padT + float64(ri)*(cellH+gap)
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="10" fill="%s" text-anchor="end">%s</text>`,
			fmtCoord(padL-6), fmtCoord(yy+cellH/2+3.5), svgInk2, xmlEscape(r.name))
		b.WriteByte('\n')
		for ci, v := range r.vals {
			x := padL + float64(ci)*(cellW+gap)
			tt := 0.5
			if maxV > minV {
				tt = (v - minV) / (maxV - minV)
			}
			fill := svgRamp[rampIndex(tt)]
			ink := svgInk
			if tt > 0.55 {
				ink = "#ffffff"
			}
			fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" rx="2" fill="%s"><title>%s</title></rect>`,
				fmtCoord(x), fmtCoord(yy), fmtCoord(cellW), fmtCoord(cellH), fill,
				xmlEscape(fmt.Sprintf("%s / %s: %s", r.name, t.Columns[ci], fmtVal(v))))
			b.WriteByte('\n')
			fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="10" fill="%s" text-anchor="middle">%s</text>`,
				fmtCoord(x+cellW/2), fmtCoord(yy+cellH/2+3.5), ink, fmtVal(v))
			b.WriteByte('\n')
		}
	}
	b.WriteString("</svg>\n")
	return []byte(b.String()), nil
}

// rampIndex maps t∈[0,1] to a ramp stop.
func rampIndex(t float64) int {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	i := int(t * float64(len(svgRamp)-1))
	if i >= len(svgRamp) {
		i = len(svgRamp) - 1
	}
	return i
}
