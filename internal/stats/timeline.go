package stats

import (
	"fmt"
	"strconv"
	"strings"
)

// Trace timeline rendering: a waterfall of timed spans (one row per
// span, indented by tree depth, bar position/width from start offset
// and duration) for the /v1/debug/traces SVG view. Like the figure
// renderers in svg.go the output is deterministic byte-for-byte —
// fixed chrome, fmtCoord coordinates, insertion-ordered rows, colors
// assigned to services in order of first appearance, no timestamps
// beyond the relative offsets the caller supplies.

// TimelineSpan is one waterfall row. StartNS is the span's offset from
// the trace start (not a wall-clock time), so the rendered document
// depends only on the trace's shape.
type TimelineSpan struct {
	Label   string // span name, printed in the left gutter
	Service string // producing process; drives bar color and the legend
	Detail  string // extra tooltip text (attributes, error)
	StartNS int64  // offset from trace start
	DurNS   int64
	Depth   int  // tree depth; indents the gutter label
	Error   bool // failed spans get an error-colored outline
}

// Timeline layout constants.
const (
	tlRowH    = 20.0
	tlBarH    = 12.0
	tlPlotW   = 560.0
	tlPadT    = 46.0
	tlIndent  = 12.0
	tlErrInk  = "#e34948"
	tlMaxRows = 512 // one screenful bound; deeper traces truncate with a note
)

// RenderTimelineSVG draws spans (already in display order — typically
// Trace.Ordered depth-first order) as a waterfall under the given
// title. Spans beyond tlMaxRows are dropped with an explicit
// "… n more spans" note so truncation is visible.
func RenderTimelineSVG(title string, spans []TimelineSpan) ([]byte, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("stats: timeline %q has no spans", title)
	}
	truncated := 0
	if len(spans) > tlMaxRows {
		truncated = len(spans) - tlMaxRows
		spans = spans[:tlMaxRows]
	}

	// Horizontal scale covers the last span end; vertical is one row
	// per span. The gutter fits the deepest indented label.
	var totalNS int64
	padL := 120.0
	services := make([]string, 0, 4)
	seenSvc := make(map[string]bool, 4)
	for _, sp := range spans {
		if end := sp.StartNS + sp.DurNS; end > totalNS {
			totalNS = end
		}
		if w := 16 + float64(sp.Depth)*tlIndent + 7*float64(len(sp.Label)) + 10; w > padL {
			padL = w
		}
		if sp.Service != "" && !seenSvc[sp.Service] {
			seenSvc[sp.Service] = true
			services = append(services, sp.Service)
		}
	}
	if totalNS <= 0 {
		totalNS = 1
	}
	svcColor := func(svc string) string {
		for i, s := range services {
			if s == svc {
				return svgPalette[i%len(svgPalette)]
			}
		}
		return svgPalette[0]
	}

	legendH := 0.0
	if len(services) >= 2 {
		legendH = 22
	}
	noteH := 0.0
	if truncated > 0 {
		noteH = 14
	}
	plotH := float64(len(spans)) * tlRowH
	padB := 30.0 + legendH + noteH
	width := padL + tlPlotW + 70 // right margin fits duration labels
	if w := 52 + 8.5*float64(len(title)) + 8; w > width {
		width = w
	}
	legendW := 0.0
	for _, s := range services {
		legendW += 14 + 7*float64(len(s)) + 16
	}
	if len(services) >= 2 && padL+legendW > width {
		width = padL + legendW
	}
	height := tlPadT + plotH + padB
	x := func(ns int64) float64 { return padL + float64(ns)/float64(totalNS)*tlPlotW }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%s" height="%s" viewBox="0 0 %s %s" font-family="%s">`,
		fmtCoord(width), fmtCoord(height), fmtCoord(width), fmtCoord(height), svgFontStack)
	b.WriteByte('\n')
	fmt.Fprintf(&b, `<rect width="%s" height="%s" fill="%s"/>`, fmtCoord(width), fmtCoord(height), svgSurface)
	b.WriteByte('\n')
	fmt.Fprintf(&b, `<text x="52" y="22" font-size="14" font-weight="600" fill="%s">%s</text>`,
		svgInk, xmlEscape(title))
	b.WriteByte('\n')

	// Vertical gridlines and tick labels on the time axis.
	totalMS := float64(totalNS) / 1e6
	step := niceStep(totalMS)
	for v := 0.0; v <= totalMS+step/2; v += step {
		xx := padL + v/totalMS*tlPlotW
		if xx > padL+tlPlotW+0.5 {
			break
		}
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="1"/>`,
			fmtCoord(xx), fmtCoord(tlPadT-6), fmtCoord(xx), fmtCoord(tlPadT+plotH), svgGrid)
		b.WriteByte('\n')
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="9" fill="%s" text-anchor="middle">%sms</text>`,
			fmtCoord(xx), fmtCoord(tlPadT-10), svgMuted, trimZeros(v))
		b.WriteByte('\n')
	}

	// One row per span: indented gutter label, bar, duration at the
	// bar's trailing edge (leading edge when it would overflow).
	for i, sp := range spans {
		rowY := tlPadT + float64(i)*tlRowH
		barY := rowY + (tlRowH-tlBarH)/2
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="10" fill="%s">%s</text>`,
			fmtCoord(8+float64(sp.Depth)*tlIndent), fmtCoord(rowY+tlRowH/2+3.5), svgInk2, xmlEscape(sp.Label))
		b.WriteByte('\n')
		x0, x1 := x(sp.StartNS), x(sp.StartNS+sp.DurNS)
		w := x1 - x0
		if w < 1.5 {
			w = 1.5 // zero-length spans stay visible
		}
		stroke := ""
		if sp.Error {
			stroke = fmt.Sprintf(` stroke="%s" stroke-width="1"`, tlErrInk)
		}
		tip := sp.Label
		if sp.Service != "" {
			tip += " @ " + sp.Service
		}
		tip += ": " + fmtDurNS(sp.DurNS)
		if sp.Detail != "" {
			tip += " — " + sp.Detail
		}
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" rx="2" fill="%s"%s><title>%s</title></rect>`,
			fmtCoord(x0), fmtCoord(barY), fmtCoord(w), fmtCoord(tlBarH), svcColor(sp.Service), stroke, xmlEscape(tip))
		b.WriteByte('\n')
		dur := fmtDurNS(sp.DurNS)
		durW := 6 * float64(len(dur))
		if x0+w+4+durW <= padL+tlPlotW+66 {
			fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="9" fill="%s">%s</text>`,
				fmtCoord(x0+w+4), fmtCoord(rowY+tlRowH/2+3), svgMuted, dur)
		} else {
			fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="9" fill="%s" text-anchor="end">%s</text>`,
				fmtCoord(x0-4), fmtCoord(rowY+tlRowH/2+3), svgMuted, dur)
		}
		b.WriteByte('\n')
	}

	// Left baseline separating gutter from plot.
	fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="1"/>`,
		fmtCoord(padL), fmtCoord(tlPadT-6), fmtCoord(padL), fmtCoord(tlPadT+plotH), svgBaseline)
	b.WriteByte('\n')

	// Legend: one swatch per service, in first-appearance order.
	if len(services) >= 2 {
		lx := padL
		ly := height - 12 - noteH
		for _, s := range services {
			fmt.Fprintf(&b, `<rect x="%s" y="%s" width="10" height="10" rx="2" fill="%s"/>`,
				fmtCoord(lx), fmtCoord(ly-9), svcColor(s))
			b.WriteByte('\n')
			fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="10" fill="%s">%s</text>`,
				fmtCoord(lx+14), fmtCoord(ly), svgInk2, xmlEscape(s))
			b.WriteByte('\n')
			lx += 14 + 7*float64(len(s)) + 16
		}
	}
	if truncated > 0 {
		fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="10" fill="%s">… %d more spans not shown</text>`,
			fmtCoord(padL), fmtCoord(height-8), svgMuted, truncated)
		b.WriteByte('\n')
	}
	b.WriteString("</svg>\n")
	return []byte(b.String()), nil
}

// fmtDurNS renders a span duration with a unit sized to its magnitude,
// deterministically: 1.234s / 12.34ms / 123.4µs / 999ns.
func fmtDurNS(ns int64) string {
	v := float64(ns)
	switch {
	case ns >= 1e9:
		return trimTo4(v/1e9) + "s"
	case ns >= 1e6:
		return trimTo4(v/1e6) + "ms"
	case ns >= 1e3:
		return trimTo4(v/1e3) + "µs"
	default:
		return strconv.FormatInt(ns, 10) + "ns"
	}
}

// trimTo4 renders with 4 significant digits, trailing zeros trimmed.
func trimTo4(v float64) string {
	s := strconv.FormatFloat(v, 'f', sigDecimals(v), 64)
	if strings.Contains(s, ".") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimSuffix(s, ".")
	}
	return s
}

// sigDecimals picks the decimal count that yields 4 significant digits
// for values in [1, 1000) — the range the unit switch guarantees.
func sigDecimals(v float64) int {
	switch {
	case v >= 100:
		return 1
	case v >= 10:
		return 2
	default:
		return 3
	}
}
