package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean(nil); g != 1 {
		t.Fatalf("Geomean(nil) = %v, want 1", g)
	}
	// Non-positive entries are skipped.
	if g := Geomean([]float64{4, 0, -1}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("Geomean with junk = %v, want 4", g)
	}
}

func TestGeomeanScaleInvariance(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)/16 + 0.5
			scaled[i] = xs[i] * 3
		}
		return math.Abs(Geomean(scaled)-3*Geomean(xs)) < 1e-9*Geomean(scaled)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Min(xs) != 1 || Max(xs) != 3 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max must be 0")
	}
}

func TestTableRoundTrip(t *testing.T) {
	tb := NewTable("Figure X", "benchmark", "a", "b")
	tb.AddRow("gzip", 1.0, 2.0)
	tb.AddRow("mcf", 3.0, 4.0)
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	col, ok := tb.ColumnByName("b")
	if !ok || col[0] != 2 || col[1] != 4 {
		t.Fatalf("ColumnByName(b) = %v,%v", col, ok)
	}
	if _, ok := tb.ColumnByName("zzz"); ok {
		t.Fatal("unknown column must miss")
	}
	v, ok := tb.Value("mcf", "a")
	if !ok || v != 3 {
		t.Fatalf("Value(mcf,a) = %v,%v", v, ok)
	}
	if _, ok := tb.Value("nope", "a"); ok {
		t.Fatal("unknown row must miss")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Figure X", "benchmark", "speedup")
	tb.Note = "test note"
	tb.WithGeomean = true
	tb.AddRow("gzip", 2.0)
	tb.AddRow("mcf", 8.0)
	out := tb.Render()
	for _, want := range []string{"Figure X", "test note", "benchmark", "gzip", "2.000", "geomean", "4.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableAddRowPanicsOnArity(t *testing.T) {
	tb := NewTable("T", "r", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong arity")
		}
	}()
	tb.AddRow("x", 1.0)
}
