package stats

import (
	"fmt"
	"strings"
)

// RenderChart draws a horizontal ASCII bar chart of one column,
// approximating the paper's figure form. A reference line at ref
// (e.g. 1.0 for speedup figures) is marked with '|'; bars are scaled
// to width characters at the column maximum.
func (t *Table) RenderChart(col string, ref float64, width int) (string, error) {
	vals, ok := t.ColumnByName(col)
	if !ok {
		return "", fmt.Errorf("stats: no column %q", col)
	}
	if width < 10 {
		width = 10
	}
	max := Max(vals)
	if ref > max {
		max = ref
	}
	if max <= 0 {
		max = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.Title, col)
	nameW := len(t.RowName)
	for _, r := range t.rows {
		if len(r.name) > nameW {
			nameW = len(r.name)
		}
	}
	scale := float64(width) / max
	refPos := -1
	if ref > 0 {
		refPos = int(ref*scale + 0.5)
		if refPos >= width {
			refPos = width - 1
		}
	}
	ci := -1
	for i, c := range t.Columns {
		if c == col {
			ci = i
		}
	}
	for _, r := range t.rows {
		v := r.vals[ci]
		n := int(v*scale + 0.5)
		if n > width {
			n = width
		}
		bar := make([]byte, width)
		for i := range bar {
			switch {
			case i < n:
				bar[i] = '#'
			case i == refPos:
				bar[i] = '|'
			default:
				bar[i] = ' '
			}
		}
		if refPos >= 0 && refPos < n {
			bar[refPos] = '|'
		}
		fmt.Fprintf(&b, "%-*s %s %7.3f\n", nameW+2, r.name, string(bar), v)
	}
	if ref > 0 {
		fmt.Fprintf(&b, "%-*s %*s (reference %.2f)\n", nameW+2, "", refPos+2, "^", ref)
	}
	return b.String(), nil
}
