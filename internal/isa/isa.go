// Package isa defines the micro-operation instruction set used by the
// EOLE reproduction.
//
// The paper (Perais & Seznec, ISCA 2014) evaluates on x86_64 µ-ops as
// produced by gem5. We instead define a RISC-like 64-bit µ-op IR that
// preserves every property the evaluation depends on:
//
//   - instruction classes with the latencies of Table 1 (single-cycle
//     ALU, 3/25-cycle integer mul/div, 3-cycle FP, 5/10-cycle FP
//     mul/div, loads, stores, branches),
//   - value-prediction eligibility (µ-ops producing a 64-bit or less
//     register readable by a subsequent µ-op),
//   - x86-style condition flags: a subset of ALU µ-ops writes a flag
//     register derived from the result and the operands, and the paper's
//     flag approximation for value prediction (ZF/SF/PF derived from the
//     predicted value, OF := 0, CF := SF, AF ignored) is implemented in
//     DeriveFlags/ApproxFlags.
//
// Programs are sequences of static Inst values; the functional
// interpreter in internal/prog executes them into dynamic µ-op streams.
package isa

import "fmt"

// Reg names an architectural register. The machine has NumIntRegs
// integer registers r0..r31 and NumFPRegs floating-point registers
// f0..f31. RegNone marks an absent operand.
type Reg int16

// Architectural register file dimensions.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	// NumArchRegs is the total architectural register count across
	// both files; renaming maps this space onto the PRF.
	NumArchRegs = NumIntRegs + NumFPRegs

	// RegNone marks an unused operand slot.
	RegNone Reg = -1

	// LinkReg receives the return address on Call.
	LinkReg Reg = NumIntRegs - 1
)

// IntReg returns the i'th integer architectural register.
func IntReg(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register %d out of range", i))
	}
	return Reg(i)
}

// FPReg returns the i'th floating-point architectural register.
func FPReg(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register %d out of range", i))
	}
	return Reg(NumIntRegs + i)
}

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= NumIntRegs }

// Valid reports whether r names a real register (not RegNone).
func (r Reg) Valid() bool { return r >= 0 && r < NumArchRegs }

func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	default:
		return fmt.Sprintf("r%d", int(r))
	}
}

// Class groups µ-ops by execution resource and latency (Table 1 of the
// paper).
type Class uint8

const (
	// ClassALU is a single-cycle integer operation. Only this class is
	// eligible for Early and Late Execution.
	ClassALU Class = iota
	// ClassMul is a pipelined 3-cycle integer multiply.
	ClassMul
	// ClassDiv is an unpipelined 25-cycle integer divide.
	ClassDiv
	// ClassFP is a pipelined 3-cycle FP add/sub/convert/compare.
	ClassFP
	// ClassFPMul is a pipelined 5-cycle FP multiply.
	ClassFPMul
	// ClassFPDiv is an unpipelined 10-cycle FP divide/sqrt.
	ClassFPDiv
	// ClassLoad is a memory load (AGU + cache access).
	ClassLoad
	// ClassStore is a memory store (AGU + SQ entry).
	ClassStore
	// ClassBranch is a conditional direct branch.
	ClassBranch
	// ClassJump is an unconditional direct jump.
	ClassJump
	// ClassCall is a direct call (writes LinkReg, pushes RAS).
	ClassCall
	// ClassReturn is an indirect jump through LinkReg (pops RAS).
	ClassReturn
	// ClassJumpReg is an indirect jump through a register.
	ClassJumpReg
	numClasses
)

var classNames = [numClasses]string{
	"ALU", "Mul", "Div", "FP", "FPMul", "FPDiv",
	"Load", "Store", "Branch", "Jump", "Call", "Return", "JumpReg",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Latency returns the execution latency in cycles for the class,
// excluding memory hierarchy time for loads (Table 1). Loads report
// their 1-cycle AGU slot; cache latency is added by the memory model.
func (c Class) Latency() int {
	switch c {
	case ClassALU, ClassBranch, ClassJump, ClassCall, ClassReturn, ClassJumpReg:
		return 1
	case ClassMul, ClassFP:
		return 3
	case ClassFPMul:
		return 5
	case ClassFPDiv:
		return 10
	case ClassDiv:
		return 25
	case ClassLoad, ClassStore:
		return 1
	default:
		return 1
	}
}

// Pipelined reports whether the functional unit for the class accepts a
// new µ-op every cycle. Integer and FP divides are unpipelined per
// Table 1.
func (c Class) Pipelined() bool {
	return c != ClassDiv && c != ClassFPDiv
}

// IsBranch reports whether the class changes control flow.
func (c Class) IsBranch() bool {
	switch c {
	case ClassBranch, ClassJump, ClassCall, ClassReturn, ClassJumpReg:
		return true
	}
	return false
}

// IsCondBranch reports whether the class is a conditional branch (the
// only branch kind TAGE direction-predicts and the only one eligible
// for Late Execution per the paper: "we did not try to set confidence
// on the other branches").
func (c Class) IsCondBranch() bool { return c == ClassBranch }

// IsIndirect reports whether the branch target comes from a register.
func (c Class) IsIndirect() bool { return c == ClassReturn || c == ClassJumpReg }

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == ClassLoad || c == ClassStore }

// SingleCycleALU reports whether the µ-op class is a single-cycle ALU
// operation, the eligibility condition for Early and Late Execution
// ("we limit ourselves to single-cycle ALU instructions").
func (c Class) SingleCycleALU() bool { return c == ClassALU }

// Opcode enumerates the µ-ops.
type Opcode uint8

const (
	// Integer single-cycle ALU.
	OpAdd  Opcode = iota // Dst = Src1 + Src2
	OpSub                // Dst = Src1 - Src2
	OpAddi               // Dst = Src1 + Imm
	OpAnd                // Dst = Src1 & Src2
	OpAndi               // Dst = Src1 & Imm
	OpOr                 // Dst = Src1 | Src2
	OpOri                // Dst = Src1 | Imm
	OpXor                // Dst = Src1 ^ Src2
	OpXori               // Dst = Src1 ^ Imm
	OpShl                // Dst = Src1 << (Src2 & 63)
	OpShli               // Dst = Src1 << (Imm & 63)
	OpShr                // Dst = Src1 >> (Src2 & 63) logical
	OpShri               // Dst = Src1 >> (Imm & 63) logical
	OpSar                // Dst = int64(Src1) >> (Src2 & 63)
	OpMovi               // Dst = Imm
	OpMov                // Dst = Src1
	OpSltu               // Dst = Src1 < Src2 ? 1 : 0 (unsigned)
	OpSlt                // Dst = int64(Src1) < int64(Src2) ? 1 : 0

	// Multi-cycle integer.
	OpMul // Dst = Src1 * Src2 (3c)
	OpDiv // Dst = Src1 / Src2 (25c, unpipelined; /0 yields ^0)
	OpRem // Dst = Src1 % Src2 (25c, unpipelined; %0 yields Src1)

	// Floating point (operands/results are float64 bit patterns).
	OpFAdd // 3c
	OpFSub // 3c
	OpFCmp // 3c: Dst = 1 if f(Src1) < f(Src2) else 0 (integer result)
	OpFCvt // 3c: Dst = float64(int64(Src1)) bits
	OpFMul // 5c
	OpFDiv // 10c, unpipelined
	OpFSqrt

	// Memory. Effective address = Src1 + Imm.
	OpLd // Dst = Mem[EA]
	OpSt // Mem[EA] = Src2

	// Control. Conditional branches compare Src1 against Src2 (or zero
	// for the *z forms); Target is the static instruction index.
	OpBeq
	OpBne
	OpBlt  // signed
	OpBge  // signed
	OpBltu // unsigned
	OpBeqz
	OpBnez
	OpJmp  // unconditional direct
	OpCall // direct call: Dst(LinkReg) = return PC
	OpRet  // indirect through Src1 (conventionally LinkReg)
	OpJr   // indirect through Src1

	// OpHalt stops the interpreter (end of program).
	OpHalt
	numOpcodes
)

var opNames = [numOpcodes]string{
	"add", "sub", "addi", "and", "andi", "or", "ori", "xor", "xori",
	"shl", "shli", "shr", "shri", "sar", "movi", "mov", "sltu", "slt",
	"mul", "div", "rem",
	"fadd", "fsub", "fcmp", "fcvt", "fmul", "fdiv", "fsqrt",
	"ld", "st",
	"beq", "bne", "blt", "bge", "bltu", "beqz", "bnez",
	"jmp", "call", "ret", "jr",
	"halt",
}

func (o Opcode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// opClass maps opcodes to classes.
var opClass = [numOpcodes]Class{
	OpAdd: ClassALU, OpSub: ClassALU, OpAddi: ClassALU,
	OpAnd: ClassALU, OpAndi: ClassALU, OpOr: ClassALU, OpOri: ClassALU,
	OpXor: ClassALU, OpXori: ClassALU,
	OpShl: ClassALU, OpShli: ClassALU, OpShr: ClassALU, OpShri: ClassALU,
	OpSar: ClassALU, OpMovi: ClassALU, OpMov: ClassALU,
	OpSltu: ClassALU, OpSlt: ClassALU,
	OpMul: ClassMul, OpDiv: ClassDiv, OpRem: ClassDiv,
	OpFAdd: ClassFP, OpFSub: ClassFP, OpFCmp: ClassFP, OpFCvt: ClassFP,
	OpFMul: ClassFPMul, OpFDiv: ClassFPDiv, OpFSqrt: ClassFPDiv,
	OpLd: ClassLoad, OpSt: ClassStore,
	OpBeq: ClassBranch, OpBne: ClassBranch, OpBlt: ClassBranch,
	OpBge: ClassBranch, OpBltu: ClassBranch, OpBeqz: ClassBranch,
	OpBnez: ClassBranch,
	OpJmp:  ClassJump, OpCall: ClassCall, OpRet: ClassReturn, OpJr: ClassJumpReg,
	OpHalt: ClassJump,
}

// Class returns the execution class of the opcode.
func (o Opcode) Class() Class { return opClass[o] }

// writesFlags marks integer ALU opcodes that update the x86-style flag
// register as a side effect (arithmetic and logic, per x86 semantics;
// moves and shifts by immediate zero are excluded for simplicity).
// Indexed by opcode: WritesFlags is queried once per dynamic µ-op on
// the interpreter, trace-codec and predictor-validation hot paths, so
// it must stay a branch-free table load rather than a map lookup.
var writesFlags = [numOpcodes]bool{
	OpAdd: true, OpSub: true, OpAddi: true,
	OpAnd: true, OpAndi: true, OpOr: true, OpOri: true,
	OpXor: true, OpXori: true,
}

// WritesFlags reports whether the opcode updates the flag register.
func (o Opcode) WritesFlags() bool { return writesFlags[o] }

// HasImm reports whether the opcode consumes its Imm field as an
// operand (memory ops use Imm as a displacement, not an operand).
func (o Opcode) HasImm() bool {
	switch o {
	case OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpMovi:
		return true
	}
	return false
}

// Inst is one static instruction of a program.
type Inst struct {
	Op     Opcode
	Dst    Reg   // destination register, RegNone if none
	Src1   Reg   // first source, RegNone if none
	Src2   Reg   // second source, RegNone if none
	Imm    int64 // immediate / displacement
	Target int   // static instruction index for direct control flow
}

// Class returns the execution class of the instruction.
func (in Inst) Class() Class { return in.Op.Class() }

// VPEligible reports whether the µ-op is eligible for value prediction:
// it produces a 64-bit or less register result that can be read by a
// subsequent µ-op (§4.2 of the paper). Branches and stores have no
// register destination and are not eligible. Call link-address writes
// are trivially predictable and excluded, matching gem5's treatment of
// control µ-ops.
func (in Inst) VPEligible() bool {
	return in.Dst.Valid() && !in.Class().IsBranch()
}

func (in Inst) String() string {
	switch in.Class() {
	case ClassLoad:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, in.Dst, in.Src1, in.Imm)
	case ClassStore:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, in.Src2, in.Src1, in.Imm)
	case ClassBranch:
		if in.Src2 == RegNone {
			return fmt.Sprintf("%s %s, @%d", in.Op, in.Src1, in.Target)
		}
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, in.Src1, in.Src2, in.Target)
	case ClassJump, ClassCall:
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	case ClassReturn, ClassJumpReg:
		return fmt.Sprintf("%s %s", in.Op, in.Src1)
	}
	if in.Op.HasImm() {
		if in.Src1 == RegNone {
			return fmt.Sprintf("%s %s, %d", in.Op, in.Dst, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Dst, in.Src1, in.Imm)
	}
	return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
}
