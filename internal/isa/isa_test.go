package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegConstructors(t *testing.T) {
	if r := IntReg(0); r.IsFP() || !r.Valid() {
		t.Fatalf("IntReg(0) = %v, want valid integer reg", r)
	}
	if r := FPReg(0); !r.IsFP() || !r.Valid() {
		t.Fatalf("FPReg(0) = %v, want valid fp reg", r)
	}
	if RegNone.Valid() {
		t.Fatal("RegNone must not be valid")
	}
	if got := FPReg(3).String(); got != "f3" {
		t.Fatalf("FPReg(3).String() = %q, want f3", got)
	}
	if got := IntReg(7).String(); got != "r7" {
		t.Fatalf("IntReg(7).String() = %q, want r7", got)
	}
	if got := RegNone.String(); got != "-" {
		t.Fatalf("RegNone.String() = %q, want -", got)
	}
}

func TestRegConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { IntReg(-1) },
		func() { IntReg(NumIntRegs) },
		func() { FPReg(-1) },
		func() { FPReg(NumFPRegs) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register")
				}
			}()
			f()
		}()
	}
}

func TestClassLatencies(t *testing.T) {
	// Latencies from Table 1 of the paper.
	cases := []struct {
		c    Class
		lat  int
		pipe bool
	}{
		{ClassALU, 1, true},
		{ClassMul, 3, true},
		{ClassDiv, 25, false},
		{ClassFP, 3, true},
		{ClassFPMul, 5, true},
		{ClassFPDiv, 10, false},
		{ClassLoad, 1, true},
		{ClassStore, 1, true},
		{ClassBranch, 1, true},
	}
	for _, c := range cases {
		if got := c.c.Latency(); got != c.lat {
			t.Errorf("%v.Latency() = %d, want %d", c.c, got, c.lat)
		}
		if got := c.c.Pipelined(); got != c.pipe {
			t.Errorf("%v.Pipelined() = %v, want %v", c.c, got, c.pipe)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	branchy := []Class{ClassBranch, ClassJump, ClassCall, ClassReturn, ClassJumpReg}
	for _, c := range branchy {
		if !c.IsBranch() {
			t.Errorf("%v.IsBranch() = false, want true", c)
		}
		if c.SingleCycleALU() {
			t.Errorf("%v.SingleCycleALU() = true, want false", c)
		}
	}
	if !ClassALU.SingleCycleALU() {
		t.Error("ClassALU must be single-cycle ALU")
	}
	if ClassMul.SingleCycleALU() {
		t.Error("ClassMul must not be single-cycle ALU")
	}
	if !ClassBranch.IsCondBranch() || ClassJump.IsCondBranch() {
		t.Error("only ClassBranch is a conditional branch")
	}
	if !ClassReturn.IsIndirect() || !ClassJumpReg.IsIndirect() || ClassJump.IsIndirect() {
		t.Error("indirect classification wrong")
	}
	if !ClassLoad.IsMem() || !ClassStore.IsMem() || ClassALU.IsMem() {
		t.Error("memory classification wrong")
	}
}

func TestOpcodeClasses(t *testing.T) {
	cases := []struct {
		op Opcode
		c  Class
	}{
		{OpAdd, ClassALU}, {OpMovi, ClassALU}, {OpSlt, ClassALU},
		{OpMul, ClassMul}, {OpDiv, ClassDiv}, {OpRem, ClassDiv},
		{OpFAdd, ClassFP}, {OpFMul, ClassFPMul}, {OpFDiv, ClassFPDiv},
		{OpLd, ClassLoad}, {OpSt, ClassStore},
		{OpBeq, ClassBranch}, {OpJmp, ClassJump}, {OpCall, ClassCall},
		{OpRet, ClassReturn}, {OpJr, ClassJumpReg},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.c {
			t.Errorf("%v.Class() = %v, want %v", c.op, got, c.c)
		}
	}
}

func TestVPEligibility(t *testing.T) {
	// Produces a register: eligible.
	add := Inst{Op: OpAdd, Dst: IntReg(1), Src1: IntReg(2), Src2: IntReg(3)}
	if !add.VPEligible() {
		t.Error("add with dst must be VP-eligible")
	}
	ld := Inst{Op: OpLd, Dst: IntReg(1), Src1: IntReg(2)}
	if !ld.VPEligible() {
		t.Error("load must be VP-eligible")
	}
	// No destination: not eligible.
	st := Inst{Op: OpSt, Dst: RegNone, Src1: IntReg(1), Src2: IntReg(2)}
	if st.VPEligible() {
		t.Error("store must not be VP-eligible")
	}
	br := Inst{Op: OpBeq, Dst: RegNone, Src1: IntReg(1), Src2: IntReg(2)}
	if br.VPEligible() {
		t.Error("branch must not be VP-eligible")
	}
	// Call writes LinkReg but is a branch: not eligible.
	call := Inst{Op: OpCall, Dst: LinkReg}
	if call.VPEligible() {
		t.Error("call must not be VP-eligible")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, Dst: IntReg(1), Src1: IntReg(2), Src2: IntReg(3)}, "add r1, r2, r3"},
		{Inst{Op: OpAddi, Dst: IntReg(1), Src1: IntReg(2), Imm: 8}, "addi r1, r2, 8"},
		{Inst{Op: OpMovi, Dst: IntReg(5), Src1: RegNone, Imm: -1}, "movi r5, -1"},
		{Inst{Op: OpLd, Dst: IntReg(1), Src1: IntReg(2), Imm: 16}, "ld r1, [r2+16]"},
		{Inst{Op: OpSt, Src1: IntReg(2), Src2: IntReg(3), Imm: -8, Dst: RegNone}, "st r3, [r2-8]"},
		{Inst{Op: OpBeqz, Src1: IntReg(4), Src2: RegNone, Target: 7, Dst: RegNone}, "beqz r4, @7"},
		{Inst{Op: OpBne, Src1: IntReg(4), Src2: IntReg(5), Target: 2, Dst: RegNone}, "bne r4, r5, @2"},
		{Inst{Op: OpJmp, Target: 9, Dst: RegNone, Src1: RegNone, Src2: RegNone}, "jmp @9"},
		{Inst{Op: OpRet, Src1: LinkReg, Dst: RegNone, Src2: RegNone}, "ret r31"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestOpcodeAndClassNames(t *testing.T) {
	for o := Opcode(0); o < numOpcodes; o++ {
		s := o.String()
		if s == "" || strings.HasPrefix(s, "Opcode(") {
			t.Errorf("opcode %d has no name", o)
		}
	}
	for c := Class(0); c < numClasses; c++ {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "Class(") {
			t.Errorf("class %d has no name", c)
		}
	}
}

func TestTrueFlagsAdd(t *testing.T) {
	// 0xFFFF...F + 1 = 0 with carry, no signed overflow.
	f := TrueFlags(OpAdd, ^uint64(0), 1, 0)
	if f&FlagZF == 0 || f&FlagCF == 0 {
		t.Errorf("(-1)+1: flags = %08b, want ZF and CF set", f)
	}
	if f&FlagOF != 0 {
		t.Errorf("(-1)+1 must not set OF")
	}
	// MaxInt64 + 1 overflows signed.
	f = TrueFlags(OpAdd, 1<<63-1, 1, 1<<63)
	if f&FlagOF == 0 {
		t.Errorf("MaxInt64+1: flags = %08b, want OF set", f)
	}
	if f&FlagSF == 0 {
		t.Errorf("MaxInt64+1: result is negative, want SF")
	}
}

func TestTrueFlagsSub(t *testing.T) {
	// 1 - 2 borrows (CF) and is negative.
	var one uint64 = 1
	f := TrueFlags(OpSub, one, 2, one-2)
	if f&FlagCF == 0 || f&FlagSF == 0 {
		t.Errorf("1-2: flags = %08b, want CF and SF", f)
	}
	// MinInt64 - 1 overflows signed.
	minI := uint64(1) << 63
	f = TrueFlags(OpSub, minI, 1, minI-1)
	if f&FlagOF == 0 {
		t.Errorf("MinInt64-1: want OF set")
	}
}

func TestTrueFlagsLogic(t *testing.T) {
	// Logic ops must clear CF and OF.
	f := TrueFlags(OpAnd, ^uint64(0), ^uint64(0), ^uint64(0))
	if f&(FlagCF|FlagOF) != 0 {
		t.Errorf("and: CF/OF must be clear, got %08b", f)
	}
	if f&FlagSF == 0 {
		t.Errorf("and of -1: want SF")
	}
}

func TestApproxFlagsPaperRule(t *testing.T) {
	// OF always 0; CF == SF.
	for _, v := range []uint64{0, 1, ^uint64(0), 1 << 63, 0xdeadbeef} {
		f := ApproxFlags(v)
		if f&FlagOF != 0 {
			t.Errorf("ApproxFlags(%#x) sets OF", v)
		}
		if (f&FlagCF != 0) != (f&FlagSF != 0) {
			t.Errorf("ApproxFlags(%#x): CF must equal SF", v)
		}
	}
}

func TestFlagsMatch(t *testing.T) {
	// A correct positive add with no carry: approximation agrees.
	actual := TrueFlags(OpAdd, 2, 3, 5)
	if !FlagsMatch(5, actual) {
		t.Error("2+3=5: approximation should match")
	}
	// Carry-producing add of two positives: CF set but SF clear, so the
	// approximation (CF:=SF) disagrees -> prediction counted wrong.
	actual = TrueFlags(OpAdd, ^uint64(0), 2, 1)
	if FlagsMatch(1, actual) {
		t.Error("carry without sign: approximation must mismatch")
	}
	// AF differences alone must not cause a mismatch.
	actual = TrueFlags(OpAdd, 0xF, 1, 0x10) // sets AF only
	if !FlagsMatch(0x10, actual) {
		t.Error("AF-only difference must be ignored")
	}
}

func TestFlagPropertyZFIffZero(t *testing.T) {
	f := func(v uint64) bool {
		return (ApproxFlags(v)&FlagZF != 0) == (v == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlagPropertySFIffNegative(t *testing.T) {
	f := func(v uint64) bool {
		return (ApproxFlags(v)&FlagSF != 0) == (int64(v) < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlagPropertyDerivedBitsAgree(t *testing.T) {
	// For any op and operands, the result-derived bits (ZF/SF/PF) of
	// TrueFlags always equal those of ApproxFlags on the same result.
	f := func(a, b uint64) bool {
		res := a + b
		tf := TrueFlags(OpAdd, a, b, res)
		af := ApproxFlags(res)
		mask := FlagZF | FlagSF | FlagPF
		return tf&mask == af&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWritesFlags(t *testing.T) {
	if !OpAdd.WritesFlags() || !OpXori.WritesFlags() {
		t.Error("arithmetic/logic ops must write flags")
	}
	for _, o := range []Opcode{OpMov, OpMovi, OpLd, OpSt, OpMul, OpFAdd, OpBeq, OpShl} {
		if o.WritesFlags() {
			t.Errorf("%v must not write flags", o)
		}
	}
}

func TestHasImm(t *testing.T) {
	for _, o := range []Opcode{OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpMovi} {
		if !o.HasImm() {
			t.Errorf("%v must report HasImm", o)
		}
	}
	for _, o := range []Opcode{OpAdd, OpLd, OpSt, OpBeq} {
		if o.HasImm() {
			t.Errorf("%v must not report HasImm", o)
		}
	}
}
