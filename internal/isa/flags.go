package isa

import "math/bits"

// Flags is the x86-style condition flag register, packed into one byte.
// Only the bits the paper discusses are modelled.
type Flags uint8

// Flag bits.
const (
	FlagZF Flags = 1 << iota // zero
	FlagSF                   // sign
	FlagPF                   // parity of low byte
	FlagCF                   // carry (operand-dependent)
	FlagOF                   // overflow (operand-dependent)
	FlagAF                   // adjust (ignored for validation, §4.2)
)

// resultFlags computes the flags that are a pure function of the
// 64-bit result: ZF, SF and PF. These are the flags the paper says
// "can easily be inferred from the predicted result".
func resultFlags(v uint64) Flags {
	var f Flags
	if v == 0 {
		f |= FlagZF
	}
	if int64(v) < 0 {
		f |= FlagSF
	}
	if bits.OnesCount8(uint8(v))%2 == 0 {
		f |= FlagPF
	}
	return f
}

// TrueFlags computes the architecturally correct flag register for an
// integer ALU operation with the given operands and result. CF and OF
// follow x86 add/sub semantics; logic ops clear both. AF follows
// add/sub nibble carry.
func TrueFlags(op Opcode, a, b, result uint64) Flags {
	f := resultFlags(result)
	switch op {
	case OpAdd, OpAddi:
		if result < a {
			f |= FlagCF
		}
		// Signed overflow: operands same sign, result different sign.
		if (a^b)&(1<<63) == 0 && (a^result)&(1<<63) != 0 {
			f |= FlagOF
		}
		if (a&0xF)+(b&0xF) > 0xF {
			f |= FlagAF
		}
	case OpSub:
		if a < b {
			f |= FlagCF
		}
		if (a^b)&(1<<63) != 0 && (a^result)&(1<<63) != 0 {
			f |= FlagOF
		}
		if a&0xF < b&0xF {
			f |= FlagAF
		}
	}
	return f
}

// ApproxFlags computes the flag register a value predictor can derive
// from a predicted result alone, using the paper's approximation
// (§4.2 "x86 Flags"): ZF/SF/PF from the value, OF := 0, and CF set iff
// SF is set. AF is left clear.
func ApproxFlags(predicted uint64) Flags {
	f := resultFlags(predicted)
	if f&FlagSF != 0 {
		f |= FlagCF
	}
	return f
}

// ValidationMask is the set of flag bits compared when validating a
// value prediction of a flag-writing µ-op. AF is excluded because
// x86_64 forbids decimal arithmetic, so AF is never consumed (§4.2).
const ValidationMask = FlagZF | FlagSF | FlagPF | FlagCF | FlagOF

// FlagsMatch reports whether a predicted value's derivable flags agree
// with the architectural flags under the validation mask. A value
// prediction of a flag-writing µ-op is treated as incorrect when this
// returns false even if the 64-bit value matches, mirroring the paper's
// "we consider a prediction as incorrect if ... the flag register is
// wrong".
func FlagsMatch(predicted uint64, actual Flags) bool {
	return ApproxFlags(predicted)&ValidationMask == actual&ValidationMask
}
