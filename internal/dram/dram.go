// Package dram models the main memory of Table 1: single-channel
// DDR3-1600 (11-11-11), 2 ranks of 8 banks, 8KB row buffers, with
// open-page policy. Latencies are expressed in 4GHz CPU cycles; the
// resulting read latency spans the paper's "Min. Read Lat.: 75 cycles,
// Max. 185 cycles".
package dram

// Config captures the timing and geometry of the DDR3 channel.
type Config struct {
	Ranks        int
	BanksPerRank int
	RowBytes     int // row-buffer size (8KB)
	// Timing in CPU cycles (DDR3-1600 at 4GHz: 1 DRAM cycle = 5 CPU
	// cycles; CL=tRCD=tRP=11 DRAM cycles = 55 CPU cycles each).
	TCAS     uint64 // column access (row hit)
	TRCD     uint64 // row activate
	TRP      uint64 // precharge (row conflict)
	TBurst   uint64 // data burst occupancy of the bank
	Overhead uint64 // controller + interconnect constant
	WriteLat uint64 // posted-write acknowledge latency
}

// DefaultConfig returns the Table 1 DDR3-1600 channel.
func DefaultConfig() Config {
	return Config{
		Ranks:        2,
		BanksPerRank: 8,
		RowBytes:     8 << 10,
		TCAS:         55,
		TRCD:         55,
		TRP:          55,
		TBurst:       20,
		Overhead:     20,
		WriteLat:     20,
	}
}

type bank struct {
	open    bool
	openRow uint64
	ready   uint64 // cycle at which the bank can accept a new command
}

// DDR3 is the memory controller + channel model.
type DDR3 struct {
	cfg   Config
	banks []bank

	// Stats.
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	RowConfl  uint64
	TotalLat  uint64
}

// New builds a DDR3 channel.
func New(cfg Config) *DDR3 {
	return &DDR3{cfg: cfg, banks: make([]bank, cfg.Ranks*cfg.BanksPerRank)}
}

// Decode maps a physical address to (bank, row). Banks interleave at
// row-buffer granularity, and higher address bits are XOR-folded into
// the bank index (standard controller bank hashing) so that multiple
// power-of-two-spaced streams spread across banks instead of
// serializing on one.
func (d *DDR3) Decode(addr uint64) (bankIdx int, row uint64) {
	rowShift := uint(0)
	for 1<<rowShift < d.cfg.RowBytes {
		rowShift++
	}
	n := uint64(len(d.banks))
	x := addr >> rowShift
	row = x / n
	// Fold several address strata into the bank bits so that streams
	// based at power-of-two offsets (heap arenas) land on different
	// banks even at equal stream positions.
	h := x ^ x>>7 ^ x>>13 ^ x>>19
	bankIdx = int(h % n)
	return bankIdx, row
}

// Access performs one memory transaction at CPU cycle `now` and
// returns the cycle at which data is available (reads) or the write is
// accepted (writes).
func (d *DDR3) Access(addr uint64, write bool, _ uint64, now uint64) uint64 {
	bi, row := d.Decode(addr)
	b := &d.banks[bi]

	start := now
	if b.ready > start {
		start = b.ready
	}

	// Activation cost depends on the row-buffer state; the column
	// access (CAS) latency pipelines with later commands, so the bank
	// is only occupied for activation + data burst.
	var act uint64
	switch {
	case b.open && b.openRow == row:
		d.RowHits++
	case !b.open:
		d.RowMisses++
		act = d.cfg.TRCD
	default:
		d.RowConfl++
		act = d.cfg.TRP + d.cfg.TRCD
	}
	b.open = true
	b.openRow = row

	done := start + act + d.cfg.TCAS + d.cfg.Overhead
	b.ready = start + act + d.cfg.TBurst

	if write {
		d.Writes++
		// Posted writes: the requester is released quickly, the bank
		// stays busy.
		ack := now + d.cfg.WriteLat
		return ack
	}
	d.Reads++
	d.TotalLat += done - now
	return done
}

// AvgReadLatency reports the mean read latency in CPU cycles.
func (d *DDR3) AvgReadLatency() float64 {
	if d.Reads == 0 {
		return 0
	}
	return float64(d.TotalLat) / float64(d.Reads)
}

// RowHitRate reports row-buffer hits per access.
func (d *DDR3) RowHitRate() float64 {
	total := d.RowHits + d.RowMisses + d.RowConfl
	if total == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(total)
}
