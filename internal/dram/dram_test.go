package dram

import (
	"testing"
	"testing/quick"
)

func TestLatencyBandsMatchTable1(t *testing.T) {
	// Table 1: min read 75 cycles, max 185 (unloaded).
	d := New(DefaultConfig())
	// Closed bank first access.
	lat := d.Access(0x1000, false, 0, 0)
	if lat < 75 || lat > 185 {
		t.Fatalf("first access latency %d outside [75,185]", lat)
	}
	// Row hit after the bank is idle: the minimum latency.
	now := lat + 1000
	done := d.Access(0x1008, false, 0, now)
	if hit := done - now; hit != DefaultConfig().TCAS+DefaultConfig().Overhead {
		t.Fatalf("row-hit latency %d, want TCAS+overhead", hit)
	}
}

func TestRowConflictCostsPrecharge(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	b0, _ := d.Decode(0x0)
	// Find another address in the same bank, different row.
	var confl uint64
	for i := 1; ; i++ {
		addr := uint64(i * cfg.RowBytes)
		if b, r := d.Decode(addr); b == b0 && r != 0 {
			confl = addr
			break
		}
	}
	now := uint64(10_000)
	d.Access(0x0, false, 0, now)
	now += 10_000
	done := d.Access(confl, false, 0, now)
	want := cfg.TRP + cfg.TRCD + cfg.TCAS + cfg.Overhead
	if got := done - now; got != want {
		t.Fatalf("row-conflict latency %d, want %d", got, want)
	}
	if d.RowConfl != 1 {
		t.Fatalf("RowConfl = %d, want 1", d.RowConfl)
	}
}

func TestBankOccupancyBoundsBandwidth(t *testing.T) {
	// Back-to-back same-row reads are spaced by TBurst, not by the
	// full access latency (DDR3 pipelines column accesses).
	cfg := DefaultConfig()
	d := New(cfg)
	a := d.Access(0x0, false, 0, 0)
	b := d.Access(0x40, false, 0, 0)
	if b-a != cfg.TBurst {
		t.Fatalf("same-row spacing %d, want TBurst %d", b-a, cfg.TBurst)
	}
}

func TestDecodeCoversAllBanks(t *testing.T) {
	d := New(DefaultConfig())
	cfg := DefaultConfig()
	seen := map[int]bool{}
	for i := 0; i < 1024; i++ {
		b, _ := d.Decode(uint64(i * cfg.RowBytes))
		seen[b] = true
	}
	if len(seen) != cfg.Ranks*cfg.BanksPerRank {
		t.Fatalf("rows map to %d banks, want %d", len(seen), cfg.Ranks*cfg.BanksPerRank)
	}
}

func TestDecodeStableWithinRow(t *testing.T) {
	// All addresses within one row-buffer-worth of one bank must
	// decode identically (otherwise streaming would never row-hit).
	d := New(DefaultConfig())
	f := func(baseRow uint16, off uint16) bool {
		base := uint64(baseRow) * uint64(DefaultConfig().RowBytes) * 16
		b1, r1 := d.Decode(base)
		b2, r2 := d.Decode(base + uint64(off)%uint64(DefaultConfig().RowBytes))
		return b1 == b2 && r1 == r2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerOfTwoStreamsSpread(t *testing.T) {
	// Regression for the h264ref pathology: streams based at
	// 0x1000_0000 and 0x2000_0000 must not serialize on one bank.
	d := New(DefaultConfig())
	same := 0
	for i := 0; i < 64; i++ {
		off := uint64(i * DefaultConfig().RowBytes)
		b1, _ := d.Decode(0x1000_0000 + off)
		b2, _ := d.Decode(0x2000_0000 + off)
		if b1 == b2 {
			same++
		}
	}
	if same > 16 {
		t.Fatalf("streams collide on the same bank %d/64 times", same)
	}
}

func TestWritesArePostedAndOccupyBank(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	ack := d.Access(0x100, true, 0, 0)
	if ack != cfg.WriteLat {
		t.Fatalf("write ack %d, want %d", ack, cfg.WriteLat)
	}
	// A read right behind the write must see the busy bank.
	done := d.Access(0x108, false, 0, 1)
	if done-1 <= cfg.TCAS+cfg.Overhead {
		t.Fatal("read behind write ignored bank occupancy")
	}
	if d.Writes != 1 || d.Reads != 1 {
		t.Fatalf("counters: %d writes / %d reads", d.Writes, d.Reads)
	}
}

func TestStatsRates(t *testing.T) {
	d := New(DefaultConfig())
	if d.RowHitRate() != 0 || d.AvgReadLatency() != 0 {
		t.Fatal("fresh controller must report zero rates")
	}
	d.Access(0x0, false, 0, 0)
	d.Access(0x8, false, 0, 1_000)
	if d.RowHitRate() <= 0 || d.RowHitRate() > 1 {
		t.Fatalf("row hit rate %v", d.RowHitRate())
	}
	if d.AvgReadLatency() < 75 {
		t.Fatalf("avg read latency %v below minimum", d.AvgReadLatency())
	}
}
