package config

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestBuilderReproducesNamedConfigs spells out two named machines in
// full builder form and checks field identity (modulo the name, which
// is a label).
func TestBuilderReproducesNamedConfigs(t *testing.T) {
	eole464, err := New(
		FromBaseline(),
		WithName("EOLE_4_64"),
		IssueWidth(4), IQ(64),
		ValuePrediction(true),
		EarlyExecution(1),
		LateExecution(true),
		LEBranches(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustNamed(t, "EOLE_4_64"); eole464 != want {
		t.Errorf("builder EOLE_4_64 differs:\n got  %+v\n want %+v", eole464, want)
	}

	practical, err := New(
		FromNamed("EOLE_4_64"),
		WithName("EOLE_4_64_4ports_4banks"),
		PRFBanks(4), LEVTPorts(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustNamed(t, "EOLE_4_64_4ports_4banks"); practical != want {
		t.Errorf("builder practical config differs:\n got  %+v\n want %+v", practical, want)
	}
}

func mustNamed(t *testing.T, name string) Config {
	t.Helper()
	c, err := Named(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsInvalidCombinations(t *testing.T) {
	cases := []struct {
		opts    []Option
		wantSub string
	}{
		{[]Option{IssueWidth(0)}, "IssueWidth"},
		{[]Option{IQ(256)}, "IQ"},                        // IQ > ROB
		{[]Option{EarlyExecution(1)}, "ValuePrediction"}, // EE without VP
		{[]Option{EarlyExecution(3)}, "EarlyExecution"},  // bad depth
		{[]Option{FetchQueue(16)}, "FetchQueue"},         // cannot cover the pipe
		{[]Option{CommitWidth(12)}, "CommitWidth"},       // commit > rename
		{[]Option{ValuePrediction(true), LateExecution(true), LEWidth(-1)}, "LEWidth"},
		{[]Option{PRFBanks(3)}, "banks"}, // 256 not divisible by 3
	}
	for i, tc := range cases {
		_, err := New(tc.opts...)
		if err == nil {
			t.Errorf("case %d: invalid options accepted", i)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("case %d: error %q does not name %q", i, err, tc.wantSub)
		}
	}
}

// TestValidateRejectsHostileConfigs covers fields only reachable by
// mutating the struct (or posting inline JSON): every value that
// would panic or wedge internal/core must fail Validate, because
// arbitrary configs arrive over the eoled HTTP API.
func TestValidateRejectsHostileConfigs(t *testing.T) {
	cases := []struct {
		mutate  func(c *Config)
		wantSub string
	}{
		{func(c *Config) { c.NumMulDiv = -1 }, "functional-unit"}, // make([]uint64, -1) panic in core
		{func(c *Config) { c.NumALU = 0 }, "functional-unit"},
		{func(c *Config) { c.NumMemPorts = 0 }, "functional-unit"},
		{func(c *Config) { c.NumFPMulDiv = 1000 }, "<= 64"},
		{func(c *Config) { c.ROBSize = 1 << 30; c.IQSize = 64 }, "queue sizes"}, // huge window allocation
		{func(c *Config) { c.FetchToRenameLag = -1 }, "FetchToRenameLag"},
		{func(c *Config) { c.FetchToRenameLag = 1 << 20; c.FetchQueueSize = 1 << 30 }, "FetchToRenameLag"},
		{func(c *Config) { c.MaxTakenPerFetch = 0 }, "MaxTakenPerFetch"},
		{func(c *Config) { c.ValueMispredictPenalty = -5 }, "ValueMispredictPenalty"},
		{func(c *Config) { c.PRF.IntRegs = 0; c.PRF.FPRegs = 0 }, "PRF"},
		{func(c *Config) { c.PRF.IntRegs = 16; c.PRF.FPRegs = 16 }, "PRF too small"},
		{func(c *Config) { c.PRF.IntRegs = 1 << 24; c.PRF.FPRegs = 1 << 24 }, "register files"},
		{func(c *Config) { c.PRF.Banks = 128; c.PRF.IntRegs = 256; c.PRF.FPRegs = 256 }, "PRFBanks"},
		{func(c *Config) { c.PRF.LEVTReadPortsPerBank = -2 }, "read ports"},
		{func(c *Config) { c.LEWidth = 1 << 20 }, "LEWidth"},
	}
	for i, tc := range cases {
		c := EOLE(4, 64)
		tc.mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("case %d: hostile config accepted", i)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("case %d: error %q does not mention %q", i, err, tc.wantSub)
		}
	}
}

// TestNormalizedUnifiesRawAndBuilderConfigs: a raw config that left
// LEWidth at 0 with Late Execution on (the commit-width default) is
// the same machine as its builder twin — Normalized fills the field
// and Fingerprint hashes the normalized form, so both share one cache
// identity.
func TestNormalizedUnifiesRawAndBuilderConfigs(t *testing.T) {
	built := EOLE(4, 64) // LEWidth = CommitWidth = 8
	raw := built
	raw.LEWidth = 0 // as a hand-written JSON config would arrive
	if raw.Normalized() != built {
		t.Errorf("Normalized() = %+v, want %+v", raw.Normalized(), built)
	}
	if raw.Fingerprint() != built.Fingerprint() {
		t.Error("raw LEWidth-0 config must fingerprint-match its builder twin")
	}
	// Without LE, LEWidth 0 stays 0 (nothing to default).
	noLE := Baseline6_64()
	if noLE.Normalized() != noLE {
		t.Error("Normalized must not touch configs without Late Execution")
	}
}

func TestLEWidthDefaultsToCommitWidth(t *testing.T) {
	c, err := New(ValuePrediction(true), LateExecution(true))
	if err != nil {
		t.Fatal(err)
	}
	if c.LEWidth != c.CommitWidth {
		t.Fatalf("LEWidth = %d, want commit width %d", c.LEWidth, c.CommitWidth)
	}
	c2, err := New(ValuePrediction(true), LateExecution(true), LEWidth(2))
	if err != nil {
		t.Fatal(err)
	}
	if c2.LEWidth != 2 {
		t.Fatalf("explicit LEWidth overridden: %d", c2.LEWidth)
	}
}

// TestConfigJSONRoundTripAndFingerprint is the property-style check of
// the serialization contract over every named config and a grid of
// builder outputs: JSON round-trips losslessly, the fingerprint
// survives the round trip, and renaming never changes it.
func TestConfigJSONRoundTripAndFingerprint(t *testing.T) {
	var cfgs []Config
	for _, name := range KnownNames() {
		cfgs = append(cfgs, mustNamed(t, name))
	}
	g := Grid{
		BaseName: "EOLE_4_64",
		Axes: []Axis{
			{Option: "IssueWidth", Values: []any{4, 5, 6}},
			{Option: "PRFBanks", Values: []any{1, 2, 4}},
			{Option: "LEVTPorts", Values: []any{0, 4}},
		},
	}
	gridCfgs, err := g.Configs()
	if err != nil {
		t.Fatal(err)
	}
	cfgs = append(cfgs, gridCfgs...)

	seen := make(map[string]string) // fingerprint -> label
	for _, c := range cfgs {
		wire, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("%s: marshal: %v", c.Label(), err)
		}
		var back Config
		if err := json.Unmarshal(wire, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", c.Label(), err)
		}
		if back != c {
			t.Errorf("%s: JSON round trip lost data:\n got  %+v\n want %+v", c.Label(), back, c)
		}
		if back.Fingerprint() != c.Fingerprint() {
			t.Errorf("%s: fingerprint changed across JSON round trip", c.Label())
		}

		renamed := c
		renamed.Name = "some_other_label"
		if renamed.Fingerprint() != c.Fingerprint() {
			t.Errorf("%s: fingerprint depends on Name", c.Label())
		}

		if prev, dup := seen[c.Fingerprint()]; dup {
			// Distinct parameters must not collide. (EOLE_6_64 appears
			// once named and once as the grid's issue-6 cell — equal
			// fields, so an equal fingerprint is correct there.)
			pc := findByLabel(cfgs, prev)
			cc := c
			pc.Name, cc.Name = "", ""
			if pc != cc {
				t.Errorf("fingerprint collision between %s and %s", prev, c.Label())
			}
		}
		seen[c.Fingerprint()] = c.Label()
	}
}

func findByLabel(cfgs []Config, label string) Config {
	for _, c := range cfgs {
		if c.Label() == label {
			return c
		}
	}
	return Config{}
}

func TestFingerprintStableAcrossProcessRuns(t *testing.T) {
	// Pinned literal: if this changes, stored cache keys derived from
	// fingerprints are invalidated — bump fingerprintVersion knowingly,
	// and update this constant.
	const want = "0677fbe7dfce"
	if got := mustNamed(t, "EOLE_4_64").Fingerprint()[:12]; got != want {
		t.Errorf("EOLE_4_64 fingerprint prefix = %s, want %s (did Config change shape?)", got, want)
	}
}

func TestLabelForAnonymousConfigs(t *testing.T) {
	c := mustNamed(t, "EOLE_4_64")
	if c.Label() != "EOLE_4_64" {
		t.Fatalf("named label = %s", c.Label())
	}
	c.Name = ""
	lbl := c.Label()
	if !strings.HasPrefix(lbl, "custom-") || len(lbl) != len("custom-")+12 {
		t.Fatalf("anonymous label = %q", lbl)
	}
	if lbl != "custom-"+c.Fingerprint()[:12] {
		t.Fatalf("label %q not derived from fingerprint", lbl)
	}

	d := c
	d.IssueWidth++
	if d.Label() == lbl {
		t.Fatal("distinct anonymous configs share a label")
	}
}

func TestApplyOptionUnknownAndBadValues(t *testing.T) {
	c := Baseline6_64()
	if err := ApplyOption(&c, "WarpDrive", 1); err == nil || !strings.Contains(err.Error(), "unknown option") {
		t.Fatalf("unknown option: %v", err)
	}
	if err := ApplyOption(&c, "IssueWidth", 4.5); err == nil || !strings.Contains(err.Error(), "integer") {
		t.Fatalf("fractional value: %v", err)
	}
	if err := ApplyOption(&c, "LateExecution", 1); err == nil || !strings.Contains(err.Error(), "bool") {
		t.Fatalf("non-bool value: %v", err)
	}
	// Case-insensitive + alias resolution, float64 as JSON delivers it.
	if err := ApplyOption(&c, "iqsize", float64(48)); err != nil {
		t.Fatalf("alias apply: %v", err)
	}
	if c.IQSize != 48 {
		t.Fatalf("IQSize = %d", c.IQSize)
	}
}
