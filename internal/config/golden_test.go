package config

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// TestNamedConfigsMatchGolden pins every named configuration to the
// pre-redesign values captured in testdata/named_configs_golden.json:
// the builder re-implementation must be byte-identical to the
// hand-assembled structs it replaced.
func TestNamedConfigsMatchGolden(t *testing.T) {
	raw, err := os.ReadFile("testdata/named_configs_golden.json")
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	var golden map[string]Config
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("golden decode: %v", err)
	}
	if len(golden) != len(KnownNames()) {
		t.Fatalf("golden holds %d configs, KnownNames %d", len(golden), len(KnownNames()))
	}
	for _, name := range KnownNames() {
		want, ok := golden[name]
		if !ok {
			t.Errorf("golden file missing %s", name)
			continue
		}
		got, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%s): %v", name, err)
		}
		if got != want {
			t.Errorf("%s drifted from the pre-redesign value:\n got  %+v\n want %+v", name, got, want)
		}
		// Byte-level check through the canonical JSON encoding.
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if !bytes.Equal(gb, wb) {
			t.Errorf("%s JSON drifted:\n got  %s\n want %s", name, gb, wb)
		}
	}
}
