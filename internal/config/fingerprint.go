package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// fingerprintVersion is folded into every fingerprint. Bump it when
// the meaning of a Config field changes, so externally stored
// fingerprints (result caches keyed by them) are invalidated instead
// of silently colliding across semantics.
const fingerprintVersion = 1

// Fingerprint is the canonical content hash of a configuration:
// SHA-256 over the deterministic JSON encoding of its normalized form
// with the display Name cleared, rendered as lowercase hex. Two
// configs with identical machine semantics fingerprint identically no
// matter what they are called — including a raw config that left
// LEWidth to the commit-width default versus its builder twin that
// had it filled in — so the fingerprint is the cache identity of a
// simulation (the simulator is deterministic in the config's semantic
// fields).
func (c Config) Fingerprint() string {
	c = c.Normalized()
	c.Name = "" // a label, not machine semantics
	payload := struct {
		Version int    `json:"version"`
		Config  Config `json:"config"`
	}{fingerprintVersion, c}
	// encoding/json writes struct fields in declaration order and
	// Config is plain data (no maps, no pointers), so the encoding is
	// deterministic.
	b, err := json.Marshal(payload)
	if err != nil {
		// Config contains only marshalable scalar fields; reaching this
		// is a programming error, not an input error.
		panic(fmt.Sprintf("config: cannot marshal config: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Label returns the display name, or a fingerprint-derived synthetic
// label ("custom-<12 hex digits>") for anonymous configurations, so
// error messages and reports never show an empty config name and two
// distinct anonymous configs never collide on "".
func (c Config) Label() string {
	if c.Name != "" {
		return c.Name
	}
	return "custom-" + c.Fingerprint()[:12]
}
