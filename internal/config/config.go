// Package config defines machine configurations for the simulator and
// provides every named configuration the paper evaluates
// (Baseline_6_64, Baseline_VP_6_64, EOLE_4_64, OLE_4_64, ...).
package config

import (
	"fmt"
	"sort"

	"eole/internal/regfile"
)

// Config describes one machine. Zero values are invalid; start from
// Baseline6_64() or another constructor and tweak.
type Config struct {
	Name string

	// Front end (Table 1: 8-wide fetch with at most 2 taken
	// branches/cycle, decode, rename; deep 15-cycle front end).
	FetchWidth       int
	MaxTakenPerFetch int
	RenameWidth      int
	FetchToRenameLag int // cycles between fetch and rename of a µ-op
	FetchQueueSize   int

	// Out-of-order engine.
	IssueWidth int
	ROBSize    int
	IQSize     int
	LQSize     int
	SQSize     int

	// Functional units (Table 1).
	NumALU      int
	NumMulDiv   int
	NumFP       int
	NumFPMulDiv int
	NumMemPorts int

	// Retirement.
	CommitWidth int

	// Value prediction.
	ValuePrediction bool
	PredictorName   string // constructor name in internal/vpred

	// EOLE features.
	EarlyExecution bool
	EEDepth        int // ALU stages in the Early Execution block (Fig 2)
	LateExecution  bool
	LEBranches     bool // resolve very-high-confidence branches at LE/VT
	// LEReturns additionally resolves very-high-confidence returns and
	// register-indirect jumps at LE/VT — the §7 future-work extension
	// ("one could postpone the resolution of high confidence ones
	// until the LE stage"). Off in all paper configurations.
	LEReturns bool
	LEWidth   int // ALUs in the LE/VT stage (commit width by default)

	// Physical register file.
	PRF regfile.Config

	// Penalties. ValueMispredictPenalty is the fetch-restart cost of a
	// commit-time squash (the paper: 21 cycles minimum); the branch
	// penalty emerges from resolve time + FetchToRenameLag.
	ValueMispredictPenalty int
}

// Validate rejects structurally impossible configurations.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth < 1 || c.RenameWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1:
		return fmt.Errorf("config %s: widths must be positive", c.Name)
	case c.ROBSize < 1 || c.IQSize < 1 || c.LQSize < 1 || c.SQSize < 1:
		return fmt.Errorf("config %s: queue sizes must be positive", c.Name)
	case c.IQSize > c.ROBSize:
		return fmt.Errorf("config %s: IQ (%d) larger than ROB (%d)", c.Name, c.IQSize, c.ROBSize)
	case (c.EarlyExecution || c.LateExecution) && !c.ValuePrediction:
		return fmt.Errorf("config %s: EOLE requires value prediction", c.Name)
	case c.LEReturns && !c.LateExecution:
		return fmt.Errorf("config %s: LEReturns requires Late Execution", c.Name)
	case c.EarlyExecution && (c.EEDepth < 1 || c.EEDepth > 2):
		return fmt.Errorf("config %s: EE depth must be 1 or 2", c.Name)
	}
	return c.PRF.Validate()
}

// baseline returns the Table 1 machine: 6-issue, 64-entry IQ, 192-entry
// ROB, 19-cycle fetch-to-commit, no value prediction.
func baseline() Config {
	return Config{
		Name:             "Baseline_6_64",
		FetchWidth:       8,
		MaxTakenPerFetch: 2,
		RenameWidth:      8,
		FetchToRenameLag: 12, // deep front end: ~15 cycles to dispatch
		// The queue holds every µ-op in transit through the front-end
		// pipe (FetchWidth × FetchToRenameLag) plus buffering slack;
		// anything smaller throttles sustained rename bandwidth.
		FetchQueueSize: 8*12 + 32,
		IssueWidth:     6,
		ROBSize:        192,
		IQSize:         64,
		LQSize:         48,
		SQSize:         48,
		NumALU:         6,
		NumMulDiv:      4,
		NumFP:          6,
		NumFPMulDiv:    4,
		NumMemPorts:    4,
		CommitWidth:    8,
		PRF:            regfile.DefaultConfig(),

		ValueMispredictPenalty: 21,
	}
}

// Baseline6_64 is the no-VP reference machine of Table 1/Figure 6.
func Baseline6_64() Config { return baseline() }

// BaselineVP adds the VTAGE-2DStride predictor with validation at
// commit (one extra pre-commit LE/VT cycle) at the given issue width
// and IQ size: Baseline_VP_<issue>_<iq>.
func BaselineVP(issue, iq int) Config {
	c := baseline()
	c.Name = fmt.Sprintf("Baseline_VP_%d_%d", issue, iq)
	c.IssueWidth = issue
	c.IQSize = iq
	c.ValuePrediction = true
	c.PredictorName = "VTAGE-2DStride"
	return c
}

// EOLE returns the full {Early | OoO | Late} Execution machine:
// EOLE_<issue>_<iq>. Ports and banks are unconstrained (the Section 5
// idealization: EE/LE treat any group of up to 8 µ-ops per cycle).
func EOLE(issue, iq int) Config {
	c := BaselineVP(issue, iq)
	c.Name = fmt.Sprintf("EOLE_%d_%d", issue, iq)
	c.EarlyExecution = true
	c.EEDepth = 1
	c.LateExecution = true
	c.LEBranches = true
	c.LEWidth = c.CommitWidth
	return c
}

// OLE removes Early Execution (Late Execution only, §6.5).
func OLE(issue, iq int) Config {
	c := EOLE(issue, iq)
	c.Name = fmt.Sprintf("OLE_%d_%d", issue, iq)
	c.EarlyExecution = false
	c.EEDepth = 0
	return c
}

// EOE removes Late Execution (Early Execution only, §6.5).
func EOE(issue, iq int) Config {
	c := EOLE(issue, iq)
	c.Name = fmt.Sprintf("EOE_%d_%d", issue, iq)
	c.LateExecution = false
	c.LEBranches = false
	return c
}

// WithBanks applies PRF banking (Figure 10).
func WithBanks(c Config, banks int) Config {
	c.Name = fmt.Sprintf("%s_%dbanks", c.Name, banks)
	c.PRF.Banks = banks
	return c
}

// WithLEVTPorts caps LE/VT read ports per bank (Figure 11).
func WithLEVTPorts(c Config, ports int) Config {
	c.Name = fmt.Sprintf("%s_%dports", c.Name, ports)
	c.PRF.LEVTReadPortsPerBank = ports
	return c
}

// WithLEReturns enables the §7 extension: very-high-confidence returns
// and indirect jumps resolve at the LE/VT stage.
func WithLEReturns(c Config) Config {
	c.Name = c.Name + "_LEret"
	c.LEReturns = true
	return c
}

// EOLE4_64Practical is the headline practical design of Figure 12:
// EOLE_4_64 with a 4-bank PRF and 4 LE/VT read ports per bank.
func EOLE4_64Practical() Config {
	c := EOLE(4, 64)
	c.PRF.Banks = 4
	c.PRF.LEVTReadPortsPerBank = 4
	c.Name = "EOLE_4_64_4ports_4banks"
	return c
}

// Named resolves every configuration name used in the experiments.
func Named(name string) (Config, error) {
	all := map[string]func() Config{
		"Baseline_6_64":           Baseline6_64,
		"Baseline_VP_6_64":        func() Config { return BaselineVP(6, 64) },
		"Baseline_VP_4_64":        func() Config { return BaselineVP(4, 64) },
		"Baseline_VP_6_48":        func() Config { return BaselineVP(6, 48) },
		"Baseline_VP_8_64":        func() Config { return BaselineVP(8, 64) },
		"EOLE_6_64":               func() Config { return EOLE(6, 64) },
		"EOLE_4_64":               func() Config { return EOLE(4, 64) },
		"EOLE_6_48":               func() Config { return EOLE(6, 48) },
		"OLE_4_64":                func() Config { return OLE(4, 64) },
		"EOE_4_64":                func() Config { return EOE(4, 64) },
		"EOLE_4_64_4ports_4banks": EOLE4_64Practical,
	}
	f, ok := all[name]
	if !ok {
		names := make([]string, 0, len(all))
		for n := range all {
			names = append(names, n)
		}
		sort.Strings(names)
		return Config{}, fmt.Errorf("config: unknown configuration %q (known: %v)", name, names)
	}
	return f(), nil
}

// KnownNames lists the named configurations.
func KnownNames() []string {
	names := []string{
		"Baseline_6_64", "Baseline_VP_6_64", "Baseline_VP_4_64",
		"Baseline_VP_6_48", "Baseline_VP_8_64", "EOLE_6_64", "EOLE_4_64",
		"EOLE_6_48", "OLE_4_64", "EOE_4_64", "EOLE_4_64_4ports_4banks",
	}
	return names
}
