// Package config defines machine configurations for the simulator:
// a composable functional-option builder (New and the Option
// constructors), canonical content hashing (Config.Fingerprint),
// design-space sweep grids (Grid/Axis), and every named configuration
// the paper evaluates (Baseline_6_64, Baseline_VP_6_64, EOLE_4_64,
// OLE_4_64, ...) as sugar over the builder.
package config

import (
	"fmt"
	"sort"

	"eole/internal/isa"
	"eole/internal/regfile"
)

// Config describes one machine. Zero values are invalid; build one
// with New, Named, or another constructor and tweak. Config is plain
// data: it marshals to JSON losslessly and round-trips back to an
// identical value, so configurations are first-class wire and cache
// values.
type Config struct {
	Name string

	// Front end (Table 1: 8-wide fetch with at most 2 taken
	// branches/cycle, decode, rename; deep 15-cycle front end).
	FetchWidth       int
	MaxTakenPerFetch int
	RenameWidth      int
	FetchToRenameLag int // cycles between fetch and rename of a µ-op
	FetchQueueSize   int

	// Out-of-order engine.
	IssueWidth int
	ROBSize    int
	IQSize     int
	LQSize     int
	SQSize     int

	// Functional units (Table 1).
	NumALU      int
	NumMulDiv   int
	NumFP       int
	NumFPMulDiv int
	NumMemPorts int

	// Retirement.
	CommitWidth int

	// Value prediction.
	ValuePrediction bool
	PredictorName   string // constructor name in internal/vpred

	// EOLE features.
	EarlyExecution bool
	EEDepth        int // ALU stages in the Early Execution block (Fig 2)
	LateExecution  bool
	LEBranches     bool // resolve very-high-confidence branches at LE/VT
	// LEReturns additionally resolves very-high-confidence returns and
	// register-indirect jumps at LE/VT — the §7 future-work extension
	// ("one could postpone the resolution of high confidence ones
	// until the LE stage"). Off in all paper configurations.
	LEReturns bool
	LEWidth   int // ALUs in the LE/VT stage (commit width by default)

	// Physical register file.
	PRF regfile.Config

	// Penalties. ValueMispredictPenalty is the fetch-restart cost of a
	// commit-time squash (the paper: 21 cycles minimum); the branch
	// penalty emerges from resolve time + FetchToRenameLag.
	ValueMispredictPenalty int
}

// Structural ceilings and floors for Validate. Configurations arrive
// from untrusted sources (inline HTTP objects, JSON files), so every
// field the core sizes an allocation or a loop by must be bounded —
// generously, far beyond the paper's design space, but finitely.
const (
	maxWidth    = 64      // pipeline widths, FU counts, LE width
	maxQueue    = 1 << 16 // ROB/IQ/LQ/SQ entries
	maxFetchQ   = 1 << 20 // fetch-queue entries
	maxFrontLag = 1024    // fetch-to-rename cycles
	maxPRFRegs  = 1 << 20 // physical registers per file
	maxPRFBanks = 64      // the core packs bank indices into int8
	maxPenalty  = 1 << 16 // value-misprediction squash cycles
)

// Validate rejects structurally impossible configurations. Error
// messages name the builder option that sets the offending field, so
// a failed Grid cell or inline HTTP config points at its own spec.
// Every bound here is a hard precondition of internal/core: a config
// that passes Validate must never panic or wedge the simulator, since
// arbitrary configs are reachable over the eoled HTTP API.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth < 1 || c.RenameWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1:
		return fmt.Errorf("config %s: widths must be positive (FetchWidth %d, RenameWidth %d, IssueWidth %d, CommitWidth %d)",
			c.Label(), c.FetchWidth, c.RenameWidth, c.IssueWidth, c.CommitWidth)
	case c.FetchWidth > maxWidth || c.RenameWidth > maxWidth || c.IssueWidth > maxWidth || c.CommitWidth > maxWidth:
		return fmt.Errorf("config %s: widths must be <= %d (FetchWidth %d, RenameWidth %d, IssueWidth %d, CommitWidth %d)",
			c.Label(), maxWidth, c.FetchWidth, c.RenameWidth, c.IssueWidth, c.CommitWidth)
	case c.MaxTakenPerFetch < 1:
		return fmt.Errorf("config %s: MaxTakenPerFetch(%d) must be >= 1", c.Label(), c.MaxTakenPerFetch)
	case c.FetchToRenameLag < 0 || c.FetchToRenameLag > maxFrontLag:
		return fmt.Errorf("config %s: FetchToRenameLag(%d) must be in 0..%d", c.Label(), c.FetchToRenameLag, maxFrontLag)
	case c.ROBSize < 1 || c.IQSize < 1 || c.LQSize < 1 || c.SQSize < 1:
		return fmt.Errorf("config %s: queue sizes must be positive (ROB %d, IQ %d, LQ %d, SQ %d)",
			c.Label(), c.ROBSize, c.IQSize, c.LQSize, c.SQSize)
	case c.ROBSize > maxQueue || c.IQSize > maxQueue || c.LQSize > maxQueue || c.SQSize > maxQueue:
		return fmt.Errorf("config %s: queue sizes must be <= %d (ROB %d, IQ %d, LQ %d, SQ %d)",
			c.Label(), maxQueue, c.ROBSize, c.IQSize, c.LQSize, c.SQSize)
	case c.IQSize > c.ROBSize:
		return fmt.Errorf("config %s: IQ(%d) larger than ROB(%d)", c.Label(), c.IQSize, c.ROBSize)
	case c.CommitWidth > c.RenameWidth:
		return fmt.Errorf("config %s: CommitWidth(%d) exceeds RenameWidth(%d): retire can never outpace rename",
			c.Label(), c.CommitWidth, c.RenameWidth)
	case c.FetchQueueSize < c.FetchWidth*c.FetchToRenameLag || c.FetchQueueSize < c.FetchWidth:
		return fmt.Errorf("config %s: FetchQueue(%d) cannot cover the front-end pipe: need FetchWidth(%d) x FetchToRenameLag(%d) = %d entries",
			c.Label(), c.FetchQueueSize, c.FetchWidth, c.FetchToRenameLag, c.FetchWidth*c.FetchToRenameLag)
	case c.FetchQueueSize > maxFetchQ:
		return fmt.Errorf("config %s: FetchQueue(%d) must be <= %d", c.Label(), c.FetchQueueSize, maxFetchQ)
	case c.NumALU < 1 || c.NumMulDiv < 1 || c.NumFP < 1 || c.NumFPMulDiv < 1 || c.NumMemPorts < 1:
		return fmt.Errorf("config %s: every functional-unit count must be >= 1 (ALU %d, MulDiv %d, FP %d, FPMulDiv %d, MemPorts %d): the workloads use all unit classes",
			c.Label(), c.NumALU, c.NumMulDiv, c.NumFP, c.NumFPMulDiv, c.NumMemPorts)
	case c.NumALU > maxWidth || c.NumMulDiv > maxWidth || c.NumFP > maxWidth || c.NumFPMulDiv > maxWidth || c.NumMemPorts > maxWidth:
		return fmt.Errorf("config %s: functional-unit counts must be <= %d (ALU %d, MulDiv %d, FP %d, FPMulDiv %d, MemPorts %d)",
			c.Label(), maxWidth, c.NumALU, c.NumMulDiv, c.NumFP, c.NumFPMulDiv, c.NumMemPorts)
	case (c.EarlyExecution || c.LateExecution) && !c.ValuePrediction:
		return fmt.Errorf("config %s: EarlyExecution/LateExecution require ValuePrediction", c.Label())
	case c.LEReturns && !c.LateExecution:
		return fmt.Errorf("config %s: LEReturns requires LateExecution", c.Label())
	case c.EarlyExecution && (c.EEDepth < 1 || c.EEDepth > 2):
		return fmt.Errorf("config %s: EarlyExecution depth must be 1 or 2, got %d", c.Label(), c.EEDepth)
	case c.LEWidth < 0 || c.LEWidth > maxWidth:
		return fmt.Errorf("config %s: LEWidth(%d) must be in 0..%d", c.Label(), c.LEWidth, maxWidth)
	case c.ValueMispredictPenalty < 0 || c.ValueMispredictPenalty > maxPenalty:
		return fmt.Errorf("config %s: ValueMispredictPenalty(%d) must be in 0..%d", c.Label(), c.ValueMispredictPenalty, maxPenalty)
	case c.PRF.Banks > maxPRFBanks:
		return fmt.Errorf("config %s: PRFBanks(%d) must be <= %d", c.Label(), c.PRF.Banks, maxPRFBanks)
	case c.PRF.IntRegs > maxPRFRegs || c.PRF.FPRegs > maxPRFRegs:
		return fmt.Errorf("config %s: physical register files must be <= %d entries (INT %d, FP %d)",
			c.Label(), maxPRFRegs, c.PRF.IntRegs, c.PRF.FPRegs)
	case c.PRF.IntRegs < isa.NumIntRegs+c.RenameWidth || c.PRF.FPRegs < isa.NumFPRegs+c.RenameWidth:
		// Renaming pins one physical register per live architectural
		// register; anything below arch state + one rename group of
		// headroom cannot sustain forward progress.
		return fmt.Errorf("config %s: PRF too small (INT %d, FP %d): need at least %d INT and %d FP physical registers (architectural state + one rename group)",
			c.Label(), c.PRF.IntRegs, c.PRF.FPRegs, isa.NumIntRegs+c.RenameWidth, isa.NumFPRegs+c.RenameWidth)
	}
	return c.PRF.Validate()
}

// baseline returns the Table 1 machine: 6-issue, 64-entry IQ, 192-entry
// ROB, 19-cycle fetch-to-commit, no value prediction. It is the seed
// every builder chain starts from.
func baseline() Config {
	return Config{
		Name:             "Baseline_6_64",
		FetchWidth:       8,
		MaxTakenPerFetch: 2,
		RenameWidth:      8,
		FetchToRenameLag: 12, // deep front end: ~15 cycles to dispatch
		// The queue holds every µ-op in transit through the front-end
		// pipe (FetchWidth × FetchToRenameLag) plus buffering slack;
		// anything smaller throttles sustained rename bandwidth.
		FetchQueueSize: 8*12 + 32,
		IssueWidth:     6,
		ROBSize:        192,
		IQSize:         64,
		LQSize:         48,
		SQSize:         48,
		NumALU:         6,
		NumMulDiv:      4,
		NumFP:          6,
		NumFPMulDiv:    4,
		NumMemPorts:    4,
		CommitWidth:    8,
		PRF:            regfile.DefaultConfig(),

		ValueMispredictPenalty: 21,
	}
}

// Baseline6_64 is the no-VP reference machine of Table 1/Figure 6.
func Baseline6_64() Config {
	return mustNew(WithName("Baseline_6_64"))
}

// BaselineVP adds the VTAGE-2DStride predictor with validation at
// commit (one extra pre-commit LE/VT cycle) at the given issue width
// and IQ size: Baseline_VP_<issue>_<iq>.
func BaselineVP(issue, iq int) Config {
	return mustNew(
		WithName(fmt.Sprintf("Baseline_VP_%d_%d", issue, iq)),
		IssueWidth(issue), IQ(iq),
		ValuePrediction(true),
	)
}

// EOLE returns the full {Early | OoO | Late} Execution machine:
// EOLE_<issue>_<iq>. Ports and banks are unconstrained (the Section 5
// idealization: EE/LE treat any group of up to 8 µ-ops per cycle).
func EOLE(issue, iq int) Config {
	return mustNew(
		FromConfig(BaselineVP(issue, iq)),
		WithName(fmt.Sprintf("EOLE_%d_%d", issue, iq)),
		EarlyExecution(1),
		LateExecution(true), // LE width defaults to commit width
		LEBranches(true),
	)
}

// OLE removes Early Execution (Late Execution only, §6.5).
func OLE(issue, iq int) Config {
	return mustNew(
		FromConfig(EOLE(issue, iq)),
		WithName(fmt.Sprintf("OLE_%d_%d", issue, iq)),
		EarlyExecution(0),
	)
}

// EOE removes Late Execution (Early Execution only, §6.5).
func EOE(issue, iq int) Config {
	return mustNew(
		FromConfig(EOLE(issue, iq)),
		WithName(fmt.Sprintf("EOE_%d_%d", issue, iq)),
		LateExecution(false),
		LEBranches(false),
	)
}

// WithBanks applies PRF banking (Figure 10).
//
// Deprecated: build with New(FromConfig(c), PRFBanks(banks)) or a Grid
// axis {"option": "PRFBanks", ...}; retained for existing call sites.
func WithBanks(c Config, banks int) Config {
	c.Name = fmt.Sprintf("%s_%dbanks", c.Name, banks)
	c.PRF.Banks = banks
	return c
}

// WithLEVTPorts caps LE/VT read ports per bank (Figure 11).
//
// Deprecated: build with New(FromConfig(c), LEVTPorts(ports)) or a
// Grid axis {"option": "LEVTPorts", ...}; retained for existing call
// sites.
func WithLEVTPorts(c Config, ports int) Config {
	c.Name = fmt.Sprintf("%s_%dports", c.Name, ports)
	c.PRF.LEVTReadPortsPerBank = ports
	return c
}

// WithLEReturns enables the §7 extension: very-high-confidence returns
// and indirect jumps resolve at the LE/VT stage.
//
// Deprecated: build with New(FromConfig(c), LEReturns(true)); retained
// for existing call sites.
func WithLEReturns(c Config) Config {
	c.Name = c.Name + "_LEret"
	c.LEReturns = true
	return c
}

// EOLE4_64Practical is the headline practical design of Figure 12:
// EOLE_4_64 with a 4-bank PRF and 4 LE/VT read ports per bank.
func EOLE4_64Practical() Config {
	return mustNew(
		FromConfig(EOLE(4, 64)),
		WithName("EOLE_4_64_4ports_4banks"),
		PRFBanks(4),
		LEVTPorts(4),
	)
}

// Named resolves every configuration name used in the experiments.
func Named(name string) (Config, error) {
	all := map[string]func() Config{
		"Baseline_6_64":           Baseline6_64,
		"Baseline_VP_6_64":        func() Config { return BaselineVP(6, 64) },
		"Baseline_VP_4_64":        func() Config { return BaselineVP(4, 64) },
		"Baseline_VP_6_48":        func() Config { return BaselineVP(6, 48) },
		"Baseline_VP_8_64":        func() Config { return BaselineVP(8, 64) },
		"EOLE_6_64":               func() Config { return EOLE(6, 64) },
		"EOLE_4_64":               func() Config { return EOLE(4, 64) },
		"EOLE_6_48":               func() Config { return EOLE(6, 48) },
		"OLE_4_64":                func() Config { return OLE(4, 64) },
		"EOE_4_64":                func() Config { return EOE(4, 64) },
		"EOLE_4_64_4ports_4banks": EOLE4_64Practical,
	}
	f, ok := all[name]
	if !ok {
		names := make([]string, 0, len(all))
		for n := range all {
			names = append(names, n)
		}
		sort.Strings(names)
		return Config{}, fmt.Errorf("config: unknown configuration %q (known: %v)", name, names)
	}
	return f(), nil
}

// KnownNames lists the named configurations.
func KnownNames() []string {
	names := []string{
		"Baseline_6_64", "Baseline_VP_6_64", "Baseline_VP_4_64",
		"Baseline_VP_6_48", "Baseline_VP_8_64", "EOLE_6_64", "EOLE_4_64",
		"EOLE_6_48", "OLE_4_64", "EOE_4_64", "EOLE_4_64_4ports_4banks",
	}
	return names
}
