package config

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Option mutates a configuration under construction by New. Options
// apply in order; FromBaseline / FromNamed / FromConfig replace the
// whole configuration and therefore belong first.
type Option func(*Config) error

// New builds a configuration from functional options, starting from an
// anonymous copy of the Table 1 baseline. After the options apply, the
// LE/VT width defaults to the commit width when Late Execution is on
// (the Section 5 idealization), and the result is validated.
//
//	cfg, err := config.New(
//		config.IssueWidth(4), config.IQ(64),
//		config.ValuePrediction(true),
//		config.EarlyExecution(1), config.LateExecution(true),
//		config.LEBranches(true), config.PRFBanks(4), config.LEVTPorts(4),
//	)
//
// A Config built this way with no Name is "anonymous": it is labeled
// by its Fingerprint (see Label) everywhere a display name is needed.
func New(opts ...Option) (Config, error) {
	c := baseline()
	c.Name = ""
	for _, opt := range opts {
		if err := opt(&c); err != nil {
			return Config{}, err
		}
	}
	finalize(&c)
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// mustNew is New for the static named configurations, where an error
// is a programming bug.
func mustNew(opts ...Option) Config {
	c, err := New(opts...)
	if err != nil {
		panic(fmt.Sprintf("config: %v", err))
	}
	return c
}

// finalize applies cross-field defaults after the options have run:
// with Late Execution on and no explicit LE width, the LE/VT stage is
// as wide as commit (the paper's Section 5 model).
func finalize(c *Config) {
	if c.LateExecution && c.LEWidth == 0 {
		c.LEWidth = c.CommitWidth
	}
}

// Normalized returns c with the builder's cross-field defaults
// applied (currently: LEWidth defaults to the commit width when Late
// Execution is on). Every boundary that admits raw Config values —
// JSON files, inline HTTP objects — normalizes before validating, so
// all construction paths converge on the same machine; Fingerprint
// also hashes the normalized form, making a raw config and its
// builder twin the same cacheable simulation.
func (c Config) Normalized() Config {
	finalize(&c)
	return c
}

// FromBaseline resets the configuration under construction to an
// anonymous copy of the Table 1 baseline (no value prediction).
func FromBaseline() Option {
	return func(c *Config) error {
		*c = baseline()
		c.Name = ""
		return nil
	}
}

// FromNamed starts from a named paper configuration.
func FromNamed(name string) Option {
	return func(c *Config) error {
		nc, err := Named(name)
		if err != nil {
			return err
		}
		*c = nc
		return nil
	}
}

// FromConfig starts from a copy of an existing configuration.
func FromConfig(base Config) Option {
	return func(c *Config) error {
		*c = base
		return nil
	}
}

// WithName sets the display name. The name is a label only: it is
// excluded from Fingerprint, so renaming a configuration does not
// change its cache identity.
func WithName(name string) Option {
	return func(c *Config) error {
		c.Name = name
		return nil
	}
}

// set builds an Option that routes through the by-name option
// registry, so the functional and the serialized (Grid/HTTP) forms of
// an option share one implementation.
func set(name string, v any) Option {
	return func(c *Config) error { return ApplyOption(c, name, v) }
}

// IssueWidth sets the out-of-order issue width.
func IssueWidth(n int) Option { return set("IssueWidth", n) }

// IQ sets the unified instruction-queue size.
func IQ(n int) Option { return set("IQ", n) }

// ROB sets the reorder-buffer size.
func ROB(n int) Option { return set("ROB", n) }

// LQ sets the load-queue size.
func LQ(n int) Option { return set("LQ", n) }

// SQ sets the store-queue size.
func SQ(n int) Option { return set("SQ", n) }

// FetchWidth sets the front-end fetch width.
func FetchWidth(n int) Option { return set("FetchWidth", n) }

// RenameWidth sets the rename width.
func RenameWidth(n int) Option { return set("RenameWidth", n) }

// CommitWidth sets the retirement width.
func CommitWidth(n int) Option { return set("CommitWidth", n) }

// FetchQueue sets the fetch-queue depth. It must cover the front-end
// pipe (FetchWidth × FetchToRenameLag) or Validate rejects the config.
func FetchQueue(n int) Option { return set("FetchQueue", n) }

// ValuePrediction toggles the value predictor (the VTAGE-2DStride
// hybrid unless Predictor selected another one).
func ValuePrediction(on bool) Option { return set("ValuePrediction", on) }

// Predictor enables value prediction with the named predictor
// constructor from internal/vpred (e.g. "VTAGE-2DStride", "VTAGE").
func Predictor(name string) Option { return set("Predictor", name) }

// EarlyExecution sets the Early Execution ALU depth: 0 disables the
// block, 1 or 2 enable it with that many cascaded stages (Figure 2).
func EarlyExecution(depth int) Option { return set("EarlyExecution", depth) }

// LateExecution toggles the Late Execution / Validation and Training
// pre-commit stage.
func LateExecution(on bool) Option { return set("LateExecution", on) }

// LEBranches toggles resolving very-high-confidence branches at LE/VT.
func LEBranches(on bool) Option { return set("LEBranches", on) }

// LEReturns toggles the §7 extension: very-high-confidence returns and
// indirect jumps resolve at LE/VT.
func LEReturns(on bool) Option { return set("LEReturns", on) }

// LEWidth caps the ALUs in the LE/VT stage (0 = commit width).
func LEWidth(n int) Option { return set("LEWidth", n) }

// PRFBanks splits each physical register file into n banks
// (Figure 10).
func PRFBanks(n int) Option { return set("PRFBanks", n) }

// LEVTPorts caps the LE/VT read ports per PRF bank (Figure 11;
// 0 = unconstrained).
func LEVTPorts(n int) Option { return set("LEVTPorts", n) }

// optionSpec is one registry entry: a canonical name, the value kind
// it accepts, and the field mutation.
type optionSpec struct {
	name    string // canonical spelling (used in synthesized grid names)
	aliases []string
	kind    string // "int", "bool" or "string" (for error messages)
	apply   func(c *Config, v any) error
}

// optionSpecs is the registry behind both the functional options and
// the serialized Grid / HTTP axis form. Every entry is a design-space
// axis of the paper's evaluation or a structural parameter Validate
// understands.
var optionSpecs = []*optionSpec{
	intOpt("IssueWidth", nil, 1, func(c *Config, n int) { c.IssueWidth = n }),
	intOpt("IQ", []string{"IQSize"}, 1, func(c *Config, n int) { c.IQSize = n }),
	intOpt("ROB", []string{"ROBSize"}, 1, func(c *Config, n int) { c.ROBSize = n }),
	intOpt("LQ", []string{"LQSize"}, 1, func(c *Config, n int) { c.LQSize = n }),
	intOpt("SQ", []string{"SQSize"}, 1, func(c *Config, n int) { c.SQSize = n }),
	intOpt("FetchWidth", nil, 1, func(c *Config, n int) { c.FetchWidth = n }),
	intOpt("RenameWidth", nil, 1, func(c *Config, n int) { c.RenameWidth = n }),
	intOpt("CommitWidth", nil, 1, func(c *Config, n int) { c.CommitWidth = n }),
	intOpt("FetchQueue", []string{"FetchQueueSize"}, 1, func(c *Config, n int) { c.FetchQueueSize = n }),
	intOpt("FetchToRenameLag", nil, 0, func(c *Config, n int) { c.FetchToRenameLag = n }),
	intOpt("MaxTakenPerFetch", nil, 1, func(c *Config, n int) { c.MaxTakenPerFetch = n }),
	intOpt("LEWidth", nil, 0, func(c *Config, n int) { c.LEWidth = n }),
	intOpt("PRFBanks", []string{"Banks"}, 1, func(c *Config, n int) { c.PRF.Banks = n }),
	intOpt("LEVTPorts", []string{"LEVTReadPortsPerBank"}, 0, func(c *Config, n int) { c.PRF.LEVTReadPortsPerBank = n }),
	{
		name: "EarlyExecution", kind: "int",
		apply: func(c *Config, v any) error {
			n, err := toInt(v)
			if err != nil {
				return err
			}
			if n < 0 || n > 2 {
				return fmt.Errorf("EarlyExecution(%d): depth must be 0 (off), 1 or 2", n)
			}
			c.EarlyExecution = n > 0
			c.EEDepth = n
			return nil
		},
	},
	boolOpt("ValuePrediction", func(c *Config, on bool) {
		c.ValuePrediction = on
		if on && c.PredictorName == "" {
			c.PredictorName = "VTAGE-2DStride"
		}
		if !on {
			c.PredictorName = ""
		}
	}),
	boolOpt("LateExecution", func(c *Config, on bool) { c.LateExecution = on }),
	boolOpt("LEBranches", func(c *Config, on bool) { c.LEBranches = on }),
	boolOpt("LEReturns", func(c *Config, on bool) { c.LEReturns = on }),
	{
		name: "Predictor", aliases: []string{"PredictorName"}, kind: "string",
		apply: func(c *Config, v any) error {
			s, ok := v.(string)
			if !ok {
				return fmt.Errorf("Predictor: want a predictor name, got %T", v)
			}
			c.ValuePrediction = true
			c.PredictorName = s
			return nil
		},
	},
}

func intOpt(name string, aliases []string, min int, setf func(*Config, int)) *optionSpec {
	return &optionSpec{
		name: name, aliases: aliases, kind: "int",
		apply: func(c *Config, v any) error {
			n, err := toInt(v)
			if err != nil {
				return fmt.Errorf("%s: %v", name, err)
			}
			if n < min {
				return fmt.Errorf("%s(%d): must be >= %d", name, n, min)
			}
			setf(c, n)
			return nil
		},
	}
}

func boolOpt(name string, setf func(*Config, bool)) *optionSpec {
	return &optionSpec{
		name: name, kind: "bool",
		apply: func(c *Config, v any) error {
			b, err := toBool(v)
			if err != nil {
				return fmt.Errorf("%s: %v", name, err)
			}
			setf(c, b)
			return nil
		},
	}
}

// optionIndex maps lower-cased names and aliases to their spec.
var optionIndex = func() map[string]*optionSpec {
	idx := make(map[string]*optionSpec)
	for _, spec := range optionSpecs {
		idx[strings.ToLower(spec.name)] = spec
		for _, a := range spec.aliases {
			idx[strings.ToLower(a)] = spec
		}
	}
	return idx
}()

// lookupOption resolves an option name (case-insensitive, aliases
// included) to its registry entry.
func lookupOption(name string) (*optionSpec, bool) {
	spec, ok := optionIndex[strings.ToLower(name)]
	return spec, ok
}

// ApplyOption applies a registry option by name — the serialized
// counterpart of the functional options, used by Grid axes and inline
// HTTP config specs. Integer values may arrive as float64 (JSON
// numbers) as long as they are integral.
func ApplyOption(c *Config, name string, v any) error {
	spec, ok := lookupOption(name)
	if !ok {
		return fmt.Errorf("config: unknown option %q (known: %s)", name, strings.Join(OptionNames(), ", "))
	}
	if err := spec.apply(c, v); err != nil {
		return fmt.Errorf("config: option %w", err)
	}
	return nil
}

// OptionNames lists the canonical registry option names, sorted.
func OptionNames() []string {
	names := make([]string, 0, len(optionSpecs))
	for _, spec := range optionSpecs {
		names = append(names, spec.name)
	}
	sort.Strings(names)
	return names
}

// toInt accepts the integer encodings an option value can arrive in:
// Go ints from functional options, float64 from decoded JSON.
func toInt(v any) (int, error) {
	switch n := v.(type) {
	case int:
		return n, nil
	case int64:
		return int(n), nil
	case uint64:
		return int(n), nil
	case float64:
		if n != math.Trunc(n) || math.IsInf(n, 0) || math.IsNaN(n) {
			return 0, fmt.Errorf("want an integer, got %v", n)
		}
		return int(n), nil
	}
	return 0, fmt.Errorf("want an integer, got %T", v)
}

func toBool(v any) (bool, error) {
	if b, ok := v.(bool); ok {
		return b, nil
	}
	return false, fmt.Errorf("want a bool, got %T", v)
}
