package config

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestGridExpansionOrderAndNames(t *testing.T) {
	g := Grid{
		BaseName: "EOLE_4_64",
		Axes: []Axis{
			{Option: "PRFBanks", Values: []any{2, 4}},
			{Option: "LEVTPorts", Values: []any{2, 3, 4}},
		},
	}
	if g.Size() != 6 {
		t.Fatalf("Size = %d", g.Size())
	}
	cfgs, err := g.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 6 {
		t.Fatalf("expanded %d configs", len(cfgs))
	}
	// Row-major: first axis slowest.
	wantNames := []string{
		"EOLE_4_64_PRFBanks2_LEVTPorts2",
		"EOLE_4_64_PRFBanks2_LEVTPorts3",
		"EOLE_4_64_PRFBanks2_LEVTPorts4",
		"EOLE_4_64_PRFBanks4_LEVTPorts2",
		"EOLE_4_64_PRFBanks4_LEVTPorts3",
		"EOLE_4_64_PRFBanks4_LEVTPorts4",
	}
	for i, c := range cfgs {
		if c.Name != wantNames[i] {
			t.Errorf("cell %d named %q, want %q", i, c.Name, wantNames[i])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("cell %d invalid: %v", i, err)
		}
	}
	if cfgs[0].PRF.Banks != 2 || cfgs[0].PRF.LEVTReadPortsPerBank != 2 {
		t.Errorf("cell 0 fields wrong: %+v", cfgs[0].PRF)
	}
	if cfgs[5].PRF.Banks != 4 || cfgs[5].PRF.LEVTReadPortsPerBank != 4 {
		t.Errorf("cell 5 fields wrong: %+v", cfgs[5].PRF)
	}
}

func TestGridDefaultsAndBases(t *testing.T) {
	// Zero grid: just the Table 1 baseline.
	cfgs, err := Grid{}.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 1 || cfgs[0] != Baseline6_64() {
		t.Fatalf("zero grid = %+v", cfgs)
	}

	// Inline base.
	base := EOLE(6, 64)
	cfgs, err = Grid{Base: &base, Axes: []Axis{{Option: "IQ", Values: []any{48, 64}}}}.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 || cfgs[0].IQSize != 48 || cfgs[1].IQSize != 64 {
		t.Fatalf("inline-base grid wrong: %+v", cfgs)
	}
	if !strings.HasPrefix(cfgs[0].Name, "EOLE_6_64_IQ") {
		t.Fatalf("cell name %q", cfgs[0].Name)
	}

	// Both bases set: rejected.
	if _, err := (Grid{Base: &base, BaseName: "EOLE_4_64"}).Configs(); err == nil {
		t.Fatal("base + base_name must error")
	}
	// Unknown base name.
	if _, err := (Grid{BaseName: "bogus"}).Configs(); err == nil {
		t.Fatal("unknown base_name must error")
	}
}

func TestGridErrors(t *testing.T) {
	cases := []struct {
		g       Grid
		wantSub string
	}{
		{Grid{Axes: []Axis{{Option: "", Values: []any{1}}}}, "no option name"},
		{Grid{Axes: []Axis{{Option: "WarpDrive", Values: []any{1}}}}, "unknown option"},
		{Grid{Axes: []Axis{{Option: "IQ", Values: nil}}}, "no values"},
		{Grid{Axes: []Axis{{Option: "IQ", Values: []any{"wat"}}}}, "integer"},
		// Valid option, structurally impossible cell (IQ > ROB).
		{Grid{Axes: []Axis{{Option: "IQ", Values: []any{1024}}}}, "larger than ROB"},
	}
	for i, tc := range cases {
		_, err := tc.g.Configs()
		if err == nil {
			t.Errorf("case %d: bad grid accepted", i)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("case %d: error %q missing %q", i, err, tc.wantSub)
		}
	}
}

// TestGridJSONRoundTrip pins the wire form: the same grid value drives
// the Go API and /v1/sweep.
func TestGridJSONRoundTrip(t *testing.T) {
	wire := []byte(`{"base_name":"EOLE_4_64","axes":[{"option":"PRFBanks","values":[2,4,8]}]}`)
	var g Grid
	if err := json.Unmarshal(wire, &g); err != nil {
		t.Fatal(err)
	}
	cfgs, err := g.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 3 || cfgs[2].PRF.Banks != 8 {
		t.Fatalf("wire grid expanded wrong: %+v", cfgs)
	}
	// JSON numbers arrive as float64; the expansion must treat them as
	// the equivalent ints (same names, same fingerprints).
	direct := Grid{BaseName: "EOLE_4_64", Axes: []Axis{{Option: "PRFBanks", Values: []any{2, 4, 8}}}}
	dcfgs, err := direct.Configs()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if cfgs[i] != dcfgs[i] {
			t.Errorf("cell %d differs between wire and Go axis values", i)
		}
	}

	back, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var g2 Grid
	if err := json.Unmarshal(back, &g2); err != nil {
		t.Fatal(err)
	}
	c2, err := g2.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(c2) != len(cfgs) {
		t.Fatalf("re-decoded grid expands to %d cells, want %d", len(c2), len(cfgs))
	}
	for i := range cfgs {
		if c2[i] != cfgs[i] {
			t.Errorf("cell %d differs after grid JSON round trip", i)
		}
	}
}

// TestGridSizeOverflowSaturates: a hostile grid whose axis product
// exceeds int range must saturate (not wrap past a caller's cell
// budget), and Configs must refuse to expand it.
func TestGridSizeOverflowSaturates(t *testing.T) {
	vals := make([]any, 200)
	for i := range vals {
		vals[i] = i + 1
	}
	g := Grid{}
	for i := 0; i < 9; i++ { // 200^9 ≈ 5.1e20 > 2^63
		g.Axes = append(g.Axes, Axis{Option: "IQ", Values: vals})
	}
	if size := g.Size(); size != math.MaxInt {
		t.Fatalf("Size = %d, want saturation at MaxInt", size)
	}
	if _, err := g.Configs(); err == nil || !strings.Contains(err.Error(), "cell limit") {
		t.Fatalf("oversized grid must refuse to expand, got %v", err)
	}
	// Just over the cap but far from overflow: also refused.
	over := Grid{Axes: []Axis{
		{Option: "IQ", Values: make([]any, 1100)},
		{Option: "ROB", Values: make([]any, 1100)},
	}}
	if _, err := over.Configs(); err == nil || !strings.Contains(err.Error(), "cell limit") {
		t.Fatalf("over-cap grid must refuse to expand, got %v", err)
	}
}

// TestGridEEDepthAxis covers the Figure 2 style axis over the EE depth
// including the off value.
func TestGridEEDepthAxis(t *testing.T) {
	g := Grid{BaseName: "EOLE_6_64", Axes: []Axis{{Option: "EarlyExecution", Values: []any{0, 1, 2}}}}
	cfgs, err := g.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if cfgs[0].EarlyExecution || cfgs[0].EEDepth != 0 {
		t.Errorf("depth 0 must disable EE: %+v", cfgs[0])
	}
	if !cfgs[2].EarlyExecution || cfgs[2].EEDepth != 2 {
		t.Errorf("depth 2 wrong: %+v", cfgs[2])
	}
	// The depth-1 cell is EOLE_6_64 under another name.
	if cfgs[1].Fingerprint() != mustNamed(t, "EOLE_6_64").Fingerprint() {
		t.Error("depth-1 cell must fingerprint-match EOLE_6_64")
	}
}
