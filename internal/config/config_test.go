package config

import (
	"strings"
	"testing"
)

func TestAllNamedConfigsValid(t *testing.T) {
	for _, name := range KnownNames() {
		c, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%s): %v", name, err)
		}
		if c.Name != name {
			t.Errorf("Named(%s).Name = %s", name, c.Name)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
	if _, err := Named("bogus"); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestPaperConfigurationsMatchTable1(t *testing.T) {
	b := Baseline6_64()
	if b.IssueWidth != 6 || b.IQSize != 64 || b.ROBSize != 192 ||
		b.LQSize != 48 || b.SQSize != 48 || b.FetchWidth != 8 ||
		b.RenameWidth != 8 || b.CommitWidth != 8 {
		t.Fatalf("baseline does not match Table 1: %+v", b)
	}
	if b.NumALU != 6 || b.NumMulDiv != 4 || b.NumFP != 6 || b.NumFPMulDiv != 4 || b.NumMemPorts != 4 {
		t.Fatal("functional units do not match Table 1")
	}
	if b.ValuePrediction || b.EarlyExecution || b.LateExecution {
		t.Fatal("baseline must have no VP/EOLE")
	}
	if b.PRF.IntRegs != 256 || b.PRF.FPRegs != 256 {
		t.Fatal("PRF does not match Table 1 (256/256)")
	}
}

func TestVPBaselineAndEOLEDerivation(t *testing.T) {
	vp := BaselineVP(4, 48)
	if vp.Name != "Baseline_VP_4_48" || vp.IssueWidth != 4 || vp.IQSize != 48 {
		t.Fatalf("BaselineVP wrong: %+v", vp)
	}
	if !vp.ValuePrediction || vp.PredictorName != "VTAGE-2DStride" {
		t.Fatal("VP baseline must use the Table 2 hybrid")
	}
	if vp.EarlyExecution || vp.LateExecution {
		t.Fatal("VP baseline must not enable EOLE blocks")
	}

	e := EOLE(4, 64)
	if !e.EarlyExecution || !e.LateExecution || !e.LEBranches || e.EEDepth != 1 {
		t.Fatalf("EOLE config wrong: %+v", e)
	}
	if e.LEWidth != e.CommitWidth {
		t.Fatal("Section 5 idealization: LE width = commit width")
	}

	o := OLE(4, 64)
	if o.EarlyExecution || !o.LateExecution {
		t.Fatal("OLE = late execution only")
	}
	eo := EOE(4, 64)
	if !eo.EarlyExecution || eo.LateExecution || eo.LEBranches {
		t.Fatal("EOE = early execution only")
	}
}

func TestPracticalConfig(t *testing.T) {
	c := EOLE4_64Practical()
	if c.PRF.Banks != 4 || c.PRF.LEVTReadPortsPerBank != 4 {
		t.Fatalf("practical config must be 4 banks / 4 ports: %+v", c.PRF)
	}
	if !strings.Contains(c.Name, "4ports_4banks") {
		t.Fatalf("name %q", c.Name)
	}
}

func TestWithBanksAndPorts(t *testing.T) {
	c := WithBanks(EOLE(4, 64), 8)
	if c.PRF.Banks != 8 || !strings.Contains(c.Name, "8banks") {
		t.Fatalf("WithBanks wrong: %+v", c)
	}
	c = WithLEVTPorts(c, 3)
	if c.PRF.LEVTReadPortsPerBank != 3 || !strings.Contains(c.Name, "3ports") {
		t.Fatalf("WithLEVTPorts wrong: %+v", c)
	}
}

func TestValidationCatchesBadConfigs(t *testing.T) {
	cases := []func(c *Config){
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.IQSize = c.ROBSize + 1 },
		func(c *Config) { c.EarlyExecution = true; c.ValuePrediction = false },
		func(c *Config) { c.EEDepth = 3 },
		func(c *Config) { c.PRF.Banks = 3 },
	}
	for i, mutate := range cases {
		c := EOLE(4, 64)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestFetchQueueCoversFrontEndPipe(t *testing.T) {
	// Regression for the rename-bandwidth ceiling: the queue must hold
	// at least FetchWidth * FetchToRenameLag µ-ops.
	b := Baseline6_64()
	if b.FetchQueueSize < b.FetchWidth*b.FetchToRenameLag {
		t.Fatalf("fetch queue %d smaller than front-end pipe %d",
			b.FetchQueueSize, b.FetchWidth*b.FetchToRenameLag)
	}
}
