package config

import (
	"errors"
	"fmt"
	"math"
)

// Axis is one dimension of a design-space sweep: a registry option
// name (see OptionNames) and the values it takes. The JSON form is
// what /v1/sweep accepts on the wire:
//
//	{"option": "PRFBanks", "values": [2, 4, 8]}
type Axis struct {
	Option string `json:"option"`
	Values []any  `json:"values"`
}

// Grid is a first-class sweep specification: a base configuration and
// a set of axes whose cartesian product Configs expands into validated
// configurations. Exactly one of BaseName (a named paper config) or
// Base (an inline config) selects the starting point; both empty means
// the Table 1 baseline. The zero Grid expands to just the baseline.
//
// Grids are plain data and round-trip through JSON, so the same value
// drives the Go API, the eoled HTTP API and config files on disk.
type Grid struct {
	BaseName string  `json:"base_name,omitempty"`
	Base     *Config `json:"base,omitempty"`
	Axes     []Axis  `json:"axes,omitempty"`
}

// maxGridCells bounds one Configs expansion. Grids arrive from
// untrusted HTTP bodies, where a few axes of a few hundred values
// each would otherwise multiply into an unbounded allocation.
const maxGridCells = 1 << 20

// Size returns the number of configurations Configs would produce
// (the product of the axis lengths), without expanding them — callers
// enforcing a cell budget check this first. An axis with no values
// makes the grid empty; a product beyond the representable range
// saturates at math.MaxInt instead of wrapping.
func (g Grid) Size() int {
	size := 1
	for _, ax := range g.Axes {
		n := len(ax.Values)
		if n == 0 {
			return 0
		}
		if size > math.MaxInt/n {
			return math.MaxInt
		}
		size *= n
	}
	return size
}

// base resolves the starting configuration.
func (g Grid) base() (Config, error) {
	switch {
	case g.Base != nil && g.BaseName != "":
		return Config{}, errors.New("config: grid sets both base and base_name")
	case g.Base != nil:
		return *g.Base, nil
	case g.BaseName != "":
		return Named(g.BaseName)
	}
	return baseline(), nil
}

// Configs cartesian-expands the grid in row-major order (the first
// axis varies slowest, matching nested loops over the axes in
// declaration order). Every produced configuration is named
// "<base>_<Option><value>..." after the base's label and the axis
// values that shaped it, finalized (LE width defaulting) and
// validated; the first invalid cell aborts the expansion with an
// error naming the cell.
func (g Grid) Configs() ([]Config, error) {
	base, err := g.base()
	if err != nil {
		return nil, err
	}
	if n := g.Size(); n > maxGridCells {
		return nil, fmt.Errorf("config: grid expands to %d cells, exceeding the %d-cell limit", n, maxGridCells)
	}
	specs := make([]*optionSpec, len(g.Axes))
	for i, ax := range g.Axes {
		if ax.Option == "" {
			return nil, fmt.Errorf("config: grid axis %d has no option name", i)
		}
		spec, ok := lookupOption(ax.Option)
		if !ok {
			return nil, fmt.Errorf("config: grid axis %d: unknown option %q", i, ax.Option)
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("config: grid axis %s has no values", spec.name)
		}
		specs[i] = spec
	}

	out := make([]Config, 0, g.Size())
	idx := make([]int, len(g.Axes))
	for {
		c := base
		name := base.Label()
		for i, ax := range g.Axes {
			v := ax.Values[idx[i]]
			if err := specs[i].apply(&c, v); err != nil {
				return nil, fmt.Errorf("config: grid axis %s value %v: %w", specs[i].name, v, err)
			}
			name += axisSuffix(specs[i], v)
		}
		finalize(&c)
		c.Name = name
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("config: grid cell %s: %w", name, err)
		}
		out = append(out, c)

		// Odometer increment: the last axis spins fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(g.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out, nil
		}
	}
}

// axisSuffix renders one axis value into the synthesized cell name:
// "_PRFBanks4" for scalars, "_LEReturns" / "_noLEReturns" for bools.
func axisSuffix(spec *optionSpec, v any) string {
	if b, err := toBool(v); err == nil {
		if b {
			return "_" + spec.name
		}
		return "_no" + spec.name
	}
	if n, err := toInt(v); err == nil {
		return fmt.Sprintf("_%s%d", spec.name, n)
	}
	return fmt.Sprintf("_%s%v", spec.name, v)
}
