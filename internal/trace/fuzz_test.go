package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"eole/internal/prog"
	"eole/internal/workload"
)

// FuzzTraceRead feeds arbitrary bytes through the whole untrusted
// path — file decode, header validation, and (when a trace passes the
// checksum) the full payload decode against its workload's program.
// The contract under attack: corrupted, truncated or hostile inputs
// must return errors; they must never panic, hang, or allocate
// proportionally to a header-claimed count instead of the input size.
//
// The seed corpus holds real recordings (including a complete halting
// program and a zero-bytes-per-µ-op jump loop) plus targeted
// mutations: truncations, a bad magic, and a header claiming 2^60
// records — the over-allocation case the decoder caps.
func FuzzTraceRead(f *testing.F) {
	encode := func(t *Trace) []byte {
		var buf bytes.Buffer
		if err := t.Write(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}

	// Real recordings: a mixed kernel and a memory-heavy one.
	for _, wl := range []string{"gzip", "mcf"} {
		w, err := workload.ByName(wl)
		if err != nil {
			f.Fatal(err)
		}
		seed := encode(Record(w, 2_000))
		f.Add(seed)
		f.Add(seed[:len(seed)/2]) // truncated mid-payload
		f.Add(seed[:6])           // truncated mid-header
		bad := bytes.Clone(seed)
		bad[0] = 'X' // magic mismatch
		f.Add(bad)
		flip := bytes.Clone(seed)
		flip[len(flip)/2] ^= 0x40 // payload bit flip (CRC must catch)
		f.Add(flip)
	}

	// A jump-only loop: zero payload bytes per µ-op, the shape that
	// legitimately has Count >> len(payload).
	{
		b := prog.NewBuilder("spin")
		b.Label("top")
		b.Jmp("top")
		w := workload.Workload{Name: "spin", Short: "spin", Program: b.MustBuild()}
		f.Add(encode(Record(w, 1_000)))
	}

	// A hostile header claiming 2^60 records over a tiny body.
	{
		hdr := []byte{'E', 'O', 'L', 'T'}
		hdr = append(hdr, 1) // version
		hdr = append(hdr, 4) // name length
		hdr = append(hdr, "gzip"...)
		hdr = binary.LittleEndian.AppendUint64(hdr, 0) // program hash
		hdr = binary.AppendUvarint(hdr, 1<<60)         // count
		hdr = append(hdr, 0)                           // incomplete
		hdr = binary.AppendUvarint(hdr, 0)             // payload length
		f.Add(hdr)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the expected outcome for noise
		}
		// The header parsed and the checksum matched. Everything past
		// this point must still be total: resolving the workload can
		// fail (unknown name, program drift), and decoding can fail
		// (payload desynchronized from the program), but neither may
		// panic or allocate beyond the input's scale.
		src, err := tr.NewSource()
		if err != nil {
			return
		}
		var u prog.MicroOp
		var n uint64
		for src.Next(&u) {
			n++
		}
		if n != tr.Count {
			t.Errorf("decode yielded %d µ-ops for a trace claiming %d past all checks", n, tr.Count)
		}
	})
}
