package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"eole/internal/isa"
	"eole/internal/prog"
	"eole/internal/workload"
)

// mustWorkload resolves a registered benchmark or fails the test.
func mustWorkload(t testing.TB, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestReplayMatchesInterpreter replays a recorded trace µ-op by µ-op
// against a fresh functional machine and requires exact equality of
// every field — the property the byte-identical-report guarantee
// rests on.
func TestReplayMatchesInterpreter(t *testing.T) {
	const n = 30_000
	for _, name := range []string{"gzip", "mcf", "namd", "gcc", "vortex", "milc"} {
		t.Run(name, func(t *testing.T) {
			w := mustWorkload(t, name)
			tr := Record(w, n)
			if tr.Count != n {
				t.Fatalf("recorded %d µ-ops, want %d", tr.Count, n)
			}
			src, err := tr.NewSource()
			if err != nil {
				t.Fatal(err)
			}
			m := w.NewMachine()
			var got prog.MicroOp
			for i := 0; i < n; i++ {
				want, ok := m.Step()
				if !ok {
					t.Fatalf("machine exhausted at %d", i)
				}
				if !src.Next(&got) {
					t.Fatalf("replay exhausted at %d", i)
				}
				if got != want {
					t.Fatalf("µ-op %d diverges:\n  replay %+v\n  exec   %+v", i, got, want)
				}
			}
			if src.Next(&got) {
				t.Fatal("replay yields µ-ops past the recorded count")
			}
		})
	}
}

// TestRecordDeterministic checks that recording is reproducible, so
// content-addressed trace sharing is sound.
func TestRecordDeterministic(t *testing.T) {
	w := mustWorkload(t, "crafty")
	a, b := Record(w, 10_000), Record(w, 10_000)
	if !bytes.Equal(a.payload, b.payload) || a.Count != b.Count || a.progHash != b.progHash {
		t.Fatal("two recordings of the same workload differ")
	}
}

// TestEncodingDensity guards the compactness claim: the varint packing
// should stay well under 16 bytes per µ-op on every workload (typical
// is 2-4; raw MicroOps are ~90 bytes).
func TestEncodingDensity(t *testing.T) {
	for _, w := range workload.All() {
		tr := Record(w, 20_000)
		perOp := float64(tr.SizeBytes()) / float64(tr.Count)
		if perOp > 16 {
			t.Errorf("%s: %.1f bytes/µ-op, want < 16", w.Short, perOp)
		}
	}
}

// TestWriteReadRoundTrip serializes a trace and checks that the
// decoded copy replays identically to the original.
func TestWriteReadRoundTrip(t *testing.T) {
	w := mustWorkload(t, "bzip2")
	tr := Record(w, 20_000)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != tr.Workload || got.Count != tr.Count ||
		got.Complete != tr.Complete || got.progHash != tr.progHash ||
		!bytes.Equal(got.payload, tr.payload) {
		t.Fatalf("round-trip mismatch: got %+v want %+v", got, tr)
	}
	// The read-back trace has no seeded decode cache, so replaying it
	// exercises the payload decoder end to end; compare against the
	// interpreter µ-op by µ-op.
	src, err := got.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	m := w.NewMachine()
	var ru prog.MicroOp
	for i := uint64(0); i < got.Count; i++ {
		want, ok := m.Step()
		if !ok {
			t.Fatalf("machine exhausted at %d", i)
		}
		if !src.Next(&ru) {
			t.Fatalf("replay exhausted at %d", i)
		}
		if ru != want {
			t.Fatalf("decoded µ-op %d diverges:\n  replay %+v\n  exec   %+v", i, ru, want)
		}
	}
	if src.Next(&ru) {
		t.Fatal("replay yields µ-ops past the recorded count")
	}
}

// TestReadRejectsCorruption flips every byte position in a small trace
// file and requires each corruption to be rejected (CRC or header
// validation), never silently accepted with altered content.
func TestReadRejectsCorruption(t *testing.T) {
	w := mustWorkload(t, "gzip")
	tr := Record(w, 500)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for i := range orig {
		mut := bytes.Clone(orig)
		mut[i] ^= 0x40
		if _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatalf("corruption at byte %d/%d accepted", i, len(orig))
		}
	}
}

// TestReadRejectsTruncation cuts the file at several points and
// requires ErrCorrupt each time.
func TestReadRejectsTruncation(t *testing.T) {
	w := mustWorkload(t, "gzip")
	tr := Record(w, 500)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{0, 3, 4, 10, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:n])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrCorrupt", n, err)
		}
	}
}

// TestReadRejectsShortHeaderWithValidCRC crafts a file whose CRC is
// correct but whose header ends mid-field; Read must return
// ErrCorrupt, not panic (regression: the header reader used to index
// into a nil slice).
func TestReadRejectsShortHeaderWithValidCRC(t *testing.T) {
	for _, body := range [][]byte{
		{'E', 'O', 'L', 'T'},
		{'E', 'O', 'L', 'T', Version},
		{'E', 'O', 'L', 'T', Version, 0},             // namelen 0, then nothing
		{'E', 'O', 'L', 'T', Version, 0, 0xAB, 0xCD}, // progHash cut short
		{'E', 'O', 'L', 'T', Version, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, // giant namelen
	} {
		raw := append(bytes.Clone(body), 0, 0, 0, 0)
		fixCRC(raw)
		if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("short header %x: got %v, want ErrCorrupt", body, err)
		}
	}
}

// fixCRC rewrites the trailing CRC-32 so only the crafted defect
// remains.
func fixCRC(raw []byte) {
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], crc32.ChecksumIEEE(raw[:len(raw)-4]))
}

// TestReadRejectsVersionMismatch rewrites the version field (fixing
// the checksum so only the version differs) and requires ErrVersion —
// the signal callers use to fall back to execute-driven simulation.
func TestReadRejectsVersionMismatch(t *testing.T) {
	w := mustWorkload(t, "gzip")
	tr := Record(w, 100)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// The version uvarint sits right after the 4-byte magic; Version 1
	// occupies one byte.
	if b[4] != Version {
		t.Fatalf("unexpected header layout: byte 4 is %d", b[4])
	}
	b[4] = Version + 1
	body := b[:len(b)-4]
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(body))
	if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

// TestSourceRejectsProgramMismatch relabels a trace as a different
// workload; the program hash must catch it.
func TestSourceRejectsProgramMismatch(t *testing.T) {
	w := mustWorkload(t, "gzip")
	tr := Record(w, 100)
	tr.Workload = "mcf"
	if _, err := tr.NewSource(); !errors.Is(err, ErrProgramMismatch) {
		t.Fatalf("got %v, want ErrProgramMismatch", err)
	}
	tr.Workload = "no-such-benchmark"
	if _, err := tr.NewSource(); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestCompleteTraceCoversHalt records a tiny halting program to the
// end and checks the Complete flag, halt handling and CanServe
// semantics.
func TestCompleteTraceCoversHalt(t *testing.T) {
	b := prog.NewBuilder("tiny")
	b.Movi(isa.IntReg(1), 5)
	b.Label("loop")
	b.Addi(isa.IntReg(1), isa.IntReg(1), -1)
	b.Bnez(isa.IntReg(1), "loop")
	b.Halt()
	w := workload.Workload{Name: "tiny", Short: "tiny", Program: b.MustBuild()}

	tr := Record(w, 1_000_000)
	if !tr.Complete {
		t.Fatal("halting program did not mark the trace complete")
	}
	if !tr.CanServe(1 << 40) {
		t.Fatal("complete trace must serve any length")
	}
	// Round-trip through bytes so the halt record goes through the
	// payload decoder, not the recorder-seeded cache.
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src, err := tr.SourceFor(w)
	if err != nil {
		t.Fatal(err)
	}
	m := w.NewMachine()
	var got, want prog.MicroOp
	var steps uint64
	for {
		w1, ok1 := m.Step()
		ok2 := src.Next(&got)
		if ok1 != ok2 {
			t.Fatalf("exhaustion mismatch at step %d: exec %v, replay %v", steps, ok1, ok2)
		}
		if !ok1 {
			break
		}
		want = w1
		if got != want {
			t.Fatalf("step %d diverges: %+v vs %+v", steps, got, want)
		}
		steps++
	}
	if steps != tr.Count {
		t.Fatalf("replayed %d µ-ops, trace holds %d", steps, tr.Count)
	}
}

// TestPartialTraceCanServe checks the incomplete-trace length rule.
func TestPartialTraceCanServe(t *testing.T) {
	w := mustWorkload(t, "gzip")
	tr := Record(w, 1_000)
	if tr.Complete {
		t.Fatal("gzip should not halt within 1000 µ-ops")
	}
	if !tr.CanServe(1_000) || tr.CanServe(1_001) {
		t.Fatalf("CanServe wrong around the recorded count %d", tr.Count)
	}
}

// TestSlackFor pins the config-aware replay margin: the ReplaySlack
// floor for every Table 1 machine, and window+fetchq-scaled for
// custom machines with huge ROBs.
func TestSlackFor(t *testing.T) {
	if got := SlackFor(192, 128); got != ReplaySlack {
		t.Errorf("SlackFor(192,128) = %d, want floor %d", got, ReplaySlack)
	}
	if got := SlackFor(4096, 128); got <= ReplaySlack || got < 8192+128 {
		t.Errorf("SlackFor(4096,128) = %d, want >= %d", got, 8192+128)
	}
}
