// Package trace records and replays the dynamic µ-op stream of a
// workload, so a sweep over many machine configurations interprets
// each workload once instead of once per configuration.
//
// The cycle-level core (internal/core) is trace-driven by design: it
// pulls the committed-path µ-op stream from a prog.Source strictly in
// program order and never asks the source to rewind (squash replays
// come from the core's own buffers). Replaying a recorded stream is
// therefore exactly equivalent to re-running the functional
// interpreter: a trace-driven simulation produces a byte-identical
// report for the same (config, workload, warmup, measure).
//
// The on-disk/in-memory encoding is static-aware and varint-packed:
// because the decoder holds the workload's Program, each record stores
// only the fields the static instruction cannot predict —
//
//   - register-writing compute µ-ops: the result value (uvarint) and,
//     for flag-writing opcodes, the flag byte;
//   - loads: the effective address as a zigzag delta from the previous
//     memory address, plus the loaded value;
//   - stores: the address delta plus the stored value;
//   - conditional branches: a single taken byte;
//   - indirect jumps (ret/jr): the target as a zigzag index delta;
//   - direct jumps, calls and halt: nothing at all.
//
// Sequence numbers, PCs, opcodes, operand registers, call link values
// and next-PCs are all reconstructed from the Program while decoding.
// Typical workloads encode in 2-4 bytes per µ-op, against the ~90-byte
// in-memory prog.MicroOp.
//
// A trace file carries a magic number, a format version, the workload
// name, a hash of the workload's program, the record count, and a
// trailing CRC-32 over the whole body, so corrupted, truncated or
// stale traces are rejected with distinct errors (ErrCorrupt,
// ErrVersion, ErrProgramMismatch) instead of silently replaying wrong
// streams. Callers are expected to fall back to execute-driven
// simulation when Read or NewSource fails.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"eole/internal/isa"
	"eole/internal/prog"
	"eole/internal/workload"
)

// Version is the trace format version written by this package. Read
// rejects any other version with ErrVersion.
const Version = 1

// magic identifies a trace stream ("EOLE Trace").
var magic = [4]byte{'E', 'O', 'L', 'T'}

// ReplaySlack is how many µ-ops beyond warmup+measure a trace must
// hold to guarantee byte-identical replay of that region: the core
// fetches ahead of commit by at most the window size (nextPow2(ROB+8),
// 256 for every Table 1 machine), the fetch queue (128) and the
// pending slot, plus the commit-width overshoot. 4096 covers every
// configuration this repo defines with an order of magnitude to
// spare. Callers simulating a custom machine with an ROB beyond ~2000
// entries must size the margin from the config instead — see
// SlackFor.
const ReplaySlack = 4096

// SlackFor returns the replay margin for a machine with the given ROB
// and fetch-queue sizes: the core's in-flight window (nextPow2(rob+8))
// plus the fetch queue and a generous allowance for the pending slot
// and commit overshoot, floored at ReplaySlack.
func SlackFor(robSize, fetchQueueSize int) uint64 {
	w := 1
	for w < robSize+8 {
		w *= 2
	}
	s := uint64(w + fetchQueueSize + 64)
	if s < ReplaySlack {
		return ReplaySlack
	}
	return s
}

// Format errors. Read and NewSource wrap these, so callers can
// errors.Is-match them to decide between failing and falling back to
// execute-driven simulation.
var (
	// ErrCorrupt marks a truncated stream or a checksum mismatch.
	ErrCorrupt = errors.New("trace: corrupt or truncated trace")
	// ErrVersion marks a trace written by an incompatible format
	// version.
	ErrVersion = errors.New("trace: format version mismatch")
	// ErrProgramMismatch marks a trace recorded against a different
	// build of the workload's program.
	ErrProgramMismatch = errors.New("trace: workload program mismatch")
)

// Trace is a recorded µ-op stream. It is immutable after creation and
// safe for concurrent replay: every NewSource call returns an
// independent cursor. The compact payload is decoded into the full
// µ-op slice once, lazily, and shared by all replays — so a sweep of N
// configurations pays one interpretation and one decode for N
// simulations, and each replayed µ-op is a single slice copy.
type Trace struct {
	// Workload is the short benchmark name the trace was recorded
	// from (e.g. "mcf").
	Workload string
	// Count is the number of µ-op records.
	Count uint64
	// Complete reports that the workload halted within the recording
	// window, so the trace covers the program's entire dynamic stream
	// and can serve a request of any length.
	Complete bool

	progHash uint64
	payload  []byte

	// Lazily decoded stream, shared by every Replay of this trace.
	decodeOnce sync.Once
	decoded    []prog.MicroOp
	decodeErr  error
}

// Record executes w's functional machine for up to n µ-ops and returns
// the encoded trace. Recording is deterministic: two Record calls with
// equal arguments produce identical traces.
func Record(w workload.Workload, n uint64) *Trace {
	m := w.NewMachine()
	enc := encoder{prog: w.Program}
	ops := make([]prog.MicroOp, 0, 4096)
	complete := false
	for uint64(len(ops)) < n {
		u, ok := m.Step()
		if !ok {
			complete = true
			break
		}
		enc.append(&u)
		ops = append(ops, u)
		if u.Op == isa.OpHalt {
			complete = true
			break
		}
	}
	t := &Trace{
		Workload: w.Short,
		Count:    uint64(len(ops)),
		Complete: complete,
		progHash: ProgramHash(w.Program),
		payload:  enc.buf,
	}
	// The recorder already has the full stream in hand; seeding the
	// decoded cache saves the first replayer the decode pass.
	t.decoded = ops
	return t
}

// CanServe reports whether replaying the trace is guaranteed
// byte-identical to execute-driven simulation for a run that fetches
// at most n µ-ops (callers pass warmup+measure+ReplaySlack).
func (t *Trace) CanServe(n uint64) bool { return t.Complete || t.Count >= n }

// SizeBytes returns the encoded payload size (excluding the fixed
// header), i.e. the memory the trace body occupies.
func (t *Trace) SizeBytes() int { return len(t.payload) }

// NewSource returns a fresh replay cursor implementing prog.Source.
// It resolves the recorded workload and fails with ErrProgramMismatch
// if the workload's program has changed since the trace was recorded
// (callers should fall back to execute-driven simulation).
func (t *Trace) NewSource() (*Replay, error) {
	w, err := workload.ByName(t.Workload)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return t.SourceFor(w)
}

// SourceFor builds a replay cursor over w's program, verifying that
// the trace was recorded from the same workload and program build.
// Use it instead of NewSource when the workload is already resolved
// (or is a synthetic workload not in the registry).
func (t *Trace) SourceFor(w workload.Workload) (*Replay, error) {
	if w.Short != t.Workload {
		return nil, fmt.Errorf("%w: trace is for %q, not %q", ErrProgramMismatch, t.Workload, w.Short)
	}
	if h := ProgramHash(w.Program); h != t.progHash {
		return nil, fmt.Errorf("%w: workload %q program hash %016x, trace recorded against %016x",
			ErrProgramMismatch, t.Workload, h, t.progHash)
	}
	ops, err := t.ops(w.Program)
	if err != nil {
		return nil, err
	}
	return &Replay{ops: ops}, nil
}

// ProgramHash fingerprints a program's static code (FNV-1a over every
// instruction field). It is folded into each trace header so a trace
// recorded against an older build of a workload is rejected instead of
// replayed against changed code.
func ProgramHash(p *prog.Program) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(len(p.Code)))
	for _, in := range p.Code {
		mix(uint64(in.Op))
		mix(uint64(uint16(in.Dst))<<32 | uint64(uint16(in.Src1))<<16 | uint64(uint16(in.Src2)))
		mix(uint64(in.Imm))
		mix(uint64(in.Target))
	}
	return h
}

// ---------------------------------------------------------------- encode

// encoder appends the dynamic fields of one µ-op at a time; see the
// package comment for the per-class record layout.
type encoder struct {
	prog     *prog.Program
	buf      []byte
	prevAddr uint64
}

func (e *encoder) append(u *prog.MicroOp) {
	in := e.prog.Code[u.Index]
	switch {
	case in.Op == isa.OpHalt:
		// Nothing: halting is implied by the opcode.
	case in.Class() == isa.ClassBranch:
		t := byte(0)
		if u.Taken {
			t = 1
		}
		e.buf = append(e.buf, t)
	case in.Class() == isa.ClassJump || in.Class() == isa.ClassCall:
		// Target and link value are static.
	case in.Class().IsIndirect():
		next := e.prog.IndexOf(u.NextPC)
		e.buf = appendZigzag(e.buf, int64(next)-int64(u.Index+1))
	case in.Class() == isa.ClassLoad:
		e.buf = appendZigzag(e.buf, int64(u.Addr-e.prevAddr))
		e.prevAddr = u.Addr
		e.buf = binary.AppendUvarint(e.buf, u.Value)
	case in.Class() == isa.ClassStore:
		e.buf = appendZigzag(e.buf, int64(u.Addr-e.prevAddr))
		e.prevAddr = u.Addr
		e.buf = binary.AppendUvarint(e.buf, u.StoreData)
	default:
		e.buf = binary.AppendUvarint(e.buf, u.Value)
		if in.Op.WritesFlags() {
			e.buf = append(e.buf, byte(u.Flags))
		}
	}
}

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v<<1)^uint64(v>>63))
}

// ---------------------------------------------------------------- replay

// Replay is a cursor over a trace's decoded µ-op stream, implementing
// prog.Source. Each Next is a single slice copy — the one-time decode
// is shared across every Replay of the trace. A Replay is single-use
// and not safe for concurrent access; obtain one per simulation via
// Trace.NewSource / Trace.SourceFor.
type Replay struct {
	ops []prog.MicroOp
	pos int
}

// Next implements prog.Source.
func (r *Replay) Next(u *prog.MicroOp) bool {
	if r.pos >= len(r.ops) {
		return false
	}
	*u = r.ops[r.pos]
	r.pos++
	return true
}

// NextBatch implements prog.BatchSource: a replayed batch is one
// memcpy out of the shared decoded stream.
func (r *Replay) NextBatch(dst []prog.MicroOp) int {
	n := copy(dst, r.ops[r.pos:])
	r.pos += n
	return n
}

// ops returns the decoded stream, decoding the payload on first use.
// The decode walks the program alongside the records, so a payload
// that desynchronizes from the program (possible only past CRC and
// program-hash checks, i.e. in-memory corruption or a package bug)
// yields ErrCorrupt rather than a wrong stream.
func (t *Trace) ops(p *prog.Program) ([]prog.MicroOp, error) {
	t.decodeOnce.Do(func() {
		if t.decoded != nil {
			return // seeded by Record
		}
		d := decoder{prog: p, payload: t.payload}
		// Pre-size from Count but cap by the payload: a hostile header
		// can claim 2^60 records over a 10-byte body, and the
		// pre-allocation must not trust it. (A legitimate trace can
		// exceed one record per payload byte — direct jumps and halt
		// encode zero bytes — so this only bounds the initial
		// capacity; append still grows to the real count.)
		capHint := t.Count
		if max := uint64(len(t.payload)) + 4096; capHint > max {
			capHint = max
		}
		ops := make([]prog.MicroOp, 0, capHint)
		for i := uint64(0); i < t.Count; i++ {
			var u prog.MicroOp
			if !d.next(&u) {
				break
			}
			ops = append(ops, u)
		}
		if d.err != nil || uint64(len(ops)) != t.Count || d.pos != len(t.payload) {
			t.decodeErr = fmt.Errorf("%w: payload does not decode to %d µ-ops", ErrCorrupt, t.Count)
			return
		}
		t.decoded = ops
	})
	return t.decoded, t.decodeErr
}

// decoder streams µ-ops out of a compact payload, mirroring encoder.
type decoder struct {
	prog     *prog.Program
	payload  []byte
	pos      int
	idx      int
	seq      uint64
	prevAddr uint64
	halted   bool
	err      error
}

func (d *decoder) next(u *prog.MicroOp) bool {
	if d.halted || d.err != nil {
		return false
	}
	if d.idx < 0 || d.idx >= len(d.prog.Code) {
		d.err = ErrCorrupt
		return false
	}
	in := d.prog.Code[d.idx]
	*u = prog.MicroOp{
		Seq:   d.seq,
		Index: d.idx,
		PC:    d.prog.PC(d.idx),
		Op:    in.Op,
		Dst:   in.Dst,
		Src1:  in.Src1,
		Src2:  in.Src2,
	}
	d.seq++

	next := d.idx + 1
	switch {
	case in.Op == isa.OpHalt:
		d.halted = true
		u.NextPC = u.PC
		return true
	case in.Class() == isa.ClassBranch:
		u.Taken = d.byte() != 0
		if u.Taken {
			next = in.Target
		}
	case in.Class() == isa.ClassJump:
		u.Taken = true
		next = in.Target
	case in.Class() == isa.ClassCall:
		u.Taken = true
		u.Value = d.prog.PC(d.idx + 1)
		next = in.Target
	case in.Class().IsIndirect():
		u.Taken = true
		next = d.idx + 1 + int(d.zigzag())
	case in.Class() == isa.ClassLoad:
		d.prevAddr += uint64(d.zigzag())
		u.Addr = d.prevAddr
		u.Value = d.uvarint()
	case in.Class() == isa.ClassStore:
		d.prevAddr += uint64(d.zigzag())
		u.Addr = d.prevAddr
		u.StoreData = d.uvarint()
	default:
		u.Value = d.uvarint()
		if in.Op.WritesFlags() {
			u.Flags = isa.Flags(d.byte())
		}
	}
	if d.err != nil {
		return false
	}
	d.idx = next
	u.NextPC = d.prog.PC(next)
	return true
}

func (d *decoder) byte() byte {
	if d.err != nil || d.pos >= len(d.payload) {
		d.err = ErrCorrupt
		return 0
	}
	b := d.payload[d.pos]
	d.pos++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.payload[d.pos:])
	if n <= 0 {
		d.err = ErrCorrupt
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) zigzag() int64 {
	v := d.uvarint()
	return int64(v>>1) ^ -int64(v&1)
}

// ---------------------------------------------------------------- file IO

// Write encodes the trace to w: magic, version, workload name, program
// hash, record count, completeness, payload length, payload, and a
// trailing CRC-32 (IEEE) over everything before it.
func (t *Trace) Write(w io.Writer) error {
	hdr := make([]byte, 0, 64)
	hdr = append(hdr, magic[:]...)
	hdr = binary.AppendUvarint(hdr, Version)
	hdr = binary.AppendUvarint(hdr, uint64(len(t.Workload)))
	hdr = append(hdr, t.Workload...)
	hdr = binary.LittleEndian.AppendUint64(hdr, t.progHash)
	hdr = binary.AppendUvarint(hdr, t.Count)
	if t.Complete {
		hdr = append(hdr, 1)
	} else {
		hdr = append(hdr, 0)
	}
	hdr = binary.AppendUvarint(hdr, uint64(len(t.payload)))

	crc := crc32.NewIEEE()
	crc.Write(hdr)
	crc.Write(t.payload)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(t.payload); err != nil {
		return err
	}
	_, err := w.Write(binary.LittleEndian.AppendUint32(nil, crc.Sum32()))
	return err
}

// Read decodes a trace written by Write, verifying magic, version and
// checksum. It returns ErrCorrupt for truncated or bit-flipped input
// and ErrVersion for traces from an incompatible format version.
func Read(r io.Reader) (*Trace, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if len(b) < len(magic)+4 || [4]byte(b[:4]) != magic {
		return nil, fmt.Errorf("%w: missing EOLT magic", ErrCorrupt)
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	d := headerReader{b: body, pos: len(magic)}
	version := d.uvarint()
	if d.err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if version != Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads %d", ErrVersion, version, Version)
	}
	name := d.bytes(int(d.uvarint()))
	progHash := d.uint64le()
	count := d.uvarint()
	complete := d.byte() != 0
	payload := d.bytes(int(d.uvarint()))
	if d.err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if d.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-d.pos)
	}
	return &Trace{
		Workload: string(name),
		Count:    count,
		Complete: complete,
		progHash: progHash,
		payload:  payload,
	}, nil
}

// Path returns the conventional location of a workload's trace inside
// a trace directory: <dir>/<short>.trace. Every consumer that shares
// trace directories (eolesim -tracedir, the simsvc trace store) uses
// this helper, so the naming contract lives in one place.
func Path(dir, short string) string {
	return filepath.Join(dir, short+".trace")
}

// WriteFile atomically persists a trace (write to a temp file in the
// same directory, then rename), so concurrent readers never observe a
// partial file. The parent directory is created if missing.
func WriteFile(path string, t *Trace) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), "tmp-*.trace")
	if err != nil {
		return err
	}
	name := f.Name()
	if err := t.Write(f); err != nil {
		f.Close()
		os.Remove(name)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// ReadFile loads and validates a trace file (see Read for the error
// contract; a missing file surfaces the os.Open error).
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// headerReader decodes the fixed header fields with sticky error
// handling (the payload itself is validated lazily during replay,
// protected by the CRC).
type headerReader struct {
	b   []byte
	pos int
	err error
}

func (d *headerReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.err = ErrCorrupt
		return 0
	}
	d.pos += n
	return v
}

// bytes returns the next n header bytes, or nil with the sticky error
// set when the header is short (the length test is written to avoid
// int overflow on hostile n).
func (d *headerReader) bytes(n int) []byte {
	if d.err != nil || n < 0 || n > len(d.b)-d.pos {
		d.err = ErrCorrupt
		return nil
	}
	out := d.b[d.pos : d.pos+n]
	d.pos += n
	return out
}

func (d *headerReader) byte() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *headerReader) uint64le() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
