package trace

import (
	"bytes"
	"sync"
	"testing"

	"eole/internal/prog"
	"eole/internal/workload"
)

// Replay-vs-execute equality: a recorded trace replayed through a
// cursor must reproduce the live machine's µ-op stream exactly — every
// field, including the end-of-stream position. The trace is pushed
// through Write/Read first so the comparison covers the varint codec,
// not just Record's pre-decoded cache. The distributed sweep and the
// sampled-simulation fast path both depend on this.
func TestReplayMatchesExecution(t *testing.T) {
	const n = 40_000
	for _, w := range workload.All()[:4] {
		var buf bytes.Buffer
		if err := Record(w, n).Write(&buf); err != nil {
			t.Fatalf("%s: Write: %v", w.Name, err)
		}
		tr, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: Read: %v", w.Name, err)
		}
		r, err := tr.SourceFor(w)
		if err != nil {
			t.Fatalf("%s: SourceFor: %v", w.Name, err)
		}
		live := prog.MachineSource{M: w.NewMachine()}
		var ru, lu prog.MicroOp
		for i := 0; ; i++ {
			rok := r.Next(&ru)
			lok := i < n && live.Next(&lu)
			if rok != lok {
				t.Fatalf("%s: stream length mismatch at µ-op %d (replay=%v live=%v)", w.Name, i, rok, lok)
			}
			if !rok {
				break
			}
			if ru != lu {
				t.Fatalf("%s: µ-op %d mismatch\n replay: %+v\n   live: %+v", w.Name, i, ru, lu)
			}
		}
	}
}

// One decoded Trace must serve many Replay cursors concurrently: the
// sweep workers share a process-wide trace cache and each simulation
// draws its own cursor. Each cursor is single-goroutine, but they all
// read the shared decoded-op slice — run under -race this verifies the
// sharing is sound, and the digest check verifies cursors don't
// perturb each other.
func TestConcurrentReplayCursors(t *testing.T) {
	const n = 20_000
	w := workload.All()[0]
	tr := Record(w, n)

	digest := func(r *Replay) uint64 {
		var h uint64 = 1469598103934665603
		buf := make([]prog.MicroOp, 128)
		for {
			cnt := r.NextBatch(buf)
			for i := 0; i < cnt; i++ {
				h = (h ^ buf[i].PC ^ buf[i].Value ^ uint64(buf[i].Op)) * 1099511628211
			}
			if cnt < len(buf) {
				return h
			}
		}
	}

	ref, err := tr.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	want := digest(ref)

	const workers = 8
	got := make([]uint64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		r, err := tr.NewSource()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, r *Replay) {
			defer wg.Done()
			got[i] = digest(r)
		}(i, r)
	}
	wg.Wait()
	for i, h := range got {
		if h != want {
			t.Fatalf("cursor %d digest %#x != reference %#x", i, h, want)
		}
	}
}
