package cache

// PrefetcherConfig sizes the per-PC stride prefetcher of Table 1
// ("Stride prefetcher, degree 8, distance 1" on the L2).
type PrefetcherConfig struct {
	// TableEntries is the number of PC-indexed tracking entries.
	TableEntries int
	// Degree is how many lines ahead are fetched once a stride locks.
	Degree int
	// Distance is the stride multiple at which prefetching starts.
	Distance int
}

// DefaultPrefetcherConfig returns the Table 1 prefetcher.
func DefaultPrefetcherConfig() PrefetcherConfig {
	return PrefetcherConfig{TableEntries: 256, Degree: 8, Distance: 1}
}

type pfEntry struct {
	tag    uint64
	last   uint64
	stride int64
	conf   uint8 // 2-bit: prefetch when >= 2
}

// stridePrefetcher detects constant-stride access streams per load PC
// and generates prefetch addresses.
type stridePrefetcher struct {
	cfg     PrefetcherConfig
	table   []pfEntry
	scratch []uint64
}

func newStridePrefetcher(cfg PrefetcherConfig) *stridePrefetcher {
	if cfg.TableEntries < 1 {
		cfg.TableEntries = 1
	}
	n := 1
	for n < cfg.TableEntries {
		n *= 2
	}
	return &stridePrefetcher{
		cfg:     cfg,
		table:   make([]pfEntry, n),
		scratch: make([]uint64, 0, cfg.Degree),
	}
}

// observe trains on a demand access and returns the prefetch addresses
// to issue (valid until the next call).
func (p *stridePrefetcher) observe(pc, addr uint64) []uint64 {
	ix := (pc >> 2) & uint64(len(p.table)-1)
	e := &p.table[ix]
	p.scratch = p.scratch[:0]
	if e.tag != pc {
		*e = pfEntry{tag: pc, last: addr}
		return p.scratch
	}
	stride := int64(addr - e.last)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.conf = 0
		e.stride = stride
	}
	e.last = addr
	if e.conf >= 2 {
		for i := 1; i <= p.cfg.Degree; i++ {
			target := addr + uint64(e.stride*int64(p.cfg.Distance)*int64(i))
			p.scratch = append(p.scratch, target)
		}
	}
	return p.scratch
}
