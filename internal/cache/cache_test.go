package cache

import (
	"testing"

	"eole/internal/dram"
)

// flat is a constant-latency backing level for unit tests.
type flat struct {
	lat      uint64
	accesses int
}

func (f *flat) Access(addr uint64, write bool, pc uint64, now uint64) uint64 {
	f.accesses++
	return now + f.lat
}

func smallCache(mshrs int, next Level) *Cache {
	return New(Config{
		Name: "T", SizeBytes: 1 << 12, Ways: 2, LineBytes: 64,
		Latency: 2, MSHRs: mshrs, WriteBack: true,
	}, next)
}

func TestMissThenHit(t *testing.T) {
	back := &flat{lat: 100}
	c := smallCache(8, back)
	if done := c.Access(0x1000, false, 0, 0); done != 102 {
		t.Fatalf("miss latency = %d, want 2+100", done)
	}
	// Same line now hits (after fill time has passed).
	if done := c.Access(0x1008, false, 0, 200); done != 202 {
		t.Fatalf("hit latency = %d, want 202", done)
	}
	if c.Misses != 1 || c.Accesses != 2 {
		t.Fatalf("stats = %d misses / %d accesses, want 1/2", c.Misses, c.Accesses)
	}
}

func TestMSHRMergesSameLine(t *testing.T) {
	back := &flat{lat: 100}
	c := smallCache(8, back)
	first := c.Access(0x2000, false, 0, 0)
	second := c.Access(0x2010, false, 0, 1) // same line, still in flight
	if back.accesses != 1 {
		t.Fatalf("backing accessed %d times, want 1 (merge)", back.accesses)
	}
	if second > first {
		t.Fatalf("merged request completes at %d, after primary %d", second, first)
	}
	if c.MSHRMerges != 1 {
		t.Fatalf("MSHRMerges = %d, want 1", c.MSHRMerges)
	}
}

func TestMSHRLimitDelaysMisses(t *testing.T) {
	back := &flat{lat: 1000}
	c := smallCache(2, back)
	c.Access(0x10000, false, 0, 0)
	c.Access(0x20000, false, 0, 0)
	// Third concurrent miss must wait for an MSHR.
	done := c.Access(0x30000, false, 0, 0)
	if done <= 1002 {
		t.Fatalf("third miss done at %d; must wait for an MSHR (> 1002)", done)
	}
	if c.MSHRStalls != 1 {
		t.Fatalf("MSHRStalls = %d, want 1", c.MSHRStalls)
	}
}

func TestLRUEviction(t *testing.T) {
	back := &flat{lat: 10}
	// 4KB, 2-way, 64B lines -> 32 sets; three lines in one set.
	c := smallCache(8, back)
	setStride := uint64(32 * 64)
	a, b, d := uint64(0x0), setStride, 2*setStride
	c.Access(a, false, 0, 0)
	c.Access(b, false, 0, 100)
	c.Access(a, false, 0, 200) // touch a: b becomes LRU
	c.Access(d, false, 0, 300) // evicts b
	misses := c.Misses
	c.Access(a, false, 0, 400)
	if c.Misses != misses {
		t.Fatal("a must still hit")
	}
	c.Access(b, false, 0, 500)
	if c.Misses != misses+1 {
		t.Fatal("b must have been evicted")
	}
}

func TestDirtyWritebackReachesNextLevel(t *testing.T) {
	back := &flat{lat: 10}
	c := smallCache(8, back)
	setStride := uint64(32 * 64)
	c.Access(0x0, true, 0, 0) // write-allocate, dirty
	back.accesses = 0
	c.Access(setStride, false, 0, 100)   // fills same set
	c.Access(2*setStride, false, 0, 200) // evicts dirty line 0
	if c.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Writebacks)
	}
	// 2 demand fills + 1 writeback.
	if back.accesses != 3 {
		t.Fatalf("backing accesses = %d, want 3", back.accesses)
	}
}

func TestStridePrefetcherLocksOn(t *testing.T) {
	p := newStridePrefetcher(PrefetcherConfig{TableEntries: 16, Degree: 4, Distance: 1})
	pc := uint64(0x400100)
	var got []uint64
	for i := 0; i < 6; i++ {
		got = p.observe(pc, uint64(i*64))
	}
	if len(got) != 4 {
		t.Fatalf("prefetch degree = %d, want 4", len(got))
	}
	// Last access at 5*64: prefetches at +64, +128, ...
	for i, a := range got {
		want := uint64(5*64 + (i+1)*64)
		if a != want {
			t.Fatalf("prefetch[%d] = %#x, want %#x", i, a, want)
		}
	}
}

func TestStridePrefetcherIgnoresRandom(t *testing.T) {
	p := newStridePrefetcher(DefaultPrefetcherConfig())
	pc := uint64(0x400100)
	s := uint64(12345)
	issued := 0
	for i := 0; i < 200; i++ {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		issued += len(p.observe(pc, s&0xFFFFF8))
	}
	if issued > 50 {
		t.Fatalf("prefetcher issued %d addresses on a random stream", issued)
	}
}

func TestPrefetchHidesLatencyInL2(t *testing.T) {
	h := NewTable1Hierarchy()
	// Stream through 4MB (beyond L2) twice: with the prefetcher the
	// second half of the stream should mostly hit L2 or be in flight.
	var now uint64
	var totalLat uint64
	const n = 4096
	for i := 0; i < n; i++ {
		addr := uint64(0x1000_0000 + i*64)
		done := h.Load(0x400500, addr, now)
		totalLat += done - now
		now += 50
	}
	avg := float64(totalLat) / n
	// Without prefetching every access would pay >= 75-cycle DRAM
	// latency (plus L1/L2); with degree-8 prefetch the average must
	// drop well below that.
	if avg > 60 {
		t.Fatalf("streaming average latency = %.1f cycles; prefetcher ineffective", avg)
	}
	if h.L2.Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewTable1Hierarchy()
	// Cold load: L1 miss + L2 miss + DRAM.
	done := h.Load(0x400000, 0x5000_0000, 1000)
	lat := done - 1000
	if lat < 75 || lat > 250 {
		t.Fatalf("cold load latency = %d, want within [75,250]", lat)
	}
	// Hot load: L1 hit = 2 cycles.
	done = h.Load(0x400000, 0x5000_0000, 10_000)
	if done-10_000 != 2 {
		t.Fatalf("L1 hit latency = %d, want 2", done-10_000)
	}
	// Fetch path works.
	if done := h.Fetch(0x400000, 0); done == 0 {
		t.Fatal("fetch returned zero cycle")
	}
}

// findAddr scans for an address whose (bank,row) relation to base
// satisfies pred.
func findAddr(t *testing.T, d *dram.DDR3, base uint64, pred func(sameBank, sameRow bool) bool) uint64 {
	t.Helper()
	b0, r0 := d.Decode(base)
	cfg := dram.DefaultConfig()
	for i := 1; i < 1<<16; i++ {
		addr := base + uint64(i*cfg.RowBytes)
		b, r := d.Decode(addr)
		if pred(b == b0, r == r0) {
			return addr
		}
	}
	t.Fatal("no address found")
	return 0
}

func TestDramRowBufferBehaviour(t *testing.T) {
	d := dram.New(dram.DefaultConfig())
	base := uint64(0x1000_0000)
	// First access to a closed bank.
	first := d.Access(base, false, 0, 0)
	if first < 75 || first > 185 {
		t.Fatalf("closed-bank latency = %d, want within [75,185]", first)
	}
	// Row hit: same row, after bank is free.
	now := first + 100
	done := d.Access(base+0x40, false, 0, now)
	hitLat := done - now
	// Row conflict: different row, same bank.
	confl := findAddr(t, d, base, func(sameBank, sameRow bool) bool { return sameBank && !sameRow })
	now = done + 100
	done = d.Access(confl, false, 0, now)
	conflLat := done - now
	if hitLat >= conflLat {
		t.Fatalf("row hit (%d) must be faster than row conflict (%d)", hitLat, conflLat)
	}
	if conflLat > 185+20 {
		t.Fatalf("row conflict latency = %d, exceeds Table 1 max", conflLat)
	}
	if d.RowHitRate() <= 0 {
		t.Fatal("row hit not recorded")
	}
}

func TestDramBankParallelism(t *testing.T) {
	d := dram.New(dram.DefaultConfig())
	base := uint64(0x2000_0000)
	other := findAddr(t, d, base, func(sameBank, sameRow bool) bool { return !sameBank })
	// Two accesses to different banks at the same cycle proceed in
	// parallel; two to the same bank serialize.
	a1 := d.Access(base, false, 0, 0)
	a2 := d.Access(other, false, 0, 0)
	if a2 > a1+10 {
		t.Fatalf("different banks serialized: %d vs %d", a1, a2)
	}
	d2 := dram.New(dram.DefaultConfig())
	sameBank := findAddr(t, d2, base, func(sb, sr bool) bool { return sb && !sr })
	b1 := d2.Access(base, false, 0, 0)
	b2 := d2.Access(sameBank, false, 0, 0)
	if b2 <= b1 {
		t.Fatalf("same-bank accesses must serialize: %d vs %d", b1, b2)
	}
}

func TestDramBankHashingSpreadsStreams(t *testing.T) {
	// Two power-of-two-spaced streams (the h264ref pattern) must not
	// land on a single bank.
	d := dram.New(dram.DefaultConfig())
	banks := map[int]bool{}
	for i := 0; i < 32; i++ {
		b1, _ := d.Decode(0x1000_0000 + uint64(i*8192))
		b2, _ := d.Decode(0x2000_0000 + uint64(i*8192))
		banks[b1] = true
		banks[b2] = true
	}
	if len(banks) < 4 {
		t.Fatalf("streams cover only %d banks; hashing ineffective", len(banks))
	}
}

func TestWritesArePosted(t *testing.T) {
	d := dram.New(dram.DefaultConfig())
	ack := d.Access(0x100, true, 0, 0)
	if ack > 50 {
		t.Fatalf("posted write ack = %d, want small", ack)
	}
}
