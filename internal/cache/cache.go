// Package cache implements the cache hierarchy of Table 1: split
// 32KB 4-way L1 caches (2-cycle L1D), a unified 2MB 16-way 12-cycle
// L2 with a degree-8 stride prefetcher, 64B lines, LRU replacement,
// and MSHR-limited outstanding misses. Backed by the DDR3 model of
// internal/dram.
package cache

// Level is anything that can serve a memory access: a cache or the
// DRAM controller. Access returns the CPU cycle at which the request
// completes.
type Level interface {
	Access(addr uint64, write bool, pc uint64, now uint64) uint64
}

// Config sizes one cache.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	LineBytes  int
	Latency    uint64 // access latency in cycles (hit time)
	MSHRs      int    // max outstanding misses (0 = unlimited)
	WriteBack  bool
	Prefetcher *PrefetcherConfig // optional, trained on this level's accesses
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

type mshrEntry struct {
	addr  uint64 // line address
	ready uint64
}

// Cache is one set-associative, write-allocate cache level.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	next     Level
	stamp    uint64
	mshrs    []mshrEntry
	pf       *stridePrefetcher

	// Stats.
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
	MSHRMerges uint64
	MSHRStalls uint64
	Prefetches uint64
}

// New builds a cache in front of next.
func New(cfg Config, next Level) *Cache {
	numSets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	n := 1
	for n*2 <= numSets {
		n *= 2
	}
	c := &Cache{cfg: cfg, next: next, setMask: uint64(n - 1)}
	c.sets = make([][]line, n)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for 1<<c.lineBits < cfg.LineBytes {
		c.lineBits++
	}
	if cfg.Prefetcher != nil {
		c.pf = newStridePrefetcher(*cfg.Prefetcher)
	}
	return c
}

func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineBits }

func (c *Cache) set(la uint64) []line { return c.sets[la&c.setMask] }

// lookup probes the cache without filling.
func (c *Cache) lookup(la uint64) *line {
	s := c.set(la)
	for i := range s {
		if s[i].valid && s[i].tag == la {
			return &s[i]
		}
	}
	return nil
}

// fill inserts la, evicting LRU; returns true when a dirty line was
// written back.
func (c *Cache) fill(la uint64, dirty bool, now uint64) bool {
	s := c.set(la)
	victim := 0
	for i := range s {
		if !s[i].valid {
			victim = i
			break
		}
		if s[i].lru < s[victim].lru {
			victim = i
		}
	}
	wb := s[victim].valid && s[victim].dirty && c.cfg.WriteBack
	if wb {
		c.Writebacks++
		if c.next != nil {
			// Writeback traffic occupies the next level but completes
			// in the background.
			c.next.Access(s[victim].tag<<c.lineBits, true, 0, now)
		}
	}
	c.stamp++
	s[victim] = line{valid: true, dirty: dirty, tag: la, lru: c.stamp}
	return wb
}

// reapMSHRs drops completed entries and reports live count.
func (c *Cache) reapMSHRs(now uint64) int {
	live := c.mshrs[:0]
	for _, e := range c.mshrs {
		if e.ready > now {
			live = append(live, e)
		}
	}
	c.mshrs = live
	return len(live)
}

// Access implements Level.
func (c *Cache) Access(addr uint64, write bool, pc uint64, now uint64) uint64 {
	c.Accesses++
	la := c.lineAddr(addr)

	if c.pf != nil && !write {
		for _, pfAddr := range c.pf.observe(pc, addr) {
			c.prefetch(pfAddr, now)
		}
	}

	if l := c.lookup(la); l != nil {
		c.stamp++
		l.lru = c.stamp
		if write {
			l.dirty = true
		}
		ready := now + c.cfg.Latency
		// Lines are installed when the miss is issued, so a "hit" may
		// be to a line whose fill is still in flight: such an access
		// merges into the outstanding MSHR and waits for the data.
		for _, e := range c.mshrs {
			if e.addr == la && e.ready > ready {
				c.MSHRMerges++
				ready = e.ready
			}
		}
		return ready
	}

	c.Misses++

	start := now + c.cfg.Latency
	if c.cfg.MSHRs > 0 && c.reapMSHRs(now) >= c.cfg.MSHRs {
		// All miss registers busy: the request waits for the earliest
		// one to free up.
		c.MSHRStalls++
		earliest := c.mshrs[0].ready
		for _, e := range c.mshrs[1:] {
			if e.ready < earliest {
				earliest = e.ready
			}
		}
		if earliest > start {
			start = earliest
		}
	}

	var ready uint64
	if c.next != nil {
		ready = c.next.Access(addr, false, pc, start)
	} else {
		ready = start
	}
	if ready < start {
		ready = start
	}
	c.mshrs = append(c.mshrs, mshrEntry{addr: la, ready: ready})
	c.fill(la, write, now)
	return ready
}

// prefetch brings a line into this cache without charging any
// requester; it consumes an MSHR only if one is free (prefetches are
// dropped under pressure, as real prefetchers are).
func (c *Cache) prefetch(addr uint64, now uint64) {
	la := c.lineAddr(addr)
	if c.lookup(la) != nil {
		return
	}
	for _, e := range c.mshrs {
		if e.addr == la {
			return
		}
	}
	if c.cfg.MSHRs > 0 && c.reapMSHRs(now) >= c.cfg.MSHRs {
		return
	}
	c.Prefetches++
	var ready uint64 = now + c.cfg.Latency
	if c.next != nil {
		ready = c.next.Access(addr, false, 0, now+c.cfg.Latency)
	}
	c.mshrs = append(c.mshrs, mshrEntry{addr: la, ready: ready})
	c.fill(la, false, now)
}

// MissRate reports misses per access.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Name returns the configured cache name.
func (c *Cache) Name() string { return c.cfg.Name }
