package cache

import "eole/internal/dram"

// Hierarchy assembles the Table 1 memory system: L1I + L1D backed by a
// shared L2 with a stride prefetcher, backed by DDR3.
type Hierarchy struct {
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	Dram *dram.DDR3
}

// NewTable1Hierarchy builds the paper's memory system.
func NewTable1Hierarchy() *Hierarchy {
	ddr := dram.New(dram.DefaultConfig())
	pf := DefaultPrefetcherConfig()
	l2 := New(Config{
		Name:       "L2",
		SizeBytes:  2 << 20,
		Ways:       16,
		LineBytes:  64,
		Latency:    12,
		MSHRs:      64,
		WriteBack:  true,
		Prefetcher: &pf,
	}, ddr)
	l1d := New(Config{
		Name:      "L1D",
		SizeBytes: 32 << 10,
		Ways:      4,
		LineBytes: 64,
		Latency:   2,
		MSHRs:     64,
		WriteBack: true,
	}, l2)
	l1i := New(Config{
		Name:      "L1I",
		SizeBytes: 32 << 10,
		Ways:      4,
		LineBytes: 64,
		Latency:   1,
		MSHRs:     16,
		WriteBack: false,
	}, l2)
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, Dram: ddr}
}

// Load issues a data read at cycle now; it returns the completion
// cycle.
func (h *Hierarchy) Load(pc, addr, now uint64) uint64 {
	return h.L1D.Access(addr, false, pc, now)
}

// Store issues a data write at cycle now; stores complete into the
// store queue and write back lazily, so the returned cycle only
// reflects cache occupancy for timing of SQ release.
func (h *Hierarchy) Store(pc, addr, now uint64) uint64 {
	return h.L1D.Access(addr, true, pc, now)
}

// Fetch issues an instruction read for the line containing pc.
func (h *Hierarchy) Fetch(pc, now uint64) uint64 {
	return h.L1I.Access(pc, false, pc, now)
}
