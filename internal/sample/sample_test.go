package sample

import (
	"context"
	"math"
	"reflect"
	"testing"

	"eole/internal/config"
	"eole/internal/core"
	"eole/internal/isa"
	"eole/internal/prog"
	"eole/internal/workload"
)

func TestSpecValidate(t *testing.T) {
	valid := Spec{Windows: 8, Warm: 40_000}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for name, s := range map[string]Spec{
		"one window":        {Windows: 1, Warm: 1},
		"zero windows":      {},
		"negative windows":  {Windows: -4},
		"too many windows":  {Windows: maxWindows + 1},
		"huge skip":         {Windows: 4, Skip: maxPhase + 1},
		"huge warm":         {Windows: 4, Warm: maxPhase + 1},
		"huge measure":      {Windows: 4, Measure: maxPhase + 1},
		"huge detailwarmup": {Windows: 4, DetailWarmup: maxPhase + 1},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
}

func TestPlanResolution(t *testing.T) {
	p, err := Spec{Windows: 8, Warm: 40_000}.Plan(160_000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Measure != 20_000 {
		t.Errorf("derived per-window measure %d, want 20000", p.Measure)
	}
	if p.DetailWarmup != defaultDetailWarmup {
		t.Errorf("default detail warmup %d, want %d", p.DetailWarmup, defaultDetailWarmup)
	}

	// An explicit per-window measure wins over the total budget.
	p, err = Spec{Windows: 4, Measure: 5_000, DetailWarmup: 100}.Plan(999)
	if err != nil {
		t.Fatal(err)
	}
	if p.Measure != 5_000 || p.DetailWarmup != 100 {
		t.Errorf("explicit fields overridden: %+v", p)
	}

	// A budget smaller than the window count leaves empty windows.
	if _, err := (Spec{Windows: 8}).Plan(7); err == nil {
		t.Error("Plan accepted an empty-window schedule")
	}
	if _, err := (Spec{Windows: 1, Warm: 1}).Plan(100); err == nil {
		t.Error("Plan accepted an invalid spec")
	}
}

func TestPlanTotalSaturates(t *testing.T) {
	// Validate's caps keep any valid Spec far from overflow; Total
	// must still saturate for raw out-of-range Plans.
	p := Plan{Windows: 1 << 30, Skip: 1 << 62, Measure: 1 << 62}
	if got := p.Total(); got != math.MaxUint64 {
		t.Errorf("Total did not saturate: %d", got)
	}
	if s := (Spec{Windows: maxWindows, Skip: maxPhase, Warm: maxPhase, Measure: maxPhase, DetailWarmup: maxPhase}); s.Validate() != nil {
		t.Error("cap-limit spec should validate")
	}
	s := Spec{Windows: 2, Warm: 10}
	if need := s.StreamNeed(math.MaxUint64-5, 100); need != math.MaxUint64 {
		t.Errorf("StreamNeed did not saturate: %d", need)
	}
	if need := s.StreamNeed(1_000, 100); need <= 1_000 {
		t.Errorf("StreamNeed %d does not cover warmup plus windows", need)
	}
}

// TestStreamConsumedWithinNeed: the exact drawn stream must sit
// between the nominal schedule and the worst-case budget — and a
// trace sized by StreamNeed must therefore never run dry mid-phase.
func TestStreamConsumedWithinNeed(t *testing.T) {
	s := Spec{Windows: 8, Warm: 40_000}
	const warmup, measure = 50_000, 160_000
	p, err := s.Plan(measure)
	if err != nil {
		t.Fatal(err)
	}
	nominal := warmup + uint64(p.Windows)*p.PerWindow()
	consumed := s.StreamConsumed(warmup, measure)
	need := s.StreamNeed(warmup, measure)
	if consumed < nominal || consumed > need {
		t.Errorf("StreamConsumed %d outside [nominal %d, need %d]", consumed, nominal, need)
	}
	if bad := (Spec{Windows: 8}).StreamConsumed(0, 4); bad != math.MaxUint64 {
		t.Errorf("unresolvable spec: StreamConsumed %d, want the MaxUint64 sentinel", bad)
	}
}

// TestFinalizeMath checks the estimator against hand-computed values:
// window CPIs {0.5, 0.25} → mean CPI 0.375, sample stddev ~0.17678,
// half-width 1.96·s/√2 = 0.245, IPC 1/0.375.
func TestFinalizeMath(t *testing.T) {
	var e Estimate
	if err := e.finalize([]float64{0.5, 0.25}); err != nil {
		t.Fatal(err)
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !approx(e.CPIMean, 0.375) {
		t.Errorf("CPIMean %v, want 0.375", e.CPIMean)
	}
	wantH := 1.96 * math.Sqrt(2*0.125*0.125) / math.Sqrt(2)
	if !approx(e.CPIHalfWidth, wantH) {
		t.Errorf("CPIHalfWidth %v, want %v", e.CPIHalfWidth, wantH)
	}
	if !approx(e.IPC, 1/0.375) {
		t.Errorf("IPC %v, want %v", e.IPC, 1/0.375)
	}
	// The IPC interval is the CPI interval through 1/x, wider side.
	if !approx(e.IPCHalfWidth, 1/(0.375-wantH)-1/0.375) {
		t.Errorf("IPCHalfWidth %v", e.IPCHalfWidth)
	}

	// Degenerate interval (half-width beyond the mean) clamps to 1/m.
	if err := e.finalize([]float64{0.01, 2.0}); err != nil {
		t.Fatal(err)
	}
	if !approx(e.IPCHalfWidth, 1/e.CPIMean) {
		t.Errorf("degenerate IPCHalfWidth %v, want %v", e.IPCHalfWidth, 1/e.CPIMean)
	}

	if err := e.finalize([]float64{1.0}); err == nil {
		t.Error("finalize accepted a single window")
	}
}

func newCore(t testing.TB, cfgName, wlName string) *core.Core {
	t.Helper()
	cfg, err := config.Named(cfgName)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName(wlName)
	if err != nil {
		t.Fatal(err)
	}
	return core.New(cfg, prog.MachineSource{M: w.NewMachine()})
}

// TestRunProducesEstimate: a schedule over an endless kernel yields
// exactly Windows windows, a positive IPC and a finite interval, with
// the aggregate counters matching the per-window sums.
func TestRunProducesEstimate(t *testing.T) {
	p, err := Spec{Windows: 4, Warm: 5_000}.Plan(20_000)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Run(context.Background(), newCore(t, "EOLE_4_64", "gzip"), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.WindowIPC) != 4 {
		t.Fatalf("%d windows, want 4", len(est.WindowIPC))
	}
	if est.SourceExhausted {
		t.Error("SourceExhausted on an endless kernel")
	}
	if est.IPC <= 0 || math.IsNaN(est.IPC) || est.IPCHalfWidth < 0 {
		t.Errorf("estimate IPC %v ± %v", est.IPC, est.IPCHalfWidth)
	}
	// The core commits whole groups, so each window overshoots its
	// target by at most one commit group.
	if want := uint64(4 * p.Measure); est.Stats.Committed < want || est.Stats.Committed > want+4*64 {
		t.Errorf("aggregate commits %d, want ~%d", est.Stats.Committed, want)
	}
	if est.Stats.Cycles == 0 {
		t.Error("aggregate cycles zero")
	}
	// Windows are equal-sized up to the commit-group overshoot, so
	// the IPC estimate tracks the aggregate ratio closely.
	if agg := est.Stats.IPC(); math.Abs(agg-est.IPC)/agg > 1e-2 {
		t.Errorf("estimate IPC %v far from aggregate IPC %v", est.IPC, agg)
	}
}

// TestRunDeterministic: identical (config, workload, plan) runs give
// identical estimates — the jitter stream is fixed-seed, so sampled
// results are cacheable.
func TestRunDeterministic(t *testing.T) {
	p, err := Spec{Windows: 4, Skip: 3_000, Warm: 5_000}.Plan(20_000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(context.Background(), newCore(t, "EOLE_4_64", "hmmer"), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), newCore(t, "EOLE_4_64", "hmmer"), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical sampled runs differ:\n%+v\n%+v", a, b)
	}
}

// haltingWorkload builds a finite program: n loop iterations of a few
// µ-ops, then halt.
func haltingWorkload(iters int64) workload.Workload {
	b := prog.NewBuilder("finite")
	i, n, acc := isa.IntReg(1), isa.IntReg(2), isa.IntReg(3)
	b.Movi(n, iters)
	b.Label("top")
	b.Addi(acc, acc, 3)
	b.Addi(i, i, 1)
	b.Blt(i, n, "top")
	b.Halt()
	return workload.Workload{
		Name: "finite", Short: "finite",
		Program: b.MustBuild(),
	}
}

// TestRunSourceExhausted: a source that dries up mid-schedule keeps
// the completed windows (flagging the truncation) but fails when
// fewer than two windows completed.
func TestRunSourceExhausted(t *testing.T) {
	cfg, _ := config.Named("EOLE_4_64")
	w := haltingWorkload(12_000) // ~36K µ-ops: under three full windows

	p, err := Spec{Windows: 4, Warm: 2_000, Measure: 10_000, DetailWarmup: 500}.Plan(0)
	if err != nil {
		t.Fatal(err)
	}
	c := core.New(cfg, prog.MachineSource{M: w.NewMachine()})
	est, err := Run(context.Background(), c, p)
	if err != nil {
		t.Fatal(err)
	}
	if !est.SourceExhausted {
		t.Error("SourceExhausted not set on a drained source")
	}
	if len(est.WindowIPC) >= 4 {
		t.Errorf("%d windows completed on a truncated stream", len(est.WindowIPC))
	}

	// Too short for even two windows: a hard error.
	short := haltingWorkload(2_000)
	c = core.New(cfg, prog.MachineSource{M: short.NewMachine()})
	if _, err := Run(context.Background(), c, p); err == nil {
		t.Error("Run succeeded with fewer than two complete windows")
	}
}

// TestRunCancellation: context cancellation aborts the schedule in
// every phase.
func TestRunCancellation(t *testing.T) {
	p, err := Spec{Windows: 4, Warm: 5_000}.Plan(20_000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, newCore(t, "EOLE_4_64", "gzip"), p); err != context.Canceled {
		t.Errorf("canceled Run: err %v", err)
	}
}

// TestJitterSpreadsWindows: the splitmix64 jitter must actually vary
// the fast-forward lengths (a regression here silently reintroduces
// periodicity aliasing).
func TestJitterSpreadsWindows(t *testing.T) {
	p := Plan{Windows: 8, Warm: 40_000, Measure: 1, DetailWarmup: 1}
	if jitterRange(p) != 40_000 {
		t.Fatalf("jitterRange %d, want the warm length", jitterRange(p))
	}
	p = Plan{Windows: 8, Skip: 10_000, Measure: 1, DetailWarmup: 1}
	if jitterRange(p) != 10_000 {
		t.Fatalf("jitterRange %d, want the skip length", jitterRange(p))
	}
	seen := map[uint64]bool{}
	rng := uint64(0)
	var out uint64
	for i := 0; i < 8; i++ {
		out, rng = splitmix64(rng)
		seen[out%(40_000+1)] = true
	}
	if len(seen) < 6 {
		t.Errorf("jitter stream produced only %d distinct offsets in 8 draws", len(seen))
	}
}
