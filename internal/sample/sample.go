// Package sample implements SMARTS-style sampled simulation: instead
// of simulating a workload's whole dynamic stream cycle by cycle, the
// sampler alternates cheap fast-forward phases with short detailed
// measurement windows and reports IPC as a mean with a CLT 95%
// confidence interval.
//
// Each of the W windows runs three phases over the shared µ-op
// source:
//
//	skip     — advance the stream without touching any state
//	           (functional interpretation, or a trace-cursor bump);
//	warm     — advance the stream while training the branch and
//	           value predictors and touching caches and Store Sets
//	           functionally (core.Warm: no cycle accounting);
//	measure  — detailed cycle-level simulation; the first
//	           DetailWarmup µ-ops refill the pipeline and are
//	           discarded, the remaining Measure µ-ops produce the
//	           window's IPC.
//
// Because the simulator is deterministic, a given (config, workload,
// spec) always produces the same estimate — sampled results are as
// cacheable and comparable as full runs, they just cost a fraction of
// the detailed cycles. The accompanying differential test harness
// (sampling_diff_test.go at the repository root) checks that the
// estimate brackets the full-run IPC for every named configuration.
package sample

import (
	"context"
	"fmt"
	"math"

	"eole/internal/core"
)

// Structural ceilings for Validate. Specs arrive from untrusted
// sources (the eoled HTTP API), so every field the sampler loops or
// allocates by must be bounded.
const (
	minWindows = 2       // one window has no variance, hence no CI
	maxWindows = 1 << 12 // window IPCs are retained for the estimate
	maxPhase   = 1 << 40 // per-phase µ-op ceilings
)

// defaultDetailWarmup is the detailed pre-measurement run used when a
// spec leaves DetailWarmup zero: enough to drain the pipeline-fill
// transient after a flush (the in-flight window is at most a few
// hundred µ-ops) without denting the fast-forward economics.
const defaultDetailWarmup = 2048

// Spec configures sampled simulation. It is plain data: it marshals
// to JSON losslessly (the eoled wire form), and its canonical
// encoding participates in result-cache identity, so a sampled run
// never shares a cache entry with a full run or with a differently
// sampled one.
type Spec struct {
	// Windows is the number of measurement windows (>= 2; the CLT
	// interval needs a variance estimate).
	Windows int `json:"windows"`
	// Skip is the per-window fast-forward length in µ-ops: advanced
	// with no state updates at all.
	Skip uint64 `json:"skip"`
	// Warm is the per-window functional-warming length in µ-ops:
	// predictors, caches and Store Sets are updated, cycles are not
	// modelled.
	Warm uint64 `json:"warm"`
	// Measure is the per-window measured length in µ-ops. Zero means
	// "divide the run's total measure budget evenly across windows"
	// (the Plan resolves it), which makes a sampled run directly
	// comparable to a full run with the same (warmup, measure)
	// arguments.
	Measure uint64 `json:"measure,omitempty"`
	// DetailWarmup is the detailed (cycle-accurate) run preceding
	// each measurement, discarded from statistics; it refills the
	// pipeline, IQ and ROB after the fast-forward. Zero selects a
	// small default.
	DetailWarmup uint64 `json:"detail_warmup,omitempty"`
}

// Validate rejects structurally impossible specs with errors naming
// the offending field.
func (s Spec) Validate() error {
	switch {
	case s.Windows < minWindows:
		return fmt.Errorf("sample: windows(%d) must be >= %d (the confidence interval needs a variance estimate)", s.Windows, minWindows)
	case s.Windows > maxWindows:
		return fmt.Errorf("sample: windows(%d) must be <= %d", s.Windows, maxWindows)
	case s.Skip > maxPhase:
		return fmt.Errorf("sample: skip(%d) must be <= %d", s.Skip, maxPhase)
	case s.Warm > maxPhase:
		return fmt.Errorf("sample: warm(%d) must be <= %d", s.Warm, maxPhase)
	case s.Measure > maxPhase:
		return fmt.Errorf("sample: measure(%d) must be <= %d", s.Measure, maxPhase)
	case s.DetailWarmup > maxPhase:
		return fmt.Errorf("sample: detail_warmup(%d) must be <= %d", s.DetailWarmup, maxPhase)
	}
	return nil
}

// Plan is a fully resolved sampling schedule: Spec with the derived
// per-window measure and the DetailWarmup default applied.
type Plan struct {
	Windows      int
	Skip         uint64
	Warm         uint64
	DetailWarmup uint64
	Measure      uint64 // per-window, always > 0
}

// Plan resolves the spec against a run's total measure budget: a zero
// per-window Measure becomes totalMeasure/Windows, and a zero
// DetailWarmup becomes the package default.
func (s Spec) Plan(totalMeasure uint64) (Plan, error) {
	if err := s.Validate(); err != nil {
		return Plan{}, err
	}
	p := Plan{
		Windows:      s.Windows,
		Skip:         s.Skip,
		Warm:         s.Warm,
		DetailWarmup: s.DetailWarmup,
		Measure:      s.Measure,
	}
	if p.Measure == 0 {
		p.Measure = totalMeasure / uint64(s.Windows)
	}
	if p.Measure == 0 {
		return Plan{}, fmt.Errorf("sample: %d windows over a %d-µ-op measure budget leaves empty windows (set measure >= windows, or a per-window measure in the spec)",
			s.Windows, totalMeasure)
	}
	if p.DetailWarmup == 0 {
		p.DetailWarmup = defaultDetailWarmup
	}
	return p, nil
}

// FlushAllowance is the per-window stream budget for the µ-ops
// FlushPipeline discards at the window boundary: the detailed run
// fetches ahead of its commit target, and those already-consumed
// in-flight µ-ops are dropped when the next fast-forward starts. The
// bound mirrors trace.ReplaySlack's rationale — the in-flight set
// (window ring + fetch queue + pending slot) stays well under 4096
// for every named configuration. A custom machine that fetches
// further ahead (ROB beyond ~2000 entries, oversized fetch queue)
// discards more per window than this; callers who know the config
// must budget windows × (trace.SlackFor(cfg) − FlushAllowance) extra
// stream on top of StreamNeed when sizing traces (the simsvc trace
// store and eolesim do).
const FlushAllowance = 4096

// PerWindow returns the µ-ops one window nominally consumes from the
// source (jitter adds up to jitterRange(p) more, and the window
// boundary discards up to FlushAllowance in-flight µ-ops).
func (p Plan) PerWindow() uint64 {
	return p.Skip + p.Warm + p.DetailWarmup + p.Measure
}

// Total returns the µ-ops the whole schedule may consume from the
// source (excluding any initial warm-up the caller adds): the nominal
// phases plus the worst-case placement jitter plus the per-window
// flush discard, saturating instead of overflowing. Size trace
// recordings from this (via Spec.StreamNeed) — a tighter budget can
// run dry mid-schedule.
func (p Plan) Total() uint64 {
	per := p.PerWindow() + jitterRange(p) + FlushAllowance
	if per != 0 && uint64(p.Windows) > math.MaxUint64/per {
		return math.MaxUint64
	}
	return per * uint64(p.Windows)
}

// jitterRange is the per-window placement jitter bound: the length of
// the fast-forward phase (so a window's fast-forward is uniformly
// stretched to between one and two times its nominal length).
// Strictly periodic kernels defeat systematic sampling — windows
// placed at a fixed stride can alias with the program's period and
// all land on the same phase (the estimate is then precise and
// wrong; the namd kernel's ~90K-µ-op index period does exactly
// this). Stretching each window's fast-forward by a deterministic
// pseudo-random amount spreads the measurement positions across the
// period while staying exactly reproducible: the jitter sequence is a
// fixed-seed splitmix64 stream, so a given (config, workload, spec)
// still simulates the same windows every time. The jitter rides on
// the warm phase when there is one (keeping predictor training
// continuous) and on the skip phase otherwise.
func jitterRange(p Plan) uint64 {
	if p.Warm > 0 {
		return p.Warm
	}
	return p.Skip
}

// splitmix64 is the jitter PRNG step (Vigna's SplitMix64): one
// 64-bit state in, one well-mixed output and the advanced state out.
func splitmix64(state uint64) (out, next uint64) {
	next = state + 0x9E3779B97F4A7C15
	z := next
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31), next
}

// nextJitter draws one window's placement jitter in [0, jrange] and
// advances the PRNG state. Run and StreamConsumed both draw through
// this, so the accounting matches the execution exactly.
func nextJitter(rng, jrange uint64) (jitter, next uint64) {
	if jrange == 0 {
		return 0, rng
	}
	out, next := splitmix64(rng)
	return out % (jrange + 1), next
}

// StreamConsumed returns the exact µ-ops the schedule draws from the
// source through its phases: warmup plus every window's nominal
// phases plus the deterministic jitter sequence. It excludes the
// small per-window flush discard (bounded by FlushAllowance but
// config-dependent), so it slightly understates true consumption —
// use StreamNeed, which budgets the worst case, to size traces; use
// this for throughput accounting. Returns MaxUint64 when the spec
// does not resolve.
func (s Spec) StreamConsumed(warmup, totalMeasure uint64) uint64 {
	p, err := s.Plan(totalMeasure)
	if err != nil {
		return math.MaxUint64
	}
	total := warmup
	jrange := jitterRange(p)
	rng := uint64(0)
	var jitter uint64
	for w := 0; w < p.Windows; w++ {
		jitter, rng = nextJitter(rng, jrange)
		add := p.PerWindow() + jitter
		if total > math.MaxUint64-add {
			return math.MaxUint64
		}
		total += add
	}
	return total
}

// StreamNeed returns the µ-ops a sampled run with this spec consumes
// from its source: warmup (functionally warmed before the first
// window) plus every window, saturating instead of overflowing.
// Callers sizing trace recordings add their replay slack on top.
func (s Spec) StreamNeed(warmup, totalMeasure uint64) uint64 {
	p, err := s.Plan(totalMeasure)
	if err != nil {
		return math.MaxUint64
	}
	t := p.Total()
	if warmup > math.MaxUint64-t {
		return math.MaxUint64
	}
	return warmup + t
}

// Estimate is the result of a sampled run.
//
// The statistics are computed in CPI space, following SMARTS: every
// window measures the same number of committed µ-ops (up to the
// core's commit-group overshoot), so the mean of the per-window CPIs
// is an unbiased estimator of the full run's instruction-weighted CPI
// (total cycles over total commits), which a mean of per-window IPCs
// is not. The IPC estimate is the
// reciprocal of the mean CPI, and its confidence half-width is the
// CPI interval mapped through that reciprocal (conservatively: the
// wider of the two asymmetric sides).
type Estimate struct {
	// WindowIPC holds one IPC per completed measurement window
	// (reciprocals of the window CPIs, for inspection and tests).
	WindowIPC []float64
	// CPIMean and CPIHalfWidth are the window-CPI mean and its CLT
	// 95% confidence half-width 1.96·s/√n (s is the sample standard
	// deviation over windows).
	CPIMean      float64
	CPIHalfWidth float64
	// IPC is the sampled IPC estimate, 1/CPIMean.
	IPC float64
	// IPCHalfWidth bounds the IPC estimate: the full-run IPC claim is
	// IPC ± IPCHalfWidth (the CPI interval mapped through 1/x, taking
	// the wider side).
	IPCHalfWidth float64
	// Stats sums the detailed counters over the measured windows
	// (cycles, commits, squashes, ...), so a sampled report can carry
	// the same counter set as a full one.
	Stats core.Stats
	// SourceExhausted reports that the µ-op source ran dry before the
	// schedule completed; WindowIPC then holds fewer than
	// Plan.Windows entries (incomplete windows are discarded to keep
	// the windows equally weighted).
	SourceExhausted bool
}

// finalize computes the mean and confidence interval from the
// accumulated window CPIs.
func (e *Estimate) finalize(cpis []float64) error {
	n := len(cpis)
	if n < minWindows {
		return fmt.Errorf("sample: only %d measurement window(s) completed before the source ran dry; need >= %d for a confidence interval", n, minWindows)
	}
	var sum float64
	for _, x := range cpis {
		sum += x
	}
	m := sum / float64(n)
	var ss float64
	for _, x := range cpis {
		d := x - m
		ss += d * d
	}
	sdev := math.Sqrt(ss / float64(n-1))
	h := 1.96 * sdev / math.Sqrt(float64(n))
	e.CPIMean, e.CPIHalfWidth = m, h
	e.IPC = 1 / m
	// Map [m-h, m+h] through 1/x; the lower CPI bound gives the wider
	// IPC side. A half-width at or beyond the mean means the estimate
	// is noise — clamp the bound to the degenerate all-of-IPC claim.
	if h < m {
		e.IPCHalfWidth = 1/(m-h) - 1/m
	} else {
		e.IPCHalfWidth = 1 / m
	}
	return nil
}

// Run executes the schedule on a prepared core (constructed for the
// target config and source, optionally pre-warmed by the caller) and
// returns the estimate. The core is left flushed after the final
// window; its cumulative predictor and cache state covers everything
// warmed or measured.
//
// Cancellation: ctx is checked in every phase (the fast-forward loops
// and the detailed cycle loop both poll it); a canceled run returns
// ctx.Err() and no estimate — partial estimates are not comparable.
func Run(ctx context.Context, c *core.Core, p Plan) (*Estimate, error) {
	est := &Estimate{}
	cpis := make([]float64, 0, p.Windows)
	jrange := jitterRange(p)
	rng := uint64(0)
	for w := 0; w < p.Windows; w++ {
		// Deterministic placement jitter (see jitterRange).
		var jitter uint64
		jitter, rng = nextJitter(rng, jrange)
		skip, warm := p.Skip, p.Warm
		if warm > 0 {
			warm += jitter
		} else {
			skip += jitter
		}
		// Discard the previous window's in-flight µ-ops (already
		// fetched, already trained the predictors) so the stream is
		// positioned for the fast-forward.
		c.FlushPipeline()
		if skip > 0 {
			done, err := c.SkipContext(ctx, skip)
			if err != nil {
				return nil, err
			}
			if done < skip {
				est.SourceExhausted = true
				break
			}
		}
		if warm > 0 {
			done, err := c.WarmContext(ctx, warm)
			if err != nil {
				return nil, err
			}
			if done < warm {
				est.SourceExhausted = true
				break
			}
		}
		c.ResetStats()
		if p.DetailWarmup > 0 {
			st, err := c.RunContext(ctx, p.DetailWarmup)
			if err != nil {
				return nil, err
			}
			if st.Committed < p.DetailWarmup {
				est.SourceExhausted = true
				break
			}
			c.ResetStats()
		}
		st, err := c.RunContext(ctx, p.Measure)
		if err != nil {
			return nil, err
		}
		if st.Committed < p.Measure {
			// A truncated window breaks the equal-weight invariant
			// behind the CPI estimator; discard it.
			est.SourceExhausted = true
			break
		}
		cpi := float64(st.Cycles) / float64(st.Committed)
		cpis = append(cpis, cpi)
		est.WindowIPC = append(est.WindowIPC, 1/cpi)
		est.Stats.Add(st)
	}
	if err := est.finalize(cpis); err != nil {
		return nil, err
	}
	return est, nil
}
