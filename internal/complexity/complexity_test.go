package complexity

import (
	"strings"
	"testing"

	"eole/internal/config"
)

func named(t *testing.T, n string) config.Config {
	t.Helper()
	c, err := config.Named(n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBaselinePortsMatchPaper(t *testing.T) {
	// §6.2: baseline 6-issue = 12 read / 6 write ports.
	p := PortsFor(named(t, "Baseline_6_64"))
	if p.Reads != 12 || p.Writes != 6 {
		t.Fatalf("baseline ports = %dR/%dW, paper says 12R/6W", p.Reads, p.Writes)
	}
}

func TestNaiveVPPortsMatchPaper(t *testing.T) {
	// §6.2: Baseline_VP_6_64 needs 14 write (8 predictions + 6 OoO)
	// and 20 read ports (8 validation/training + 12 OoO).
	p := PortsFor(named(t, "Baseline_VP_6_64"))
	if p.Writes != 14 {
		t.Errorf("VP baseline writes = %d, paper says 14", p.Writes)
	}
	if p.Reads != 20 {
		t.Errorf("VP baseline reads = %d, paper says 20", p.Reads)
	}
}

func TestEOLE4PortsMatchPaper(t *testing.T) {
	// §6.2: EOLE_4_64 (unbanked) = 12 write (8 EE + 4 OoO) and 24 read
	// (8 OoO + 16 LE/validation/training) ports.
	p := PortsFor(named(t, "EOLE_4_64"))
	if p.Writes != 12 {
		t.Errorf("EOLE_4_64 writes = %d, paper says 12", p.Writes)
	}
	if p.Reads != 24 {
		t.Errorf("EOLE_4_64 reads = %d, paper says 24", p.Reads)
	}
}

func TestUnbankedEOLEAreaIsAboutFourX(t *testing.T) {
	// §6.2: "the area cost of the EOLE PRF would be 4 times the
	// initial area cost of the 6-issue baseline PRF".
	ratio := AreaFactor(named(t, "EOLE_4_64")) / AreaFactor(named(t, "Baseline_6_64"))
	if ratio < 3.3 || ratio > 4.7 {
		t.Fatalf("unbanked EOLE area = %.2fx baseline, paper says ~4x", ratio)
	}
}

func TestPracticalEOLEMatchesBaselinePorts(t *testing.T) {
	// §6.3: the 4-bank, 4-LE/VT-port EOLE has "a total of 12 read
	// ports and 6 write ports [per bank], just as the baseline 6-issue
	// configuration without VP".
	pb := PortsFor(named(t, "Baseline_6_64"))
	pp := PortsFor(named(t, "EOLE_4_64_4ports_4banks"))
	if pp.PerBankReads != pb.PerBankReads {
		t.Errorf("practical EOLE bank reads = %d, baseline = %d",
			pp.PerBankReads, pb.PerBankReads)
	}
	if pp.PerBankWrites != pb.PerBankWrites {
		t.Errorf("practical EOLE bank writes = %d, baseline = %d",
			pp.PerBankWrites, pb.PerBankWrites)
	}
}

func TestPracticalEOLEAreaNearBaseline(t *testing.T) {
	// §6.3: "the total area and power consumption of the PRF of a
	// 4-issue EOLE core is similar to that of a baseline 6-issue core".
	ratio := AreaFactor(named(t, "EOLE_4_64_4ports_4banks")) /
		AreaFactor(named(t, "Baseline_6_64"))
	if ratio < 0.8 || ratio > 1.3 {
		t.Fatalf("practical EOLE PRF area = %.2fx baseline, paper says ~1x", ratio)
	}
}

func TestSchedulerAndBypassShrink(t *testing.T) {
	base := named(t, "Baseline_6_64")
	eole := named(t, "EOLE_4_64")
	if SchedulerFactor(eole) >= SchedulerFactor(base) {
		t.Error("4-issue scheduler must be cheaper")
	}
	// bypass ∝ width²: 16/36.
	if r := BypassFactor(eole) / BypassFactor(base); r < 0.4 || r > 0.5 {
		t.Errorf("bypass ratio %.3f, want (4/6)^2 ≈ 0.44", r)
	}
}

func TestVTAGEWriteDemandVsEOLE(t *testing.T) {
	// The paper notes the naive VP PRF (20R/14W) is "slightly less
	// than EOLE_4_64" (24R/12W) — both prohibitive unbanked.
	vp := PortsFor(named(t, "Baseline_VP_6_64"))
	eo := PortsFor(named(t, "EOLE_4_64"))
	if !(vp.Reads < eo.Reads && vp.Writes > eo.Writes) {
		t.Errorf("port relation wrong: VP %dR/%dW vs EOLE %dR/%dW",
			vp.Reads, vp.Writes, eo.Reads, eo.Writes)
	}
}

func TestReportAndSummaryRender(t *testing.T) {
	tb := Section6()
	out := tb.Render()
	for _, want := range []string{"Baseline_6_64", "EOLE_4_64_4ports_4banks", "PRF_area"} {
		if !strings.Contains(out, want) {
			t.Errorf("Section 6 table missing %q", want)
		}
	}
	s := Summary()
	if !strings.Contains(s, "prohibitive") || !strings.Contains(s, "4x") {
		t.Errorf("summary missing conclusions:\n%s", s)
	}
}
