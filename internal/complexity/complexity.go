// Package complexity implements the paper's Section 6 hardware
// cost analysis: physical-register-file port accounting, the Zyuban &
// Kogge area model, and first-order scheduler/bypass complexity
// metrics. This is the other half of the paper's argument — EOLE is
// not only performance-neutral at 4-issue (Section 5) but strictly
// cheaper (Section 6):
//
//   - Baseline_6_64 PRF: 12R/6W.
//   - Adding VP naively (Baseline_VP_6_64): 20R/14W — "prohibitive".
//   - EOLE_4_64 unbanked: 24R/12W — ~4x the baseline PRF area.
//   - EOLE_4_64 with a 4-bank PRF and port-limited LE/VT: 12R/6W per
//     bank — the same port budget as the 6-issue baseline without VP.
package complexity

import (
	"fmt"

	"eole/internal/config"
	"eole/internal/stats"
)

// PRFPorts is the port demand of one configuration on (each bank of)
// the physical register file.
type PRFPorts struct {
	// Whole-file demand with a monolithic (1-bank) file.
	Reads  int
	Writes int
	// Per-bank demand under the configuration's banking, after the
	// §6.3 mitigations (round-robin allocation for EE/prediction
	// writes, the LE/VT read-port limit).
	Banks         int
	PerBankReads  int
	PerBankWrites int
}

// PortsFor derives the PRF port demand from a machine configuration,
// following the paper's accounting:
//
//   - OoO execution: 2 reads and 1 write per issue slot.
//   - Value prediction (validation at commit): +RenameWidth write
//     ports (predictions written at dispatch) and +CommitWidth read
//     ports (validation + predictor training).
//   - EOLE: the EE stage writes its results through the same
//     prediction write ports; Late Execution raises the LE/VT read
//     demand to 2 per LE ALU (operands) on top of validation/training
//     — "8 ALUs and up to 16 read ports" at 8-wide commit.
func PortsFor(cfg config.Config) PRFPorts {
	p := PRFPorts{Banks: cfg.PRF.Banks}

	oooReads := 2 * cfg.IssueWidth
	oooWrites := cfg.IssueWidth

	vpWrites, levtReads := 0, 0
	if cfg.ValuePrediction {
		vpWrites = cfg.RenameWidth  // predictions (and EE results) at dispatch
		levtReads = cfg.CommitWidth // validation + training result reads
		if cfg.LateExecution {
			w := cfg.LEWidth
			if w <= 0 {
				w = cfg.CommitWidth
			}
			// LE ALU operand reads; validation/training reads share
			// the same stage. Total matches the paper's "up to 16".
			levtReads = 2 * w
		}
	}

	p.Reads = oooReads + levtReads
	p.Writes = oooWrites + vpWrites

	// Banked organization (§6.3): EE/prediction writes spread
	// round-robin over the banks; LE/VT reads are capped per bank when
	// the configuration limits them.
	p.PerBankReads = oooReads
	p.PerBankWrites = oooWrites
	if cfg.ValuePrediction {
		p.PerBankWrites += ceilDiv(vpWrites, cfg.PRF.Banks)
		if cfg.PRF.LEVTReadPortsPerBank > 0 {
			p.PerBankReads += cfg.PRF.LEVTReadPortsPerBank
		} else {
			p.PerBankReads += ceilDiv(levtReads, cfg.PRF.Banks)
		}
	}
	return p
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// AreaFactor estimates relative PRF area using Zyuban & Kogge:
// area ∝ registers × (R+W) × (R+2W), evaluated per bank and summed.
func AreaFactor(cfg config.Config) float64 {
	p := PortsFor(cfg)
	regsPerBank := float64(cfg.PRF.IntRegs+cfg.PRF.FPRegs) / float64(cfg.PRF.Banks)
	perBank := regsPerBank *
		float64(p.PerBankReads+p.PerBankWrites) *
		float64(p.PerBankReads+2*p.PerBankWrites)
	return perBank * float64(cfg.PRF.Banks)
}

// SchedulerFactor is a first-order Wakeup & Select cost: each IQ entry
// broadcasts against issue-width result tags per source operand, and
// Select arbitrates issue-width grants over the whole queue.
func SchedulerFactor(cfg config.Config) float64 {
	return float64(cfg.IQSize) * float64(2*cfg.IssueWidth)
}

// BypassFactor grows quadratically with the number of simultaneous
// producers on the network (§1: "the complexity of the bypass network
// grows quadratically with the number of functional units").
func BypassFactor(cfg config.Config) float64 {
	return float64(cfg.IssueWidth) * float64(cfg.IssueWidth)
}

// Report compares configurations against a baseline, reproducing the
// Section 6 numbers as a table: port counts, relative PRF area,
// scheduler and bypass factors.
func Report(baseline config.Config, others ...config.Config) *stats.Table {
	t := stats.NewTable(
		"Section 6: hardware complexity (relative to "+baseline.Name+")",
		"configuration",
		"PRF_R", "PRF_W", "bank_R", "bank_W", "PRF_area", "scheduler", "bypass")
	t.Note = "PRF area per Zyuban-Kogge regs*(R+W)*(R+2W), per bank; scheduler ~ IQ*2*issue; bypass ~ issue^2"
	baseArea := AreaFactor(baseline)
	baseSched := SchedulerFactor(baseline)
	baseByp := BypassFactor(baseline)
	add := func(c config.Config) {
		p := PortsFor(c)
		t.AddRow(c.Name,
			float64(p.Reads), float64(p.Writes),
			float64(p.PerBankReads), float64(p.PerBankWrites),
			AreaFactor(c)/baseArea,
			SchedulerFactor(c)/baseSched,
			BypassFactor(c)/baseByp)
	}
	add(baseline)
	for _, c := range others {
		add(c)
	}
	return t
}

// Section6 builds the paper's comparison: the 6-issue baseline, the
// naive VP machine, idealized EOLE_4_64, and the practical banked/
// port-limited EOLE.
func Section6() *stats.Table {
	base, err := config.Named("Baseline_6_64")
	if err != nil {
		panic(err)
	}
	vp, _ := config.Named("Baseline_VP_6_64")
	eole4, _ := config.Named("EOLE_4_64")
	practical, _ := config.Named("EOLE_4_64_4ports_4banks")
	return Report(base, vp, eole4, practical)
}

// Summary states the paper's §6 conclusions with the model's numbers.
func Summary() string {
	base, _ := config.Named("Baseline_6_64")
	vp, _ := config.Named("Baseline_VP_6_64")
	eole4, _ := config.Named("EOLE_4_64")
	practical, _ := config.Named("EOLE_4_64_4ports_4banks")
	pb := PortsFor(base)
	pp := PortsFor(practical)
	return fmt.Sprintf(`Section 6 conclusions from the model:
  naive VP PRF area        : %.1fx the baseline ("prohibitive")
  unbanked EOLE_4_64 area  : %.1fx the baseline (paper: ~4x)
  practical EOLE per bank  : %dR/%dW vs baseline %dR/%dW (paper: equal)
  practical EOLE total area: %.2fx the baseline
  scheduler factor         : %.2fx (4-issue, same IQ)
  bypass factor            : %.2fx (4 vs 6 issue)`,
		AreaFactor(vp)/AreaFactor(base),
		AreaFactor(eole4)/AreaFactor(base),
		pp.PerBankReads, pp.PerBankWrites, pb.PerBankReads, pb.PerBankWrites,
		AreaFactor(practical)/AreaFactor(base),
		SchedulerFactor(practical)/SchedulerFactor(base),
		BypassFactor(practical)/BypassFactor(base))
}
