package experiments

import (
	"os"
	"strings"
	"testing"

	"eole/internal/simsvc"
	"eole/internal/stats"
)

// sharedSvc serves every test in the package, so figures that re-run
// the same (config, workload) pairs — every speedup table re-runs its
// baseline — hit the content-addressed cache instead of re-simulating.
var sharedSvc *simsvc.Service

func TestMain(m *testing.M) {
	var err error
	sharedSvc, err = simsvc.New(simsvc.Options{})
	if err != nil {
		panic(err)
	}
	code := m.Run()
	sharedSvc.Close()
	os.Exit(code)
}

// fastOpts keeps harness tests quick: a representative 6-benchmark
// subset covering ILP-heavy, branchy and memory-bound behaviour.
func fastOpts() Opts {
	return Opts{
		Warmup:    10_000,
		Measure:   30_000,
		Workloads: []string{"namd", "art", "crafty", "gzip", "milc", "hmmer"},
		Service:   sharedSvc,
	}
}

func TestTable3Shape(t *testing.T) {
	tb, err := Table3(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 6 {
		t.Fatalf("rows = %d, want 6", tb.Rows())
	}
	ipc, ok := tb.ColumnByName("IPC")
	if !ok {
		t.Fatal("missing IPC column")
	}
	for i, v := range ipc {
		if v <= 0 || v > 8 {
			t.Errorf("row %d: IPC %v out of range", i, v)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	tb, err := Figure2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	one, _ := tb.ColumnByName("1_ALU_stage")
	two, _ := tb.ColumnByName("2_ALU_stages")
	for i := range one {
		if one[i] < 0 || one[i] > 0.8 {
			t.Errorf("EE fraction out of range: %v", one[i])
		}
		if two[i] < one[i]-0.01 {
			t.Errorf("2-stage EE (%v) below 1-stage (%v)", two[i], one[i])
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	tb, err := Figure4(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	total, _ := tb.ColumnByName("total")
	br, _ := tb.ColumnByName("HighConf_branches")
	vp, _ := tb.ColumnByName("Value_predicted")
	for i := range total {
		if diff := total[i] - (br[i] + vp[i]); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("row %d: split does not sum: %v + %v != %v", i, br[i], vp[i], total[i])
		}
	}
	// art must be near the top, milc near the bottom (paper Fig 4).
	artLE, _ := tb.Value("art", "total")
	milcLE, _ := tb.Value("milc", "total")
	if artLE <= milcLE {
		t.Errorf("art LE (%v) must exceed milc LE (%v)", artLE, milcLE)
	}
}

func TestFigure6NoBigSlowdowns(t *testing.T) {
	tb, err := Figure6(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	col, _ := tb.ColumnByName("Baseline_VP_6_64")
	if stats.Min(col) < 0.93 {
		t.Errorf("VP slowdown beyond noise: min speedup %.3f", stats.Min(col))
	}
	if stats.Geomean(col) < 1.0 {
		t.Errorf("VP geomean %.3f < 1", stats.Geomean(col))
	}
}

func TestFigure7HeadlineShape(t *testing.T) {
	tb, err := Figure7(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	vp4, _ := tb.ColumnByName("Baseline_VP_4_64")
	eole4, _ := tb.ColumnByName("EOLE_4_64")
	eole6, _ := tb.ColumnByName("EOLE_6_64")
	if gm := stats.Geomean(vp4); gm > 0.97 {
		t.Errorf("shrinking issue width costs nothing (gm %.3f); wrong shape", gm)
	}
	if gm := stats.Geomean(eole4); gm < 0.95 {
		t.Errorf("EOLE_4_64 geomean %.3f; must recover the 6-issue baseline", gm)
	}
	if gm := stats.Geomean(eole6); gm < stats.Geomean(vp4) {
		t.Errorf("EOLE_6_64 below the narrow baseline")
	}
}

func TestFigure12Headline(t *testing.T) {
	tb, err := Figure12(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	practical, _ := tb.ColumnByName("EOLE_4_64_4ports_4banks")
	if gm := stats.Geomean(practical); gm < 0.93 {
		t.Errorf("practical EOLE geomean %.3f, want ≈ 1 (Figure 12)", gm)
	}
}

func TestFigure13Modularity(t *testing.T) {
	tb, err := Figure13(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range tb.Columns {
		vals, _ := tb.ColumnByName(col)
		if gm := stats.Geomean(vals); gm < 0.90 {
			t.Errorf("%s geomean %.3f; paper: slowdown under 5%% in all cases", col, gm)
		}
	}
}

func TestTable1Text(t *testing.T) {
	txt := Table1()
	for _, want := range []string{"192-entry ROB", "64-entry unified IQ", "6-issue", "DDR3-1600"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Table 1 text missing %q", want)
		}
	}
}

func TestTable2Budgets(t *testing.T) {
	tb := Table2()
	sKB, _ := tb.Value("2D-Stride", "KB")
	vKB, _ := tb.Value("VTAGE", "KB")
	if sKB < 150 || sKB > 350 {
		t.Errorf("2D-Stride = %.1fKB, want ~250", sKB)
	}
	if vKB >= sKB {
		t.Errorf("VTAGE (%.1fKB) must be smaller than 2D-Stride (%.1fKB)", vKB, sKB)
	}
}

func TestSection6Text(t *testing.T) {
	txt := Section6()
	for _, want := range []string{"EOLE_4_64_4ports_4banks", "PRF_area", "prohibitive"} {
		if !strings.Contains(txt, want) {
			t.Errorf("section6 missing %q", want)
		}
	}
}

func TestTableByID(t *testing.T) {
	o := Opts{Warmup: 2_000, Measure: 5_000, Workloads: []string{"crafty"}}
	tb, err := TableByID("figure12", o)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 1 || len(tb.Columns) != 3 {
		t.Fatalf("figure12 table shape wrong: %d rows, %d cols", tb.Rows(), len(tb.Columns))
	}
	if _, err := tb.RenderChart(tb.Columns[0], 1.0, 40); err != nil {
		t.Fatalf("chart render: %v", err)
	}
	if _, err := TableByID("table1", o); err == nil {
		t.Fatal("table1 has no table form; must error")
	}
}

func TestByIDAndIDs(t *testing.T) {
	o := Opts{Warmup: 2_000, Measure: 5_000, Workloads: []string{"crafty"}}
	for _, id := range IDs() {
		a, err := ByID(id, o)
		if err != nil {
			t.Fatalf("ByID(%s): %v", id, err)
		}
		if a.Text == "" {
			t.Errorf("%s produced empty artefact", id)
		}
	}
	if _, err := ByID("figure99", o); err == nil {
		t.Fatal("unknown artefact must error")
	}
}
