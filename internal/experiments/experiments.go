// Package experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §6 for the experiment index). Each
// FigureN/TableN function runs the required machine configurations
// over the benchmark suite and returns a stats.Table shaped like the
// paper's artefact: one row per benchmark, one column per series,
// normalized exactly as the paper normalizes.
package experiments

import (
	"context"
	"errors"
	"fmt"

	"eole"
	"eole/internal/complexity"
	"eole/internal/config"
	"eole/internal/simsvc"
	"eole/internal/stats"
	"eole/internal/vpred"
)

// Opts controls run length and benchmark selection.
type Opts struct {
	// Warmup µ-ops committed before measurement (predictor/cache
	// training; the paper uses 50M on 100M-instruction slices).
	Warmup uint64
	// Measure µ-ops committed in the measured region.
	Measure uint64
	// Workloads restricts the suite (nil = all 19).
	Workloads []string
	// Parallelism caps concurrent simulations (0 = GOMAXPROCS).
	// Ignored when Service is set.
	Parallelism int
	// Service, when non-nil, runs simulations through a shared
	// simsvc.Service so results are cached across figures (every
	// figure re-runs a baseline column). When nil, each runSet spins
	// up a private service with Parallelism workers.
	Service *simsvc.Service
	// Traces makes a private service (Service == nil) trace-driven:
	// each workload is interpreted once and replayed for every
	// configuration of the figure's sweep — results are byte-identical
	// either way. Ignored when Service is set (configure the shared
	// service instead).
	Traces bool
	// TraceDir persists recorded traces across runs (implies Traces;
	// ignored when Service is set).
	TraceDir string
	// Sampling, when non-nil, runs every simulation of every figure
	// sampled (eole.WithSampling): Warmup becomes functional warming
	// and Measure the total detailed budget per cell. Figures then
	// build on confidence-bounded IPC estimates — the tables carry the
	// means; sampled and full results never share cache entries.
	Sampling *eole.SamplingSpec
	// Runner, when non-nil, executes sweeps instead of the local
	// service — e.g. a cluster.Coordinator sharding the cells across
	// remote eoled workers. The simulator is deterministic, so figures
	// are identical whichever backend runs them. Service/Traces/
	// TraceDir are ignored when Runner is set.
	Runner SweepRunner
	// Context cancels in-flight sweeps (nil = background).
	Context context.Context
}

// SweepRunner executes one batch of simulation requests and returns
// reports aligned with them (nil slots joined into the error).
// *cluster.Coordinator satisfies it; so does any local adapter.
type SweepRunner interface {
	Sweep(ctx context.Context, reqs []simsvc.Request) ([]*eole.Report, error)
}

// DefaultOpts returns run lengths that finish the full suite in
// seconds while staying past the predictors' training horizon.
func DefaultOpts() Opts {
	return Opts{Warmup: 30_000, Measure: 100_000}
}

func (o Opts) workloads() []string {
	if len(o.Workloads) == 0 {
		return eole.WorkloadNames()
	}
	// Canonicalize to short names so aliases ("429.mcf") match the
	// row filters and report keys, and dedupe so an alias pair does
	// not produce a double-weighted row; unresolvable names pass
	// through and fail in the service with a useful error.
	out := make([]string, 0, len(o.Workloads))
	seen := make(map[string]bool, len(o.Workloads))
	for _, name := range o.Workloads {
		if w, err := eole.WorkloadByName(name); err == nil {
			name = w.Short
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// runKey identifies one simulation.
type runKey struct {
	cfg string
	wl  string
}

// runSet executes every (config, workload) pair through the batch
// simulation service and returns the reports keyed by (config name,
// workload). With a shared Opts.Service, repeated pairs — notably the
// baseline column every figure re-runs — are served from the service's
// content-addressed cache instead of re-simulating.
func runSet(o Opts, cfgs []eole.Config) (map[runKey]*eole.Report, error) {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	reqs := simsvc.ApplySampling(simsvc.Cross(cfgs, o.workloads(), o.Warmup, o.Measure), o.Sampling)
	reports, err := runReqs(ctx, o, reqs)
	if err != nil {
		return nil, err
	}
	out := make(map[runKey]*eole.Report, len(reqs))
	for i, r := range reports {
		out[runKey{reqs[i].Config.Name, reqs[i].Workload}] = r
	}
	return out, nil
}

// runReqs executes one request batch through the configured backend:
// the Runner (e.g. a cluster coordinator) when set, else the shared or
// a private local service.
func runReqs(ctx context.Context, o Opts, reqs []simsvc.Request) ([]*eole.Report, error) {
	if o.Runner != nil {
		return o.Runner.Sweep(ctx, reqs)
	}
	svc := o.Service
	if svc == nil {
		var err error
		svc, err = simsvc.New(simsvc.Options{
			Parallelism: o.Parallelism,
			Traces:      o.Traces,
			TraceDir:    o.TraceDir,
		})
		if err != nil {
			return nil, err
		}
		defer svc.Close()
	}
	sweep, err := svc.SubmitSweep(ctx, reqs)
	if err != nil {
		return nil, err
	}
	return sweep.Wait(ctx)
}

func named(name string) eole.Config {
	c, err := eole.NamedConfig(name)
	if err != nil {
		panic(err)
	}
	return c
}

// speedupTable builds a per-benchmark speedup table of the given
// configurations normalized to baseline.
func speedupTable(o Opts, title, baseline string, series []eole.Config) (*stats.Table, error) {
	cfgs := append([]eole.Config{named(baseline)}, series...)
	reports, err := runSet(o, cfgs)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(series))
	for i, c := range series {
		cols[i] = c.Name
	}
	t := stats.NewTable(title, "benchmark", cols...)
	t.Note = fmt.Sprintf("speedup over %s (IPC ratio); geomean over %d benchmarks",
		baseline, len(o.workloads()))
	t.WithGeomean = true
	for _, wl := range o.workloads() {
		base := reports[runKey{baseline, wl}]
		vals := make([]float64, len(series))
		for i, c := range series {
			vals[i] = reports[runKey{c.Name, wl}].IPC / base.IPC
		}
		t.AddRow(wl, vals...)
	}
	return t, nil
}

// Table3 reproduces Table 3: per-benchmark IPC of Baseline_6_64, with
// the paper's reported IPC alongside for comparison.
func Table3(o Opts) (*stats.Table, error) {
	reports, err := runSet(o, []eole.Config{named("Baseline_6_64")})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Table 3: baseline IPC per benchmark", "benchmark",
		"IPC", "paper_IPC")
	t.Note = "Baseline_6_64 (no value prediction); paper column is the authors' gem5/SPEC measurement"
	for _, w := range eole.Workloads() {
		keep := false
		for _, name := range o.workloads() {
			if name == w.Short {
				keep = true
			}
		}
		if !keep {
			continue
		}
		r := reports[runKey{"Baseline_6_64", w.Short}]
		t.AddRow(w.Short, r.IPC, w.PaperIPC)
	}
	return t, nil
}

// gridSeries expands a design-space grid into the config series of
// one figure. Each figure's sweep is declared as data — a base config
// plus axes — instead of hand-mutated structs; the cells keep their
// synthesized names ("<base>_<Option><value>") as column labels.
func gridSeries(g config.Grid) ([]eole.Config, error) {
	cfgs, err := g.Configs()
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return cfgs, nil
}

// Figure2 reproduces Figure 2: the proportion of committed µ-ops that
// can be early-executed with one or two ALU stages (VTAGE-2DStride
// hybrid, 6-issue machine). The sweep is an EE-depth axis on
// EOLE_6_64; the depth-1 cell fingerprints identically to the named
// EOLE_6_64, so it shares cached results with every other figure that
// runs that machine.
func Figure2(o Opts) (*stats.Table, error) {
	series, err := gridSeries(config.Grid{
		BaseName: "EOLE_6_64",
		Axes:     []config.Axis{{Option: "EarlyExecution", Values: []any{1, 2}}},
	})
	if err != nil {
		return nil, err
	}
	reports, err := runSet(o, series)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 2: early-executable fraction of committed µ-ops",
		"benchmark", "1_ALU_stage", "2_ALU_stages")
	t.Note = "paper: 10%-40%, with the second stage adding little"
	t.WithGeomean = false
	for _, wl := range o.workloads() {
		t.AddRow(wl,
			reports[runKey{series[0].Name, wl}].EEFraction,
			reports[runKey{series[1].Name, wl}].EEFraction)
	}
	return t, nil
}

// Figure4 reproduces Figure 4: the proportion of committed µ-ops that
// can be late-executed, split into very-high-confidence branches and
// value-predicted single-cycle ALU µ-ops (disjoint from Figure 2's
// early-executed set).
func Figure4(o Opts) (*stats.Table, error) {
	reports, err := runSet(o, []eole.Config{named("EOLE_6_64")})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 4: late-executable fraction of committed µ-ops",
		"benchmark", "HighConf_branches", "Value_predicted", "total")
	t.Note = "LE-eligible µ-ops that were not early-executed"
	for _, wl := range o.workloads() {
		r := reports[runKey{"EOLE_6_64", wl}]
		t.AddRow(wl, r.LEBranchFrac, r.LEFraction-r.LEBranchFrac, r.LEFraction)
	}
	return t, nil
}

// Figure6 reproduces Figure 6: speedup of adding the VTAGE-2DStride
// value predictor to the baseline (Baseline_VP_6_64 / Baseline_6_64).
func Figure6(o Opts) (*stats.Table, error) {
	return speedupTable(o, "Figure 6: speedup from value prediction",
		"Baseline_6_64", []eole.Config{named("Baseline_VP_6_64")})
}

// Figure7 reproduces Figure 7: EOLE and the VP baseline across issue
// widths, normalized to Baseline_VP_6_64.
func Figure7(o Opts) (*stats.Table, error) {
	return speedupTable(o, "Figure 7: issue-width impact on EOLE",
		"Baseline_VP_6_64",
		[]eole.Config{named("Baseline_VP_4_64"), named("EOLE_4_64"), named("EOLE_6_64")})
}

// Figure8 reproduces Figure 8: IQ-size impact, normalized to
// Baseline_VP_6_64.
func Figure8(o Opts) (*stats.Table, error) {
	return speedupTable(o, "Figure 8: instruction-queue size impact on EOLE",
		"Baseline_VP_6_64",
		[]eole.Config{named("Baseline_VP_6_48"), named("EOLE_6_48"), named("EOLE_6_64")})
}

// Figure10 reproduces Figure 10: EOLE_4_64 with a banked PRF (2/4/8
// banks), normalized to the single-bank EOLE_4_64.
func Figure10(o Opts) (*stats.Table, error) {
	series, err := gridSeries(config.Grid{
		BaseName: "EOLE_4_64",
		Axes:     []config.Axis{{Option: "PRFBanks", Values: []any{2, 4, 8}}},
	})
	if err != nil {
		return nil, err
	}
	t, err := speedupTable(o, "Figure 10: PRF banking impact (EOLE_4_64)",
		"EOLE_4_64", series)
	if err != nil {
		return nil, err
	}
	t.Note = "speedup over single-bank EOLE_4_64; paper: losses within ~2%"
	return t, nil
}

// Figure11 reproduces Figure 11: EOLE_4_64 with a 4-bank PRF and
// 2/3/4 read ports per bank for the LE/VT stage, normalized to
// EOLE_4_64 with unconstrained ports.
func Figure11(o Opts) (*stats.Table, error) {
	series, err := gridSeries(config.Grid{
		BaseName: "EOLE_4_64",
		Axes: []config.Axis{
			{Option: "PRFBanks", Values: []any{4}},
			{Option: "LEVTPorts", Values: []any{2, 3, 4}},
		},
	})
	if err != nil {
		return nil, err
	}
	t, err := speedupTable(o, "Figure 11: LE/VT read-port limits (4-bank EOLE_4_64)",
		"EOLE_4_64", series)
	if err != nil {
		return nil, err
	}
	t.Note = "paper: 2 ports lose visibly, 4 ports ≈ unconstrained"
	return t, nil
}

// Figure12 reproduces Figure 12, the headline comparison: the no-VP
// baseline, idealized EOLE_4_64 and the practical banked/port-limited
// EOLE, all normalized to Baseline_VP_6_64.
func Figure12(o Opts) (*stats.Table, error) {
	return speedupTable(o, "Figure 12: headline EOLE comparison",
		"Baseline_VP_6_64",
		[]eole.Config{named("Baseline_6_64"), named("EOLE_4_64"),
			named("EOLE_4_64_4ports_4banks")})
}

// Figure13 reproduces Figure 13: the modularity study — full EOLE,
// Late-Execution-only (OLE) and Early-Execution-only (EOE), each with
// the practical 4-bank/4-port PRF, normalized to Baseline_VP_6_64.
func Figure13(o Opts) (*stats.Table, error) {
	mk := func(name string) (eole.Config, error) {
		return config.New(
			config.FromNamed(name),
			config.WithName(name+"_4ports_4banks"),
			config.PRFBanks(4), config.LEVTPorts(4),
		)
	}
	var series []eole.Config
	for _, name := range []string{"EOLE_4_64", "OLE_4_64", "EOE_4_64"} {
		c, err := mk(name)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		series = append(series, c)
	}
	return speedupTable(o, "Figure 13: EOLE modularity (OLE and EOE)",
		"Baseline_VP_6_64", series)
}

// Table1 renders the simulated machine configuration (the analogue of
// the paper's Table 1).
func Table1() string {
	c := named("Baseline_6_64")
	return fmt.Sprintf(`== Table 1: simulated machine configuration ==
Front end   %d-wide fetch (max %d taken branches/cycle), %d-wide rename,
            %d-cycle fetch-to-rename pipe, %d-entry fetch queue,
            TAGE 1+12 components + 2-way 4K BTB + 32-entry RAS
Execution   %d-entry ROB, %d-entry unified IQ (released at issue),
            %d/%d-entry LQ/SQ, %d-issue, %dxALU(1c) %dxMulDiv(3c/25c*)
            %dxFP(3c) %dxFPMulDiv(5c/10c*) %dxLd/Str ports,
            Store Sets 1K-SSID, 256/256 INT/FP physical registers
Caches      L1I 32KB 4-way, L1D 32KB 4-way 2c (64 MSHRs),
            unified L2 2MB 16-way 12c, stride prefetcher degree 8,
            64B lines, LRU
Memory      DDR3-1600 (11-11-11), 2 ranks x 8 banks, 8KB rows,
            75-185 cycle read latency
Retire      %d-wide commit; with VP: +1 LE/VT pre-commit stage,
            value misprediction = squash (>= %d cycles)
(*unpipelined)`,
		c.FetchWidth, c.MaxTakenPerFetch, c.RenameWidth,
		c.FetchToRenameLag, c.FetchQueueSize,
		c.ROBSize, c.IQSize, c.LQSize, c.SQSize, c.IssueWidth,
		c.NumALU, c.NumMulDiv, c.NumFP, c.NumFPMulDiv, c.NumMemPorts,
		c.CommitWidth, c.ValueMispredictPenalty)
}

// Table2 reproduces Table 2: the layout and storage budget of the
// value predictor components.
func Table2() *stats.Table {
	t := stats.NewTable("Table 2: value predictor layout", "predictor",
		"entries", "KB")
	s := vpred.NewTwoDeltaStride(13, vpred.DefaultFPCVector())
	v := vpred.NewVTAGE(vpred.DefaultVTAGEConfig())
	t.Note = "paper: 2D-Stride 8192 entries / 251.9KB; VTAGE 8192-entry base + 6x1024 tagged"
	t.AddRow("2D-Stride", 8192, float64(s.StorageBits())/8192)
	t.AddRow("VTAGE", 8192+6*1024, float64(v.StorageBits())/8192)
	return t
}

// Section6 renders the paper's hardware-complexity analysis: PRF port
// counts and Zyuban-Kogge area factors for the baseline, the naive VP
// machine, idealized EOLE and the practical banked design.
func Section6() string {
	return complexity.Section6().Render() + "\n" + complexity.Summary()
}

// ErrNoTable marks artefacts that are text-only (table1, section6) and
// have no tabular form to chart.
var ErrNoTable = errors.New("text-only artefact")

// Artifact pairs an experiment id with its rendered output.
type Artifact struct {
	ID    string
	Title string
	Text  string
}

// titleByID maps artefact ids to their short titles.
var titleByID = map[string]string{
	"table1":   "machine configuration",
	"table2":   "predictor layout",
	"table3":   "baseline IPC",
	"figure2":  "early-executable fraction",
	"figure4":  "late-executable fraction",
	"figure6":  "value prediction speedup",
	"figure7":  "issue width",
	"figure8":  "IQ size",
	"figure10": "PRF banking",
	"figure11": "LE/VT ports",
	"figure12": "headline",
	"figure13": "OLE/EOE modularity",
	"section6": "hardware complexity",
}

// ByID regenerates a single artefact.
func ByID(id string, o Opts) (Artifact, error) {
	switch id {
	case "table1":
		return Artifact{id, titleByID[id], Table1()}, nil
	case "table2":
		return Artifact{id, titleByID[id], Table2().Render()}, nil
	case "section6":
		return Artifact{id, titleByID[id], Section6()}, nil
	}
	tb, err := TableByID(id, o)
	if err != nil {
		return Artifact{}, err
	}
	return Artifact{id, titleByID[id], tb.Render()}, nil
}

// TableByID returns the raw table behind a figure artefact (for chart
// rendering); table1 and section6 are text-only and return an error.
func TableByID(id string, o Opts) (*stats.Table, error) {
	switch id {
	case "table2":
		return Table2(), nil
	case "table3":
		return Table3(o)
	case "figure2":
		return Figure2(o)
	case "figure4":
		return Figure4(o)
	case "figure6":
		return Figure6(o)
	case "figure7":
		return Figure7(o)
	case "figure8":
		return Figure8(o)
	case "figure10":
		return Figure10(o)
	case "figure11":
		return Figure11(o)
	case "figure12":
		return Figure12(o)
	case "figure13":
		return Figure13(o)
	case "table1", "section6":
		return nil, fmt.Errorf("experiments: no table form for %q: %w", id, ErrNoTable)
	}
	return nil, fmt.Errorf("experiments: unknown artefact %q (try table1-3, figure2,4,6,7,8,10,11,12,13, section6)", id)
}

// RefLine returns the reference-line value for a figure's chart: 1.0
// for speedup-over-baseline figures (the paper draws the baseline as a
// horizontal line), 0 for absolute-valued ones (no line). Shared by
// eoled's /v1/figures and the experiments -figdir output so the two
// render identically.
func RefLine(id string) float64 {
	switch id {
	case "figure6", "figure7", "figure8", "figure10", "figure11", "figure12", "figure13":
		return 1.0
	}
	return 0
}

// IDs lists the artefact identifiers in paper order.
func IDs() []string {
	return []string{"table1", "table2", "table3", "figure2", "figure4",
		"figure6", "figure7", "figure8", "figure10", "figure11",
		"figure12", "figure13", "section6"}
}
