package workload

import (
	"testing"

	"eole/internal/isa"
	"eole/internal/prog"
)

func TestSyntheticValidation(t *testing.T) {
	bad := []SyntheticSpec{
		{Name: "x", Chains: 0},
		{Name: "x", Chains: 9},
		{Name: "x", Chains: 4, PredictableChains: 5},
		{Name: "x", Chains: 4, BranchTakenPermil: 1001},
		{Name: "x", Chains: 4, LoadsPerIter: 5},
	}
	for i, s := range bad {
		if _, err := Synthetic(s); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestSyntheticRunsForever(t *testing.T) {
	w := MustSynthetic(SyntheticSpec{
		Name: "smoke", Chains: 4, PredictableChains: 2,
		BranchTakenPermil: 500, LoadsPerIter: 2, FootprintWords: 1024,
	})
	m := w.NewMachine()
	if n := m.Run(20_000, nil); n != 20_000 || m.Halted() {
		t.Fatalf("ran %d µ-ops, halted=%v", n, m.Halted())
	}
}

func takenRate(w Workload, n uint64) float64 {
	m := w.NewMachine()
	var taken, total float64
	m.Run(n, func(u *prog.MicroOp) bool {
		if u.Op.Class().IsCondBranch() {
			total++
			if u.Taken {
				taken++
			}
		}
		return true
	})
	if total == 0 {
		return -1
	}
	return taken / total
}

func TestSyntheticBranchBiasRealized(t *testing.T) {
	for _, tc := range []struct {
		permil int
		lo, hi float64
	}{
		{0, 0.0, 0.02},
		{500, 0.45, 0.55},
		{900, 0.85, 0.95},
		{1000, 0.98, 1.0},
	} {
		w := MustSynthetic(SyntheticSpec{
			Name: "bias", Chains: 2, BranchTakenPermil: tc.permil,
			FootprintWords: 512, Seed: 7,
		})
		r := takenRate(w, 50_000)
		if r < tc.lo || r > tc.hi {
			t.Errorf("permil=%d: taken rate %.3f outside [%.2f,%.2f]", tc.permil, r, tc.lo, tc.hi)
		}
	}
}

func TestSyntheticChainPredictability(t *testing.T) {
	// All-predictable chains must produce striding values; all-
	// scrambled chains must not.
	strideLike := func(pred int) float64 {
		w := MustSynthetic(SyntheticSpec{
			Name: "p", Chains: 4, PredictableChains: pred,
			BranchTakenPermil: 1000, FootprintWords: 512, Seed: 3,
		})
		m := w.NewMachine()
		last := map[uint64]uint64{}
		delta := map[uint64]int64{}
		var stable, total float64
		m.Run(30_000, func(u *prog.MicroOp) bool {
			if u.Op == isa.OpAddi || u.Op == isa.OpXor {
				if u.Dst >= isa.IntReg(8) && u.Dst < isa.IntReg(16) {
					if l, ok := last[u.PC]; ok {
						d := int64(u.Value - l)
						if prev, ok2 := delta[u.PC]; ok2 {
							total++
							if prev == d {
								stable++
							}
						}
						delta[u.PC] = d
					}
					last[u.PC] = u.Value
				}
			}
			return true
		})
		return stable / total
	}
	if r := strideLike(4); r < 0.9 {
		t.Errorf("fully predictable chains: stable-delta rate %.2f, want >= 0.9", r)
	}
	if r := strideLike(0); r > 0.2 {
		t.Errorf("scrambled chains: stable-delta rate %.2f, want <= 0.2", r)
	}
}

func TestSyntheticFootprintRealized(t *testing.T) {
	w := MustSynthetic(SyntheticSpec{
		Name: "foot", Chains: 2, LoadsPerIter: 2,
		BranchTakenPermil: 1000, FootprintWords: 1 << 20, Seed: 5,
	})
	m := w.NewMachine()
	pages := map[uint64]bool{}
	m.Run(200_000, func(u *prog.MicroOp) bool {
		if u.Op == isa.OpLd {
			pages[u.Addr>>12] = true
		}
		return true
	})
	// Striding over 8MB: many pages touched.
	if len(pages) < 100 {
		t.Fatalf("touched %d pages, want >= 100", len(pages))
	}
}

func TestSweepsProduceDistinctWorkloads(t *testing.T) {
	for _, sweep := range [][]Workload{PredictabilitySweep(), BranchBiasSweep(), FootprintSweep()} {
		seen := map[string]bool{}
		for _, w := range sweep {
			if seen[w.Name] {
				t.Errorf("duplicate sweep point %s", w.Name)
			}
			seen[w.Name] = true
			m := w.NewMachine()
			if n := m.Run(2_000, nil); n != 2_000 {
				t.Errorf("%s does not run", w.Name)
			}
		}
	}
}

func TestSyntheticNotRegistered(t *testing.T) {
	// Synthetic workloads must not pollute the Table 3 suite.
	if len(All()) != 19 {
		t.Fatalf("registry has %d entries, want 19", len(All()))
	}
}
