// Package workload provides the 19 synthetic benchmark kernels used to
// stand in for the paper's SPEC CPU2000/2006 subset (Table 3).
//
// SPEC binaries, reference inputs and the authors' Simpoint slices are
// proprietary / unavailable, so each benchmark is replaced by a small
// program written in the µ-op IR of internal/isa whose *behavioural
// character* — branch predictability, value predictability, memory
// footprint and ILP — is tuned to match what is published about that
// benchmark. The experiments in the paper depend on those characters
// (e.g. namd's 60% offload potential, mcf's DRAM-bound IPC of 0.1,
// hmmer's IQ sensitivity), not on the literal binaries. DESIGN.md §3
// and §5 document the substitution.
package workload

import (
	"fmt"
	"math"
	"sort"

	"eole/internal/prog"
)

// Workload pairs a program with its initial machine state and the
// paper's reference IPC from Table 3.
type Workload struct {
	// Name is the SPEC-style benchmark name, e.g. "429.mcf".
	Name string
	// Short is the bare benchmark name, e.g. "mcf".
	Short string
	// FP reports whether Table 3 lists the benchmark as floating point.
	FP bool
	// PaperIPC is the Baseline_6_64 IPC reported in Table 3.
	PaperIPC float64
	// Description states which behavioural traits the kernel reproduces.
	Description string

	Program *prog.Program
	// Setup initializes registers and memory before execution.
	Setup func(m *prog.Machine)
}

// NewMachine returns a fresh functional machine ready to run the
// workload from the beginning.
func (w Workload) NewMachine() *prog.Machine {
	m := prog.NewMachine(w.Program)
	if w.Setup != nil {
		w.Setup(m)
	}
	return m
}

var registry []Workload

func register(w Workload) {
	registry = append(registry, w)
}

// All returns the 19 workloads in Table 3 order (CPU2000 before
// CPU2006, numeric order within each suite).
func All() []Workload {
	out := make([]Workload, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the workload names in Table 3 order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Short
	}
	return names
}

// ByName looks a workload up by full or short name. It resolves both
// the Table 3 suite and the long-* phased family (see long.go).
func ByName(name string) (Workload, error) {
	for _, w := range registry {
		if w.Name == name || w.Short == name {
			return w, nil
		}
	}
	for _, w := range longRegistry {
		if w.Name == name || w.Short == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Heap layout constants shared by kernels. Arrays are placed at
// distinct, page-aligned bases so cache behaviour is stable.
const (
	heapA = 0x1000_0000
	heapB = 0x2000_0000
	heapC = 0x3000_0000
	heapD = 0x4000_0000
)

// fillWords writes n sequential 8-byte words starting at base using the
// generator g(i).
func fillWords(m *prog.Machine, base uint64, n int, g func(i int) uint64) {
	for i := 0; i < n; i++ {
		m.Mem.Write(base+uint64(i)*8, g(i))
	}
}

// f64bitsOf converts a float64 to its register bit pattern, for
// initializing FP data in memory.
func f64bitsOf(f float64) uint64 { return math.Float64bits(f) }

// xorshift64 is the reference implementation of the IR-level Xorshift
// helper, used by Setup functions that need to precompute the same
// stream the program will generate.
func xorshift64(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}
