package workload

import (
	"fmt"

	"eole/internal/isa"
	"eole/internal/prog"
)

// SyntheticSpec parameterizes a generated kernel. The generator exists
// for controlled experiments: sweeping one axis (value
// predictability, branch bias, memory footprint, ILP) while holding
// the others fixed — the knobs behind the paper's per-benchmark
// variation in Figures 2, 4, 6 and 7.
type SyntheticSpec struct {
	// Name labels the workload in reports.
	Name string
	// Chains is the number of independent dependence chains (ILP),
	// 1..8.
	Chains int
	// PredictableChains is how many of those chains carry stride
	// (value-predictable) updates; the rest are xorshift-scrambled
	// (unpredictable). 0..Chains.
	PredictableChains int
	// BranchTakenPermil biases the per-iteration data-dependent
	// conditional branch: 0 = never taken, 1000 = always taken, 500 =
	// coin flip (hard), 0/1000 = trivially predictable.
	BranchTakenPermil int
	// LoadsPerIter adds striding loads over the footprint (0..4).
	LoadsPerIter int
	// FootprintWords is the array size the loads walk (cache
	// pressure); rounded up to a power of two, minimum 512.
	FootprintWords int
	// Seed initializes the IR-level RNG.
	Seed uint64
}

// Validate reports whether the spec is buildable.
func (s SyntheticSpec) Validate() error {
	switch {
	case s.Chains < 1 || s.Chains > 8:
		return fmt.Errorf("workload: Chains must be 1..8, got %d", s.Chains)
	case s.PredictableChains < 0 || s.PredictableChains > s.Chains:
		return fmt.Errorf("workload: PredictableChains must be 0..Chains, got %d", s.PredictableChains)
	case s.BranchTakenPermil < 0 || s.BranchTakenPermil > 1000:
		return fmt.Errorf("workload: BranchTakenPermil must be 0..1000, got %d", s.BranchTakenPermil)
	case s.LoadsPerIter < 0 || s.LoadsPerIter > 4:
		return fmt.Errorf("workload: LoadsPerIter must be 0..4, got %d", s.LoadsPerIter)
	}
	return nil
}

// Synthetic builds a workload from the spec. The generated loop has,
// per iteration: one update per chain (stride or scrambled), the
// requested loads, one biased data-dependent conditional branch, and
// loop bookkeeping.
func Synthetic(spec SyntheticSpec) (Workload, error) {
	if err := spec.Validate(); err != nil {
		return Workload{}, err
	}
	foot := 512
	for foot < spec.FootprintWords {
		foot *= 2
	}

	b := prog.NewBuilder(spec.Name)
	var (
		rng  = isa.IntReg(1)
		tmp  = isa.IntReg(2)
		base = isa.IntReg(3)
		idx  = isa.IntReg(4)
		t0   = isa.IntReg(5)
		thr  = isa.IntReg(6)
		acc  = isa.IntReg(7)
	)
	chain := func(i int) isa.Reg { return isa.IntReg(8 + i) }
	ldreg := func(i int) isa.Reg { return isa.IntReg(16 + i) }

	b.Label("top")
	// Chain updates: strides are confidently value-predictable;
	// scrambled chains defeat every predictor family.
	for i := 0; i < spec.Chains; i++ {
		if i < spec.PredictableChains {
			b.Addi(chain(i), chain(i), int64(3+2*i))
		} else {
			b.Xor(chain(i), chain(i), rng)
			b.Shri(tmp, chain(i), 9)
			b.Xor(chain(i), chain(i), tmp)
		}
	}
	// Striding loads over the footprint, one cache line per iteration
	// so the sweep reaches DRAM bandwidth at large footprints.
	if spec.LoadsPerIter > 0 {
		b.Addi(idx, idx, 64)
		b.Andi(idx, idx, int64(foot*8-1)&^7)
		b.Add(t0, idx, base)
		for i := 0; i < spec.LoadsPerIter; i++ {
			b.Ld(ldreg(i), t0, int64(i*16))
			b.Add(acc, acc, ldreg(i))
		}
	}
	// Biased data-dependent branch.
	b.Xorshift(rng, tmp)
	b.Andi(tmp, rng, 1023)
	b.Bltu(tmp, thr, "taken")
	b.Addi(acc, acc, 1)
	b.Jmp("top")
	b.Label("taken")
	b.Addi(acc, acc, 2)
	b.Jmp("top")

	p, err := b.Build()
	if err != nil {
		return Workload{}, err
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	permil := spec.BranchTakenPermil
	return Workload{
		Name:  spec.Name,
		Short: spec.Name,
		Description: fmt.Sprintf(
			"synthetic: %d chains (%d predictable), branch %d/1000 taken, %d loads over %d words",
			spec.Chains, spec.PredictableChains, permil, spec.LoadsPerIter, foot),
		PaperIPC: 0,
		Program:  p,
		Setup: func(m *prog.Machine) {
			m.SetReg(isa.IntReg(1), seed|1)
			m.SetReg(isa.IntReg(3), heapA)
			// Bltu(tmp, thr): taken when rng%1024 < thr.
			m.SetReg(isa.IntReg(6), uint64(permil)*1024/1000)
			s := seed ^ 0xABCD_EF01_2345_6789
			fillWords(m, heapA, foot, func(i int) uint64 {
				s = xorshift64(s)
				return s & 0xFFFF
			})
		},
	}, nil
}

// MustSynthetic is Synthetic for statically-known specs.
func MustSynthetic(spec SyntheticSpec) Workload {
	w, err := Synthetic(spec)
	if err != nil {
		panic(err)
	}
	return w
}

// PredictabilitySweep returns synthetic workloads whose only varying
// axis is the fraction of value-predictable chains (0/8 .. 8/8).
func PredictabilitySweep() []Workload {
	var out []Workload
	for p := 0; p <= 8; p += 2 {
		out = append(out, MustSynthetic(SyntheticSpec{
			Name:              fmt.Sprintf("vp%d of 8", p),
			Chains:            8,
			PredictableChains: p,
			BranchTakenPermil: 900,
			LoadsPerIter:      1,
			FootprintWords:    4096,
			Seed:              uint64(p + 1),
		}))
	}
	return out
}

// BranchBiasSweep returns synthetic workloads whose only varying axis
// is conditional branch bias (hard 500/1000 to trivial 1000/1000).
func BranchBiasSweep() []Workload {
	var out []Workload
	for _, permil := range []int{500, 700, 900, 990, 1000} {
		out = append(out, MustSynthetic(SyntheticSpec{
			Name:              fmt.Sprintf("bias%d", permil),
			Chains:            4,
			PredictableChains: 2,
			BranchTakenPermil: permil,
			LoadsPerIter:      1,
			FootprintWords:    4096,
			Seed:              uint64(permil),
		}))
	}
	return out
}

// FootprintSweep returns synthetic workloads whose only varying axis
// is the data footprint: L1-resident through DRAM-sized.
func FootprintSweep() []Workload {
	var out []Workload
	for _, words := range []int{2048, 32768, 262144, 4194304} {
		out = append(out, MustSynthetic(SyntheticSpec{
			Name:              fmt.Sprintf("foot%dKB", words*8/1024),
			Chains:            4,
			PredictableChains: 2,
			BranchTakenPermil: 900,
			LoadsPerIter:      2,
			FootprintWords:    words,
			Seed:              uint64(words),
		}))
	}
	return out
}
