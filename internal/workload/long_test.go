package workload

import (
	"strings"
	"testing"

	"eole/internal/isa"
)

func TestLongFamilyRegistered(t *testing.T) {
	names := LongNames()
	if len(names) != 3 {
		t.Fatalf("long family has %d members: %v", len(names), names)
	}
	for _, n := range names {
		if !strings.HasPrefix(n, "long-") {
			t.Errorf("long workload %q not named long-*", n)
		}
		w, err := ByName(n)
		if err != nil {
			t.Errorf("ByName(%q): %v", n, err)
			continue
		}
		if w.Short != n {
			t.Errorf("ByName(%q) resolved %q", n, w.Short)
		}
	}
	// The Table 3 suite must stay at the paper's 19 benchmarks: the
	// figure sweeps and /v1/workloads defaults depend on it.
	if got := len(All()); got != 19 {
		t.Errorf("All() returns %d workloads, want 19 (long-* must stay out)", got)
	}
}

// TestLongKernelPhases: the functional machine must actually rotate
// through the three phases — observable as memory traffic appearing
// only in the stream phase and the µ-op mix shifting between phases.
func TestLongKernelPhases(t *testing.T) {
	w, err := ByName("long-l1")
	if err != nil {
		t.Fatal(err)
	}
	m := w.NewMachine()
	perPhase := uint64(LongPhaseIters) * 16 // generous per-phase µ-op bound

	// Count loads per segment by stepping through one full cycle.
	var segLoads [4]uint64
	var segOps [4]uint64
	for seg := 0; seg < 4; seg++ {
		for segOps[seg] < perPhase/2 {
			u, ok := m.Step()
			if !ok {
				t.Fatal("long kernel halted")
			}
			segOps[seg]++
			if u.Op.Class() == isa.ClassLoad {
				segLoads[seg]++
			}
		}
		// Fast-forward to the next phase boundary region.
		m.Run(perPhase, nil)
	}
	// At least one observed segment must be load-heavy (stream phase)
	// and at least one load-free (compute/scramble phases).
	var withLoads, withoutLoads int
	for seg := 0; seg < 4; seg++ {
		if segLoads[seg] > segOps[seg]/10 {
			withLoads++
		}
		if segLoads[seg] == 0 {
			withoutLoads++
		}
	}
	if withLoads == 0 || withoutLoads == 0 {
		t.Errorf("phase rotation not observable: per-segment loads %v over %v µ-ops", segLoads, segOps)
	}
}

// TestLongFootprints: the family members differ only in stream-phase
// footprint, which must materialize as distinct touched-page counts.
func TestLongFootprints(t *testing.T) {
	foot := map[string]int{}
	for _, n := range []string{"long-l1", "long-l2"} {
		w, _ := ByName(n)
		m := w.NewMachine()
		m.Run(3_000_000, nil)
		foot[n] = m.Mem.Footprint()
	}
	if foot["long-l2"] <= foot["long-l1"] {
		t.Errorf("footprints not ordered: %v", foot)
	}
}
