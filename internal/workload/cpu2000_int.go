package workload

import (
	"eole/internal/isa"
	"eole/internal/prog"
)

// 164.gzip — LZ77-style compression inner loop.
//
// Character reproduced: byte-granularity window loads with a rolling
// hash (dense single-cycle ALU chains), a hash-table probe (data-
// dependent load), a rarely-taken match branch, and a data-dependent
// length branch that TAGE predicts imperfectly. Moderate value-
// prediction coverage: induction variables stride, hash values do not.
func gzipKernel() Workload {
	b := prog.NewBuilder("164.gzip")
	var (
		i     = isa.IntReg(1) // window cursor
		hash  = isa.IntReg(2) // rolling hash
		win   = isa.IntReg(3) // window base
		head  = isa.IntReg(4) // hash table base
		a     = isa.IntReg(5) // current word
		bb    = isa.IntReg(6) // probed word
		t0    = isa.IntReg(7)
		t1    = isa.IntReg(8)
		mlen  = isa.IntReg(9)  // running match length
		chain = isa.IntReg(10) // chain counter
	)
	b.Label("top")
	// Load the next window word (perfect stride: prefetch friendly).
	b.Andi(t0, i, 8191) // 8K-word window
	b.Shli(t0, t0, 3)
	b.Add(t0, t0, win)
	b.Ld(a, t0, 0)
	// Rolling hash: hash = ((hash<<5) ^ a) & 4095.
	b.Shli(t1, hash, 5)
	b.Xor(t1, t1, a)
	b.Andi(hash, t1, 4095)
	// Probe head table.
	b.Shli(t0, hash, 3)
	b.Add(t0, t0, head)
	b.Ld(bb, t0, 0)
	// Store current position into the chain head (store stream).
	b.St(i, t0, 0)
	// Match check: equal words are rare -> mostly not-taken branch.
	b.Bne(a, bb, "nomatch")
	b.Addi(mlen, mlen, 1)
	b.Label("nomatch")
	// Data-dependent length branch: taken iff low 3 bits of data < 3
	// (probability ~3/8, weakly correlated -> hard for TAGE).
	b.Andi(t1, a, 7)
	b.Movi(t0, 3)
	b.Blt(t1, t0, "short")
	b.Addi(chain, chain, 2)
	b.Jmp("cont")
	b.Label("short")
	b.Addi(chain, chain, 1)
	b.Label("cont")
	b.Addi(i, i, 1)
	b.Jmp("top")
	p := b.MustBuild()
	return Workload{
		Name: "164.gzip", Short: "gzip", FP: false, PaperIPC: 0.984,
		Description: "LZ window scan: rolling hash ALU chains, hash-table probe loads, rare match branch, data-dependent length branch",
		Program:     p,
		Setup: func(m *prog.Machine) {
			m.SetReg(isa.IntReg(3), heapA)
			m.SetReg(isa.IntReg(4), heapB)
			// Pseudo-random window contents: the "input file".
			s := uint64(0x1234_5678_9abc_def1)
			fillWords(m, heapA, 8192, func(i int) uint64 {
				s = xorshift64(s)
				return s
			})
		},
	}
}

// 175.vpr — placement simulated annealing.
//
// Character reproduced: an IR-level xorshift RNG drives a ~50/50
// accept/reject branch (essentially unpredictable), random-index reads
// of a cost array (L2-resident), and a short predictable bookkeeping
// tail. Moderate IPC limited by branch mispredictions.
func vprKernel() Workload {
	b := prog.NewBuilder("175.vpr")
	var (
		rng  = isa.IntReg(1)
		tmp  = isa.IntReg(2)
		cost = isa.IntReg(3) // cost array base
		idx  = isa.IntReg(4)
		c    = isa.IntReg(5)
		acc  = isa.IntReg(6) // accumulated cost
		n    = isa.IntReg(7) // accepted-move counter
		t0   = isa.IntReg(8)
	)
	b.Label("top")
	b.Xorshift(rng, tmp)
	// Random placement slot: 64K-entry cost array (512KB, L2-resident).
	b.Shri(idx, rng, 17)
	b.Andi(idx, idx, 65535)
	b.Shli(t0, idx, 3)
	b.Add(t0, t0, cost)
	b.Ld(c, t0, 0)
	// Accept/reject on a raw RNG bit: ~50% taken, uncorrelated.
	b.Andi(tmp, rng, 1)
	b.Beqz(tmp, "reject")
	b.Add(acc, acc, c)
	b.Addi(n, n, 1)
	b.St(acc, t0, 0)
	b.Jmp("cont")
	b.Label("reject")
	b.Sub(acc, acc, c)
	b.Label("cont")
	// Predictable temperature bookkeeping.
	b.Addi(t0, n, 1)
	b.Shri(t0, t0, 8)
	b.Jmp("top")
	p := b.MustBuild()
	return Workload{
		Name: "175.vpr", Short: "vpr", FP: false, PaperIPC: 1.326,
		Description: "annealing: RNG-driven 50/50 accept branch, random-index L2 loads, predictable bookkeeping",
		Program:     p,
		Setup: func(m *prog.Machine) {
			m.SetReg(isa.IntReg(1), 0x8a5c_d9f0_1357_9bdf)
			m.SetReg(isa.IntReg(3), heapA)
			fillWords(m, heapA, 65536, func(i int) uint64 { return uint64(i*37 + 11) })
		},
	}
}

// 186.crafty — chess bitboard evaluation.
//
// Character reproduced: long runs of register-to-register and
// register-immediate single-cycle logic (bitboard masks, shifts),
// perfectly predictable short inner loops, small L1-resident tables.
// High IPC; sensitive to Early Execution because many operands are
// immediates or same-group results.
func craftyKernel() Workload {
	b := prog.NewBuilder("186.crafty")
	var (
		occ  = isa.IntReg(1) // occupancy bitboard
		att  = isa.IntReg(2) // attack accumulator
		sq   = isa.IntReg(3) // square index
		tbl  = isa.IntReg(4) // attack table base
		t0   = isa.IntReg(5)
		t1   = isa.IntReg(6)
		t2   = isa.IntReg(7)
		k    = isa.IntReg(8) // inner counter
		four = isa.IntReg(9)
		pop  = isa.IntReg(10) // popcount accumulator
	)
	b.Label("top")
	// Advance square (predictable stride 1 mod 64).
	b.Addi(sq, sq, 1)
	b.Andi(sq, sq, 63)
	// Table lookup for this square (512B table: L1-resident).
	b.Shli(t0, sq, 3)
	b.Add(t0, t0, tbl)
	b.Ld(t1, t0, 0)
	// Bitboard mask algebra: dense 1-cycle logic with immediates.
	b.And(t2, occ, t1)
	b.Xori(occ, occ, 0x5A5A)
	b.Ori(att, att, 1)
	b.Shli(att, att, 1)
	b.Xor(att, att, t2)
	b.Andi(att, att, 0xFFFF_FFFF)
	// 4-iteration popcount-style loop: perfectly predictable.
	b.Movi(k, 0)
	b.Movi(four, 4)
	b.Label("poploop")
	b.Andi(t0, occ, 0xFF)
	b.Add(pop, pop, t0)
	b.Shri(occ, occ, 8)
	b.Addi(k, k, 1)
	b.Blt(k, four, "poploop")
	// Refresh occupancy from attacks (keeps values live).
	b.Or(occ, att, pop)
	b.Jmp("top")
	p := b.MustBuild()
	return Workload{
		Name: "186.crafty", Short: "crafty", FP: false, PaperIPC: 1.769,
		Description: "bitboards: dense 1-cycle logic with immediates, predictable 4-iteration loops, L1 tables",
		Program:     p,
		Setup: func(m *prog.Machine) {
			m.SetReg(isa.IntReg(1), 0xFFFF_0000_FFFF_0000)
			m.SetReg(isa.IntReg(4), heapA)
			fillWords(m, heapA, 64, func(i int) uint64 { return uint64(i) * 0x0101_0101_0101 })
		},
	}
}

// 197.parser — link grammar parser.
//
// Character reproduced: pointer chasing over a linked structure with a
// data-dependent 50/50 branch per node, a call/return per node, and
// dependent loads. Very low IPC (serial loads + branch mispredicts),
// low value-prediction coverage.
func parserKernel() Workload {
	b := prog.NewBuilder("197.parser")
	var (
		node = isa.IntReg(1) // current node address
		val  = isa.IntReg(2)
		t0   = isa.IntReg(3)
		acc  = isa.IntReg(4)
		dep  = isa.IntReg(5) // recursion-depth stand-in
	)
	b.Label("top")
	// node->value and node->next are adjacent words.
	b.Ld(val, node, 8)
	// Data-dependent branch: node values are pseudo-random.
	b.Andi(t0, val, 1)
	b.Beqz(t0, "skip")
	b.Call("attach")
	b.Label("skip")
	// Chase the next pointer (serial dependence: DRAM-free but L2-ish).
	b.Ld(node, node, 0)
	b.Addi(dep, dep, 1)
	b.Jmp("top")
	// attach(): short leaf function.
	b.Label("attach")
	b.Add(acc, acc, val)
	b.Shri(t0, acc, 3)
	b.Xor(acc, acc, t0)
	b.Ret()
	p := b.MustBuild()
	return Workload{
		Name: "197.parser", Short: "parser", FP: false, PaperIPC: 0.544,
		Description: "linked-list chase: serial dependent loads, 50/50 data branch, call/ret per node",
		Program:     p,
		Setup: func(m *prog.Machine) {
			// Build a pseudo-random cyclic list of 64K nodes (1MB:
			// larger than L1, inside L2) with random payloads.
			const nodes = 65536
			perm := make([]int, nodes)
			for i := range perm {
				perm[i] = i
			}
			s := uint64(0xfeed_f00d_dead_beef)
			for i := nodes - 1; i > 0; i-- {
				s = xorshift64(s)
				j := int(s % uint64(i+1))
				perm[i], perm[j] = perm[j], perm[i]
			}
			addr := func(i int) uint64 { return heapA + uint64(i)*16 }
			for i := 0; i < nodes; i++ {
				next := perm[(i+1)%nodes]
				s = xorshift64(s)
				m.Mem.Write(addr(perm[i]), addr(next)) // ->next
				m.Mem.Write(addr(perm[i])+8, s)        // ->value
			}
			m.SetReg(isa.IntReg(1), addr(perm[0]))
		},
	}
}

// 255.vortex — object-oriented database transactions.
//
// Character reproduced: a predictable round-robin dispatch over object
// "methods" (call-heavy, RAS-friendly), loads of object fields that are
// frequently constant across transactions (high last-value
// predictability), stride counters and store-backs. High IPC and high
// VP coverage.
func vortexKernel() Workload {
	b := prog.NewBuilder("255.vortex")
	var (
		obj  = isa.IntReg(1) // object table base
		i    = isa.IntReg(2) // transaction counter
		sel  = isa.IntReg(3)
		t0   = isa.IntReg(4)
		f0   = isa.IntReg(5)
		f1   = isa.IntReg(6)
		sum  = isa.IntReg(7)
		size = isa.IntReg(8)
	)
	b.Label("top")
	b.Andi(sel, i, 3)
	b.Beqz(sel, "m0")
	b.Movi(t0, 1)
	b.Beq(sel, t0, "m1")
	b.Movi(t0, 2)
	b.Beq(sel, t0, "m2")
	b.Call("insert")
	b.Jmp("done")
	b.Label("m0")
	b.Call("lookup")
	b.Jmp("done")
	b.Label("m1")
	b.Call("update")
	b.Jmp("done")
	b.Label("m2")
	b.Call("validate")
	b.Label("done")
	b.Addi(i, i, 1)
	b.Jmp("top")

	// lookup(): loads two constant-ish header fields.
	b.Label("lookup")
	b.Ld(f0, obj, 0) // type tag: constant -> perfect last-value VP
	b.Ld(f1, obj, 8) // schema version: constant
	b.Add(sum, sum, f0)
	b.Add(sum, sum, f1)
	b.Ret()
	// update(): read-modify-write a field at a strided slot.
	b.Label("update")
	b.Andi(t0, i, 255)
	b.Shli(t0, t0, 3)
	b.Add(t0, t0, obj)
	b.Ld(f0, t0, 64)
	b.Addi(f0, f0, 1)
	b.St(f0, t0, 64)
	b.Ret()
	// validate(): compare size field (constant) against counter.
	b.Label("validate")
	b.Ld(size, obj, 16)
	b.Sltu(t0, i, size)
	b.Add(sum, sum, t0)
	b.Ret()
	// insert(): append to a log (stride stores).
	b.Label("insert")
	b.Andi(t0, i, 4095)
	b.Shli(t0, t0, 3)
	b.Add(t0, t0, obj)
	b.St(i, t0, 8192)
	b.Ret()
	p := b.MustBuild()
	return Workload{
		Name: "255.vortex", Short: "vortex", FP: false, PaperIPC: 1.781,
		Description: "OO database: round-robin method calls, constant object-field loads (high VP), stride log stores",
		Program:     p,
		Setup: func(m *prog.Machine) {
			m.SetReg(isa.IntReg(1), heapA)
			m.Mem.Write(heapA, 7)        // type tag
			m.Mem.Write(heapA+8, 3)      // schema version
			m.Mem.Write(heapA+16, 1<<62) // size bound (compare mostly true)
			fillWords(m, heapA+64, 256, func(i int) uint64 { return uint64(i) })
		},
	}
}

func init() {
	register(gzipKernel())
	register(vprKernel())
	register(craftyKernel())
	register(parserKernel())
	register(vortexKernel())
}
